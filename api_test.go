package oassis

import (
	"flag"
	"os"
	"testing"

	"oassis/internal/apidump"
)

var updateAPI = flag.Bool("update", false, "rewrite api.txt from the current source")

// TestPublicAPISurface pins the package's exported surface to api.txt:
// adding, removing, or re-typing anything public fails here until the
// golden is regenerated (go test -run TestPublicAPISurface -update .) and
// the diff is reviewed. `make check` runs this, so API drift cannot land
// silently.
func TestPublicAPISurface(t *testing.T) {
	got, err := apidump.Surface(".")
	if err != nil {
		t.Fatal(err)
	}
	if *updateAPI {
		if err := os.WriteFile("api.txt", []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile("api.txt")
	if err != nil {
		t.Fatalf("%v (regenerate with: go test -run TestPublicAPISurface -update .)", err)
	}
	if got != string(want) {
		t.Fatalf("public API surface drifted from api.txt.\n"+
			"If the change is intentional, regenerate with\n"+
			"  go test -run TestPublicAPISurface -update .\n"+
			"and commit the diff.\n\ngot:\n%s\nwant:\n%s", got, want)
	}
}
