package oassis

import (
	"strings"
	"testing"
)

// customMember implements Member directly (exercising the adapter paths a
// downstream user would hit): it reports every combination involving
// "Biking" as very frequent, everything else never, answers specialization
// questions by picking the first biking candidate, and prunes "Swimming".
type customMember struct{ id string }

func (m *customMember) ID() string { return m.id }

func (m *customMember) HowOften(facts []Triple) float64 {
	for _, f := range facts {
		if f.Subject == "Swimming" || f.Object == "Swimming" {
			return 0
		}
	}
	for _, f := range facts {
		if f.Subject == "Biking" {
			return 1
		}
		if f.Subject != "Biking" && f.Relation == "doAt" && f.Subject != "Sport" &&
			f.Subject != "Activity" && f.Subject != "Ball Game" && f.Subject != "Water Sport" &&
			f.Subject != "Food" && f.Subject != "Feed a Monkey" {
			return 0
		}
	}
	// Generalizations of biking (Sport doAt …, Activity doAt …) count too.
	for _, f := range facts {
		if f.Subject == "Sport" || f.Subject == "Activity" {
			return 1
		}
	}
	return 0
}

func (m *customMember) Specialize(candidates [][]Triple) SpecializeResponse {
	for i, c := range candidates {
		if m.HowOften(c) >= 1 {
			return Choose(i, 1)
		}
	}
	return NoneOfThese()
}

func (m *customMember) Irrelevant(terms []string) (string, bool) {
	for _, t := range terms {
		if t == "Swimming" {
			return t, true
		}
	}
	return "", false
}

const restrictedQuery = `
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity
SATISFYING
  $y doAt $x
WITH SUPPORT = 0.5
`

func TestCustomMemberThroughAdapter(t *testing.T) {
	db := SampleDB()
	q, err := ParseQuery(restrictedQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(db, q, []Member{&customMember{id: "c"}},
		WithSpecializationRatio(0.5),
		WithPruning(),
		WithSeed(42),
	)
	if err != nil {
		t.Fatal(err)
	}
	joined := ""
	for _, m := range res.MSPs {
		joined += m.Text + ";"
	}
	if !strings.Contains(joined, "Biking doAt") {
		t.Errorf("biking MSP not found: %q", joined)
	}
}

func TestOptionCaps(t *testing.T) {
	db := SampleDB()
	q, err := ParseQuery(restrictedQuery)
	if err != nil {
		t.Fatal(err)
	}
	members := table3Members(t, db)
	res, err := Exec(db, q, members,
		WithAnswersPerQuestion(2),
		WithMaxQuestions(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalQuestions > 4 {
		t.Errorf("MaxQuestions exceeded: %d", res.Stats.TotalQuestions)
	}
	res2, err := Exec(db, q, members,
		WithAnswersPerQuestion(2),
		WithMaxQuestionsPerMember(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.TotalQuestions > 4 {
		t.Errorf("per-member budget exceeded: %d", res2.Stats.TotalQuestions)
	}
}

func TestTopKOption(t *testing.T) {
	db := SampleDB()
	q, err := ParseQuery(restrictedQuery)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Exec(db, q, table3Members(t, db), WithAnswersPerQuestion(2))
	if err != nil {
		t.Fatal(err)
	}
	topk, err := Exec(db, q, table3Members(t, db),
		WithAnswersPerQuestion(2), WithTopK(1))
	if err != nil {
		t.Fatal(err)
	}
	if topk.Stats.TotalQuestions >= full.Stats.TotalQuestions {
		t.Errorf("top-1 (%d questions) not cheaper than full (%d)",
			topk.Stats.TotalQuestions, full.Stats.TotalQuestions)
	}
}

func TestSpamFilterOption(t *testing.T) {
	db := SampleDB()
	q, err := ParseQuery(restrictedQuery)
	if err != nil {
		t.Fatal(err)
	}
	// A member whose answers invert monotonicity: generalities never,
	// specifics always.
	members := append([]Member{&invertedMember{}}, table3Members(t, db)...)
	res, err := Exec(db, q, members,
		WithAnswersPerQuestion(3),
		WithSpamFilter(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	_ = res // the run must terminate; banning is logged in internal stats
}

type invertedMember struct{ n int }

func (m *invertedMember) ID() string { return "inverted" }
func (m *invertedMember) HowOften(facts []Triple) float64 {
	m.n++
	if m.n%2 == 0 {
		return 1
	}
	return 0
}
func (m *invertedMember) Specialize([][]Triple) SpecializeResponse {
	return DeclineSpecialization()
}
func (m *invertedMember) Irrelevant([]string) (string, bool) { return "", false }

func TestQueryAccessors(t *testing.T) {
	q, err := ParseQuery(restrictedQuery)
	if err != nil {
		t.Fatal(err)
	}
	if q.Support() != 0.5 {
		t.Errorf("Support = %v", q.Support())
	}
	if !strings.Contains(q.String(), "SELECT FACT-SETS") {
		t.Errorf("String = %q", q.String())
	}
}

func TestAddRelationAndOrder(t *testing.T) {
	db := NewDB()
	if err := db.AddRelation("locatedIn"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelation("cityOf"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelationOrder("locatedIn", "cityOf"); err != nil {
		t.Fatal(err)
	}
	// Order edge between unknown-kind names errors.
	if err := db.AddTerm("Paris"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRelationOrder("Paris", "cityOf"); err == nil {
		t.Error("element accepted as relation in order")
	}
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
}
