package oassis

import (
	"errors"
	"fmt"
	"strings"

	"oassis/internal/aggregate"
	"oassis/internal/core"
	"oassis/internal/oassisql"
	"oassis/internal/plan"
	"oassis/internal/serve"
)

// ErrNotFrozen is returned by Exec and NewSession when the DB has not been
// frozen yet.
var ErrNotFrozen = errors.New("oassis: DB must be frozen before Exec")

// ErrInvalidOption is wrapped by Exec and NewSession errors reporting an
// out-of-range Option value (negative counts, ratios outside [0, 1]).
var ErrInvalidOption = errors.New("oassis: invalid option")

// Session errors, re-exported from the engine so callers can errors.Is
// against them.
var (
	// ErrSessionDone is returned by Session.Submit after the run finished.
	ErrSessionDone = core.ErrSessionDone
	// ErrUnknownQuestion is returned by Session.Submit for a question ID
	// the session never issued or has already consumed an answer for.
	ErrUnknownQuestion = core.ErrUnknownQuestion
)

// Serving-tier errors, re-exported from the sharded multi-tenant tier
// behind oassis-server so embedding applications can errors.Is against
// the conditions the server maps to HTTP statuses (429 and 404).
var (
	// ErrOverloaded is returned by the serving tier when admission control
	// sheds a long-poll — the global in-flight budget or a shard's waiter
	// queue is exhausted. oassis-server maps it to 429 with a Retry-After.
	ErrOverloaded = serve.ErrOverloaded
	// ErrUnknownTenant is returned for a tenant name the serving registry
	// does not host. oassis-server maps it to 404.
	ErrUnknownTenant = serve.ErrUnknownTenant
)

// ErrUnknownTerm reports a triple naming a term absent from the DB's
// vocabulary. Retrieve it from Exec errors with errors.As.
type ErrUnknownTerm struct {
	Name string
}

func (e ErrUnknownTerm) Error() string {
	return fmt.Sprintf("oassis: unknown term %q", e.Name)
}

// ParseError is a query syntax error with its source position; ParseQuery
// errors match it via errors.As.
type ParseError = oassisql.ParseError

func invalidOption(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrInvalidOption, fmt.Sprintf(format, args...))
}

// validate rejects out-of-range option values before a run starts.
func (o *options) validate() error {
	if o.answersPerQuestion < 1 {
		return invalidOption("answers per question %d (want >= 1)", o.answersPerQuestion)
	}
	if o.specializationRatio < 0 || o.specializationRatio > 1 {
		return invalidOption("specialization ratio %g (want within [0, 1])", o.specializationRatio)
	}
	if o.maxQuestions < 0 {
		return invalidOption("max questions %d (want >= 0)", o.maxQuestions)
	}
	if o.maxPerMember < 0 {
		return invalidOption("max questions per member %d (want >= 0)", o.maxPerMember)
	}
	if o.topK < 0 {
		return invalidOption("top-k %d (want >= 0)", o.topK)
	}
	if o.spamMaxViolations < 0 {
		return invalidOption("spam filter violations %d (want >= 0)", o.spamMaxViolations)
	}
	if o.stopPolicy != "" {
		if _, err := aggregate.StopByName(o.stopPolicy); err != nil {
			return invalidOption("stop policy %q (want one of %s)",
				o.stopPolicy, strings.Join(aggregate.StopNames(), ", "))
		}
	}
	if o.policy != "" {
		if _, err := plan.OrderingByName(o.policy); err != nil {
			return invalidOption("ordering policy %q (want one of %s)",
				o.policy, strings.Join(plan.OrderingNames(), ", "))
		}
	}
	if o.parallelism < 0 {
		return invalidOption("parallelism %d (want >= 0)", o.parallelism)
	}
	if o.panelSize < 0 {
		return invalidOption("panel size %d (want >= 0)", o.panelSize)
	}
	return nil
}
