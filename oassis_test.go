package oassis

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

const figure2 = `
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity .
  $z instanceOf Restaurant.
  $z nearBy $x
SATISFYING
  $y+ doAt $x .
  [] eatAt $z.
  MORE
WITH SUPPORT = 0.4
`

// table3Members builds u1 and u2 of the paper's Table 3 through the public
// API.
func table3Members(t testing.TB, db *DB) []Member {
	t.Helper()
	u1, err := SimulatedMember(db, "u1",
		"Basketball doAt Central Park. Falafel eatAt Maoz Veg",
		"Feed a Monkey doAt Bronx Zoo. Pasta eatAt Pine",
		"Biking doAt Central Park. Rent Bikes doAt Boathouse. Falafel eatAt Maoz Veg",
		"Baseball doAt Central Park. Biking doAt Central Park. Rent Bikes doAt Boathouse. Falafel eatAt Maoz Veg",
		"Feed a Monkey doAt Bronx Zoo. Pasta eatAt Pine",
		"Feed a Monkey doAt Bronx Zoo",
	)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := SimulatedMember(db, "u2",
		"Baseball doAt Central Park. Biking doAt Central Park. Rent Bikes doAt Boathouse. Falafel eatAt Maoz Veg",
		"Feed a Monkey doAt Bronx Zoo. Pasta eatAt Pine",
	)
	if err != nil {
		t.Fatal(err)
	}
	return []Member{u1, u2}
}

func TestEndToEndRunningExample(t *testing.T) {
	db := SampleDB()
	q, err := ParseQuery(figure2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(db, q, table3Members(t, db),
		WithAnswersPerQuestion(2),
		WithMoreCandidates(Triple{"Rent Bikes", "doAt", "Boathouse"}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MSPs) != 3 {
		for _, m := range res.MSPs {
			t.Logf("msp: %s", m.Text)
		}
		t.Fatalf("got %d MSPs, want 3", len(res.MSPs))
	}
	joined := ""
	for _, m := range res.MSPs {
		joined += m.Text + "\n"
	}
	// The paper's three answers, including the Boathouse tip via MORE.
	for _, want := range []string{
		"Biking doAt Central Park",
		"Rent Bikes doAt Boathouse",
		"Ball Game doAt Central Park",
		"Feed a Monkey doAt Bronx Zoo",
		"[] eatAt Maoz Veg",
		"[] eatAt Pine",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("answers missing %q:\n%s", want, joined)
		}
	}
	if res.Stats.TotalQuestions == 0 || res.Stats.GeneratedNodes == 0 {
		t.Error("stats empty")
	}
}

func TestExecSelectAll(t *testing.T) {
	db := SampleDB()
	q, err := ParseQuery(`SELECT FACT-SETS ALL
WHERE
  $x instanceOf Park . $y subClassOf* Activity
SATISFYING
  $y doAt $x
WITH SUPPORT = 0.4`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(db, q, table3Members(t, db), WithAnswersPerQuestion(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AllSignificant) == 0 {
		t.Fatal("SELECT ALL returned nothing")
	}
	if len(res.AllSignificant) <= len(res.MSPs) {
		t.Errorf("ALL (%d) should exceed MSPs (%d)", len(res.AllSignificant), len(res.MSPs))
	}
}

func TestProgrammaticDB(t *testing.T) {
	db := NewDB()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.AddSubsumption("Drink", "Coffee", "subClassOf"))
	must(db.AddSubsumption("Drink", "Tea", "subClassOf"))
	must(db.AddSubsumption("Snack", "Cookie", "subClassOf"))
	must(db.AddFact("Coffee", "pairsWith", "Cookie"))
	must(db.AddLabel("Coffee", "hot"))
	must(db.AddTerm("Mug"))
	must(db.Freeze())

	q, err := ParseQuery(`SELECT FACT-SETS
WHERE $d subClassOf* Drink . $d hasLabel "hot"
SATISFYING $d pairsWith Cookie
WITH SUPPORT = 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	m, err := SimulatedMember(db, "m",
		"Coffee pairsWith Cookie",
		"Coffee pairsWith Cookie",
		"Tea pairsWith Cookie",
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exec(db, q, []Member{m})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MSPs) != 1 || !strings.Contains(res.MSPs[0].Text, "Coffee pairsWith Cookie") {
		t.Fatalf("MSPs = %+v", res.MSPs)
	}
}

func TestExecRequiresFrozenDB(t *testing.T) {
	db := NewDB()
	if err := db.AddFact("A", "r", "B"); err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`SELECT FACT-SETS WHERE SATISFYING A r B WITH SUPPORT = 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(db, q, nil); err == nil {
		t.Fatal("unfrozen DB accepted")
	}
}

func TestOntologyRoundTripThroughFacade(t *testing.T) {
	db := SampleDB()
	var buf bytes.Buffer
	if err := db.WriteOntology(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := LoadOntology(&buf)
	if err != nil {
		t.Fatal(err)
	}
	terms := db2.Terms()
	found := false
	for _, n := range terms {
		if n == "Central Park" {
			found = true
		}
	}
	if !found {
		t.Error("round trip lost Central Park")
	}
}

func TestQuestionnaire(t *testing.T) {
	db := SampleDB()
	qn := NewQuestionnaire(db)
	text, err := qn.Concrete([]Triple{
		{"Biking", "doAt", "Central Park"},
		{"Falafel", "eatAt", "Maoz Veg"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "How often do you") || !strings.Contains(text, "Biking") {
		t.Errorf("question = %q", text)
	}
	qn.SetTemplate("inside", "stay at %s inside %s")
	text2, err := qn.Concrete([]Triple{{"Maoz Veg", "inside", "NYC"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text2, "stay at Maoz Veg inside NYC") {
		t.Errorf("custom template ignored: %q", text2)
	}
	if len(Scale()) != 5 {
		t.Error("answer scale should have 5 levels")
	}
	if _, err := qn.Concrete([]Triple{{"NoSuch", "doAt", "Central Park"}}); err == nil {
		t.Error("unknown term accepted")
	}
}

func TestParseTriplesAndFormat(t *testing.T) {
	db := SampleDB()
	ts, err := db.ParseTriples("Biking doAt Central Park. Falafel eatAt Maoz Veg")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("parsed %d triples", len(ts))
	}
	a := Answer{Text: "X", Valid: false}
	if FormatAnswer(a) != "X  [generalized]" {
		t.Errorf("FormatAnswer = %q", FormatAnswer(a))
	}
	a.Valid = true
	if FormatAnswer(a) != "X" {
		t.Errorf("FormatAnswer = %q", FormatAnswer(a))
	}
	tr := Triple{"A", "r", "B"}
	if tr.String() != "A r B" {
		t.Errorf("Triple.String = %q", tr.String())
	}
}

func TestParseQueryErrorsSurface(t *testing.T) {
	if _, err := ParseQuery("SELECT nonsense"); err == nil {
		t.Error("bad query accepted")
	}
	db := SampleDB()
	q, err := ParseQuery(`SELECT FACT-SETS WHERE $x instanceOf Nonexistent
SATISFYING $x doAt $x WITH SUPPORT = 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Exec(db, q, nil); err == nil {
		t.Error("unknown term in WHERE accepted at Exec")
	}
}

// TestExecParallelismEquivalence pins the facade's dispatcher promise: the
// running example mined with WithParallelism(4) and (16) yields exactly
// the MSPs and statistics of the sequential run.
func TestExecParallelismEquivalence(t *testing.T) {
	db := SampleDB()
	q, err := ParseQuery(figure2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(opts ...Option) *Result {
		opts = append(opts,
			WithAnswersPerQuestion(2),
			WithMoreCandidates(Triple{"Rent Bikes", "doAt", "Boathouse"}))
		res, err := Exec(db, q, table3Members(t, db), opts...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	render := func(r *Result) string {
		var b bytes.Buffer
		for _, m := range r.MSPs {
			b.WriteString(m.Text)
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "%+v", r.Stats)
		return b.String()
	}
	want := render(run())
	for _, p := range []int{4, 16} {
		if got := render(run(WithParallelism(p))); got != want {
			t.Errorf("parallelism %d changed the result:\n got %s\nwant %s", p, got, want)
		}
	}
}
