package oassis

import (
	"context"

	"oassis/internal/assign"
	"oassis/internal/core"
	"oassis/internal/panel"
)

// QuestionID identifies one issued session question.
type QuestionID int64

// QuestionKind enumerates the session question types.
type QuestionKind int

// Session question kinds.
const (
	// Concrete asks how often the member does Facts.
	Concrete QuestionKind = iota
	// Specialization asks the member to pick one of Choices (or reject
	// them all, or decline in favor of concrete questions).
	Specialization
	// Pruning offers the member to mark one of Terms as irrelevant.
	Pruning
)

// SessionQuestion is one independently answerable question surfaced by a
// Session.
type SessionQuestion struct {
	ID     QuestionID
	Member string
	Kind   QuestionKind
	// Facts is the questioned pattern of a Concrete question.
	Facts []Triple
	// Choices holds the candidates of a Specialization question.
	Choices [][]Triple
	// Terms holds the candidate terms of a Pruning question.
	Terms []string
	// Speculative marks a question surfaced ahead of the engine's own
	// request; its answer is buffered, and silently dropped if the run
	// never needs it.
	Speculative bool
}

// Response is the reply to a SessionQuestion. For a Concrete question only
// Frequency is read. For a Specialization question the fields mirror
// SpecializeResponse. For a Pruning question Chosen+Choice clicks the term
// at Choice irrelevant and the zero value clicks nothing.
type Response struct {
	Frequency float64
	Choice    int
	Chosen    bool
	Declined  bool
}

// RespondFrequency answers a Concrete question.
func RespondFrequency(f float64) Response { return Response{Frequency: f} }

// RespondChoice answers a Specialization question by picking candidate idx
// with the given frequency.
func RespondChoice(idx int, f float64) Response {
	return Response{Choice: idx, Frequency: f, Chosen: true}
}

// RespondNoneOfThese rejects every candidate of a Specialization question.
func RespondNoneOfThese() Response { return Response{} }

// RespondDecline asks for concrete questions instead of a Specialization.
func RespondDecline() Response { return Response{Declined: true} }

// RespondIrrelevant answers a Pruning question by clicking the term at idx.
func RespondIrrelevant(idx int) Response { return Response{Choice: idx, Chosen: true} }

// RespondNoClick answers a Pruning question without clicking anything.
func RespondNoClick() Response { return Response{} }

// Session evaluates a query step by step: Next returns every question that
// is currently independently answerable — the one the engine is blocked on
// first, then questions surfaced speculatively for other members — and
// Submit merges an answer back in, in any order. Drive it until Next
// returns no questions, then read the result from Close:
//
//	s, _ := oassis.NewSession(ctx, db, q, []string{"ann", "bob"})
//	for qs := s.Next(); len(qs) > 0; qs = s.Next() {
//	    for _, q := range qs {
//	        s.Submit(q.ID, oassis.RespondFrequency(askHuman(q)))
//	    }
//	}
//	res := s.Close()
//
// A Session is not safe for concurrent use; callers serialize access. When
// ctx is canceled, Next returns no more questions and Close returns the
// partial result.
type Session struct {
	ctx     context.Context
	db      *DB
	all     bool // SELECT ... ALL of the compiled plan
	sp      *assign.Space
	inner   *core.Session
	batcher *panel.Batcher
}

// NewSession compiles the query and starts a step-driven run over the
// given member IDs. The members themselves are not needed — the caller
// answers the questions, which is the shape a crowdsourcing UI or server
// needs. Options are the same as Exec's (WithParallelism is ignored:
// parallelism is the caller's choice of how many questions to answer
// between Next calls).
func NewSession(ctx context.Context, db *DB, q *Query, memberIDs []string, opts ...Option) (*Session, error) {
	o := options{answersPerQuestion: 1, seed: 1, parallelism: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	pl, sp, cfg, err := compile(db, q, &o)
	if err != nil {
		return nil, err
	}
	cfg.Canceled = func() bool { return ctx.Err() != nil }
	inner := core.NewSession(cfg, memberIDs)
	pcfg := panel.Config{Size: o.panelSize}
	if o.priorSource != nil {
		pcfg.Source = priorSourceAdapter{db: db, src: o.priorSource}
	}
	return &Session{
		ctx:     ctx,
		db:      db,
		all:     pl.All,
		sp:      sp,
		inner:   inner,
		batcher: panel.NewBatcher(inner, pcfg),
	}, nil
}

// Next returns the currently answerable questions, or nothing when the run
// has finished (or the session's context was canceled) and Close holds the
// result. The first question is always the one the run cannot proceed
// without.
func (s *Session) Next() []SessionQuestion {
	if s.ctx.Err() != nil {
		s.inner.Close()
		return nil
	}
	qs := s.inner.Next()
	out := make([]SessionQuestion, 0, len(qs))
	for _, q := range qs {
		out = append(out, convertQuestion(s.db, q))
	}
	return out
}

// convertQuestion maps an engine question to the facade's textual form.
func convertQuestion(db *DB, q core.Question) SessionQuestion {
	sq := SessionQuestion{
		ID:          QuestionID(q.ID),
		Member:      q.Member,
		Speculative: q.Speculative,
	}
	switch q.Kind {
	case core.KindSpecialization:
		sq.Kind = Specialization
		sq.Choices = make([][]Triple, len(q.Choices))
		for i, c := range q.Choices {
			sq.Choices[i] = db.triples(c)
		}
	case core.KindPruning:
		sq.Kind = Pruning
		sq.Terms = make([]string, len(q.Terms))
		for i, t := range q.Terms {
			sq.Terms[i] = db.voc.Name(t)
		}
	default:
		sq.Kind = Concrete
		sq.Facts = db.triples(q.Facts)
	}
	return sq
}

// PanelItem is one question inside a Panel: the question, the priority
// that ranked it into the panel (higher is earlier; the question the run
// is blocked on always leads), and its prior guess.
type PanelItem struct {
	Question SessionQuestion
	Priority float64
	Prior    Prior
}

// Confirm reports whether the item renders as a one-tap confirmation
// (high-confidence prior) rather than an open question.
func (it PanelItem) Confirm() bool { return it.Prior.Confirmable() }

// Panel is one member's batch of currently answerable questions,
// priority-ordered and primed with priors: one screen, one round trip.
type Panel struct {
	Member string
	Items  []PanelItem
}

// PanelAnswer pairs a panel item's question ID with its response for
// SubmitPanel.
type PanelAnswer struct {
	ID       QuestionID
	Response Response
}

// NextPanels is the batched form of Next: the currently answerable
// questions grouped into per-member panels of at most the WithPanelSize
// bound (default 8), each item primed with a Prior from the session
// aggregate, the ontology, or the WithPriorSource option. The first
// panel holds the question the run cannot proceed without. NextPanels
// returns nil exactly when Next would return no questions. Panels and
// single questions can be mixed freely; results are identical either
// way.
func (s *Session) NextPanels() []Panel {
	if s.ctx.Err() != nil {
		s.inner.Close()
		return nil
	}
	ps := s.batcher.Next()
	out := make([]Panel, 0, len(ps))
	for _, p := range ps {
		items := make([]PanelItem, len(p.Items))
		for i, it := range p.Items {
			items[i] = PanelItem{
				Question: convertQuestion(s.db, it.Question),
				Priority: it.Priority,
				Prior:    it.Prior,
			}
		}
		out = append(out, Panel{Member: p.Member, Items: items})
	}
	return out
}

// SubmitPanel merges a whole panel of answers in one call, applying them
// in deterministic (question ID) order — the result is bit-identical to
// submitting each answer individually, in any order. Unknown IDs make it
// report ErrUnknownQuestion after applying the valid answers; answers to
// questions the run has moved past are dropped silently.
func (s *Session) SubmitPanel(answers []PanelAnswer) error {
	if err := s.ctx.Err(); err != nil {
		return err
	}
	subs := make([]core.Submission, len(answers))
	for i, a := range answers {
		subs[i] = core.Submission{ID: core.QuestionID(a.ID), Answer: core.Answer{
			Support:  a.Response.Frequency,
			Choice:   a.Response.Choice,
			Chosen:   a.Response.Chosen,
			Declined: a.Response.Declined,
		}}
	}
	return s.inner.SubmitBatch(subs)
}

// Submit merges the answer to a previously issued question. Errors match
// ErrSessionDone and ErrUnknownQuestion via errors.Is; answers to
// questions the run has moved past are accepted and dropped silently.
func (s *Session) Submit(id QuestionID, r Response) error {
	if err := s.ctx.Err(); err != nil {
		return err
	}
	return s.inner.Submit(core.QuestionID(id), core.Answer{
		Support:  r.Frequency,
		Choice:   r.Choice,
		Chosen:   r.Chosen,
		Declined: r.Declined,
	})
}

// Leave ends a member's participation; the run continues with the rest of
// the crowd.
func (s *Session) Leave(memberID string) { s.inner.Leave(memberID) }

// Done reports whether the run has finished.
func (s *Session) Done() bool { return s.inner.Done() }

// Close ends the run if it is still going and returns the (then possibly
// partial) result.
func (s *Session) Close() *Result {
	res := s.inner.Close()
	return convertResult(s.db, s.all, s.sp, res)
}
