// Self-treatment: the paper's third application domain (§6.3) — what do
// people take to relieve common illness symptoms, information useful to
// health researchers. Demonstrates the MORE keyword (members volunteer
// extra advice), ontology serialization (WriteOntology / LoadOntology), and
// user-guided pruning.
package main

import (
	"bytes"
	"fmt"
	"log"

	"oassis"
)

func main() {
	db := oassis.NewDB()
	sub := func(g, s string) {
		if err := db.AddSubsumption(g, s, "subClassOf"); err != nil {
			log.Fatal(err)
		}
	}
	// Remedies.
	sub("Remedy", "Home Remedy")
	sub("Remedy", "Medicine")
	sub("Home Remedy", "Herbal Tea")
	sub("Home Remedy", "Chicken Soup")
	sub("Home Remedy", "Honey")
	sub("Herbal Tea", "Chamomile Tea")
	sub("Herbal Tea", "Ginger Tea")
	sub("Medicine", "Painkiller")
	sub("Medicine", "Nasal Spray")
	sub("Painkiller", "Ibuprofen")
	sub("Painkiller", "Paracetamol")
	// Symptoms.
	sub("Symptom", "Headache")
	sub("Symptom", "Sore Throat")
	sub("Symptom", "Runny Nose")
	if err := db.AddRelation("takeFor"); err != nil {
		log.Fatal(err)
	}
	if err := db.AddRelation("restFor"); err != nil {
		log.Fatal(err)
	}
	if err := db.AddTerm("Warm Blanket"); err != nil {
		log.Fatal(err)
	}
	if err := db.Freeze(); err != nil {
		log.Fatal(err)
	}

	// Round-trip the ontology through the Turtle subset, as a real
	// deployment would persist it.
	var buf bytes.Buffer
	if err := db.WriteOntology(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ontology serialized to %d bytes of Turtle\n\n", buf.Len())

	histories := [][]string{
		{
			"Ginger Tea takeFor Sore Throat. Honey takeFor Sore Throat",
			"Ginger Tea takeFor Sore Throat. Honey takeFor Sore Throat. Warm Blanket restFor Sore Throat",
			"Ibuprofen takeFor Headache",
			"Chicken Soup takeFor Runny Nose",
		},
		{
			"Ginger Tea takeFor Sore Throat. Honey takeFor Sore Throat. Warm Blanket restFor Sore Throat",
			"Paracetamol takeFor Headache",
			"Ibuprofen takeFor Headache",
		},
		{
			"Ginger Tea takeFor Sore Throat. Warm Blanket restFor Sore Throat",
			"Ibuprofen takeFor Headache",
			"Ibuprofen takeFor Headache. Chamomile Tea takeFor Headache",
		},
	}
	var members []oassis.Member
	for i, h := range histories {
		m, err := oassis.SimulatedMember(db, fmt.Sprintf("patient-%d", i), h...)
		if err != nil {
			log.Fatal(err)
		}
		members = append(members, m)
	}

	q, err := oassis.ParseQuery(`
SELECT FACT-SETS
WHERE
  $r subClassOf* Remedy .
  $s subClassOf* Symptom
SATISFYING
  $r takeFor $s .
  MORE
WITH SUPPORT = 0.5`)
	if err != nil {
		log.Fatal(err)
	}

	res, err := oassis.Exec(db, q, members,
		oassis.WithAnswersPerQuestion(3),
		oassis.WithPruning(),
		oassis.WithMoreCandidates(
			oassis.Triple{Subject: "Warm Blanket", Relation: "restFor", Object: "Sore Throat"},
		),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("What the crowd takes for its symptoms (MSPs):")
	for _, m := range res.MSPs {
		fmt.Printf("  • %s\n", m.Text)
	}
	fmt.Printf("\n%d answers (%d concrete, %d pruning clicks)\n",
		res.Stats.TotalQuestions, res.Stats.Concrete, res.Stats.PruningClicks)
}
