// Travel: a larger hand-built travel-recommendation scenario (the paper's
// first application domain, §6.3, with Tel Aviv stand-ins). It demonstrates
// programmatic ontology construction, a crowd of several members, and the
// effect of sweeping the support threshold on the answers and the crowd
// effort — the shape of Figure 4a.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"oassis"
)

func buildOntology() (*oassis.DB, error) {
	db := oassis.NewDB()
	type edge struct{ general, specific string }
	classes := []edge{
		{"Place", "City"}, {"Place", "Attraction"}, {"Place", "Restaurant"},
		{"Attraction", "Beach"}, {"Attraction", "Park"}, {"Attraction", "Market"},
		{"Activity", "Sport"}, {"Activity", "Food Tour"}, {"Activity", "Sightseeing"},
		{"Sport", "Surfing"}, {"Sport", "Beach Volleyball"}, {"Sport", "Jogging"},
		{"Sightseeing", "Photo Walk"}, {"Sightseeing", "Street Art Tour"},
	}
	for _, c := range classes {
		if err := db.AddSubsumption(c.general, c.specific, "subClassOf"); err != nil {
			return nil, err
		}
	}
	instances := []edge{
		{"City", "Tel Aviv"},
		{"Beach", "Gordon Beach"}, {"Beach", "Hilton Beach"},
		{"Park", "Yarkon Park"}, {"Market", "Carmel Market"},
		{"Restaurant", "Hummus Corner"}, {"Restaurant", "Sea Grill"}, {"Restaurant", "Falafel King"},
	}
	for _, c := range instances {
		if err := db.AddSubsumption(c.general, c.specific, "instanceOf"); err != nil {
			return nil, err
		}
	}
	facts := [][3]string{
		{"Gordon Beach", "inside", "Tel Aviv"},
		{"Hilton Beach", "inside", "Tel Aviv"},
		{"Yarkon Park", "inside", "Tel Aviv"},
		{"Carmel Market", "inside", "Tel Aviv"},
		{"Sea Grill", "nearBy", "Gordon Beach"},
		{"Hummus Corner", "nearBy", "Carmel Market"},
		{"Falafel King", "nearBy", "Yarkon Park"},
	}
	for _, f := range facts {
		if err := db.AddFact(f[0], f[1], f[2]); err != nil {
			return nil, err
		}
	}
	if err := db.AddRelationOrder("nearBy", "inside"); err != nil {
		return nil, err
	}
	// doAt appears only in personal histories and the SATISFYING clause.
	if err := db.AddRelation("doAt"); err != nil {
		return nil, err
	}
	for _, fam := range []string{"Gordon Beach", "Yarkon Park", "Carmel Market"} {
		if err := db.AddLabel(fam, "family-friendly"); err != nil {
			return nil, err
		}
	}
	if err := db.Freeze(); err != nil {
		return nil, err
	}
	return db, nil
}

// buildCrowd synthesizes 10 members whose histories share two popular
// habits (surfing at Gordon Beach + Sea Grill; jogging in Yarkon Park +
// Falafel King) and one niche one.
func buildCrowd(db *oassis.DB) ([]oassis.Member, error) {
	rng := rand.New(rand.NewSource(7))
	var members []oassis.Member
	for i := 0; i < 10; i++ {
		var history []string
		for t := 0; t < 12; t++ {
			switch {
			case rng.Float64() < 0.55:
				history = append(history, "Surfing doAt Gordon Beach")
			case rng.Float64() < 0.5:
				history = append(history, "Jogging doAt Yarkon Park")
			case rng.Float64() < 0.4:
				history = append(history, "Photo Walk doAt Carmel Market")
			default:
				history = append(history, "Beach Volleyball doAt Hilton Beach")
			}
		}
		m, err := oassis.SimulatedMember(db, fmt.Sprintf("traveler-%02d", i), history...)
		if err != nil {
			return nil, err
		}
		members = append(members, m)
	}
	return members, nil
}

func main() {
	db, err := buildOntology()
	if err != nil {
		log.Fatal(err)
	}
	members, err := buildCrowd(db)
	if err != nil {
		log.Fatal(err)
	}

	for _, theta := range []float64{0.2, 0.3, 0.4, 0.5} {
		q, err := oassis.ParseQuery(fmt.Sprintf(`
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside "Tel Aviv".
  $x hasLabel "family-friendly".
  $y subClassOf* Activity
SATISFYING
  $y+ doAt $x
WITH SUPPORT = %g`, theta))
		if err != nil {
			log.Fatal(err)
		}
		res, err := oassis.Exec(db, q, members, oassis.WithAnswersPerQuestion(5))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("theta %.1f: %d MSPs, %d questions\n", theta, len(res.MSPs), res.Stats.TotalQuestions)
		for _, m := range res.MSPs {
			fmt.Printf("    %s\n", m.Text)
		}
	}
}
