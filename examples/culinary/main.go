// Culinary: the paper's second application domain (§6.3) — mining popular
// combinations of dishes and drinks, e.g. for composing restaurant menus.
// Demonstrates multiplicities (several dishes in one occasion via $d+),
// SELECT ... ALL, and custom natural-language question templates.
package main

import (
	"fmt"
	"log"

	"oassis"
)

func main() {
	db := oassis.NewDB()
	sub := func(g, s string) {
		if err := db.AddSubsumption(g, s, "subClassOf"); err != nil {
			log.Fatal(err)
		}
	}
	sub("Food", "Snack")
	sub("Food", "Health Food")
	sub("Food", "Main Dish")
	sub("Snack", "Fries")
	sub("Snack", "Pretzel")
	sub("Health Food", "Muesli")
	sub("Health Food", "Salad")
	sub("Main Dish", "Steak")
	sub("Main Dish", "Pasta Bowl")
	sub("Drink", "Soft Drink")
	sub("Drink", "Juice")
	sub("Soft Drink", "Coke")
	sub("Soft Drink", "Lemonade")
	sub("Juice", "Apple Juice")
	sub("Juice", "Orange Juice")

	// A crowd with the paper's observed habits: steak with fries and a
	// coke; muesli (with yogurt) and apple juice.
	histories := map[string][]string{
		"diner-1": {
			"Steak alongside Fries. Steak alongside Coke",
			"Steak alongside Fries. Steak alongside Coke",
			"Muesli alongside Apple Juice",
			"Pasta Bowl alongside Lemonade",
		},
		"diner-2": {
			"Steak alongside Fries. Steak alongside Coke",
			"Muesli alongside Apple Juice",
			"Muesli alongside Apple Juice",
			"Salad alongside Orange Juice",
		},
		"diner-3": {
			"Steak alongside Fries. Steak alongside Coke",
			"Steak alongside Fries",
			"Muesli alongside Apple Juice",
			"Pretzel alongside Coke",
		},
	}
	// `alongside` appears only in personal histories, never as an ontology
	// fact — intern the relation so histories and the query can use it.
	if err := db.AddRelation("alongside"); err != nil {
		log.Fatal(err)
	}
	if err := db.Freeze(); err != nil {
		log.Fatal(err)
	}

	var members []oassis.Member
	for name, h := range histories {
		m, err := oassis.SimulatedMember(db, name, h...)
		if err != nil {
			log.Fatal(err)
		}
		members = append(members, m)
	}

	q, err := oassis.ParseQuery(`
SELECT FACT-SETS ALL
WHERE
  $d subClassOf* "Main Dish" .
  $s subClassOf* Snack .
  $k subClassOf* Drink
SATISFYING
  $d alongside $s .
  $d alongside $k
WITH SUPPORT = 0.3`)
	if err != nil {
		log.Fatal(err)
	}

	res, err := oassis.Exec(db, q, members, oassis.WithAnswersPerQuestion(3))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Menu combinations the crowd actually orders (MSPs):")
	for _, m := range res.MSPs {
		fmt.Printf("  • %s\n", m.Text)
	}
	fmt.Println("\nEvery significant combination (SELECT ALL):")
	for _, a := range res.AllSignificant {
		fmt.Printf("  - %s\n", oassis.FormatAnswer(a))
	}

	// Render one crowd question the way the UI would show it.
	qn := oassis.NewQuestionnaire(db)
	qn.SetTemplate("alongside", "have %s with %s")
	text, err := qn.Concrete([]oassis.Triple{
		{Subject: "Steak", Relation: "alongside", Object: "Fries"},
		{Subject: "Steak", Relation: "alongside", Object: "Coke"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSample crowd question:", text)
}
