// Quickstart: the paper's running example end to end — Ann plans a family
// day in NYC. The ontology is Figure 1, the query is Figure 2, the crowd is
// the two members of Table 3, and the output is the paper's answer list,
// including the "rent the bikes at the Boathouse" tip contributed through
// the MORE keyword.
package main

import (
	"context"
	"fmt"
	"log"

	"oassis"
)

const annsQuery = `
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity .
  $z instanceOf Restaurant.
  $z nearBy $x
SATISFYING
  $y+ doAt $x .
  [] eatAt $z.
  MORE
WITH SUPPORT = 0.4
`

func main() {
	db := oassis.SampleDB()

	q, err := oassis.ParseQuery(annsQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Ann's question, as OASSIS-QL:")
	fmt.Println(q)
	fmt.Println()

	// The crowd: u1 and u2 with the personal histories of Table 3. In a
	// real deployment these would be live people behind the Member
	// interface; here their virtual personal databases answer.
	u1, err := oassis.SimulatedMember(db, "u1",
		"Basketball doAt Central Park. Falafel eatAt Maoz Veg",
		"Feed a Monkey doAt Bronx Zoo. Pasta eatAt Pine",
		"Biking doAt Central Park. Rent Bikes doAt Boathouse. Falafel eatAt Maoz Veg",
		"Baseball doAt Central Park. Biking doAt Central Park. Rent Bikes doAt Boathouse. Falafel eatAt Maoz Veg",
		"Feed a Monkey doAt Bronx Zoo. Pasta eatAt Pine",
		"Feed a Monkey doAt Bronx Zoo",
	)
	if err != nil {
		log.Fatal(err)
	}
	u2, err := oassis.SimulatedMember(db, "u2",
		"Baseball doAt Central Park. Biking doAt Central Park. Rent Bikes doAt Boathouse. Falafel eatAt Maoz Veg",
		"Feed a Monkey doAt Bronx Zoo. Pasta eatAt Pine",
	)
	if err != nil {
		log.Fatal(err)
	}

	res, err := oassis.Exec(db, q, []oassis.Member{u1, u2},
		oassis.WithAnswersPerQuestion(2),
		oassis.WithMoreCandidates(oassis.Triple{Subject: "Rent Bikes", Relation: "doAt", Object: "Boathouse"}),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Answers (maximal significant patterns):")
	for _, m := range res.MSPs {
		fmt.Printf("  • %s\n", m.Text)
	}
	fmt.Printf("\nCrowd effort: %d answers (%d distinct questions) over %d lattice nodes\n",
		res.Stats.TotalQuestions, res.Stats.UniqueQuestions, res.Stats.GeneratedNodes)

	// The same query, step-driven: a Session surfaces the answerable
	// questions and the caller owns the loop — the shape a crowdsourcing
	// UI needs (oassis-server is this loop behind HTTP). Here the Table 3
	// members answer programmatically; the mined result is identical.
	byID := map[string]oassis.Member{u1.ID(): u1, u2.ID(): u2}
	s, err := oassis.NewSession(context.Background(), db, q,
		[]string{u1.ID(), u2.ID()},
		oassis.WithAnswersPerQuestion(2),
		oassis.WithMoreCandidates(oassis.Triple{Subject: "Rent Bikes", Relation: "doAt", Object: "Boathouse"}),
	)
	if err != nil {
		log.Fatal(err)
	}
	asked := 0
	for qs := s.Next(); len(qs) > 0; qs = s.Next() {
		for _, question := range qs {
			m := byID[question.Member]
			var r oassis.Response
			switch question.Kind {
			case oassis.Specialization:
				sr := m.Specialize(question.Choices)
				r = oassis.Response{Frequency: sr.Frequency, Choice: sr.Choice,
					Chosen: sr.Chosen, Declined: sr.Declined}
			case oassis.Pruning:
				r = oassis.RespondNoClick()
			default:
				r = oassis.RespondFrequency(m.HowOften(question.Facts))
			}
			if err := s.Submit(question.ID, r); err != nil {
				log.Fatal(err)
			}
			asked++
		}
	}
	res2 := s.Close()
	same := len(res2.MSPs) == len(res.MSPs)
	for i := 0; same && i < len(res.MSPs); i++ {
		same = res2.MSPs[i].Text == res.MSPs[i].Text
	}
	fmt.Printf("\nStep-driven session: %d answers submitted, same answers as Exec: %v\n",
		asked, same)
}
