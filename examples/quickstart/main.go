// Quickstart: the paper's running example end to end — Ann plans a family
// day in NYC. The ontology is Figure 1, the query is Figure 2, the crowd is
// the two members of Table 3, and the output is the paper's answer list,
// including the "rent the bikes at the Boathouse" tip contributed through
// the MORE keyword.
package main

import (
	"fmt"
	"log"

	"oassis"
)

const annsQuery = `
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity .
  $z instanceOf Restaurant.
  $z nearBy $x
SATISFYING
  $y+ doAt $x .
  [] eatAt $z.
  MORE
WITH SUPPORT = 0.4
`

func main() {
	db := oassis.SampleDB()

	q, err := oassis.ParseQuery(annsQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Ann's question, as OASSIS-QL:")
	fmt.Println(q)
	fmt.Println()

	// The crowd: u1 and u2 with the personal histories of Table 3. In a
	// real deployment these would be live people behind the Member
	// interface; here their virtual personal databases answer.
	u1, err := oassis.SimulatedMember(db, "u1",
		"Basketball doAt Central Park. Falafel eatAt Maoz Veg",
		"Feed a Monkey doAt Bronx Zoo. Pasta eatAt Pine",
		"Biking doAt Central Park. Rent Bikes doAt Boathouse. Falafel eatAt Maoz Veg",
		"Baseball doAt Central Park. Biking doAt Central Park. Rent Bikes doAt Boathouse. Falafel eatAt Maoz Veg",
		"Feed a Monkey doAt Bronx Zoo. Pasta eatAt Pine",
		"Feed a Monkey doAt Bronx Zoo",
	)
	if err != nil {
		log.Fatal(err)
	}
	u2, err := oassis.SimulatedMember(db, "u2",
		"Baseball doAt Central Park. Biking doAt Central Park. Rent Bikes doAt Boathouse. Falafel eatAt Maoz Veg",
		"Feed a Monkey doAt Bronx Zoo. Pasta eatAt Pine",
	)
	if err != nil {
		log.Fatal(err)
	}

	res, err := oassis.Exec(db, q, []oassis.Member{u1, u2},
		oassis.WithAnswersPerQuestion(2),
		oassis.WithMoreCandidates(oassis.Triple{Subject: "Rent Bikes", Relation: "doAt", Object: "Boathouse"}),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Answers (maximal significant patterns):")
	for _, m := range res.MSPs {
		fmt.Printf("  • %s\n", m.Text)
	}
	fmt.Printf("\nCrowd effort: %d answers (%d distinct questions) over %d lattice nodes\n",
		res.Stats.TotalQuestions, res.Stats.UniqueQuestions, res.Stats.GeneratedNodes)
}
