// Itemsets: OASSIS-QL as a standard frequent-itemset miner. Section 4.1 of
// the paper notes that with an empty WHERE clause and the pattern
// `$x+ [] []`, the language captures classic frequent itemset mining — "an
// independent contribution outside of the crowd setting". This example
// mines a small market-basket database that way and prints the maximal
// frequent itemsets.
package main

import (
	"fmt"
	"log"
	"strings"

	"oassis"
)

func main() {
	db := oassis.NewDB()
	// A flat vocabulary: products with no subsumption, one bookkeeping
	// relation/object so each basket is a fact-set.
	products := []string{"bread", "milk", "beer", "eggs", "diapers", "butter"}
	for _, p := range products {
		if err := db.AddTerm(p); err != nil {
			log.Fatal(err)
		}
	}
	if err := db.AddRelation("in"); err != nil {
		log.Fatal(err)
	}
	if err := db.AddTerm("basket"); err != nil {
		log.Fatal(err)
	}
	if err := db.Freeze(); err != nil {
		log.Fatal(err)
	}

	baskets := [][]string{
		{"bread", "milk"},
		{"bread", "diapers", "beer", "eggs"},
		{"milk", "diapers", "beer"},
		{"bread", "milk", "diapers", "beer"},
		{"bread", "milk", "diapers"},
	}
	var history []string
	for _, b := range baskets {
		var facts []string
		for _, p := range b {
			facts = append(facts, p+" in basket")
		}
		history = append(history, strings.Join(facts, ". "))
	}
	shopper, err := oassis.SimulatedMember(db, "till-log", history...)
	if err != nil {
		log.Fatal(err)
	}

	// The §4.1 capture query: empty WHERE, $x+ [] [].
	q, err := oassis.ParseQuery(`SELECT FACT-SETS WHERE SATISFYING $x+ [] [] WITH SUPPORT = 0.6`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := oassis.Exec(db, q, []oassis.Member{shopper})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Maximal frequent itemsets (support ≥ 0.6):")
	for _, m := range res.MSPs {
		var items []string
		for _, f := range m.Facts {
			items = append(items, f.Subject)
		}
		fmt.Printf("  {%s}\n", strings.Join(items, ", "))
	}
	fmt.Printf("\n%d support queries against the transaction database\n", res.Stats.TotalQuestions)
}
