package oassis

import (
	"testing"
)

// TestExecWithStoreResumes exercises the public WithStore path: a run cut
// short by a question budget persists its answers, and a rerun against
// the same directory replays them — finishing with the same output as an
// uninterrupted run and asking only the missing questions live.
func TestExecWithStoreResumes(t *testing.T) {
	db := SampleDB()
	q, err := ParseQuery(figure2)
	if err != nil {
		t.Fatal(err)
	}

	ref, err := Exec(db, q, table3Members(t, db), WithAnswersPerQuestion(2))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.RecoveredAnswers() != 0 {
		t.Fatalf("fresh store recovered %d answers", st.RecoveredAnswers())
	}
	budget := ref.Stats.TotalQuestions / 2
	part, err := Exec(db, q, table3Members(t, db),
		WithAnswersPerQuestion(2), WithMaxQuestions(budget), WithStore(st))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if part.Stats.StoreErrors != 0 {
		t.Fatalf("store errors in first run: %d", part.Stats.StoreErrors)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.RecoveredAnswers() == 0 {
		t.Fatal("nothing recovered from the interrupted run")
	}
	res, err := Exec(db, q, table3Members(t, db),
		WithAnswersPerQuestion(2), WithStore(st2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PrimedAnswers == 0 {
		t.Fatal("resumed run replayed no answers")
	}
	if res.Stats.TotalQuestions != ref.Stats.TotalQuestions {
		t.Errorf("resumed run counted %d questions, want %d",
			res.Stats.TotalQuestions, ref.Stats.TotalQuestions)
	}
	if live := res.Stats.TotalQuestions - res.Stats.PrimedAnswers; live >= ref.Stats.TotalQuestions {
		t.Errorf("resumed run asked %d live questions, no better than %d from scratch",
			live, ref.Stats.TotalQuestions)
	}
	if len(res.MSPs) != len(ref.MSPs) {
		t.Fatalf("resumed MSPs = %d, want %d", len(res.MSPs), len(ref.MSPs))
	}
	for i := range res.MSPs {
		if res.MSPs[i].Text != ref.MSPs[i].Text {
			t.Errorf("resumed MSP %d = %q, want %q", i, res.MSPs[i].Text, ref.MSPs[i].Text)
		}
	}
}
