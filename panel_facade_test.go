package oassis

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
)

// renderResult flattens a result for bit-identity comparison: the valid
// MSP texts (sorted; execution order is not part of the contract) plus
// the crowd-effort statistics.
func renderResult(t *testing.T, res *Result) string {
	t.Helper()
	var texts []string
	for _, m := range res.MSPs {
		texts = append(texts, m.Text)
	}
	sort.Strings(texts)
	return strings.Join(texts, "\n") + fmt.Sprintf("\nstats: %+v", res.Stats)
}

// panelSim wraps a simulated member into a PanelMember and records the
// largest batch it was handed, so tests can prove batching happened.
type panelSim struct {
	Member
	maxBatch int
}

func (p *panelSim) AnswerPanel(qs []PanelQuestion) []float64 {
	if len(qs) > p.maxBatch {
		p.maxBatch = len(qs)
	}
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = p.HowOften(q.Facts)
	}
	return out
}

// TestWithPanelSizeEquivalence: Exec with panel batching on — at several
// sizes, with and without dispatch parallelism, with PanelMember
// batch-answering — mines a result bit-identical to the one-question
// default, and the members really see multi-question panels.
func TestWithPanelSizeEquivalence(t *testing.T) {
	db := SampleDB()
	q, err := ParseQuery(figure2)
	if err != nil {
		t.Fatal(err)
	}
	boathouse := WithMoreCandidates(Triple{"Rent Bikes", "doAt", "Boathouse"})
	base, err := Exec(db, q, table3Members(t, db), WithAnswersPerQuestion(2), boathouse)
	if err != nil {
		t.Fatal(err)
	}
	want := renderResult(t, base)
	for _, tc := range []struct {
		name        string
		size, par   int
		wantBatched bool
	}{
		{"size1", 1, 1, false},
		{"size4", 4, 1, true},
		{"size16-par8", 16, 8, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sims := table3Members(t, db)
			members := make([]Member, len(sims))
			wrapped := make([]*panelSim, len(sims))
			for i, m := range sims {
				wrapped[i] = &panelSim{Member: m}
				members[i] = wrapped[i]
			}
			res, err := Exec(db, q, members, WithAnswersPerQuestion(2), boathouse,
				WithPanelSize(tc.size), WithParallelism(tc.par))
			if err != nil {
				t.Fatal(err)
			}
			if got := renderResult(t, res); got != want {
				t.Errorf("panel run diverged from one-question run:\n--- got\n%s\n--- want\n%s", got, want)
			}
			maxBatch := 0
			for _, w := range wrapped {
				if w.maxBatch > maxBatch {
					maxBatch = w.maxBatch
				}
			}
			if tc.wantBatched && maxBatch < 2 {
				t.Errorf("largest batch handed to a PanelMember was %d; batching never happened", maxBatch)
			}
			if !tc.wantBatched && maxBatch > 1 {
				t.Errorf("panel size 1 handed out a batch of %d", maxBatch)
			}
		})
	}
}

// TestAdaptMember: wrapping a single-question member answers each panel
// item with HowOften, and wrapping an existing PanelMember is the
// identity.
func TestAdaptMember(t *testing.T) {
	db := SampleDB()
	sims := table3Members(t, db)
	pm := AdaptMember(sims[0])
	facts := [][]Triple{
		{{"Biking", "doAt", "Central Park"}},
		{{"Feed a Monkey", "doAt", "Bronx Zoo"}},
	}
	qs := make([]PanelQuestion, len(facts))
	for i, fs := range facts {
		qs[i] = PanelQuestion{Facts: fs}
	}
	got := pm.AnswerPanel(qs)
	if len(got) != len(qs) {
		t.Fatalf("AnswerPanel returned %d answers for %d questions", len(got), len(qs))
	}
	for i, fs := range facts {
		if want := sims[0].HowOften(fs); got[i] != want {
			t.Errorf("panel answer %d = %v, HowOften = %v", i, got[i], want)
		}
	}
	already := &panelSim{Member: sims[1]}
	if AdaptMember(already) != PanelMember(already) {
		t.Error("AdaptMember re-wrapped a member that already batches")
	}
}

// fixedPriors is a facade PriorSource guessing the same frequency for
// every concrete question at high confidence.
type fixedPriors struct{ f float64 }

func (p fixedPriors) Prior(q SessionQuestion) Prior {
	if q.Kind != Concrete {
		return Prior{}
	}
	return Prior{Support: p.f, Confidence: ConfidenceHigh, Source: "fixed"}
}

// TestSessionPanels drives a step-driven session entirely through
// NextPanels/SubmitPanel — with a custom prior source — and checks the
// result matches Exec on the same domain, query, and crowd.
func TestSessionPanels(t *testing.T) {
	db := SampleDB()
	q, err := ParseQuery(figure2)
	if err != nil {
		t.Fatal(err)
	}
	boathouse := WithMoreCandidates(Triple{"Rent Bikes", "doAt", "Boathouse"})
	base, err := Exec(db, q, table3Members(t, db), WithAnswersPerQuestion(2), boathouse)
	if err != nil {
		t.Fatal(err)
	}
	want := renderResult(t, base)

	members := map[string]Member{}
	for _, m := range table3Members(t, db) {
		members[m.ID()] = m
	}
	s, err := NewSession(context.Background(), db, q, []string{"u1", "u2"},
		WithAnswersPerQuestion(2), boathouse,
		WithPanelSize(4), WithPriorSource(fixedPriors{f: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	answer := func(m Member, sq SessionQuestion) Response {
		switch sq.Kind {
		case Specialization:
			r := m.Specialize(sq.Choices)
			return Response{Frequency: r.Frequency, Choice: r.Choice, Chosen: r.Chosen, Declined: r.Declined}
		case Pruning:
			if name, ok := m.Irrelevant(sq.Terms); ok {
				for i, term := range sq.Terms {
					if term == name {
						return RespondIrrelevant(i)
					}
				}
			}
			return RespondNoClick()
		default:
			return RespondFrequency(m.HowOften(sq.Facts))
		}
	}
	maxPanel := 0
	sawPrior := false
	for ps := s.NextPanels(); len(ps) > 0; ps = s.NextPanels() {
		for _, p := range ps {
			if len(p.Items) > maxPanel {
				maxPanel = len(p.Items)
			}
			answers := make([]PanelAnswer, 0, len(p.Items))
			for _, it := range p.Items {
				if it.Prior.Source == "fixed" && it.Confirm() {
					sawPrior = true
				}
				answers = append(answers, PanelAnswer{
					ID:       it.Question.ID,
					Response: answer(members[it.Question.Member], it.Question),
				})
			}
			if err := s.SubmitPanel(answers); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := renderResult(t, s.Close()); got != want {
		t.Errorf("panel-driven session diverged from Exec:\n--- got\n%s\n--- want\n%s", got, want)
	}
	if maxPanel < 2 {
		t.Errorf("largest panel carried %d item(s); batching never happened", maxPanel)
	}
	if !sawPrior {
		t.Error("the WithPriorSource priors never reached a panel item")
	}
}

// TestInvalidOptionGoldenErrors pins the exact error text of option
// validation: every out-of-range value matches ErrInvalidOption via
// errors.Is and reports the offending value.
func TestInvalidOptionGoldenErrors(t *testing.T) {
	db := SampleDB()
	q, err := ParseQuery(figure2)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opt  Option
		want string
	}{
		{"panel size", WithPanelSize(-1), "oassis: invalid option: panel size -1 (want >= 0)"},
		{"answers per question", WithAnswersPerQuestion(0), "oassis: invalid option: answers per question 0 (want >= 1)"},
		{"specialization ratio", WithSpecializationRatio(1.5), "oassis: invalid option: specialization ratio 1.5 (want within [0, 1])"},
		{"parallelism", WithParallelism(-2), "oassis: invalid option: parallelism -2 (want >= 0)"},
		{"top-k", WithTopK(-1), "oassis: invalid option: top-k -1 (want >= 0)"},
		{"ordering policy", WithPolicy("nope"), "oassis: invalid option: ordering policy \"nope\" (want one of chain-prune, largest-first, max-prune, paper-order)"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Exec(db, q, nil, tc.opt)
			if !errors.Is(err, ErrInvalidOption) {
				t.Fatalf("err = %v, want ErrInvalidOption", err)
			}
			if err.Error() != tc.want {
				t.Errorf("error text drifted:\n got  %q\n want %q", err.Error(), tc.want)
			}
			if _, err := NewSession(context.Background(), db, q, nil, tc.opt); !errors.Is(err, ErrInvalidOption) {
				t.Errorf("NewSession err = %v, want ErrInvalidOption", err)
			}
		})
	}
}
