package oassis

import (
	"os"
	"strings"
	"testing"
)

// TestLanguageGuideExamplesParse keeps docs/LANGUAGE.md honest: every
// ```oassisql code block in the guide must parse.
func TestLanguageGuideExamplesParse(t *testing.T) {
	data, err := os.ReadFile("docs/LANGUAGE.md")
	if err != nil {
		t.Fatal(err)
	}
	blocks := extractBlocks(string(data), "oassisql")
	if len(blocks) < 8 {
		t.Fatalf("only %d oassisql examples found in the guide", len(blocks))
	}
	for i, b := range blocks {
		if _, err := ParseQuery(b); err != nil {
			t.Errorf("guide example %d does not parse: %v\n%s", i+1, err, b)
		}
	}
}

// TestLanguageGuideExamplesRun executes the guide examples that only use
// sample-ontology terms against the Table 3 crowd, ensuring they not only
// parse but evaluate.
func TestLanguageGuideExamplesRun(t *testing.T) {
	data, err := os.ReadFile("docs/LANGUAGE.md")
	if err != nil {
		t.Fatal(err)
	}
	db := SampleDB()
	members := table3Members(t, db)
	ran := 0
	for i, b := range extractBlocks(string(data), "oassisql") {
		q, err := ParseQuery(b)
		if err != nil {
			continue // covered by the parse test
		}
		res, err := Exec(db, q, members, WithAnswersPerQuestion(2))
		if err != nil {
			// Examples referencing terms outside the sample ontology are
			// expected to fail name resolution; anything else is a bug.
			if strings.Contains(err.Error(), "unknown term") {
				continue
			}
			t.Errorf("guide example %d failed to run: %v", i+1, err)
			continue
		}
		_ = res
		ran++
	}
	if ran < 6 {
		t.Errorf("only %d guide examples ran end to end", ran)
	}
}

// extractBlocks pulls fenced code blocks with the given info string.
func extractBlocks(doc, lang string) []string {
	var out []string
	lines := strings.Split(doc, "\n")
	var cur []string
	in := false
	for _, line := range lines {
		switch {
		case !in && strings.TrimSpace(line) == "```"+lang:
			in = true
			cur = cur[:0]
		case in && strings.TrimSpace(line) == "```":
			in = false
			out = append(out, strings.Join(cur, "\n"))
		case in:
			cur = append(cur, line)
		}
	}
	return out
}
