package oassis

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"oassis/internal/synth"
)

// checkPlanGolden compares a plan's serialized IR to its checked-in golden
// file; -update (as in the api.txt test) rewrites the golden.
func checkPlanGolden(t *testing.T, name string, marshaler json.Marshaler) {
	t.Helper()
	js, err := marshaler.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	js = append(js, '\n')
	path := filepath.Join("testdata", "plan", name+".golden.json")
	if *updateAPI {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, js, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with: make plan-golden-update)", err)
	}
	if !bytes.Equal(js, want) {
		t.Errorf("plan IR for %s drifted from %s (regenerate with: make plan-golden-update)\n--- got\n%s--- want\n%s",
			name, path, js, want)
	}
}

// TestPlanGoldenFigure2 pins the serialized Plan IR of the paper's running
// example: the reviewable compilation contract for the facade.
func TestPlanGoldenFigure2(t *testing.T) {
	db := SampleDB()
	q, err := ParseQuery(figure2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(db, q)
	if err != nil {
		t.Fatal(err)
	}
	checkPlanGolden(t, "figure2", p)
}

// TestPlanGoldenSynth pins the IR of two synthetic-domain plans (built via
// plan.FromSpace rather than a WHERE clause).
func TestPlanGoldenSynth(t *testing.T) {
	for _, cfg := range []synth.DomainConfig{
		{Name: "travel-tiny", YTerms: 12, XTerms: 6, YDepth: 3, XDepth: 2,
			Members: 4, Transactions: 6, Patterns: 3, Seed: 101},
		{Name: "culinary-tiny", YTerms: 10, XTerms: 8, YDepth: 3, XDepth: 3,
			Members: 4, Transactions: 6, Patterns: 4, Seed: 202},
	} {
		d, err := synth.GenerateDomain(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p, err := d.Plan(0.2)
		if err != nil {
			t.Fatal(err)
		}
		checkPlanGolden(t, cfg.Name, p)
	}
}
