package oassis

import (
	"io"
	"net/http"

	"oassis/internal/core"
	"oassis/internal/obs"
	"oassis/internal/plan"
)

// Tracer receives span start/end events from an instrumented run: Begin is
// called when a span (a mining round, a crowd question) opens, with
// attributes such as the question ID and phase, and the returned function
// is called when it closes. Implementations must be safe for concurrent
// use; the engine guarantees tracing never changes what it asks or
// concludes. TestTracer is a ready-made implementation for tests.
type Tracer = obs.Tracer

// TraceAttr is one key/value attribute on a trace span.
type TraceAttr = obs.Attr

// TestTracer is an in-memory Tracer that records completed spans, for
// tests and debugging.
type TestTracer = obs.MemTracer

// Metrics collects instrumentation from runs it is attached to (via
// WithMetrics): questions issued/answered/retired, in-flight and latency
// series, engine rounds and cache hits. A Metrics may be attached to any
// number of runs, concurrently; recording is write-only and never changes
// mined results (see the equivalence test).
type Metrics struct {
	reg  *obs.Registry
	core *core.Metrics
	plan *plan.CacheMetrics
}

// NewMetrics returns an empty Metrics registry.
func NewMetrics() *Metrics {
	reg := obs.NewRegistry()
	return &Metrics{reg: reg, core: core.NewMetrics(reg), plan: plan.NewCacheMetrics(reg)}
}

// WritePrometheus writes every series in the Prometheus text exposition
// format (the format served by oassis-server's /metrics).
func (m *Metrics) WritePrometheus(w io.Writer) error { return m.reg.WritePrometheus(w) }

// Handler returns an http.Handler serving the Prometheus text exposition.
func (m *Metrics) Handler() http.Handler { return m.reg.Handler() }

// Snapshot returns the current value of every series, keyed by
// name{label="value",...}; histograms appear as their _sum and _count.
func (m *Metrics) Snapshot() map[string]float64 { return m.reg.Snapshot() }

// WithMetrics attaches a Metrics registry to the run. Purely
// observational: results are bit-identical with and without it.
func WithMetrics(m *Metrics) Option { return func(o *options) { o.metrics = m } }

// WithTracer attaches a Tracer to the run. Purely observational: results
// are bit-identical with and without it.
func WithTracer(t Tracer) Option { return func(o *options) { o.tracer = t } }
