package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"oassis/internal/crowd"
	"oassis/internal/fact"
	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/serve"
)

const serverQuery = `
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity
SATISFYING
  $y doAt $x
WITH SUPPORT = 0.4
`

// newRegistryServer stands up an HTTP server over an empty registry;
// callers add tenants through the returned registry.
func newRegistryServer(t *testing.T, cfg serve.Config, poll time.Duration) (*serve.Registry, *server, *httptest.Server) {
	t.Helper()
	reg := serve.NewRegistry(cfg)
	t.Cleanup(func() { _ = reg.Close() })
	srv := newServer(reg, cfg.Metrics, poll)
	ts := httptest.NewServer(srv.routes(false))
	t.Cleanup(ts.Close)
	return reg, srv, ts
}

// newTestServer builds the single-tenant shape the legacy tests drive: a
// default tenant with one session of serverQuery.
func newTestServer(t *testing.T, slots, k int) (*server, *httptest.Server) {
	t.Helper()
	reg, srv, ts := newRegistryServer(t, serve.Config{}, 100*time.Millisecond)
	s := ontology.NewSample()
	tn, err := reg.AddTenant(serve.TenantConfig{
		Name: defaultTenant, Voc: s.Voc, Onto: s.Onto,
		Members: slots, AnswersPerQuestion: k,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Open(oassisql.MustParse(serverQuery)); err != nil {
		t.Fatal(err)
	}
	return srv, ts
}

func postJSON(t *testing.T, url string, body interface{}) (*http.Response, map[string]interface{}) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]interface{}
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func getJSON(t *testing.T, url string, v interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
	return resp
}

// drive answers questions for one member over HTTP from a personal DB
// until the run completes; the first error (or nil on success) is sent on
// done. It deliberately omits the session field, exercising the legacy
// answer path.
func drive(base, member string, s *ontology.Sample, db *crowd.PersonalDB, done chan<- error) {
	call := func(url string, body map[string]interface{}) error {
		b, _ := json.Marshal(body)
		resp, err := http.Post(url, "application/json", bytes.NewReader(b))
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST %s: status %d", url, resp.StatusCode)
		}
		return nil
	}
	for {
		resp, err := http.Get(base + "/api/question?member=" + member)
		if err != nil {
			done <- err
			return
		}
		var q questionJSON
		err = json.NewDecoder(resp.Body).Decode(&q)
		resp.Body.Close()
		if err != nil {
			done <- err
			return
		}
		switch q.Type {
		case "done":
			done <- nil
			return
		case "wait":
			continue
		case "concrete":
			fs, err := parseQuestionText(s, q.Text)
			if err != nil {
				done <- err
				return
			}
			level := int(crowd.FiveLevel(db.Support(fs)) / 0.25)
			if err := call(base+"/api/answer", map[string]interface{}{
				"member": member, "id": q.ID, "level": level,
			}); err != nil {
				done <- err
				return
			}
		case "specialize":
			answered := false
			for i, c := range q.Choices {
				fs, err := fact.Parse(s.Voc, c)
				if err != nil {
					done <- fmt.Errorf("unparseable choice %q: %v", c, err)
					return
				}
				if db.Support(fs) >= 0.4 {
					level := int(crowd.FiveLevel(db.Support(fs)) / 0.25)
					if err := call(base+"/api/answer", map[string]interface{}{
						"member": member, "id": q.ID, "choice": i, "level": level,
					}); err != nil {
						done <- err
						return
					}
					answered = true
					break
				}
			}
			if !answered {
				if err := call(base+"/api/answer", map[string]interface{}{
					"member": member, "id": q.ID, "none": true,
				}); err != nil {
					done <- err
					return
				}
			}
		default:
			done <- fmt.Errorf("unexpected question type %q", q.Type)
			return
		}
	}
}

// parseQuestionText recovers the asked fact-set from the NL question via
// the known templates ("How often do you do Y at X and also …?").
func parseQuestionText(s *ontology.Sample, text string) (fact.Set, error) {
	body := strings.TrimSuffix(strings.TrimPrefix(text, "How often do you "), "?")
	var fs fact.Set
	for _, part := range strings.Split(body, " and also ") {
		part = strings.TrimSpace(part)
		var triple string
		switch {
		case strings.HasPrefix(part, "do "):
			rest := strings.TrimPrefix(part, "do ")
			i := strings.Index(rest, " at ")
			triple = rest[:i] + " doAt " + rest[i+4:]
		case strings.HasPrefix(part, "eat "):
			rest := strings.TrimPrefix(part, "eat ")
			i := strings.Index(rest, " at ")
			triple = rest[:i] + " eatAt " + rest[i+4:]
		default:
			return nil, fmt.Errorf("unrecognized question phrase %q", part)
		}
		f, err := fact.ParseFact(s.Voc, triple)
		if err != nil {
			return nil, fmt.Errorf("cannot parse %q: %v", triple, err)
		}
		fs = append(fs, f)
	}
	return fs.Canon(), nil
}

func TestServerFullSession(t *testing.T) {
	_, ts := newTestServer(t, 4, 2)
	s := ontology.NewSample()
	u1, u2 := crowd.SampleDBs(s)

	// Join two members.
	for i, name := range []string{"ann", "bob"} {
		resp, body := postJSON(t, ts.URL+"/api/join", map[string]string{"name": name})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("join %d: %v", i, body)
		}
	}
	done := make(chan error, 2)
	go drive(ts.URL, "p00", s, u1, done)
	go drive(ts.URL, "p01", s, u2, done)
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("driver failed: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("session did not finish")
		}
	}

	// Results must contain the paper's MSPs.
	var res struct {
		Done bool     `json:"done"`
		MSPs []string `json:"msps"`
	}
	getJSON(t, ts.URL+"/api/results", &res)
	if !res.Done {
		t.Fatal("results not ready after done")
	}
	// The web UI answers on the five-level scale, which discretizes u1's
	// 1/3 supports down to 0.25 ("rarely"): biking lands at mean 0.375 < θ
	// and the maximal significant activity at Central Park becomes Sport.
	joined := strings.Join(res.MSPs, ";")
	for _, want := range []string{"Sport doAt Central Park", "Feed a Monkey doAt Bronx Zoo"} {
		if !strings.Contains(joined, want) {
			t.Errorf("results missing %q: %v", want, res.MSPs)
		}
	}

	// Leaderboard lists both members with answer counts.
	var rows []struct {
		Name    string `json:"name"`
		Answers int    `json:"answers"`
		Star    string `json:"star"`
	}
	getJSON(t, ts.URL+"/api/stats", &rows)
	if len(rows) != 2 {
		t.Fatalf("leaderboard rows = %d", len(rows))
	}
	if rows[0].Answers < rows[1].Answers {
		t.Error("leaderboard not sorted")
	}
}

func TestServerJoinValidation(t *testing.T) {
	_, ts := newTestServer(t, 1, 1)
	if resp, _ := postJSON(t, ts.URL+"/api/join", map[string]string{"name": "  "}); resp.StatusCode != http.StatusBadRequest {
		t.Error("blank name accepted")
	}
	if resp, _ := postJSON(t, ts.URL+"/api/join", map[string]string{"name": "a"}); resp.StatusCode != http.StatusOK {
		t.Error("first join rejected")
	}
	if resp, _ := postJSON(t, ts.URL+"/api/join", map[string]string{"name": "b"}); resp.StatusCode != http.StatusConflict {
		t.Error("overfull crowd accepted")
	}
}

func TestServerQuestionValidation(t *testing.T) {
	_, ts := newTestServer(t, 2, 2)
	var q questionJSON
	resp := getJSON(t, ts.URL+"/api/question?member=ghost", &q)
	if resp.StatusCode != http.StatusNotFound {
		t.Error("unknown member accepted")
	}
	postJSON(t, ts.URL+"/api/join", map[string]string{"name": "ann"})
	// Long-poll returns a concrete question for the first member.
	getJSON(t, ts.URL+"/api/question?member=p00", &q)
	if q.Type != "concrete" || q.ID == 0 || len(q.Scale) != 5 {
		t.Fatalf("first question = %+v", q)
	}
	if q.Session == "" {
		t.Fatalf("question carries no session: %+v", q)
	}
	// Re-fetch resends the same pending question.
	var q2 questionJSON
	getJSON(t, ts.URL+"/api/question?member=p00", &q2)
	if q2.ID != q.ID || q2.Session != q.Session {
		t.Errorf("pending question not resent: %+v vs %+v", q2, q)
	}
	// Answer with a stale id is rejected.
	if resp, _ := postJSON(t, ts.URL+"/api/answer", map[string]interface{}{
		"member": "p00", "id": q.ID + 999, "level": 2,
	}); resp.StatusCode != http.StatusConflict {
		t.Error("stale answer accepted")
	}
	// Session-addressed answer with a stale id is rejected too.
	if resp, _ := postJSON(t, ts.URL+"/api/answer", map[string]interface{}{
		"member": "p00", "session": q.Session, "id": q.ID + 999, "level": 2,
	}); resp.StatusCode != http.StatusConflict {
		t.Error("stale session-addressed answer accepted")
	}
	// Proper session-addressed answer accepted.
	if resp, _ := postJSON(t, ts.URL+"/api/answer", map[string]interface{}{
		"member": "p00", "session": q.Session, "id": q.ID, "level": 2,
	}); resp.StatusCode != http.StatusOK {
		t.Error("valid answer rejected")
	}
}

func TestServerIndexAndStats(t *testing.T) {
	_, ts := newTestServer(t, 1, 1)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "question game") {
		t.Error("index page missing")
	}
	if resp, err := http.Get(ts.URL + "/nosuch"); err == nil {
		if resp.StatusCode != http.StatusNotFound {
			t.Error("unknown path served")
		}
		resp.Body.Close()
	}
	var rows []interface{}
	getJSON(t, ts.URL+"/api/stats", &rows)
	if len(rows) != 0 {
		t.Error("leaderboard not empty at start")
	}
	var res map[string]interface{}
	getJSON(t, ts.URL+"/api/results", &res)
	if res["done"] != false {
		t.Error("results claimed done at start")
	}
}

func TestStarThresholds(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{{0, ""}, {4, ""}, {5, "bronze"}, {15, "silver"}, {30, "gold"}, {100, "gold"}}
	for _, c := range cases {
		if got := star(c.n); got != c.want {
			t.Errorf("star(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

// TestServerPlansRoute: GET /plans exposes the domain fingerprint, the
// per-session plan fingerprints, and the cached plan IRs.
func TestServerPlansRoute(t *testing.T) {
	srv, ts := newTestServer(t, 2, 1)
	tn, err := srv.reg.Tenant(defaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	sess := tn.Sessions()[0]
	resp, err := http.Get(ts.URL + "/plans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Tenant   string            `json:"tenant"`
		Domain   string            `json:"domain"`
		Session  string            `json:"session_plan"`
		Sessions map[string]string `json:"sessions"`
		Plans    []struct {
			Query     string `json:"query"`
			Policy    string `json:"policy"`
			Substrate string `json:"substrate"`
		} `json:"plans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Tenant != defaultTenant {
		t.Errorf("tenant = %q", out.Tenant)
	}
	if out.Domain != tn.Domain().Fingerprint() {
		t.Errorf("domain = %q, want %q", out.Domain, tn.Domain().Fingerprint())
	}
	if out.Session != sess.Plan().Fingerprint() {
		t.Errorf("session_plan = %q, want %q", out.Session, sess.Plan().Fingerprint())
	}
	if out.Sessions[sess.ID()] != sess.Plan().Fingerprint() {
		t.Errorf("sessions map = %v", out.Sessions)
	}
	if len(out.Plans) != 1 {
		t.Fatalf("cached plans = %d, want 1", len(out.Plans))
	}
	if out.Plans[0].Query != sess.Query().String() {
		t.Errorf("plan query = %q", out.Plans[0].Query)
	}
	if out.Plans[0].Policy == "" || out.Plans[0].Substrate == "" {
		t.Errorf("plan IR missing policy/substrate: %+v", out.Plans[0])
	}
}

// TestServerMultiTenantRoutes drives two tenants through their scoped
// routes: each serves its own roster and questions, /api/tenants lists
// both, and POST .../api/query opens a session at runtime.
func TestServerMultiTenantRoutes(t *testing.T) {
	reg, _, ts := newRegistryServer(t, serve.Config{}, 100*time.Millisecond)
	s := ontology.NewSample()
	for _, name := range []string{"acme", "globex"} {
		if _, err := reg.AddTenant(serve.TenantConfig{
			Name: name, Voc: s.Voc, Onto: s.Onto, Members: 2, AnswersPerQuestion: 1,
		}); err != nil {
			t.Fatal(err)
		}
	}
	var tl struct {
		Tenants []string `json:"tenants"`
	}
	getJSON(t, ts.URL+"/api/tenants", &tl)
	if len(tl.Tenants) != 2 || tl.Tenants[0] != "acme" || tl.Tenants[1] != "globex" {
		t.Fatalf("tenants = %v", tl.Tenants)
	}

	// The tenant pages serve the UI; joins are scoped per tenant.
	resp, err := http.Get(ts.URL + "/t/acme/")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(page), "question game") {
		t.Fatalf("tenant index: %d", resp.StatusCode)
	}
	resp, body := postJSON(t, ts.URL+"/t/acme/api/join", map[string]string{"name": "ann"})
	if resp.StatusCode != http.StatusOK || body["member"] != "p00" || body["tenant"] != "acme" {
		t.Fatalf("acme join: %d %v", resp.StatusCode, body)
	}
	// ann exists only in acme; globex rejects her poll.
	var q questionJSON
	if r := getJSON(t, ts.URL+"/t/globex/api/question?member=p00", &q); r.StatusCode != http.StatusNotFound {
		t.Fatalf("cross-tenant member accepted: %d", r.StatusCode)
	}

	// Open a session over the wire and drive it to completion.
	resp, body = postJSON(t, ts.URL+"/t/acme/api/query", map[string]string{"query": serverQuery})
	if resp.StatusCode != http.StatusOK || body["session"] == "" {
		t.Fatalf("query open: %d %v", resp.StatusCode, body)
	}
	u1, _ := crowd.SampleDBs(s)
	done := make(chan error, 1)
	go drive(ts.URL+"/t/acme", "p00", s, u1, done)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("driver failed: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("tenant session did not finish")
	}
	var res struct {
		Done bool     `json:"done"`
		MSPs []string `json:"msps"`
	}
	getJSON(t, ts.URL+"/t/acme/api/results", &res)
	if !res.Done || len(res.MSPs) == 0 {
		t.Fatalf("acme results = %+v", res)
	}
	// globex is untouched: no sessions, empty leaderboard.
	var gres map[string]interface{}
	getJSON(t, ts.URL+"/t/globex/api/results", &gres)
	if gres["done"] != false {
		t.Fatalf("globex results = %v", gres)
	}
	if resp, body := postJSON(t, ts.URL+"/t/acme/api/query", map[string]string{"query": "NOT A QUERY"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query accepted: %d %v", resp.StatusCode, body)
	}
}

// errBody decodes the JSON error envelope every failing route returns.
func errBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var out struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	return out.Error
}

// TestServerGoldenErrorBodies pins the wire form of the serving tier's
// typed errors: 404 for the unknown-thing family and 429 + Retry-After
// when admission control sheds, each with its exact JSON message.
func TestServerGoldenErrorBodies(t *testing.T) {
	reg, _, ts := newRegistryServer(t, serve.Config{MaxInFlight: 1}, 30*time.Second)
	s := ontology.NewSample()
	tn, err := reg.AddTenant(serve.TenantConfig{
		Name: defaultTenant, Voc: s.Voc, Onto: s.Onto, Members: 2,
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/t/nope/api/stats")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant status = %d", resp.StatusCode)
	}
	if got, want := errBody(t, resp), `serve: unknown tenant "nope"`; got != want {
		t.Errorf("unknown tenant body = %q, want %q", got, want)
	}

	resp, err = http.Get(ts.URL + "/api/results?session=s9999")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session status = %d", resp.StatusCode)
	}
	if got, want := errBody(t, resp), `serve: unknown session "s9999" in tenant "default"`; got != want {
		t.Errorf("unknown session body = %q, want %q", got, want)
	}

	resp, err = http.Get(ts.URL + "/api/question?member=ghost")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown member status = %d", resp.StatusCode)
	}
	if got, want := errBody(t, resp), `serve: unknown member "ghost" in tenant "default"`; got != want {
		t.Errorf("unknown member body = %q, want %q", got, want)
	}

	// Saturate the in-flight budget (one parked poll against the serve
	// layer — the tenant has no sessions, so polls park) and watch the
	// HTTP layer shed with 429 + Retry-After.
	if _, err := tn.Join("ann"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	parked := make(chan struct{})
	go func() {
		defer close(parked)
		_, _, _ = tn.Poll(ctx, "p00", 30*time.Second)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for reg.InFlight() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("poll never occupied the in-flight budget")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err = http.Get(ts.URL + "/api/question?member=p00")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want %q", got, "1")
	}
	if got, want := errBody(t, resp), "serve: overloaded: global in-flight budget (1) exhausted"; got != want {
		t.Errorf("overload body = %q, want %q", got, want)
	}
	cancel()
	<-parked
}
