package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"oassis/internal/crowd"
	"oassis/internal/fact"
	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/serve"
)

// newPanelServer stands up the default tenant with panel speculation on,
// one open session of serverQuery, and both sample members joined.
func newPanelServer(t *testing.T, k int) (*httptest.Server, *ontology.Sample) {
	t.Helper()
	reg, _, ts := newRegistryServer(t, serve.Config{}, 100*time.Millisecond)
	s := ontology.NewSample()
	tn, err := reg.AddTenant(serve.TenantConfig{
		Name: defaultTenant, Voc: s.Voc, Onto: s.Onto,
		Members: 2, AnswersPerQuestion: k, PanelSpeculation: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"ann", "bob"} {
		if _, err := tn.Join(n); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tn.Open(oassisql.MustParse(serverQuery)); err != nil {
		t.Fatal(err)
	}
	return ts, s
}

// TestServerPanelGoldenWire pins the panel route's JSON wire format: the
// envelope (type/session/member/items/scale), the per-item shape
// (id/type/text/speculative/prior/confirm), and the prior sub-object
// (frequency/confidence/source). The engine is deterministic, so the
// first panel of the sample domain is bit-stable; a diff here is a wire
// format change clients will see.
func TestServerPanelGoldenWire(t *testing.T) {
	ts, _ := newPanelServer(t, 2)
	resp, err := http.Get(ts.URL + "/api/panel?member=p00&max=4")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("panel status = %d: %s", resp.StatusCode, raw)
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, bytes.TrimSpace(raw), "", "  "); err != nil {
		t.Fatalf("panel body is not JSON: %v\n%s", err, raw)
	}
	const golden = `{
  "type": "panel",
  "session": "s0001",
  "member": "p00",
  "items": [
    {
      "id": 1,
      "type": "concrete",
      "text": "How often do you do Activity at Attraction?",
      "prior": {
        "frequency": 0.5,
        "confidence": "low",
        "source": "ontology"
      }
    },
    {
      "id": 3,
      "type": "concrete",
      "text": "How often do you do Activity at Outdoor?",
      "speculative": true,
      "prior": {
        "frequency": 0.5,
        "confidence": "low",
        "source": "ontology"
      }
    },
    {
      "id": 5,
      "type": "concrete",
      "text": "How often do you do Sport at Attraction?",
      "speculative": true,
      "prior": {
        "frequency": 0.5,
        "confidence": "low",
        "source": "ontology"
      }
    },
    {
      "id": 7,
      "type": "concrete",
      "text": "How often do you do Food at Attraction?",
      "speculative": true,
      "prior": {
        "frequency": 0.5,
        "confidence": "low",
        "source": "ontology"
      }
    }
  ],
  "scale": [
    "never",
    "rarely",
    "sometimes",
    "often",
    "very often"
  ]
}`
	if got := buf.String(); got != golden {
		t.Errorf("panel wire format drifted:\n--- got\n%s\n--- want\n%s", got, golden)
	}
}

// drivePanels answers whole panels for one member over HTTP until the
// run completes, reporting the first error (nil on success) on done.
func drivePanels(base, member string, s *ontology.Sample, db *crowd.PersonalDB, done chan<- error) {
	for {
		resp, err := http.Get(base + "/api/panel?member=" + member + "&max=8")
		if err != nil {
			done <- err
			return
		}
		var p panelJSON
		err = json.NewDecoder(resp.Body).Decode(&p)
		resp.Body.Close()
		if err != nil {
			done <- err
			return
		}
		switch p.Type {
		case "done":
			done <- nil
			return
		case "wait":
			continue
		case "panel":
		default:
			done <- fmt.Errorf("unexpected panel type %q", p.Type)
			return
		}
		answers := make([]map[string]interface{}, 0, len(p.Items))
		for _, it := range p.Items {
			switch it.Type {
			case "concrete":
				fs, err := parseQuestionText(s, it.Text)
				if err != nil {
					done <- err
					return
				}
				level := int(crowd.FiveLevel(db.Support(fs)) / 0.25)
				answers = append(answers, map[string]interface{}{"id": it.ID, "level": level})
			case "specialize":
				a := map[string]interface{}{"id": it.ID, "none": true}
				for i, c := range it.Choices {
					fs, err := fact.Parse(s.Voc, c)
					if err != nil {
						done <- fmt.Errorf("unparseable choice %q: %v", c, err)
						return
					}
					if db.Support(fs) >= 0.4 {
						a = map[string]interface{}{
							"id": it.ID, "choice": i,
							"level": int(crowd.FiveLevel(db.Support(fs)) / 0.25),
						}
						break
					}
				}
				answers = append(answers, a)
			}
		}
		body, _ := json.Marshal(map[string]interface{}{
			"member": member, "session": p.Session, "answers": answers,
		})
		post, err := http.Post(base+"/api/panel", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- err
			return
		}
		post.Body.Close()
		if post.StatusCode != http.StatusOK {
			done <- fmt.Errorf("POST /api/panel: status %d", post.StatusCode)
			return
		}
	}
}

// TestServerPanelRoundTrip drives a whole session through the panel
// routes — batched GETs, batched POSTs — and checks the mined result
// matches the single-question route's on the same domain and query.
func TestServerPanelRoundTrip(t *testing.T) {
	ts, s := newPanelServer(t, 2)
	u1, u2 := crowd.SampleDBs(s)
	done := make(chan error, 2)
	go drivePanels(ts.URL, "p00", s, u1, done)
	go drivePanels(ts.URL, "p01", s, u2, done)
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("panel driver failed: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("panel-driven session did not finish")
		}
	}
	var res struct {
		Done bool     `json:"done"`
		MSPs []string `json:"msps"`
	}
	getJSON(t, ts.URL+"/api/results", &res)
	if !res.Done || len(res.MSPs) == 0 {
		t.Fatalf("panel-driven results = %+v", res)
	}
}
