package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"oassis/internal/crowd"
	"oassis/internal/oassisql"
	"oassis/internal/obs"
	"oassis/internal/ontology"
)

// newObsServer builds a test server with a metrics registry attached.
func newObsServer(t *testing.T, debug bool) (*httptest.Server, *obs.Registry) {
	t.Helper()
	s := ontology.NewSample()
	q := oassisql.MustParse(serverQuery)
	reg := obs.NewRegistry()
	srv, err := newServer(s.Voc, s.Onto, q, 2, 1, 100*time.Millisecond, nil, nil, reg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.routes(debug))
	t.Cleanup(ts.Close)
	return ts, reg
}

// TestDebugEndpoints drives the observability routes through the mux:
// /metrics and /debug/vars are always mounted, the pprof endpoints only
// behind -debug.
func TestDebugEndpoints(t *testing.T) {
	cases := []struct {
		name     string
		debug    bool
		path     string
		status   int
		contains string
	}{
		{"metrics", false, "/metrics", http.StatusOK, "# TYPE oassis_http_requests_total counter"},
		{"metrics with debug", true, "/metrics", http.StatusOK, "oassis_session_questions_inflight"},
		{"expvar", false, "/debug/vars", http.StatusOK, `"oassis"`},
		{"pprof gated off", false, "/debug/pprof/", http.StatusNotFound, ""},
		{"pprof index on", true, "/debug/pprof/", http.StatusOK, "Types of profiles available"},
		{"pprof cmdline gated off", false, "/debug/pprof/cmdline", http.StatusNotFound, ""},
		{"pprof symbol on", true, "/debug/pprof/symbol", http.StatusOK, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts, _ := newObsServer(t, tc.debug)
			resp, err := http.Get(ts.URL + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("GET %s: status %d, want %d\n%s", tc.path, resp.StatusCode, tc.status, body)
			}
			if tc.contains != "" && !strings.Contains(string(body), tc.contains) {
				t.Fatalf("GET %s: body missing %q:\n%s", tc.path, tc.contains, body)
			}
		})
	}
}

// TestExpvarSnapshot checks /debug/vars serves valid JSON whose oassis key
// mirrors the registry snapshot.
func TestExpvarSnapshot(t *testing.T) {
	ts, reg := newObsServer(t, false)
	if _, err := http.Get(ts.URL + "/api/stats"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	var vars map[string]float64
	if err := json.Unmarshal(doc["oassis"], &vars); err != nil {
		t.Fatalf("oassis expvar is not a flat map: %v", err)
	}
	if want := reg.Snapshot()[`oassis_http_requests_total{route="stats"}`]; want == 0 || vars[`oassis_http_requests_total{route="stats"}`] == 0 {
		t.Fatalf("stats request not visible via expvar: registry=%g vars=%+v", want, vars)
	}
}

// TestMetricsLiveSession scrapes /metrics during a live session: with a
// question handed out but unanswered the in-flight gauge is nonzero, and
// after the answer the latency histogram has an observation. The scrape
// must be valid Prometheus text (checked by re-parsing it).
func TestMetricsLiveSession(t *testing.T) {
	s := ontology.NewSample()
	u1, _ := crowd.SampleDBs(s)
	ts, reg := newObsServer(t, false)

	resp, body := postJSON(t, ts.URL+"/api/join", map[string]string{"name": "alice"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %d %v", resp.StatusCode, body)
	}
	member := body["member"].(string)

	// Long-poll the first question but leave it unanswered: it is now in
	// flight from the session's point of view.
	var q questionJSON
	getJSON(t, ts.URL+"/api/question?member="+member, &q)
	if q.Type != "concrete" && q.Type != "specialize" {
		t.Fatalf("first question type %q", q.Type)
	}

	samples := scrape(t, ts.URL)
	byKey := map[string]float64{}
	for _, sm := range samples {
		byKey[sm.Key()] = sm.Value
	}
	if byKey["oassis_session_questions_inflight"] == 0 {
		t.Fatalf("in-flight gauge is zero with a question pending:\n%+v", byKey)
	}
	if byKey[`oassis_http_requests_total{route="question"}`] == 0 {
		t.Fatalf("question route counter is zero: %+v", byKey)
	}
	if byKey[`oassis_longpoll_total{outcome="question"}`] == 0 {
		t.Fatalf("longpoll outcome counter is zero: %+v", byKey)
	}

	// Answer it; the latency histogram must record the issue-to-answer gap.
	if text, typ := answerOne(t, ts.URL, member, s, u1); typ != "concrete" || text == "" {
		t.Fatalf("answerOne: type %q text %q", typ, text)
	}
	snap := reg.Snapshot()
	if snap["oassis_session_answer_latency_seconds_count"] == 0 {
		t.Fatalf("latency histogram empty after an answer: %+v", snap)
	}
	if snap[`oassis_http_requests_total{route="answer"}`] == 0 {
		t.Fatalf("answer route counter is zero: %+v", snap)
	}
}

// scrape fetches /metrics and re-parses it with the package's own strict
// parser, failing the test on any formatting error.
func scrape(t *testing.T, base string) []obs.Sample {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("scrape unparseable: %v", err)
	}
	return samples
}
