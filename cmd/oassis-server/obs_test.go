package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"oassis/internal/crowd"
	"oassis/internal/oassisql"
	"oassis/internal/obs"
	"oassis/internal/ontology"
	"oassis/internal/serve"
)

// newObsServer builds a test server with a metrics registry attached.
func newObsServer(t *testing.T, debug bool) (*httptest.Server, *server, *obs.Registry) {
	t.Helper()
	s := ontology.NewSample()
	met := obs.NewRegistry()
	reg := serve.NewRegistry(serve.Config{Metrics: met})
	t.Cleanup(func() { _ = reg.Close() })
	tn, err := reg.AddTenant(serve.TenantConfig{
		Name: defaultTenant, Voc: s.Voc, Onto: s.Onto,
		Members: 2, AnswersPerQuestion: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Open(oassisql.MustParse(serverQuery)); err != nil {
		t.Fatal(err)
	}
	srv := newServer(reg, met, 100*time.Millisecond)
	ts := httptest.NewServer(srv.routes(debug))
	t.Cleanup(ts.Close)
	return ts, srv, met
}

// TestDebugEndpoints drives the observability routes through the mux:
// /metrics and /debug/vars are always mounted, the pprof endpoints only
// behind -debug.
func TestDebugEndpoints(t *testing.T) {
	cases := []struct {
		name     string
		debug    bool
		path     string
		status   int
		contains string
	}{
		{"metrics", false, "/metrics", http.StatusOK, "# TYPE oassis_http_requests_total counter"},
		{"metrics with debug", true, "/metrics", http.StatusOK, "oassis_session_questions_inflight"},
		{"serving metrics", false, "/metrics", http.StatusOK, `oassis_serve_sessions_live{shard="0",tenant="default"}`},
		{"expvar", false, "/debug/vars", http.StatusOK, `"oassis"`},
		{"pprof gated off", false, "/debug/pprof/", http.StatusNotFound, ""},
		{"pprof index on", true, "/debug/pprof/", http.StatusOK, "Types of profiles available"},
		{"pprof cmdline gated off", false, "/debug/pprof/cmdline", http.StatusNotFound, ""},
		{"pprof symbol on", true, "/debug/pprof/symbol", http.StatusOK, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts, _, _ := newObsServer(t, tc.debug)
			resp, err := http.Get(ts.URL + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("GET %s: status %d, want %d\n%s", tc.path, resp.StatusCode, tc.status, body)
			}
			if tc.contains != "" && !strings.Contains(string(body), tc.contains) {
				t.Fatalf("GET %s: body missing %q:\n%s", tc.path, tc.contains, body)
			}
		})
	}
}

// TestExpvarSnapshot checks /debug/vars serves valid JSON whose oassis key
// mirrors the registry snapshot.
func TestExpvarSnapshot(t *testing.T) {
	ts, _, reg := newObsServer(t, false)
	if _, err := http.Get(ts.URL + "/api/stats"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	var vars map[string]float64
	if err := json.Unmarshal(doc["oassis"], &vars); err != nil {
		t.Fatalf("oassis expvar is not a flat map: %v", err)
	}
	if want := reg.Snapshot()[`oassis_http_requests_total{route="stats"}`]; want == 0 || vars[`oassis_http_requests_total{route="stats"}`] == 0 {
		t.Fatalf("stats request not visible via expvar: registry=%g vars=%+v", want, vars)
	}
}

// TestMetricsLiveSession scrapes /metrics during a live session: with a
// question handed out but unanswered the in-flight gauge is nonzero, and
// after the answer the latency histogram has an observation. The scrape
// must be valid Prometheus text (checked by re-parsing it).
func TestMetricsLiveSession(t *testing.T) {
	s := ontology.NewSample()
	u1, _ := crowd.SampleDBs(s)
	ts, _, reg := newObsServer(t, false)

	resp, body := postJSON(t, ts.URL+"/api/join", map[string]string{"name": "alice"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %d %v", resp.StatusCode, body)
	}
	member := body["member"].(string)

	// Long-poll the first question but leave it unanswered: it is now in
	// flight from the session's point of view.
	var q questionJSON
	getJSON(t, ts.URL+"/api/question?member="+member, &q)
	if q.Type != "concrete" && q.Type != "specialize" {
		t.Fatalf("first question type %q", q.Type)
	}

	samples := scrape(t, ts.URL)
	byKey := map[string]float64{}
	for _, sm := range samples {
		byKey[sm.Key()] = sm.Value
	}
	if byKey["oassis_session_questions_inflight"] == 0 {
		t.Fatalf("in-flight gauge is zero with a question pending:\n%+v", byKey)
	}
	if byKey[`oassis_http_requests_total{route="question"}`] == 0 {
		t.Fatalf("question route counter is zero: %+v", byKey)
	}
	if byKey[`oassis_longpoll_total{outcome="question"}`] == 0 {
		t.Fatalf("longpoll outcome counter is zero: %+v", byKey)
	}
	// The serving tier saw the same dispatch: per-tenant poll counter and
	// latency histogram, plus the scrapeable p99 gauge.
	if byKey[`oassis_serve_polls_total{outcome="question",tenant="default"}`] == 0 {
		t.Fatalf("serve poll counter is zero: %+v", byKey)
	}
	if byKey[`oassis_serve_dispatch_seconds_count{tenant="default"}`] == 0 {
		t.Fatalf("serve dispatch histogram empty: %+v", byKey)
	}
	if byKey[`oassis_serve_sessions_opened_total{tenant="default"}`] != 1 {
		t.Fatalf("serve opened counter: %+v", byKey)
	}

	// Answer it; the latency histogram must record the issue-to-answer gap.
	if text, typ := answerOne(t, ts.URL, member, s, u1); typ != "concrete" || text == "" {
		t.Fatalf("answerOne: type %q text %q", typ, text)
	}
	snap := reg.Snapshot()
	if snap["oassis_session_answer_latency_seconds_count"] == 0 {
		t.Fatalf("latency histogram empty after an answer: %+v", snap)
	}
	if snap[`oassis_http_requests_total{route="answer"}`] == 0 {
		t.Fatalf("answer route counter is zero: %+v", snap)
	}
}

// waitInFlight spins until the registry reports n polls in flight.
func waitInFlight(t *testing.T, reg *serve.Registry, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for reg.InFlight() != n {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight never reached %d (at %d)", n, reg.InFlight())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerShutdownOutcomeCounters exercises the two ways a parked
// long-poll ends without a question at shutdown time: the client goes
// away (disconnect) or the server drains (reported as done on the wire,
// shutdown on the serving tier) — and asserts both counters tick.
func TestServerShutdownOutcomeCounters(t *testing.T) {
	s := ontology.NewSample()
	met := obs.NewRegistry()
	reg := serve.NewRegistry(serve.Config{Metrics: met})
	t.Cleanup(func() { _ = reg.Close() })
	tn, err := reg.AddTenant(serve.TenantConfig{
		Name: defaultTenant, Voc: s.Voc, Onto: s.Onto, Members: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// No sessions: every poll parks until woken.
	srv := newServer(reg, met, 30*time.Second)
	ts := httptest.NewServer(srv.routes(false))
	t.Cleanup(ts.Close)
	if _, err := tn.Join("ann"); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Join("bob"); err != nil {
		t.Fatal(err)
	}

	// Disconnect: park a poll, then hang up the client.
	ctx, cancel := context.WithCancel(context.Background())
	disconnected := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/api/question?member=p01", nil)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		disconnected <- err
	}()
	waitInFlight(t, reg, 1)
	cancel()
	if err := <-disconnected; err == nil {
		t.Fatal("hung-up poll returned a response")
	}
	waitInFlight(t, reg, 0)

	// Drain: park a poll, then shut the serving tier down. The parked
	// waiter must wake promptly with a "done" reply, not ride out the
	// 30-second window.
	type pollResult struct {
		q   questionJSON
		err error
	}
	woke := make(chan pollResult, 1)
	go func() {
		var r pollResult
		resp, err := http.Get(ts.URL + "/api/question?member=p00")
		if err == nil {
			r.err = json.NewDecoder(resp.Body).Decode(&r.q)
			resp.Body.Close()
		} else {
			r.err = err
		}
		woke <- r
	}()
	waitInFlight(t, reg, 1)
	srv.drain()
	select {
	case r := <-woke:
		if r.err != nil {
			t.Fatalf("drained poll failed: %v", r.err)
		}
		if r.q.Type != "done" {
			t.Fatalf("drained poll returned %q, want done", r.q.Type)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked poll did not wake on drain")
	}

	snap := met.Snapshot()
	for _, key := range []string{
		`oassis_longpoll_total{outcome="disconnect"}`,
		`oassis_longpoll_total{outcome="done"}`,
		`oassis_serve_polls_total{outcome="disconnect",tenant="default"}`,
		`oassis_serve_polls_total{outcome="shutdown",tenant="default"}`,
	} {
		if snap[key] < 1 {
			t.Errorf("%s = %g, want >= 1", key, snap[key])
		}
	}
}

// scrape fetches /metrics and re-parses it with the package's own strict
// parser, failing the test on any formatting error.
func scrape(t *testing.T, base string) []obs.Sample {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("scrape unparseable: %v", err)
	}
	return samples
}
