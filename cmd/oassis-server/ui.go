package main

// indexHTML is the single-page question-game UI (§6.2): join with a name,
// answer questions on the five-level scale, pick specializations or "none
// of these", watch the leaderboard, and see the mined answers at the end.
const indexHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>OASSIS — crowd question game</title>
<style>
  body { font: 16px/1.5 system-ui, sans-serif; max-width: 44rem; margin: 2rem auto; padding: 0 1rem; color: #222; }
  h1 { font-size: 1.4rem; }
  .card { border: 1px solid #ccc; border-radius: 8px; padding: 1rem 1.25rem; margin: 1rem 0; }
  button { font: inherit; margin: 0.15rem; padding: 0.35rem 0.8rem; border-radius: 6px; border: 1px solid #888; background: #f5f5f5; cursor: pointer; }
  button:hover { background: #e8e8e8; }
  #question { font-weight: 600; }
  .muted { color: #777; }
  .star-gold::after { content: " ★"; color: #c9a300; }
  .star-silver::after { content: " ★"; color: #9a9a9a; }
  .star-bronze::after { content: " ★"; color: #a05a2c; }
  table { border-collapse: collapse; } td, th { padding: 0.2rem 0.8rem; text-align: left; }
</style>
</head>
<body>
<h1>OASSIS crowd question game</h1>
<div class="card" id="join-card">
  <p>Answer a few questions about your habits and help answer a query.
     Earn stars as you contribute!</p>
  <input id="name" placeholder="your name">
  <button onclick="join()">Join the crowd</button>
  <p class="muted" id="join-msg"></p>
</div>
<div class="card" id="game-card" style="display:none">
  <p id="question" class="muted">waiting for a question…</p>
  <div id="answers"></div>
</div>
<div class="card">
  <h2 style="font-size:1.1rem">Top contributors</h2>
  <table id="board"></table>
</div>
<div class="card" id="results-card" style="display:none">
  <h2 style="font-size:1.1rem">Mined answers</h2>
  <ul id="results"></ul>
</div>
<script>
// Tenant-scoped pages live under /t/{tenant}/; API calls stay inside the
// same tenant. The legacy root page talks to the default tenant.
const base = (location.pathname.match(/^\/t\/[^\/]+/) || [''])[0];
let member = null, pending = null;

async function join() {
  const name = document.getElementById('name').value.trim();
  if (!name) return;
  const r = await fetch(base + '/api/join', {method:'POST', body: JSON.stringify({name})});
  const body = await r.json();
  if (!r.ok) { document.getElementById('join-msg').textContent = body.error; return; }
  member = body.member;
  document.getElementById('join-card').style.display = 'none';
  document.getElementById('game-card').style.display = '';
  loop();
}

async function loop() {
  while (member) {
    const r = await fetch(base + '/api/question?member=' + member);
    const q = await r.json();
    if (q.type === 'done') { showDone(); return; }
    if (q.type === 'wait') continue;
    pending = q;
    render(q);
    return; // wait for the user's click; answer() resumes the loop
  }
}

function render(q) {
  document.getElementById('question').textContent = q.text;
  const box = document.getElementById('answers');
  box.innerHTML = '';
  if (q.type === 'concrete') {
    q.scale.forEach((label, i) => addBtn(box, label, () => answer({level: i})));
  } else {
    q.choices.forEach((c, i) => addBtn(box, c, () => askLevel(i)));
    addBtn(box, 'none of these', () => answer({none: true}));
    addBtn(box, 'ask me directly', () => answer({skip: true}));
  }
}

function askLevel(choice) {
  const box = document.getElementById('answers');
  box.innerHTML = '';
  pending.scale.forEach((label, i) =>
    addBtn(box, label, () => answer({choice: choice, level: i})));
}

function addBtn(box, label, fn) {
  const b = document.createElement('button');
  b.textContent = label;
  b.onclick = fn;
  box.appendChild(b);
}

async function answer(a) {
  a.member = member; a.id = pending.id; a.session = pending.session;
  await fetch(base + '/api/answer', {method:'POST', body: JSON.stringify(a)});
  document.getElementById('question').textContent = 'thanks! next question…';
  document.getElementById('answers').innerHTML = '';
  refreshBoard();
  loop();
}

function showDone() {
  document.getElementById('question').textContent =
    'All done — the crowd has answered the query. Thank you!';
  document.getElementById('answers').innerHTML = '';
  refreshResults();
}

async function refreshBoard() {
  const rows = await (await fetch(base + '/api/stats')).json();
  const t = document.getElementById('board');
  t.innerHTML = '<tr><th>member</th><th>answers</th></tr>';
  (rows || []).forEach(r => {
    const tr = document.createElement('tr');
    const name = document.createElement('td');
    name.textContent = r.name;
    if (r.star) name.className = 'star-' + r.star;
    const n = document.createElement('td');
    n.textContent = r.answers;
    tr.append(name, n);
    t.appendChild(tr);
  });
}

async function refreshResults() {
  const res = await (await fetch(base + '/api/results')).json();
  if (!res.done) return;
  document.getElementById('results-card').style.display = '';
  const ul = document.getElementById('results');
  ul.innerHTML = '';
  (res.msps || []).forEach(m => {
    const li = document.createElement('li');
    li.textContent = m;
    ul.appendChild(li);
  });
}

refreshBoard();
setInterval(refreshResults, 5000);
</script>
</body>
</html>
`
