package main

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"oassis/internal/obs"
)

// serverObs holds the HTTP-layer instruments. A nil *serverObs (server
// built without a registry) disables all of them; every method is
// nil-receiver-guarded like the engine's.
type serverObs struct {
	reg *obs.Registry

	longpollWait *obs.Histogram
	longpollOut  map[string]*obs.Counter
}

// longpollOutcomes are the ways a GET /api/question long-poll can end:
// a question was delivered, the run finished, the poll deadline passed,
// or the client went away.
var longpollOutcomes = []string{"question", "done", "timeout", "disconnect"}

func newServerObs(reg *obs.Registry) *serverObs {
	if reg == nil {
		return nil
	}
	o := &serverObs{
		reg: reg,
		longpollWait: reg.Histogram("oassis_longpoll_wait_seconds",
			"seconds a GET /api/question request waited before returning", nil),
		longpollOut: make(map[string]*obs.Counter, len(longpollOutcomes)),
	}
	for _, out := range longpollOutcomes {
		o.longpollOut[out] = reg.Counter("oassis_longpoll_total",
			"long-poll requests by how they ended", obs.L("outcome", out))
	}
	return o
}

// instrument wraps a handler with a per-route request counter and latency
// histogram. With no registry it returns the handler untouched.
func (o *serverObs) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	if o == nil {
		return h
	}
	reqs := o.reg.Counter("oassis_http_requests_total",
		"HTTP requests served", obs.L("route", route))
	lat := o.reg.Histogram("oassis_http_request_seconds",
		"HTTP request handling time in seconds", nil, obs.L("route", route))
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		h(w, r)
		reqs.Inc()
		lat.Observe(time.Since(start).Seconds())
	}
}

// longpolled records how a GET /api/question long-poll ended and how long
// the client waited.
func (o *serverObs) longpolled(outcome string, start time.Time) {
	if o == nil {
		return
	}
	if c := o.longpollOut[outcome]; c != nil {
		c.Inc()
	}
	o.longpollWait.Observe(time.Since(start).Seconds())
}

// expvar.Publish panics on duplicate names and the process hosts one
// expvar namespace, so the published Func indirects through an atomic
// pointer: tests build many servers, and the last registry wins.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[obs.Registry]
)

func publishExpvar(reg *obs.Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("oassis", expvar.Func(func() any {
			if r := expvarReg.Load(); r != nil {
				return r.Snapshot()
			}
			return map[string]float64{}
		}))
	})
}

// mountDebug adds the observability endpoints to mux: GET /metrics
// (Prometheus text) and GET /debug/vars (expvar) always, and the pprof
// handlers only when debug is set — profiling endpoints can stall the
// process and are opt-in. Without debug, /debug/pprof/* falls through to
// the index handler's 404.
func (s *server) mountDebug(mux *http.ServeMux, debug bool) {
	if s.obs != nil {
		mux.Handle("GET /metrics", s.obs.reg.Handler())
		publishExpvar(s.obs.reg)
	}
	mux.Handle("GET /debug/vars", expvar.Handler())
	if debug {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}
