package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"oassis/internal/crowd"
	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/store"
)

// answerOne long-polls for the member's next question, answers it from
// the personal DB, and returns the question text ("" when the run is done
// or only a wait elapsed).
func answerOne(t *testing.T, base, member string, s *ontology.Sample, db *crowd.PersonalDB) (text, typ string) {
	t.Helper()
	var q questionJSON
	getJSON(t, base+"/api/question?member="+member, &q)
	switch q.Type {
	case "done", "wait":
		return "", q.Type
	case "concrete":
		fs, err := parseQuestionText(s, q.Text)
		if err != nil {
			t.Fatal(err)
		}
		level := int(crowd.FiveLevel(db.Support(fs)) / 0.25)
		resp, _ := postJSON(t, base+"/api/answer", map[string]interface{}{
			"member": member, "id": q.ID, "level": level,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("answer rejected: %d", resp.StatusCode)
		}
		return q.Text, q.Type
	default:
		t.Fatalf("unexpected question type %q", q.Type)
		return "", ""
	}
}

// TestServerKillAndRestartResumes kills a -store server mid-query and
// restarts it against the same directory: the member keeps their slot and
// leaderboard score, no already-answered question is re-asked, and the
// session completes with the same MSPs as an uninterrupted run.
func TestServerKillAndRestartResumes(t *testing.T) {
	s := ontology.NewSample()
	q := oassisql.MustParse(serverQuery)
	u1, _ := crowd.SampleDBs(s)
	newSrv := func(st *store.Store, rec *store.Recovered) (*server, *httptest.Server) {
		srv, err := newServer(s.Voc, s.Onto, q, 2, 1, 100*time.Millisecond, st, rec, nil)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.routes(false))
		t.Cleanup(ts.Close)
		return srv, ts
	}
	finish := func(ts *httptest.Server, banned map[string]bool) []string {
		var texts []string
		deadline := time.Now().Add(30 * time.Second)
		for {
			if time.Now().After(deadline) {
				t.Fatal("session did not finish")
			}
			text, typ := answerOne(t, ts.URL, "p00", s, u1)
			if typ == "done" {
				return texts
			}
			if text != "" {
				if banned[text] {
					t.Fatalf("question %q re-asked after restart", text)
				}
				texts = append(texts, text)
			}
		}
	}

	// Reference: uninterrupted storeless run with the same single member.
	_, ts0 := newSrv(nil, nil)
	postJSON(t, ts0.URL+"/api/join", map[string]string{"name": "ann"})
	refTexts := finish(ts0, nil)
	var ref struct {
		MSPs []string `json:"msps"`
	}
	getJSON(t, ts0.URL+"/api/results", &ref)
	if len(refTexts) < 4 {
		t.Fatalf("reference session asked only %d questions", len(refTexts))
	}

	// Phase 1: answer a prefix, then kill the server.
	dir := t.TempDir()
	st1, rec1, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := newSrv(st1, rec1)
	resp, body := postJSON(t, ts1.URL+"/api/join", map[string]string{"name": "ann"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %v", body)
	}
	stop := len(refTexts) / 2
	answered := make(map[string]bool)
	for len(answered) < stop {
		text, typ := answerOne(t, ts1.URL, "p00", s, u1)
		if typ == "done" {
			t.Fatal("session finished before the crash point")
		}
		if text != "" {
			answered[text] = true
		}
	}
	// Long-poll once more: when the next question arrives, the engine has
	// durably recorded every answer above, and the delivered question is
	// journaled as issued. Then kill without ceremony — with that question
	// in flight.
	var killed questionJSON
	getJSON(t, ts1.URL+"/api/question?member=p00", &killed)
	if killed.Type != "concrete" {
		t.Fatalf("question at the crash point is %q, want concrete", killed.Type)
	}
	killedFS, err := parseQuestionText(s, killed.Text)
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: restart against the same directory.
	st2, rec2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Answers) != stop {
		t.Fatalf("recovered %d answers, want %d", len(rec2.Answers), stop)
	}
	// The question handed out at the kill is recovered as in flight — and
	// no in-flight record duplicates a recovered answer (issued questions
	// whose answers landed are not in flight).
	foundInFlight := false
	for _, r := range rec2.InFlight {
		if r.Member == "p00" && r.Question == killedFS.Key() {
			foundInFlight = true
		}
		for _, a := range rec2.Answers {
			if a.Question == r.Question && a.Member == r.Member {
				t.Fatalf("in-flight question %q/%s also recovered as answered", r.Question, r.Member)
			}
		}
	}
	if !foundInFlight {
		t.Fatalf("question in flight at the kill not recovered (in-flight: %v)", rec2.InFlight)
	}
	srv2, ts2 := newSrv(st2, rec2)
	defer srv2.shutdown()

	// The roster survived: ann still owns p00, no re-join needed, and the
	// leaderboard still credits her prefix answers.
	if !srv2.memberKnown("p00") {
		t.Fatal("member lost across restart")
	}
	var rows []struct {
		Name    string `json:"name"`
		Answers int    `json:"answers"`
	}
	getJSON(t, ts2.URL+"/api/stats", &rows)
	if len(rows) != 1 || rows[0].Name != "ann" || rows[0].Answers != stop {
		t.Fatalf("leaderboard after restart = %+v, want ann with %d", rows, stop)
	}

	// Finish the query; no question answered before the kill may reappear,
	// and the in-flight question is re-issued first rather than lost.
	texts2 := finish(ts2, answered)
	if len(texts2) == 0 || texts2[0] != killed.Text {
		t.Fatalf("in-flight question %q not re-issued first after restart (got %v)",
			killed.Text, texts2)
	}
	var res struct {
		Done bool     `json:"done"`
		MSPs []string `json:"msps"`
	}
	getJSON(t, ts2.URL+"/api/results", &res)
	if !res.Done {
		t.Fatal("results not ready")
	}
	if len(res.MSPs) != len(ref.MSPs) {
		t.Fatalf("MSPs after restart = %v, want %v", res.MSPs, ref.MSPs)
	}
	for i := range res.MSPs {
		if res.MSPs[i] != ref.MSPs[i] {
			t.Fatalf("MSPs after restart = %v, want %v", res.MSPs, ref.MSPs)
		}
	}

	// A second restart of a finished session recovers everything and
	// reports done immediately.
	st3, rec3, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec3.Answers) != len(refTexts) {
		t.Fatalf("finished store holds %d answers, want %d", len(rec3.Answers), len(refTexts))
	}
	srv3, ts3 := newSrv(st3, rec3)
	defer srv3.shutdown()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("replayed session did not finish")
		}
		var q3 questionJSON
		getJSON(t, ts3.URL+"/api/question?member=p00", &q3)
		if q3.Type == "done" {
			break
		}
		if q3.Type != "wait" {
			t.Fatalf("finished session asked a question: %+v", q3)
		}
	}
}

// TestServerStoreQueryMismatch refuses to replay a store into a different
// query.
func TestServerStoreQueryMismatch(t *testing.T) {
	s := ontology.NewSample()
	dir := t.TempDir()
	st, rec, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newServer(s.Voc, s.Onto, oassisql.MustParse(serverQuery), 1, 1,
		time.Second, st, rec, nil); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, rec2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	other := oassisql.MustParse(resumeAltQuery)
	if _, err := newServer(s.Voc, s.Onto, other, 1, 1, time.Second, st2, rec2, nil); err == nil {
		t.Fatal("different query accepted against a bound store")
	}
}

// resumeAltQuery differs from serverQuery (higher support threshold).
const resumeAltQuery = `
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity
SATISFYING
  $y doAt $x
WITH SUPPORT = 0.6
`

// TestServerStorePlanDrift refuses to replay a store whose journaled plan
// fingerprint no longer matches what the query compiles to — the same
// query text over a drifted domain must not silently replay answers into
// a different assignment space.
func TestServerStorePlanDrift(t *testing.T) {
	s := ontology.NewSample()
	q := oassisql.MustParse(serverQuery)
	dir := t.TempDir()
	st, _, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.BindSession(q.String()); err != nil {
		t.Fatal(err)
	}
	if err := st.BindPlan("sha256:recorded-under-another-domain"); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, rec2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec2.Plan != "sha256:recorded-under-another-domain" {
		t.Fatalf("recovered plan = %q", rec2.Plan)
	}
	_, err = newServer(s.Voc, s.Onto, q, 1, 1, time.Second, st2, rec2, nil)
	if err == nil {
		t.Fatal("drifted plan fingerprint accepted against a bound store")
	}
	if !strings.Contains(err.Error(), "domain drift") {
		t.Fatalf("unexpected error: %v", err)
	}
}
