package main

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"oassis/internal/crowd"
	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/serve"
	"oassis/internal/store"
)

// answerOne long-polls for the member's next question, answers it from
// the personal DB, and returns the question text ("" when the run is done
// or only a wait elapsed).
func answerOne(t *testing.T, base, member string, s *ontology.Sample, db *crowd.PersonalDB) (text, typ string) {
	t.Helper()
	var q questionJSON
	getJSON(t, base+"/api/question?member="+member, &q)
	switch q.Type {
	case "done", "wait":
		return "", q.Type
	case "concrete":
		fs, err := parseQuestionText(s, q.Text)
		if err != nil {
			t.Fatal(err)
		}
		level := int(crowd.FiveLevel(db.Support(fs)) / 0.25)
		resp, _ := postJSON(t, base+"/api/answer", map[string]interface{}{
			"member": member, "session": q.Session, "id": q.ID, "level": level,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("answer rejected: %d", resp.StatusCode)
		}
		return q.Text, q.Type
	default:
		t.Fatalf("unexpected question type %q", q.Type)
		return "", ""
	}
}

// newStoreServer stands up a single-tenant server whose default tenant is
// durable under dir (in-memory when dir is empty) and runs serverQuery.
// The registry is returned so the test can kill the server (Close) and
// restart it against the same directory.
func newStoreServer(t *testing.T, dir string) (*serve.Registry, *serve.Tenant, *httptest.Server) {
	t.Helper()
	s := ontology.NewSample()
	reg := serve.NewRegistry(serve.Config{})
	t.Cleanup(func() { _ = reg.Close() })
	tn, err := reg.AddTenant(serve.TenantConfig{
		Name: defaultTenant, Voc: s.Voc, Onto: s.Onto,
		Members: 2, AnswersPerQuestion: 1, StoreDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	// EnsureSession resumes a recovered session of the same plan instead
	// of forking a duplicate.
	if _, _, err := tn.EnsureSession(oassisql.MustParse(serverQuery)); err != nil {
		t.Fatal(err)
	}
	srv := newServer(reg, nil, 100*time.Millisecond)
	ts := httptest.NewServer(srv.routes(false))
	t.Cleanup(ts.Close)
	return reg, tn, ts
}

// TestServerKillAndRestartResumes kills a durable server mid-query and
// restarts it against the same directory: the member keeps their slot and
// leaderboard score, no already-answered question is re-asked, and the
// session completes with the same MSPs as an uninterrupted run.
func TestServerKillAndRestartResumes(t *testing.T) {
	s := ontology.NewSample()
	u1, _ := crowd.SampleDBs(s)
	finish := func(ts *httptest.Server, banned map[string]bool) []string {
		var texts []string
		deadline := time.Now().Add(30 * time.Second)
		for {
			if time.Now().After(deadline) {
				t.Fatal("session did not finish")
			}
			text, typ := answerOne(t, ts.URL, "p00", s, u1)
			if typ == "done" {
				return texts
			}
			if text != "" {
				if banned[text] {
					t.Fatalf("question %q re-asked after restart", text)
				}
				texts = append(texts, text)
			}
		}
	}

	// Reference: uninterrupted storeless run with the same single member.
	_, _, ts0 := newStoreServer(t, "")
	postJSON(t, ts0.URL+"/api/join", map[string]string{"name": "ann"})
	refTexts := finish(ts0, nil)
	var ref struct {
		MSPs []string `json:"msps"`
	}
	getJSON(t, ts0.URL+"/api/results", &ref)
	if len(refTexts) < 4 {
		t.Fatalf("reference session asked only %d questions", len(refTexts))
	}

	// Phase 1: answer a prefix, then kill the server.
	dir := t.TempDir()
	reg1, _, ts1 := newStoreServer(t, dir)
	resp, body := postJSON(t, ts1.URL+"/api/join", map[string]string{"name": "ann"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %v", body)
	}
	stop := len(refTexts) / 2
	answered := make(map[string]bool)
	for len(answered) < stop {
		text, typ := answerOne(t, ts1.URL, "p00", s, u1)
		if typ == "done" {
			t.Fatal("session finished before the crash point")
		}
		if text != "" {
			answered[text] = true
		}
	}
	// Long-poll once more: when the next question arrives, the engine has
	// durably recorded every answer above, and the delivered question is
	// journaled as issued. Then kill without ceremony — with that question
	// in flight.
	var killed questionJSON
	getJSON(t, ts1.URL+"/api/question?member=p00", &killed)
	if killed.Type != "concrete" {
		t.Fatalf("question at the crash point is %q, want concrete", killed.Type)
	}
	killedFS, err := parseQuestionText(s, killed.Text)
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	if err := reg1.Close(); err != nil {
		t.Fatal(err)
	}

	// Inspect the raw session store: the prefix answers are durable and
	// the question handed out at the kill is recovered as in flight — and
	// no in-flight record duplicates a recovered answer.
	sessDirs, err := filepath.Glob(filepath.Join(dir, "shard-*", "s*"))
	if err != nil || len(sessDirs) != 1 {
		t.Fatalf("session store dirs = %v (err %v), want exactly 1", sessDirs, err)
	}
	stRaw, rec, err := store.Open(sessDirs[0], store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Answers) != stop {
		t.Fatalf("recovered %d answers, want %d", len(rec.Answers), stop)
	}
	foundInFlight := false
	for _, r := range rec.InFlight {
		if r.Member == "p00" && r.Question == killedFS.Key() {
			foundInFlight = true
		}
		for _, a := range rec.Answers {
			if a.Question == r.Question && a.Member == r.Member {
				t.Fatalf("in-flight question %q/%s also recovered as answered", r.Question, r.Member)
			}
		}
	}
	if !foundInFlight {
		t.Fatalf("question in flight at the kill not recovered (in-flight: %v)", rec.InFlight)
	}
	if err := stRaw.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: restart against the same directory.
	reg2, tn2, ts2 := newStoreServer(t, dir)

	// The roster survived: ann still owns p00, no re-join needed, and the
	// leaderboard still credits her prefix answers.
	if !tn2.MemberKnown("p00") {
		t.Fatal("member lost across restart")
	}
	if n := len(tn2.Sessions()); n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	var rows []struct {
		Name    string `json:"name"`
		Answers int    `json:"answers"`
	}
	getJSON(t, ts2.URL+"/api/stats", &rows)
	if len(rows) != 1 || rows[0].Name != "ann" || rows[0].Answers != stop {
		t.Fatalf("leaderboard after restart = %+v, want ann with %d", rows, stop)
	}

	// Finish the query; no question answered before the kill may reappear,
	// and the in-flight question is re-issued first rather than lost.
	texts2 := finish(ts2, answered)
	if len(texts2) == 0 || texts2[0] != killed.Text {
		t.Fatalf("in-flight question %q not re-issued first after restart (got %v)",
			killed.Text, texts2)
	}
	var res struct {
		Done bool     `json:"done"`
		MSPs []string `json:"msps"`
	}
	getJSON(t, ts2.URL+"/api/results", &res)
	if !res.Done {
		t.Fatal("results not ready")
	}
	if len(res.MSPs) != len(ref.MSPs) {
		t.Fatalf("MSPs after restart = %v, want %v", res.MSPs, ref.MSPs)
	}
	for i := range res.MSPs {
		if res.MSPs[i] != ref.MSPs[i] {
			t.Fatalf("MSPs after restart = %v, want %v", res.MSPs, ref.MSPs)
		}
	}
	ts2.Close()
	if err := reg2.Close(); err != nil {
		t.Fatal(err)
	}

	// A second restart of a finished session recovers everything and
	// reports done immediately.
	_, tn3, ts3 := newStoreServer(t, dir)
	if got := len(tn3.Sessions()); got != 1 {
		t.Fatalf("finished store recovered %d sessions, want 1", got)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("replayed session did not finish")
		}
		var q3 questionJSON
		getJSON(t, ts3.URL+"/api/question?member=p00", &q3)
		if q3.Type == "done" {
			break
		}
		if q3.Type != "wait" {
			t.Fatalf("finished session asked a question: %+v", q3)
		}
	}
}

// TestServerStoreBadJournal refuses to recover a tenant whose session
// store journaled an unparseable query — recovery recompiles every
// session from its own journal, so a corrupt journal must fail loudly
// instead of silently dropping the session.
func TestServerStoreBadJournal(t *testing.T) {
	s := ontology.NewSample()
	dir := t.TempDir()
	st, _, err := store.Open(filepath.Join(dir, "shard-0", "s0001"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.BindSession("THIS IS NOT OASSIS-QL"); err != nil {
		t.Fatal(err)
	}
	st.Close()

	reg := serve.NewRegistry(serve.Config{})
	defer reg.Close()
	_, err = reg.AddTenant(serve.TenantConfig{
		Name: "a", Voc: s.Voc, Onto: s.Onto, StoreDir: dir,
	})
	if err == nil {
		t.Fatal("corrupt journaled query accepted")
	}
	if !strings.Contains(err.Error(), "journaled query") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestServerStorePlanDrift refuses to replay a store whose journaled plan
// fingerprint no longer matches what the query compiles to — the same
// query text over a drifted domain must not silently replay answers into
// a different assignment space.
func TestServerStorePlanDrift(t *testing.T) {
	s := ontology.NewSample()
	q := oassisql.MustParse(serverQuery)
	dir := t.TempDir()
	st, _, err := store.Open(filepath.Join(dir, "shard-0", "s0001"), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.BindSession(q.String()); err != nil {
		t.Fatal(err)
	}
	if err := st.BindPlan("sha256:recorded-under-another-domain"); err != nil {
		t.Fatal(err)
	}
	st.Close()

	reg := serve.NewRegistry(serve.Config{})
	defer reg.Close()
	_, err = reg.AddTenant(serve.TenantConfig{
		Name: "a", Voc: s.Voc, Onto: s.Onto, StoreDir: dir,
	})
	if err == nil {
		t.Fatal("drifted plan fingerprint accepted against a bound store")
	}
	if !strings.Contains(err.Error(), "domain drift") {
		t.Fatalf("unexpected error: %v", err)
	}
}
