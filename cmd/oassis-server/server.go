package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"oassis/internal/aggregate"
	"oassis/internal/assign"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/oassisql"
	"oassis/internal/obs"
	"oassis/internal/ontology"
	"oassis/internal/plan"
	"oassis/internal/store"
	"oassis/internal/vocab"
)

// server is the crowdsourcing platform of §6.2: visitors join the question
// game, answer the engine's questions about their habits (concrete and
// specialization questions on the paper's five-level scale), collect stars,
// and appear on the top-20 statistics page; the query owner polls for the
// mined answers.
type server struct {
	voc    *vocab.Vocabulary
	onto   *ontology.Ontology
	domain *core.Domain // shared read-only domain with the per-domain plan cache
	plan   *plan.Plan   // the compiled plan the session executes
	sp     *assign.Space
	query  *oassisql.Query
	tpl    *crowd.Templates
	poll   time.Duration
	store  *store.Store // nil without -store
	obs    *serverObs   // nil without a registry

	// sess is the step-driven engine session. It is not safe for
	// concurrent use, so every Next/Submit happens under mu; handlers
	// long-poll on notify (closed and replaced whenever pending changes)
	// instead of blocking inside the session.
	sess *core.Session

	mu       sync.Mutex
	notify   chan struct{}
	finished bool
	result   *core.Result
	slots    []string          // member IDs (slots), in join order
	nextIdx  int               // next unclaimed slot
	names    map[string]string // slot -> display name
	pending  map[string]*pendingQuestion
	serial   int
	answers  map[string]int // live leaderboard
}

type pendingQuestion struct {
	id int
	q  core.Question
}

// newServer compiles the query against the ontology and starts the engine
// with `slots` member sessions. A non-nil store st (with its recovery
// state rec) makes the session durable: the member roster is restored so
// returning members keep their slots, recovered answers are replayed
// instead of re-asked, and every new answer is persisted before the
// engine proceeds — so a killed and restarted server resumes mid-query.
// A non-nil registry instruments the engine session and the HTTP layer;
// it is purely observational and never changes what the server serves.
func newServer(voc *vocab.Vocabulary, onto *ontology.Ontology, query *oassisql.Query,
	slots, answersPerQuestion int, poll time.Duration,
	st *store.Store, rec *store.Recovered, reg *obs.Registry) (*server, error) {
	dom, err := core.NewDomain(voc, onto)
	if err != nil {
		return nil, err
	}
	var planMetrics *plan.CacheMetrics
	if reg != nil {
		planMetrics = plan.NewCacheMetrics(reg)
	}
	// Compile through the per-domain plan cache: sessions over the same
	// domain (the server restarts against the same ontology, future
	// multi-session serving) reuse the compiled plan instead of
	// re-analyzing the query.
	pl, _, err := dom.Compile(query, planMetrics)
	if err != nil {
		return nil, err
	}
	sp := pl.NewSpace()
	policy, err := pl.Policy()
	if err != nil {
		return nil, err
	}
	s := &server{
		voc:     voc,
		onto:    onto,
		domain:  dom,
		plan:    pl,
		sp:      sp,
		query:   query,
		tpl:     crowd.NewTemplates(voc),
		poll:    poll,
		notify:  make(chan struct{}),
		names:   make(map[string]string),
		pending: make(map[string]*pendingQuestion),
		answers: make(map[string]int),
	}
	for i := 0; i < slots; i++ {
		s.slots = append(s.slots, fmt.Sprintf("p%02d", i))
	}
	cfg := core.Config{
		Space:  sp,
		Theta:  pl.Support,
		Policy: policy,
		Agg:    aggregate.NewFixedSample(answersPerQuestion),
	}
	if reg != nil {
		s.obs = newServerObs(reg)
		cfg.Metrics = core.NewMetrics(reg)
	}
	if st != nil {
		// A store directory holds one query's answers: refuse to replay
		// them into a different query, then restore the roster and the
		// leaderboard and prime the engine with the recovered answers.
		if rec.Session != "" && rec.Session != query.String() {
			return nil, fmt.Errorf("store is bound to a different query; use a fresh -store directory")
		}
		if err := st.BindSession(query.String()); err != nil {
			return nil, err
		}
		// The same query can compile to a different plan if the ontology
		// changed between runs (domain drift); the recorded answers then
		// belong to the old plan's assignment space, so refuse to resume.
		if rec.Plan != "" && rec.Plan != pl.Fingerprint() {
			return nil, fmt.Errorf("store was recorded under plan %s but the query now compiles to %s (domain drift); use a fresh -store directory",
				rec.Plan, pl.Fingerprint())
		}
		if err := st.BindPlan(pl.Fingerprint()); err != nil {
			return nil, err
		}
		for _, j := range rec.Joins {
			if s.nextIdx < len(s.slots) && s.slots[s.nextIdx] == j.Member {
				s.names[j.Member] = j.Note
				s.nextIdx++
			}
		}
		for _, a := range rec.Answers {
			if a.Counted {
				s.answers[a.Member]++
			}
		}
		s.store = st
		cfg.Store = st
		if len(rec.Answers) > 0 {
			cfg.Prime = rec.PrimeCache()
		}
	}
	s.sess = core.NewSession(cfg, s.slots)
	s.mu.Lock()
	s.refillLocked()
	s.mu.Unlock()
	return s, nil
}

// refillLocked pulls the session's currently answerable questions into the
// per-member pending slots, journals newly issued questions to the store,
// and wakes long-pollers when anything changed. Caller holds s.mu.
func (s *server) refillLocked() {
	if s.finished {
		return
	}
	if s.sess.Done() {
		s.finished = true
		s.result = s.sess.Result()
		s.broadcastLocked()
		return
	}
	changed := false
	for _, q := range s.sess.Next() {
		if s.pending[q.Member] != nil {
			continue
		}
		s.serial++
		s.pending[q.Member] = &pendingQuestion{id: s.serial, q: q}
		changed = true
		if s.store != nil && q.Kind == core.KindConcrete {
			// Journal the hand-out before a client sees it: an issued
			// record without a matching answer marks a question in flight
			// at a crash, which the restarted server re-issues.
			if err := s.store.AppendIssued(q.Facts.Key(), q.Member); err != nil {
				log.Printf("oassis-server: store issued: %v", err)
			}
		}
	}
	if changed {
		s.broadcastLocked()
	}
}

// broadcastLocked wakes every long-polling handler. Caller holds s.mu.
func (s *server) broadcastLocked() {
	close(s.notify)
	s.notify = make(chan struct{})
}

// shutdown flushes and closes the store (if any) after the HTTP listener
// has stopped, so every answer accepted before the shutdown is durable.
func (s *server) shutdown() error {
	if s.store == nil {
		return nil
	}
	return s.store.Close()
}

// routes builds the server mux. debug additionally mounts the pprof
// endpoints (see mountDebug).
func (s *server) routes(debug bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.obs.instrument("index", s.handleIndex))
	mux.HandleFunc("POST /api/join", s.obs.instrument("join", s.handleJoin))
	mux.HandleFunc("GET /api/question", s.obs.instrument("question", s.handleQuestion))
	mux.HandleFunc("POST /api/answer", s.obs.instrument("answer", s.handleAnswer))
	mux.HandleFunc("GET /api/results", s.obs.instrument("results", s.handleResults))
	mux.HandleFunc("GET /api/stats", s.obs.instrument("stats", s.handleStats))
	mux.HandleFunc("GET /plans", s.obs.instrument("plans", s.handlePlans))
	s.mountDebug(mux, debug)
	return mux
}

// handlePlans is the planner introspection route: the domain fingerprint
// and every plan in the per-domain cache, serialized as the reviewable
// IR (terms resolved to names), with the fingerprint of the plan the
// running session executes.
func (s *server) handlePlans(w http.ResponseWriter, r *http.Request) {
	cached := s.domain.Plans().Plans()
	out := struct {
		Domain  string            `json:"domain"`
		Session string            `json:"session_plan"`
		Plans   []json.RawMessage `json:"plans"`
	}{
		Domain:  s.domain.Fingerprint(),
		Session: s.plan.Fingerprint(),
		Plans:   make([]json.RawMessage, 0, len(cached)),
	}
	for _, p := range cached {
		js, err := p.MarshalJSON()
		if err != nil {
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		out.Plans = append(out.Plans, js)
	}
	writeJSON(w, http.StatusOK, out)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

func (s *server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || strings.TrimSpace(req.Name) == "" {
		httpError(w, http.StatusBadRequest, "a display name is required")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.nextIdx >= len(s.slots) {
		httpError(w, http.StatusConflict, "the crowd is full (%d members)", len(s.slots))
		return
	}
	id := s.slots[s.nextIdx]
	s.nextIdx++
	s.names[id] = strings.TrimSpace(req.Name)
	if s.store != nil {
		if err := s.store.AppendJoin(id, s.names[id]); err != nil {
			log.Printf("oassis-server: store join: %v", err)
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"member": id})
}

// questionJSON is the wire form of a question.
type questionJSON struct {
	Type    string   `json:"type"` // concrete | specialize | wait | done
	ID      int      `json:"id,omitempty"`
	Text    string   `json:"text,omitempty"`
	Choices []string `json:"choices,omitempty"`
	Scale   []string `json:"scale,omitempty"`
}

func (s *server) memberKnown(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.names[id]
	return ok
}

func (s *server) handleQuestion(w http.ResponseWriter, r *http.Request) {
	member := r.URL.Query().Get("member")
	if !s.memberKnown(member) {
		httpError(w, http.StatusNotFound, "unknown member %q", member)
		return
	}
	start := time.Now()
	deadline := time.NewTimer(s.poll)
	defer deadline.Stop()
	for {
		s.mu.Lock()
		s.refillLocked()
		// A pending question (possibly from before a client reload) is
		// resent as-is.
		if p := s.pending[member]; p != nil {
			resp := s.renderQuestion(p)
			s.mu.Unlock()
			s.obs.longpolled("question", start)
			writeJSON(w, http.StatusOK, resp)
			return
		}
		if s.finished {
			s.mu.Unlock()
			s.obs.longpolled("done", start)
			writeJSON(w, http.StatusOK, questionJSON{Type: "done"})
			return
		}
		notify := s.notify
		s.mu.Unlock()
		// Long-poll: wake on new questions, give up at the poll deadline,
		// and drop the work when the client goes away.
		select {
		case <-notify:
		case <-deadline.C:
			s.obs.longpolled("timeout", start)
			writeJSON(w, http.StatusOK, questionJSON{Type: "wait"})
			return
		case <-r.Context().Done():
			s.obs.longpolled("disconnect", start)
			return
		}
	}
}

// renderQuestion builds the wire form; the caller holds s.mu.
func (s *server) renderQuestion(p *pendingQuestion) questionJSON {
	var scale []string
	for _, a := range crowd.AnswerScale {
		scale = append(scale, a.Label)
	}
	if p.q.Specialization() {
		choices := make([]string, len(p.q.Choices))
		for i, c := range p.q.Choices {
			choices[i] = c.Format(s.voc)
		}
		return questionJSON{
			Type:    "specialize",
			ID:      p.id,
			Text:    "Can you be more specific? Pick what you do significantly often:",
			Choices: choices,
			Scale:   scale,
		}
	}
	return questionJSON{
		Type:  "concrete",
		ID:    p.id,
		Text:  s.tpl.Concrete(p.q.Facts),
		Scale: scale,
	}
}

func (s *server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Member string `json:"member"`
		ID     int    `json:"id"`
		Level  *int   `json:"level"`  // 0..4 on the five-level scale
		Choice *int   `json:"choice"` // specialization pick
		None   bool   `json:"none"`   // none of these
		Skip   bool   `json:"skip"`   // prefer concrete questions
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad answer payload")
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.pending[req.Member]
	if p == nil || p.id != req.ID {
		httpError(w, http.StatusConflict, "no pending question with id %d", req.ID)
		return
	}
	delete(s.pending, req.Member)
	s.answers[req.Member]++

	level := func() float64 {
		if req.Level == nil || *req.Level < 0 || *req.Level > 4 {
			return 0
		}
		return float64(*req.Level) * 0.25
	}
	var ans core.Answer
	switch {
	case !p.q.Specialization():
		ans = core.AnswerSupport(level())
	case req.Skip:
		ans = core.AnswerDecline()
	case req.None:
		ans = core.AnswerNoneOfThese()
	case req.Choice != nil && *req.Choice >= 0 && *req.Choice < len(p.q.Choices):
		ans = core.AnswerChoice(*req.Choice, level())
	default:
		ans = core.AnswerDecline()
	}
	// Answers to questions the run retired (the round moved on while the
	// member was thinking) are buffered or dropped by the session; either
	// way the member's star count already credited the effort.
	if err := s.sess.Submit(p.q.ID, ans); err != nil {
		log.Printf("oassis-server: submit: %v", err)
	}
	s.refillLocked()
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *server) handleResults(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.refillLocked()
	res := s.result
	s.mu.Unlock()
	if res == nil {
		writeJSON(w, http.StatusOK, map[string]interface{}{"done": false})
		return
	}
	var msps []string
	for _, m := range res.ValidMSPs {
		msps = append(msps, s.sp.Instantiate(m).Format(s.voc))
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"done":      true,
		"msps":      msps,
		"questions": res.Stats.TotalQuestions,
		"unique":    res.Stats.UniqueQuestions,
	})
}

// star awards the §6.2 virtual rewards.
func star(answers int) string {
	switch {
	case answers >= 30:
		return "gold"
	case answers >= 15:
		return "silver"
	case answers >= 5:
		return "bronze"
	default:
		return ""
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	type row struct {
		Name    string `json:"name"`
		Answers int    `json:"answers"`
		Star    string `json:"star,omitempty"`
	}
	s.mu.Lock()
	var rows []row
	for id, n := range s.answers {
		rows = append(rows, row{Name: s.names[id], Answers: n, Star: star(n)})
	}
	s.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Answers != rows[j].Answers {
			return rows[i].Answers > rows[j].Answers
		}
		return rows[i].Name < rows[j].Name
	})
	if len(rows) > 20 { // the paper's statistics page commends the top 20
		rows = rows[:20]
	}
	writeJSON(w, http.StatusOK, rows)
}
