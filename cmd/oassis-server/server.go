package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/oassisql"
	"oassis/internal/obs"
	"oassis/internal/serve"
)

// server is the HTTP layer of the crowdsourcing platform of §6.2, now
// multi-tenant: a serve.Registry hosts many named tenants (domain +
// roster + store dir), each running many concurrent query sessions, and
// this layer maps routes onto it. Tenant-scoped routes live under
// /t/{tenant}/...; the legacy single-tenant routes (/api/..., /plans)
// alias the "default" tenant so existing clients keep working. Visitors
// join a tenant's question game, answer questions on the paper's
// five-level scale, collect stars, and appear on the statistics page;
// query owners open sessions with POST .../api/query and poll for the
// mined answers.
type server struct {
	reg  *serve.Registry
	poll time.Duration
	obs  *serverObs // nil without a registry

	mu   sync.Mutex
	tpls map[string]*crowd.Templates // per-tenant NL templates
}

// defaultTenant is the tenant the legacy single-tenant routes serve.
const defaultTenant = "default"

// newServer builds the HTTP layer over a serving registry. metrics (may
// be nil) instruments the HTTP layer; the registry carries its own
// serving-tier instruments on the same obs registry.
func newServer(reg *serve.Registry, metrics *obs.Registry, poll time.Duration) *server {
	s := &server{
		reg:  reg,
		poll: poll,
		tpls: make(map[string]*crowd.Templates),
	}
	if metrics != nil {
		s.obs = newServerObs(metrics)
	}
	return s
}

// drain wakes every parked long-poller with a "done" reply; call before
// shutting the HTTP listener down so waiters don't ride out their polls.
func (s *server) drain() { s.reg.Drain() }

// shutdown stops every session engine and flushes and closes every
// store, after the HTTP listener has stopped.
func (s *server) shutdown() error { return s.reg.Close() }

// templates returns the tenant's NL question templates, built once.
func (s *server) templates(t *serve.Tenant) *crowd.Templates {
	s.mu.Lock()
	defer s.mu.Unlock()
	tpl, ok := s.tpls[t.Name()]
	if !ok {
		tpl = crowd.NewTemplates(t.Voc())
		s.tpls[t.Name()] = tpl
	}
	return tpl
}

// routes builds the server mux: tenant-scoped routes under /t/{tenant},
// legacy aliases on the default tenant, and the observability endpoints
// (pprof only with debug).
func (s *server) routes(debug bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.obs.instrument("index", s.handleIndex))
	mux.HandleFunc("GET /t/{tenant}", s.obs.instrument("index", s.handleIndex))
	mux.HandleFunc("GET /t/{tenant}/", s.obs.instrument("index", s.handleIndex))
	mux.HandleFunc("GET /api/tenants", s.obs.instrument("tenants", s.handleTenants))
	for _, p := range []string{"", "/t/{tenant}"} {
		mux.HandleFunc("POST "+p+"/api/join", s.obs.instrument("join", s.handleJoin))
		mux.HandleFunc("GET "+p+"/api/question", s.obs.instrument("question", s.handleQuestion))
		mux.HandleFunc("POST "+p+"/api/answer", s.obs.instrument("answer", s.handleAnswer))
		mux.HandleFunc("GET "+p+"/api/panel", s.obs.instrument("panel", s.handlePanel))
		mux.HandleFunc("POST "+p+"/api/panel", s.obs.instrument("panel_answer", s.handlePanelAnswer))
		mux.HandleFunc("POST "+p+"/api/query", s.obs.instrument("query", s.handleQuery))
		mux.HandleFunc("GET "+p+"/api/results", s.obs.instrument("results", s.handleResults))
		mux.HandleFunc("GET "+p+"/api/stats", s.obs.instrument("stats", s.handleStats))
		mux.HandleFunc("GET "+p+"/plans", s.obs.instrument("plans", s.handlePlans))
	}
	s.mountDebug(mux, debug)
	return mux
}

// tenant resolves the request's tenant: the {tenant} path value, or the
// default tenant on the legacy routes.
func (s *server) tenant(r *http.Request) (*serve.Tenant, error) {
	name := r.PathValue("tenant")
	if name == "" {
		name = defaultTenant
	}
	return s.reg.Tenant(name)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// serveError maps the serving tier's typed errors onto HTTP statuses:
// overload is 429 with a Retry-After hint, the unknown-thing family is
// 404, a stale answer is 409, and a closed registry is 503.
func (s *server) serveError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.reg.RetryAfter().Seconds()))))
		httpError(w, http.StatusTooManyRequests, "%s", err)
	case errors.Is(err, serve.ErrUnknownTenant),
		errors.Is(err, serve.ErrUnknownSession),
		errors.Is(err, serve.ErrUnknownMember):
		httpError(w, http.StatusNotFound, "%s", err)
	case errors.Is(err, serve.ErrNoPending):
		httpError(w, http.StatusConflict, "%s", err)
	case errors.Is(err, serve.ErrClosed):
		httpError(w, http.StatusServiceUnavailable, "%s", err)
	default:
		httpError(w, http.StatusInternalServerError, "%s", err)
	}
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.PathValue("tenant") == "" && r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	if _, err := s.tenant(r); err != nil {
		s.serveError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

func (s *server) handleTenants(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{"tenants": s.reg.Tenants()})
}

func (s *server) handleJoin(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenant(r)
	if err != nil {
		s.serveError(w, err)
		return
	}
	var req struct {
		Name string `json:"name"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || strings.TrimSpace(req.Name) == "" {
		httpError(w, http.StatusBadRequest, "a display name is required")
		return
	}
	id, err := t.Join(strings.TrimSpace(req.Name))
	if err != nil {
		if errors.Is(err, serve.ErrClosed) {
			s.serveError(w, err)
			return
		}
		httpError(w, http.StatusConflict, "%s", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"member": id, "tenant": t.Name()})
}

// questionJSON is the wire form of a question. Session addresses the
// hosting session within the tenant; clients echo it back in the answer.
type questionJSON struct {
	Type    string   `json:"type"` // concrete | specialize | wait | done
	Session string   `json:"session,omitempty"`
	ID      int      `json:"id,omitempty"`
	Text    string   `json:"text,omitempty"`
	Choices []string `json:"choices,omitempty"`
	Scale   []string `json:"scale,omitempty"`
}

func (s *server) handleQuestion(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenant(r)
	if err != nil {
		s.serveError(w, err)
		return
	}
	member := r.URL.Query().Get("member")
	start := time.Now()
	q, out, err := t.Poll(r.Context(), member, s.poll)
	if err != nil {
		if r.Context().Err() != nil {
			// The client went away; there is nobody to write to.
			s.obs.longpolled("disconnect", start)
			return
		}
		s.serveError(w, err)
		return
	}
	switch out {
	case serve.OutcomeQuestion:
		s.obs.longpolled("question", start)
		writeJSON(w, http.StatusOK, s.renderQuestion(t, q))
	case serve.OutcomeDone, serve.OutcomeShutdown:
		// Shutdown deliberately reads as "done" on the wire: parked
		// waiters wake immediately and the client stops polling instead
		// of riding out the timeout against a dying server.
		s.obs.longpolled("done", start)
		writeJSON(w, http.StatusOK, questionJSON{Type: "done"})
	default:
		s.obs.longpolled("timeout", start)
		writeJSON(w, http.StatusOK, questionJSON{Type: "wait"})
	}
}

// renderQuestion builds the wire form of a serving-tier question.
func (s *server) renderQuestion(t *serve.Tenant, q serve.Question) questionJSON {
	var scale []string
	for _, a := range crowd.AnswerScale {
		scale = append(scale, a.Label)
	}
	if q.Kind == core.KindSpecialization {
		choices := make([]string, len(q.Choices))
		for i, c := range q.Choices {
			choices[i] = c.Format(t.Voc())
		}
		return questionJSON{
			Type:    "specialize",
			Session: q.Session,
			ID:      q.ID,
			Text:    "Can you be more specific? Pick what you do significantly often:",
			Choices: choices,
			Scale:   scale,
		}
	}
	return questionJSON{
		Type:    "concrete",
		Session: q.Session,
		ID:      q.ID,
		Text:    s.templates(t).Concrete(q.Facts),
		Scale:   scale,
	}
}

// priorJSON is the wire form of a prior-primed guess: the best-guess
// frequency and the confidence grade that decides how the client renders
// the item (high → one-tap confirmation, lower → open question with the
// guess pre-selected).
type priorJSON struct {
	Frequency  float64 `json:"frequency"`
	Confidence string  `json:"confidence"`
	Source     string  `json:"source,omitempty"`
}

// panelItemJSON is one question inside a wire panel.
type panelItemJSON struct {
	ID          int        `json:"id"`
	Type        string     `json:"type"` // concrete | specialize
	Text        string     `json:"text"`
	Choices     []string   `json:"choices,omitempty"`
	Speculative bool       `json:"speculative,omitempty"`
	Prior       *priorJSON `json:"prior,omitempty"`
	Confirm     bool       `json:"confirm,omitempty"`
}

// panelJSON is the wire form of a member's question panel: one screen,
// one round trip. The answer scale applies to every item.
type panelJSON struct {
	Type    string          `json:"type"` // panel | wait | done
	Session string          `json:"session,omitempty"`
	Member  string          `json:"member,omitempty"`
	Items   []panelItemJSON `json:"items,omitempty"`
	Scale   []string        `json:"scale,omitempty"`
}

// renderPanel builds the wire form of a served panel.
func (s *server) renderPanel(t *serve.Tenant, p serve.Panel) panelJSON {
	var scale []string
	for _, a := range crowd.AnswerScale {
		scale = append(scale, a.Label)
	}
	out := panelJSON{Type: "panel", Session: p.Session, Member: p.Member, Scale: scale}
	for _, it := range p.Items {
		item := panelItemJSON{ID: it.ID, Speculative: it.Speculative}
		if it.Kind == core.KindSpecialization {
			item.Type = "specialize"
			item.Text = "Can you be more specific? Pick what you do significantly often:"
			item.Choices = make([]string, len(it.Choices))
			for i, c := range it.Choices {
				item.Choices[i] = c.Format(t.Voc())
			}
		} else {
			item.Type = "concrete"
			item.Text = s.templates(t).Concrete(it.Facts)
		}
		if it.Prior.Confidence != crowd.ConfidenceNone {
			item.Prior = &priorJSON{
				Frequency:  it.Prior.Support,
				Confidence: it.Prior.Confidence.String(),
				Source:     it.Prior.Source,
			}
			item.Confirm = it.Confirm
		}
		out.Items = append(out.Items, item)
	}
	return out
}

// handlePanel is the batched long-poll route: one GET hands the member a
// panel of up to max pending questions from one session, each primed with
// its prior, instead of one question per round trip.
func (s *server) handlePanel(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenant(r)
	if err != nil {
		s.serveError(w, err)
		return
	}
	member := r.URL.Query().Get("member")
	max := 0
	if v := r.URL.Query().Get("max"); v != "" {
		if max, err = strconv.Atoi(v); err != nil || max < 0 {
			httpError(w, http.StatusBadRequest, "max must be a non-negative integer")
			return
		}
	}
	start := time.Now()
	p, out, err := t.PollPanel(r.Context(), member, max, s.poll)
	if err != nil {
		if r.Context().Err() != nil {
			s.obs.longpolled("disconnect", start)
			return
		}
		s.serveError(w, err)
		return
	}
	switch out {
	case serve.OutcomeQuestion:
		s.obs.longpolled("question", start)
		writeJSON(w, http.StatusOK, s.renderPanel(t, p))
	case serve.OutcomeDone, serve.OutcomeShutdown:
		s.obs.longpolled("done", start)
		writeJSON(w, http.StatusOK, panelJSON{Type: "done"})
	default:
		s.obs.longpolled("timeout", start)
		writeJSON(w, http.StatusOK, panelJSON{Type: "wait"})
	}
}

// handlePanelAnswer submits a whole panel's answers in one POST. Items
// the session already consumed are skipped, mirroring SubmitPanel.
func (s *server) handlePanelAnswer(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenant(r)
	if err != nil {
		s.serveError(w, err)
		return
	}
	var req struct {
		Member  string `json:"member"`
		Session string `json:"session"`
		Answers []struct {
			ID     int  `json:"id"`
			Level  *int `json:"level"`
			Choice *int `json:"choice"`
			None   bool `json:"none"`
			Skip   bool `json:"skip"`
		} `json:"answers"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Answers) == 0 {
		httpError(w, http.StatusBadRequest, "a non-empty answers list is required")
		return
	}
	answers := make([]serve.PanelAnswer, 0, len(req.Answers))
	for _, a := range req.Answers {
		// Find the pending question to learn its kind before converting
		// the wire answer; SubmitPanel revalidates under the shard lock
		// and skips items consumed in the meantime.
		q, ok := t.Pending(req.Member, a.ID)
		if !ok {
			continue
		}
		level := 0.0
		if a.Level != nil && *a.Level >= 0 && *a.Level <= 4 {
			level = float64(*a.Level) * 0.25
		}
		var ans core.Answer
		switch {
		case q.Kind != core.KindSpecialization:
			ans = core.AnswerSupport(level)
		case a.Skip:
			ans = core.AnswerDecline()
		case a.None:
			ans = core.AnswerNoneOfThese()
		case a.Choice != nil && *a.Choice >= 0 && *a.Choice < len(q.Choices):
			ans = core.AnswerChoice(*a.Choice, level)
		default:
			ans = core.AnswerDecline()
		}
		answers = append(answers, serve.PanelAnswer{ID: a.ID, Answer: ans})
	}
	if len(answers) == 0 {
		s.serveError(w, fmt.Errorf("%w: no panel item matched for member %q in tenant %q",
			serve.ErrNoPending, req.Member, t.Name()))
		return
	}
	n, err := t.AnswerPanel(req.Session, req.Member, answers)
	if err != nil {
		s.serveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"ok": true, "applied": n})
}

func (s *server) handleAnswer(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenant(r)
	if err != nil {
		s.serveError(w, err)
		return
	}
	var req struct {
		Member  string `json:"member"`
		Session string `json:"session"`
		ID      int    `json:"id"`
		Level   *int   `json:"level"`  // 0..4 on the five-level scale
		Choice  *int   `json:"choice"` // specialization pick
		None    bool   `json:"none"`   // none of these
		Skip    bool   `json:"skip"`   // prefer concrete questions
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad answer payload")
		return
	}
	// Find the pending question to learn its kind before converting the
	// wire answer; the submit below revalidates under the shard lock.
	var q serve.Question
	var ok bool
	if req.Session != "" {
		sess, err := t.Session(req.Session)
		if err != nil {
			s.serveError(w, err)
			return
		}
		if q, ok = sess.Pending(req.Member); ok && q.ID != req.ID {
			ok = false
		}
	} else {
		q, ok = t.Pending(req.Member, req.ID)
	}
	if !ok {
		s.serveError(w, fmt.Errorf("%w %d for member %q in tenant %q",
			serve.ErrNoPending, req.ID, req.Member, t.Name()))
		return
	}
	level := func() float64 {
		if req.Level == nil || *req.Level < 0 || *req.Level > 4 {
			return 0
		}
		return float64(*req.Level) * 0.25
	}
	var ans core.Answer
	switch {
	case q.Kind != core.KindSpecialization:
		ans = core.AnswerSupport(level())
	case req.Skip:
		ans = core.AnswerDecline()
	case req.None:
		ans = core.AnswerNoneOfThese()
	case req.Choice != nil && *req.Choice >= 0 && *req.Choice < len(q.Choices):
		ans = core.AnswerChoice(*req.Choice, level())
	default:
		ans = core.AnswerDecline()
	}
	if err := t.Answer(q.Session, req.Member, q.ID, ans); err != nil {
		s.serveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// handleQuery opens a new session for a query posted to the tenant —
// how new query workloads are admitted without redeploying.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenant(r)
	if err != nil {
		s.serveError(w, err)
		return
	}
	var req struct {
		Query string `json:"query"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || strings.TrimSpace(req.Query) == "" {
		httpError(w, http.StatusBadRequest, "a query is required")
		return
	}
	q, err := oassisql.Parse(req.Query)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%s", err)
		return
	}
	sess, err := t.Open(q)
	if err != nil {
		s.serveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"session": sess.ID(),
		"plan":    sess.Plan().Fingerprint(),
		"shard":   sess.Shard(),
	})
}

// sessionResult renders one session's result block.
func (s *server) sessionResult(t *serve.Tenant, sess *serve.Session) map[string]interface{} {
	res, done := sess.Result()
	out := map[string]interface{}{
		"session": sess.ID(),
		"done":    done,
	}
	if !done {
		return out
	}
	var msps []string
	for _, m := range res.ValidMSPs {
		msps = append(msps, sess.Space().Instantiate(m).Format(t.Voc()))
	}
	out["msps"] = msps
	out["questions"] = res.Stats.TotalQuestions
	out["unique"] = res.Stats.UniqueQuestions
	return out
}

func (s *server) handleResults(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenant(r)
	if err != nil {
		s.serveError(w, err)
		return
	}
	if id := r.URL.Query().Get("session"); id != "" {
		sess, err := t.Session(id)
		if err != nil {
			s.serveError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, s.sessionResult(t, sess))
		return
	}
	sessions := t.Sessions()
	switch len(sessions) {
	case 0:
		writeJSON(w, http.StatusOK, map[string]interface{}{"done": false})
	case 1:
		// Single-session tenants keep the legacy shape.
		writeJSON(w, http.StatusOK, s.sessionResult(t, sessions[0]))
	default:
		all := true
		blocks := make([]map[string]interface{}, 0, len(sessions))
		for _, sess := range sessions {
			b := s.sessionResult(t, sess)
			if b["done"] == false {
				all = false
			}
			blocks = append(blocks, b)
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{"done": all, "sessions": blocks})
	}
}

// star awards the §6.2 virtual rewards.
func star(answers int) string {
	switch {
	case answers >= 30:
		return "gold"
	case answers >= 15:
		return "silver"
	case answers >= 5:
		return "bronze"
	default:
		return ""
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenant(r)
	if err != nil {
		s.serveError(w, err)
		return
	}
	type row struct {
		Name    string `json:"name"`
		Answers int    `json:"answers"`
		Star    string `json:"star,omitempty"`
	}
	rows := make([]row, 0, 20)
	for _, b := range t.Leaderboard() {
		rows = append(rows, row{Name: b.Name, Answers: b.Answers, Star: star(b.Answers)})
	}
	if len(rows) > 20 { // the paper's statistics page commends the top 20
		rows = rows[:20]
	}
	writeJSON(w, http.StatusOK, rows)
}

// handlePlans is the planner introspection route: the tenant's domain
// fingerprint, every plan in its per-domain cache (serialized as the
// reviewable IR), and the plan each live session executes.
func (s *server) handlePlans(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenant(r)
	if err != nil {
		s.serveError(w, err)
		return
	}
	sessions := t.Sessions()
	sessPlans := make(map[string]string, len(sessions))
	for _, sess := range sessions {
		sessPlans[sess.ID()] = sess.Plan().Fingerprint()
	}
	out := struct {
		Tenant   string            `json:"tenant"`
		Domain   string            `json:"domain"`
		Session  string            `json:"session_plan,omitempty"`
		Sessions map[string]string `json:"sessions"`
		Plans    []json.RawMessage `json:"plans"`
	}{
		Tenant:   t.Name(),
		Domain:   t.Domain().Fingerprint(),
		Sessions: sessPlans,
	}
	// Single-session tenants keep the legacy session_plan field.
	if len(sessions) == 1 {
		out.Session = sessions[0].Plan().Fingerprint()
	}
	cached := t.Domain().Plans().Plans()
	out.Plans = make([]json.RawMessage, 0, len(cached))
	for _, p := range cached {
		js, err := p.MarshalJSON()
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%s", err)
			return
		}
		out.Plans = append(out.Plans, js)
	}
	writeJSON(w, http.StatusOK, out)
}
