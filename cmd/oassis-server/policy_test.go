package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oassis/internal/plan"
	"oassis/internal/serve"
)

// TestFleetPolicyKey: the -tenants fleet.json "policy" key reaches the
// serving tier — the booted tenant's sessions compile the ordering
// variant, fingerprint-distinct from the default — and an unknown policy
// is refused at boot with the plan sentinel.
func TestFleetPolicyKey(t *testing.T) {
	dir := t.TempDir()
	qf := filepath.Join(dir, "q.oql")
	if err := os.WriteFile(qf, []byte(serverQuery), 0o644); err != nil {
		t.Fatal(err)
	}

	var specs []tenantSpec
	if err := json.Unmarshal([]byte(`[
		{"name": "plain", "members": 2, "queries": [`+jsonQuote(qf)+`]},
		{"name": "tuned", "members": 2, "policy": "max-prune", "queries": [`+jsonQuote(qf)+`]}
	]`), &specs); err != nil {
		t.Fatal(err)
	}
	if specs[1].Policy != plan.PolicyMaxPrune {
		t.Fatalf("fleet policy key parsed as %q", specs[1].Policy)
	}

	reg := serve.NewRegistry(serve.Config{})
	defer reg.Close()
	for _, spec := range specs {
		if err := bootTenant(reg, spec); err != nil {
			t.Fatal(err)
		}
	}
	plain, err := reg.Tenant("plain")
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := reg.Tenant("tuned")
	if err != nil {
		t.Fatal(err)
	}
	ps, ts := plain.Sessions(), tuned.Sessions()
	if len(ps) != 1 || len(ts) != 1 {
		t.Fatalf("sessions: plain %d, tuned %d", len(ps), len(ts))
	}
	if got := ts[0].Plan().PolicyName; got != plan.PolicyMaxPrune {
		t.Errorf("tuned session policy = %q", got)
	}
	if got := ps[0].Plan().PolicyName; got != plan.PolicyPaperOrder {
		t.Errorf("plain session policy = %q", got)
	}
	if ps[0].Plan().Fingerprint() == ts[0].Plan().Fingerprint() {
		t.Error("policy-tuned tenant shares the plain tenant's plan fingerprint")
	}

	err = bootTenant(reg, tenantSpec{Name: "bad", Members: 2, Policy: "nope"})
	if err == nil {
		t.Fatal("unknown fleet policy accepted at boot")
	}
	if !errors.Is(err, plan.ErrUnknownPolicy) {
		t.Errorf("boot error %v does not wrap plan.ErrUnknownPolicy", err)
	}
	if !strings.Contains(err.Error(), `tenant "bad"`) {
		t.Errorf("boot error %q does not name the tenant", err)
	}
}

// jsonQuote JSON-quotes a path for embedding in the fleet literal.
func jsonQuote(s string) string {
	b, _ := json.Marshal(s)
	return string(b)
}
