// Command oassis-server runs the crowdsourcing platform of the paper's
// §6.2 as a web service: crowd members visit the page, join the question
// game, answer concrete and specialization questions about their habits on
// the five-level frequency scale, and earn bronze/silver/gold stars; a
// statistics page commends the top contributors, and the mined answers
// appear when the query completes.
//
// With -store DIR every crowd answer is persisted to a write-ahead log in
// DIR before the engine proceeds, and restarting the server against the
// same directory resumes the session: members keep their slots and no
// already-answered question is ever re-asked. SIGINT/SIGTERM shut the
// server down gracefully, draining in-flight requests and flushing the
// store.
//
// GET /metrics serves the instrument registry in the Prometheus text
// format (questions in flight, answer latency, per-route request
// counters, long-poll waits, store fsyncs) and GET /debug/vars serves
// the same snapshot via expvar. -debug additionally mounts
// net/http/pprof under /debug/pprof/; without it those paths 404.
//
// Usage:
//
//	oassis-server -query q.oql [-ontology o.ttl] [-addr :8080] [-slots 20] [-k 5] [-store DIR]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"oassis/internal/oassisql"
	"oassis/internal/obs"
	"oassis/internal/ontology"
	"oassis/internal/rdfio"
	"oassis/internal/store"
	"oassis/internal/vocab"
)

func main() {
	var (
		queryFile = flag.String("query", "", "OASSIS-QL query file (required)")
		ontoFile  = flag.String("ontology", "", "ontology in Turtle subset (default: sample)")
		addr      = flag.String("addr", ":8080", "listen address")
		slots     = flag.Int("slots", 20, "maximum crowd members")
		k         = flag.Int("k", 5, "answers required per question")
		storeDir  = flag.String("store", "", "durable answer-store directory: a restarted server resumes the session without re-asking answered questions")
		debug     = flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/ (profiling endpoints are opt-in)")
	)
	flag.Parse()
	if *queryFile == "" {
		fmt.Fprintln(os.Stderr, "oassis-server: -query is required")
		os.Exit(2)
	}
	qtext, err := os.ReadFile(*queryFile)
	if err != nil {
		log.Fatal(err)
	}
	query, err := oassisql.Parse(string(qtext))
	if err != nil {
		log.Fatal(err)
	}
	var voc *vocab.Vocabulary
	var onto *ontology.Ontology
	if *ontoFile == "" {
		s := ontology.NewSample()
		voc, onto = s.Voc, s.Onto
	} else {
		f, err := os.Open(*ontoFile)
		if err != nil {
			log.Fatal(err)
		}
		voc, onto, err = rdfio.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	reg := obs.NewRegistry()
	var st *store.Store
	var rec *store.Recovered
	if *storeDir != "" {
		st, rec, err = store.Open(*storeDir, store.Options{Metrics: store.NewMetrics(reg)})
		if err != nil {
			log.Fatal(err)
		}
		if n := len(rec.Answers); n > 0 {
			log.Printf("oassis-server: resuming session from %s (%d answers, %d members)",
				*storeDir, n, len(rec.Joins))
		}
		if n := len(rec.InFlight); n > 0 {
			log.Printf("oassis-server: re-issuing %d questions that were in flight at shutdown", n)
		}
	}
	srv, err := newServer(voc, onto, query, *slots, *k, 20*time.Second, st, rec, reg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("oassis-server: crowdsourcing %q on %s (%d slots, %d answers/question)",
		*queryFile, *addr, *slots, *k)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes(*debug)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Print("oassis-server: shutting down (draining requests, flushing store)")
		shutCtx, cancel := context.WithTimeout(context.Background(), 25*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("oassis-server: shutdown: %v", err)
		}
	}()
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	if err := srv.shutdown(); err != nil {
		log.Fatalf("oassis-server: store close: %v", err)
	}
	log.Print("oassis-server: store flushed; bye")
}
