// Command oassis-server runs the crowdsourcing platform of the paper's
// §6.2 as a web service: crowd members visit the page, join the question
// game, answer concrete and specialization questions about their habits on
// the five-level frequency scale, and earn bronze/silver/gold stars; a
// statistics page commends the top contributors, and the mined answers
// appear when the query completes.
//
// Usage:
//
//	oassis-server -query q.oql [-ontology o.ttl] [-addr :8080] [-slots 20] [-k 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/rdfio"
	"oassis/internal/vocab"
)

func main() {
	var (
		queryFile = flag.String("query", "", "OASSIS-QL query file (required)")
		ontoFile  = flag.String("ontology", "", "ontology in Turtle subset (default: sample)")
		addr      = flag.String("addr", ":8080", "listen address")
		slots     = flag.Int("slots", 20, "maximum crowd members")
		k         = flag.Int("k", 5, "answers required per question")
	)
	flag.Parse()
	if *queryFile == "" {
		fmt.Fprintln(os.Stderr, "oassis-server: -query is required")
		os.Exit(2)
	}
	qtext, err := os.ReadFile(*queryFile)
	if err != nil {
		log.Fatal(err)
	}
	query, err := oassisql.Parse(string(qtext))
	if err != nil {
		log.Fatal(err)
	}
	var voc *vocab.Vocabulary
	var onto *ontology.Ontology
	if *ontoFile == "" {
		s := ontology.NewSample()
		voc, onto = s.Voc, s.Onto
	} else {
		f, err := os.Open(*ontoFile)
		if err != nil {
			log.Fatal(err)
		}
		voc, onto, err = rdfio.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	srv, err := newServer(voc, onto, query, *slots, *k, 20*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("oassis-server: crowdsourcing %q on %s (%d slots, %d answers/question)",
		*queryFile, *addr, *slots, *k)
	log.Fatal(http.ListenAndServe(*addr, srv.routes()))
}
