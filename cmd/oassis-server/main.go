// Command oassis-server runs the crowdsourcing platform of the paper's
// §6.2 as a web service: crowd members visit the page, join the question
// game, answer concrete and specialization questions about their habits on
// the five-level frequency scale, and earn bronze/silver/gold stars; a
// statistics page commends the top contributors, and the mined answers
// appear when the query completes.
//
// The server is multi-tenant: one process hosts many named tenants, each
// with its own ontology, member roster, and store directory, each running
// many concurrent query sessions sharded by plan fingerprint. Tenant
// routes live under /t/{tenant}/ (e.g. /t/acme/api/question); the bare
// /api/... routes alias the "default" tenant so single-tenant clients
// keep working. New sessions are opened at runtime with
// POST /t/{tenant}/api/query.
//
// With -tenants FILE the fleet is described by a JSON file (see
// tenantSpec); without it, the classic single-tenant flags (-query,
// -ontology, -slots, -k, -store) stand up the default tenant.
//
// With a store directory every crowd answer is persisted to a write-ahead
// log before the engine proceeds, and restarting the server against the
// same directory resumes every session: members keep their slots and no
// already-answered question is ever re-asked. SIGINT/SIGTERM shut the
// server down gracefully: parked long-pollers wake immediately with a
// "done" reply, in-flight requests drain, and every store is flushed.
//
// GET /metrics serves the instrument registry in the Prometheus text
// format (serving-tier gauges per tenant and shard, shed counters,
// dispatch p99, per-route request counters, store fsyncs) and
// GET /debug/vars serves the same snapshot via expvar. -debug
// additionally mounts net/http/pprof under /debug/pprof/.
//
// Usage:
//
//	oassis-server -query q.oql [-ontology o.ttl] [-addr :8080] [-slots 20] [-k 5] [-store DIR]
//	oassis-server -tenants fleet.json [-addr :8080]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"oassis/internal/oassisql"
	"oassis/internal/obs"
	"oassis/internal/ontology"
	"oassis/internal/rdfio"
	"oassis/internal/serve"
	"oassis/internal/vocab"
)

// tenantSpec is one entry of the -tenants JSON file.
type tenantSpec struct {
	Name     string   `json:"name"`
	Ontology string   `json:"ontology,omitempty"` // Turtle file; empty = sample ontology
	Members  int      `json:"members,omitempty"`  // roster slots (default 8)
	Shards   int      `json:"shards,omitempty"`   // session shards (default 4)
	K        int      `json:"k,omitempty"`        // answers per question (default 1)
	Store    string   `json:"store,omitempty"`    // durable store directory
	Queries  []string `json:"queries,omitempty"`  // query files to open at boot
	Panel    int      `json:"panel,omitempty"`    // panel speculation width (0 = flag/default)
	Policy   string   `json:"policy,omitempty"`   // question-ordering policy (default paper-order)
}

// loadDomain loads a vocabulary+ontology pair from a Turtle file, or the
// built-in sample domain when the path is empty.
func loadDomain(path string) (*vocab.Vocabulary, *ontology.Ontology, error) {
	if path == "" {
		s := ontology.NewSample()
		return s.Voc, s.Onto, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return rdfio.Load(f)
}

// bootTenant adds one tenant to the registry and opens its boot queries.
// Recovered sessions are matched by fingerprint (EnsureSession), so a
// restart resumes rather than forks a session per boot query.
func bootTenant(reg *serve.Registry, spec tenantSpec) error {
	voc, onto, err := loadDomain(spec.Ontology)
	if err != nil {
		return fmt.Errorf("tenant %q: %w", spec.Name, err)
	}
	t, err := reg.AddTenant(serve.TenantConfig{
		Name:               spec.Name,
		Voc:                voc,
		Onto:               onto,
		Members:            spec.Members,
		Shards:             spec.Shards,
		StoreDir:           spec.Store,
		AnswersPerQuestion: spec.K,
		PanelSpeculation:   spec.Panel,
		Policy:             spec.Policy,
	})
	if err != nil {
		return err
	}
	if n := len(t.Sessions()); n > 0 {
		log.Printf("oassis-server: tenant %q recovered %d session(s) from %s", spec.Name, n, spec.Store)
	}
	for _, qf := range spec.Queries {
		qtext, err := os.ReadFile(qf)
		if err != nil {
			return fmt.Errorf("tenant %q: %w", spec.Name, err)
		}
		q, err := oassisql.Parse(string(qtext))
		if err != nil {
			return fmt.Errorf("tenant %q: %s: %w", spec.Name, qf, err)
		}
		sess, existed, err := t.EnsureSession(q)
		if err != nil {
			return fmt.Errorf("tenant %q: %s: %w", spec.Name, qf, err)
		}
		verb := "opened"
		if existed {
			verb = "resumed"
		}
		log.Printf("oassis-server: tenant %q %s session %s (plan %s, shard %d) for %s",
			spec.Name, verb, sess.ID(), sess.Plan().Fingerprint()[:19], sess.Shard(), qf)
	}
	return nil
}

func main() {
	var (
		tenantsFile = flag.String("tenants", "", "JSON tenant fleet file; overrides the single-tenant flags")
		queryFile   = flag.String("query", "", "OASSIS-QL query file for the default tenant")
		ontoFile    = flag.String("ontology", "", "ontology in Turtle subset (default: sample)")
		addr        = flag.String("addr", ":8080", "listen address")
		slots       = flag.Int("slots", 20, "maximum crowd members (default tenant)")
		shards      = flag.Int("shards", 4, "session shards per tenant (default tenant)")
		k           = flag.Int("k", 5, "answers required per question")
		storeDir    = flag.String("store", "", "durable answer-store directory: a restarted server resumes every session without re-asking answered questions")
		panelSpec   = flag.Int("panel", 8, "panel speculation width: extra questions surfaced per member so GET /api/panel batches them (0 disables; results are identical either way)")
		inflight    = flag.Int("max-inflight", 0, "global long-poll budget before 429s (0 = default 1024)")
		waiters     = flag.Int("max-waiters", 0, "parked long-pollers per shard before 429s (0 = default 256)")
		debug       = flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/ (profiling endpoints are opt-in)")
	)
	flag.Parse()

	var specs []tenantSpec
	if *tenantsFile != "" {
		raw, err := os.ReadFile(*tenantsFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := json.Unmarshal(raw, &specs); err != nil {
			log.Fatalf("oassis-server: %s: %v", *tenantsFile, err)
		}
		if len(specs) == 0 {
			log.Fatalf("oassis-server: %s describes no tenants", *tenantsFile)
		}
	} else {
		if *queryFile == "" {
			fmt.Fprintln(os.Stderr, "oassis-server: -query or -tenants is required")
			os.Exit(2)
		}
		specs = []tenantSpec{{
			Name:     defaultTenant,
			Ontology: *ontoFile,
			Members:  *slots,
			Shards:   *shards,
			K:        *k,
			Store:    *storeDir,
			Queries:  []string{*queryFile},
			Panel:    *panelSpec,
		}}
	}

	metrics := obs.NewRegistry()
	reg := serve.NewRegistry(serve.Config{
		MaxInFlight:        *inflight,
		MaxWaitersPerShard: *waiters,
		Metrics:            metrics,
	})
	for _, spec := range specs {
		if err := bootTenant(reg, spec); err != nil {
			log.Fatalf("oassis-server: %v", err)
		}
	}
	srv := newServer(reg, metrics, 20*time.Second)
	log.Printf("oassis-server: serving %d tenant(s) on %s: %v", len(specs), *addr, reg.Tenants())

	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes(*debug)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Print("oassis-server: shutting down (waking long-pollers, draining requests, flushing stores)")
		srv.drain() // parked long-pollers wake with a "done" reply
		shutCtx, cancel := context.WithTimeout(context.Background(), 25*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("oassis-server: shutdown: %v", err)
		}
	}()
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	if err := srv.shutdown(); err != nil {
		log.Fatalf("oassis-server: store close: %v", err)
	}
	log.Print("oassis-server: stores flushed; bye")
}
