// Command oassis-gen generates synthetic workloads: a domain ontology in
// the Turtle subset plus a matching crowd-histories file for cmd/oassis.
//
// Usage:
//
//	oassis-gen -domain travel -out ./data
//	oassis-gen -domain culinary -members 20 -out ./data
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"oassis/internal/crowd"
	"oassis/internal/rdfio"
	"oassis/internal/synth"
)

func main() {
	var (
		domain  = flag.String("domain", "travel", "travel | culinary | self-treatment")
		members = flag.Int("members", 12, "number of crowd members to generate")
		out     = flag.String("out", ".", "output directory")
		seed    = flag.Int64("seed", 0, "override the domain's default seed")
	)
	flag.Parse()
	if err := run(*domain, *members, *out, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "oassis-gen:", err)
		os.Exit(1)
	}
}

func run(domain string, members int, out string, seed int64) error {
	var cfg synth.DomainConfig
	switch domain {
	case "travel":
		cfg = synth.Travel
	case "culinary":
		cfg = synth.Culinary
	case "self-treatment", "selftreatment":
		cfg = synth.SelfTreatment
	default:
		return fmt.Errorf("unknown domain %q", domain)
	}
	cfg.Members = members
	if seed != 0 {
		cfg.Seed = seed
	}
	d, err := synth.GenerateDomain(cfg)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}

	// Ontology: write the subsumption edges as an ontology document. The
	// generator keeps the order in the vocabulary only, so mirror it here.
	ontoPath := filepath.Join(out, cfg.Name+".ttl")
	f, err := os.Create(ontoPath)
	if err != nil {
		return err
	}
	if err := rdfio.Write(f, d.Onto); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	// Crowd histories.
	crowdPath := filepath.Join(out, cfg.Name+"-crowd.txt")
	cf, err := os.Create(crowdPath)
	if err != nil {
		return err
	}
	defer cf.Close()
	var sb strings.Builder
	for _, m := range d.Members {
		sim, ok := m.(*crowd.SimMember)
		if !ok {
			continue
		}
		fmt.Fprintf(&sb, "member %s\n", sim.Name)
		for _, tx := range sim.DB.Transactions {
			fmt.Fprintf(&sb, "%s\n", tx.Format(d.Voc))
		}
		sb.WriteByte('\n')
	}
	if _, err := cf.WriteString(sb.String()); err != nil {
		return err
	}

	fmt.Printf("wrote %s (%d facts) and %s (%d members)\n",
		ontoPath, d.Onto.Len(), crowdPath, len(d.Members))
	return nil
}
