// Command oassis evaluates an OASSIS-QL query against an ontology with a
// crowd: either a simulated crowd loaded from a histories file, or the
// interactive terminal crowd member (the paper's §6.2 crowdsourcing UI in
// TTY form: you answer the engine's questions yourself).
//
// Usage:
//
//	oassis -query q.oql [-ontology o.ttl] [-crowd histories.txt] [-k 5] [-interactive]
//
// Without -ontology the paper's Figure 1 sample ontology is used; without
// -crowd or -interactive, the paper's Table 3 members u1 and u2 answer.
//
// The histories file holds one member per paragraph: a first line `member
// NAME` followed by one transaction per line in the paper's notation
// ("Biking doAt Central Park. Falafel eatAt Maoz Veg"); blank lines and
// #-comments are ignored.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"oassis"
)

func main() {
	var (
		queryFile   = flag.String("query", "", "OASSIS-QL query file (required)")
		ontoFile    = flag.String("ontology", "", "ontology in Turtle subset (default: sample)")
		crowdFile   = flag.String("crowd", "", "crowd histories file (default: Table 3 members)")
		k           = flag.Int("k", 2, "answers required per question")
		interactive = flag.Bool("interactive", false, "answer the crowd questions yourself")
		all         = flag.Bool("stats", false, "print run statistics")
		seed        = flag.Int64("seed", 1, "random seed")
		storeDir    = flag.String("store", "", "durable answer-store directory: answers are persisted there and a rerun resumes without re-asking them")
		policy      = flag.String("policy", "", "question-ordering policy: paper-order (default), largest-first, chain-prune or max-prune")
	)
	flag.Parse()
	if *queryFile == "" {
		fmt.Fprintln(os.Stderr, "oassis: -query is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*queryFile, *ontoFile, *crowdFile, *storeDir, *policy, *k, *interactive, *all, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "oassis:", err)
		os.Exit(1)
	}
}

func run(queryFile, ontoFile, crowdFile, storeDir, policy string, k int, interactive, stats bool, seed int64) error {
	qtext, err := os.ReadFile(queryFile)
	if err != nil {
		return err
	}
	q, err := oassis.ParseQuery(string(qtext))
	if err != nil {
		return err
	}

	var db *oassis.DB
	if ontoFile == "" {
		db = oassis.SampleDB()
	} else {
		f, err := os.Open(ontoFile)
		if err != nil {
			return err
		}
		defer f.Close()
		if db, err = oassis.LoadOntology(f); err != nil {
			return err
		}
	}

	var members []oassis.Member
	switch {
	case interactive:
		members = []oassis.Member{newTTYMember(db)}
		if k > 1 {
			k = 1
		}
	case crowdFile != "":
		members, err = loadCrowd(db, crowdFile)
		if err != nil {
			return err
		}
	default:
		members, err = sampleCrowd(db)
		if err != nil {
			return err
		}
	}

	opts := []oassis.Option{
		oassis.WithAnswersPerQuestion(k),
		oassis.WithSeed(seed),
	}
	if policy != "" {
		opts = append(opts, oassis.WithPolicy(policy))
	}
	if storeDir != "" {
		st, err := oassis.OpenStore(storeDir)
		if err != nil {
			return err
		}
		defer st.Close()
		if n := st.RecoveredAnswers(); n > 0 {
			fmt.Printf("store: resuming with %d recovered answers from %s\n", n, storeDir)
		}
		opts = append(opts, oassis.WithStore(st))
	}

	res, err := oassis.Exec(db, q, members, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("Maximal significant patterns (support ≥ %g):\n", q.Support())
	if len(res.MSPs) == 0 {
		fmt.Println("  (none)")
	}
	for _, m := range res.MSPs {
		fmt.Printf("  • %s\n", m.Text)
	}
	if len(res.AllSignificant) > 0 {
		fmt.Println("All significant patterns:")
		for _, a := range res.AllSignificant {
			fmt.Printf("  - %s\n", oassis.FormatAnswer(a))
		}
	}
	if stats {
		s := res.Stats
		fmt.Printf("questions: %d (unique %d; concrete %d, specialization %d, none-of-these %d, pruning %d)\n",
			s.TotalQuestions, s.UniqueQuestions, s.Concrete, s.Specialization, s.NoneOfThese, s.PruningClicks)
		if s.PrimedAnswers > 0 {
			fmt.Printf("store: %d answers replayed from the store, %d asked live\n",
				s.PrimedAnswers, s.TotalQuestions-s.PrimedAnswers)
		}
	}
	return nil
}

// loadCrowd parses a histories file into simulated members.
func loadCrowd(db *oassis.DB, path string) ([]oassis.Member, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var members []oassis.Member
	var name string
	var txns []string
	flush := func() error {
		if name == "" {
			return nil
		}
		m, err := oassis.SimulatedMember(db, name, txns...)
		if err != nil {
			return fmt.Errorf("member %s: %w", name, err)
		}
		members = append(members, m)
		name, txns = "", nil
		return nil
	}
	sc := bufio.NewScanner(f)
	for ln := 1; sc.Scan(); ln++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "member "); ok {
			if err := flush(); err != nil {
				return nil, err
			}
			name = strings.TrimSpace(rest)
			continue
		}
		if name == "" {
			return nil, fmt.Errorf("%s:%d: transaction before any `member` line", path, ln)
		}
		txns = append(txns, line)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("%s: no members", path)
	}
	return members, nil
}

// sampleCrowd builds the Table 3 members over the sample ontology.
func sampleCrowd(db *oassis.DB) ([]oassis.Member, error) {
	u1, err := oassis.SimulatedMember(db, "u1",
		"Basketball doAt Central Park. Falafel eatAt Maoz Veg",
		"Feed a Monkey doAt Bronx Zoo. Pasta eatAt Pine",
		"Biking doAt Central Park. Rent Bikes doAt Boathouse. Falafel eatAt Maoz Veg",
		"Baseball doAt Central Park. Biking doAt Central Park. Rent Bikes doAt Boathouse. Falafel eatAt Maoz Veg",
		"Feed a Monkey doAt Bronx Zoo. Pasta eatAt Pine",
		"Feed a Monkey doAt Bronx Zoo",
	)
	if err != nil {
		return nil, err
	}
	u2, err := oassis.SimulatedMember(db, "u2",
		"Baseball doAt Central Park. Biking doAt Central Park. Rent Bikes doAt Boathouse. Falafel eatAt Maoz Veg",
		"Feed a Monkey doAt Bronx Zoo. Pasta eatAt Pine",
	)
	if err != nil {
		return nil, err
	}
	return []oassis.Member{u1, u2}, nil
}

// ttyMember asks the person at the terminal (the §6.2 UI, text form). The
// reader and writer are injectable for tests.
type ttyMember struct {
	db  *oassis.DB
	qn  *oassis.Questionnaire
	in  *bufio.Reader
	out io.Writer
}

func newTTYMember(db *oassis.DB) *ttyMember {
	return newTTYMemberIO(db, os.Stdin, os.Stdout)
}

func newTTYMemberIO(db *oassis.DB, in io.Reader, out io.Writer) *ttyMember {
	return &ttyMember{db: db, qn: oassis.NewQuestionnaire(db), in: bufio.NewReader(in), out: out}
}

func (m *ttyMember) ID() string { return "you" }

func (m *ttyMember) HowOften(facts []oassis.Triple) float64 {
	text, err := m.qn.Concrete(facts)
	if err != nil {
		text = fmt.Sprintf("How often: %v?", facts)
	}
	fmt.Fprintln(m.out)
	fmt.Fprintln(m.out, text)
	for i, s := range oassis.Scale() {
		fmt.Fprintf(m.out, "  [%d] %s\n", i, s)
	}
	for {
		fmt.Fprint(m.out, "answer> ")
		line, err := m.in.ReadString('\n')
		if err != nil {
			return 0
		}
		n, err := strconv.Atoi(strings.TrimSpace(line))
		if err == nil && n >= 0 && n < 5 {
			return float64(n) * 0.25
		}
		fmt.Fprintln(m.out, "please answer 0-4")
	}
}

func (m *ttyMember) Specialize(candidates [][]oassis.Triple) oassis.SpecializeResponse {
	fmt.Fprintln(m.out)
	fmt.Fprintln(m.out, "Can you be more specific? Pick what you do significantly often:")
	for i, c := range candidates {
		text, _ := m.qn.Concrete(c)
		fmt.Fprintf(m.out, "  [%d] %s\n", i, strings.TrimSuffix(strings.TrimPrefix(text, "How often do you "), "?"))
	}
	fmt.Fprintln(m.out, "  [n] none of these   [s] skip (ask me concretely)")
	for {
		fmt.Fprint(m.out, "choice> ")
		line, err := m.in.ReadString('\n')
		if err != nil {
			return oassis.DeclineSpecialization()
		}
		t := strings.TrimSpace(line)
		switch t {
		case "n":
			return oassis.NoneOfThese()
		case "s", "":
			return oassis.DeclineSpecialization()
		}
		if i, err := strconv.Atoi(t); err == nil && i >= 0 && i < len(candidates) {
			fmt.Fprint(m.out, "how often (0-4)> ")
			fl, _ := m.in.ReadString('\n')
			n, err := strconv.Atoi(strings.TrimSpace(fl))
			if err != nil || n < 0 || n > 4 {
				n = 2
			}
			return oassis.Choose(i, float64(n)*0.25)
		}
		fmt.Fprintln(m.out, "please choose an option")
	}
}

func (m *ttyMember) Irrelevant(terms []string) (string, bool) {
	return "", false
}
