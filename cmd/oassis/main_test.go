package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oassis"
)

const testQuery = `
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity
SATISFYING
  $y doAt $x
WITH SUPPORT = 0.4
`

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWithSampleCrowd(t *testing.T) {
	q := writeFile(t, "q.oql", testQuery)
	if err := run(q, "", "", "", "", 2, false, true, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithCrowdFile(t *testing.T) {
	q := writeFile(t, "q.oql", testQuery)
	crowd := writeFile(t, "crowd.txt", `
# comment line
member alice
Biking doAt Central Park
Biking doAt Central Park
Feed a Monkey doAt Bronx Zoo

member bob
Biking doAt Central Park
`)
	if err := run(q, "", crowd, "", "", 2, false, false, 1); err != nil {
		t.Fatal(err)
	}
}

func TestLoadCrowdErrors(t *testing.T) {
	db := oassis.SampleDB()
	if _, err := loadCrowd(db, filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Error("missing file accepted")
	}
	orphan := writeFile(t, "bad.txt", "Biking doAt Central Park\n")
	if _, err := loadCrowd(db, orphan); err == nil || !strings.Contains(err.Error(), "member") {
		t.Errorf("orphan transaction error = %v", err)
	}
	empty := writeFile(t, "empty.txt", "# nothing\n")
	if _, err := loadCrowd(db, empty); err == nil {
		t.Error("empty crowd accepted")
	}
	badFact := writeFile(t, "badfact.txt", "member a\nNonsense doAt Nowhere\n")
	if _, err := loadCrowd(db, badFact); err == nil {
		t.Error("unknown terms accepted")
	}
}

// TestRunWithPolicy: the -policy flag reaches the facade — every
// registered ordering runs the sample query to completion, and an
// unknown name is refused before any crowd work starts.
func TestRunWithPolicy(t *testing.T) {
	q := writeFile(t, "q.oql", testQuery)
	for _, policy := range []string{"paper-order", "largest-first", "chain-prune", "max-prune"} {
		if err := run(q, "", "", "", policy, 2, false, false, 1); err != nil {
			t.Errorf("-policy %s: %v", policy, err)
		}
	}
	err := run(q, "", "", "", "nope", 2, false, false, 1)
	if err == nil {
		t.Fatal("-policy nope accepted")
	}
	if !strings.Contains(err.Error(), "invalid option") || !strings.Contains(err.Error(), "nope") {
		t.Errorf("-policy nope error = %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing.oql"), "", "", "", "", 1, false, false, 1); err == nil {
		t.Error("missing query accepted")
	}
	bad := writeFile(t, "bad.oql", "SELECT nonsense")
	if err := run(bad, "", "", "", "", 1, false, false, 1); err == nil {
		t.Error("bad query accepted")
	}
	q := writeFile(t, "q.oql", testQuery)
	if err := run(q, filepath.Join(t.TempDir(), "missing.ttl"), "", "", "", 1, false, false, 1); err == nil {
		t.Error("missing ontology accepted")
	}
}

func TestRunWithOntologyFile(t *testing.T) {
	// Export the sample ontology and reload it through the CLI path.
	db := oassis.SampleDB()
	var sb strings.Builder
	if err := db.WriteOntology(&sb); err != nil {
		t.Fatal(err)
	}
	onto := writeFile(t, "o.ttl", sb.String())
	q := writeFile(t, "q.oql", testQuery)
	crowd := writeFile(t, "crowd.txt", "member a\nBiking doAt Central Park\n")
	if err := run(q, onto, crowd, "", "", 1, false, false, 1); err != nil {
		t.Fatal(err)
	}
}

func TestTTYMemberAnswers(t *testing.T) {
	db := oassis.SampleDB()
	// Concrete: one invalid answer, then "3" (= 0.75).
	m := newTTYMemberIO(db, strings.NewReader("nope\n3\n"), &strings.Builder{})
	got := m.HowOften([]oassis.Triple{{Subject: "Biking", Relation: "doAt", Object: "Central Park"}})
	if got != 0.75 {
		t.Errorf("HowOften = %v, want 0.75", got)
	}
	if m.ID() != "you" {
		t.Error("ID wrong")
	}
	// EOF answers 0.
	m2 := newTTYMemberIO(db, strings.NewReader(""), &strings.Builder{})
	if m2.HowOften(nil) != 0 {
		t.Error("EOF should answer 0")
	}
}

func TestTTYMemberSpecialize(t *testing.T) {
	db := oassis.SampleDB()
	cands := [][]oassis.Triple{
		{{Subject: "Biking", Relation: "doAt", Object: "Central Park"}},
		{{Subject: "Basketball", Relation: "doAt", Object: "Central Park"}},
	}
	// Pick option 1 with frequency 4.
	var out strings.Builder
	m := newTTYMemberIO(db, strings.NewReader("1\n4\n"), &out)
	r := m.Specialize(cands)
	if r.Declined || !r.Chosen || r.Choice != 1 || r.Frequency != 1 {
		t.Errorf("Specialize = %+v", r)
	}
	if !strings.Contains(out.String(), "none of these") {
		t.Error("prompt missing options")
	}
	// "n" = none of these.
	m = newTTYMemberIO(db, strings.NewReader("n\n"), &strings.Builder{})
	if r := m.Specialize(cands); r.Chosen || r.Declined {
		t.Error("none-of-these not recognized")
	}
	// "s" = skip.
	m = newTTYMemberIO(db, strings.NewReader("s\n"), &strings.Builder{})
	if r := m.Specialize(cands); !r.Declined {
		t.Error("skip not recognized")
	}
	// Pruning is never offered by the TTY member.
	if _, ok := m.Irrelevant([]string{"Swimming"}); ok {
		t.Error("tty member should not prune")
	}
}
