// Command oassis-bench regenerates the paper's tables and figures (see
// DESIGN.md for the experiment index). Each experiment prints an aligned
// text table; -csv switches to CSV; -scale trades fidelity for runtime.
//
// Usage:
//
//	oassis-bench -exp all            # everything, quick scale
//	oassis-bench -exp fig5 -scale 1  # Figure 5 at the paper's full width
//	oassis-bench -exp fig4a,fig4d -full
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"oassis/internal/experiments"
	"oassis/internal/synth"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "comma-separated experiment ids (all, fig4a..fig4f, fig5, sweeps, summary, bounds, capture, assoc)")
		scale = flag.Float64("scale", 0.2, "synthetic-DAG scale factor (1 = paper's width 500)")
		full  = flag.Bool("full", false, "use the full 248-member crowd for the domain experiments")
		csv   = flag.Bool("csv", false, "emit CSV instead of text tables")
	)
	flag.Parse()

	sc := experiments.QuickScale
	if *full {
		sc = experiments.FullScale
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(id)] = true
	}
	runAll := want["all"]

	type job struct {
		id  string
		run func() (*experiments.Report, error)
	}
	jobs := []job{
		{"fig4a", func() (*experiments.Report, error) {
			return experiments.Fig4Domain("fig4a", synth.Travel, sc)
		}},
		{"fig4b", func() (*experiments.Report, error) {
			return experiments.Fig4Domain("fig4b", synth.Culinary, sc)
		}},
		{"fig4c", func() (*experiments.Report, error) {
			return experiments.Fig4Domain("fig4c", synth.SelfTreatment, sc)
		}},
		{"fig4d", func() (*experiments.Report, error) {
			return experiments.Fig4Pace("fig4d", synth.Travel, sc)
		}},
		{"fig4e", func() (*experiments.Report, error) {
			return experiments.Fig4Pace("fig4e", synth.SelfTreatment, sc)
		}},
		{"fig4f", func() (*experiments.Report, error) {
			return experiments.Fig4f(experiments.DefaultFig4f(*scale))
		}},
		{"fig5", func() (*experiments.Report, error) {
			return experiments.Fig5(experiments.DefaultFig5(*scale))
		}},
		{"sweeps", func() (*experiments.Report, error) {
			return experiments.SweepDAGShape(*scale, 3)
		}},
		{"sweep-dist", func() (*experiments.Report, error) {
			return experiments.SweepMSPDistribution(*scale, 3)
		}},
		{"sweep-mult", func() (*experiments.Report, error) {
			return experiments.SweepMultiplicities(*scale, 3)
		}},
		{"summary", func() (*experiments.Report, error) {
			return experiments.CrowdSummary(sc)
		}},
		{"bounds", func() (*experiments.Report, error) {
			return experiments.ComplexityBounds(*scale)
		}},
		{"capture", func() (*experiments.Report, error) {
			return experiments.ItemsetCapture(12, 60, 0.15, 7)
		}},
		{"assoc", func() (*experiments.Report, error) {
			return experiments.AssocMiner(30, 500, 11)
		}},
	}

	ran := 0
	for _, j := range jobs {
		if !runAll && !want[j.id] {
			continue
		}
		r, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "oassis-bench: %s: %v\n", j.id, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Println(r.CSV())
		} else {
			fmt.Println(r.Table())
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "oassis-bench: no experiment matched %q\n", *exp)
		os.Exit(2)
	}
}
