// Command oassis-bench regenerates the paper's tables and figures (see
// DESIGN.md for the experiment index). Each experiment prints an aligned
// text table; -csv switches to CSV, -json to one JSON document per report
// (with wall-clock duration, for perf-trajectory records); -scale trades
// fidelity for runtime; -parallel fans each experiment's grid cells out
// over a worker pool with bit-identical output.
//
// Usage:
//
//	oassis-bench -exp all            # everything, quick scale
//	oassis-bench -exp fig5 -scale 1  # Figure 5 at the paper's full width
//	oassis-bench -exp fig4a,fig4d -full
//	oassis-bench -exp fig5 -parallel 8 -json > fig5.json
//	oassis-bench -exp summary,bounds -out BENCH_20260805.json
//
// -out FILE writes the JSON report stream to FILE (implying -json), the
// mechanism behind `make bench`'s BENCH_*.json perf-trajectory artifacts.
// -compare FILE reruns the experiments recorded in such an artifact and
// fails on timing regressions (>15% plus fixed slack) or result drift —
// the `make bench-compare` gate against the committed BENCH_baseline.json.
// -metrics FILE additionally dumps the engine-metrics registry covering
// all experiments (Prometheus text format) after the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"oassis/internal/core"
	"oassis/internal/experiments"
	"oassis/internal/obs"
	"oassis/internal/synth"
)

// jsonReport is the -json output document: the report plus its wall-clock
// duration, one document per experiment (JSON Lines when several run).
type jsonReport struct {
	ID       string     `json:"id"`
	Title    string     `json:"title"`
	Header   []string   `json:"header"`
	Rows     [][]string `json:"rows"`
	Notes    []string   `json:"notes,omitempty"`
	Seconds  float64    `json:"seconds"`
	Parallel int        `json:"parallel"`
}

// job names one runnable experiment.
type job struct {
	id  string
	run func() (*experiments.Report, error)
}

// Regression gate of -compare: a fresh run may take at most
// base·(1+compareSlackRel) + compareSlackAbs seconds. The relative part is
// the trajectory policy (15%); the absolute part absorbs scheduler noise on
// sub-second experiments, which would otherwise make the gate flaky.
const (
	compareSlackRel = 0.15
	compareSlackAbs = 0.25
)

// volatileRows lists experiments whose report rows contain measured
// wall-clock values and therefore legitimately differ between runs; their
// timings are still gated, but their rows are not diffed.
var volatileRows = map[string]bool{"latency": true, "serving": true}

// reportToJob maps the Report.ID recorded in a baseline artifact back to
// the -exp flag id, where the two differ.
var reportToJob = map[string]string{
	"crowd-summary":        "summary",
	"complexity-bounds":    "bounds",
	"itemset-capture":      "capture",
	"assoc-miner":          "assoc",
	"sweep-dag-shape":      "sweeps",
	"sweep-msp-dist":       "sweep-dist",
	"sweep-multiplicities": "sweep-mult",
}

// runCompare reruns every experiment recorded in the baseline file and
// diffs timing and rows. It returns the process exit code: 0 when all
// experiments are within the gate, 1 on regression or drift, 2 on misuse.
// Run it with the same -scale/-full/-parallel flags the baseline was
// recorded with, or the timing comparison is meaningless.
func runCompare(path string, jobs []job) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "oassis-bench: -compare: %v\n", err)
		return 2
	}
	defer f.Close()
	byID := map[string]job{}
	for _, j := range jobs {
		byID[j.id] = j
	}
	dec := json.NewDecoder(f)
	fails, n := 0, 0
	for {
		var base jsonReport
		if err := dec.Decode(&base); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "oassis-bench: -compare: %s: %v\n", path, err)
			return 2
		}
		jobID := base.ID
		if alias, ok := reportToJob[jobID]; ok {
			jobID = alias
		}
		j, ok := byID[jobID]
		if !ok {
			fmt.Fprintf(os.Stderr, "oassis-bench: -compare: unknown experiment %q in %s\n", base.ID, path)
			return 2
		}
		start := time.Now()
		r, err := j.run()
		elapsed := time.Since(start).Seconds()
		if err != nil {
			fmt.Fprintf(os.Stderr, "oassis-bench: -compare: %s: %v\n", base.ID, err)
			return 2
		}
		limit := base.Seconds*(1+compareSlackRel) + compareSlackAbs
		status := "ok"
		switch {
		case elapsed > limit:
			status = fmt.Sprintf("REGRESSED (limit %.3fs)", limit)
			fails++
		case !volatileRows[base.ID] && !sameRows(base, r):
			status = "RESULT DRIFT"
			fails++
		}
		fmt.Printf("%-16s base %8.3fs  fresh %8.3fs  %s\n", base.ID, base.Seconds, elapsed, status)
		n++
	}
	if n == 0 {
		fmt.Fprintf(os.Stderr, "oassis-bench: -compare: %s holds no experiment records\n", path)
		return 2
	}
	if fails > 0 {
		fmt.Fprintf(os.Stderr, "oassis-bench: -compare: %d of %d experiments failed the gate\n", fails, n)
		return 1
	}
	fmt.Printf("all %d experiments within %.0f%% of %s\n", n, compareSlackRel*100, path)
	return 0
}

// sameRows reports whether a fresh report reproduces the baseline's header
// and rows exactly (the zero-result-drift gate).
func sameRows(base jsonReport, r *experiments.Report) bool {
	if len(base.Header) != len(r.Header) || len(base.Rows) != len(r.Rows) {
		return false
	}
	for i := range base.Header {
		if base.Header[i] != r.Header[i] {
			return false
		}
	}
	for i := range base.Rows {
		if len(base.Rows[i]) != len(r.Rows[i]) {
			return false
		}
		for k := range base.Rows[i] {
			if base.Rows[i][k] != r.Rows[i][k] {
				return false
			}
		}
	}
	return true
}

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment ids (all, fig4a..fig4f, fig5, sweeps, summary, bounds, serving, panels, capture, stopping, orderings, assoc)")
		scale    = flag.Float64("scale", 0.2, "synthetic-DAG scale factor (1 = paper's width 500)")
		full     = flag.Bool("full", false, "use the full 248-member crowd for the domain experiments")
		csv      = flag.Bool("csv", false, "emit CSV instead of text tables")
		jsonOut  = flag.Bool("json", false, "emit one JSON document per report, with wall-clock duration")
		outFile  = flag.String("out", "", "write the -json report stream to FILE instead of stdout (implies -json)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size for experiment grid cells (1 = sequential; output is identical at any setting)")
		compare  = flag.String("compare", "", "rerun the experiments recorded in FILE (JSON Lines from -out) and fail on timing regression or result drift; -exp is ignored")
		metricsF = flag.String("metrics", "", "write the engine-metrics registry (Prometheus text format) covering all experiments to FILE after the run")
	)
	flag.Parse()

	var reg *obs.Registry
	if *metricsF != "" {
		reg = obs.NewRegistry()
		experiments.SetMetrics(core.NewMetrics(reg))
	}

	sc := experiments.QuickScale
	if *full {
		sc = experiments.FullScale
	}
	sc.Parallelism = *parallel
	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(id)] = true
	}
	runAll := want["all"]

	fig5Cfg := experiments.DefaultFig5(*scale)
	fig5Cfg.Parallelism = *parallel
	fig4fCfg := experiments.DefaultFig4f(*scale)
	fig4fCfg.Parallelism = *parallel

	jobs := []job{
		{"fig4a", func() (*experiments.Report, error) {
			return experiments.Fig4Domain("fig4a", synth.Travel, sc)
		}},
		{"fig4b", func() (*experiments.Report, error) {
			return experiments.Fig4Domain("fig4b", synth.Culinary, sc)
		}},
		{"fig4c", func() (*experiments.Report, error) {
			return experiments.Fig4Domain("fig4c", synth.SelfTreatment, sc)
		}},
		{"fig4d", func() (*experiments.Report, error) {
			return experiments.Fig4Pace("fig4d", synth.Travel, sc)
		}},
		{"fig4e", func() (*experiments.Report, error) {
			return experiments.Fig4Pace("fig4e", synth.SelfTreatment, sc)
		}},
		{"fig4f", func() (*experiments.Report, error) {
			return experiments.Fig4f(fig4fCfg)
		}},
		{"fig5", func() (*experiments.Report, error) {
			return experiments.Fig5(fig5Cfg)
		}},
		{"sweeps", func() (*experiments.Report, error) {
			return experiments.SweepDAGShape(*scale, 3, *parallel)
		}},
		{"sweep-dist", func() (*experiments.Report, error) {
			return experiments.SweepMSPDistribution(*scale, 3, *parallel)
		}},
		{"sweep-mult", func() (*experiments.Report, error) {
			return experiments.SweepMultiplicities(*scale, 3, *parallel)
		}},
		{"summary", func() (*experiments.Report, error) {
			return experiments.CrowdSummary(sc)
		}},
		{"bounds", func() (*experiments.Report, error) {
			return experiments.ComplexityBounds(*scale, *parallel)
		}},
		{"latency", func() (*experiments.Report, error) {
			return experiments.DispatchLatency(100*time.Millisecond, []int{1, 2, 4, 8})
		}},
		{"panels", func() (*experiments.Report, error) {
			return experiments.Panels([]int{1, 4, 16})
		}},
		{"serving", func() (*experiments.Report, error) {
			// -scale 0.2 (the default) is 10k concurrent sessions.
			return experiments.Serving(int(*scale*50000), 4)
		}},
		{"capture", func() (*experiments.Report, error) {
			return experiments.ItemsetCapture(12, 60, 0.15, 7)
		}},
		{"stopping", func() (*experiments.Report, error) {
			return experiments.Stopping([]int{8, 10, 12})
		}},
		{"orderings", func() (*experiments.Report, error) {
			return experiments.Orderings([]int{6, 8, 10})
		}},
		{"assoc", func() (*experiments.Report, error) {
			return experiments.AssocMiner(30, 500, 11)
		}},
	}

	if *compare != "" {
		os.Exit(runCompare(*compare, jobs))
	}

	var jsonDst io.Writer = os.Stdout
	if *outFile != "" {
		*jsonOut = true
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oassis-bench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "oassis-bench: %v\n", err)
				os.Exit(1)
			}
		}()
		jsonDst = f
	}
	enc := json.NewEncoder(jsonDst)
	ran := 0
	for _, j := range jobs {
		if !runAll && !want[j.id] {
			continue
		}
		start := time.Now()
		r, err := j.run()
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oassis-bench: %s: %v\n", j.id, err)
			os.Exit(1)
		}
		switch {
		case *jsonOut:
			doc := jsonReport{
				ID: r.ID, Title: r.Title, Header: r.Header, Rows: r.Rows,
				Notes: r.Notes, Seconds: elapsed.Seconds(), Parallel: *parallel,
			}
			if err := enc.Encode(doc); err != nil {
				fmt.Fprintf(os.Stderr, "oassis-bench: %s: %v\n", j.id, err)
				os.Exit(1)
			}
		case *csv:
			fmt.Println(r.CSV())
		default:
			fmt.Println(r.Table())
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "oassis-bench: no experiment matched %q\n", *exp)
		os.Exit(2)
	}
	if reg != nil {
		f, err := os.Create(*metricsF)
		if err == nil {
			err = reg.WritePrometheus(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "oassis-bench: metrics: %v\n", err)
			os.Exit(1)
		}
	}
}
