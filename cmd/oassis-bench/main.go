// Command oassis-bench regenerates the paper's tables and figures (see
// DESIGN.md for the experiment index). Each experiment prints an aligned
// text table; -csv switches to CSV, -json to one JSON document per report
// (with wall-clock duration, for perf-trajectory records); -scale trades
// fidelity for runtime; -parallel fans each experiment's grid cells out
// over a worker pool with bit-identical output.
//
// Usage:
//
//	oassis-bench -exp all            # everything, quick scale
//	oassis-bench -exp fig5 -scale 1  # Figure 5 at the paper's full width
//	oassis-bench -exp fig4a,fig4d -full
//	oassis-bench -exp fig5 -parallel 8 -json > fig5.json
//	oassis-bench -exp summary,bounds -out BENCH_20260805.json
//
// -out FILE writes the JSON report stream to FILE (implying -json), the
// mechanism behind `make bench`'s BENCH_*.json perf-trajectory artifacts.
// -metrics FILE additionally dumps the engine-metrics registry covering
// all experiments (Prometheus text format) after the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"oassis/internal/core"
	"oassis/internal/experiments"
	"oassis/internal/obs"
	"oassis/internal/synth"
)

// jsonReport is the -json output document: the report plus its wall-clock
// duration, one document per experiment (JSON Lines when several run).
type jsonReport struct {
	ID       string     `json:"id"`
	Title    string     `json:"title"`
	Header   []string   `json:"header"`
	Rows     [][]string `json:"rows"`
	Notes    []string   `json:"notes,omitempty"`
	Seconds  float64    `json:"seconds"`
	Parallel int        `json:"parallel"`
}

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiment ids (all, fig4a..fig4f, fig5, sweeps, summary, bounds, capture, assoc)")
		scale    = flag.Float64("scale", 0.2, "synthetic-DAG scale factor (1 = paper's width 500)")
		full     = flag.Bool("full", false, "use the full 248-member crowd for the domain experiments")
		csv      = flag.Bool("csv", false, "emit CSV instead of text tables")
		jsonOut  = flag.Bool("json", false, "emit one JSON document per report, with wall-clock duration")
		outFile  = flag.String("out", "", "write the -json report stream to FILE instead of stdout (implies -json)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker-pool size for experiment grid cells (1 = sequential; output is identical at any setting)")
		metricsF = flag.String("metrics", "", "write the engine-metrics registry (Prometheus text format) covering all experiments to FILE after the run")
	)
	flag.Parse()

	var reg *obs.Registry
	if *metricsF != "" {
		reg = obs.NewRegistry()
		experiments.SetMetrics(core.NewMetrics(reg))
	}

	sc := experiments.QuickScale
	if *full {
		sc = experiments.FullScale
	}
	sc.Parallelism = *parallel
	want := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(id)] = true
	}
	runAll := want["all"]

	fig5Cfg := experiments.DefaultFig5(*scale)
	fig5Cfg.Parallelism = *parallel
	fig4fCfg := experiments.DefaultFig4f(*scale)
	fig4fCfg.Parallelism = *parallel

	type job struct {
		id  string
		run func() (*experiments.Report, error)
	}
	jobs := []job{
		{"fig4a", func() (*experiments.Report, error) {
			return experiments.Fig4Domain("fig4a", synth.Travel, sc)
		}},
		{"fig4b", func() (*experiments.Report, error) {
			return experiments.Fig4Domain("fig4b", synth.Culinary, sc)
		}},
		{"fig4c", func() (*experiments.Report, error) {
			return experiments.Fig4Domain("fig4c", synth.SelfTreatment, sc)
		}},
		{"fig4d", func() (*experiments.Report, error) {
			return experiments.Fig4Pace("fig4d", synth.Travel, sc)
		}},
		{"fig4e", func() (*experiments.Report, error) {
			return experiments.Fig4Pace("fig4e", synth.SelfTreatment, sc)
		}},
		{"fig4f", func() (*experiments.Report, error) {
			return experiments.Fig4f(fig4fCfg)
		}},
		{"fig5", func() (*experiments.Report, error) {
			return experiments.Fig5(fig5Cfg)
		}},
		{"sweeps", func() (*experiments.Report, error) {
			return experiments.SweepDAGShape(*scale, 3, *parallel)
		}},
		{"sweep-dist", func() (*experiments.Report, error) {
			return experiments.SweepMSPDistribution(*scale, 3, *parallel)
		}},
		{"sweep-mult", func() (*experiments.Report, error) {
			return experiments.SweepMultiplicities(*scale, 3, *parallel)
		}},
		{"summary", func() (*experiments.Report, error) {
			return experiments.CrowdSummary(sc)
		}},
		{"bounds", func() (*experiments.Report, error) {
			return experiments.ComplexityBounds(*scale, *parallel)
		}},
		{"latency", func() (*experiments.Report, error) {
			return experiments.DispatchLatency(100*time.Millisecond, []int{1, 2, 4, 8})
		}},
		{"capture", func() (*experiments.Report, error) {
			return experiments.ItemsetCapture(12, 60, 0.15, 7)
		}},
		{"assoc", func() (*experiments.Report, error) {
			return experiments.AssocMiner(30, 500, 11)
		}},
	}

	var jsonDst io.Writer = os.Stdout
	if *outFile != "" {
		*jsonOut = true
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oassis-bench: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "oassis-bench: %v\n", err)
				os.Exit(1)
			}
		}()
		jsonDst = f
	}
	enc := json.NewEncoder(jsonDst)
	ran := 0
	for _, j := range jobs {
		if !runAll && !want[j.id] {
			continue
		}
		start := time.Now()
		r, err := j.run()
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oassis-bench: %s: %v\n", j.id, err)
			os.Exit(1)
		}
		switch {
		case *jsonOut:
			doc := jsonReport{
				ID: r.ID, Title: r.Title, Header: r.Header, Rows: r.Rows,
				Notes: r.Notes, Seconds: elapsed.Seconds(), Parallel: *parallel,
			}
			if err := enc.Encode(doc); err != nil {
				fmt.Fprintf(os.Stderr, "oassis-bench: %s: %v\n", j.id, err)
				os.Exit(1)
			}
		case *csv:
			fmt.Println(r.CSV())
		default:
			fmt.Println(r.Table())
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "oassis-bench: no experiment matched %q\n", *exp)
		os.Exit(2)
	}
	if reg != nil {
		f, err := os.Create(*metricsF)
		if err == nil {
			err = reg.WritePrometheus(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "oassis-bench: metrics: %v\n", err)
			os.Exit(1)
		}
	}
}
