package oassis

import (
	"sort"
	"strings"
	"testing"
)

// mspTexts renders a result's MSP texts sorted, for order-insensitive
// comparison across ordering policies (different orderings ask different
// question sequences, so only the mined set is comparable).
func mspTexts(res *Result) string {
	out := make([]string, 0, len(res.MSPs))
	for _, m := range res.MSPs {
		out = append(out, m.Text)
	}
	sort.Strings(out)
	return strings.Join(out, ";")
}

// TestWithPolicyExec: the facade option end to end — every registered
// ordering mines the same MSP set as the default on the paper's running
// example (Table 3 members answer deterministically), and the compiled
// plan records the policy with a fingerprint of its own.
func TestWithPolicyExec(t *testing.T) {
	db := SampleDB()
	q, err := ParseQuery(restrictedQuery)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Exec(db, q, table3Members(t, db), WithAnswersPerQuestion(2))
	if err != nil {
		t.Fatal(err)
	}
	want := mspTexts(base)
	if want == "" {
		t.Fatal("default run mined no MSPs")
	}
	for _, policy := range []string{PolicyPaperOrder, PolicyLargestFirst, PolicyChainPrune, PolicyMaxPrune} {
		res, err := Exec(db, q, table3Members(t, db),
			WithAnswersPerQuestion(2), WithPolicy(policy))
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if got := mspTexts(res); got != want {
			t.Errorf("%s mined %q, want %q", policy, got, want)
		}
	}
}

// TestWithPolicyCompile: WithPolicy at Compile time lands in the plan —
// accessor, fingerprint distinctness, and cache reuse of the variant.
func TestWithPolicyCompile(t *testing.T) {
	db := SampleDB()
	q, err := ParseQuery(restrictedQuery)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Compile(db, q)
	if err != nil {
		t.Fatal(err)
	}
	if base.Policy() != PolicyPaperOrder {
		t.Errorf("default plan Policy() = %q", base.Policy())
	}
	variant, err := Compile(db, q, WithPolicy(PolicyChainPrune))
	if err != nil {
		t.Fatal(err)
	}
	if variant.Policy() != PolicyChainPrune {
		t.Errorf("variant Policy() = %q", variant.Policy())
	}
	if variant.Fingerprint() == base.Fingerprint() {
		t.Error("policy variant shares the base fingerprint")
	}
	again, err := Compile(db, q, WithPolicy(PolicyChainPrune))
	if err != nil {
		t.Fatal(err)
	}
	if again.inner != variant.inner {
		t.Error("warm variant Compile did not hit the cache")
	}

	// ExecPlan of a base plan under WithPolicy derives the variant rather
	// than executing the base ordering.
	res, err := ExecPlan(db, base, table3Members(t, db),
		WithAnswersPerQuestion(2), WithPolicy(PolicyMaxPrune))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Exec(db, q, table3Members(t, db), WithAnswersPerQuestion(2))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mspTexts(res), mspTexts(ref); got != want {
		t.Errorf("ExecPlan(max-prune) mined %q, want %q", got, want)
	}
}
