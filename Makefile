# Developer entry points. `make check` is the gate a PR must pass: gofmt,
# vet, build, the public-API drift guard, the full test suite under the
# race detector (the experiment grids in internal/experiments fan cells
# across goroutines, so -race exercises the concurrency model for real),
# and a short fuzz pass over the WAL record decoder.

GO ?= go
FUZZTIME ?= 5s
BENCH_STAMP := $(shell date +%Y%m%d_%H%M%S)

# Combined statement-coverage floor over the engine, the planner and the
# durable store (see the cover target): 81.4% measured when the gate was
# introduced, floored slightly to absorb timing-dependent recovery paths.
COVER_MIN ?= 80.0

.PHONY: check fmt vet build api api-update test race fuzz cover bench bench-smoke bench-compare plan-golden plan-golden-update

check: fmt vet build api plan-golden race fuzz cover bench-smoke bench-compare

# Fail when the root package's exported surface no longer matches the
# committed api.txt golden; `make api-update` regenerates it after a
# reviewed, intentional API change.
api:
	$(GO) test -run '^TestPublicAPISurface$$' .

api-update:
	$(GO) test -run '^TestPublicAPISurface$$' -update .

# Fail when the serialized Plan IR of the running-example and synthetic
# queries no longer matches the testdata/plan goldens; `make
# plan-golden-update` regenerates them after a reviewed planner change.
plan-golden:
	$(GO) test -run '^TestPlanGolden' .

plan-golden-update:
	$(GO) test -run '^TestPlanGolden' -update .

# Fail when any file is not gofmt-clean; print the offenders.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# -shuffle=on randomizes test execution order within each package, so
# order-dependent tests fail loudly instead of passing by accident.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

# Short fuzz passes over the durable-store record decoder (framing, CRC,
# canonical re-encode), the Prometheus label escaping (round-trip,
# scrape-safety) and the stop-policy contract (no panics, latched
# ShouldStop, estimates in [0, 1]; see the fuzz_test.go in each package).
fuzz:
	$(GO) test ./internal/store -run '^$$' -fuzz '^FuzzDecodeRecord$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/obs -run '^$$' -fuzz '^FuzzLabelEscaping$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/aggregate -run '^$$' -fuzz '^FuzzStopPolicy$$' -fuzztime $(FUZZTIME)

# Combined core+plan+store+aggregate statement coverage, gated at
# COVER_MIN so engine, planner (ordering policies included), store or
# stop-policy changes that shed tests fail the build.
cover:
	@mkdir -p build
	$(GO) test -coverprofile=build/cover.out -coverpkg=./internal/core,./internal/plan,./internal/store,./internal/aggregate ./internal/core ./internal/plan ./internal/store ./internal/aggregate
	@total=$$($(GO) tool cover -func=build/cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "combined core+plan+store+aggregate coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk -v t="$$total" -v m="$(COVER_MIN)" 'BEGIN { exit (t+0 < m+0) ? 1 : 0 }' || \
		{ echo "coverage $$total% fell below the $(COVER_MIN)% floor"; exit 1; }

# Micro + macro benchmarks (hot paths and the per-figure experiment
# harness), plus a timestamped BENCH_*.json perf-trajectory artifact from
# the quick experiments.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/vocab ./internal/assign ./internal/core ./internal/aggregate ./internal/plan
	$(GO) test -run '^$$' -bench . -benchtime 1x .
	$(GO) run ./cmd/oassis-bench -exp summary,bounds,serving,panels,stopping,orderings -parallel 1 -out BENCH_$(BENCH_STAMP).json
	@echo "wrote BENCH_$(BENCH_STAMP).json"

# One-iteration pass over every benchmark: catches bench-only compile rot
# and hot-path panics on each PR without paying for stable timings. The
# serving scenario rides along at 1% scale (500 sessions) as a smoke of
# the multi-tenant serving tier under real concurrency, and the panels
# scenario as a smoke of panel batching (it hard-fails on result drift).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/vocab ./internal/assign ./internal/core ./internal/aggregate ./internal/plan .
	$(GO) run ./cmd/oassis-bench -exp serving,panels -scale 0.01 -parallel 1

# The perf-trajectory gate: rerun the experiments recorded in the committed
# baseline artifact and fail on >15% wall-clock regression or any result
# drift (the panels scenario's round-trip counts are deterministic, so the
# gate pins the batching efficiency too). Refresh the baseline (same
# flags!) only with a reviewed perf change:
#   go run ./cmd/oassis-bench -exp summary,bounds,panels,stopping,orderings -parallel 1 -out BENCH_baseline.json
bench-compare:
	$(GO) run ./cmd/oassis-bench -parallel 1 -compare BENCH_baseline.json
