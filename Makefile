# Developer entry points. `make check` is the gate a PR must pass: gofmt,
# vet, build, the public-API drift guard, the full test suite under the
# race detector (the experiment grids in internal/experiments fan cells
# across goroutines, so -race exercises the concurrency model for real),
# and a short fuzz pass over the WAL record decoder.

GO ?= go
FUZZTIME ?= 5s
BENCH_STAMP := $(shell date +%Y%m%d_%H%M%S)

.PHONY: check fmt vet build api api-update test race fuzz bench

check: fmt vet build api race fuzz

# Fail when the root package's exported surface no longer matches the
# committed api.txt golden; `make api-update` regenerates it after a
# reviewed, intentional API change.
api:
	$(GO) test -run '^TestPublicAPISurface$$' .

api-update:
	$(GO) test -run '^TestPublicAPISurface$$' -update .

# Fail when any file is not gofmt-clean; print the offenders.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over the durable-store record decoder: framing, CRC,
# and the canonical re-encode property (see internal/store/fuzz_test.go).
fuzz:
	$(GO) test ./internal/store -run '^$$' -fuzz '^FuzzDecodeRecord$$' -fuzztime $(FUZZTIME)

# Micro + macro benchmarks (hot paths and the per-figure experiment
# harness), plus a timestamped BENCH_*.json perf-trajectory artifact from
# the quick experiments.
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/vocab ./internal/assign
	$(GO) test -run '^$$' -bench . -benchtime 1x .
	$(GO) run ./cmd/oassis-bench -exp summary,bounds -out BENCH_$(BENCH_STAMP).json
	@echo "wrote BENCH_$(BENCH_STAMP).json"
