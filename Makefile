# Developer entry points. `make check` is the gate a PR must pass: vet,
# build, and the full test suite under the race detector (the experiment
# grids in internal/experiments fan cells across goroutines, so -race
# exercises the concurrency model for real).

GO ?= go

.PHONY: check vet build test race bench

check: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Micro + macro benchmarks (hot paths and the per-figure experiment harness).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/vocab ./internal/assign
	$(GO) test -run '^$$' -bench . -benchtime 1x .
