package crowd

import "oassis/internal/fact"

// Confidence grades how much a Prior's guess should be trusted, and with
// it how the question renders: a high-confidence prior is a one-tap
// confirmation ("you do this often, right?"), a low-confidence one falls
// back to an open question with the guess merely pre-selected, and
// ConfidenceNone means no guess at all.
type Confidence int

const (
	// ConfidenceNone means the prior carries no usable guess.
	ConfidenceNone Confidence = iota
	// ConfidenceLow is a structural guess (ontology shape, no answers).
	ConfidenceLow
	// ConfidenceMedium is backed by at least one collected answer.
	ConfidenceMedium
	// ConfidenceHigh is backed by enough answers to render the question
	// as a one-tap confirmation.
	ConfidenceHigh
)

// String names the confidence level the way the wire format labels it.
func (c Confidence) String() string {
	switch c {
	case ConfidenceLow:
		return "low"
	case ConfidenceMedium:
		return "medium"
	case ConfidenceHigh:
		return "high"
	default:
		return "none"
	}
}

// Prior is a best-guess answer attached to a panel question before the
// member sees it: the guessed support, how much to trust it, and where
// the guess came from ("aggregate" for the running crowd aggregate,
// "ontology" for the structural fallback, or a custom source's name).
type Prior struct {
	// Support is the guessed frequency in [0, 1].
	Support float64
	// Confidence grades the guess (see Confidence).
	Confidence Confidence
	// Source names the origin of the guess.
	Source string
}

// Confirmable reports whether the prior is trusted enough to render the
// question as a one-tap confirmation instead of an open question.
func (p Prior) Confirmable() bool { return p.Confidence >= ConfidenceHigh }

// PanelQuestion is one concrete question inside a member's panel: the
// fact-set whose frequency is asked, primed with a prior guess.
type PanelQuestion struct {
	Facts fact.Set
	Prior Prior
}

// Panelist is the optional batch-answering extension of Member: a member
// that can answer a whole panel of prior-primed concrete questions in one
// round trip (one screen of confirmations instead of one question per
// round trip). AnswerPanel returns one support per question, index-
// aligned with qs.
type Panelist interface {
	Member
	AnswerPanel(qs []PanelQuestion) []float64
}

// AnswerPanel obtains a member's answers to a whole panel: through the
// member's own Panelist implementation when it has one, otherwise by
// asking each question individually. Either way the returned slice is
// index-aligned with qs.
func AnswerPanel(m Member, qs []PanelQuestion) []float64 {
	if p, ok := m.(Panelist); ok {
		return p.AnswerPanel(qs)
	}
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = m.Concrete(q.Facts)
	}
	return out
}
