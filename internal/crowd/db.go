// Package crowd models the crowd of Section 2 of the paper: each member has
// a virtual personal database of transactions (bags of fact-sets describing
// past occasions) which can never be accessed directly — only probed through
// questions. The package provides the personal-DB support computation, the
// member question interfaces used by the mining engine (concrete questions,
// specialization questions, "none of these", user-guided pruning), simulated
// members backed by personal DBs, the answer discretization of the paper's
// UI (never / rarely / sometimes / often / very often), and natural-language
// question rendering (§6.2).
package crowd

import (
	"fmt"

	"oassis/internal/fact"
	"oassis/internal/vocab"
)

// PersonalDB is the virtual personal database D_u of a crowd member: a bag
// of transactions, each a fact-set describing one occasion.
type PersonalDB struct {
	Voc          *vocab.Vocabulary
	Transactions []fact.Set
}

// NewPersonalDB builds a personal DB over v.
func NewPersonalDB(v *vocab.Vocabulary, transactions ...fact.Set) *PersonalDB {
	return &PersonalDB{Voc: v, Transactions: transactions}
}

// Add appends a transaction.
func (db *PersonalDB) Add(t fact.Set) { db.Transactions = append(db.Transactions, t) }

// Len reports |D_u|, the number of transactions.
func (db *PersonalDB) Len() int { return len(db.Transactions) }

// Support computes supp_u(A) = |{T ∈ D_u : A ≤ T}| / |D_u| (Section 2).
// The support of any fact-set over an empty DB is 0, except the empty
// fact-set, which has support 1 by convention.
func (db *PersonalDB) Support(a fact.Set) float64 {
	if len(a) == 0 {
		return 1
	}
	if len(db.Transactions) == 0 {
		return 0
	}
	n := 0
	for _, t := range db.Transactions {
		if fact.Implies(db.Voc, t, a) {
			n++
		}
	}
	return float64(n) / float64(len(db.Transactions))
}

// FrequentSupersets returns, among the given candidate fact-sets, those with
// support at least theta, with their supports. Used by simulated members to
// answer specialization questions.
func (db *PersonalDB) FrequentSupersets(candidates []fact.Set, theta float64) ([]int, []float64) {
	var idx []int
	var sup []float64
	for i, c := range candidates {
		if s := db.Support(c); s >= theta {
			idx = append(idx, i)
			sup = append(sup, s)
		}
	}
	return idx, sup
}

// ContainsTerm reports whether any transaction mentions a term at or below
// t (used to decide that t is irrelevant to this member).
func (db *PersonalDB) ContainsTerm(t vocab.Term) bool {
	for _, tr := range db.Transactions {
		for _, f := range tr {
			if db.Voc.Leq(t, f.S) || db.Voc.Leq(t, f.R) || db.Voc.Leq(t, f.O) {
				return true
			}
		}
	}
	return false
}

// String summarizes the DB.
func (db *PersonalDB) String() string {
	return fmt.Sprintf("personalDB(%d transactions)", len(db.Transactions))
}
