package crowd

import (
	"math/rand"
	"testing"
	"time"
)

// TestLatentJitterDeterminism: jitter is drawn from the member's explicit
// Rng, so two members seeded identically see identical latency sequences —
// and a zero-jitter member never touches its Rng at all.
func TestLatentJitterDeterminism(t *testing.T) {
	mk := func(seed int64) *Latent {
		return &Latent{
			Delay:  time.Millisecond,
			Jitter: 50 * time.Millisecond,
			Rng:    rand.New(rand.NewSource(seed)),
		}
	}
	a, b := mk(7), mk(7)
	for i := 0; i < 64; i++ {
		da, db := a.nextDelay(), b.nextDelay()
		if da != db {
			t.Fatalf("draw %d: same seed diverged: %v vs %v", i, da, db)
		}
		if da < time.Millisecond || da >= 51*time.Millisecond {
			t.Fatalf("draw %d: delay %v outside [Delay, Delay+Jitter)", i, da)
		}
	}
	other := mk(8)
	same := true
	for i := 0; i < 64; i++ {
		if a.nextDelay() != other.nextDelay() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter sequences")
	}

	fixed := &Latent{Delay: 3 * time.Millisecond} // no Jitter, no Rng needed
	if d := fixed.nextDelay(); d != 3*time.Millisecond {
		t.Errorf("zero-jitter delay = %v", d)
	}
}

// TestLatentJitterRequiresRng: jitter without an explicit Rng is a
// programming error, not a silent fallback to the global source.
func TestLatentJitterRequiresRng(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Jitter without Rng did not panic")
		}
	}()
	l := &Latent{Delay: time.Millisecond, Jitter: time.Millisecond}
	l.nextDelay()
}
