package crowd

import (
	"fmt"
	"strings"

	"oassis/internal/fact"
	"oassis/internal/vocab"
)

// Templates renders fact-sets as natural-language questions using
// domain-specific per-relation templates, as in the paper's UI (§6.2): the
// assignment ⟨Ball Game, doAt, Central Park⟩ becomes "engage in ball games
// in Central Park", and bundles render as "How often do you X and also Y?".
type Templates struct {
	Voc *vocab.Vocabulary
	// ByRelation maps a relation name to a format string with two %s verbs
	// (subject, object), e.g. "do %s in %s" for doAt.
	ByRelation map[string]string
	// Generic is used for relations without a template; it receives
	// subject, relation and object names.
	Generic string
}

// NewTemplates returns templates for the running example's relations.
func NewTemplates(v *vocab.Vocabulary) *Templates {
	return &Templates{
		Voc: v,
		ByRelation: map[string]string{
			"doAt":  "do %s at %s",
			"eatAt": "eat %s at %s",
		},
		Generic: "%s %s %s",
	}
}

func (t *Templates) name(x vocab.Term) string {
	if x == vocab.Any {
		return "anything"
	}
	return t.Voc.Name(x)
}

// Phrase renders one fact as a verb phrase.
func (t *Templates) Phrase(f fact.Fact) string {
	rel := t.name(f.R)
	if tpl, ok := t.ByRelation[rel]; ok {
		return fmt.Sprintf(tpl, t.name(f.S), t.name(f.O))
	}
	g := t.Generic
	if g == "" {
		g = "%s %s %s"
	}
	return fmt.Sprintf(g, t.name(f.S), rel, t.name(f.O))
}

// Concrete renders a concrete question about fs: "How often do you X and
// also Y?" (Section 2's bundled question form).
func (t *Templates) Concrete(fs fact.Set) string {
	phrases := make([]string, len(fs))
	for i, f := range fs {
		phrases[i] = t.Phrase(f)
	}
	return "How often do you " + strings.Join(phrases, " and also ") + "?"
}

// Specialization renders a specialization question about fs: "Can you be
// more specific: what do you do when you ...? How often?".
func (t *Templates) Specialization(fs fact.Set) string {
	return "Can you specify: when you " + strings.TrimSuffix(strings.TrimPrefix(t.Concrete(fs), "How often do you "), "?") +
		", what exactly do you do, and how often?"
}

// AnswerScale is the UI's five-point frequency scale with its numeric
// interpretation.
var AnswerScale = []struct {
	Label   string
	Support float64
}{
	{"never", 0},
	{"rarely", 0.25},
	{"sometimes", 0.5},
	{"often", 0.75},
	{"very often", 1},
}

// ScaleLabel returns the scale label closest to support s.
func ScaleLabel(s float64) string {
	best, dist := 0, 2.0
	for i, a := range AnswerScale {
		d := s - a.Support
		if d < 0 {
			d = -d
		}
		if d < dist {
			best, dist = i, d
		}
	}
	return AnswerScale[best].Label
}
