package crowd

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"oassis/internal/fact"
	"oassis/internal/ontology"
	"oassis/internal/vocab"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSupportExample27(t *testing.T) {
	// Example 2.7: supp_u1({Pasta eatAt Pine, Activity doAt Bronx Zoo}) = 1/3.
	s := ontology.NewSample()
	u1, u2 := SampleDBs(s)
	q := fact.Set{
		s.Fact("Pasta", "eatAt", "Pine"),
		s.Fact("Activity", "doAt", "Bronx Zoo"),
	}
	if got := u1.Support(q); !almost(got, 1.0/3) {
		t.Errorf("supp_u1 = %v, want 1/3", got)
	}
	if got := u2.Support(q); !almost(got, 0.5) {
		t.Errorf("supp_u2 = %v, want 1/2", got)
	}
}

func TestSupportExample31(t *testing.T) {
	// Example 3.1: φ16 (Biking doAt Central Park . Falafel eatAt Maoz Veg):
	// supports 1/3 and 1/2; φ20 (Baseball …): 1/6 and 1/2.
	s := ontology.NewSample()
	u1, u2 := SampleDBs(s)
	phi16 := fact.Set{
		s.Fact("Biking", "doAt", "Central Park"),
		s.Fact("Falafel", "eatAt", "Maoz Veg"),
	}
	phi20 := fact.Set{
		s.Fact("Baseball", "doAt", "Central Park"),
		s.Fact("Falafel", "eatAt", "Maoz Veg"),
	}
	if got := u1.Support(phi16); !almost(got, 1.0/3) {
		t.Errorf("supp_u1(φ16) = %v, want 1/3", got)
	}
	if got := u2.Support(phi16); !almost(got, 0.5) {
		t.Errorf("supp_u2(φ16) = %v, want 1/2", got)
	}
	if got := u1.Support(phi20); !almost(got, 1.0/6) {
		t.Errorf("supp_u1(φ20) = %v, want 1/6", got)
	}
	if got := u2.Support(phi20); !almost(got, 0.5) {
		t.Errorf("supp_u2(φ20) = %v, want 1/2", got)
	}
	// Example 3.2: φ16 + MORE fact Rent Bikes doAt Boathouse has average
	// support 5/12 over the two members: 1/3 and 1/2.
	ext := append(phi16.Clone(), s.Fact("Rent Bikes", "doAt", "Boathouse"))
	if got := (u1.Support(ext) + u2.Support(ext)) / 2; !almost(got, 5.0/12) {
		t.Errorf("avg supp(ext φ16) = %v, want 5/12", got)
	}
}

func TestSupportEdgeCases(t *testing.T) {
	s := ontology.NewSample()
	empty := NewPersonalDB(s.Voc)
	if empty.Support(fact.Set{s.Fact("Biking", "doAt", "Central Park")}) != 0 {
		t.Error("empty DB should give support 0")
	}
	if empty.Support(nil) != 1 {
		t.Error("empty fact-set should have support 1")
	}
	u1, _ := SampleDBs(s)
	if u1.Support(nil) != 1 {
		t.Error("empty fact-set support ≠ 1")
	}
	// Generalized query: Sport doAt Central Park implied by T1, T3, T4.
	if got := u1.Support(fact.Set{s.Fact("Sport", "doAt", "Central Park")}); !almost(got, 0.5) {
		t.Errorf("generalized support = %v, want 1/2", got)
	}
	// Wildcard: [] eatAt Pine.
	anyEat := fact.Set{{S: vocab.Any, R: s.T("eatAt"), O: s.T("Pine")}}
	if got := u1.Support(anyEat); !almost(got, 1.0/3) {
		t.Errorf("wildcard support = %v, want 1/3", got)
	}
}

func TestFiveLevelDiscretization(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {0.1, 0}, {0.13, 0.25}, {0.25, 0.25}, {0.374, 0.25},
		{0.4, 0.5}, {0.5, 0.5}, {0.7, 0.75}, {0.9, 1}, {1, 1},
	}
	for _, c := range cases {
		if got := FiveLevel(c.in); got != c.want {
			t.Errorf("FiveLevel(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if Exact(0.123) != 0.123 {
		t.Error("Exact changed the value")
	}
}

func TestSimMemberConcrete(t *testing.T) {
	s := ontology.NewSample()
	u1, _ := SampleDBs(s)
	m := &SimMember{Name: "u1", DB: u1} // default FiveLevel
	got := m.Concrete(fact.Set{s.Fact("Feed a Monkey", "doAt", "Bronx Zoo")})
	// True support 3/6 = 0.5 → "sometimes".
	if got != 0.5 {
		t.Errorf("Concrete = %v, want 0.5", got)
	}
	m.Disc = Exact
	if got := m.Concrete(fact.Set{s.Fact("Feed a Monkey", "doAt", "Bronx Zoo")}); !almost(got, 0.5) {
		t.Errorf("exact Concrete = %v", got)
	}
	if m.ID() != "u1" {
		t.Error("ID wrong")
	}
}

func TestSimMemberSpecialization(t *testing.T) {
	s := ontology.NewSample()
	u1, _ := SampleDBs(s)
	m := &SimMember{Name: "u1", DB: u1, SpecializeProb: 1, Theta: 0.3, Disc: Exact}
	candidates := []fact.Set{
		{s.Fact("Biking", "doAt", "Central Park")},     // 2/6
		{s.Fact("Feed a Monkey", "doAt", "Bronx Zoo")}, // 3/6
		{s.Fact("Basketball", "doAt", "Central Park")}, // 1/6
	}
	r := m.ChooseSpecialization(candidates)
	if r.Declined || !r.Chosen {
		t.Fatalf("chosen=%v declined=%v", r.Chosen, r.Declined)
	}
	if r.Choice != 1 || !almost(r.Support, 0.5) {
		t.Errorf("picked %d (%v), want 1 (0.5)", r.Choice, r.Support)
	}
	// All below theta → "none of these".
	m.Theta = 0.9
	r = m.ChooseSpecialization(candidates)
	if r.Chosen || r.Declined {
		t.Errorf("want none-of-these, got chosen=%v declined=%v", r.Chosen, r.Declined)
	}
	// SpecializeProb 0 → declines.
	m.SpecializeProb = 0
	if !m.ChooseSpecialization(candidates).Declined {
		t.Error("member should decline with SpecializeProb 0")
	}
	// Probabilistic path with RNG.
	m.SpecializeProb = 0.5
	m.Rng = rand.New(rand.NewSource(1))
	declinedCount := 0
	for i := 0; i < 200; i++ {
		if m.ChooseSpecialization(candidates).Declined {
			declinedCount++
		}
	}
	if declinedCount < 50 || declinedCount > 150 {
		t.Errorf("declines = %d/200, want ≈100", declinedCount)
	}
}

func TestSimMemberIrrelevant(t *testing.T) {
	s := ontology.NewSample()
	u1, _ := SampleDBs(s)
	m := &SimMember{Name: "u1", DB: u1, PruneProb: 1, Rng: rand.New(rand.NewSource(2))}
	// u1 never swims: Swimming should be prunable; Central Park is not.
	term, ok := m.Irrelevant([]vocab.Term{s.T("Central Park"), s.T("Swimming")})
	if !ok || term != s.T("Swimming") {
		t.Errorf("Irrelevant = %v, %v", term, ok)
	}
	if _, ok := m.Irrelevant([]vocab.Term{s.T("Central Park"), s.T("Biking")}); ok {
		t.Error("relevant terms marked irrelevant")
	}
	m.PruneProb = 0
	if _, ok := m.Irrelevant([]vocab.Term{s.T("Swimming")}); ok {
		t.Error("pruned with PruneProb 0")
	}
}

func TestContainsTerm(t *testing.T) {
	s := ontology.NewSample()
	u1, _ := SampleDBs(s)
	// u1's history mentions Biking, and hence also its generalization Sport.
	if !u1.ContainsTerm(s.T("Biking")) || !u1.ContainsTerm(s.T("Sport")) {
		t.Error("ContainsTerm misses present terms")
	}
	if u1.ContainsTerm(s.T("Swimming")) || u1.ContainsTerm(s.T("Madison Square")) {
		t.Error("ContainsTerm reports absent terms")
	}
}

func TestQuestionRendering(t *testing.T) {
	s := ontology.NewSample()
	tpl := NewTemplates(s.Voc)
	fs := fact.Set{
		s.Fact("Biking", "doAt", "Central Park"),
		s.Fact("Falafel", "eatAt", "Maoz Veg"),
	}.Canon()
	q := tpl.Concrete(fs)
	if !strings.Contains(q, "How often do you") ||
		!strings.Contains(q, "do Biking at Central Park") ||
		!strings.Contains(q, "eat Falafel at Maoz Veg") ||
		!strings.Contains(q, "and also") {
		t.Errorf("Concrete = %q", q)
	}
	sp := tpl.Specialization(fs)
	if !strings.Contains(sp, "Can you specify") {
		t.Errorf("Specialization = %q", sp)
	}
	// Generic relation and wildcard rendering.
	g := tpl.Phrase(fact.Fact{S: vocab.Any, R: s.T("inside"), O: s.T("NYC")})
	if !strings.Contains(g, "anything inside NYC") {
		t.Errorf("generic phrase = %q", g)
	}
}

func TestScaleLabel(t *testing.T) {
	cases := []struct {
		s    float64
		want string
	}{
		{0, "never"}, {0.2, "rarely"}, {0.5, "sometimes"}, {0.8, "often"}, {1, "very often"},
	}
	for _, c := range cases {
		if got := ScaleLabel(c.s); got != c.want {
			t.Errorf("ScaleLabel(%v) = %q, want %q", c.s, got, c.want)
		}
	}
}

func TestSampleDBShapes(t *testing.T) {
	s := ontology.NewSample()
	u1, u2 := SampleDBs(s)
	if u1.Len() != 6 || u2.Len() != 2 {
		t.Fatalf("|D_u1| = %d, |D_u2| = %d", u1.Len(), u2.Len())
	}
	if len(u1.Transactions[3]) != 4 {
		t.Errorf("T4 has %d facts, want 4", len(u1.Transactions[3]))
	}
}
