package crowd

import (
	"oassis/internal/fact"
	"oassis/internal/ontology"
)

// SampleDBs builds the two personal databases of Table 3 in the paper
// (crowd members u1 and u2) over the Figure 1 sample ontology.
func SampleDBs(s *ontology.Sample) (u1, u2 *PersonalDB) {
	p := func(text string) fact.Set { return fact.MustParse(s.Voc, text) }
	u1 = NewPersonalDB(s.Voc,
		// T1
		p("Basketball doAt Central Park. Falafel eatAt Maoz Veg"),
		// T2
		p("Feed a Monkey doAt Bronx Zoo. Pasta eatAt Pine"),
		// T3
		p("Biking doAt Central Park. Rent Bikes doAt Boathouse. Falafel eatAt Maoz Veg"),
		// T4
		p("Baseball doAt Central Park. Biking doAt Central Park. Rent Bikes doAt Boathouse. Falafel eatAt Maoz Veg"),
		// T5
		p("Feed a Monkey doAt Bronx Zoo. Pasta eatAt Pine"),
		// T6
		p("Feed a Monkey doAt Bronx Zoo"),
	)
	u2 = NewPersonalDB(s.Voc,
		// T7
		p("Baseball doAt Central Park. Biking doAt Central Park. Rent Bikes doAt Boathouse. Falafel eatAt Maoz Veg"),
		// T8
		p("Feed a Monkey doAt Bronx Zoo. Pasta eatAt Pine"),
	)
	return u1, u2
}
