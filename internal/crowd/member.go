package crowd

import (
	"math/rand"

	"oassis/internal/fact"
	"oassis/internal/vocab"
)

// SpecializeResponse is the structured answer to a specialization question.
// Exactly one of the three outcomes applies: Chosen (the member picked the
// candidate at Choice and reports its Support), Declined (the member
// prefers concrete questions — the paper lets members choose the question
// type), or neither ("none of these", which assigns support 0 to every
// candidate at once).
type SpecializeResponse struct {
	// Choice indexes the picked candidate; meaningful only when Chosen.
	Choice int
	// Support is the member's support for the picked candidate in [0, 1].
	Support float64
	// Chosen reports that a candidate was picked.
	Chosen bool
	// Declined reports that the member wants a concrete question instead.
	Declined bool
	// More is reserved for volunteered MORE-facts accompanying the answer
	// (the §8 extension); the engine ignores it today.
	More fact.Set
}

// Choose is a SpecializeResponse picking candidate idx with the given
// support.
func Choose(idx int, support float64) SpecializeResponse {
	return SpecializeResponse{Choice: idx, Support: support, Chosen: true}
}

// NoneOfThese is the SpecializeResponse rejecting every candidate.
func NoneOfThese() SpecializeResponse { return SpecializeResponse{} }

// DeclineSpecialization is the SpecializeResponse asking for concrete
// questions instead.
func DeclineSpecialization() SpecializeResponse { return SpecializeResponse{Declined: true} }

// Member is the question interface between the mining engine and one crowd
// member. All questions are about fact-sets (the instantiated SATISFYING
// meta-fact-set of an assignment).
type Member interface {
	// ID identifies the member.
	ID() string

	// Concrete answers a concrete question (Section 2): the member's
	// support for the fact-set, already translated to [0, 1].
	Concrete(fs fact.Set) float64

	// ChooseSpecialization answers a specialization question: given the
	// candidate specializations of the current fact-set (the UI's
	// auto-completion suggestions, §6.2), the member picks one that is
	// significant in their history and reports its support, rejects all of
	// them, or declines in favor of a concrete question.
	ChooseSpecialization(candidates []fact.Set) SpecializeResponse

	// Irrelevant implements user-guided pruning (§6.2): the member may mark
	// one of the given terms as irrelevant, meaning every assignment
	// involving that term or a more specific one has support 0 for them.
	Irrelevant(terms []vocab.Term) (vocab.Term, bool)
}

// Discretizer maps a true support value to the answer actually given; the
// paper's UI offers never / rarely / sometimes / often / very often,
// interpreted as 0, 0.25, 0.5, 0.75 and 1.
type Discretizer func(float64) float64

// FiveLevel is the paper's five-answer scale.
func FiveLevel(s float64) float64 {
	switch {
	case s < 0.125:
		return 0
	case s < 0.375:
		return 0.25
	case s < 0.625:
		return 0.5
	case s < 0.875:
		return 0.75
	default:
		return 1
	}
}

// Exact reports the support unchanged.
func Exact(s float64) float64 { return s }

// SimMember is a simulated crowd member backed by a virtual personal DB.
// Its answer behavior is configurable to reproduce the paper's experiments:
// the probability of accepting a specialization question over a concrete one
// (§6.4 varies this ratio), the probability of volunteering a user-guided
// pruning click, the member's own significance threshold when choosing
// specializations, and the answer discretization.
type SimMember struct {
	Name string
	DB   *PersonalDB

	// SpecializeProb is the probability the member answers a specialization
	// question rather than declining it in favor of a concrete one.
	SpecializeProb float64
	// PruneProb is the probability of a user-guided pruning click when an
	// irrelevant term is present in the question.
	PruneProb float64
	// Theta is the member's own notion of "significant" when picking a
	// specialization to report.
	Theta float64
	// Disc discretizes answers; nil means FiveLevel.
	Disc Discretizer
	// Rng drives the member's random choices; nil means deterministic
	// (always specialize if possible, never prune).
	Rng *rand.Rand
}

// ID implements Member.
func (m *SimMember) ID() string { return m.Name }

func (m *SimMember) disc(s float64) float64 {
	if m.Disc == nil {
		return FiveLevel(s)
	}
	return m.Disc(s)
}

func (m *SimMember) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	if m.Rng == nil {
		return false
	}
	return m.Rng.Float64() < p
}

// Concrete implements Member.
func (m *SimMember) Concrete(fs fact.Set) float64 {
	return m.disc(m.DB.Support(fs))
}

// ChooseSpecialization implements Member.
func (m *SimMember) ChooseSpecialization(candidates []fact.Set) SpecializeResponse {
	if !m.chance(m.SpecializeProb) {
		return DeclineSpecialization() // prefers a concrete question
	}
	idx, sup := m.DB.FrequentSupersets(candidates, m.Theta)
	if len(idx) == 0 {
		return NoneOfThese()
	}
	// Pick the most frequent candidate (deterministic tie-break by index).
	best := 0
	for i := range idx {
		if sup[i] > sup[best] {
			best = i
		}
	}
	return Choose(idx[best], m.disc(sup[best]))
}

// Irrelevant implements Member: terms never occurring (even generalized) in
// the member's history may be marked irrelevant with probability PruneProb.
func (m *SimMember) Irrelevant(terms []vocab.Term) (vocab.Term, bool) {
	for _, t := range terms {
		if !m.DB.ContainsTerm(t) && m.chance(m.PruneProb) {
			return t, true
		}
	}
	return vocab.None, false
}
