package crowd

import (
	"time"

	"oassis/internal/fact"
	"oassis/internal/vocab"
)

// Latent wraps a Member with a fixed per-answer latency, modeling the
// dominant cost of crowd mining: a human answer takes seconds, not
// nanoseconds (§6.2 collects answers over days). It is the workload behind
// the dispatcher benchmarks — with latent members, wall clock measures how
// many questions are genuinely in flight at once rather than CPU time.
type Latent struct {
	M     Member
	Delay time.Duration
}

// ID implements Member.
func (l *Latent) ID() string { return l.M.ID() }

// Concrete implements Member, answering after Delay.
func (l *Latent) Concrete(fs fact.Set) float64 {
	time.Sleep(l.Delay)
	return l.M.Concrete(fs)
}

// ChooseSpecialization implements Member, answering after Delay.
func (l *Latent) ChooseSpecialization(candidates []fact.Set) SpecializeResponse {
	time.Sleep(l.Delay)
	return l.M.ChooseSpecialization(candidates)
}

// Irrelevant implements Member, answering after Delay.
func (l *Latent) Irrelevant(terms []vocab.Term) (vocab.Term, bool) {
	time.Sleep(l.Delay)
	return l.M.Irrelevant(terms)
}
