package crowd

import (
	"math/rand"
	"sync"
	"time"

	"oassis/internal/fact"
	"oassis/internal/vocab"
)

// Latent wraps a Member with a per-answer latency, modeling the dominant
// cost of crowd mining: a human answer takes seconds, not nanoseconds
// (§6.2 collects answers over days). It is the workload behind the
// dispatcher benchmarks — with latent members, wall clock measures how
// many questions are genuinely in flight at once rather than CPU time.
type Latent struct {
	M     Member
	Delay time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter) per answer,
	// so simulated humans do not all answer in lockstep.
	Jitter time.Duration
	// Rng draws the jitter. Jitter requires an explicit Rng — latency
	// simulations must be reproducible, so there is deliberately no
	// fallback to the process-global source. Each Latent must own its Rng
	// (sharing one *rand.Rand across members would interleave their
	// sequences); draws are serialized internally, since the dispatcher
	// may have several of one member's questions in flight at once.
	Rng *rand.Rand

	mu sync.Mutex // guards Rng
}

// nextDelay is the latency of the next answer: Delay plus a jitter draw
// from the member's own Rng.
func (l *Latent) nextDelay() time.Duration {
	d := l.Delay
	if l.Jitter > 0 {
		if l.Rng == nil {
			panic("crowd: Latent.Jitter requires an explicit Rng (no global rand source)")
		}
		l.mu.Lock()
		j := l.Rng.Int63n(int64(l.Jitter))
		l.mu.Unlock()
		d += time.Duration(j)
	}
	return d
}

// ID implements Member.
func (l *Latent) ID() string { return l.M.ID() }

// Concrete implements Member, answering after the member's latency.
func (l *Latent) Concrete(fs fact.Set) float64 {
	time.Sleep(l.nextDelay())
	return l.M.Concrete(fs)
}

// ChooseSpecialization implements Member, answering after the member's
// latency.
func (l *Latent) ChooseSpecialization(candidates []fact.Set) SpecializeResponse {
	time.Sleep(l.nextDelay())
	return l.M.ChooseSpecialization(candidates)
}

// Irrelevant implements Member, answering after the member's latency.
func (l *Latent) Irrelevant(terms []vocab.Term) (vocab.Term, bool) {
	time.Sleep(l.nextDelay())
	return l.M.Irrelevant(terms)
}

// AnswerPanel implements Panelist: the whole panel costs one round-trip
// latency, not one per question — the point of panel batching. The
// answers themselves come from the wrapped member without further delay.
func (l *Latent) AnswerPanel(qs []PanelQuestion) []float64 {
	time.Sleep(l.nextDelay())
	return AnswerPanel(l.M, qs)
}
