package vocab

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildSample builds the activity fragment of the paper's Figure 1 ontology:
//
//	Activity ≤ Sport ≤ {Biking, Ball Game, Water Sport}
//	Ball Game ≤ {Basketball, Baseball, Water Polo}
//	Water Sport ≤ {Swimming, Water Polo}
func buildSample(t *testing.T) (*Vocabulary, map[string]Term) {
	t.Helper()
	v := New()
	names := []string{
		"Activity", "Sport", "Biking", "Ball Game", "Water Sport",
		"Basketball", "Baseball", "Water Polo", "Swimming",
	}
	terms := make(map[string]Term)
	for _, n := range names {
		terms[n] = v.MustAddElement(n)
	}
	edges := [][2]string{
		{"Activity", "Sport"},
		{"Sport", "Biking"}, {"Sport", "Ball Game"}, {"Sport", "Water Sport"},
		{"Ball Game", "Basketball"}, {"Ball Game", "Baseball"}, {"Ball Game", "Water Polo"},
		{"Water Sport", "Swimming"}, {"Water Sport", "Water Polo"},
	}
	for _, e := range edges {
		v.MustAddOrder(terms[e[0]], terms[e[1]])
	}
	if err := v.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	return v, terms
}

func TestAddAndLookup(t *testing.T) {
	v := New()
	a := v.MustAddElement("Place")
	r := v.MustAddRelation("inside")
	if got, ok := v.Lookup("Place"); !ok || got != a {
		t.Fatalf("Lookup(Place) = %v, %v", got, ok)
	}
	if got, ok := v.Lookup("inside"); !ok || got != r {
		t.Fatalf("Lookup(inside) = %v, %v", got, ok)
	}
	if _, ok := v.Lookup("nope"); ok {
		t.Fatal("Lookup(nope) succeeded")
	}
	if v.Name(a) != "Place" || v.KindOf(a) != Element || v.KindOf(r) != Relation {
		t.Fatal("metadata mismatch")
	}
	// Idempotent re-add.
	if again := v.MustAddElement("Place"); again != a {
		t.Fatalf("re-add returned %v, want %v", again, a)
	}
	// Kind conflict.
	if _, err := v.AddRelation("Place"); err == nil {
		t.Fatal("AddRelation(Place) should conflict with element")
	}
	if _, err := v.AddElement(""); err == nil {
		t.Fatal("empty name accepted")
	}
	if v.Len() != 2 || v.CountKind(Element) != 1 || v.CountKind(Relation) != 1 {
		t.Fatalf("Len=%d elements=%d relations=%d", v.Len(), v.CountKind(Element), v.CountKind(Relation))
	}
}

func TestOrderEdgesRejectMismatch(t *testing.T) {
	v := New()
	e := v.MustAddElement("Place")
	r := v.MustAddRelation("inside")
	if err := v.AddOrder(e, r); err == nil {
		t.Fatal("cross-kind edge accepted")
	}
	if err := v.AddOrder(e, e); err == nil {
		t.Fatal("self edge accepted")
	}
	if err := v.AddOrder(e, Term(99)); err == nil {
		t.Fatal("unknown term accepted")
	}
	// Duplicate edge is a no-op.
	e2 := v.MustAddElement("NYC")
	v.MustAddOrder(e, e2)
	v.MustAddOrder(e, e2)
	if len(v.Children(e)) != 1 || len(v.Parents(e2)) != 1 {
		t.Fatal("duplicate edge not deduplicated")
	}
}

func TestLeq(t *testing.T) {
	v, m := buildSample(t)
	cases := []struct {
		a, b string
		want bool
	}{
		{"Activity", "Activity", true},
		{"Activity", "Biking", true},
		{"Sport", "Biking", true},
		{"Sport", "Basketball", true},
		{"Activity", "Water Polo", true},
		{"Ball Game", "Water Polo", true},
		{"Water Sport", "Water Polo", true},
		{"Biking", "Sport", false},
		{"Biking", "Basketball", false},
		{"Basketball", "Baseball", false},
	}
	for _, c := range cases {
		if got := v.Leq(m[c.a], m[c.b]); got != c.want {
			t.Errorf("Leq(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if v.Leq(None, m["Sport"]) || v.Leq(m["Sport"], None) {
		t.Error("Leq with None should be false")
	}
}

func TestLtAndComparable(t *testing.T) {
	v, m := buildSample(t)
	if !v.Lt(m["Sport"], m["Biking"]) {
		t.Error("Sport < Biking expected")
	}
	if v.Lt(m["Sport"], m["Sport"]) {
		t.Error("Sport < Sport unexpected")
	}
	if !v.Comparable(m["Biking"], m["Sport"]) {
		t.Error("Biking and Sport should be comparable")
	}
	if v.Comparable(m["Biking"], m["Basketball"]) {
		t.Error("Biking and Basketball should be incomparable")
	}
}

func TestAncestorsDescendants(t *testing.T) {
	v, m := buildSample(t)
	anc := v.Ancestors(m["Water Polo"])
	want := map[Term]bool{m["Activity"]: true, m["Sport"]: true, m["Ball Game"]: true, m["Water Sport"]: true}
	if len(anc) != len(want) {
		t.Fatalf("Ancestors(Water Polo) = %v, want 4 terms", v.Names(anc))
	}
	for _, a := range anc {
		if !want[a] {
			t.Errorf("unexpected ancestor %s", v.Name(a))
		}
	}
	desc := v.Descendants(m["Ball Game"])
	if len(desc) != 3 {
		t.Fatalf("Descendants(Ball Game) = %v", v.Names(desc))
	}
	all := v.Descendants(m["Activity"])
	if len(all) != v.Len()-1 {
		t.Fatalf("Descendants(Activity) = %d terms, want %d", len(all), v.Len()-1)
	}
}

func TestDepthAndRoots(t *testing.T) {
	v, m := buildSample(t)
	if d := v.Depth(m["Activity"]); d != 0 {
		t.Errorf("Depth(Activity) = %d", d)
	}
	if d := v.Depth(m["Water Polo"]); d != 3 {
		t.Errorf("Depth(Water Polo) = %d, want 3", d)
	}
	roots := v.Roots(Element)
	if len(roots) != 1 || roots[0] != m["Activity"] {
		t.Errorf("Roots = %v", v.Names(roots))
	}
}

func TestCycleDetection(t *testing.T) {
	v := New()
	a := v.MustAddElement("a")
	b := v.MustAddElement("b")
	c := v.MustAddElement("c")
	v.MustAddOrder(a, b)
	v.MustAddOrder(b, c)
	v.MustAddOrder(c, a)
	if err := v.Validate(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := v.Freeze(); err == nil {
		t.Fatal("Freeze accepted cyclic vocabulary")
	}
}

func TestFreezeMakesImmutable(t *testing.T) {
	v := New()
	v.MustAddElement("a")
	if err := v.Freeze(); err != nil {
		t.Fatal(err)
	}
	if !v.Frozen() {
		t.Fatal("Frozen() = false after Freeze")
	}
	if _, err := v.AddElement("b"); err == nil {
		t.Fatal("AddElement accepted after Freeze")
	}
	if err := v.Freeze(); err != nil {
		t.Fatalf("second Freeze: %v", err)
	}
}

func TestAntichain(t *testing.T) {
	v, m := buildSample(t)
	if !v.IsAntichain([]Term{m["Biking"], m["Basketball"]}) {
		t.Error("Biking,Basketball should be an antichain")
	}
	if v.IsAntichain([]Term{m["Sport"], m["Basketball"]}) {
		t.Error("Sport,Basketball should not be an antichain")
	}
	got := v.ReduceAntichain([]Term{m["Sport"], m["Basketball"], m["Biking"], m["Basketball"]})
	if len(got) != 2 {
		t.Fatalf("ReduceAntichain = %v", v.Names(got))
	}
	seen := map[Term]bool{}
	for _, g := range got {
		seen[g] = true
	}
	if !seen[m["Basketball"]] || !seen[m["Biking"]] {
		t.Errorf("ReduceAntichain = %v, want Basketball+Biking", v.Names(got))
	}
	if !v.IsAntichain(got) {
		t.Error("reduced set is not an antichain")
	}
}

func TestConcurrentLeq(t *testing.T) {
	v, m := buildSample(t)
	done := make(chan bool)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				_ = v.Leq(m["Sport"], m["Water Polo"])
				_ = v.Leq(m["Biking"], m["Basketball"])
			}
			done <- true
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

// randomDAG builds a random layered DAG for property tests.
func randomDAG(r *rand.Rand, layers, perLayer int) *Vocabulary {
	v := New()
	var prev []Term
	for l := 0; l < layers; l++ {
		var cur []Term
		for i := 0; i < perLayer; i++ {
			t := v.MustAddElement(string(rune('a'+l)) + string(rune('0'+i%10)) + string(rune('A'+i/10)))
			cur = append(cur, t)
			for _, p := range prev {
				if r.Intn(3) == 0 {
					v.MustAddOrder(p, t)
				}
			}
		}
		prev = cur
	}
	if err := v.Freeze(); err != nil {
		panic(err)
	}
	return v
}

// Property: Leq is reflexive, antisymmetric and transitive on random DAGs.
func TestLeqIsPartialOrderProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		v := randomDAG(r, 4, 6)
		n := v.Len()
		pick := func() Term { return Term(r.Intn(n)) }
		check := func() bool {
			a, b, c := pick(), pick(), pick()
			if !v.Leq(a, a) {
				return false
			}
			if v.Leq(a, b) && v.Leq(b, a) && a != b {
				return false
			}
			if v.Leq(a, b) && v.Leq(b, c) && !v.Leq(a, c) {
				return false
			}
			return true
		}
		if err := quick.Check(check, &quick.Config{MaxCount: 300, Rand: r}); err != nil {
			t.Fatal(err)
		}
	}
}

// Property: ReduceAntichain output is always an antichain and every dropped
// term is ≤ some kept term.
func TestReduceAntichainProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	v := randomDAG(r, 5, 5)
	n := v.Len()
	check := func() bool {
		in := make([]Term, r.Intn(6)+1)
		for i := range in {
			in[i] = Term(r.Intn(n))
		}
		out := v.ReduceAntichain(in)
		if !v.IsAntichain(out) {
			return false
		}
		for _, a := range in {
			covered := false
			for _, b := range out {
				if v.Leq(a, b) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLeqWarm(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	v := randomDAG(r, 7, 40)
	n := v.Len()
	// Warm the memo.
	for t := 0; t < n; t++ {
		v.Leq(0, Term(t))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Leq(Term(i%n), Term((i*7)%n))
	}
}

// BenchmarkLeqFrozen measures the frozen-vocabulary Leq fast path: the
// engine's classifier performs O(|anchors|) such point queries per status
// check, so this is the innermost hot spot of every mining run.
func BenchmarkLeqFrozen(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	v := randomDAG(r, 7, 40)
	if err := v.Freeze(); err != nil {
		b.Fatal(err)
	}
	n := v.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Leq(Term(i%n), Term((i*7)%n))
	}
}

func TestLeqBeforeFreezeSeesNewEdges(t *testing.T) {
	// Leq must not cache stale results while the vocabulary is still being
	// built (regression: pre-freeze memoization went stale and could index
	// out of range after new terms were added).
	v := New()
	a := v.MustAddElement("a")
	b := v.MustAddElement("b")
	if v.Leq(a, b) {
		t.Fatal("unrelated terms comparable")
	}
	v.MustAddOrder(a, b)
	if !v.Leq(a, b) {
		t.Fatal("edge added after a Leq query not visible")
	}
	c := v.MustAddElement("c")
	v.MustAddOrder(b, c)
	if !v.Leq(a, c) {
		t.Fatal("transitive edge over late term not visible")
	}
	if err := v.Freeze(); err != nil {
		t.Fatal(err)
	}
	if !v.Leq(a, c) || v.Leq(c, a) {
		t.Fatal("order wrong after freeze")
	}
}
