// Package vocab implements the vocabulary of Definition 2.1 in the paper:
// a set of element names and a set of relation names, each equipped with a
// semantic partial order. Following the paper's convention, a ≤ b means
// "a is more general than (or equal to) b"; e.g. Sport ≤ Biking because
// biking is a sport.
//
// The orders are stored as Hasse diagrams (immediate generalization /
// specialization edges). Reachability queries are memoized, so Leq is cheap
// after warm-up. A Vocabulary is mutable while it is being built; Freeze
// makes it immutable and safe for concurrent readers.
package vocab

import (
	"fmt"
	"sort"
)

// Term identifies an element or a relation of a Vocabulary. Terms are dense
// small integers, suitable for use as slice indexes and map keys. The zero
// Term is the first term added; use None for "no term".
type Term int32

// None is the invalid Term.
const None Term = -1

// Any is the distinguished wildcard term written [] in OASSIS-QL: it is more
// general than every term (Any ≤ t for all t) and belongs to no vocabulary.
const Any Term = -2

// Kind distinguishes elements from relations.
type Kind uint8

// The two term kinds of Definition 2.1.
const (
	Element Kind = iota
	Relation
)

func (k Kind) String() string {
	switch k {
	case Element:
		return "element"
	case Relation:
		return "relation"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Vocabulary is the pair of partially ordered name sets (E, ≤E, R, ≤R).
type Vocabulary struct {
	names  []string
	kinds  []Kind
	byName map[string]Term

	parents  [][]Term // immediate generalizations (more general terms)
	children [][]Term // immediate specializations (more specific terms)

	frozen bool

	// anc memoizes ancestor sets; filled at Freeze time (see ancestors).
	anc []map[Term]struct{}

	// ancBits is the frozen reflexive-transitive closure as a bitmap: bit a
	// of row b is set iff a ≤ b. Rows are ancWords words wide. Filled at
	// Freeze time; it turns Leq into a single word-indexed bit test.
	ancBits  []uint64
	ancWords int
}

// New returns an empty vocabulary.
func New() *Vocabulary {
	return &Vocabulary{byName: make(map[string]Term)}
}

// Len reports the total number of terms (elements plus relations).
func (v *Vocabulary) Len() int { return len(v.names) }

// CountKind reports the number of terms of the given kind.
func (v *Vocabulary) CountKind(k Kind) int {
	n := 0
	for _, kk := range v.kinds {
		if kk == k {
			n++
		}
	}
	return n
}

// AddElement interns an element name and returns its Term. Adding an
// existing element name is idempotent; adding a name that is already a
// relation is an error.
func (v *Vocabulary) AddElement(name string) (Term, error) { return v.add(name, Element) }

// AddRelation interns a relation name and returns its Term.
func (v *Vocabulary) AddRelation(name string) (Term, error) { return v.add(name, Relation) }

// MustAddElement is AddElement that panics on error. Intended for tests and
// hand-built sample vocabularies.
func (v *Vocabulary) MustAddElement(name string) Term {
	t, err := v.AddElement(name)
	if err != nil {
		panic(err)
	}
	return t
}

// MustAddRelation is AddRelation that panics on error.
func (v *Vocabulary) MustAddRelation(name string) Term {
	t, err := v.AddRelation(name)
	if err != nil {
		panic(err)
	}
	return t
}

func (v *Vocabulary) add(name string, k Kind) (Term, error) {
	if v.frozen {
		return None, fmt.Errorf("vocab: adding %q to frozen vocabulary", name)
	}
	if name == "" {
		return None, fmt.Errorf("vocab: empty term name")
	}
	if t, ok := v.byName[name]; ok {
		if v.kinds[t] != k {
			return None, fmt.Errorf("vocab: %q already exists as a %v", name, v.kinds[t])
		}
		return t, nil
	}
	t := Term(len(v.names))
	v.names = append(v.names, name)
	v.kinds = append(v.kinds, k)
	v.parents = append(v.parents, nil)
	v.children = append(v.children, nil)
	v.byName[name] = t
	return t, nil
}

// Lookup returns the term with the given name.
func (v *Vocabulary) Lookup(name string) (Term, bool) {
	t, ok := v.byName[name]
	return t, ok
}

// Name returns the name of t. It panics if t is out of range.
func (v *Vocabulary) Name(t Term) string { return v.names[t] }

// KindOf returns the kind of t.
func (v *Vocabulary) KindOf(t Term) Kind { return v.kinds[t] }

// Contains reports whether t is a term of this vocabulary.
func (v *Vocabulary) Contains(t Term) bool { return t >= 0 && int(t) < len(v.names) }

// AddOrder records general ≤ specific in the order of the terms' kind, i.e.
// that specific is an immediate specialization of general. Both terms must
// exist and have the same kind. Duplicate edges are ignored.
func (v *Vocabulary) AddOrder(general, specific Term) error {
	if v.frozen {
		return fmt.Errorf("vocab: adding order edge to frozen vocabulary")
	}
	if !v.Contains(general) || !v.Contains(specific) {
		return fmt.Errorf("vocab: order edge with unknown term")
	}
	if general == specific {
		return fmt.Errorf("vocab: self edge on %q", v.names[general])
	}
	if v.kinds[general] != v.kinds[specific] {
		return fmt.Errorf("vocab: order edge between %v %q and %v %q",
			v.kinds[general], v.names[general], v.kinds[specific], v.names[specific])
	}
	for _, c := range v.children[general] {
		if c == specific {
			return nil
		}
	}
	v.children[general] = append(v.children[general], specific)
	v.parents[specific] = append(v.parents[specific], general)
	return nil
}

// MustAddOrder is AddOrder that panics on error.
func (v *Vocabulary) MustAddOrder(general, specific Term) {
	if err := v.AddOrder(general, specific); err != nil {
		panic(err)
	}
}

// Parents returns the immediate generalizations of t. The returned slice is
// owned by the vocabulary and must not be modified.
func (v *Vocabulary) Parents(t Term) []Term { return v.parents[t] }

// Children returns the immediate specializations of t. The returned slice is
// owned by the vocabulary and must not be modified.
func (v *Vocabulary) Children(t Term) []Term { return v.children[t] }

// Roots returns the most general terms of the given kind (terms without
// parents), in term order.
func (v *Vocabulary) Roots(k Kind) []Term {
	var roots []Term
	for t := range v.names {
		if v.kinds[t] == k && len(v.parents[t]) == 0 {
			roots = append(roots, Term(t))
		}
	}
	return roots
}

// Validate checks that both orders are acyclic, using Kahn's algorithm.
func (v *Vocabulary) Validate() error {
	indeg := make([]int, len(v.names))
	for t := range v.names {
		indeg[t] = len(v.parents[t])
	}
	queue := make([]Term, 0, len(v.names))
	for t := range v.names {
		if indeg[t] == 0 {
			queue = append(queue, Term(t))
		}
	}
	processed := 0
	for len(queue) > 0 {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		processed++
		for _, c := range v.children[t] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if processed != len(v.names) {
		for t := range v.names {
			if indeg[t] > 0 {
				return fmt.Errorf("vocab: order cycle through %q", v.names[t])
			}
		}
	}
	return nil
}

// Freeze validates the vocabulary and makes it immutable. It eagerly
// precomputes the ancestor sets so that Leq is a single lock-free map
// lookup afterward. After Freeze the vocabulary is safe for concurrent use.
func (v *Vocabulary) Freeze() error {
	if v.frozen {
		return nil
	}
	if err := v.Validate(); err != nil {
		return err
	}
	v.anc = make([]map[Term]struct{}, len(v.names))
	for t := range v.names {
		v.ancestorsLocked(Term(t))
	}
	words := (len(v.names) + 63) / 64
	v.ancWords = words
	v.ancBits = make([]uint64, words*len(v.names))
	for t := range v.names {
		row := v.ancBits[t*words : (t+1)*words]
		row[t>>6] |= 1 << (uint(t) & 63) // reflexive: t ≤ t
		for a := range v.anc[t] {
			row[a>>6] |= 1 << (uint(a) & 63)
		}
	}
	v.frozen = true
	return nil
}

// Frozen reports whether Freeze has been called.
func (v *Vocabulary) Frozen() bool { return v.frozen }

// ancestors returns the set of strict ancestors (proper generalizations) of
// t. Frozen vocabularies read the precomputed sets lock-free; unfrozen ones
// recompute on every call, because later AddOrder/Add calls would
// invalidate any memo.
func (v *Vocabulary) ancestors(t Term) map[Term]struct{} {
	if v.frozen {
		return v.anc[t]
	}
	s := make(map[Term]struct{})
	v.collectAncestors(t, s)
	return s
}

func (v *Vocabulary) collectAncestors(t Term, into map[Term]struct{}) {
	for _, p := range v.parents[t] {
		if _, seen := into[p]; seen {
			continue
		}
		into[p] = struct{}{}
		v.collectAncestors(p, into)
	}
}

// ancestorsLocked fills the memo table; called only from Freeze.
func (v *Vocabulary) ancestorsLocked(t Term) map[Term]struct{} {
	if s := v.anc[t]; s != nil {
		return s
	}
	s := make(map[Term]struct{})
	for _, p := range v.parents[t] {
		s[p] = struct{}{}
		for a := range v.ancestorsLocked(p) {
			s[a] = struct{}{}
		}
	}
	v.anc[t] = s
	return s
}

// Leq reports whether a ≤ b, i.e. a is equal to b or a proper
// generalization of b. Terms of different kinds are never comparable.
// The wildcard Any is ≤ everything.
func (v *Vocabulary) Leq(a, b Term) bool {
	if v.frozen && a >= 0 && b >= 0 && int(a) < len(v.names) && int(b) < len(v.names) {
		// Frozen fast path: one bit test. Different-kind pairs read a zero
		// bit because ancestor closures never cross kinds.
		return v.ancBits[int(b)*v.ancWords+int(a)>>6]&(1<<(uint(a)&63)) != 0
	}
	if a == Any {
		return b == Any || v.Contains(b)
	}
	if b == Any {
		return false
	}
	if a == b {
		return v.Contains(a)
	}
	if !v.Contains(a) || !v.Contains(b) || v.kinds[a] != v.kinds[b] {
		return false
	}
	_, ok := v.ancestors(b)[a]
	return ok
}

// Lt reports whether a < b (strict generalization).
func (v *Vocabulary) Lt(a, b Term) bool { return a != b && v.Leq(a, b) }

// Comparable reports whether a ≤ b or b ≤ a.
func (v *Vocabulary) Comparable(a, b Term) bool { return v.Leq(a, b) || v.Leq(b, a) }

// Ancestors returns the proper generalizations of t in ascending Term order.
func (v *Vocabulary) Ancestors(t Term) []Term {
	set := v.ancestors(t)
	out := make([]Term, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Descendants returns the proper specializations of t in ascending Term
// order. It is computed by BFS (not memoized); prefer Leq for point queries.
func (v *Vocabulary) Descendants(t Term) []Term {
	seen := map[Term]struct{}{t: {}}
	queue := []Term{t}
	var out []Term
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, c := range v.children[cur] {
			if _, ok := seen[c]; ok {
				continue
			}
			seen[c] = struct{}{}
			out = append(out, c)
			queue = append(queue, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Depth returns the length of the longest generalization chain ending at t
// (a root has depth 0).
func (v *Vocabulary) Depth(t Term) int {
	memo := make(map[Term]int)
	var depth func(Term) int
	depth = func(x Term) int {
		if d, ok := memo[x]; ok {
			return d
		}
		d := 0
		for _, p := range v.parents[x] {
			if pd := depth(p) + 1; pd > d {
				d = pd
			}
		}
		memo[x] = d
		return d
	}
	return depth(t)
}

// IsAntichain reports whether no two distinct terms in ts are comparable.
func (v *Vocabulary) IsAntichain(ts []Term) bool {
	for i := range ts {
		for j := i + 1; j < len(ts); j++ {
			if v.Comparable(ts[i], ts[j]) {
				return false
			}
		}
	}
	return true
}

// ReduceAntichain drops from ts every term that is a proper generalization
// of another term in ts, returning the canonical antichain representation
// (maximally specific values only), sorted and deduplicated.
func (v *Vocabulary) ReduceAntichain(ts []Term) []Term {
	var out []Term
	for i, a := range ts {
		redundant := false
		for j, b := range ts {
			if i == j {
				continue
			}
			if v.Lt(a, b) || (a == b && j < i) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Names returns the names of ts, for diagnostics.
func (v *Vocabulary) Names(ts []Term) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = v.names[t]
	}
	return out
}
