package plan

import "fmt"

// Ordering is the question-ordering seam between the planner and the
// execution engine: it decides which unclassified lattice node the crowd
// is asked about next. The seam has two tiers, told apart by type:
//
//   - tier one, Policy: a stateless pairwise comparator. The engine keeps
//     its original allocation-free scan over the unclassified set, calling
//     Better per candidate; PaperOrder and LargestFirst live here.
//   - tier two, SelectorOrdering: a stateful Selector that sees the whole
//     candidate set at once through a read-only CandidateView (sizes,
//     fringe counts among unclassified neighbors, live answer aggregates)
//     and picks one. The structure-aware orderings (ChainPrune, MaxPrune)
//     live here.
//
// Every ordering must be deterministic: the same candidate view must
// always produce the same choice, with ties broken totally (no two
// distinct keys may rank equal), or runs stop being reproducible across
// parallelism levels and panel batching.
type Ordering interface {
	// Name returns the registry name of the ordering.
	Name() string
}

// Policy is the tier-one ordering: a strict pairwise comparison the
// engine folds over its candidate set, keeping the best node. A Policy
// must be stateless — given the same candidate pair it always answers the
// same — so the engine's allocation-free selection loop is preserved
// whatever the policy.
type Policy interface {
	Ordering
	// Better reports whether the candidate node (key aKey, lattice size
	// aSize) should be asked before the incumbent (bKey, bSize).
	Better(aKey string, aSize int, bKey string, bSize int) bool
}

// Scorer is implemented by orderings that can grade one candidate in
// isolation from its pattern size — the position score batching layers
// (internal/panel) use to rank speculative questions inside a panel.
// Higher scores rank earlier. Orderings that need the whole candidate
// view to rank (the tier-two selectors) simply do not implement it, and
// the batching layer falls back to the paper's smallest-first position.
type Scorer interface {
	// Score grades a candidate of the given pattern size; higher is
	// earlier.
	Score(size int) float64
}

// Registry names of the built-in orderings.
const (
	PolicyPaperOrder   = "paper-order"
	PolicyLargestFirst = "largest-first"
	PolicyChainPrune   = "chain-prune"
	PolicyMaxPrune     = "max-prune"
)

// PaperOrder is the paper's §4 order and the default policy: ask about
// the smallest unclassified assignment first (bottom-up generalization
// pays for itself — small significant assignments prune the most), with
// the lexicographically least key breaking ties. This is bit-identical
// to the engine's original hard-coded selection.
type PaperOrder struct{}

// Name implements Ordering.
func (PaperOrder) Name() string { return PolicyPaperOrder }

// Better implements Policy with the paper's (size, key)-least order.
func (PaperOrder) Better(aKey string, aSize int, bKey string, bSize int) bool {
	return aSize < bSize || (aSize == bSize && aKey < bKey)
}

// Score implements Scorer: the smallest-first position score, exactly the
// panel layer's original hard-coded 1/(1+size) priority term.
func (PaperOrder) Score(size int) float64 { return 1.0 / float64(1+size) }

// LargestFirst is the alternative top-down policy: ask about the largest
// unclassified assignment first, descending from the most specific
// candidates. Ties break on the lexicographically least key, so the
// policy is still a total order and runs stay deterministic.
type LargestFirst struct{}

// Name implements Ordering.
func (LargestFirst) Name() string { return PolicyLargestFirst }

// Better implements Policy with a (size, key) greatest-size order.
func (LargestFirst) Better(aKey string, aSize int, bKey string, bSize int) bool {
	return aSize > bSize || (aSize == bSize && aKey < bKey)
}

// Score implements Scorer with the mirrored position: larger patterns
// rank earlier, asymptotically approaching 1.
func (LargestFirst) Score(size int) float64 { return float64(size) / float64(1+size) }

// OrderingByName resolves a registry name to its Ordering. The empty name
// is the planner's default, PaperOrder. Unknown names wrap
// ErrUnknownPolicy.
func OrderingByName(name string) (Ordering, error) {
	switch name {
	case PolicyPaperOrder, "":
		return PaperOrder{}, nil
	case PolicyLargestFirst:
		return LargestFirst{}, nil
	case PolicyChainPrune:
		return ChainPrune{}, nil
	case PolicyMaxPrune:
		return MaxPrune{}, nil
	}
	return nil, unknownPolicy(name)
}

// OrderingNames lists the registered ordering names, sorted — the
// vocabulary of Plan.PolicyName, WithPolicy validation and the
// experiment sweeps.
func OrderingNames() []string {
	return []string{PolicyChainPrune, PolicyLargestFirst, PolicyMaxPrune, PolicyPaperOrder}
}

// PolicyByName resolves a registry name to its tier-one comparator. The
// selector-based orderings carry no pairwise comparison, so PolicyByName
// reports them unknown too; resolve the full registry with
// OrderingByName.
func PolicyByName(name string) (Policy, error) {
	o, err := OrderingByName(name)
	if err != nil {
		return nil, err
	}
	p, ok := o.(Policy)
	if !ok {
		return nil, fmt.Errorf("%w %q (selector-based ordering; resolve with OrderingByName)",
			ErrUnknownPolicy, name)
	}
	return p, nil
}
