package plan

import "fmt"

// Policy is the question-ordering strategy of the execution engine: when
// several unclassified lattice nodes are eligible, the policy decides
// which one the crowd is asked about next. The engine scans its candidate
// set and keeps the best node under Better, so a Policy is a strict
// comparison, not a queue — the engine's allocation-free selection loop
// is preserved whatever the policy.
//
// Policies must be deterministic and stateless: given the same candidate
// pair they must always answer the same, and ties must be broken totally
// (no two distinct keys may compare equal both ways), or runs stop being
// reproducible across parallelism levels.
type Policy interface {
	// Name returns the registry name of the policy.
	Name() string
	// Better reports whether the candidate node (key aKey, lattice size
	// aSize) should be asked before the incumbent (bKey, bSize).
	Better(aKey string, aSize int, bKey string, bSize int) bool
}

// Registry names of the built-in policies.
const (
	PolicyPaperOrder   = "paper-order"
	PolicyLargestFirst = "largest-first"
)

// PaperOrder is the paper's §4 order and the default policy: ask about
// the smallest unclassified assignment first (bottom-up generalization
// pays for itself — small significant assignments prune the most), with
// the lexicographically least key breaking ties. This is bit-identical
// to the engine's original hard-coded selection.
type PaperOrder struct{}

// Name implements Policy.
func (PaperOrder) Name() string { return PolicyPaperOrder }

// Better implements Policy with the paper's (size, key)-least order.
func (PaperOrder) Better(aKey string, aSize int, bKey string, bSize int) bool {
	return aSize < bSize || (aSize == bSize && aKey < bKey)
}

// LargestFirst is the alternative top-down policy: ask about the largest
// unclassified assignment first, descending from the most specific
// candidates. Ties break on the lexicographically least key, so the
// policy is still a total order and runs stay deterministic.
type LargestFirst struct{}

// Name implements Policy.
func (LargestFirst) Name() string { return PolicyLargestFirst }

// Better implements Policy with a (size, key) greatest-size order.
func (LargestFirst) Better(aKey string, aSize int, bKey string, bSize int) bool {
	return aSize > bSize || (aSize == bSize && aKey < bKey)
}

// PolicyByName resolves a registry name to its Policy.
func PolicyByName(name string) (Policy, error) {
	switch name {
	case PolicyPaperOrder, "":
		return PaperOrder{}, nil
	case PolicyLargestFirst:
		return LargestFirst{}, nil
	}
	return nil, fmt.Errorf("plan: unknown policy %q", name)
}
