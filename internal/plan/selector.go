package plan

// CandidateView is the read-only window a tier-two Selector gets over the
// engine's current candidate set: every unclassified generated node, with
// its lattice position (size, fringe counts among still-unclassified
// neighbors) and its live answer aggregate. The engine materializes the
// view over its interned node store; candidates are presented in
// canonical key order, which is the one enumeration identical across
// sequential, concurrent and panel execution — the determinism contract
// rests on it.
//
// The fringe counts are the pruning potential of Observation 4.4:
// significance is downward closed and insignificance upward closed, so
// classifying a candidate significant settles its unresolved down-set
// (UnclassifiedPredecessors) and classifying it insignificant settles its
// unresolved up-set (UnclassifiedSuccessors) — without asking a single
// further question about those neighbors.
type CandidateView interface {
	// Len returns the number of candidates.
	Len() int
	// Key returns candidate i's canonical node key. Keys are distinct and
	// ascending in i.
	Key(i int) string
	// Size returns candidate i's lattice size (pattern specificity).
	Size(i int) int
	// UnclassifiedSuccessors counts candidate i's immediate successors
	// that are still unclassified — the up-set fringe an insignificant
	// verdict prunes.
	UnclassifiedSuccessors(i int) int
	// UnclassifiedPredecessors counts candidate i's immediate predecessors
	// that are still unclassified — the down-set fringe a significant
	// verdict settles by inference.
	UnclassifiedPredecessors(i int) int
	// Answers returns how many crowd answers candidate i's question has
	// collected so far.
	Answers(i int) int
	// Mean returns the running mean support of candidate i's question
	// (0 with no answers).
	Mean(i int) float64
	// Theta returns the run's significance threshold.
	Theta() float64
}

// Selector is the tier-two ordering instance: it sees the whole candidate
// set through a CandidateView and returns the index of the node to ask
// about next. Selectors may carry per-run state (NewSelector hands every
// run a fresh one), but must stay deterministic: the same view and state
// must always pick the same index.
type Selector interface {
	// Select returns the chosen candidate index in [0, view.Len()).
	// It is never called on an empty view.
	Select(view CandidateView) int
}

// SelectorOrdering is the tier-two registration: an Ordering that picks
// via a stateful Selector instead of a pairwise comparator. NewSelector
// is called once per run, so selector state never leaks across runs.
type SelectorOrdering interface {
	Ordering
	// NewSelector returns a fresh per-run selector.
	NewSelector() Selector
}

// paperBefore is the shared tie-break of the selector orderings: between
// equally-scored candidates, fall back to the paper's (size, key)-least
// order, keeping every selector a total order.
func paperBefore(v CandidateView, i, j int) bool {
	if v.Size(i) != v.Size(j) {
		return v.Size(i) < v.Size(j)
	}
	return v.Key(i) < v.Key(j)
}

// ChainPrune is the chain-partition-inspired fringe ordering (after
// Amarilli, Amsterdamer & Milo: exploiting taxonomy structure provably
// reduces expected question count): prefer the candidate whose
// classification is guaranteed to settle the largest unresolved
// neighborhood whichever way the verdict falls. A node in the middle of a
// long unresolved chain scores min(down-fringe, up-fringe) — the prune it
// secures even in the worst case — so the ordering bisects chains instead
// of crawling them end to end.
type ChainPrune struct{}

// Name implements Ordering.
func (ChainPrune) Name() string { return PolicyChainPrune }

// NewSelector implements SelectorOrdering.
func (ChainPrune) NewSelector() Selector { return chainPruneSelector{} }

type chainPruneSelector struct{}

// Select maximizes the guaranteed prune min(unclassified predecessors,
// unclassified successors), breaking ties with the paper order.
func (chainPruneSelector) Select(v CandidateView) int {
	best, bestScore := -1, -1
	for i := 0; i < v.Len(); i++ {
		score := v.UnclassifiedPredecessors(i)
		if up := v.UnclassifiedSuccessors(i); up < score {
			score = up
		}
		if best < 0 || score > bestScore ||
			(score == bestScore && paperBefore(v, i, best)) {
			best, bestScore = i, score
		}
	}
	return best
}

// MaxPrune is the adaptive ordering: it re-scores every candidate from
// the live answer distribution, weighting the two one-sided prunes of
// Observation 4.4 by the estimated probability of each verdict. A
// candidate whose running mean sits far above the threshold is probably
// significant, so its value is the down-set it would settle; far below,
// the up-set it would prune. Candidates without answers score under the
// selector's running prior — the mean verdict probability observed on
// answered candidates so far — which is how the ordering adapts as
// evidence accumulates.
type MaxPrune struct{}

// Name implements Ordering.
func (MaxPrune) Name() string { return PolicyMaxPrune }

// NewSelector implements SelectorOrdering: the prior starts indifferent
// and is carried across rounds, so early evidence keeps steering later
// no-answer candidates.
func (MaxPrune) NewSelector() Selector { return &maxPruneSelector{prior: 0.5} }

type maxPruneSelector struct {
	// prior is the running estimate of P(significant) for candidates
	// without answers, updated each round from the answered candidates.
	prior float64
}

// probSignificant maps a running mean to a verdict probability: linear in
// the distance from the threshold, clamped away from certainty so no
// candidate's fringe is ever fully discounted on partial evidence.
func probSignificant(mean, theta float64) float64 {
	p := 0.5 + (mean - theta)
	if p < 0.05 {
		return 0.05
	}
	if p > 0.95 {
		return 0.95
	}
	return p
}

// Select maximizes the expected prune p·down + (1−p)·up, breaking ties
// with the paper order.
func (s *maxPruneSelector) Select(v CandidateView) int {
	theta := v.Theta()
	sum, n := 0.0, 0
	for i := 0; i < v.Len(); i++ {
		if v.Answers(i) > 0 {
			sum += probSignificant(v.Mean(i), theta)
			n++
		}
	}
	if n > 0 {
		s.prior = sum / float64(n)
	}
	best, bestScore := -1, 0.0
	for i := 0; i < v.Len(); i++ {
		p := s.prior
		if v.Answers(i) > 0 {
			p = probSignificant(v.Mean(i), theta)
		}
		score := p*float64(v.UnclassifiedPredecessors(i)) +
			(1-p)*float64(v.UnclassifiedSuccessors(i))
		if best < 0 || score > bestScore ||
			(score == bestScore && paperBefore(v, i, best)) {
			best, bestScore = i, score
		}
	}
	return best
}
