package plan

import (
	"crypto/sha256"
	"fmt"

	"oassis/internal/assign"
	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/rdfio"
	"oassis/internal/sparql"
	"oassis/internal/vocab"
)

// ErrNotFrozen is returned when compiling against an unfrozen vocabulary:
// plans are immutable, so their domain must be too.
var ErrNotFrozen = fmt.Errorf("plan: vocabulary must be frozen before compiling")

// DomainFingerprint computes the content address of a frozen domain:
// "sha256:" over a canonical dump of the vocabulary (every term in
// interning order with its name, kind and children) followed by the
// deterministic Turtle serialization of the ontology. Two domains with
// the same fingerprint resolve every plan identically.
func DomainFingerprint(voc *vocab.Vocabulary, onto *ontology.Ontology) string {
	h := sha256.New()
	for t := 0; t < voc.Len(); t++ {
		term := vocab.Term(t)
		fmt.Fprintf(h, "%d\x00%s\x00%s\x00", t, voc.Name(term), voc.KindOf(term))
		for _, c := range voc.Children(term) {
			fmt.Fprintf(h, "%d,", c)
		}
		fmt.Fprint(h, "\x00")
	}
	if onto != nil {
		if err := rdfio.Write(h, onto); err != nil {
			// rdfio.Write over an in-memory ontology only fails if the
			// writer fails, and sha256.Hash never does; keep the
			// signature error-free and poison the digest if it ever does.
			fmt.Fprintf(h, "write-error:%v", err)
		}
	}
	return fmt.Sprintf("sha256:%x", h.Sum(nil))
}

// ShardIndex maps a plan fingerprint onto one of n shards (FNV-1a over
// the fingerprint text, mod n). It is the serving tier's routing
// function: because the fingerprint is a content address, every session
// of the same compiled plan lands on the same shard — deterministically,
// across restarts — and shares the plan's read-only tables there. n < 1
// returns 0.
func ShardIndex(fingerprint string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(fingerprint); i++ {
		h ^= uint64(fingerprint[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// Compile analyzes query q over the frozen domain (voc, onto): it
// evaluates the WHERE clause, resolves the SATISFYING meta-fact-set and
// the valid base assignments, and picks the ordering policy and mining
// substrate. domainFP is the precomputed DomainFingerprint of
// (voc, onto); the caller usually holds it in a core.Domain so it is
// hashed once per domain, not once per compile.
func Compile(voc *vocab.Vocabulary, onto *ontology.Ontology, q *oassisql.Query,
	domainFP string) (*Plan, error) {

	if !voc.Frozen() {
		return nil, ErrNotFrozen
	}
	bindings, err := sparql.Evaluate(onto, q.Where)
	if err != nil {
		return nil, err
	}
	maps := make([]map[string]vocab.Term, len(bindings))
	for i, b := range bindings {
		maps[i] = b
	}
	sp, err := assign.NewSpace(voc, q, maps, sparql.Anchors(voc, q.Where))
	if err != nil {
		return nil, err
	}
	return newPlan(&Plan{
		QueryText:     q.String(),
		Support:       q.Support,
		All:           q.All,
		More:          q.More,
		Vars:          sp.Vars,
		Sat:           sp.Sat,
		ValidBase:     sp.ValidBase,
		PolicyName:    PolicyPaperOrder,
		SubstrateName: chooseSubstrate(q),
		StopName:      StopDefault,
		DomainFP:      domainFP,
	}, voc, sp.Tables())
}

// chooseSubstrate picks the mining black box for the query. The pure
// itemset-capture form of §4.1 — an empty WHERE clause, so the query is
// frequent-pattern mining over the whole vocabulary — runs on the classic
// itemset substrate; everything else is crowd mining in the SIGMOD'13
// association-rule sense and runs on the assoc substrate.
func chooseSubstrate(q *oassisql.Query) string {
	if len(q.Where) == 0 {
		return SubstrateItemset
	}
	return SubstrateAssoc
}

// FromSpace wraps an already-built assignment space as a Plan, for
// callers (the synthetic-domain generators, programmatic experiments)
// that construct spaces from explicit bindings rather than a WHERE
// clause. The space's parts are captured as-is; support is the
// significance threshold the plan will run with.
func FromSpace(queryText string, support float64, all bool, domainFP string,
	sp *assign.Space) (*Plan, error) {

	return newPlan(&Plan{
		QueryText:     queryText,
		Support:       support,
		All:           all,
		More:          sp.More,
		Vars:          sp.Vars,
		Sat:           sp.Sat,
		ValidBase:     sp.ValidBase,
		PolicyName:    PolicyPaperOrder,
		SubstrateName: SubstrateAssoc,
		StopName:      StopDefault,
		DomainFP:      domainFP,
	}, sp.Voc, sp.Tables())
}
