package plan_test

import (
	"errors"
	"testing"

	"oassis/internal/aggregate"
	"oassis/internal/obs"
	"oassis/internal/plan"
)

// fakeView is an in-test CandidateView: a fixed candidate table, already
// in canonical key order as the contract requires.
type fakeCand struct {
	key      string
	size     int
	down, up int
	answers  int
	mean     float64
}

type fakeView struct {
	cands []fakeCand
	theta float64
}

func (v fakeView) Len() int                         { return len(v.cands) }
func (v fakeView) Key(i int) string                 { return v.cands[i].key }
func (v fakeView) Size(i int) int                   { return v.cands[i].size }
func (v fakeView) UnclassifiedSuccessors(i int) int { return v.cands[i].up }
func (v fakeView) UnclassifiedPredecessors(i int) int {
	return v.cands[i].down
}
func (v fakeView) Answers(i int) int { return v.cands[i].answers }
func (v fakeView) Mean(i int) float64 {
	return v.cands[i].mean
}
func (v fakeView) Theta() float64 { return v.theta }

func TestOrderingByName(t *testing.T) {
	for _, name := range append(plan.OrderingNames(), "") {
		o, err := plan.OrderingByName(name)
		if err != nil {
			t.Fatalf("OrderingByName(%q): %v", name, err)
		}
		want := name
		if want == "" {
			want = plan.PolicyPaperOrder
		}
		if o.Name() != want {
			t.Errorf("OrderingByName(%q).Name() = %q", name, o.Name())
		}
	}
}

// TestErrUnknownPolicyGolden pins the exact resolution-failure messages:
// one sentinel (errors.Is) at every layer, an actionable registry listing
// in the text.
func TestErrUnknownPolicyGolden(t *testing.T) {
	_, err := plan.OrderingByName("nope")
	if !errors.Is(err, plan.ErrUnknownPolicy) {
		t.Fatalf("OrderingByName error %v does not wrap ErrUnknownPolicy", err)
	}
	const wantUnknown = `plan: unknown ordering policy "nope" (want one of chain-prune, largest-first, max-prune, paper-order)`
	if err.Error() != wantUnknown {
		t.Errorf("OrderingByName message:\n got %q\nwant %q", err.Error(), wantUnknown)
	}

	// PolicyByName is the tier-one resolver: selector-based names are not
	// pairwise comparators, and the message says where to go instead.
	_, err = plan.PolicyByName(plan.PolicyChainPrune)
	if !errors.Is(err, plan.ErrUnknownPolicy) {
		t.Fatalf("PolicyByName(chain-prune) error %v does not wrap ErrUnknownPolicy", err)
	}
	const wantTier = `plan: unknown ordering policy "chain-prune" (selector-based ordering; resolve with OrderingByName)`
	if err.Error() != wantTier {
		t.Errorf("PolicyByName message:\n got %q\nwant %q", err.Error(), wantTier)
	}

	// WithPolicy propagates the same sentinel.
	v, o, q := captureDomain(t, 4)
	pl, err := plan.Compile(v, o, q, plan.DomainFingerprint(v, o))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.WithPolicy("nope"); !errors.Is(err, plan.ErrUnknownPolicy) {
		t.Errorf("WithPolicy error %v does not wrap ErrUnknownPolicy", err)
	}
}

// TestScorer pins the panel position scores: PaperOrder's is exactly the
// batcher's historical smallest-first term (the bit-identical default),
// LargestFirst mirrors it, and the tier-two selectors deliberately do not
// score in isolation.
func TestScorer(t *testing.T) {
	po, ok := plan.Ordering(plan.PaperOrder{}).(plan.Scorer)
	if !ok {
		t.Fatal("PaperOrder does not implement Scorer")
	}
	if got := po.Score(1); got != 0.5 {
		t.Errorf("PaperOrder.Score(1) = %g, want 0.5", got)
	}
	if got := po.Score(3); got != 0.25 {
		t.Errorf("PaperOrder.Score(3) = %g, want 0.25", got)
	}
	lf, ok := plan.Ordering(plan.LargestFirst{}).(plan.Scorer)
	if !ok {
		t.Fatal("LargestFirst does not implement Scorer")
	}
	if got := lf.Score(1); got != 0.5 {
		t.Errorf("LargestFirst.Score(1) = %g, want 0.5", got)
	}
	if got := lf.Score(3); got != 0.75 {
		t.Errorf("LargestFirst.Score(3) = %g, want 0.75", got)
	}
	if _, ok := plan.Ordering(plan.ChainPrune{}).(plan.Scorer); ok {
		t.Error("ChainPrune implements Scorer; selectors must rank against the whole view")
	}
	if _, ok := plan.Ordering(plan.MaxPrune{}).(plan.Scorer); ok {
		t.Error("MaxPrune implements Scorer; selectors must rank against the whole view")
	}
}

func TestChainPruneSelector(t *testing.T) {
	sel := plan.ChainPrune{}.NewSelector()
	// Candidate b sits mid-chain: min(3, 2) = 2 beats the fringe nodes'
	// min(0, 5) = 0 and min(4, 0) = 0.
	v := fakeView{theta: 0.2, cands: []fakeCand{
		{key: "a", size: 1, down: 0, up: 5},
		{key: "b", size: 2, down: 3, up: 2},
		{key: "c", size: 3, down: 4, up: 0},
	}}
	if got := sel.Select(v); got != 1 {
		t.Errorf("Select = %d, want 1 (mid-chain bisection)", got)
	}
	// Equal scores fall back to the paper's (size, key)-least order.
	tie := fakeView{theta: 0.2, cands: []fakeCand{
		{key: "a", size: 2, down: 2, up: 2},
		{key: "b", size: 1, down: 2, up: 2},
	}}
	if got := sel.Select(tie); got != 1 {
		t.Errorf("tie Select = %d, want 1 (smaller size wins the tie)", got)
	}
	// Determinism: the same view always picks the same index.
	for i := 0; i < 3; i++ {
		if sel.Select(v) != 1 {
			t.Fatal("ChainPrune selection drifted on a fixed view")
		}
	}
}

func TestMaxPruneSelector(t *testing.T) {
	// With no answers anywhere, the prior is indifferent (0.5): the
	// balanced expected prune 0.5·down + 0.5·up decides.
	sel := plan.MaxPrune{}.NewSelector()
	cold := fakeView{theta: 0.2, cands: []fakeCand{
		{key: "a", size: 1, down: 1, up: 1},
		{key: "b", size: 2, down: 4, up: 3},
	}}
	if got := sel.Select(cold); got != 1 {
		t.Errorf("cold Select = %d, want 1 (largest balanced prune)", got)
	}

	// Adaptivity: strong significant evidence on one candidate pushes the
	// running prior up, so an unanswered down-heavy candidate now outranks
	// an unanswered up-heavy one of equal total fringe.
	sel = plan.MaxPrune{}.NewSelector()
	warm := fakeView{theta: 0.2, cands: []fakeCand{
		{key: "a", size: 1, down: 0, up: 0, answers: 3, mean: 0.9},
		{key: "b", size: 2, down: 6, up: 0},
		{key: "c", size: 2, down: 0, up: 6},
	}}
	if got := sel.Select(warm); got != 1 {
		t.Errorf("warm Select = %d, want 1 (high prior favors the down-set)", got)
	}
	// Mirror: insignificant evidence favors the up-heavy candidate.
	sel = plan.MaxPrune{}.NewSelector()
	low := fakeView{theta: 0.2, cands: []fakeCand{
		{key: "a", size: 1, down: 0, up: 0, answers: 3, mean: 0.0},
		{key: "b", size: 2, down: 6, up: 0},
		{key: "c", size: 2, down: 0, up: 6},
	}}
	if got := sel.Select(low); got != 2 {
		t.Errorf("low Select = %d, want 2 (low prior favors the up-set)", got)
	}

	// The prior persists across rounds: after the warm view, a view with
	// no answered candidates still selects under the learned prior.
	sel = plan.MaxPrune{}.NewSelector()
	sel.Select(warm)
	later := fakeView{theta: 0.2, cands: []fakeCand{
		{key: "b", size: 2, down: 6, up: 0},
		{key: "c", size: 2, down: 0, up: 6},
	}}
	if got := sel.Select(later); got != 0 {
		t.Errorf("later Select = %d, want 0 (prior carried across rounds)", got)
	}
}

// TestWithPolicyFingerprints: satellite check that ordering variants are
// first-class plans — distinct fingerprints, shared frozen tables, and
// no-op derivations returning the base pointer.
func TestWithPolicyFingerprints(t *testing.T) {
	v, o, q := captureDomain(t, 6)
	base, err := plan.Compile(v, o, q, plan.DomainFingerprint(v, o))
	if err != nil {
		t.Fatal(err)
	}
	cp, err := base.WithPolicy(plan.PolicyChainPrune)
	if err != nil {
		t.Fatal(err)
	}
	if cp.PolicyName != plan.PolicyChainPrune {
		t.Errorf("variant PolicyName = %q", cp.PolicyName)
	}
	if cp.Fingerprint() == base.Fingerprint() {
		t.Error("ordering variant shares the base fingerprint; caches and WALs would mix orderings")
	}
	if cp.Vocabulary() != base.Vocabulary() {
		t.Error("variant does not share the base vocabulary")
	}
	if ord, err := cp.Ordering(); err != nil || ord.Name() != plan.PolicyChainPrune {
		t.Errorf("variant Ordering() = %v, %v", ord, err)
	}
	// Each registered ordering fingerprints distinctly from every other.
	seen := map[string]string{base.PolicyName: base.Fingerprint()}
	for _, name := range plan.OrderingNames() {
		p, err := base.WithPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := seen[name]; ok && prev != p.Fingerprint() {
			t.Errorf("%s fingerprint unstable", name)
		}
		for other, fp := range seen {
			if other != name && fp == p.Fingerprint() {
				t.Errorf("%s and %s share a fingerprint", name, other)
			}
		}
		seen[name] = p.Fingerprint()
	}
	// No-op derivations return the base pointer itself.
	if same, err := base.WithPolicy(""); err != nil || same != base {
		t.Errorf("WithPolicy(\"\") = %v, %v; want base", same, err)
	}
	if same, err := base.WithPolicy(base.PolicyName); err != nil || same != base {
		t.Errorf("WithPolicy(base) = %v, %v; want base", same, err)
	}
}

// TestCachePolicyVariants: two plans differing only in ordering never
// share a cache slot, and the dimensions compose — the ordering variant
// of a stop variant is its own entry.
func TestCachePolicyVariants(t *testing.T) {
	v, o, q := captureDomain(t, 6)
	fp := plan.DomainFingerprint(v, o)
	c := plan.NewCache()
	m := plan.NewCacheMetrics(obs.NewRegistry())
	base, _, err := c.GetOrCompile(q.String(), fp, m, func() (*plan.Plan, error) {
		return plan.Compile(v, o, q, fp)
	})
	if err != nil {
		t.Fatal(err)
	}

	mp, hit, err := c.GetOrDerivePolicy(base, plan.PolicyMaxPrune, m)
	if err != nil || hit {
		t.Fatalf("first GetOrDerivePolicy: hit=%v err=%v", hit, err)
	}
	if mp == base || mp.Fingerprint() == base.Fingerprint() {
		t.Error("policy variant shares the base plan or fingerprint")
	}
	mp2, hit, err := c.GetOrDerivePolicy(base, plan.PolicyMaxPrune, m)
	if err != nil || !hit || mp2 != mp {
		t.Fatalf("second GetOrDerivePolicy: plan=%p hit=%v err=%v, want %p hit", mp2, hit, err, mp)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2 (base + one variant)", c.Len())
	}

	// The base's own name and the empty default are hits on base itself.
	if p, hit, err := c.GetOrDerivePolicy(base, "", m); err != nil || !hit || p != base {
		t.Errorf("GetOrDerivePolicy(\"\") = %v, %v, %v", p, hit, err)
	}
	if p, hit, err := c.GetOrDerivePolicy(base, base.PolicyName, m); err != nil || !hit || p != base {
		t.Errorf("GetOrDerivePolicy(default) = %v, %v, %v", p, hit, err)
	}

	// Composition: the ordering variant of a stop variant occupies its own
	// slot, distinct from the ordering variant of the default-stop plan.
	sv, _, err := c.GetOrDerive(base, aggregate.StopSpecies, m)
	if err != nil {
		t.Fatal(err)
	}
	both, hit, err := c.GetOrDerivePolicy(sv, plan.PolicyMaxPrune, m)
	if err != nil || hit {
		t.Fatalf("stop+policy GetOrDerivePolicy: hit=%v err=%v", hit, err)
	}
	if both == mp || both.Fingerprint() == mp.Fingerprint() {
		t.Error("stop+policy variant collided with the default-stop policy variant")
	}
	if both.StopName != aggregate.StopSpecies || both.PolicyName != plan.PolicyMaxPrune {
		t.Errorf("composed variant = (%s, %s)", both.StopName, both.PolicyName)
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d, want 4 (base, policy, stop, stop+policy)", c.Len())
	}
}
