package plan

import (
	"errors"
	"fmt"
	"strings"
)

// ErrUnknownPolicy is wrapped by every ordering-policy resolution failure
// (OrderingByName, PolicyByName, Plan.WithPolicy), so callers at any
// layer — the facade's option validation, the server's tenant boot — can
// errors.Is against one sentinel instead of matching message text.
var ErrUnknownPolicy = errors.New("plan: unknown ordering policy")

// unknownPolicy builds the canonical unknown-ordering error: the sentinel,
// the offending name, and the registry so the message is actionable.
func unknownPolicy(name string) error {
	return fmt.Errorf("%w %q (want one of %s)", ErrUnknownPolicy, name,
		strings.Join(OrderingNames(), ", "))
}
