package plan_test

import (
	"fmt"
	"testing"

	"oassis/internal/aggregate"
	"oassis/internal/assign"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/plan"
	"oassis/internal/synth"
)

// renderRun flattens a core result into one comparable string: every MSP
// and valid-MSP key in order plus the full statistics. Bit-identical runs
// render identically.
func renderRun(res *core.Result) string {
	out := ""
	for _, m := range res.MSPs {
		out += "msp: " + m.Key() + "\n"
	}
	for _, m := range res.ValidMSPs {
		out += "valid: " + m.Key() + "\n"
	}
	return out + fmt.Sprintf("stats: %+v\n", res.Stats)
}

func runMatrix(sp *assign.Space, members []crowd.Member, parallelism int) *core.Result {
	cfg := core.Config{
		Space:   sp,
		Theta:   0.2,
		Members: members,
		Agg:     aggregate.NewFixedSample(3),
	}
	if parallelism > 1 {
		res, _ := core.RunConcurrent(cfg, parallelism, 1)
		return res
	}
	return core.Run(cfg)
}

// TestPlannedExecutionEquivalence is the core half of the planner
// equivalence matrix: on the synthetic paper domains, executing over a
// space rebuilt from the compiled plan (plus a crowd resynthesized from
// the shared domain) is bit-identical to executing over the directly
// generated domain — at parallelism 1 and 8.
func TestPlannedExecutionEquivalence(t *testing.T) {
	travel := synth.DomainConfig{
		Name: "travel", YTerms: 30, XTerms: 10, YDepth: 4, XDepth: 3,
		Members: 8, Transactions: 12, Patterns: 6, Seed: 101,
	}
	culinary := synth.DomainConfig{
		Name: "culinary", YTerms: 24, XTerms: 12, YDepth: 4, XDepth: 3,
		Members: 8, Transactions: 12, Patterns: 8, Seed: 202,
	}
	for _, cfg := range []synth.DomainConfig{travel, culinary} {
		for _, par := range []int{1, 8} {
			name := fmt.Sprintf("%s/p%d", cfg.Name, par)

			// Seed behavior: the freshly generated domain, used directly.
			d1, err := synth.GenerateDomain(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := renderRun(runMatrix(d1.Sp, d1.Members, par))

			// Planned behavior: one shared domain, per-cell space and crowd
			// rebuilt from the compiled plan.
			d2, err := synth.GenerateDomain(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pl, err := d2.Plan(0.2)
			if err != nil {
				t.Fatal(err)
			}
			got := renderRun(runMatrix(pl.NewSpace(), d2.NewCrowd(), par))
			if got != want {
				t.Errorf("%s: planned execution differs from direct execution:\n--- direct\n%s--- planned\n%s",
					name, want, got)
			}

			// A second cell from the same plan is bit-identical again
			// (spaces and crowds are private; nothing leaked between runs).
			if again := renderRun(runMatrix(pl.NewSpace(), d2.NewCrowd(), par)); again != want {
				t.Errorf("%s: second planned cell drifted:\n--- first\n%s--- second\n%s", name, want, again)
			}
		}
	}
}

// TestPolicyThroughEngine wires every registered ordering through
// core.Config.Ordering: with deterministic (exact, order-insensitive)
// members, each traversal — tier-one comparators and tier-two selectors
// alike — must converge on the same MSP set as the paper's
// smallest-first order.
func TestPolicyThroughEngine(t *testing.T) {
	cfg := synth.DomainConfig{
		Name: "policy", YTerms: 16, XTerms: 8, YDepth: 3, XDepth: 2,
		Members: 1, Transactions: 16, Patterns: 4, Seed: 7,
	}
	run := func(ordering plan.Ordering) map[string]bool {
		d, err := synth.GenerateDomain(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Make the single member exact and deterministic so the mined MSP
		// set is a pure function of its history, not of question order.
		for _, m := range d.Members {
			m.(*crowd.SimMember).Disc = crowd.Exact
		}
		res := core.Run(core.Config{
			Space:    d.Sp,
			Theta:    0.2,
			Members:  d.Members,
			Ordering: ordering,
		})
		keys := make(map[string]bool, len(res.MSPs))
		for _, m := range res.MSPs {
			keys[m.Key()] = true
		}
		return keys
	}
	paper := run(nil) // nil means plan.PaperOrder{}
	if len(paper) == 0 {
		t.Fatal("paper-order run found no MSPs")
	}
	for _, name := range plan.OrderingNames() {
		ord, err := plan.OrderingByName(name)
		if err != nil {
			t.Fatal(err)
		}
		got := run(ord)
		if len(got) != len(paper) {
			t.Fatalf("%s: MSP counts differ: paper-order %d, %s %d",
				name, len(paper), name, len(got))
		}
		for k := range paper {
			if !got[k] {
				t.Errorf("%s missed MSP %s", name, k)
			}
		}
	}
}
