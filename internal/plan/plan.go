// Package plan is the planner of the parse → plan → execute pipeline: it
// compiles an oassisql AST together with a frozen vocabulary/ontology into
// an immutable, serializable Plan IR, so that sessions, servers and
// experiment grids execute precompiled plans instead of re-analyzing the
// query. A Plan carries the resolved mining variables, the resolved
// SATISFYING meta-fact-set (the pattern join tree after WHERE evaluation),
// the valid base assignments, the chosen question-ordering Policy and the
// mining Substrate, plus the fingerprint of the domain it was compiled
// against. Plans are content-addressed: Fingerprint is a SHA-256 over the
// canonical JSON serialization, and Cache keys plans on
// (query text, domain fingerprint).
package plan

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"oassis/internal/aggregate"
	"oassis/internal/assign"
	"oassis/internal/vocab"
)

// Plan is the immutable compiled form of one query over one domain.
// All fields are read-only after construction; concurrent sessions may
// share one Plan. Execution state (the assignment lattice, memo tables)
// lives in the per-session assign.Space built by NewSpace.
type Plan struct {
	// QueryText is the canonical concrete syntax of the compiled query
	// (oassisql.Query.String()), the first half of the cache key.
	QueryText string
	// Support is the significance threshold of the WITH SUPPORT clause.
	Support float64
	// All mirrors SELECT ... ALL: report all significant patterns, not
	// only the maximal ones.
	All bool
	// More records whether the SATISFYING clause requested MORE facts.
	More bool
	// Vars are the resolved mining variables in SATISFYING-occurrence
	// order, with multiplicities, kinds and generalization anchors.
	Vars []assign.VarSpec
	// Sat is the resolved SATISFYING meta-fact-set.
	Sat []assign.Meta
	// ValidBase holds the valid multiplicity-1 assignments from WHERE
	// evaluation, in canonical (sorted key) order.
	ValidBase [][]vocab.Term
	// PolicyName names the question-ordering Ordering the plan runs with
	// (see OrderingByName). It is part of the serialized IR and hence the
	// fingerprint: an ordering variant is a distinct plan, so plan caches
	// and the WAL's drift detection keep runs with different orderings
	// apart.
	PolicyName string
	// SubstrateName names the mining Substrate chosen by the planner
	// (see SubstrateByName).
	SubstrateName string
	// StopName names the streaming stop-condition policy the plan runs
	// with (see aggregate.StopByName). It is part of the serialized IR
	// and hence the fingerprint: a stop-policy variant is a distinct
	// plan, so plan caches and the WAL's drift detection keep runs with
	// different stopping rules apart.
	StopName string
	// DomainFP is the fingerprint of the domain (vocabulary + ontology)
	// the plan was compiled against, the second half of the cache key.
	DomainFP string

	voc *vocab.Vocabulary
	tab *assign.Tables // frozen lattice tables, shared by every session
	js  []byte         // canonical JSON serialization
	fp  string         // sha256 over js
}

// newPlan finalizes a Plan: it serializes the IR once, derives the content
// address from the serialization, and precomputes the read-only lattice
// tables every session of this plan shares (tab may be passed in when the
// caller already computed them; nil builds them here).
func newPlan(p *Plan, voc *vocab.Vocabulary, tab *assign.Tables) (*Plan, error) {
	p.voc = voc
	if tab == nil {
		tab = assign.NewTables(voc, p.Vars, p.ValidBase)
	}
	p.tab = tab
	js, err := marshal(p)
	if err != nil {
		return nil, err
	}
	p.js = js
	p.fp = fmt.Sprintf("sha256:%x", sha256.Sum256(js))
	return p, nil
}

// Vocabulary returns the frozen vocabulary the plan resolves terms in.
func (p *Plan) Vocabulary() *vocab.Vocabulary { return p.voc }

// Fingerprint returns the plan's content address: "sha256:" followed by
// the hex digest of the canonical JSON serialization. Equal fingerprints
// mean equal plans (same query over the same domain).
func (p *Plan) Fingerprint() string { return p.fp }

// MarshalJSON returns the canonical serialization of the IR, with all
// terms resolved to their vocabulary names so the output is reviewable
// (golden files, the server's /plans route) without the interning table.
func (p *Plan) MarshalJSON() ([]byte, error) {
	out := make([]byte, len(p.js))
	copy(out, p.js)
	return out, nil
}

// NewSpace builds a fresh per-session assign.Space from the compiled
// parts. The immutable slices and the precomputed lattice tables are shared
// with the plan (and probed lock-free by concurrent sessions); the mutable
// memo structures are rebuilt, so the Space is private to its session. The
// rebuild preserves the canonical ValidBase order, which makes planned
// execution bit-identical to compiling the query from scratch.
func (p *Plan) NewSpace() *assign.Space {
	return assign.FromShared(p.voc, p.Vars, p.Sat, p.More, p.ValidBase, p.tab)
}

// Ordering resolves the plan's question ordering (either tier of the
// seam: a tier-one comparator Policy or a tier-two SelectorOrdering).
func (p *Plan) Ordering() (Ordering, error) { return OrderingByName(p.PolicyName) }

// Substrate resolves the plan's mining substrate.
func (p *Plan) Substrate() (Substrate, error) { return SubstrateByName(p.SubstrateName) }

// NewStop instantiates the plan's stop policy with default parameters.
// Policies carry per-run streaming state, so every session gets a fresh
// instance.
func (p *Plan) NewStop() (aggregate.StopPolicy, error) {
	return aggregate.StopByName(p.StopName)
}

// WithStop derives the stop-policy variant of p: the same query over the
// same domain with the same precompiled tables, differing only in
// StopName — and therefore in serialization and fingerprint. Deriving
// the plan's own stop name returns p itself.
func (p *Plan) WithStop(name string) (*Plan, error) {
	if name == "" {
		name = StopDefault
	}
	if _, err := aggregate.StopByName(name); err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	if name == p.StopName {
		return p, nil
	}
	q := *p
	q.StopName = name
	return newPlan(&q, p.voc, p.tab)
}

// WithPolicy derives the ordering variant of p: the same query over the
// same domain with the same precompiled tables, differing only in
// PolicyName — and therefore in serialization and fingerprint. Deriving
// the plan's own ordering returns p itself.
func (p *Plan) WithPolicy(name string) (*Plan, error) {
	if name == "" {
		name = PolicyPaperOrder
	}
	if _, err := OrderingByName(name); err != nil {
		return nil, err
	}
	if name == p.PolicyName {
		return p, nil
	}
	q := *p
	q.PolicyName = name
	return newPlan(&q, p.voc, p.tab)
}

// StopDefault is the planner's default stop policy: the paper's
// ask-until-settled threshold behavior.
const StopDefault = aggregate.StopThreshold

// planJSON is the serialized shape of the IR. Field order is fixed and
// encoding/json is deterministic over it, so the serialization doubles as
// the input of the content address.
type planJSON struct {
	Query     string     `json:"query"`
	Support   float64    `json:"support"`
	All       bool       `json:"select_all"`
	More      bool       `json:"more"`
	Domain    string     `json:"domain"`
	Policy    string     `json:"policy"`
	Substrate string     `json:"substrate"`
	Stop      string     `json:"stop"`
	Vars      []varJSON  `json:"vars"`
	Sat       []satJSON  `json:"sat"`
	ValidBase [][]string `json:"valid_base"`
}

type varJSON struct {
	Name    string   `json:"name"`
	Mult    string   `json:"mult"`
	Kind    string   `json:"kind"`
	Anchors []string `json:"anchors,omitempty"`
}

type satJSON struct {
	S string `json:"s"`
	R string `json:"r"`
	O string `json:"o"`
}

// compName renders one meta-fact component with terms resolved to names.
func compName(p *Plan, c assign.Comp) string {
	if c.Var >= 0 {
		return "$" + p.Vars[c.Var].Name
	}
	if c.Term == vocab.Any {
		return "[]"
	}
	return p.voc.Name(c.Term)
}

func marshal(p *Plan) ([]byte, error) {
	j := planJSON{
		Query:     p.QueryText,
		Support:   p.Support,
		All:       p.All,
		More:      p.More,
		Domain:    p.DomainFP,
		Policy:    p.PolicyName,
		Substrate: p.SubstrateName,
		Stop:      p.StopName,
		Vars:      []varJSON{},
		Sat:       []satJSON{},
		ValidBase: [][]string{},
	}
	for _, v := range p.Vars {
		mult := v.Mult.Marker()
		if mult == "" {
			mult = "1"
		}
		j.Vars = append(j.Vars, varJSON{
			Name:    v.Name,
			Mult:    mult,
			Kind:    v.Kind.String(),
			Anchors: p.voc.Names(v.Anchors),
		})
	}
	for _, m := range p.Sat {
		j.Sat = append(j.Sat, satJSON{
			S: compName(p, m.S),
			R: compName(p, m.R),
			O: compName(p, m.O),
		})
	}
	for _, row := range p.ValidBase {
		j.ValidBase = append(j.ValidBase, p.voc.Names(row))
	}
	return json.MarshalIndent(j, "", "  ")
}
