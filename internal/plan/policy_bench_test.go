package plan_test

import (
	"fmt"
	"testing"

	"oassis/internal/plan"
)

// benchView builds a deterministic n-candidate view with varied sizes,
// fringe counts and answer state, shaped like a mid-run engine pool.
func benchView(n int) fakeView {
	v := fakeView{theta: 0.2}
	for i := 0; i < n; i++ {
		c := fakeCand{
			key:  fmt.Sprintf("k%04d", i),
			size: 1 + i%5,
			down: i % 7,
			up:   (i * 3) % 11,
		}
		if i%3 == 0 {
			c.answers = 1 + i%4
			c.mean = float64(i%10) / 10
		}
		v.cands = append(v.cands, c)
	}
	return v
}

// BenchmarkPolicyBetter measures one tier-one comparison — the unit the
// engine pays once per candidate per pick.
func BenchmarkPolicyBetter(b *testing.B) {
	for _, p := range []plan.Policy{plan.PaperOrder{}, plan.LargestFirst{}} {
		b.Run(p.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.Better("aaaa", 2, "bbbb", 3)
			}
		})
	}
}

// BenchmarkSelectorSelect measures one tier-two pick over a 256-candidate
// view — the unit the engine pays once per question under a selector
// ordering.
func BenchmarkSelectorSelect(b *testing.B) {
	v := benchView(256)
	for _, o := range []plan.SelectorOrdering{plan.ChainPrune{}, plan.MaxPrune{}} {
		b.Run(o.Name(), func(b *testing.B) {
			sel := o.NewSelector()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sel.Select(v)
			}
		})
	}
}
