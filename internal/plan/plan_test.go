package plan_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"oassis/internal/assign"
	"oassis/internal/fact"
	"oassis/internal/itemset"
	"oassis/internal/oassisql"
	"oassis/internal/obs"
	"oassis/internal/ontology"
	"oassis/internal/plan"
	"oassis/internal/vocab"
)

// captureDomain builds the flat §4.1 itemset-capture domain: items as
// elements, one relation, and the query `$x+ [] []` with an empty WHERE.
func captureDomain(t *testing.T, items int) (*vocab.Vocabulary, *ontology.Ontology, *oassisql.Query) {
	t.Helper()
	v := vocab.New()
	for i := 0; i < items; i++ {
		v.MustAddElement(fmt.Sprintf("item%02d", i))
	}
	v.MustAddRelation("has")
	v.MustAddElement("basket")
	if err := v.Freeze(); err != nil {
		t.Fatal(err)
	}
	q := &oassisql.Query{
		Select:  oassisql.SelectFactSets,
		Support: 0.25,
		Satisfying: []oassisql.Pattern{{
			S:     oassisql.Var("x"),
			SMult: oassisql.MultPlus,
			R:     oassisql.Atom{Kind: oassisql.AtomAny},
			O:     oassisql.Atom{Kind: oassisql.AtomAny},
			OMult: oassisql.MultOne,
		}},
	}
	return v, ontology.New(v), q
}

func TestPolicyOrder(t *testing.T) {
	po := plan.PaperOrder{}
	if po.Name() != plan.PolicyPaperOrder {
		t.Errorf("PaperOrder.Name() = %q", po.Name())
	}
	// Smallest size first, key ascending on ties — the §4 traversal order.
	for _, c := range []struct {
		aKey  string
		aSize int
		bKey  string
		bSize int
		want  bool
	}{
		{"z", 1, "a", 2, true},
		{"a", 2, "z", 1, false},
		{"a", 2, "b", 2, true},
		{"b", 2, "a", 2, false},
		{"a", 2, "a", 2, false},
	} {
		if got := po.Better(c.aKey, c.aSize, c.bKey, c.bSize); got != c.want {
			t.Errorf("PaperOrder.Better(%q,%d,%q,%d) = %v, want %v",
				c.aKey, c.aSize, c.bKey, c.bSize, got, c.want)
		}
	}

	lf := plan.LargestFirst{}
	if lf.Name() != plan.PolicyLargestFirst {
		t.Errorf("LargestFirst.Name() = %q", lf.Name())
	}
	for _, c := range []struct {
		aKey  string
		aSize int
		bKey  string
		bSize int
		want  bool
	}{
		{"z", 2, "a", 1, true},
		{"a", 1, "z", 2, false},
		{"a", 2, "b", 2, true},
		{"b", 2, "a", 2, false},
	} {
		if got := lf.Better(c.aKey, c.aSize, c.bKey, c.bSize); got != c.want {
			t.Errorf("LargestFirst.Better(%q,%d,%q,%d) = %v, want %v",
				c.aKey, c.aSize, c.bKey, c.bSize, got, c.want)
		}
	}

	if p, err := plan.PolicyByName(""); err != nil || p.Name() != plan.PolicyPaperOrder {
		t.Errorf("PolicyByName(\"\") = %v, %v", p, err)
	}
	if p, err := plan.PolicyByName(plan.PolicyLargestFirst); err != nil || p.Name() != plan.PolicyLargestFirst {
		t.Errorf("PolicyByName(largest-first) = %v, %v", p, err)
	}
	if _, err := plan.PolicyByName("nope"); err == nil {
		t.Error("PolicyByName accepted an unknown policy")
	}
}

// randomDB builds a deterministic random transaction database.
func randomDB(seed int64, transactions, items int) []itemset.Itemset {
	rng := rand.New(rand.NewSource(seed))
	db := make([]itemset.Itemset, transactions)
	for t := range db {
		n := 1 + rng.Intn(4)
		var tx itemset.Itemset
		for j := 0; j < n; j++ {
			tx = append(tx, rng.Intn(items))
		}
		db[t] = tx
	}
	return db
}

// TestSubstratePairity: the assoc substrate (the SIGMOD'13 black box run
// noiselessly) must return bit-identical maximal frequent itemsets to the
// classic Apriori substrate, on arbitrary databases and thresholds.
func TestSubstrateParity(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		db := randomDB(seed, 40, 8)
		for _, theta := range []float64{0.1, 0.2, 1.0 / 3.0, 0.5} {
			want := plan.ItemsetSubstrate{}.MineMaximal(db, theta)
			for _, users := range []int{0, 1, 5} {
				got := plan.AssocSubstrate{Users: users}.MineMaximal(db, theta)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("seed %d theta %g users %d: assoc %v != itemset %v",
						seed, theta, users, got, want)
				}
			}
		}
	}
}

func TestSubstrateByName(t *testing.T) {
	for name, want := range map[string]string{
		plan.SubstrateItemset: plan.SubstrateItemset,
		plan.SubstrateAssoc:   plan.SubstrateAssoc,
		"":                    plan.SubstrateAssoc,
	} {
		s, err := plan.SubstrateByName(name)
		if err != nil || s.Name() != want {
			t.Errorf("SubstrateByName(%q) = %v, %v; want %s", name, s, err, want)
		}
	}
	if _, err := plan.SubstrateByName("nope"); err == nil {
		t.Error("SubstrateByName accepted an unknown substrate")
	}
}

func TestDomainFingerprint(t *testing.T) {
	build := func(extra bool) (*vocab.Vocabulary, *ontology.Ontology) {
		v := vocab.New()
		a := v.MustAddElement("a")
		b := v.MustAddElement("b")
		r := v.MustAddRelation("r")
		if err := v.Freeze(); err != nil {
			t.Fatal(err)
		}
		o := ontology.New(v)
		o.MustAdd(fact.Fact{S: a, R: r, O: b})
		if extra {
			o.MustAdd(fact.Fact{S: b, R: r, O: a})
		}
		return v, o
	}
	v1, o1 := build(false)
	v2, o2 := build(false)
	fp1, fp2 := plan.DomainFingerprint(v1, o1), plan.DomainFingerprint(v2, o2)
	if fp1 != fp2 {
		t.Errorf("identical domains fingerprint differently: %s vs %s", fp1, fp2)
	}
	if !strings.HasPrefix(fp1, "sha256:") {
		t.Errorf("fingerprint %q lacks scheme prefix", fp1)
	}
	v3, o3 := build(true)
	if fp3 := plan.DomainFingerprint(v3, o3); fp3 == fp1 {
		t.Error("ontology drift did not change the fingerprint")
	}
	if fpNil := plan.DomainFingerprint(v1, nil); fpNil == fp1 || !strings.HasPrefix(fpNil, "sha256:") {
		t.Errorf("nil-ontology fingerprint %q", fpNil)
	}
}

func TestCompile(t *testing.T) {
	v, o, q := captureDomain(t, 6)
	fp := plan.DomainFingerprint(v, o)
	pl, err := plan.Compile(v, o, q, fp)
	if err != nil {
		t.Fatal(err)
	}
	if pl.PolicyName != plan.PolicyPaperOrder {
		t.Errorf("policy = %q", pl.PolicyName)
	}
	// Empty WHERE is the §4.1 itemset-capture form: classic substrate.
	if pl.SubstrateName != plan.SubstrateItemset {
		t.Errorf("substrate = %q, want %q", pl.SubstrateName, plan.SubstrateItemset)
	}
	if pl.DomainFP != fp {
		t.Errorf("domain fp = %q, want %q", pl.DomainFP, fp)
	}
	if !strings.HasPrefix(pl.Fingerprint(), "sha256:") {
		t.Errorf("fingerprint %q", pl.Fingerprint())
	}
	if pl.Vocabulary() != v {
		t.Error("plan lost its vocabulary")
	}

	// Compiling the same query twice yields the same content address.
	pl2, err := plan.Compile(v, o, q, fp)
	if err != nil {
		t.Fatal(err)
	}
	if pl2.Fingerprint() != pl.Fingerprint() {
		t.Errorf("recompile changed fingerprint: %s vs %s", pl2.Fingerprint(), pl.Fingerprint())
	}

	// The serialized IR is canonical JSON with resolved names.
	js, err := json.Marshal(pl)
	if err != nil {
		t.Fatal(err)
	}
	var ir map[string]interface{}
	if err := json.Unmarshal(js, &ir); err != nil {
		t.Fatalf("plan IR is not valid JSON: %v", err)
	}
	for _, key := range []string{"query", "support", "domain", "policy", "substrate", "vars", "sat", "valid_base"} {
		if _, ok := ir[key]; !ok {
			t.Errorf("plan IR missing %q:\n%s", key, js)
		}
	}

	// An unfrozen vocabulary cannot be planned against.
	if _, err := plan.Compile(vocab.New(), nil, q, "x"); err == nil {
		t.Error("Compile accepted an unfrozen vocabulary")
	}
}

// TestNewSpaceEquivalence: the space rebuilt from a plan's frozen parts
// must match the directly constructed space in every exported part.
func TestNewSpaceEquivalence(t *testing.T) {
	v, o, q := captureDomain(t, 6)
	direct, err := assign.NewSpace(v, q, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.Compile(v, o, q, plan.DomainFingerprint(v, o))
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := pl.NewSpace()
	if rebuilt.Voc != direct.Voc {
		t.Error("vocabulary differs")
	}
	if !reflect.DeepEqual(rebuilt.Vars, direct.Vars) {
		t.Errorf("Vars differ: %+v vs %+v", rebuilt.Vars, direct.Vars)
	}
	if !reflect.DeepEqual(rebuilt.Sat, direct.Sat) {
		t.Errorf("Sat differs: %+v vs %+v", rebuilt.Sat, direct.Sat)
	}
	if !reflect.DeepEqual(rebuilt.ValidBase, direct.ValidBase) {
		t.Errorf("ValidBase differs: %v vs %v", rebuilt.ValidBase, direct.ValidBase)
	}
	if rebuilt.More != direct.More {
		t.Error("More differs")
	}
	// Two spaces from one plan must not share mutable state.
	if pl.NewSpace() == rebuilt {
		t.Error("NewSpace returned a shared space")
	}
}

func TestCache(t *testing.T) {
	v, o, q := captureDomain(t, 6)
	fp := plan.DomainFingerprint(v, o)
	c := plan.NewCache()
	m := plan.NewCacheMetrics(obs.NewRegistry())

	compiles := 0
	compile := func() (*plan.Plan, error) {
		compiles++
		return plan.Compile(v, o, q, fp)
	}
	p1, hit, err := c.GetOrCompile(q.String(), fp, m, compile)
	if err != nil || hit {
		t.Fatalf("first GetOrCompile: hit=%v err=%v", hit, err)
	}
	p2, hit, err := c.GetOrCompile(q.String(), fp, m, compile)
	if err != nil || !hit {
		t.Fatalf("second GetOrCompile: hit=%v err=%v", hit, err)
	}
	if p1 != p2 {
		t.Error("cache hit returned a different plan pointer")
	}
	if compiles != 1 {
		t.Errorf("compiled %d times, want 1", compiles)
	}
	if m.Hits() != 1 || m.Misses() != 1 {
		t.Errorf("metrics: hits=%v misses=%v, want 1/1", m.Hits(), m.Misses())
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}

	// A different domain fingerprint is a different cache entry.
	p3, hit, err := c.GetOrCompile(q.String(), "sha256:other", m, compile)
	if err != nil || hit {
		t.Fatalf("drifted-domain GetOrCompile: hit=%v err=%v", hit, err)
	}
	if p3 == p1 {
		t.Error("different domain reused the cached plan")
	}
	if got, ok := c.Get(q.String(), fp); !ok || got != p1 {
		t.Errorf("Get = %v, %v", got, ok)
	}
	if plans := c.Plans(); len(plans) != 2 {
		t.Errorf("Plans() returned %d entries", len(plans))
	}

	// A nil *CacheMetrics is fine (metrics are optional everywhere).
	if _, _, err := c.GetOrCompile(q.String(), fp, nil, compile); err != nil {
		t.Fatal(err)
	}
	var nilM *plan.CacheMetrics
	if nilM.Hits() != 0 || nilM.Misses() != 0 {
		t.Error("nil CacheMetrics reads nonzero")
	}
}
