package plan

import (
	"sort"
	"sync"
	"time"

	"oassis/internal/obs"
)

// Cache is a content-addressed plan cache: plans are keyed on the pair
// (canonical query text, domain fingerprint), so the same query over the
// same domain compiles exactly once and every later execution reuses the
// same *Plan pointer — the cache-hit path allocates nothing. A Cache is
// safe for concurrent use; the server shares one per domain across all
// sessions.
type Cache struct {
	mu sync.Mutex
	m  map[cacheKey]*Plan
}

type cacheKey struct {
	query  string
	domain string
	// stop and policy are the variant dimensions of derived plans; the
	// empty string is the planner's as-compiled default in each, so
	// existing (query, domain) lookups are untouched by derivations.
	stop   string
	policy string
}

// stopDim normalizes a plan's StopName to its cache-key dimension: the
// planner's default collapses to the empty string, matching the key the
// as-compiled plan was stored under.
func stopDim(name string) string {
	if name == StopDefault {
		return ""
	}
	return name
}

// policyDim normalizes a plan's PolicyName to its cache-key dimension.
func policyDim(name string) string {
	if name == PolicyPaperOrder {
		return ""
	}
	return name
}

// NewCache returns an empty plan cache.
func NewCache() *Cache {
	return &Cache{m: make(map[cacheKey]*Plan)}
}

// Get returns the cached plan for (queryText, domainFP), if any.
func (c *Cache) Get(queryText, domainFP string) (*Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.m[cacheKey{query: queryText, domain: domainFP}]
	return p, ok
}

// GetOrCompile returns the cached plan for (queryText, domainFP), or
// runs compile and caches its result. The boolean reports a cache hit.
// Compilation happens under the cache lock, so concurrent sessions
// racing on a cold key compile once, not once each. Metrics (hit/miss
// counters and compile latency) are recorded on m; a nil m records
// nothing.
func (c *Cache) GetOrCompile(queryText, domainFP string, m *CacheMetrics,
	compile func() (*Plan, error)) (*Plan, bool, error) {

	k := cacheKey{query: queryText, domain: domainFP}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.m[k]; ok {
		m.hit()
		return p, true, nil
	}
	start := time.Now()
	p, err := compile()
	if err != nil {
		return nil, false, err
	}
	m.miss(time.Since(start))
	c.m[k] = p
	return p, false, nil
}

// GetOrDerive returns the cached stop-policy variant of base, deriving
// and caching it on first use (Plan.WithStop shares the base plan's
// precompiled tables, so a derivation is a re-serialization, not a
// recompilation). Asking for base's own stop policy — or the empty
// default — returns base as a hit. Like GetOrCompile, concurrent
// sessions racing on a cold variant derive once.
func (c *Cache) GetOrDerive(base *Plan, stop string, m *CacheMetrics) (*Plan, bool, error) {
	if stop == "" || stop == base.StopName {
		return base, true, nil
	}
	k := cacheKey{query: base.QueryText, domain: base.DomainFP,
		stop: stop, policy: policyDim(base.PolicyName)}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.m[k]; ok {
		m.hit()
		return p, true, nil
	}
	start := time.Now()
	p, err := base.WithStop(stop)
	if err != nil {
		return nil, false, err
	}
	m.miss(time.Since(start))
	c.m[k] = p
	return p, false, nil
}

// GetOrDerivePolicy returns the cached ordering variant of base,
// deriving and caching it on first use (Plan.WithPolicy shares the base
// plan's precompiled tables, so a derivation is a re-serialization, not
// a recompilation). Asking for base's own ordering — or the empty
// default — returns base as a hit. The key keeps base's stop dimension,
// so variants compose: the chain-prune variant of a species-stop plan
// never collides with the chain-prune variant of the default plan.
func (c *Cache) GetOrDerivePolicy(base *Plan, policy string, m *CacheMetrics) (*Plan, bool, error) {
	if policy == "" || policy == base.PolicyName {
		return base, true, nil
	}
	k := cacheKey{query: base.QueryText, domain: base.DomainFP,
		stop: stopDim(base.StopName), policy: policy}
	c.mu.Lock()
	defer c.mu.Unlock()
	if p, ok := c.m[k]; ok {
		m.hit()
		return p, true, nil
	}
	start := time.Now()
	p, err := base.WithPolicy(policy)
	if err != nil {
		return nil, false, err
	}
	m.miss(time.Since(start))
	c.m[k] = p
	return p, false, nil
}

// Len returns the number of cached plans.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Plans returns the cached plans sorted by (query text, domain
// fingerprint), for introspection routes and reports.
func (c *Cache) Plans() []*Plan {
	c.mu.Lock()
	keys := make([]cacheKey, 0, len(c.m))
	for k := range c.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].query != keys[j].query {
			return keys[i].query < keys[j].query
		}
		if keys[i].domain != keys[j].domain {
			return keys[i].domain < keys[j].domain
		}
		if keys[i].stop != keys[j].stop {
			return keys[i].stop < keys[j].stop
		}
		return keys[i].policy < keys[j].policy
	})
	out := make([]*Plan, len(keys))
	for i, k := range keys {
		out[i] = c.m[k]
	}
	c.mu.Unlock()
	return out
}

// CacheMetrics bundles the planner instruments: cache hits, misses and
// compile latency. Attach one per registry via NewCacheMetrics; all
// methods are nil-safe, so an unmetered cache costs nothing.
type CacheMetrics struct {
	hits    *obs.Counter
	misses  *obs.Counter
	compile *obs.Histogram
}

// NewCacheMetrics registers the planner instruments on r.
func NewCacheMetrics(r *obs.Registry) *CacheMetrics {
	return &CacheMetrics{
		hits: r.Counter("oassis_plan_cache_hits_total",
			"plan-cache lookups answered with an already-compiled plan"),
		misses: r.Counter("oassis_plan_cache_misses_total",
			"plan-cache lookups that compiled a new plan"),
		compile: r.Histogram("oassis_plan_compile_seconds",
			"seconds spent compiling a query into a plan (cache misses only)", nil),
	}
}

// Hits returns the hit-counter value (0 for a nil receiver).
func (m *CacheMetrics) Hits() uint64 {
	if m == nil {
		return 0
	}
	return m.hits.Value()
}

// Misses returns the miss-counter value (0 for a nil receiver).
func (m *CacheMetrics) Misses() uint64 {
	if m == nil {
		return 0
	}
	return m.misses.Value()
}

func (m *CacheMetrics) hit() {
	if m == nil {
		return
	}
	m.hits.Inc()
}

func (m *CacheMetrics) miss(d time.Duration) {
	if m == nil {
		return
	}
	m.misses.Inc()
	m.compile.Observe(d.Seconds())
}
