package plan

import (
	"fmt"
	"sort"

	"oassis/internal/assoc"
	"oassis/internal/itemset"
)

// Substrate is the mining black box behind the planner: given a
// transaction database and a support threshold it returns the maximal
// frequent itemsets. The two substrates of the paper — classic Apriori
// (internal/itemset, references [1]/[28]) and the SIGMOD'13 crowd
// association-rule framework (internal/assoc, reference [3]) — implement
// it, so experiments and ground-truth checks can swap black boxes without
// knowing which one the planner picked.
type Substrate interface {
	// Name returns the registry name of the substrate.
	Name() string
	// MineMaximal returns the maximal itemsets with support ≥ theta,
	// sorted by (size, lexicographic).
	MineMaximal(db []itemset.Itemset, theta float64) []itemset.Support
}

// Registry names of the built-in substrates.
const (
	SubstrateItemset = "itemset"
	SubstrateAssoc   = "assoc"
)

// ItemsetSubstrate mines with the classic levelwise Apriori algorithm
// followed by the maximal filter.
type ItemsetSubstrate struct{}

// Name implements Substrate.
func (ItemsetSubstrate) Name() string { return SubstrateItemset }

// MineMaximal implements Substrate via itemset.Apriori + itemset.Maximal.
func (ItemsetSubstrate) MineMaximal(db []itemset.Itemset, theta float64) []itemset.Support {
	return itemset.Maximal(itemset.Apriori(db, theta))
}

// AssocSubstrate mines through the crowd association-rule black box: it
// generates candidates levelwise like Apriori, but estimates each
// candidate's support by asking simulated crowd users closed questions
// with an empty antecedent ("how often do you do all of X?" — an
// assoc.User answers Closed(∅, X) with the plain support of X). Users
// hold the full transaction database and answer noiselessly, so the
// estimate is exact and the substrate returns precisely the itemset
// substrate's answer — the parity the equivalence tests pin down.
type AssocSubstrate struct {
	// Users is the size of the simulated crowd each support estimate is
	// averaged over; 0 means 3.
	Users int
}

// Name implements Substrate.
func (AssocSubstrate) Name() string { return SubstrateAssoc }

// MineMaximal implements Substrate.
func (s AssocSubstrate) MineMaximal(db []itemset.Itemset, theta float64) []itemset.Support {
	if len(db) == 0 || theta <= 0 {
		return nil
	}
	n := s.Users
	if n <= 0 {
		n = 3
	}
	users := make([]assoc.User, n)
	for i := range users {
		users[i] = &assoc.SimUser{Name: fmt.Sprintf("substrate-u%02d", i), DB: db}
	}
	// A unanimous crowd's consensus is the answer itself, so the exactness
	// of the users carries through without a lossy mean division; only a
	// split crowd (noisy users) falls back to the sample mean.
	support := func(c itemset.Itemset) float64 {
		first := users[0].Closed(nil, c).Support
		sum, unanimous := first, true
		for _, u := range users[1:] {
			a := u.Closed(nil, c).Support
			if a != first {
				unanimous = false
			}
			sum += a
		}
		if unanimous {
			return first
		}
		return sum / float64(n)
	}

	// Item universe, in sorted order like Apriori's level 1.
	itemSet := map[int]struct{}{}
	for _, t := range db {
		for _, it := range t {
			itemSet[it] = struct{}{}
		}
	}
	items := make([]int, 0, len(itemSet))
	for it := range itemSet {
		items = append(items, it)
	}
	sort.Ints(items)

	var frequent []itemset.Support
	var level []itemset.Itemset
	for _, it := range items {
		c := itemset.Itemset{it}
		if sup := support(c); sup >= theta {
			frequent = append(frequent, itemset.Support{Items: c, Support: sup})
			level = append(level, c)
		}
	}
	// Levels k ≥ 2: join equal-prefix pairs, prune non-frequent subsets,
	// ask the crowd about the survivors.
	for len(level) > 0 {
		freq := map[string]struct{}{}
		for _, c := range level {
			freq[key(c)] = struct{}{}
		}
		candSet := map[string]itemset.Itemset{}
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				a, b := level[i], level[j]
				if !joinable(a, b) {
					continue
				}
				c := append(append(itemset.Itemset(nil), a...), b[len(b)-1])
				sort.Ints(c)
				if !allSubsetsFrequent(c, freq) {
					continue
				}
				candSet[key(c)] = c
			}
		}
		keys := make([]string, 0, len(candSet))
		for k := range candSet {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var next []itemset.Itemset
		for _, k := range keys {
			c := candSet[k]
			if sup := support(c); sup >= theta {
				frequent = append(frequent, itemset.Support{Items: c, Support: sup})
				next = append(next, c)
			}
		}
		level = next
	}
	sort.Slice(frequent, func(i, j int) bool {
		if len(frequent[i].Items) != len(frequent[j].Items) {
			return len(frequent[i].Items) < len(frequent[j].Items)
		}
		return lexLess(frequent[i].Items, frequent[j].Items)
	})
	return itemset.Maximal(frequent)
}

func key(s itemset.Itemset) string {
	b := make([]byte, 0, len(s)*4)
	for _, it := range s {
		b = append(b, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return string(b)
}

// joinable implements the Apriori join condition: equal prefixes,
// differing last items.
func joinable(a, b itemset.Itemset) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return a[len(a)-1] != b[len(b)-1]
}

func allSubsetsFrequent(c itemset.Itemset, freq map[string]struct{}) bool {
	tmp := make(itemset.Itemset, len(c)-1)
	for drop := range c {
		copy(tmp, c[:drop])
		copy(tmp[drop:], c[drop+1:])
		if _, ok := freq[key(tmp)]; !ok {
			return false
		}
	}
	return true
}

func lexLess(a, b itemset.Itemset) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// SubstrateByName resolves a registry name to its Substrate.
func SubstrateByName(name string) (Substrate, error) {
	switch name {
	case SubstrateItemset:
		return ItemsetSubstrate{}, nil
	case SubstrateAssoc, "":
		return AssocSubstrate{}, nil
	}
	return nil, fmt.Errorf("plan: unknown substrate %q", name)
}
