// Package fact implements facts and fact-sets over a vocabulary
// (Definition 2.2 of the paper) together with their semantic partial order
// (Definition 2.5): a fact f = ⟨e1, r, e2⟩ is more general than f' iff each
// component is more general, and a fact-set A is more general than B iff
// every fact of A has a more specific counterpart in B. A transaction T
// implies a fact-set A when A ≤ T.
package fact

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"oassis/internal/vocab"
)

// Fact is a triple ⟨Subject, Rel, Object⟩ ∈ E × R × E.
type Fact struct {
	S vocab.Term // subject element
	R vocab.Term // relation
	O vocab.Term // object element
}

// Less orders facts lexicographically by (S, R, O); it is used only for
// canonical sorting and has no semantic meaning.
func (f Fact) Less(g Fact) bool {
	if f.S != g.S {
		return f.S < g.S
	}
	if f.R != g.R {
		return f.R < g.R
	}
	return f.O < g.O
}

// Format renders the fact in the paper's RDF-like notation using v's names.
// The wildcard vocab.Any prints as [].
func (f Fact) Format(v *vocab.Vocabulary) string {
	name := func(t vocab.Term) string {
		if t == vocab.Any {
			return "[]"
		}
		return v.Name(t)
	}
	return fmt.Sprintf("%s %s %s", name(f.S), name(f.R), name(f.O))
}

// Leq reports whether f ≤ g under v, i.e. f is a (not necessarily proper)
// generalization of g.
func Leq(v *vocab.Vocabulary, f, g Fact) bool {
	return v.Leq(f.S, g.S) && v.Leq(f.R, g.R) && v.Leq(f.O, g.O)
}

// Set is a fact-set. The exported operations treat it as a set; the
// canonical representation (see Canon) is sorted and duplicate-free.
type Set []Fact

// Clone returns a copy of s.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// Canon returns the canonical representation of s: sorted by (S, R, O) with
// duplicates removed. The receiver is not modified.
func (s Set) Canon() Set {
	out := s.Clone()
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	w := 0
	for i, f := range out {
		if i > 0 && f == out[w-1] {
			continue
		}
		out[w] = f
		w++
	}
	return out[:w]
}

// Contains reports whether s contains exactly f.
func (s Set) Contains(f Fact) bool {
	for _, g := range s {
		if g == f {
			return true
		}
	}
	return false
}

// Union returns the canonical union of s and t.
func (s Set) Union(t Set) Set {
	return append(s.Clone(), t...).Canon()
}

// Equal reports whether s and t contain the same facts.
func (s Set) Equal(t Set) bool {
	a, b := s.Canon(), t.Canon()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// SetLeq reports whether a ≤ b under v: every fact of a has a more specific
// counterpart in b (Definition 2.5).
func SetLeq(v *vocab.Vocabulary, a, b Set) bool {
	for _, f := range a {
		found := false
		for _, g := range b {
			if Leq(v, f, g) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Implies reports whether transaction t (viewed as a fact-set) implies a,
// i.e. a ≤ t.
func Implies(v *vocab.Vocabulary, t, a Set) bool { return SetLeq(v, a, t) }

// Reduce drops from s every fact that is a proper generalization of another
// fact in s (such facts are implied and thus redundant), returning a
// canonical set of the maximally specific facts.
func Reduce(v *vocab.Vocabulary, s Set) Set {
	c := s.Canon()
	var out Set
	for i, f := range c {
		redundant := false
		for j, g := range c {
			if i == j || f == g {
				continue
			}
			if Leq(v, f, g) {
				redundant = true
				break
			}
		}
		if !redundant {
			out = append(out, f)
		}
	}
	return out
}

// Key returns a compact byte-string key identifying the canonical form of s,
// suitable for use as a map key.
func (s Set) Key() string {
	c := s.Canon()
	buf := make([]byte, 0, len(c)*12)
	var tmp [4]byte
	for _, f := range c {
		for _, t := range [3]vocab.Term{f.S, f.R, f.O} {
			binary.LittleEndian.PutUint32(tmp[:], uint32(t))
			buf = append(buf, tmp[:]...)
		}
	}
	return string(buf)
}

// Format renders s in the paper's notation, facts joined by ". ".
func (s Set) Format(v *vocab.Vocabulary) string {
	parts := make([]string, len(s))
	for i, f := range s {
		parts[i] = f.Format(v)
	}
	return strings.Join(parts, ". ")
}
