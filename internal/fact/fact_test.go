package fact

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"oassis/internal/vocab"
)

// testVocab builds the fragment of Figure 1 used by the paper's running
// example, including the relation order nearBy ≤ inside.
func testVocab(t testing.TB) (*vocab.Vocabulary, map[string]vocab.Term) {
	t.Helper()
	v := vocab.New()
	m := make(map[string]vocab.Term)
	for _, n := range []string{
		"Activity", "Sport", "Biking", "Ball Game", "Basketball", "Baseball",
		"Place", "City", "NYC", "Park", "Central Park",
		"Food", "Falafel", "Maoz Veg", "Rent Bikes", "Boathouse",
	} {
		m[n] = v.MustAddElement(n)
	}
	for _, n := range []string{"doAt", "eatAt", "inside", "nearBy"} {
		m[n] = v.MustAddRelation(n)
	}
	order := [][2]string{
		{"Activity", "Sport"}, {"Sport", "Biking"}, {"Sport", "Ball Game"},
		{"Ball Game", "Basketball"}, {"Ball Game", "Baseball"},
		{"Place", "City"}, {"City", "NYC"},
		{"Place", "Park"}, {"Park", "Central Park"},
		{"Food", "Falafel"},
		// nearBy ≤ inside: inside is the more specific relation.
		{"nearBy", "inside"},
	}
	for _, e := range order {
		v.MustAddOrder(m[e[0]], m[e[1]])
	}
	if err := v.Freeze(); err != nil {
		t.Fatal(err)
	}
	return v, m
}

func TestFactLeqExample26(t *testing.T) {
	// Reproduces Example 2.6 of the paper.
	v, m := testVocab(t)
	f1 := Fact{m["Sport"], m["doAt"], m["Central Park"]}
	f2 := Fact{m["Biking"], m["doAt"], m["Central Park"]}
	f3 := Fact{m["Central Park"], m["inside"], m["NYC"]}
	f4 := Fact{m["Central Park"], m["nearBy"], m["NYC"]}
	if !Leq(v, f1, f2) {
		t.Error("f1 ≤ f2 expected (Sport ≤ Biking)")
	}
	if !Leq(v, f4, f3) {
		t.Error("f4 ≤ f3 expected (nearBy ≤ inside)")
	}
	if Leq(v, f3, f4) {
		t.Error("f3 ≤ f4 unexpected")
	}
	if !Leq(v, f1, f1) {
		t.Error("Leq not reflexive")
	}
	if Leq(v, f2, f1) {
		t.Error("f2 ≤ f1 unexpected")
	}
	if Leq(v, f1, f3) || Leq(v, f3, f1) {
		t.Error("f1 and f3 should be incomparable")
	}
}

func TestSetLeqAndImplies(t *testing.T) {
	v, m := testVocab(t)
	// T1 from Table 3.
	t1 := Set{
		{m["Basketball"], m["doAt"], m["Central Park"]},
		{m["Falafel"], m["eatAt"], m["Maoz Veg"]},
	}
	sportAtPark := Set{{m["Sport"], m["doAt"], m["Central Park"]}}
	if !SetLeq(v, sportAtPark, t1) {
		t.Error("Sport doAt Central Park should be implied by T1")
	}
	if !Implies(v, t1, sportAtPark) {
		t.Error("Implies should agree with SetLeq")
	}
	both := Set{
		{m["Activity"], m["doAt"], m["Central Park"]},
		{m["Food"], m["eatAt"], m["Maoz Veg"]},
	}
	if !SetLeq(v, both, t1) {
		t.Error("generalized pair should be implied by T1")
	}
	biking := Set{{m["Biking"], m["doAt"], m["Central Park"]}}
	if SetLeq(v, biking, t1) {
		t.Error("Biking doAt Central Park is not implied by T1")
	}
	if !SetLeq(v, nil, t1) {
		t.Error("empty set is implied by everything")
	}
}

func TestCanonAndEqual(t *testing.T) {
	v, m := testVocab(t)
	_ = v
	a := Fact{m["Biking"], m["doAt"], m["Central Park"]}
	b := Fact{m["Falafel"], m["eatAt"], m["Maoz Veg"]}
	s := Set{b, a, b, a}
	c := s.Canon()
	if len(c) != 2 {
		t.Fatalf("Canon len = %d, want 2", len(c))
	}
	if !c[0].Less(c[1]) {
		t.Error("Canon not sorted")
	}
	if !s.Equal(Set{a, b}) {
		t.Error("Equal failed on permuted duplicate set")
	}
	if s.Equal(Set{a}) {
		t.Error("Equal true on different sets")
	}
	if len(s) != 4 {
		t.Error("Canon modified receiver")
	}
	u := Set{a}.Union(Set{b, a})
	if len(u) != 2 {
		t.Errorf("Union = %d facts, want 2", len(u))
	}
	if !(Set{a, b}).Contains(a) || (Set{b}).Contains(a) {
		t.Error("Contains wrong")
	}
}

func TestReduce(t *testing.T) {
	v, m := testVocab(t)
	s := Set{
		{m["Sport"], m["doAt"], m["Central Park"]},
		{m["Biking"], m["doAt"], m["Central Park"]},
		{m["Falafel"], m["eatAt"], m["Maoz Veg"]},
	}
	r := Reduce(v, s)
	if len(r) != 2 {
		t.Fatalf("Reduce = %v", r.Format(v))
	}
	if !r.Contains(Fact{m["Biking"], m["doAt"], m["Central Park"]}) {
		t.Error("Reduce dropped the specific fact")
	}
	if r.Contains(Fact{m["Sport"], m["doAt"], m["Central Park"]}) {
		t.Error("Reduce kept the implied general fact")
	}
	// Equal duplicate facts must not annihilate each other.
	dup := Set{
		{m["Biking"], m["doAt"], m["Central Park"]},
		{m["Biking"], m["doAt"], m["Central Park"]},
	}
	if got := Reduce(v, dup); len(got) != 1 {
		t.Errorf("Reduce(dup) = %d facts, want 1", len(got))
	}
}

func TestKey(t *testing.T) {
	v, m := testVocab(t)
	_ = v
	a := Fact{m["Biking"], m["doAt"], m["Central Park"]}
	b := Fact{m["Falafel"], m["eatAt"], m["Maoz Veg"]}
	if (Set{a, b}).Key() != (Set{b, a}).Key() {
		t.Error("Key not order-independent")
	}
	if (Set{a}).Key() == (Set{b}).Key() {
		t.Error("Key collision on different sets")
	}
	if (Set{a, a}).Key() != (Set{a}).Key() {
		t.Error("Key not duplicate-invariant")
	}
}

func TestFormatAndParseRoundTrip(t *testing.T) {
	v, m := testVocab(t)
	s := Set{
		{m["Basketball"], m["doAt"], m["Central Park"]},
		{m["Falafel"], m["eatAt"], m["Maoz Veg"]},
	}.Canon()
	text := s.Format(v)
	if !strings.Contains(text, "Basketball doAt Central Park") {
		t.Fatalf("Format = %q", text)
	}
	back, err := Parse(v, text)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Fatalf("round trip: got %q", back.Format(v))
	}
}

func TestParseTable3(t *testing.T) {
	v, _ := testVocab(t)
	// T4 from Table 3 (multi-word names on both sides).
	s, err := Parse(v, "Baseball doAt Central Park. Biking doAt Central Park. "+
		"Rent Bikes doAt Boathouse. Falafel eatAt Maoz Veg")
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 4 {
		t.Fatalf("parsed %d facts, want 4: %s", len(s), s.Format(v))
	}
}

func TestParseErrors(t *testing.T) {
	v, _ := testVocab(t)
	if _, err := Parse(v, "Nonexistent doAt Central Park"); err == nil {
		t.Error("unknown subject accepted")
	}
	if _, err := Parse(v, "Biking"); err == nil {
		t.Error("short fact accepted")
	}
	if _, err := Parse(v, "Biking doAt doAt"); err == nil {
		t.Error("relation as object accepted")
	}
	if s, err := Parse(v, "  "); err != nil || len(s) != 0 {
		t.Error("blank input should parse to empty set")
	}
}

// Property: SetLeq is reflexive and transitive; Reduce preserves ≤-equivalence.
func TestSetOrderProperties(t *testing.T) {
	v, m := testVocab(t)
	terms := []vocab.Term{m["Activity"], m["Sport"], m["Biking"], m["Ball Game"], m["Basketball"]}
	rels := []vocab.Term{m["doAt"], m["eatAt"]}
	places := []vocab.Term{m["Central Park"], m["NYC"], m["Maoz Veg"]}
	r := rand.New(rand.NewSource(5))
	randSet := func() Set {
		n := r.Intn(4)
		s := make(Set, n)
		for i := range s {
			s[i] = Fact{terms[r.Intn(len(terms))], rels[r.Intn(len(rels))], places[r.Intn(len(places))]}
		}
		return s
	}
	check := func() bool {
		a, b, c := randSet(), randSet(), randSet()
		if !SetLeq(v, a, a) {
			return false
		}
		if SetLeq(v, a, b) && SetLeq(v, b, c) && !SetLeq(v, a, c) {
			return false
		}
		ra := Reduce(v, a)
		return SetLeq(v, ra, a) && SetLeq(v, a, ra)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000, Rand: r}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSetLeq(b *testing.B) {
	v, m := testVocab(b)
	t1 := Set{
		{m["Basketball"], m["doAt"], m["Central Park"]},
		{m["Falafel"], m["eatAt"], m["Maoz Veg"]},
		{m["Biking"], m["doAt"], m["Central Park"]},
	}
	q := Set{
		{m["Sport"], m["doAt"], m["Central Park"]},
		{m["Food"], m["eatAt"], m["Maoz Veg"]},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SetLeq(v, q, t1)
	}
}
