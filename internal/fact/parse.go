package fact

import (
	"fmt"
	"strings"

	"oassis/internal/vocab"
)

// Parse parses a fact-set in the paper's textual notation, e.g.
//
//	"Basketball doAt Central Park. Falafel eatAt Maoz Veg"
//
// Facts are separated by periods. Because element names may contain spaces
// ("Central Park"), each fact is resolved by scanning for a split of its
// tokens into ⟨element, relation, element⟩ where all three name groups are
// known vocabulary terms of the right kind. The split must be unique;
// ambiguous facts are an error.
func Parse(v *vocab.Vocabulary, text string) (Set, error) {
	var out Set
	for _, part := range strings.Split(text, ".") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := ParseFact(v, part)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out.Canon(), nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(v *vocab.Vocabulary, text string) Set {
	s, err := Parse(v, text)
	if err != nil {
		panic(err)
	}
	return s
}

// ParseFact parses a single fact in "subject relation object" notation.
func ParseFact(v *vocab.Vocabulary, text string) (Fact, error) {
	tokens := strings.Fields(text)
	if len(tokens) < 3 {
		return Fact{}, fmt.Errorf("fact: %q has fewer than three tokens", text)
	}
	join := func(ts []string) string { return strings.Join(ts, " ") }
	var found []Fact
	for i := 1; i < len(tokens)-1; i++ {
		for j := i + 1; j < len(tokens); j++ {
			s, okS := v.Lookup(join(tokens[:i]))
			r, okR := v.Lookup(join(tokens[i:j]))
			o, okO := v.Lookup(join(tokens[j:]))
			if !okS || !okR || !okO {
				continue
			}
			if v.KindOf(s) != vocab.Element || v.KindOf(r) != vocab.Relation || v.KindOf(o) != vocab.Element {
				continue
			}
			found = append(found, Fact{S: s, R: r, O: o})
		}
	}
	switch len(found) {
	case 0:
		return Fact{}, fmt.Errorf("fact: cannot resolve %q against vocabulary", text)
	case 1:
		return found[0], nil
	default:
		return Fact{}, fmt.Errorf("fact: %q is ambiguous (%d readings)", text, len(found))
	}
}
