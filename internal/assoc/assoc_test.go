package assoc

import (
	"math/rand"
	"testing"

	"oassis/internal/itemset"
)

// makeCrowd builds n simulated users over a shared habit pattern: most users
// frequently have {1,2} together (coffee→cookie), a minority has {3,4}.
func makeCrowd(n int, rng *rand.Rand) []*SimUser {
	users := make([]*SimUser, n)
	for i := range users {
		var db []itemset.Itemset
		for t := 0; t < 20; t++ {
			switch {
			case rng.Float64() < 0.6:
				db = append(db, itemset.Itemset{1, 2})
			case rng.Float64() < 0.3:
				db = append(db, itemset.Itemset{3, 4})
			default:
				db = append(db, itemset.Itemset{rng.Intn(8) + 1})
			}
		}
		users[i] = &SimUser{
			Name:           string(rune('a'+i%26)) + string(rune('0'+i/26)),
			DB:             db,
			MinOpenSupport: 0.3,
			Rng:            rand.New(rand.NewSource(int64(i + 1))),
		}
	}
	return users
}

func asUsers(sim []*SimUser) []User {
	out := make([]User, len(sim))
	for i, u := range sim {
		out[i] = u
	}
	return out
}

func TestSimUserClosedExact(t *testing.T) {
	u := &SimUser{Name: "u", DB: []itemset.Itemset{{1, 2}, {1}, {3}}}
	a := u.Closed(itemset.Itemset{1}, itemset.Itemset{2})
	if a.Support != 1.0/3 {
		t.Errorf("support = %v, want 1/3", a.Support)
	}
	if a.Confidence != 0.5 {
		t.Errorf("confidence = %v, want 1/2", a.Confidence)
	}
	// Empty DB answers zero.
	empty := &SimUser{Name: "e"}
	if a := empty.Closed(itemset.Itemset{1}, itemset.Itemset{2}); a.Support != 0 || a.Confidence != 0 {
		t.Error("empty DB should answer 0")
	}
}

func TestSimUserOpen(t *testing.T) {
	u := &SimUser{
		Name:           "u",
		DB:             []itemset.Itemset{{1, 2}, {1, 2}, {1, 2}, {3}},
		MinOpenSupport: 0.5,
		Rng:            rand.New(rand.NewSource(1)),
	}
	ant, cons, a, ok := u.Open()
	if !ok {
		t.Fatal("open question returned nothing")
	}
	union := append(append(itemset.Itemset(nil), ant...), cons...)
	if !containsAll(itemset.Itemset{1, 2}, union) {
		t.Errorf("volunteered rule %v→%v outside the frequent pattern", ant, cons)
	}
	if a.Support < 0.5 {
		t.Errorf("volunteered support %v below MinOpenSupport", a.Support)
	}
	// User with no frequent rules declines.
	poor := &SimUser{Name: "p", DB: []itemset.Itemset{{1}, {2}, {3}}, MinOpenSupport: 0.9}
	if _, _, _, ok := poor.Open(); ok {
		t.Error("user with no frequent rules volunteered one")
	}
}

func TestMineFindsPlantedRule(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	sim := makeCrowd(20, rng)
	res := Mine(Config{
		Users:      asUsers(sim),
		ThetaS:     0.3,
		ThetaC:     0.5,
		OpenRatio:  0.3,
		MinAnswers: 3,
		MaxAnswers: 8,
		Budget:     400,
		Rng:        rng,
	})
	if res.Questions == 0 || res.Open == 0 || res.Closed == 0 {
		t.Fatalf("question mix: %+v", res)
	}
	found := false
	for _, r := range res.Rules {
		k := RuleKey(r.Antecedent, r.Consequent)
		if k == RuleKey(itemset.Itemset{1}, itemset.Itemset{2}) ||
			k == RuleKey(itemset.Itemset{2}, itemset.Itemset{1}) {
			found = true
			if r.Support < 0.3 {
				t.Errorf("planted rule support %v below threshold", r.Support)
			}
		}
	}
	if !found {
		t.Errorf("planted rule 1→2 not mined; got %d rules", len(res.Rules))
	}
}

func TestMinePrecisionRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	sim := makeCrowd(30, rng)
	truth := GroundTruth(sim, 0.3, 0.5, 0.2)
	if len(truth) == 0 {
		t.Fatal("empty ground truth")
	}
	res := Mine(Config{
		Users:      asUsers(sim),
		ThetaS:     0.3,
		ThetaC:     0.5,
		OpenRatio:  0.3,
		MinAnswers: 3,
		MaxAnswers: 10,
		Budget:     600,
		Rng:        rng,
	})
	p, r := PrecisionRecall(res.Rules, truth)
	if p < 0.5 {
		t.Errorf("precision = %v", p)
	}
	if r < 0.4 {
		t.Errorf("recall = %v (truth %d, mined %d)", r, len(truth), len(res.Rules))
	}
}

func TestOpenOnlyVsMixed(t *testing.T) {
	// An open-only strategy discovers candidates but never firms up their
	// crowd-wide estimates; the mixed strategy should not do worse on
	// recall given the same budget.
	rng := rand.New(rand.NewSource(5))
	sim := makeCrowd(25, rng)
	truth := GroundTruth(sim, 0.3, 0.5, 0.2)
	mixed := Mine(Config{
		Users: asUsers(sim), ThetaS: 0.3, ThetaC: 0.5,
		OpenRatio: 0.3, MinAnswers: 3, MaxAnswers: 8, Budget: 300,
		Rng: rand.New(rand.NewSource(6)),
	})
	openOnly := Mine(Config{
		Users: asUsers(sim), ThetaS: 0.3, ThetaC: 0.5,
		OpenRatio: 1.0, MinAnswers: 3, MaxAnswers: 8, Budget: 300,
		Rng: rand.New(rand.NewSource(6)),
	})
	_, rMixed := PrecisionRecall(mixed.Rules, truth)
	_, rOpen := PrecisionRecall(openOnly.Rules, truth)
	if rMixed+0.2 < rOpen {
		t.Errorf("mixed recall %v much worse than open-only %v", rMixed, rOpen)
	}
}

func TestMineBudgetRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	sim := makeCrowd(10, rng)
	res := Mine(Config{
		Users: asUsers(sim), ThetaS: 0.3, ThetaC: 0.5,
		OpenRatio: 0.5, Budget: 25, Rng: rng,
	})
	if res.Questions > 25 {
		t.Errorf("budget exceeded: %d", res.Questions)
	}
}

func TestNoisyAnswersStillConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	sim := makeCrowd(40, rng)
	for _, u := range sim {
		u.Noise = 0.1
	}
	truth := GroundTruth(sim, 0.3, 0.5, 0.2)
	res := Mine(Config{
		Users: asUsers(sim), ThetaS: 0.3, ThetaC: 0.5,
		OpenRatio: 0.3, MinAnswers: 5, MaxAnswers: 15, Budget: 1000,
		Rng: rng,
	})
	p, r := PrecisionRecall(res.Rules, truth)
	if p < 0.4 || r < 0.3 {
		t.Errorf("noisy run degraded too far: precision %v recall %v", p, r)
	}
}
