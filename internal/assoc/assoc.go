// Package assoc implements the crowd association-rule mining framework of
// the SIGMOD 2013 "Crowd Mining" paper (Amsterdamer, Grossman, Milo,
// Senellart — reference [3] of the OASSIS paper), which OASSIS builds on and
// uses as one of its aggregation black boxes. The framework mines
// significant association rules from a crowd whose personal transaction
// databases are virtual: it interleaves open questions ("tell me a rule you
// find frequent") that seed candidate rules, with closed questions ("how
// often do you buy X with Y?") that estimate a candidate's mean support and
// confidence across the crowd, using sample-mean/variance estimators and a
// normal-approximation significance test.
package assoc

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"oassis/internal/itemset"
)

// RuleKey canonically identifies a rule A→B.
func RuleKey(ant, cons itemset.Itemset) string {
	return fmt.Sprintf("%v=>%v", ant, cons)
}

// Answer is one user's (support, confidence) estimate for a rule.
type Answer struct {
	Support    float64
	Confidence float64
}

// User is a crowd member in the association-rule setting.
type User interface {
	ID() string
	// Closed answers a closed question about the rule ant→cons.
	Closed(ant, cons itemset.Itemset) Answer
	// Open volunteers a rule the user believes frequent, or ok=false.
	Open() (ant, cons itemset.Itemset, a Answer, ok bool)
}

// SimUser simulates a crowd member from a concrete transaction database.
type SimUser struct {
	Name string
	DB   []itemset.Itemset
	// Noise adds ±Noise uniform error to reported values (clamped to [0,1]).
	Noise float64
	// MinOpenSupport bounds the rules the user volunteers.
	MinOpenSupport float64
	Rng            *rand.Rand
}

// ID implements User.
func (u *SimUser) ID() string { return u.Name }

func (u *SimUser) noisy(v float64) float64 {
	if u.Noise > 0 && u.Rng != nil {
		v += (u.Rng.Float64()*2 - 1) * u.Noise
	}
	return math.Max(0, math.Min(1, v))
}

// trueStats computes the user's exact support and confidence for ant→cons.
func (u *SimUser) trueStats(ant, cons itemset.Itemset) Answer {
	if len(u.DB) == 0 {
		return Answer{}
	}
	both, antOnly := 0, 0
	union := append(append(itemset.Itemset(nil), ant...), cons...)
	for _, t := range u.DB {
		if containsAll(t, ant) {
			antOnly++
			if containsAll(t, union) {
				both++
			}
		}
	}
	a := Answer{Support: float64(both) / float64(len(u.DB))}
	if antOnly > 0 {
		a.Confidence = float64(both) / float64(antOnly)
	}
	return a
}

func containsAll(t, s itemset.Itemset) bool {
	for _, n := range s {
		found := false
		for _, x := range t {
			if x == n {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Closed implements User.
func (u *SimUser) Closed(ant, cons itemset.Itemset) Answer {
	a := u.trueStats(ant, cons)
	return Answer{Support: u.noisy(a.Support), Confidence: u.noisy(a.Confidence)}
}

// Open implements User: the user volunteers one of their frequent rules
// (chosen at random among the rules above MinOpenSupport).
func (u *SimUser) Open() (itemset.Itemset, itemset.Itemset, Answer, bool) {
	min := u.MinOpenSupport
	if min <= 0 {
		min = 0.3
	}
	freq := itemset.Apriori(u.DB, min)
	rules := itemset.Rules(freq, 0)
	if len(rules) == 0 {
		return nil, nil, Answer{}, false
	}
	var r itemset.Rule
	if u.Rng != nil {
		r = rules[u.Rng.Intn(len(rules))]
	} else {
		r = rules[0]
	}
	a := Answer{Support: u.noisy(r.Support), Confidence: u.noisy(r.Confidence)}
	return r.Antecedent, r.Consequent, a, true
}

// estimate accumulates per-rule sample statistics across users.
type estimate struct {
	ant, cons itemset.Itemset
	n         float64
	sumS, sqS float64
	sumC, sqC float64
	asked     map[string]bool
}

func (e *estimate) add(user string, a Answer) bool {
	if e.asked[user] {
		return false
	}
	e.asked[user] = true
	e.n++
	e.sumS += a.Support
	e.sqS += a.Support * a.Support
	e.sumC += a.Confidence
	e.sqC += a.Confidence * a.Confidence
	return true
}

func (e *estimate) meanS() float64 { return safeDiv(e.sumS, e.n) }
func (e *estimate) meanC() float64 { return safeDiv(e.sumC, e.n) }

func (e *estimate) seS() float64 { return stderr(e.sumS, e.sqS, e.n) }
func (e *estimate) seC() float64 { return stderr(e.sumC, e.sqC, e.n) }

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func stderr(sum, sq, n float64) float64 {
	if n < 2 {
		return math.Inf(1)
	}
	mean := sum / n
	v := sq/n - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v / n)
}

// Config parameterizes a crowd-mining run.
type Config struct {
	Users []User
	// ThetaS and ThetaC are the support and confidence thresholds.
	ThetaS, ThetaC float64
	// OpenRatio is the fraction of open questions (the open/closed mix the
	// SIGMOD'13 paper studies).
	OpenRatio float64
	// Z is the normal quantile for the significance test (e.g. 1.96).
	Z float64
	// MinAnswers and MaxAnswers bound the sample size per rule.
	MinAnswers, MaxAnswers int
	// Budget is the total number of questions (0 = derive from candidates).
	Budget int
	Rng    *rand.Rand
}

// MinedRule is an output rule with its estimated statistics.
type MinedRule struct {
	Antecedent itemset.Itemset
	Consequent itemset.Itemset
	Support    float64
	Confidence float64
	Answers    int
}

// Result of a crowd-mining run.
type Result struct {
	Rules     []MinedRule
	Questions int
	Open      int
	Closed    int
}

// Mine runs the open/closed crowd-mining loop: open questions seed the
// candidate pool, closed questions are routed to the most uncertain
// candidate (the one whose support estimate is closest to the threshold
// relative to its standard error) until every candidate is resolved or the
// budget runs out.
func Mine(cfg Config) *Result {
	if cfg.Z == 0 {
		cfg.Z = 1.96
	}
	if cfg.MinAnswers < 1 {
		cfg.MinAnswers = 2
	}
	if cfg.MaxAnswers < cfg.MinAnswers {
		cfg.MaxAnswers = cfg.MinAnswers * 5
	}
	res := &Result{}
	cands := map[string]*estimate{}
	order := []string{}

	addCandidate := func(ant, cons itemset.Itemset) *estimate {
		k := RuleKey(ant, cons)
		if e, ok := cands[k]; ok {
			return e
		}
		e := &estimate{ant: ant, cons: cons, asked: map[string]bool{}}
		cands[k] = e
		order = append(order, k)
		return e
	}

	resolved := func(e *estimate) bool {
		if e.n >= float64(cfg.MaxAnswers) {
			return true
		}
		if e.n < float64(cfg.MinAnswers) {
			return false
		}
		sLow, sHigh := e.meanS()-cfg.Z*e.seS(), e.meanS()+cfg.Z*e.seS()
		cLow, cHigh := e.meanC()-cfg.Z*e.seC(), e.meanC()+cfg.Z*e.seC()
		// Resolved when both estimates are decisively above or below their
		// thresholds.
		sDecided := sLow >= cfg.ThetaS || sHigh < cfg.ThetaS
		cDecided := cLow >= cfg.ThetaC || cHigh < cfg.ThetaC
		if sHigh < cfg.ThetaS || cHigh < cfg.ThetaC {
			return true // insignificant on one dimension suffices
		}
		return sDecided && cDecided
	}

	// uncertainty scores a candidate for closed-question routing.
	uncertainty := func(e *estimate) float64 {
		if e.n < float64(cfg.MinAnswers) {
			return math.Inf(1)
		}
		d := math.Abs(e.meanS()-cfg.ThetaS) / (e.seS() + 1e-9)
		return 1 / (d + 1e-9)
	}

	budget := cfg.Budget
	if budget <= 0 {
		budget = cfg.MaxAnswers * 50
	}
	userAt := 0
	nextUser := func() User {
		u := cfg.Users[userAt%len(cfg.Users)]
		userAt++
		return u
	}

	// unproductiveOpens counts consecutive open questions that added no new
	// candidate; once the whole crowd has been cycled without discovery and
	// all candidates are resolved, the run stops.
	unproductiveOpens := 0
	for res.Questions < budget {
		open := false
		if cfg.Rng != nil && cfg.Rng.Float64() < cfg.OpenRatio {
			open = true
		} else if cfg.Rng == nil && cfg.OpenRatio >= 1 {
			open = true
		}
		if len(order) == 0 {
			open = true // nothing to ask closed questions about yet
		}
		// Closed question: route to the most uncertain unresolved candidate.
		var best *estimate
		if !open {
			bestScore := -1.0
			for _, k := range order {
				e := cands[k]
				if resolved(e) {
					continue
				}
				if s := uncertainty(e); s > bestScore {
					best, bestScore = e, s
				}
			}
			if best == nil {
				open = true // all candidates resolved: keep exploring
			}
		}
		if open {
			if unproductiveOpens >= 2*len(cfg.Users) && allResolved(cands, resolved) {
				break // discovery has dried up and everything is resolved
			}
			u := nextUser()
			res.Questions++
			res.Open++
			before := len(order)
			ant, cons, a, ok := u.Open()
			if ok {
				addCandidate(ant, cons).add(u.ID(), a)
			}
			if len(order) == before {
				unproductiveOpens++
			} else {
				unproductiveOpens = 0
			}
			continue
		}
		// Find a user who has not answered this rule yet.
		var u User
		for range cfg.Users {
			cand := nextUser()
			if !best.asked[cand.ID()] {
				u = cand
				break
			}
		}
		if u == nil {
			// Crowd exhausted for this rule: force-resolve it by capping.
			best.n = float64(cfg.MaxAnswers)
			continue
		}
		res.Questions++
		res.Closed++
		best.add(u.ID(), u.Closed(best.ant, best.cons))
	}

	for _, k := range order {
		e := cands[k]
		if e.meanS() >= cfg.ThetaS && e.meanC() >= cfg.ThetaC && e.n >= float64(cfg.MinAnswers) {
			res.Rules = append(res.Rules, MinedRule{
				Antecedent: e.ant,
				Consequent: e.cons,
				Support:    e.meanS(),
				Confidence: e.meanC(),
				Answers:    int(e.n),
			})
		}
	}
	sort.Slice(res.Rules, func(i, j int) bool {
		return RuleKey(res.Rules[i].Antecedent, res.Rules[i].Consequent) <
			RuleKey(res.Rules[j].Antecedent, res.Rules[j].Consequent)
	})
	return res
}

func allResolved(cands map[string]*estimate, resolved func(*estimate) bool) bool {
	for _, e := range cands {
		if !resolved(e) {
			return false
		}
	}
	return true
}

// GroundTruth computes the truly significant rules over a set of user DBs
// (by exact mean support/confidence), for precision/recall evaluation.
func GroundTruth(users []*SimUser, thetaS, thetaC, seedSupport float64) []MinedRule {
	// Candidate rules: union of all users' frequent rules at a low support.
	seen := map[string][2]itemset.Itemset{}
	for _, u := range users {
		freq := itemset.Apriori(u.DB, seedSupport)
		for _, r := range itemset.Rules(freq, 0) {
			seen[RuleKey(r.Antecedent, r.Consequent)] = [2]itemset.Itemset{r.Antecedent, r.Consequent}
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []MinedRule
	for _, k := range keys {
		ant, cons := seen[k][0], seen[k][1]
		var sumS, sumC float64
		for _, u := range users {
			a := u.trueStats(ant, cons)
			sumS += a.Support
			sumC += a.Confidence
		}
		n := float64(len(users))
		if sumS/n >= thetaS && sumC/n >= thetaC {
			out = append(out, MinedRule{Antecedent: ant, Consequent: cons,
				Support: sumS / n, Confidence: sumC / n})
		}
	}
	return out
}

// PrecisionRecall compares mined rules against ground truth.
func PrecisionRecall(mined, truth []MinedRule) (precision, recall float64) {
	truthKeys := map[string]bool{}
	for _, r := range truth {
		truthKeys[RuleKey(r.Antecedent, r.Consequent)] = true
	}
	hit := 0
	for _, r := range mined {
		if truthKeys[RuleKey(r.Antecedent, r.Consequent)] {
			hit++
		}
	}
	if len(mined) > 0 {
		precision = float64(hit) / float64(len(mined))
	}
	if len(truth) > 0 {
		recall = float64(hit) / float64(len(truth))
	}
	return precision, recall
}
