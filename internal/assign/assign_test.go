package assign

import (
	"testing"

	"oassis/internal/fact"
	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/sparql"
	"oassis/internal/vocab"
)

// figure3Query is the Figure 2 query restricted to its grey-highlighted
// parts, which is the setting of the Figure 3 lattice in the paper.
const figure3Query = `
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity
SATISFYING
  $y+ doAt $x
WITH SUPPORT = 0.4
`

// buildSpace evaluates the query's WHERE clause on the sample ontology and
// assembles the mining space, the way the engine does.
func buildSpace(t testing.TB, src string) (*ontology.Sample, *Space) {
	t.Helper()
	s := ontology.NewSample()
	q := oassisql.MustParse(src)
	bs, err := sparql.Evaluate(s.Onto, q.Where)
	if err != nil {
		t.Fatal(err)
	}
	maps := make([]map[string]vocab.Term, len(bs))
	for i, b := range bs {
		maps[i] = b
	}
	sp, err := NewSpace(s.Voc, q, maps, sparql.Anchors(s.Voc, q.Where))
	if err != nil {
		t.Fatal(err)
	}
	return s, sp
}

// node builds the (y, x) assignment from term names, mirroring the node
// labels of Figure 3.
func node(s *ontology.Sample, sp *Space, ys []string, x string) Assignment {
	yi, xi := sp.VarIndex("y"), sp.VarIndex("x")
	vals := make([][]vocab.Term, len(sp.Vars))
	for _, y := range ys {
		vals[yi] = append(vals[yi], s.T(y))
	}
	vals[xi] = []vocab.Term{s.T(x)}
	return sp.NewAssignment(vals, nil)
}

func TestSpaceConstruction(t *testing.T) {
	_, sp := buildSpace(t, figure3Query)
	if len(sp.Vars) != 2 {
		t.Fatalf("vars = %v", sp.Vars)
	}
	if sp.Vars[0].Name != "y" || sp.Vars[1].Name != "x" {
		t.Fatalf("var order = %s,%s (want y,x)", sp.Vars[0].Name, sp.Vars[1].Name)
	}
	if sp.Vars[0].Mult != oassisql.MultPlus || sp.Vars[1].Mult != oassisql.MultOne {
		t.Errorf("mults = %v, %v", sp.Vars[0].Mult, sp.Vars[1].Mult)
	}
	// 13 activity-closure values × 2 child-friendly NYC attractions.
	if len(sp.ValidBase) != 26 {
		t.Errorf("|ValidBase| = %d, want 26", len(sp.ValidBase))
	}
}

func TestMinimalIsFigure3Top(t *testing.T) {
	s, sp := buildSpace(t, figure3Query)
	min := sp.Minimal()
	if len(min) != 1 {
		t.Fatalf("minimal = %d nodes", len(min))
	}
	want := node(s, sp, []string{"Activity"}, "Attraction")
	if !min[0].Equal(want) {
		t.Errorf("minimal = %s, want (Activity, Attraction)", sp.Format(min[0]))
	}
}

func TestLeqExamples(t *testing.T) {
	s, sp := buildSpace(t, figure3Query)
	n15 := node(s, sp, []string{"Sport"}, "Central Park")
	n16 := node(s, sp, []string{"Biking"}, "Central Park")
	n17 := node(s, sp, []string{"Ball Game"}, "Central Park")
	n20 := node(s, sp, []string{"Baseball"}, "Central Park")
	n18 := node(s, sp, []string{"Biking", "Ball Game"}, "Central Park")
	if !sp.Leq(n15, n16) || !sp.Leq(n15, n17) {
		t.Error("(CP,Sport) ≤ specializations expected")
	}
	if !sp.Leq(n17, n20) {
		t.Error("(CP,Ball Game) ≤ (CP,Baseball) expected")
	}
	if sp.Leq(n16, n17) || sp.Leq(n17, n16) {
		t.Error("Biking and Ball Game nodes should be incomparable")
	}
	if !sp.Leq(n16, n18) || !sp.Leq(n17, n18) {
		t.Error("both mult-1 nodes should precede the mult-2 node 18")
	}
	if sp.Leq(n18, n16) {
		t.Error("mult-2 node below mult-1 node")
	}
	if !sp.Leq(n15, n15) {
		t.Error("Leq not reflexive")
	}
}

func TestAntichainCanonicalization(t *testing.T) {
	s, sp := buildSpace(t, figure3Query)
	// {Sport, Ball Game} collapses to {Ball Game}.
	a := node(s, sp, []string{"Sport", "Ball Game"}, "Central Park")
	want := node(s, sp, []string{"Ball Game"}, "Central Park")
	if !a.Equal(want) {
		t.Errorf("canonicalization failed: %s", sp.Format(a))
	}
}

func TestValidity(t *testing.T) {
	s, sp := buildSpace(t, figure3Query)
	valid := []Assignment{
		node(s, sp, []string{"Biking"}, "Central Park"),
		node(s, sp, []string{"Ball Game"}, "Central Park"),
		node(s, sp, []string{"Feed a Monkey"}, "Bronx Zoo"),
		node(s, sp, []string{"Activity"}, "Central Park"),
		// Multiplicity 2 via combination (Example 3.2).
		node(s, sp, []string{"Biking", "Ball Game"}, "Central Park"),
	}
	for _, a := range valid {
		if !sp.IsValid(a) {
			t.Errorf("%s should be valid", sp.Format(a))
		}
		if !sp.InA(a) {
			t.Errorf("%s should be in 𝒜", sp.Format(a))
		}
	}
	invalid := []Assignment{
		node(s, sp, []string{"Sport"}, "Park"),    // Park is not an instance
		node(s, sp, []string{"Sport"}, "Outdoor"), // ditto
		node(s, sp, []string{"Activity"}, "Attraction"),
	}
	for _, a := range invalid {
		if sp.IsValid(a) {
			t.Errorf("%s should be invalid", sp.Format(a))
		}
		if !sp.InA(a) {
			t.Errorf("%s should still be in 𝒜 (generalization of valid)", sp.Format(a))
		}
	}
	// Madison Square is inside NYC but not child-friendly: not even in 𝒜.
	ms := node(s, sp, []string{"Sport"}, "Madison Square")
	if sp.InA(ms) {
		t.Error("(Madison Square, Sport) should be outside 𝒜")
	}
	// Indoor never generalizes a valid x value.
	indoor := node(s, sp, []string{"Sport"}, "Indoor")
	if sp.InA(indoor) {
		t.Error("(Indoor, Sport) should be outside 𝒜")
	}
}

func TestSuccessorsFigure3(t *testing.T) {
	s, sp := buildSpace(t, figure3Query)
	// Node 17 (Central Park, Ball Game): successors are the one-step
	// specializations of Ball Game within the domain (Basketball, Baseball,
	// but not Water Polo, which is also below Water Sport — it stays in the
	// domain, so it is included) plus mult-2 extensions with minimal
	// incomparable additions.
	n17 := node(s, sp, []string{"Ball Game"}, "Central Park")
	succs := sp.Successors(n17)
	keys := map[string]bool{}
	for _, b := range succs {
		keys[sp.Format(b)] = true
	}
	for _, want := range []Assignment{
		node(s, sp, []string{"Basketball"}, "Central Park"),
		node(s, sp, []string{"Baseball"}, "Central Park"),
		node(s, sp, []string{"Water Polo"}, "Central Park"),
		node(s, sp, []string{"Ball Game", "Biking"}, "Central Park"), // node 18
		node(s, sp, []string{"Ball Game", "Water Sport"}, "Central Park"),
		node(s, sp, []string{"Ball Game", "Food"}, "Central Park"),
		node(s, sp, []string{"Ball Game", "Feed a Monkey"}, "Central Park"),
	} {
		if !keys[sp.Format(want)] {
			t.Errorf("missing successor %s of node 17 (have %v)", sp.Format(want), keys)
		}
	}
	// Sport must not be addable (comparable with Ball Game).
	bad := node(s, sp, []string{"Ball Game", "Sport"}, "Central Park")
	_ = bad // canonicalizes to {Ball Game}; ensure no successor equals n17 itself
	for _, b := range succs {
		if b.Equal(n17) {
			t.Error("successor equals the node itself")
		}
		if !sp.Lt(n17, b) {
			t.Errorf("successor %s not strictly above node 17", sp.Format(b))
		}
	}
}

func TestSuccessorsOfMinimal(t *testing.T) {
	s, sp := buildSpace(t, figure3Query)
	top := node(s, sp, []string{"Activity"}, "Attraction")
	succs := sp.Successors(top)
	keys := map[string]bool{}
	for _, b := range succs {
		keys[sp.Format(b)] = true
	}
	for _, want := range []Assignment{
		node(s, sp, []string{"Sport"}, "Attraction"),
		node(s, sp, []string{"Food"}, "Attraction"),
		node(s, sp, []string{"Feed a Monkey"}, "Attraction"),
		node(s, sp, []string{"Activity"}, "Outdoor"), // node 2
	} {
		if !keys[sp.Format(want)] {
			t.Errorf("missing successor %s of the top node", sp.Format(want))
		}
	}
	// Indoor is not in the domain: (Indoor, Activity) must be absent.
	absent := node(s, sp, []string{"Activity"}, "Indoor")
	if keys[sp.Format(absent)] {
		t.Error("(Indoor, Activity) generated despite empty Indoor subtree")
	}
}

func TestPredecessorsInverseOfSuccessors(t *testing.T) {
	s, sp := buildSpace(t, figure3Query)
	nodes := []Assignment{
		node(s, sp, []string{"Sport"}, "Central Park"),
		node(s, sp, []string{"Ball Game"}, "Central Park"),
		node(s, sp, []string{"Ball Game", "Biking"}, "Central Park"),
		node(s, sp, []string{"Activity"}, "Outdoor"),
	}
	for _, a := range nodes {
		for _, b := range sp.Successors(a) {
			preds := sp.Predecessors(b)
			found := false
			for _, p := range preds {
				if p.Equal(a) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s missing from predecessors of its successor %s",
					sp.Format(a), sp.Format(b))
			}
		}
	}
	// The top node has no predecessors.
	top := node(s, sp, []string{"Activity"}, "Attraction")
	if preds := sp.Predecessors(top); len(preds) != 0 {
		t.Errorf("top node has predecessors: %d", len(preds))
	}
}

func TestInstantiate(t *testing.T) {
	s, sp := buildSpace(t, figure3Query)
	a := node(s, sp, []string{"Biking", "Ball Game"}, "Central Park")
	fs := sp.Instantiate(a)
	want := fact.Set{
		s.Fact("Biking", "doAt", "Central Park"),
		s.Fact("Ball Game", "doAt", "Central Park"),
	}
	if !fs.Equal(want) {
		t.Errorf("Instantiate = %s", fs.Format(s.Voc))
	}
	// Question key identifies the fact-set, not the assignment.
	b := node(s, sp, []string{"Biking", "Ball Game"}, "Central Park")
	if sp.QuestionKey(a) != sp.QuestionKey(b) {
		t.Error("question keys differ for equal assignments")
	}
}

func TestInstantiateDropsEmptyVars(t *testing.T) {
	// A * variable with an empty value set deletes its meta-facts.
	src := `SELECT FACT-SETS
WHERE
  $x instanceOf Park .
  $y subClassOf* Activity
SATISFYING
  $y* doAt $x .
  Falafel eatAt "Maoz Veg"
WITH SUPPORT = 0.2`
	s, sp := buildSpace(t, src)
	yi, xi := sp.VarIndex("y"), sp.VarIndex("x")
	vals := make([][]vocab.Term, len(sp.Vars))
	vals[xi] = []vocab.Term{s.T("Central Park")}
	_ = yi
	a := sp.NewAssignment(vals, nil)
	fs := sp.Instantiate(a)
	want := fact.Set{s.Fact("Falafel", "eatAt", "Maoz Veg")}
	if !fs.Equal(want) {
		t.Errorf("Instantiate = %s, want only the constant fact", fs.Format(s.Voc))
	}
	if !sp.InA(a) {
		t.Error("empty * variable should be allowed in 𝒜")
	}
}

func TestCombineProposition51(t *testing.T) {
	s, sp := buildSpace(t, figure3Query)
	a := node(s, sp, []string{"Biking"}, "Central Park")
	b := node(s, sp, []string{"Baseball"}, "Central Park")
	c, ok := sp.Combine(a, b)
	if !ok {
		t.Fatal("Combine failed on assignments differing in one variable")
	}
	want := node(s, sp, []string{"Biking", "Baseball"}, "Central Park")
	if !c.Equal(want) {
		t.Errorf("Combine = %s", sp.Format(c))
	}
	if !sp.IsValid(c) {
		t.Error("combination of valid assignments should be valid (Prop 5.1)")
	}
	// Differing on two variables: no combination.
	d := node(s, sp, []string{"Feed a Monkey"}, "Bronx Zoo")
	if _, ok := sp.Combine(a, d); ok {
		t.Error("Combine succeeded across two differing variables")
	}
}

func TestMoreSuccessors(t *testing.T) {
	s, sp := buildSpace(t, figure3Query)
	sp.More = true
	sp.MoreCandidates = fact.Set{
		s.Fact("Rent Bikes", "doAt", "Boathouse"),
		s.Fact("Falafel", "eatAt", "Maoz Veg"),
		s.Fact("Food", "eatAt", "Maoz Veg"), // generalization of the falafel fact
	}
	a := node(s, sp, []string{"Biking"}, "Central Park")
	succs := sp.Successors(a)
	var withMore []Assignment
	for _, b := range succs {
		if len(b.More) > 0 {
			withMore = append(withMore, b)
		}
	}
	// Minimal additions: Rent Bikes (no pool generalization) and
	// Food eatAt Maoz Veg (the general one); Falafel is not minimal.
	if len(withMore) != 2 {
		for _, b := range withMore {
			t.Logf("more successor: %s", sp.Format(b))
		}
		t.Fatalf("got %d MORE successors, want 2", len(withMore))
	}
	// From the Food node, specializing to Falafel is a successor.
	foodNode := a.Clone()
	foodNode.More = fact.Set{s.Fact("Food", "eatAt", "Maoz Veg")}
	found := false
	for _, b := range sp.Successors(foodNode) {
		if len(b.More) == 1 && b.More[0] == s.Fact("Falafel", "eatAt", "Maoz Veg") {
			found = true
		}
	}
	if !found {
		t.Error("specializing a MORE fact not generated")
	}
	// Instantiate includes MORE facts.
	fs := sp.Instantiate(foodNode)
	if !fs.Contains(s.Fact("Food", "eatAt", "Maoz Veg")) {
		t.Error("MORE fact missing from instantiation")
	}
}

func TestItemsetCaptureSpace(t *testing.T) {
	// Empty WHERE with $x+ [] []: x ranges over all elements.
	s, sp := buildSpace(t, `SELECT FACT-SETS WHERE SATISFYING $x+ [] [] WITH SUPPORT = 0.1`)
	if len(sp.Vars) != 1 {
		t.Fatalf("vars = %d", len(sp.Vars))
	}
	if got, want := len(sp.ValidBase), s.Voc.CountKind(vocab.Element); got != want {
		t.Errorf("|ValidBase| = %d, want %d (all elements)", got, want)
	}
	// Minimal elements: the element roots — Thing, plus the vocabulary-only
	// terms Boathouse and Rent Bikes, which have no order parents.
	min := sp.Minimal()
	if len(min) != 3 {
		t.Fatalf("minimal = %d, want 3 (Thing, Boathouse, Rent Bikes)", len(min))
	}
	roots := map[string]bool{}
	for _, m := range min {
		roots[s.Voc.Name(m.Vals[0][0])] = true
	}
	if !roots["Thing"] || !roots["Boathouse"] || !roots["Rent Bikes"] {
		t.Errorf("minimal roots = %v", roots)
	}
	// Instantiation uses the Any wildcard.
	fs := sp.Instantiate(min[0])
	if len(fs) != 1 || fs[0].R != vocab.Any || fs[0].O != vocab.Any {
		t.Errorf("instantiation = %v", fs)
	}
}

func TestUnsatisfiableWhere(t *testing.T) {
	_, sp := buildSpace(t, `SELECT FACT-SETS
WHERE $x instanceOf Park . $x hasLabel "nonexistent label"
SATISFYING $x doAt $x WITH SUPPORT = 0.2`)
	if len(sp.ValidBase) != 0 {
		t.Fatalf("|ValidBase| = %d, want 0", len(sp.ValidBase))
	}
	if min := sp.Minimal(); len(min) != 0 {
		t.Errorf("minimal over empty valid set = %d nodes", len(min))
	}
}

func TestVarKindConflict(t *testing.T) {
	s := ontology.NewSample()
	q := oassisql.MustParse(`SELECT FACT-SETS WHERE SATISFYING $x+ $x [] WITH SUPPORT = 0.1`)
	_, err := NewSpace(s.Voc, q, nil, nil)
	if err == nil {
		t.Fatal("variable used as element and relation accepted")
	}
}

func TestLeqWithMoreFacts(t *testing.T) {
	s, sp := buildSpace(t, figure3Query)
	sp.More = true
	a := node(s, sp, []string{"Biking"}, "Central Park")
	b := a.Clone()
	b.More = fact.Set{s.Fact("Falafel", "eatAt", "Maoz Veg")}
	if !sp.Leq(a, b) {
		t.Error("node without MORE facts should precede node with MORE facts")
	}
	if sp.Leq(b, a) {
		t.Error("MORE facts ignored by Leq")
	}
	c := a.Clone()
	c.More = fact.Set{s.Fact("Food", "eatAt", "Maoz Veg")}
	if !sp.Leq(c, b) {
		t.Error("generalized MORE fact should precede specialized one")
	}
}

// BenchmarkAssignmentKey measures Key() on lattice nodes shaped like the
// engine's pool entries (successor-generated, multi-value antichains). The
// engine calls Key() on every pool probe, classifier status check, and
// dedup, so this dominates bookkeeping cost at scale.
func BenchmarkAssignmentKey(b *testing.B) {
	s, sp := buildSpace(b, figure3Query)
	seedNode := node(s, sp, []string{"Biking", "Ball Game"}, "Central Park")
	nodes := append([]Assignment{seedNode}, sp.Successors(seedNode)...)
	b.ReportAllocs()
	b.ResetTimer()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += len(nodes[i%len(nodes)].Key())
	}
	_ = sink
}
