package assign

import (
	"sort"

	"oassis/internal/fact"
	"oassis/internal/vocab"
)

// domain returns (computing lazily) the exploration domain of variable i:
// the anchor-respecting upward closure of the variable's valid values. Every
// value that can appear at i in any node of 𝒜 belongs to this set.
func (sp *Space) domain(i int) map[vocab.Term]struct{} {
	if sp.domains == nil {
		sp.domains = make([]map[vocab.Term]struct{}, len(sp.Vars))
	}
	if d := sp.domains[i]; d != nil {
		return d
	}
	d := make(map[vocab.Term]struct{})
	var up func(t vocab.Term)
	up = func(t vocab.Term) {
		if _, ok := d[t]; ok {
			return
		}
		if !sp.respectsAnchors(i, t) {
			return
		}
		d[t] = struct{}{}
		for _, p := range sp.Voc.Parents(t) {
			up(p)
		}
	}
	for t := range sp.valsAt[i] {
		up(t)
	}
	sp.domains[i] = d
	return d
}

// DomainSize reports the exploration-domain size of variable i (used by the
// experiment harness when reporting lattice dimensions).
func (sp *Space) DomainSize(i int) int { return len(sp.domain(i)) }

// minimalValues returns the most general domain values of variable i: the
// domain elements none of whose immediate parents are in the domain.
func (sp *Space) minimalValues(i int) []vocab.Term {
	d := sp.domain(i)
	var out []vocab.Term
	for t := range d {
		minimal := true
		for _, p := range sp.Voc.Parents(t) {
			if _, ok := d[p]; ok {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Minimal returns the minimal (most general) elements of 𝒜: for each
// mandatory variable, value sets of the multiplicity's lower-bound size
// drawn from the variable's most general domain values (minimal domain
// values are pairwise incomparable, so any combination is an antichain);
// the empty set for optional variables (multiplicity * or ?); and no MORE
// facts. For the Figure 2 query this is the single node
// (w,x ↦ Attraction, y ↦ Activity, z ↦ Restaurant) at the top of Figure 3.
func (sp *Space) Minimal() []Assignment {
	choices := make([][][]vocab.Term, len(sp.Vars))
	for i, vs := range sp.Vars {
		if vs.Mult.Min == 0 {
			choices[i] = [][]vocab.Term{nil}
			continue
		}
		if vs.Mult.Min == 1 {
			for _, t := range sp.minimalValues(i) {
				choices[i] = append(choices[i], []vocab.Term{t})
			}
		} else {
			choices[i] = sp.minimalAntichains(i, vs.Mult.Min)
		}
		if len(choices[i]) == 0 {
			// Empty domain, or a {k,...} lower bound that no size-k
			// antichain of domain values satisfies: no minimal elements.
			return nil
		}
	}
	var out []Assignment
	cur := make([][]vocab.Term, len(sp.Vars))
	var rec func(i int)
	rec = func(i int) {
		if i == len(sp.Vars) {
			a := sp.NewAssignment(cur, nil)
			if sp.InA(a) {
				out = append(out, a)
			}
			return
		}
		for _, c := range choices[i] {
			cur[i] = c
			rec(i + 1)
		}
	}
	if len(sp.Vars) > 0 {
		rec(0)
	} else if len(sp.ValidBase) > 0 || len(sp.Sat) > 0 {
		// No variables at all: the single constant assignment.
		out = append(out, sp.NewAssignment(nil, nil))
	}
	return out
}

// minimalAntichains enumerates the minimal size-k antichains of variable
// i's domain: antichains with no valid generalize move, i.e. every
// in-domain parent of every value is comparable with some other value of
// the set (generalizing would either leave the lattice floor via antichain
// absorption or yield a strict predecessor). Enumeration is O(|domain|^k)
// and capped; the {k,…} multiplicity extension is intended for small k.
func (sp *Space) minimalAntichains(i, k int) [][]vocab.Term {
	d := sp.domain(i)
	vals := make([]vocab.Term, 0, len(d))
	for t := range d {
		vals = append(vals, t)
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })

	const cap = 1 << 16
	var out [][]vocab.Term
	set := make([]vocab.Term, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(out) >= cap {
			return
		}
		if len(set) == k {
			if sp.isMinimalAntichain(i, set) {
				out = append(out, append([]vocab.Term(nil), set...))
			}
			return
		}
		for j := start; j <= len(vals)-(k-len(set)); j++ {
			t := vals[j]
			ok := true
			for _, u := range set {
				if sp.Voc.Comparable(u, t) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			set = append(set, t)
			rec(j + 1)
			set = set[:len(set)-1]
		}
	}
	rec(0)
	return out
}

// isMinimalAntichain reports whether no value of the antichain can be
// generalized one in-domain Hasse step while keeping the set an antichain.
func (sp *Space) isMinimalAntichain(i int, set []vocab.Term) bool {
	d := sp.domain(i)
	for vi, v := range set {
		for _, p := range sp.Voc.Parents(v) {
			if _, ok := d[p]; !ok {
				continue
			}
			comparable := false
			for ui, u := range set {
				if ui != vi && sp.Voc.Comparable(u, p) {
					comparable = true
					break
				}
			}
			if !comparable {
				return false // a valid generalize move exists
			}
		}
	}
	return true
}

// Successors generates the immediate successors of a within 𝒜: specialize
// one value one Hasse step, add one minimal compatible value to a variable
// whose multiplicity allows it (the lazy combination of Proposition 5.1), or
// extend/specialize the MORE fact-set from the candidate pool. Results are
// deduplicated and sorted by key.
func (sp *Space) Successors(a Assignment) []Assignment {
	seen := map[string]struct{}{aKeyOf(a): {}}
	var out []Assignment
	emit := func(b Assignment) {
		b = b.sealed()
		k := b.Key()
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		if sp.InA(b) && sp.Lt(a, b) {
			out = append(out, b)
		}
	}

	for i := range sp.Vars {
		vals := a.Vals[i]
		d := sp.domain(i)
		// Specialize one value one step.
		for vi, v := range vals {
			for _, c := range sp.Voc.Children(v) {
				if _, ok := d[c]; !ok {
					continue
				}
				if !compatible(sp.Voc, vals, vi, c) {
					continue
				}
				nv := replaceAt(vals, vi, c)
				b := a.Clone()
				b.Vals[i] = nv
				emit(b)
			}
		}
		// Add one minimal compatible value.
		max := sp.Vars[i].Mult.Max
		if max >= 0 && len(vals) >= max {
			continue
		}
		for _, t := range sp.minimalAddable(i, vals) {
			b := a.Clone()
			b.Vals[i] = insertSorted(b.Vals[i], t)
			emit(b)
		}
	}

	if sp.More && len(sp.MoreCandidates) > 0 {
		sp.moreSuccessors(a, emit)
	}
	sort.Slice(out, func(x, y int) bool { return out[x].Key() < out[y].Key() })
	return out
}

func aKeyOf(a Assignment) string { return a.Key() }

// compatible reports whether c is incomparable with every value of vals
// other than index skip (keeping the set an antichain without absorption).
func compatible(v *vocab.Vocabulary, vals []vocab.Term, skip int, c vocab.Term) bool {
	for i, u := range vals {
		if i == skip {
			continue
		}
		if v.Comparable(u, c) {
			return false
		}
	}
	return true
}

func replaceAt(vals []vocab.Term, i int, c vocab.Term) []vocab.Term {
	out := make([]vocab.Term, 0, len(vals))
	out = append(out, vals[:i]...)
	out = append(out, vals[i+1:]...)
	return insertSorted(out, c)
}

func insertSorted(vals []vocab.Term, t vocab.Term) []vocab.Term {
	out := append(append([]vocab.Term(nil), vals...), t)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// minimalAddable returns the most general domain values of variable i that
// are incomparable with all current values: candidates t ∈ domain(i) such
// that no immediate parent of t is itself addable.
func (sp *Space) minimalAddable(i int, vals []vocab.Term) []vocab.Term {
	d := sp.domain(i)
	addable := func(t vocab.Term) bool {
		if _, ok := d[t]; !ok {
			return false
		}
		return compatible(sp.Voc, vals, -1, t)
	}
	var out []vocab.Term
	for t := range d {
		if !addable(t) {
			continue
		}
		minimal := true
		for _, p := range sp.Voc.Parents(t) {
			if addable(p) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// moreSuccessors emits MORE-fact extensions of a: adding a minimal pool
// candidate, or replacing an existing MORE fact by a pool candidate that
// specializes it with nothing from the pool strictly between.
func (sp *Space) moreSuccessors(a Assignment, emit func(Assignment)) {
	pool := sp.MoreCandidates
	covered := func(f fact.Fact) bool {
		for _, g := range a.More {
			if fact.Leq(sp.Voc, f, g) || fact.Leq(sp.Voc, g, f) {
				return true
			}
		}
		return false
	}
	// Add a pool fact that is minimal among addable pool facts.
	for _, f := range pool {
		if covered(f) {
			continue
		}
		minimal := true
		for _, g := range pool {
			if g != f && fact.Leq(sp.Voc, g, f) && !covered(g) {
				minimal = false
				break
			}
		}
		if minimal {
			b := a.Clone()
			b.More = fact.Reduce(sp.Voc, append(b.More, f))
			emit(b)
		}
	}
	// Specialize an existing MORE fact one pool step.
	for mi, g := range a.More {
		for _, f := range pool {
			if f == g || !fact.Leq(sp.Voc, g, f) {
				continue
			}
			direct := true
			for _, h := range pool {
				if h != f && h != g && fact.Leq(sp.Voc, g, h) && fact.Leq(sp.Voc, h, f) {
					direct = false
					break
				}
			}
			if !direct {
				continue
			}
			b := a.Clone()
			nm := append(fact.Set{}, b.More[:mi]...)
			nm = append(nm, b.More[mi+1:]...)
			nm = append(nm, f)
			b.More = fact.Reduce(sp.Voc, nm)
			emit(b)
		}
	}
}

// Predecessors generates the immediate predecessors of a within 𝒜:
// generalize one value one Hasse step (with antichain absorption), drop one
// value where the multiplicity lower bound allows, or drop/generalize a MORE
// fact. Results are deduplicated and sorted by key.
func (sp *Space) Predecessors(a Assignment) []Assignment {
	seen := map[string]struct{}{a.Key(): {}}
	var out []Assignment
	emit := func(b Assignment) {
		b = b.sealed()
		k := b.Key()
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		if sp.InA(b) && sp.Lt(b, a) {
			out = append(out, b)
		}
	}
	for i := range sp.Vars {
		vals := a.Vals[i]
		d := sp.domain(i)
		for vi, v := range vals {
			for _, p := range sp.Voc.Parents(v) {
				if _, ok := d[p]; !ok {
					continue
				}
				nv := make([]vocab.Term, 0, len(vals))
				nv = append(nv, vals[:vi]...)
				nv = append(nv, vals[vi+1:]...)
				nv = append(nv, p)
				b := a.Clone()
				b.Vals[i] = sp.Voc.ReduceAntichain(nv)
				emit(b)
			}
		}
		if len(vals) > sp.Vars[i].Mult.Min {
			for vi := range vals {
				b := a.Clone()
				nv := make([]vocab.Term, 0, len(vals)-1)
				nv = append(nv, vals[:vi]...)
				nv = append(nv, vals[vi+1:]...)
				b.Vals[i] = nv
				emit(b)
			}
		}
	}
	for mi := range a.More {
		b := a.Clone()
		nm := append(fact.Set{}, b.More[:mi]...)
		nm = append(nm, b.More[mi+1:]...)
		b.More = nm
		emit(b)
		// Generalize to a pool fact directly below.
		for _, g := range sp.MoreCandidates {
			if g != a.More[mi] && fact.Leq(sp.Voc, g, a.More[mi]) {
				c := a.Clone()
				nm2 := append(fact.Set{}, c.More[:mi]...)
				nm2 = append(nm2, c.More[mi+1:]...)
				nm2 = append(nm2, g)
				c.More = fact.Reduce(sp.Voc, nm2)
				emit(c)
			}
		}
	}
	sort.Slice(out, func(x, y int) bool { return out[x].Key() < out[y].Key() })
	return out
}

// Combine implements Proposition 5.1 directly: if a and b differ on exactly
// one variable, it returns their combination (the union on that variable)
// and true; otherwise it returns false.
func (sp *Space) Combine(a, b Assignment) (Assignment, bool) {
	diff := -1
	for i := range sp.Vars {
		if !termsEqual(a.Vals[i], b.Vals[i]) {
			if diff >= 0 {
				return Assignment{}, false
			}
			diff = i
		}
	}
	if diff < 0 || !a.More.Equal(b.More) {
		return Assignment{}, false
	}
	c := a.Clone()
	c.Vals[diff] = sp.Voc.ReduceAntichain(append(append([]vocab.Term(nil), a.Vals[diff]...), b.Vals[diff]...))
	return c.sealed(), true
}

func termsEqual(a, b []vocab.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
