package assign

import (
	"slices"
	"strings"

	"oassis/internal/fact"
	"oassis/internal/vocab"
)

// Lattice moves. Successor and predecessor generation dominate the engine's
// per-answer CPU cost, so this file is written for raw speed: candidates are
// assembled in reusable scratch buffers (hdrBuf/valBuf/keyBuf), deduplicated
// with a single no-allocation map probe on their serialized key, and only
// the accepted ones are copied into the Space's bump arenas (see arena.go).
// Unchanged value rows are shared structurally with the parent assignment —
// rows are immutable once published, so a successor differs from its parent
// by exactly one arena-allocated row. The emit order and canonical forms are
// byte-identical to the original clone-based generator, which the
// equivalence and golden tests pin down.

// DomainSize reports the exploration-domain size of variable i (used by the
// experiment harness when reporting lattice dimensions).
func (sp *Space) DomainSize(i int) int { return len(sp.tab.domains[i]) }

// Minimal returns the minimal (most general) elements of 𝒜: for each
// mandatory variable, value sets of the multiplicity's lower-bound size
// drawn from the variable's most general domain values (minimal domain
// values are pairwise incomparable, so any combination is an antichain);
// the empty set for optional variables (multiplicity * or ?); and no MORE
// facts. For the Figure 2 query this is the single node
// (w,x ↦ Attraction, y ↦ Activity, z ↦ Restaurant) at the top of Figure 3.
func (sp *Space) Minimal() []Assignment {
	choices := make([][][]vocab.Term, len(sp.Vars))
	for i, vs := range sp.Vars {
		if vs.Mult.Min == 0 {
			choices[i] = [][]vocab.Term{nil}
			continue
		}
		if vs.Mult.Min == 1 {
			for _, t := range sp.tab.minVals[i] {
				choices[i] = append(choices[i], []vocab.Term{t})
			}
		} else {
			choices[i] = sp.minimalAntichains(i, vs.Mult.Min)
		}
		if len(choices[i]) == 0 {
			// Empty domain, or a {k,...} lower bound that no size-k
			// antichain of domain values satisfies: no minimal elements.
			return nil
		}
	}
	var out []Assignment
	cur := make([][]vocab.Term, len(sp.Vars))
	var rec func(i int)
	rec = func(i int) {
		if i == len(sp.Vars) {
			a := sp.NewAssignment(cur, nil)
			if sp.InA(a) {
				out = append(out, a)
			}
			return
		}
		for _, c := range choices[i] {
			cur[i] = c
			rec(i + 1)
		}
	}
	if len(sp.Vars) > 0 {
		rec(0)
	} else if len(sp.ValidBase) > 0 || len(sp.Sat) > 0 {
		// No variables at all: the single constant assignment.
		out = append(out, sp.NewAssignment(nil, nil))
	}
	return out
}

// minimalAntichains enumerates the minimal size-k antichains of variable
// i's domain: antichains with no valid generalize move, i.e. every
// in-domain parent of every value is comparable with some other value of
// the set (generalizing would either leave the lattice floor via antichain
// absorption or yield a strict predecessor). Enumeration is O(|domain|^k)
// and capped; the {k,…} multiplicity extension is intended for small k.
func (sp *Space) minimalAntichains(i, k int) [][]vocab.Term {
	vals := sp.tab.domains[i]

	const cap = 1 << 16
	var out [][]vocab.Term
	set := make([]vocab.Term, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(out) >= cap {
			return
		}
		if len(set) == k {
			if sp.isMinimalAntichain(i, set) {
				out = append(out, append([]vocab.Term(nil), set...))
			}
			return
		}
		for j := start; j <= len(vals)-(k-len(set)); j++ {
			t := vals[j]
			ok := true
			for _, u := range set {
				if sp.Voc.Comparable(u, t) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			set = append(set, t)
			rec(j + 1)
			set = set[:len(set)-1]
		}
	}
	rec(0)
	return out
}

// isMinimalAntichain reports whether no value of the antichain can be
// generalized one in-domain Hasse step while keeping the set an antichain.
func (sp *Space) isMinimalAntichain(i int, set []vocab.Term) bool {
	for vi, v := range set {
		for _, p := range sp.Voc.Parents(v) {
			if !sp.tab.inDomain(i, p) {
				continue
			}
			comparable := false
			for ui, u := range set {
				if ui != vi && sp.Voc.Comparable(u, p) {
					comparable = true
					break
				}
			}
			if !comparable {
				return false // a valid generalize move exists
			}
		}
	}
	return true
}

// Successors generates the immediate successors of a within 𝒜: specialize
// one value one Hasse step, add one minimal compatible value to a variable
// whose multiplicity allows it (the lazy combination of Proposition 5.1), or
// extend/specialize the MORE fact-set from the candidate pool. Results are
// deduplicated and sorted by key.
func (sp *Space) Successors(a Assignment) []Assignment {
	return sp.AppendSuccessors(nil, a)
}

// AppendSuccessors appends the immediate successors of a to dst and returns
// the extended slice, so batched callers can collect the successors of many
// nodes into one buffer. The appended region is deduplicated and sorted by
// key; accepted assignments live in the Space's arenas and share unchanged
// rows with a.
func (sp *Space) AppendSuccessors(dst []Assignment, a Assignment) []Assignment {
	start := len(dst)
	for i := range sp.Vars {
		vals := a.Vals[i]
		// Specialize one value one step.
		for vi, v := range vals {
			for _, c := range sp.Voc.Children(v) {
				if !sp.tab.inDomain(i, c) {
					continue
				}
				if !compatible(sp.Voc, vals, vi, c) {
					continue
				}
				row := replaceAtBuf(sp.valBuf[:0], vals, vi, c)
				sp.valBuf = row
				dst = sp.emitRow(dst, a, i, row)
			}
		}
		// Add one minimal compatible value.
		max := sp.Vars[i].Mult.Max
		if max >= 0 && len(vals) >= max {
			continue
		}
		for _, t := range sp.minimalAddable(i, vals) {
			row := insertSortedBuf(append(sp.valBuf[:0], vals...), t)
			sp.valBuf = row
			dst = sp.emitRow(dst, a, i, row)
		}
	}

	if sp.More && len(sp.MoreCandidates) > 0 {
		dst = sp.moreSuccessors(dst, a)
	}
	return finishMoves(dst, start)
}

// emitRow runs the emit pipeline for the candidate obtained from a by
// replacing variable i's value row with row (a canonical sorted antichain in
// scratch storage).
func (sp *Space) emitRow(dst []Assignment, a Assignment, i int, row []vocab.Term) []Assignment {
	hdr := append(sp.hdrBuf[:0], a.Vals...)
	sp.hdrBuf = hdr
	hdr[i] = row
	return sp.emitCand(dst, a, Assignment{Vals: hdr, More: a.More}, i)
}

// emitCand is the shared emit pipeline: serialize the candidate's key into
// scratch, test 𝒜-membership (structural part first, then a single
// no-allocation map probe into the per-node memo) and order against a, and
// on acceptance intern the candidate (changed names the single value row
// that differs from a, or -1 for a pure MORE move). Together with the
// post-sort compaction in finishMoves it emits exactly the set the original
// seal → dedup → InA → Lt clone-based pipeline emitted: duplicate
// derivations of one node are collapsed after sorting instead of probed per
// candidate, and the strictness half of Lt reduces to the key comparison
// against a.
func (sp *Space) emitCand(dst []Assignment, a, cand Assignment, changed int) []Assignment {
	kb := cand.appendKey(sp.keyBuf[:0])
	sp.keyBuf = kb
	if string(kb) == a.Key() || !sp.structuralInA(cand) {
		return dst
	}
	// No explicit Leq order check against a: every Hasse move covers the
	// parent by construction — unchanged values cover themselves, a
	// specialized value covers the value it replaced (c ∈ Children(v) ⟹
	// v ≤ c, and dually p ∈ Parents(v) ⟹ p ≤ v for predecessors), added
	// values and MORE extensions only grow the covered set, and fact.Reduce
	// keeps most-specific representatives. Lt's strictness half is the key
	// comparison above. The old pipeline evaluated Lt anyway; on these
	// candidates it could only fail on equality, so the emitted set is
	// unchanged.
	info, visited := sp.nodes[string(kb)]
	if visited && !info.covered {
		return dst
	}
	if !visited {
		// First visit: materialize the key, one allocation per distinct
		// node per session — re-derivations from other parents share it.
		info = sp.nodeOf(cand, string(kb))
		if !info.covered {
			return dst
		}
	}
	cand.key = info.key
	if changed < 0 {
		// Pure MORE move: the value rows are a's own, shared wholesale.
		cand.Vals = a.Vals
		return append(dst, cand)
	}
	hdr := sp.hdrs.alloc(len(a.Vals))
	copy(hdr, a.Vals)
	hdr[changed] = sp.arena.clone(cand.Vals[changed])
	cand.Vals = hdr
	return append(dst, cand)
}

// finishMoves puts the emitted region dst[start:] into canonical form:
// sorted by key with duplicate derivations of the same node collapsed
// (duplicates are adjacent after sorting and bit-identical by canonicality,
// so keeping the first matches the old probe-per-candidate dedup exactly).
func finishMoves(dst []Assignment, start int) []Assignment {
	out := dst[start:]
	slices.SortFunc(out, func(x, y Assignment) int { return strings.Compare(x.key, y.key) })
	w := start
	for i := range out {
		if i > 0 && out[i].key == out[i-1].key {
			continue
		}
		dst[w] = out[i]
		w++
	}
	return dst[:w]
}

// compatible reports whether c is incomparable with every value of vals
// other than index skip (keeping the set an antichain without absorption).
func compatible(v *vocab.Vocabulary, vals []vocab.Term, skip int, c vocab.Term) bool {
	for i, u := range vals {
		if i == skip {
			continue
		}
		if v.Comparable(u, c) {
			return false
		}
	}
	return true
}

// replaceAtBuf appends vals-without-index-i to buf and sorted-inserts c.
func replaceAtBuf(buf, vals []vocab.Term, i int, c vocab.Term) []vocab.Term {
	buf = append(buf, vals[:i]...)
	buf = append(buf, vals[i+1:]...)
	return insertSortedBuf(buf, c)
}

// insertSortedBuf inserts t into the sorted slice buf in place (growing it by
// one). The lattice moves only insert values distinct from every element, so
// ties cannot occur.
func insertSortedBuf(buf []vocab.Term, t vocab.Term) []vocab.Term {
	pos := len(buf)
	for j, v := range buf {
		if t < v {
			pos = j
			break
		}
	}
	buf = append(buf, 0)
	copy(buf[pos+1:], buf[pos:])
	buf[pos] = t
	return buf
}

// minimalAddable returns the most general domain values of variable i that
// are incomparable with all current values: candidates t ∈ domain(i) such
// that no immediate parent of t is itself addable. The result lives in
// per-session scratch, valid until the next call.
func (sp *Space) minimalAddable(i int, vals []vocab.Term) []vocab.Term {
	addable := func(t vocab.Term) bool {
		return sp.tab.inDomain(i, t) && compatible(sp.Voc, vals, -1, t)
	}
	out := sp.addBuf[:0]
	for _, t := range sp.tab.domains[i] { // sorted ascending
		if !addable(t) {
			continue
		}
		minimal := true
		for _, p := range sp.Voc.Parents(t) {
			if addable(p) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, t)
		}
	}
	sp.addBuf = out
	return out
}

// moreSuccessors emits MORE-fact extensions of a: adding a minimal pool
// candidate, or replacing an existing MORE fact by a pool candidate that
// specializes it with nothing from the pool strictly between.
func (sp *Space) moreSuccessors(dst []Assignment, a Assignment) []Assignment {
	pool := sp.MoreCandidates
	covered := func(f fact.Fact) bool {
		for _, g := range a.More {
			if fact.Leq(sp.Voc, f, g) || fact.Leq(sp.Voc, g, f) {
				return true
			}
		}
		return false
	}
	// Add a pool fact that is minimal among addable pool facts.
	for _, f := range pool {
		if covered(f) {
			continue
		}
		minimal := true
		for _, g := range pool {
			if g != f && fact.Leq(sp.Voc, g, f) && !covered(g) {
				minimal = false
				break
			}
		}
		if minimal {
			nm := make(fact.Set, 0, len(a.More)+1)
			nm = append(nm, a.More...)
			nm = append(nm, f)
			dst = sp.emitCand(dst, a,
				Assignment{Vals: a.Vals, More: fact.Reduce(sp.Voc, nm)}, -1)
		}
	}
	// Specialize an existing MORE fact one pool step.
	for mi, g := range a.More {
		for _, f := range pool {
			if f == g || !fact.Leq(sp.Voc, g, f) {
				continue
			}
			direct := true
			for _, h := range pool {
				if h != f && h != g && fact.Leq(sp.Voc, g, h) && fact.Leq(sp.Voc, h, f) {
					direct = false
					break
				}
			}
			if !direct {
				continue
			}
			nm := make(fact.Set, 0, len(a.More))
			nm = append(nm, a.More[:mi]...)
			nm = append(nm, a.More[mi+1:]...)
			nm = append(nm, f)
			dst = sp.emitCand(dst, a,
				Assignment{Vals: a.Vals, More: fact.Reduce(sp.Voc, nm)}, -1)
		}
	}
	return dst
}

// Predecessors generates the immediate predecessors of a within 𝒜:
// generalize one value one Hasse step (with antichain absorption), drop one
// value where the multiplicity lower bound allows, or drop/generalize a MORE
// fact. Results are deduplicated and sorted by key.
func (sp *Space) Predecessors(a Assignment) []Assignment {
	var dst []Assignment
	for i := range sp.Vars {
		vals := a.Vals[i]
		for vi, v := range vals {
			for _, p := range sp.Voc.Parents(v) {
				if !sp.tab.inDomain(i, p) {
					continue
				}
				nv := append(sp.valBuf[:0], vals[:vi]...)
				nv = append(nv, vals[vi+1:]...)
				nv = append(nv, p)
				sp.valBuf = nv
				dst = sp.emitRow(dst, a, i, sp.Voc.ReduceAntichain(nv))
			}
		}
		if len(vals) > sp.Vars[i].Mult.Min {
			for vi := range vals {
				nv := append(sp.valBuf[:0], vals[:vi]...)
				nv = append(nv, vals[vi+1:]...)
				sp.valBuf = nv
				dst = sp.emitRow(dst, a, i, nv)
			}
		}
	}
	for mi := range a.More {
		nm := make(fact.Set, 0, len(a.More)-1)
		nm = append(nm, a.More[:mi]...)
		nm = append(nm, a.More[mi+1:]...)
		dst = sp.emitCand(dst, a, Assignment{Vals: a.Vals, More: nm}, -1)
		// Generalize to a pool fact directly below.
		for _, g := range sp.MoreCandidates {
			if g != a.More[mi] && fact.Leq(sp.Voc, g, a.More[mi]) {
				nm2 := make(fact.Set, 0, len(a.More))
				nm2 = append(nm2, a.More[:mi]...)
				nm2 = append(nm2, a.More[mi+1:]...)
				nm2 = append(nm2, g)
				dst = sp.emitCand(dst, a,
					Assignment{Vals: a.Vals, More: fact.Reduce(sp.Voc, nm2)}, -1)
			}
		}
	}
	return finishMoves(dst, 0)
}

// Combine implements Proposition 5.1 directly: if a and b differ on exactly
// one variable, it returns their combination (the union on that variable)
// and true; otherwise it returns false.
func (sp *Space) Combine(a, b Assignment) (Assignment, bool) {
	diff := -1
	for i := range sp.Vars {
		if !termsEqual(a.Vals[i], b.Vals[i]) {
			if diff >= 0 {
				return Assignment{}, false
			}
			diff = i
		}
	}
	if diff < 0 || !a.More.Equal(b.More) {
		return Assignment{}, false
	}
	c := a.Clone()
	c.Vals[diff] = sp.Voc.ReduceAntichain(append(append([]vocab.Term(nil), a.Vals[diff]...), b.Vals[diff]...))
	return c.sealed(), true
}

func termsEqual(a, b []vocab.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
