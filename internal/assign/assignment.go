// Package assign implements variable assignments with multiplicities and
// their semantic partial order (Section 4.1, Definition 4.1 of the paper),
// together with the lazy generation machinery of Section 5: the expansion of
// the valid-assignment set with its generalizations (Algorithm 1, line 1),
// immediate successor/predecessor moves on the assignment lattice, and
// combination of assignments for multiplicities (Proposition 5.1).
//
// An assignment maps each mining variable (a variable occurring in the
// SATISFYING clause) to an antichain of vocabulary terms; sets with
// comparable values are semantically redundant and are canonicalized away.
// Assignments additionally carry the extra facts contributed by the MORE
// keyword. φ ≤ φ' holds when every value of φ is generalized by some value
// of φ' (and every MORE fact of φ by some MORE fact of φ'); MSPs are the
// maximal valid significant assignments.
package assign

import (
	"strings"

	"oassis/internal/fact"
	"oassis/internal/vocab"
)

// Assignment maps each variable of a Space (by index) to a sorted antichain
// of terms, plus the canonical set of MORE facts. Assignments are immutable
// once created; all mutating operations return new values.
type Assignment struct {
	Vals [][]vocab.Term
	More fact.Set

	// key caches the canonical Key. It is set (sealed) by every Space
	// constructor and lattice move once the assignment is in final form;
	// Clone intentionally drops it, because clones exist to be mutated.
	// An empty key means "not sealed" — Key computes on demand then.
	key string
}

// NewAssignment builds a canonical assignment over sp from per-variable
// value sets and MORE facts: value sets are reduced to antichains and
// sorted, MORE facts reduced to their most specific representatives.
func (sp *Space) NewAssignment(vals [][]vocab.Term, more fact.Set) Assignment {
	out := Assignment{Vals: make([][]vocab.Term, len(sp.Vars))}
	for i := range sp.Vars {
		if i < len(vals) {
			out.Vals[i] = sp.Voc.ReduceAntichain(vals[i])
		}
	}
	if len(more) > 0 {
		out.More = fact.Reduce(sp.Voc, more)
	}
	return out.sealed()
}

// Singleton builds the multiplicity-1 assignment with the given value per
// variable (vocab.None entries become empty sets).
func (sp *Space) Singleton(vals ...vocab.Term) Assignment {
	out := Assignment{Vals: make([][]vocab.Term, len(sp.Vars))}
	for i := range sp.Vars {
		if i < len(vals) && vals[i] != vocab.None {
			out.Vals[i] = []vocab.Term{vals[i]}
		}
	}
	return out.sealed()
}

// Clone deep-copies a. The clone's key cache is dropped: clones are made to
// be mutated by the lattice moves, which re-seal before publishing.
func (a Assignment) Clone() Assignment {
	out := Assignment{Vals: make([][]vocab.Term, len(a.Vals))}
	for i, vs := range a.Vals {
		out.Vals[i] = append([]vocab.Term(nil), vs...)
	}
	out.More = a.More.Clone()
	return out
}

// sealed returns a with its canonical key computed and cached, making every
// subsequent Key call a field read. Must only be applied to assignments in
// final canonical form.
func (a Assignment) sealed() Assignment {
	a.key = a.computeKey()
	return a
}

// Key returns a canonical map key for a. Sealed assignments (everything a
// Space constructor or lattice move returns) answer from the cache;
// hand-built literals fall back to computing it.
func (a Assignment) Key() string {
	if a.key != "" {
		return a.key
	}
	return a.computeKey()
}

// computeKey serializes the canonical form. It relies on the invariant that
// value sets and the MORE fact-set are kept in canonical (sorted, reduced)
// form by every constructor and lattice move.
func (a Assignment) computeKey() string {
	n := 1
	for _, vs := range a.Vals {
		n += len(vs)*4 + 1
	}
	n += len(a.More) * 12
	return string(a.appendKey(make([]byte, 0, n)))
}

// appendKey appends the canonical key bytes of a to buf and returns the
// extended buffer. Successor generation serializes thousands of candidates
// per expansion; appending into a reusable scratch buffer lets rejected
// candidates cost zero heap allocations.
func (a Assignment) appendKey(buf []byte) []byte {
	put := func(t vocab.Term) {
		buf = append(buf, byte(t), byte(t>>8), byte(t>>16), byte(t>>24))
	}
	for _, vs := range a.Vals {
		for _, v := range vs {
			put(v)
		}
		buf = append(buf, ';')
	}
	buf = append(buf, '|')
	for _, f := range a.More {
		put(f.S)
		put(f.R)
		put(f.O)
	}
	return buf
}

// Equal reports whether a and b are the same canonical assignment.
func (a Assignment) Equal(b Assignment) bool { return a.Key() == b.Key() }

// Leq reports whether a ≤ b under Definition 4.1 extended with MORE facts:
// for every variable x and value v ∈ a(x) there is v' ∈ b(x) with v ≤ v',
// and every MORE fact of a is generalized by some MORE fact of b.
func (sp *Space) Leq(a, b Assignment) bool {
	for i := range sp.Vars {
		for _, v := range a.Vals[i] {
			ok := false
			for _, w := range b.Vals[i] {
				if sp.Voc.Leq(v, w) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
	}
	return fact.SetLeq(sp.Voc, a.More, b.More)
}

// Lt reports a < b (strict).
func (sp *Space) Lt(a, b Assignment) bool { return sp.Leq(a, b) && !a.Equal(b) }

// Size returns the total number of values and MORE facts, a rough measure of
// specificity used for ordering heuristics.
func (a Assignment) Size() int {
	n := len(a.More)
	for _, vs := range a.Vals {
		n += len(vs)
	}
	return n
}

// Instantiate applies a to the SATISFYING meta-fact-set (Section 3): each
// meta-fact is instantiated once per combination of the values of its
// variables; meta-facts mentioning a variable with an empty value set are
// dropped (multiplicity 0 deletes them). MORE facts are appended. The result
// is the canonical fact-set whose support the crowd is asked about.
func (sp *Space) Instantiate(a Assignment) fact.Set {
	var out fact.Set
	for _, m := range sp.Sat {
		out = appendMetaFacts(out, sp, m, a)
	}
	out = append(out, a.More...)
	return out.Canon()
}

func appendMetaFacts(out fact.Set, sp *Space, m Meta, a Assignment) fact.Set {
	choices := func(c Comp) []vocab.Term {
		if c.Var >= 0 {
			return a.Vals[c.Var]
		}
		return []vocab.Term{c.Term}
	}
	ss, rs, os := choices(m.S), choices(m.R), choices(m.O)
	if len(ss) == 0 || len(rs) == 0 || len(os) == 0 {
		return out // multiplicity 0: drop the meta-fact
	}
	for _, s := range ss {
		for _, r := range rs {
			for _, o := range os {
				out = append(out, fact.Fact{S: s, R: r, O: o})
			}
		}
	}
	return out
}

// Format renders a for diagnostics: variable name ↦ {values}; MORE facts
// appended in braces.
func (sp *Space) Format(a Assignment) string {
	var sb strings.Builder
	for i, vs := range a.Vals {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(sp.Vars[i].Name)
		sb.WriteString("↦{")
		for j, v := range vs {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(sp.Voc.Name(v))
		}
		sb.WriteString("}")
	}
	if len(a.More) > 0 {
		sb.WriteString(" +more{")
		sb.WriteString(a.More.Format(sp.Voc))
		sb.WriteString("}")
	}
	return sb.String()
}
