package assign

import "testing"

// Allocation gates for the interned hot path. The raw-speed pass holds its
// wins through these: if a change re-introduces per-call allocation on the
// sealed key, the precomputed table lookups, or successor generation, the
// gate fails before the benchmarks ever drift.

// TestAllocsSealedKey: a sealed assignment serves its canonical key without
// allocating (the engine calls Key on every pool probe and policy compare).
func TestAllocsSealedKey(t *testing.T) {
	s, sp := buildSpace(t, figure3Query)
	a := node(s, sp, []string{"Biking", "Ball Game"}, "Central Park")
	_ = a.Key() // seal
	allocs := testing.AllocsPerRun(100, func() {
		_ = a.Key()
	})
	if allocs != 0 {
		t.Fatalf("sealed Key allocates %.1f times per call, want 0", allocs)
	}
}

// TestAllocsDomainLookup: the precomputed table probes backing successor
// generation — domain membership, anchor admissibility, covers — are pure
// slice/bitset reads with zero allocation.
func TestAllocsDomainLookup(t *testing.T) {
	s, sp := buildSpace(t, figure3Query)
	tab := sp.Tables()
	a := node(s, sp, []string{"Biking", "Ball Game"}, "Central Park")
	v := a.Vals[0][0]
	allocs := testing.AllocsPerRun(100, func() {
		if !tab.inDomain(0, v) {
			t.Fatal("benchmark value left its own domain")
		}
		_ = tab.anchorOK(0, v)
		_ = tab.coversOf(0, v)
	})
	if allocs != 0 {
		t.Fatalf("interned domain lookups allocate %.1f times per call, want 0", allocs)
	}
}

// TestAllocsSuccessors: memo-warm successor generation allocates only the
// result slice and the arena copies of the emitted nodes — a handful of
// allocations, not one per candidate (the seed paid 65 on this node).
func TestAllocsSuccessors(t *testing.T) {
	s, sp := buildSpace(t, figure3Query)
	a := node(s, sp, []string{"Biking", "Ball Game"}, "Central Park")
	succs := sp.Successors(a) // warm the node memos
	if len(succs) == 0 {
		t.Fatal("gate node has no successors")
	}
	const maxAllocs = 8
	allocs := testing.AllocsPerRun(100, func() {
		sp.Successors(a)
	})
	if allocs > maxAllocs {
		t.Fatalf("warm Successors allocates %.1f times per call, want <= %d", allocs, maxAllocs)
	}
}
