package assign

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"oassis/internal/fact"
	"oassis/internal/oassisql"
	"oassis/internal/vocab"
)

// VarSpec describes one mining variable: a variable occurring in the
// SATISFYING clause of the query.
type VarSpec struct {
	Name    string
	Mult    oassisql.Mult
	Kind    vocab.Kind
	Anchors []vocab.Term // generalization caps; empty means vocabulary roots
}

// Comp is one component of a meta-fact: either a variable reference
// (Var ≥ 0, an index into Space.Vars) or a fixed term (Var < 0), where the
// term may be vocab.Any for the [] wildcard.
type Comp struct {
	Var  int
	Term vocab.Term
}

// Meta is a resolved SATISFYING meta-fact.
type Meta struct {
	S, R, O Comp
}

// Space is the per-session view of the mining lattice: the mining
// variables, the SATISFYING meta-fact-set, the valid base assignments
// computed from the WHERE clause, and the candidate pool for MORE facts.
// The frozen lattice tables (exploration domains, cover lists) live in a
// read-only Tables value that concurrent sessions share; everything
// mutable on the Space — the 𝒜-membership memo, the successor arenas and
// scratch buffers — is private to the single goroutine driving the
// session.
type Space struct {
	Voc  *vocab.Vocabulary
	Vars []VarSpec
	Sat  []Meta
	More bool
	// MoreCandidates seeds the MORE successor moves; in the live system
	// these arrive from crowd answers, in simulations they are configured.
	MoreCandidates fact.Set

	// ValidBase holds the multiplicity-1 valid assignments (one value per
	// variable), deduplicated, from WHERE evaluation.
	ValidBase [][]vocab.Term

	tab       *Tables              // frozen lattice tables, shared read-only
	validKeys map[string]struct{}  // keys of ValidBase rows
	nodes     map[string]*nodeInfo // per-node memo: interned key + 𝒜 membership

	// Per-session scratch and arenas for successor generation (see
	// arena.go for the lifetime rules). Never touched on the shared
	// read path.
	arena    termArena
	hdrs     hdrArena
	keyBuf   []byte         // candidate-key scratch
	baseBuf  []byte         // base-tuple-key scratch
	hdrBuf   [][]vocab.Term // candidate header scratch
	valBuf   []vocab.Term   // candidate value-row scratch
	addBuf   []vocab.Term   // minimalAddable output scratch
	tupleBuf []vocab.Term   // boxContained tuple scratch
}

// nodeInfo is the per-session memo record of one lattice node: the canonical
// key string, interned so every re-derivation of the node shares one
// allocation, and the memoized result of the box-cover test. A single map
// probe on the serialized key bytes answers both questions the emit pipeline
// asks.
type nodeInfo struct {
	key     string
	covered bool
}

// baseKey builds the key of a multiplicity-1 tuple.
func baseKey(vals []vocab.Term) string {
	var sb strings.Builder
	var tmp [4]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint32(tmp[:], uint32(v))
		sb.Write(tmp[:])
	}
	return sb.String()
}

// NewSpace builds a Space for query q over vocabulary v. bindings are the
// WHERE-clause results (variable name → term); anchors are the
// generalization caps per variable (see sparql.Anchors). Variables that
// occur in SATISFYING but not in any binding (the pure-mining form with an
// empty WHERE clause) range over the whole vocabulary of their kind.
func NewSpace(v *vocab.Vocabulary, q *oassisql.Query, bindings []map[string]vocab.Term,
	anchors map[string][]vocab.Term) (*Space, error) {

	sp := &Space{Voc: v, More: q.More}

	// Collect mining variables in SATISFYING-occurrence order, with their
	// multiplicities and kinds.
	varIdx := map[string]int{}
	addVar := func(a oassisql.Atom, m oassisql.Mult, kind vocab.Kind) (int, error) {
		if a.Kind != oassisql.AtomVar {
			return -1, nil
		}
		if i, ok := varIdx[a.Name]; ok {
			if sp.Vars[i].Kind != kind {
				return -1, fmt.Errorf("assign: variable $%s used as both element and relation", a.Name)
			}
			if m != oassisql.MultOne && sp.Vars[i].Mult == oassisql.MultOne {
				sp.Vars[i].Mult = m
			}
			return i, nil
		}
		i := len(sp.Vars)
		varIdx[a.Name] = i
		sp.Vars = append(sp.Vars, VarSpec{Name: a.Name, Mult: m, Kind: kind, Anchors: anchors[a.Name]})
		return i, nil
	}

	conv := func(a oassisql.Atom, m oassisql.Mult, kind vocab.Kind) (Comp, error) {
		switch a.Kind {
		case oassisql.AtomVar:
			i, err := addVar(a, m, kind)
			if err != nil {
				return Comp{}, err
			}
			return Comp{Var: i}, nil
		case oassisql.AtomAny:
			return Comp{Var: -1, Term: vocab.Any}, nil
		case oassisql.AtomTerm:
			t, ok := v.Lookup(a.Name)
			if !ok {
				return Comp{}, fmt.Errorf("assign: unknown term %q in SATISFYING", a.Name)
			}
			if v.KindOf(t) != kind {
				return Comp{}, fmt.Errorf("assign: %q used with wrong kind in SATISFYING", a.Name)
			}
			return Comp{Var: -1, Term: t}, nil
		default:
			return Comp{}, fmt.Errorf("assign: literal in SATISFYING")
		}
	}

	for _, p := range q.Satisfying {
		var m Meta
		var err error
		if m.S, err = conv(p.S, p.SMult, vocab.Element); err != nil {
			return nil, err
		}
		if m.R, err = conv(p.R, oassisql.MultOne, vocab.Relation); err != nil {
			return nil, err
		}
		if m.O, err = conv(p.O, p.OMult, vocab.Element); err != nil {
			return nil, err
		}
		sp.Sat = append(sp.Sat, m)
	}

	// Build the valid base assignments: project bindings onto the mining
	// variables. Unbound variables range over their whole kind.
	var unbound []int
	boundIn := map[string]bool{}
	for _, b := range bindings {
		for name := range b {
			boundIn[name] = true
		}
	}
	for i, vs := range sp.Vars {
		if !boundIn[vs.Name] {
			unbound = append(unbound, i)
		}
	}
	rows := map[string][]vocab.Term{}
	// The pure-mining form (empty WHERE clause) has a single empty binding;
	// an unsatisfiable non-empty WHERE clause yields no bindings and hence
	// an empty valid set.
	if len(bindings) == 0 && len(q.Where) == 0 && len(sp.Vars) > 0 {
		bindings = []map[string]vocab.Term{{}}
	}
	kinds := make([]vocab.Kind, len(sp.Vars))
	for i, vs := range sp.Vars {
		kinds[i] = vs.Kind
	}
	for _, b := range bindings {
		tuple := make([]vocab.Term, len(sp.Vars))
		for i, vs := range sp.Vars {
			if t, ok := b[vs.Name]; ok {
				tuple[i] = t
			} else {
				tuple[i] = vocab.None // filled below for unbound vars
			}
		}
		expandUnbound(v, tuple, unbound, kinds, 0, rows)
	}
	keys := make([]string, 0, len(rows))
	for k := range rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sp.validKeys = make(map[string]struct{}, len(keys))
	for _, k := range keys {
		sp.ValidBase = append(sp.ValidBase, rows[k])
		sp.validKeys[k] = struct{}{}
	}
	sp.tab = NewTables(v, sp.Vars, sp.ValidBase)
	sp.initSession()
	return sp, nil
}

// FromParts rebuilds a Space from previously compiled parts (see
// internal/plan): the variable specs, resolved meta-facts, MORE flag and
// the valid base rows in their canonical (sorted-key) order. The lattice
// tables are recomputed; callers that compiled the parts once (a plan)
// should use FromShared with the plan's Tables instead.
func FromParts(v *vocab.Vocabulary, vars []VarSpec, sat []Meta, more bool,
	validBase [][]vocab.Term) *Space {

	return FromShared(v, vars, sat, more, validBase, nil)
}

// FromShared rebuilds a Space from previously compiled parts together with
// the precomputed read-only lattice tables (nil recomputes them). The
// immutable parts and tables are shared; the mutable memo structures,
// scratch buffers and arenas are built fresh, so the returned Space is
// private to its session, and the fill mirrors NewSpace exactly so planned
// execution is bit-identical to direct construction.
func FromShared(v *vocab.Vocabulary, vars []VarSpec, sat []Meta, more bool,
	validBase [][]vocab.Term, tab *Tables) *Space {

	sp := &Space{Voc: v, Vars: vars, Sat: sat, More: more}
	sp.validKeys = make(map[string]struct{}, len(validBase))
	for _, tuple := range validBase {
		sp.ValidBase = append(sp.ValidBase, tuple)
		sp.validKeys[baseKey(tuple)] = struct{}{}
	}
	if tab == nil {
		tab = NewTables(v, sp.Vars, sp.ValidBase)
	}
	sp.tab = tab
	sp.initSession()
	return sp
}

// Tables returns the space's frozen lattice tables, for sharing with
// sibling sessions of the same plan.
func (sp *Space) Tables() *Tables { return sp.tab }

// initSession allocates the per-session mutable state.
func (sp *Space) initSession() {
	sp.nodes = make(map[string]*nodeInfo)
	sp.tupleBuf = make([]vocab.Term, len(sp.Vars))
	sp.hdrBuf = make([][]vocab.Term, 0, len(sp.Vars))
}

// expandUnbound fills kind-wide domains for unbound variables.
func expandUnbound(v *vocab.Vocabulary, tuple []vocab.Term, unbound []int, kinds []vocab.Kind,
	k int, rows map[string][]vocab.Term) {
	if k == len(unbound) {
		cp := append([]vocab.Term(nil), tuple...)
		rows[baseKey(cp)] = cp
		return
	}
	i := unbound[k]
	for t := 0; t < v.Len(); t++ {
		if v.KindOf(vocab.Term(t)) != kinds[i] {
			continue
		}
		tuple[i] = vocab.Term(t)
		expandUnbound(v, tuple, unbound, kinds, k+1, rows)
	}
	tuple[i] = vocab.None
}

// IsValidBase reports whether the multiplicity-1 tuple is a valid base
// assignment. The probe builds the tuple key in a scratch buffer; the
// compiler's map-access-by-converted-bytes fast path keeps it
// allocation-free.
func (sp *Space) IsValidBase(vals []vocab.Term) bool {
	buf := sp.baseBuf[:0]
	for _, v := range vals {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	sp.baseBuf = buf
	_, ok := sp.validKeys[string(buf)]
	return ok
}

// IsValid reports whether a is a valid assignment w.r.t. the query
// (Definition: every combination of one value per variable is a valid base
// assignment — Proposition 5.1 closure — and the multiplicity bounds hold).
// Variables with empty value sets are handled by projection: every
// combination of the nonempty variables must extend to some valid base row.
// MORE facts never affect validity.
func (sp *Space) IsValid(a Assignment) bool {
	for i, vs := range sp.Vars {
		if !vs.Mult.Allows(len(a.Vals[i])) {
			return false
		}
	}
	if len(a.More) > 0 && !sp.More {
		return false
	}
	return sp.boxContained(a)
}

// InA reports whether a belongs to the explored set 𝒜 (Algorithm 1,
// line 1): a is a (not necessarily proper) generalization of some valid
// assignment, subject to the anchor caps and the multiplicity upper bounds.
func (sp *Space) InA(a Assignment) bool {
	if !sp.structuralInA(a) {
		return false
	}
	return sp.nodeOf(a, a.Key()).covered
}

// nodeOf returns (computing on first visit) a's session memo record; key
// must be a's canonical key.
func (sp *Space) nodeOf(a Assignment, key string) *nodeInfo {
	if info, ok := sp.nodes[key]; ok {
		return info
	}
	info := &nodeInfo{key: key, covered: sp.coveredByValidBox(a)}
	sp.nodes[key] = info
	return info
}

// structuralInA is the cheap, key-free part of the 𝒜-membership test:
// multiplicity bounds, anchor caps and the MORE gate. The emit pipeline runs
// it before materializing a candidate's key so structurally impossible
// candidates cost zero allocations.
func (sp *Space) structuralInA(a Assignment) bool {
	for i, vs := range sp.Vars {
		// The traversal keeps multiplicity bounds on both sides: the paper's
		// Figure 3 lattice never drops below one value per mandatory
		// variable (its top node is (Attraction, Activity), not (∅, ∅)).
		if !vs.Mult.Allows(len(a.Vals[i])) {
			return false
		}
		for _, t := range a.Vals[i] {
			if !sp.respectsAnchors(i, t) {
				return false
			}
		}
	}
	return len(a.More) == 0 || sp.More
}

// respectsAnchors reports whether value t of variable i is at or below every
// anchor of i (or, with no anchors, has the right kind) — a precomputed bit
// probe; out-of-range terms (None, Any) are rejected by the range guard.
func (sp *Space) respectsAnchors(i int, t vocab.Term) bool {
	return sp.tab.anchorOK(i, t)
}

// boxContained checks whether every combination of one value per (nonempty)
// variable of a is a valid base assignment. Variables with empty value sets
// use projection semantics: the combination must extend to some valid row.
func (sp *Space) boxContained(a Assignment) bool {
	tuple := sp.tupleBuf
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(sp.Vars) {
			return sp.matchesSomeBase(tuple)
		}
		if len(a.Vals[i]) == 0 {
			tuple[i] = vocab.None // wildcard position: projection semantics
			return rec(i + 1)
		}
		for _, v := range a.Vals[i] {
			tuple[i] = v
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}

// matchesSomeBase reports whether some valid base row agrees with tuple on
// all non-None positions.
func (sp *Space) matchesSomeBase(tuple []vocab.Term) bool {
	hasNone := false
	for _, t := range tuple {
		if t == vocab.None {
			hasNone = true
			break
		}
	}
	if !hasNone {
		return sp.IsValidBase(tuple)
	}
	for _, row := range sp.ValidBase {
		ok := true
		for i, t := range tuple {
			if t != vocab.None && row[i] != t {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// coveredByValidBox reports whether there exists a valid assignment ψ with
// a ≤ ψ: for each variable a set of covering valid values must exist whose
// full cross product lies in ValidBase. The search assigns, per variable and
// per value of a, a covering valid value, then verifies the box.
func (sp *Space) coveredByValidBox(a Assignment) bool {
	// candidate covers per variable per value (memoized per var/value).
	covers := make([][][]vocab.Term, len(sp.Vars))
	for i := range sp.Vars {
		covers[i] = make([][]vocab.Term, len(a.Vals[i]))
		for j, v := range a.Vals[i] {
			cs := sp.coversOf(i, v)
			if len(cs) == 0 {
				return false
			}
			covers[i][j] = cs
		}
	}
	// chosen[i] collects the selected cover values for variable i.
	chosen := make([][]vocab.Term, len(sp.Vars))
	var pick func(i, j int) bool
	pick = func(i, j int) bool {
		if i == len(sp.Vars) {
			return sp.boxContained(sp.NewAssignment(chosen, nil))
		}
		if j == len(covers[i]) {
			return pick(i+1, 0)
		}
		for _, c := range covers[i][j] {
			chosen[i] = append(chosen[i], c)
			if pick(i, j+1) {
				chosen[i] = chosen[i][:len(chosen[i])-1]
				return true
			}
			chosen[i] = chosen[i][:len(chosen[i])-1]
		}
		return false
	}
	return pick(0, 0)
}

// coversOf returns the precomputed valid values of variable i that are at or
// below v, i.e. the candidate covers of v in a valid assignment.
func (sp *Space) coversOf(i int, v vocab.Term) []vocab.Term {
	return sp.tab.coversOf(i, v)
}

// VarIndex returns the index of the named mining variable, or -1.
func (sp *Space) VarIndex(name string) int {
	for i, v := range sp.Vars {
		if v.Name == name {
			return i
		}
	}
	return -1
}

// QuestionKey returns the crowd-question key of a: distinct assignments that
// instantiate the SATISFYING meta-fact-set to the same fact-set share one
// crowd question (Section 4.1 counts unique questions).
func (sp *Space) QuestionKey(a Assignment) string {
	return sp.Instantiate(a).Key()
}

// Stats about the space, for reports.
func (sp *Space) String() string {
	names := make([]string, len(sp.Vars))
	for i, v := range sp.Vars {
		names[i] = "$" + v.Name + v.Mult.Marker()
	}
	return fmt.Sprintf("space(vars=%s, valid=%d)", strings.Join(names, ","), len(sp.ValidBase))
}
