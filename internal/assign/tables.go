package assign

import (
	"math/bits"

	"oassis/internal/vocab"
)

// Tables is the frozen, read-only lattice context of one compiled query:
// for every mining variable, the exploration domain (the anchor-respecting
// upward closure of the variable's valid values) as a dense-term bitset
// plus a sorted slice, the domain's most general elements (the lattice
// floor), the sorted distinct valid values, and — for every domain term —
// the precomputed list of valid values it generalizes (the cover lists the
// 𝒜-membership test searches). Everything is immutable after NewTables
// returns, so one Tables instance is shared by every Space built from the
// same plan and probed lock-free by concurrent sessions; the lazy per-Space
// domain memoization it replaces forced each session to rediscover the
// closure privately.
type Tables struct {
	terms int // vocabulary size the bitsets are dimensioned for
	words int // bitset row width in uint64 words

	domainBits [][]uint64     // per variable: bit t set iff t in domain
	anchorBits [][]uint64     // per variable: bit t set iff t respects the anchors
	domains    [][]vocab.Term // per variable: the domain, sorted ascending
	minVals    [][]vocab.Term // per variable: most general domain values
	validAt    [][]vocab.Term // per variable: distinct valid values, sorted
	// covers[i][t] lists the valid values of variable i that specialize
	// term t (v with t ≤ v), nil outside the domain. Indexed by term id.
	covers [][][]vocab.Term
}

// NewTables precomputes the lattice tables for the given variable specs and
// valid base rows over a frozen vocabulary. It is called once per compiled
// plan (or once per ad-hoc Space) and its result may be shared freely.
func NewTables(voc *vocab.Vocabulary, vars []VarSpec, validBase [][]vocab.Term) *Tables {
	n := voc.Len()
	t := &Tables{
		terms:      n,
		words:      (n + 63) / 64,
		domainBits: make([][]uint64, len(vars)),
		anchorBits: make([][]uint64, len(vars)),
		domains:    make([][]vocab.Term, len(vars)),
		minVals:    make([][]vocab.Term, len(vars)),
		validAt:    make([][]vocab.Term, len(vars)),
		covers:     make([][][]vocab.Term, len(vars)),
	}
	for i := range vars {
		t.build(voc, vars, i, validBase)
	}
	return t
}

// build fills variable i's tables.
func (t *Tables) build(voc *vocab.Vocabulary, vars []VarSpec, i int, validBase [][]vocab.Term) {
	// Distinct valid values, via a scratch bitset so the list comes out
	// sorted by term id.
	validBits := make([]uint64, t.words)
	for _, row := range validBase {
		if v := row[i]; v >= 0 {
			validBits[v>>6] |= 1 << (uint(v) & 63)
		}
	}
	t.validAt[i] = termsOfBits(validBits)

	// Anchor-respect bitmap: one Leq sweep at build time turns the per-value
	// anchor test on the hot path into a single bit probe.
	anchorOK := make([]uint64, t.words)
	for v := vocab.Term(0); int(v) < t.terms; v++ {
		if respectsAnchors(voc, vars[i], v) {
			anchorOK[v>>6] |= 1 << (uint(v) & 63)
		}
	}
	t.anchorBits[i] = anchorOK

	// Exploration domain: anchor-respecting upward closure of the valid
	// values (iterative DFS over the generalization edges).
	bits := make([]uint64, t.words)
	respects := func(v vocab.Term) bool { return anchorOK[v>>6]&(1<<(uint(v)&63)) != 0 }
	var stack []vocab.Term
	push := func(v vocab.Term) {
		if bits[v>>6]&(1<<(uint(v)&63)) != 0 || !respects(v) {
			return
		}
		bits[v>>6] |= 1 << (uint(v) & 63)
		stack = append(stack, v)
	}
	for _, v := range t.validAt[i] {
		push(v)
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range voc.Parents(v) {
			push(p)
		}
	}
	t.domainBits[i] = bits
	t.domains[i] = termsOfBits(bits)

	// Most general domain values: no immediate parent inside the domain.
	for _, v := range t.domains[i] {
		minimal := true
		for _, p := range voc.Parents(v) {
			if t.inDomain(i, p) {
				minimal = false
				break
			}
		}
		if minimal {
			t.minVals[i] = append(t.minVals[i], v)
		}
	}

	// Cover lists: every domain value is, by construction, a (possibly
	// trivial) generalization of at least one valid value.
	t.covers[i] = make([][]vocab.Term, t.terms)
	for _, v := range t.domains[i] {
		var cs []vocab.Term
		for _, u := range t.validAt[i] {
			if voc.Leq(v, u) {
				cs = append(cs, u)
			}
		}
		t.covers[i][v] = cs
	}
}

// inDomain reports whether term v belongs to variable i's exploration
// domain — a single word-indexed bit test.
func (t *Tables) inDomain(i int, v vocab.Term) bool {
	if v < 0 || int(v) >= t.terms {
		return false
	}
	return t.domainBits[i][v>>6]&(1<<(uint(v)&63)) != 0
}

// anchorOK reports whether term v respects variable i's anchors — the
// precomputed equivalent of respectsAnchors.
func (t *Tables) anchorOK(i int, v vocab.Term) bool {
	if v < 0 || int(v) >= t.terms {
		return false
	}
	return t.anchorBits[i][v>>6]&(1<<(uint(v)&63)) != 0
}

// coversOf returns the valid values of variable i at or below v (the
// candidate covers of v in a valid assignment). The returned slice is
// shared and must not be modified.
func (t *Tables) coversOf(i int, v vocab.Term) []vocab.Term {
	if v < 0 || int(v) >= t.terms {
		return nil
	}
	return t.covers[i][v]
}

// termsOfBits expands a bitset into the ascending term slice it denotes.
func termsOfBits(set []uint64) []vocab.Term {
	var out []vocab.Term
	for w, word := range set {
		for ; word != 0; word &= word - 1 {
			out = append(out, vocab.Term(w<<6+bits.TrailingZeros64(word)))
		}
	}
	return out
}

// respectsAnchors reports whether value v may appear at a variable with
// spec vs: right kind, not the wildcard, and at or below every anchor.
func respectsAnchors(voc *vocab.Vocabulary, vs VarSpec, v vocab.Term) bool {
	if v == vocab.Any {
		return false
	}
	if voc.KindOf(v) != vs.Kind {
		return false
	}
	for _, a := range vs.Anchors {
		if !voc.Leq(a, v) {
			return false
		}
	}
	return true
}
