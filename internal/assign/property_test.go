package assign

import (
	"fmt"
	"math/rand"
	"testing"

	"oassis/internal/fact"
	"oassis/internal/oassisql"
	"oassis/internal/vocab"
)

// randomSpace builds a small random two-variable space with + multiplicity
// on the first variable.
func randomSpace(rng *rand.Rand) (*Space, []vocab.Term) {
	v := vocab.New()
	v.MustAddRelation("does")
	grow := func(prefix string, n int) []vocab.Term {
		root := v.MustAddElement(prefix + "root")
		terms := []vocab.Term{root}
		for i := 0; i < n; i++ {
			t := v.MustAddElement(fmt.Sprintf("%s%d", prefix, i))
			v.MustAddOrder(terms[rng.Intn(len(terms))], t)
			// Occasional second parent for DAG shape.
			if rng.Intn(5) == 0 && len(terms) > 1 {
				p := terms[rng.Intn(len(terms))]
				if p != t && !v.Comparable(p, t) {
					_ = v.AddOrder(p, t)
				}
			}
			terms = append(terms, t)
		}
		return terms
	}
	ys := grow("y", 8)
	xs := grow("x", 4)
	if err := v.Freeze(); err != nil {
		panic(err)
	}
	q := &oassisql.Query{
		Select:  oassisql.SelectFactSets,
		Support: 0.5,
		Satisfying: []oassisql.Pattern{{
			S:     oassisql.Var("y"),
			SMult: oassisql.MultPlus,
			R:     oassisql.TermAtom("does"),
			O:     oassisql.Var("x"),
			OMult: oassisql.MultOne,
		}},
	}
	var bindings []map[string]vocab.Term
	for _, y := range ys[1:] {
		for _, x := range xs[1:] {
			if rng.Intn(4) != 0 { // leave some pairs invalid
				bindings = append(bindings, map[string]vocab.Term{"y": y, "x": x})
			}
		}
	}
	anchors := map[string][]vocab.Term{"y": {ys[0]}, "x": {xs[0]}}
	sp, err := NewSpace(v, q, bindings, anchors)
	if err != nil {
		panic(err)
	}
	all := append(append([]vocab.Term(nil), ys...), xs...)
	return sp, all
}

// sampleNode walks a few random successor steps from a random minimal node.
func sampleNode(sp *Space, rng *rand.Rand) (Assignment, bool) {
	min := sp.Minimal()
	if len(min) == 0 {
		return Assignment{}, false
	}
	a := min[rng.Intn(len(min))]
	for steps := rng.Intn(5); steps > 0; steps-- {
		succs := sp.Successors(a)
		if len(succs) == 0 {
			break
		}
		a = succs[rng.Intn(len(succs))]
	}
	return a, true
}

func TestLatticeLawsOnRandomSpaces(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 7))
		sp, _ := randomSpace(rng)
		for probe := 0; probe < 8; probe++ {
			a, ok := sampleNode(sp, rng)
			if !ok {
				continue
			}
			if !sp.InA(a) {
				t.Fatalf("trial %d: sampled node outside 𝒜: %s", trial, sp.Format(a))
			}
			if !sp.Leq(a, a) {
				t.Fatal("Leq not reflexive")
			}
			succs := sp.Successors(a)
			for _, b := range succs {
				if !sp.Lt(a, b) {
					t.Fatalf("trial %d: successor not strictly above: %s vs %s",
						trial, sp.Format(a), sp.Format(b))
				}
				if !sp.InA(b) {
					t.Fatalf("trial %d: successor outside 𝒜", trial)
				}
				// Instantiation is monotone w.r.t. ≤.
				fa, fb := sp.Instantiate(a), sp.Instantiate(b)
				if !fact.SetLeq(sp.Voc, fa, fb) {
					t.Fatalf("trial %d: instantiate not monotone:\n  %s\n  %s",
						trial, fa.Format(sp.Voc), fb.Format(sp.Voc))
				}
				// Predecessors invert successors.
				inverted := false
				for _, p := range sp.Predecessors(b) {
					if p.Equal(a) {
						inverted = true
						break
					}
				}
				if !inverted {
					t.Fatalf("trial %d: %s not among predecessors of its successor %s",
						trial, sp.Format(a), sp.Format(b))
				}
			}
			// InA is downward closed: predecessors of an 𝒜 node are in 𝒜.
			for _, p := range sp.Predecessors(a) {
				if !sp.InA(p) {
					t.Fatalf("trial %d: predecessor outside 𝒜", trial)
				}
			}
			// IsValid ⊆ InA.
			if sp.IsValid(a) && !sp.InA(a) {
				t.Fatalf("trial %d: valid node outside 𝒜", trial)
			}
		}
	}
}

func TestSuccessorsNeverSkipValidBase(t *testing.T) {
	// Completeness: every valid base assignment is reachable from some
	// minimal element through successor moves.
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 31))
		sp, _ := randomSpace(rng)
		reached := map[string]bool{}
		var queue []Assignment
		seen := map[string]bool{}
		for _, m := range sp.Minimal() {
			queue = append(queue, m)
			seen[m.Key()] = true
		}
		for len(queue) > 0 {
			a := queue[0]
			queue = queue[1:]
			reached[a.Key()] = true
			for _, s := range sp.Successors(a) {
				// Bound the walk to multiplicity ≤ 1 to keep it finite.
				if len(s.Vals[0]) > 1 {
					continue
				}
				if !seen[s.Key()] {
					seen[s.Key()] = true
					queue = append(queue, s)
				}
			}
		}
		for _, row := range sp.ValidBase {
			a := sp.Singleton(row...)
			if !reached[a.Key()] {
				t.Fatalf("trial %d: valid base %s unreachable from minimal elements",
					trial, sp.Format(a))
			}
		}
	}
}

func TestTransitivityOnRandomNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sp, _ := randomSpace(rng)
	var nodes []Assignment
	for i := 0; i < 40; i++ {
		if a, ok := sampleNode(sp, rng); ok {
			nodes = append(nodes, a)
		}
	}
	for _, a := range nodes {
		for _, b := range nodes {
			for _, c := range nodes {
				if sp.Leq(a, b) && sp.Leq(b, c) && !sp.Leq(a, c) {
					t.Fatalf("transitivity violated:\n a=%s\n b=%s\n c=%s",
						sp.Format(a), sp.Format(b), sp.Format(c))
				}
			}
			if sp.Leq(a, b) && sp.Leq(b, a) && !a.Equal(b) {
				t.Fatalf("antisymmetry violated: %s vs %s", sp.Format(a), sp.Format(b))
			}
		}
	}
}
