package assign

import (
	"oassis/internal/vocab"
)

// Bump arenas for successor generation. A Space generates thousands of
// lattice nodes per run and each node needs a [][]Term header plus one
// fresh value row; allocating them individually made Successors the
// engine's allocation hotspot. The arenas hand out sub-slices of
// block-allocated backing arrays instead: allocation is a bounds check and
// a slice expression, and the blocks are released together when the last
// assignment referencing them becomes unreachable (assignments keep their
// blocks alive through the sub-slices, so the arena owner — the per-session
// Space — may be dropped earlier).
//
// Lifetime rules: arena-allocated slices are immutable after being handed
// out (assignments are canonical and never mutated in place), blocks are
// never reused or shrunk, and the arenas are single-owner — only the
// engine goroutine that owns the Space may allocate. Rejected successor
// candidates never touch the arenas; they are assembled in reusable
// scratch buffers and copied in only once accepted.

// arenaBlock is the number of terms (or rows) allocated per backing block;
// large enough to amortize the block allocations, small enough not to
// strand memory on tiny lattices.
const arenaBlock = 1024

// termArena bump-allocates immutable []vocab.Term rows.
type termArena struct {
	cur []vocab.Term
}

// clone copies vs into the arena and returns the stable full-capacity
// sub-slice.
func (a *termArena) clone(vs []vocab.Term) []vocab.Term {
	n := len(vs)
	if n == 0 {
		return nil
	}
	if cap(a.cur)-len(a.cur) < n {
		size := arenaBlock
		if n > size {
			size = n
		}
		a.cur = make([]vocab.Term, 0, size)
	}
	start := len(a.cur)
	a.cur = a.cur[:start+n]
	out := a.cur[start : start+n : start+n]
	copy(out, vs)
	return out
}

// hdrArena bump-allocates immutable [][]vocab.Term assignment headers.
type hdrArena struct {
	cur [][]vocab.Term
}

// alloc returns an uninitialized n-row header from the arena.
func (a *hdrArena) alloc(n int) [][]vocab.Term {
	if n == 0 {
		return nil
	}
	if cap(a.cur)-len(a.cur) < n {
		size := arenaBlock
		if n > size {
			size = n
		}
		a.cur = make([][]vocab.Term, 0, size)
	}
	start := len(a.cur)
	a.cur = a.cur[:start+n]
	return a.cur[start : start+n : start+n]
}
