package assign

import (
	"math/rand"
	"testing"
)

// Microbenchmarks for the lattice hot path. The engine calls Successors
// from expansion, descent and MSP confirmation, so successor generation
// dominates per-answer CPU cost; the committed numbers in DESIGN.md's
// Performance section track these benches across PRs.

// BenchmarkSuccessors measures immediate-successor generation from a
// mid-lattice multi-value node of the Figure 3 space, the shape the engine
// expands most often on the running example.
func BenchmarkSuccessors(b *testing.B) {
	s, sp := buildSpace(b, figure3Query)
	a := node(s, sp, []string{"Biking", "Ball Game"}, "Central Park")
	if len(sp.Successors(a)) == 0 { // warm the lazy memos
		b.Fatal("benchmark node has no successors")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Successors(a)
	}
}

// BenchmarkSuccessorsWide measures successor generation across a sample of
// nodes of a wider random DAG space (the property-test generator), so the
// number is not an artifact of one lattice shape.
func BenchmarkSuccessorsWide(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	sp, _ := randomSpace(rng)
	var nodes []Assignment
	for i := 0; i < 64; i++ {
		if a, ok := sampleNode(sp, rng); ok {
			nodes = append(nodes, a)
		}
	}
	if len(nodes) == 0 {
		b.Fatal("no sample nodes")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Successors(nodes[i%len(nodes)])
	}
}

// BenchmarkPredecessors mirrors BenchmarkSuccessors for the downward moves
// used by classification inference.
func BenchmarkPredecessors(b *testing.B) {
	s, sp := buildSpace(b, figure3Query)
	a := node(s, sp, []string{"Biking", "Ball Game"}, "Central Park")
	if len(sp.Predecessors(a)) == 0 {
		b.Fatal("benchmark node has no predecessors")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.Predecessors(a)
	}
}

// BenchmarkInA measures the explored-set membership test on successor-shaped
// nodes (memo-warm), the guard every generated candidate passes through.
func BenchmarkInA(b *testing.B) {
	s, sp := buildSpace(b, figure3Query)
	seed := node(s, sp, []string{"Biking", "Ball Game"}, "Central Park")
	nodes := append([]Assignment{seed}, sp.Successors(seed)...)
	for _, n := range nodes {
		sp.InA(n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.InA(nodes[i%len(nodes)])
	}
}
