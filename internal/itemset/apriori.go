// Package itemset implements classic frequent itemset mining (Agrawal &
// Srikant's Apriori, reference [1] of the paper) and taxonomy-aware
// generalized itemset mining (Srikant & Agrawal, reference [28]). The paper
// shows that OASSIS-QL with multiplicities captures standard frequent
// itemset mining (Section 4.1: empty WHERE clause and `$x+ [] []`); this
// package provides the ground-truth implementations the experiments
// cross-check against, and doubles as the pattern generator for synthetic
// crowds.
package itemset

import (
	"sort"
)

// Itemset is a sorted set of item identifiers.
type Itemset []int

// Support pairs an itemset with its support.
type Support struct {
	Items   Itemset
	Support float64
}

// key returns a canonical map key.
func (s Itemset) key() string {
	b := make([]byte, 0, len(s)*4)
	for _, it := range s {
		b = append(b, byte(it), byte(it>>8), byte(it>>16), byte(it>>24))
	}
	return string(b)
}

// canon sorts and deduplicates s.
func canon(s Itemset) Itemset {
	out := append(Itemset(nil), s...)
	sort.Ints(out)
	w := 0
	for i, it := range out {
		if i > 0 && it == out[w-1] {
			continue
		}
		out[w] = it
		w++
	}
	return out[:w]
}

// contains reports whether sorted hay contains all of sorted needle.
func contains(hay, needle Itemset) bool {
	i := 0
	for _, n := range needle {
		for i < len(hay) && hay[i] < n {
			i++
		}
		if i >= len(hay) || hay[i] != n {
			return false
		}
	}
	return true
}

// Apriori mines all itemsets with support ≥ minSupport from the transaction
// database, levelwise with candidate pruning. Transactions need not be
// sorted or deduplicated. The result is sorted by (size, lexicographic).
func Apriori(db []Itemset, minSupport float64) []Support {
	if len(db) == 0 || minSupport <= 0 {
		return nil
	}
	txns := make([]Itemset, len(db))
	itemSet := map[int]struct{}{}
	for i, t := range db {
		txns[i] = canon(t)
		for _, it := range txns[i] {
			itemSet[it] = struct{}{}
		}
	}
	n := float64(len(txns))
	support := func(s Itemset) float64 {
		c := 0
		for _, t := range txns {
			if contains(t, s) {
				c++
			}
		}
		return float64(c) / n
	}

	var out []Support
	// Level 1.
	var level []Itemset
	items := make([]int, 0, len(itemSet))
	for it := range itemSet {
		items = append(items, it)
	}
	sort.Ints(items)
	for _, it := range items {
		s := Itemset{it}
		if sup := support(s); sup >= minSupport {
			out = append(out, Support{Items: s, Support: sup})
			level = append(level, s)
		}
	}
	// Levels k ≥ 2: join + prune + count.
	for len(level) > 0 {
		freq := map[string]struct{}{}
		for _, s := range level {
			freq[s.key()] = struct{}{}
		}
		candSet := map[string]Itemset{}
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				a, b := level[i], level[j]
				// Apriori join: equal prefixes, differing last items.
				if !equalPrefix(a, b) {
					continue
				}
				c := append(append(Itemset(nil), a...), b[len(b)-1])
				c = canon(c)
				if len(c) != len(a)+1 {
					continue
				}
				if !allSubsetsFrequent(c, freq) {
					continue
				}
				candSet[c.key()] = c
			}
		}
		keys := make([]string, 0, len(candSet))
		for k := range candSet {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var next []Itemset
		for _, k := range keys {
			c := candSet[k]
			if sup := support(c); sup >= minSupport {
				out = append(out, Support{Items: c, Support: sup})
				next = append(next, c)
			}
		}
		level = next
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Items) != len(out[j].Items) {
			return len(out[i].Items) < len(out[j].Items)
		}
		return less(out[i].Items, out[j].Items)
	})
	return out
}

func equalPrefix(a, b Itemset) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return a[len(a)-1] != b[len(b)-1]
}

func allSubsetsFrequent(c Itemset, freq map[string]struct{}) bool {
	tmp := make(Itemset, len(c)-1)
	for drop := range c {
		copy(tmp, c[:drop])
		copy(tmp[drop:], c[drop+1:])
		if _, ok := freq[tmp.key()]; !ok {
			return false
		}
	}
	return true
}

func less(a, b Itemset) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Maximal filters a frequent-itemset collection down to its maximal
// elements (itemsets with no frequent proper superset).
func Maximal(sets []Support) []Support {
	var out []Support
	for i, a := range sets {
		maximal := true
		for j, b := range sets {
			if i != j && len(b.Items) > len(a.Items) && contains(b.Items, a.Items) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, a)
		}
	}
	return out
}

// Rule is an association rule A → B with its support and confidence.
type Rule struct {
	Antecedent Itemset
	Consequent Itemset
	Support    float64
	Confidence float64
}

// Rules derives the association rules with confidence ≥ minConfidence from
// a frequent-itemset collection (with supports), splitting each frequent
// itemset of size ≥ 2 into antecedent/consequent pairs with singleton
// consequents (the standard reduced form).
func Rules(sets []Support, minConfidence float64) []Rule {
	bySet := map[string]float64{}
	for _, s := range sets {
		bySet[s.Items.key()] = s.Support
	}
	var out []Rule
	for _, s := range sets {
		if len(s.Items) < 2 {
			continue
		}
		for drop := range s.Items {
			ant := make(Itemset, 0, len(s.Items)-1)
			ant = append(ant, s.Items[:drop]...)
			ant = append(ant, s.Items[drop+1:]...)
			antSup, ok := bySet[ant.key()]
			if !ok || antSup == 0 {
				continue
			}
			conf := s.Support / antSup
			if conf >= minConfidence {
				out = append(out, Rule{
					Antecedent: ant,
					Consequent: Itemset{s.Items[drop]},
					Support:    s.Support,
					Confidence: conf,
				})
			}
		}
	}
	return out
}
