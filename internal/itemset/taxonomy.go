package itemset

import (
	"sort"

	"oassis/internal/vocab"
)

// TermSet is a set of vocabulary terms (a generalized itemset).
type TermSet []vocab.Term

// TermSupport pairs a term-set with its support.
type TermSupport struct {
	Items   TermSet
	Support float64
}

func termKey(s TermSet) string {
	b := make([]byte, 0, len(s)*4)
	for _, t := range s {
		b = append(b, byte(t), byte(t>>8), byte(t>>16), byte(t>>24))
	}
	return string(b)
}

func canonTerms(s TermSet) TermSet {
	out := append(TermSet(nil), s...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 0
	for i, t := range out {
		if i > 0 && t == out[w-1] {
			continue
		}
		out[w] = t
		w++
	}
	return out[:w]
}

// GeneralizedApriori mines frequent generalized itemsets over a taxonomy
// (Srikant & Agrawal [28]): a transaction supports a term-set when each term
// is matched by an equal-or-more-specific transaction term. Itemsets
// containing a term together with one of its ancestors are redundant and
// pruned (antichains only). The result is sorted by (size, lexicographic).
func GeneralizedApriori(v *vocab.Vocabulary, db []TermSet, minSupport float64) []TermSupport {
	if len(db) == 0 || minSupport <= 0 {
		return nil
	}
	// Extend transactions with all ancestors (the classic preprocessing),
	// so that set containment becomes plain subset testing.
	ext := make([]map[vocab.Term]struct{}, len(db))
	itemSet := map[vocab.Term]struct{}{}
	for i, t := range db {
		m := make(map[vocab.Term]struct{})
		for _, term := range t {
			m[term] = struct{}{}
			itemSet[term] = struct{}{}
			for _, a := range v.Ancestors(term) {
				m[a] = struct{}{}
				itemSet[a] = struct{}{}
			}
		}
		ext[i] = m
	}
	n := float64(len(db))
	support := func(s TermSet) float64 {
		c := 0
		for _, m := range ext {
			ok := true
			for _, t := range s {
				if _, hit := m[t]; !hit {
					ok = false
					break
				}
			}
			if ok {
				c++
			}
		}
		return float64(c) / n
	}

	items := make([]vocab.Term, 0, len(itemSet))
	for t := range itemSet {
		items = append(items, t)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })

	var out []TermSupport
	var level []TermSet
	for _, t := range items {
		s := TermSet{t}
		if sup := support(s); sup >= minSupport {
			out = append(out, TermSupport{Items: s, Support: sup})
			level = append(level, s)
		}
	}
	for len(level) > 0 {
		freq := map[string]struct{}{}
		for _, s := range level {
			freq[termKey(s)] = struct{}{}
		}
		candSet := map[string]TermSet{}
		for i := 0; i < len(level); i++ {
			for j := i + 1; j < len(level); j++ {
				a, b := level[i], level[j]
				if !equalTermPrefix(a, b) {
					continue
				}
				c := canonTerms(append(append(TermSet(nil), a...), b[len(b)-1]))
				if len(c) != len(a)+1 {
					continue
				}
				if !v.IsAntichain([]vocab.Term(c)) {
					continue // redundant: contains a term and its ancestor
				}
				if !allTermSubsetsFrequent(c, freq) {
					continue
				}
				candSet[termKey(c)] = c
			}
		}
		keys := make([]string, 0, len(candSet))
		for k := range candSet {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var next []TermSet
		for _, k := range keys {
			c := candSet[k]
			if sup := support(c); sup >= minSupport {
				out = append(out, TermSupport{Items: c, Support: sup})
				next = append(next, c)
			}
		}
		level = next
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Items) != len(out[j].Items) {
			return len(out[i].Items) < len(out[j].Items)
		}
		return termKey(out[i].Items) < termKey(out[j].Items)
	})
	return out
}

func equalTermPrefix(a, b TermSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a)-1; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return a[len(a)-1] != b[len(b)-1]
}

func allTermSubsetsFrequent(c TermSet, freq map[string]struct{}) bool {
	tmp := make(TermSet, len(c)-1)
	for drop := range c {
		copy(tmp, c[:drop])
		copy(tmp[drop:], c[drop+1:])
		if _, ok := freq[termKey(tmp)]; !ok {
			return false
		}
	}
	return true
}

// MaximalTerms filters generalized frequent itemsets down to the maximal
// ones under the taxonomy order: a set is dominated if another frequent set
// is pointwise more specific and covers it.
func MaximalTerms(v *vocab.Vocabulary, sets []TermSupport) []TermSupport {
	leq := func(a, b TermSet) bool { // a more general than b
		for _, x := range a {
			ok := false
			for _, y := range b {
				if v.Leq(x, y) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	var out []TermSupport
	for i, a := range sets {
		dominated := false
		for j, b := range sets {
			if i == j {
				continue
			}
			if leq(a.Items, b.Items) && !leq(b.Items, a.Items) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	return out
}
