package itemset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"oassis/internal/vocab"
)

// classic example database (from the Apriori paper tradition):
// bread=1 milk=2 beer=3 eggs=4 diapers=5
var groceries = []Itemset{
	{1, 2},
	{1, 5, 3, 4},
	{2, 5, 3},
	{1, 2, 5, 3},
	{1, 2, 5},
}

func findSupport(t *testing.T, sets []Support, items ...int) float64 {
	t.Helper()
	want := canon(items)
	for _, s := range sets {
		if reflect.DeepEqual(s.Items, want) {
			return s.Support
		}
	}
	return -1
}

func TestAprioriGroceries(t *testing.T) {
	sets := Apriori(groceries, 0.6)
	cases := []struct {
		items []int
		want  float64
	}{
		{[]int{1}, 0.8},
		{[]int{2}, 0.8},
		{[]int{5}, 0.8},
		{[]int{3}, 0.6},
		{[]int{1, 2}, 0.6},
		{[]int{2, 5}, 0.6},
		{[]int{1, 5}, 0.6},
		{[]int{3, 5}, 0.6},
	}
	for _, c := range cases {
		if got := findSupport(t, sets, c.items...); got != c.want {
			t.Errorf("support%v = %v, want %v", c.items, got, c.want)
		}
	}
	// Eggs occur once: not frequent.
	if got := findSupport(t, sets, 4); got != -1 {
		t.Errorf("eggs should be infrequent, got %v", got)
	}
	// No 3-itemset reaches 0.6.
	for _, s := range sets {
		if len(s.Items) > 2 {
			t.Errorf("unexpected large frequent set %v (%v)", s.Items, s.Support)
		}
	}
}

func TestAprioriDownwardClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	check := func() bool {
		db := make([]Itemset, 8+rng.Intn(8))
		for i := range db {
			n := 1 + rng.Intn(5)
			tx := make(Itemset, n)
			for j := range tx {
				tx[j] = rng.Intn(8)
			}
			db[i] = tx
		}
		sets := Apriori(db, 0.3)
		freq := map[string]float64{}
		for _, s := range sets {
			freq[s.Items.key()] = s.Support
		}
		// Every subset of a frequent set is frequent with ≥ support.
		for _, s := range sets {
			if len(s.Items) < 2 {
				continue
			}
			for drop := range s.Items {
				sub := append(append(Itemset(nil), s.Items[:drop]...), s.Items[drop+1:]...)
				sup, ok := freq[canon(sub).key()]
				if !ok || sup < s.Support {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestAprioriEdgeCases(t *testing.T) {
	if Apriori(nil, 0.5) != nil {
		t.Error("nil db should mine nothing")
	}
	if Apriori(groceries, 0) != nil {
		t.Error("zero support should mine nothing")
	}
	sets := Apriori([]Itemset{{7, 7, 7}}, 1)
	if len(sets) != 1 || len(sets[0].Items) != 1 {
		t.Errorf("duplicate items mishandled: %v", sets)
	}
}

func TestMaximal(t *testing.T) {
	sets := Apriori(groceries, 0.6)
	max := Maximal(sets)
	for _, m := range max {
		if len(m.Items) != 2 {
			t.Errorf("maximal set %v has size %d, want 2", m.Items, len(m.Items))
		}
	}
	// {1},{2},… are all subsumed.
	for _, m := range max {
		if len(m.Items) == 1 {
			t.Errorf("singleton %v should be dominated", m.Items)
		}
	}
	if len(max) != 4 {
		t.Errorf("got %d maximal sets, want 4", len(max))
	}
}

func TestRules(t *testing.T) {
	sets := Apriori(groceries, 0.6)
	rules := Rules(sets, 0.7)
	found := false
	for _, r := range rules {
		if reflect.DeepEqual(r.Antecedent, Itemset{3}) && reflect.DeepEqual(r.Consequent, Itemset{5}) {
			found = true
			if r.Confidence != 1.0 {
				t.Errorf("conf(beer→diapers) = %v, want 1.0", r.Confidence)
			}
			if r.Support != 0.6 {
				t.Errorf("supp(beer→diapers) = %v", r.Support)
			}
		}
		if r.Confidence < 0.7 {
			t.Errorf("rule below confidence: %+v", r)
		}
	}
	if !found {
		t.Error("beer→diapers not derived")
	}
}

// taxonomy: clothes > (outerwear > (jackets, ski pants), shirts)
// the classic Srikant-Agrawal example.
func buildTaxonomy(t *testing.T) (*vocab.Vocabulary, map[string]vocab.Term) {
	t.Helper()
	v := vocab.New()
	m := map[string]vocab.Term{}
	for _, n := range []string{"clothes", "outerwear", "shirts", "jackets", "ski pants", "footwear", "shoes", "hiking boots"} {
		m[n] = v.MustAddElement(n)
	}
	v.MustAddOrder(m["clothes"], m["outerwear"])
	v.MustAddOrder(m["clothes"], m["shirts"])
	v.MustAddOrder(m["outerwear"], m["jackets"])
	v.MustAddOrder(m["outerwear"], m["ski pants"])
	v.MustAddOrder(m["footwear"], m["shoes"])
	v.MustAddOrder(m["footwear"], m["hiking boots"])
	if err := v.Freeze(); err != nil {
		t.Fatal(err)
	}
	return v, m
}

func TestGeneralizedApriori(t *testing.T) {
	v, m := buildTaxonomy(t)
	db := []TermSet{
		{m["shirts"]},
		{m["jackets"], m["hiking boots"]},
		{m["ski pants"], m["hiking boots"]},
		{m["shoes"]},
		{m["shoes"]},
		{m["jackets"]},
	}
	sets := GeneralizedApriori(v, db, 1.0/3)
	find := func(names ...string) float64 {
		want := make(TermSet, len(names))
		for i, n := range names {
			want[i] = m[n]
		}
		want = canonTerms(want)
		for _, s := range sets {
			if reflect.DeepEqual(s.Items, want) {
				return s.Support
			}
		}
		return -1
	}
	// Srikant-Agrawal: outerwear appears in 3/6 transactions (jackets ×2 +
	// ski pants), clothes in 4/6, footwear in 4/6.
	if got := find("outerwear"); got != 0.5 {
		t.Errorf("supp(outerwear) = %v, want 0.5", got)
	}
	if got := find("clothes"); got != 2.0/3 {
		t.Errorf("supp(clothes) = %v, want 2/3", got)
	}
	if got := find("outerwear", "hiking boots"); got != 1.0/3 {
		t.Errorf("supp(outerwear, hiking boots) = %v, want 1/3", got)
	}
	// jackets alone: 2/6 = 1/3, frequent at threshold 1/3.
	if got := find("jackets"); got != 1.0/3 {
		t.Errorf("supp(jackets) = %v", got)
	}
	// Redundant sets (term + its ancestor) must not appear.
	for _, s := range sets {
		if !v.IsAntichain([]vocab.Term(s.Items)) {
			t.Errorf("non-antichain set %v", s.Items)
		}
	}
}

func TestMaximalTerms(t *testing.T) {
	v, m := buildTaxonomy(t)
	db := []TermSet{
		{m["jackets"], m["hiking boots"]},
		{m["jackets"], m["hiking boots"]},
		{m["ski pants"]},
	}
	sets := GeneralizedApriori(v, db, 0.6)
	max := MaximalTerms(v, sets)
	// The most specific frequent set is {jackets, hiking boots} (2/3).
	found := false
	for _, s := range max {
		if reflect.DeepEqual(s.Items, canonTerms(TermSet{m["jackets"], m["hiking boots"]})) {
			found = true
		}
		// No maximal set may be dominated by {jackets, hiking boots}.
		if len(s.Items) == 1 && (s.Items[0] == m["outerwear"] || s.Items[0] == m["clothes"] || s.Items[0] == m["footwear"]) {
			t.Errorf("dominated set %v reported maximal", s.Items)
		}
	}
	if !found {
		t.Error("maximal generalized set missing")
	}
}

func BenchmarkApriori(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	db := make([]Itemset, 200)
	for i := range db {
		tx := make(Itemset, 3+rng.Intn(5))
		for j := range tx {
			tx[j] = rng.Intn(30)
		}
		db[i] = tx
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Apriori(db, 0.05)
	}
}
