// Package rdfio reads and writes ontologies in a Turtle subset, standing in
// for the RDFLIB dependency of the paper's prototype (§6.1).
//
// Supported syntax: @prefix directives, IRIs in angle brackets, prefixed
// names, the `a` keyword, string literals, comments, and the `.` `;` `,`
// punctuation of Turtle. Term names are the percent-decoded local part of
// the IRI (after the last '/', '#' or ':'), so names with spaces round-trip
// as %20.
//
// Triple interpretation while loading:
//
//	s rdf:type / a / :instanceOf  o   → ontology instanceOf subsumption (o ≤E s)
//	s rdfs:subClassOf / :subClassOf o → ontology subClassOf subsumption (o ≤E s)
//	s rdfs:subPropertyOf / :subPropertyOf o → relation order (o ≤R s)
//	s rdfs:label / :hasLabel "lit"    → label on s
//	anything else                     → plain ontology fact
//
// Every predicate becomes a relation term; every subject/object of a
// non-label triple becomes an element term (except subPropertyOf triples,
// whose subject and object are relations).
package rdfio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"oassis/internal/fact"
	"oassis/internal/ontology"
	"oassis/internal/vocab"
)

// triple is a raw parsed Turtle triple. Object is either an IRI or, when
// literal is true, a string literal.
type triple struct {
	s, p, o string
	literal bool
	line    int
}

type parser struct {
	r        *bufio.Reader
	line     int
	prefixes map[string]string
	triples  []triple
}

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("turtle: line %d: %s", e.Line, e.Msg) }

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

// token kinds
type tokKind int

const (
	tokEOF tokKind = iota
	tokIRI         // <...> fully expanded
	tokLiteral
	tokDot
	tokSemi
	tokComma
	tokA      // the `a` keyword
	tokPrefix // @prefix
)

type token struct {
	kind tokKind
	text string
}

func (p *parser) skipSpace() error {
	for {
		c, _, err := p.r.ReadRune()
		if err == io.EOF {
			return io.EOF
		}
		if err != nil {
			return err
		}
		switch {
		case c == '\n':
			p.line++
		case c == ' ' || c == '\t' || c == '\r':
		case c == '#':
			for {
				c, _, err = p.r.ReadRune()
				if err == io.EOF {
					return io.EOF
				}
				if err != nil {
					return err
				}
				if c == '\n' {
					p.line++
					break
				}
			}
		default:
			if err := p.r.UnreadRune(); err != nil {
				return err
			}
			return nil
		}
	}
}

func (p *parser) next() (token, error) {
	if err := p.skipSpace(); err == io.EOF {
		return token{kind: tokEOF}, nil
	} else if err != nil {
		return token{}, err
	}
	c, _, err := p.r.ReadRune()
	if err != nil {
		return token{}, err
	}
	switch c {
	case '.':
		return token{kind: tokDot}, nil
	case ';':
		return token{kind: tokSemi}, nil
	case ',':
		return token{kind: tokComma}, nil
	case '<':
		var sb strings.Builder
		for {
			c, _, err = p.r.ReadRune()
			if err != nil {
				return token{}, p.errf("unterminated IRI")
			}
			if c == '>' {
				break
			}
			if c == '\n' {
				return token{}, p.errf("newline in IRI")
			}
			sb.WriteRune(c)
		}
		return token{kind: tokIRI, text: sb.String()}, nil
	case '"':
		var sb strings.Builder
		for {
			c, _, err = p.r.ReadRune()
			if err != nil {
				return token{}, p.errf("unterminated string literal")
			}
			if c == '\\' {
				e, _, err := p.r.ReadRune()
				if err != nil {
					return token{}, p.errf("unterminated escape")
				}
				switch e {
				case 'n':
					sb.WriteRune('\n')
				case 't':
					sb.WriteRune('\t')
				case '"', '\\':
					sb.WriteRune(e)
				default:
					return token{}, p.errf("unknown escape \\%c", e)
				}
				continue
			}
			if c == '"' {
				break
			}
			if c == '\n' {
				return token{}, p.errf("newline in string literal")
			}
			sb.WriteRune(c)
		}
		return token{kind: tokLiteral, text: sb.String()}, nil
	}
	// Bare word: `a`, `@prefix`, or a prefixed name.
	var sb strings.Builder
	sb.WriteRune(c)
	for {
		c, _, err = p.r.ReadRune()
		if err == io.EOF {
			break
		}
		if err != nil {
			return token{}, err
		}
		if strings.ContainsRune(" \t\r\n.;,<\"#", c) {
			// `.` terminates a prefixed name only when followed by
			// whitespace/EOF in real Turtle; our subset forbids dots inside
			// local names, which is fine for generated data.
			if err := p.r.UnreadRune(); err != nil {
				return token{}, err
			}
			break
		}
		sb.WriteRune(c)
	}
	w := sb.String()
	switch w {
	case "a":
		return token{kind: tokA}, nil
	case "@prefix":
		return token{kind: tokPrefix}, nil
	}
	// Prefixed name.
	i := strings.IndexByte(w, ':')
	if i < 0 {
		return token{}, p.errf("unexpected token %q", w)
	}
	base, ok := p.prefixes[w[:i]]
	if !ok {
		return token{}, p.errf("unknown prefix %q", w[:i])
	}
	return token{kind: tokIRI, text: base + w[i+1:]}, nil
}

func (p *parser) parseStatement(subject string) error {
	for {
		ptok, err := p.next()
		if err != nil {
			return err
		}
		var pred string
		switch ptok.kind {
		case tokIRI:
			pred = ptok.text
		case tokA:
			pred = rdfType
		default:
			return p.errf("expected predicate")
		}
		for {
			otok, err := p.next()
			if err != nil {
				return err
			}
			switch otok.kind {
			case tokIRI:
				p.triples = append(p.triples, triple{s: subject, p: pred, o: otok.text, line: p.line})
			case tokLiteral:
				p.triples = append(p.triples, triple{s: subject, p: pred, o: otok.text, literal: true, line: p.line})
			default:
				return p.errf("expected object")
			}
			sep, err := p.next()
			if err != nil {
				return err
			}
			switch sep.kind {
			case tokComma:
				continue
			case tokSemi:
				goto nextPredicate
			case tokDot:
				return nil
			default:
				return p.errf("expected , ; or . after object")
			}
		}
	nextPredicate:
	}
}

// Well-known predicate IRIs.
const (
	rdfType        = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	rdfsSubClass   = "http://www.w3.org/2000/01/rdf-schema#subClassOf"
	rdfsSubProp    = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf"
	rdfsLabel      = "http://www.w3.org/2000/01/rdf-schema#label"
	defaultElemNS  = "http://oassis.example/e/"
	defaultRelNS   = "http://oassis.example/r/"
	defaultLabelNS = "http://oassis.example/label/"
	// kindNS marks vocabulary-only declarations: `x a kind:Element` interns
	// x without any ontology fact (terms like Boathouse in the paper, which
	// occur in personal histories but not in the ontology).
	kindNS          = "http://oassis.example/kind/"
	kindElementIRI  = kindNS + "Element"
	kindRelationIRI = kindNS + "Relation"
)

// localName extracts the percent-decoded local part of an IRI.
func localName(iri string) string {
	idx := strings.LastIndexAny(iri, "/#")
	local := iri
	if idx >= 0 {
		local = iri[idx+1:]
	}
	return percentDecode(local)
}

func percentDecode(s string) string {
	if !strings.ContainsRune(s, '%') {
		return s
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '%' && i+2 < len(s) {
			hi, okH := unhex(s[i+1])
			lo, okL := unhex(s[i+2])
			if okH && okL {
				sb.WriteByte(hi<<4 | lo)
				i += 2
				continue
			}
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}

func unhex(c byte) (byte, bool) {
	switch {
	case '0' <= c && c <= '9':
		return c - '0', true
	case 'a' <= c && c <= 'f':
		return c - 'a' + 10, true
	case 'A' <= c && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

func percentEncode(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c <= ' ' || strings.IndexByte(`<>"{}|\^%#/`, c) >= 0 || c >= 0x7f {
			fmt.Fprintf(&sb, "%%%02X", c)
			continue
		}
		sb.WriteByte(c)
	}
	return sb.String()
}

// classifies a predicate IRI into the loader's special roles.
func predicateRole(p string) string {
	switch p {
	case rdfType:
		return "instanceOf"
	case rdfsSubClass:
		return "subClassOf"
	case rdfsSubProp:
		return "subPropertyOf"
	case rdfsLabel:
		return "label"
	}
	switch localName(p) {
	case "instanceOf":
		return "instanceOf"
	case "subClassOf":
		return "subClassOf"
	case "subPropertyOf":
		return "subPropertyOf"
	case "hasLabel", "label":
		return "label"
	}
	return "fact"
}

// Load parses a Turtle-subset document and builds a vocabulary and ontology
// from it. The returned vocabulary is frozen.
func Load(r io.Reader) (*vocab.Vocabulary, *ontology.Ontology, error) {
	p := &parser{r: bufio.NewReader(r), line: 1, prefixes: map[string]string{}}
	if err := p.parseDocument(); err != nil {
		return nil, nil, err
	}
	v := vocab.New()
	o := ontology.New(v)

	// Pass 1: intern terms with the right kinds.
	relOf := func(name string) (vocab.Term, error) { return v.AddRelation(name) }
	elemOf := func(name string) (vocab.Term, error) { return v.AddElement(name) }
	isDecl := func(t triple) bool {
		return !t.literal && predicateRole(t.p) == "instanceOf" &&
			(t.o == kindElementIRI || t.o == kindRelationIRI)
	}
	for _, t := range p.triples {
		if isDecl(t) {
			var err error
			if t.o == kindElementIRI {
				_, err = elemOf(localName(t.s))
			} else {
				_, err = relOf(localName(t.s))
			}
			if err != nil {
				return nil, nil, err
			}
			continue
		}
		role := predicateRole(t.p)
		switch role {
		case "subPropertyOf":
			if t.literal {
				return nil, nil, fmt.Errorf("turtle: line %d: literal in subPropertyOf", t.line)
			}
			if _, err := relOf(localName(t.s)); err != nil {
				return nil, nil, err
			}
			if _, err := relOf(localName(t.o)); err != nil {
				return nil, nil, err
			}
		case "label":
			if !t.literal {
				return nil, nil, fmt.Errorf("turtle: line %d: label object must be a literal", t.line)
			}
			if _, err := elemOf(localName(t.s)); err != nil {
				return nil, nil, err
			}
		default:
			if t.literal {
				return nil, nil, fmt.Errorf("turtle: line %d: literal object only allowed with label predicates", t.line)
			}
			if _, err := elemOf(localName(t.s)); err != nil {
				return nil, nil, err
			}
			if _, err := elemOf(localName(t.o)); err != nil {
				return nil, nil, err
			}
			if role == "fact" || role == "instanceOf" || role == "subClassOf" {
				if _, err := relOf(displayPredicate(t.p, role)); err != nil {
					return nil, nil, err
				}
			}
		}
	}
	// Ensure a hasLabel relation exists if labels are present (for queries).
	hasLabels := false
	for _, t := range p.triples {
		if predicateRole(t.p) == "label" {
			hasLabels = true
			break
		}
	}
	if hasLabels {
		if _, err := v.AddRelation("hasLabel"); err != nil {
			return nil, nil, err
		}
	}

	// Pass 2: build order edges, facts, labels.
	for _, t := range p.triples {
		if isDecl(t) {
			continue
		}
		role := predicateRole(t.p)
		switch role {
		case "subPropertyOf":
			// s subPropertyOf o: s is the more specific relation, so o ≤R s.
			spec, _ := v.Lookup(localName(t.s))
			gen, _ := v.Lookup(localName(t.o))
			if err := v.AddOrder(gen, spec); err != nil {
				return nil, nil, fmt.Errorf("turtle: line %d: %v", t.line, err)
			}
		case "label":
			s, _ := v.Lookup(localName(t.s))
			if err := o.AddLabel(s, t.o); err != nil {
				return nil, nil, err
			}
		case "instanceOf", "subClassOf":
			s, _ := v.Lookup(localName(t.s))
			obj, _ := v.Lookup(localName(t.o))
			rel, _ := v.Lookup(displayPredicate(t.p, role))
			// s role o: o is the more general term.
			if err := o.AddSubsumption(obj, s, rel); err != nil {
				return nil, nil, fmt.Errorf("turtle: line %d: %v", t.line, err)
			}
		default:
			s, _ := v.Lookup(localName(t.s))
			obj, _ := v.Lookup(localName(t.o))
			rel, _ := v.Lookup(displayPredicate(t.p, role))
			if err := o.Add(fact.Fact{S: s, R: rel, O: obj}); err != nil {
				return nil, nil, fmt.Errorf("turtle: line %d: %v", t.line, err)
			}
		}
	}
	if err := v.Freeze(); err != nil {
		return nil, nil, err
	}
	return v, o, nil
}

// displayPredicate maps a predicate IRI to its vocabulary relation name.
func displayPredicate(iri, role string) string {
	switch role {
	case "instanceOf":
		return "instanceOf"
	case "subClassOf":
		return "subClassOf"
	}
	return localName(iri)
}

// parseDocument handles @prefix lines specially (the generic lexer cannot,
// because prefix labels are not resolvable names) and then parses triples.
func (p *parser) parseDocument() error {
	for {
		if err := p.skipSpace(); err == io.EOF {
			return nil
		} else if err != nil {
			return err
		}
		// Peek for "@prefix".
		peek, err := p.r.Peek(7)
		if err == nil && string(peek) == "@prefix" {
			if _, err := p.r.Discard(7); err != nil {
				return err
			}
			if err := p.readPrefixDecl(); err != nil {
				return err
			}
			continue
		}
		tok, err := p.next()
		if err != nil {
			return err
		}
		if tok.kind == tokEOF {
			return nil
		}
		if tok.kind != tokIRI {
			return p.errf("expected subject IRI")
		}
		if err := p.parseStatement(tok.text); err != nil {
			return err
		}
	}
}

func (p *parser) readPrefixDecl() error {
	if err := p.skipSpace(); err != nil {
		return p.errf("unterminated @prefix")
	}
	var label strings.Builder
	for {
		c, _, err := p.r.ReadRune()
		if err != nil {
			return p.errf("unterminated @prefix")
		}
		if c == ':' {
			break
		}
		if strings.ContainsRune(" \t\r\n", c) {
			return p.errf("malformed prefix label")
		}
		label.WriteRune(c)
	}
	if err := p.skipSpace(); err != nil {
		return p.errf("unterminated @prefix")
	}
	tok, err := p.next()
	if err != nil {
		return err
	}
	if tok.kind != tokIRI {
		return p.errf("expected IRI in @prefix")
	}
	dot, err := p.next()
	if err != nil {
		return err
	}
	if dot.kind != tokDot {
		return p.errf("expected . after @prefix")
	}
	p.prefixes[label.String()] = tok.text
	return nil
}
