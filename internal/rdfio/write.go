package rdfio

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"oassis/internal/ontology"
	"oassis/internal/vocab"
)

// Write serializes an ontology (facts, subsumptions, relation order and
// labels) in the Turtle subset understood by Load, so that
// Load(Write(o)) reproduces o.
func Write(w io.Writer, o *ontology.Ontology) error {
	bw := bufio.NewWriter(w)
	v := o.Vocabulary()

	fmt.Fprintf(bw, "@prefix e: <%s> .\n", defaultElemNS)
	fmt.Fprintf(bw, "@prefix r: <%s> .\n", defaultRelNS)
	fmt.Fprintf(bw, "@prefix kind: <%s> .\n\n", kindNS)

	elem := func(t vocab.Term) string { return "e:" + percentEncode(v.Name(t)) }
	rel := func(t vocab.Term) string { return "r:" + percentEncode(v.Name(t)) }

	// Vocabulary-only terms (no facts, labels or order edges) would be lost
	// without explicit declarations.
	used := make([]bool, v.Len())
	for _, f := range o.Facts() {
		used[f.S], used[f.R], used[f.O] = true, true, true
	}
	for t := 0; t < v.Len(); t++ {
		term := vocab.Term(t)
		if len(o.LabelsOf(term)) > 0 {
			used[t] = true
		}
		if v.KindOf(term) == vocab.Relation {
			for _, c := range v.Children(term) {
				used[t], used[c] = true, true
			}
		}
	}
	for t := 0; t < v.Len(); t++ {
		if used[t] {
			continue
		}
		term := vocab.Term(t)
		if v.KindOf(term) == vocab.Element {
			fmt.Fprintf(bw, "%s a kind:Element .\n", elem(term))
		} else {
			fmt.Fprintf(bw, "%s a kind:Relation .\n", rel(term))
		}
	}

	// Relation order edges (≤R) as subPropertyOf: specific subPropertyOf general.
	for t := 0; t < v.Len(); t++ {
		term := vocab.Term(t)
		if v.KindOf(term) != vocab.Relation {
			continue
		}
		for _, child := range v.Children(term) {
			fmt.Fprintf(bw, "%s r:subPropertyOf %s .\n", rel(child), rel(term))
		}
	}

	// Facts (subsumption facts are stored like any other facts, so this
	// also reproduces the element order when loaded back).
	for _, f := range o.Facts() {
		fmt.Fprintf(bw, "%s %s %s .\n", elem(f.S), rel(f.R), elem(f.O))
	}

	// Labels.
	var labeled []vocab.Term
	for t := 0; t < v.Len(); t++ {
		labeled = append(labeled, vocab.Term(t))
	}
	sort.Slice(labeled, func(i, j int) bool { return labeled[i] < labeled[j] })
	for _, t := range labeled {
		for _, l := range o.LabelsOf(t) {
			fmt.Fprintf(bw, "%s r:hasLabel %q .\n", elem(t), l)
		}
	}
	return bw.Flush()
}
