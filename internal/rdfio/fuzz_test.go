package rdfio

import (
	"strings"
	"testing"
)

// FuzzLoad exercises the Turtle reader with arbitrary inputs; it must never
// panic. Plain `go test` runs the seed corpus.
func FuzzLoad(f *testing.F) {
	seeds := []string{
		"",
		sampleTurtle,
		"@prefix e: <http://x/> .\ne:a e:b e:c .",
		`<u:a> a <u:B> ; <u:p> <u:c> , <u:d> . # comment`,
		`<u:a> <u:hasLabel> "lit \n esc" .`,
		"@prefix",
		"<unterminated",
		`"literal start`,
		"e:no-prefix e:b e:c .",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _, _ = Load(strings.NewReader(src))
	})
}
