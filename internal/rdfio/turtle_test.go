package rdfio

import (
	"bytes"
	"strings"
	"testing"

	"oassis/internal/ontology"
	"oassis/internal/vocab"
)

const sampleTurtle = `
@prefix e: <http://oassis.example/e/> .
@prefix r: <http://oassis.example/r/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

# relation order: inside is more specific than nearBy
r:inside r:subPropertyOf r:nearBy .

e:Place r:subClassOf e:Thing .
e:Attraction r:subClassOf e:Place .
e:Park r:subClassOf e:Attraction .
e:Central%20Park a e:Park .
e:NYC a e:City .
e:City r:subClassOf e:Place .
e:Central%20Park r:inside e:NYC .
e:Maoz%20Veg r:nearBy e:Central%20Park ; a e:Restaurant .
e:Restaurant r:subClassOf e:Place .
e:Central%20Park rdfs:label "child-friendly" .
`

func TestLoadSample(t *testing.T) {
	v, o, err := Load(strings.NewReader(sampleTurtle))
	if err != nil {
		t.Fatal(err)
	}
	cp, ok := v.Lookup("Central Park")
	if !ok {
		t.Fatal("Central Park not interned (percent decoding failed?)")
	}
	park, _ := v.Lookup("Park")
	attraction, _ := v.Lookup("Attraction")
	if !v.Leq(park, cp) {
		t.Error("Park ≤ Central Park expected (instanceOf mirrored into order)")
	}
	if !v.Leq(attraction, cp) {
		t.Error("Attraction ≤ Central Park expected (transitive)")
	}
	nearBy, _ := v.Lookup("nearBy")
	inside, _ := v.Lookup("inside")
	if !v.Leq(nearBy, inside) {
		t.Error("nearBy ≤ inside expected from subPropertyOf")
	}
	nyc, _ := v.Lookup("NYC")
	if !o.Holds(cp, nearBy, nyc) {
		t.Error("Central Park nearBy NYC should hold via inside")
	}
	if !o.HasLabel(cp, "child-friendly") {
		t.Error("label lost")
	}
	maoz, _ := v.Lookup("Maoz Veg")
	if !o.Holds(maoz, nearBy, cp) {
		t.Error("semicolon-continued triple lost")
	}
	rest, _ := v.Lookup("Restaurant")
	if !v.Leq(rest, maoz) {
		t.Error("a-keyword instanceOf lost")
	}
	if !v.Frozen() {
		t.Error("vocabulary not frozen")
	}
}

func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown prefix", `x:a x:b x:c .`},
		{"unterminated IRI", `<http://x`},
		{"missing dot after prefix", "@prefix e: <http://x/>\ne:a e:b e:c ."},
		{"literal as subject", `"lit" <http://x/p> <http://x/o> .`},
		{"literal in plain fact", `<http://x/a> <http://x/p> "lit" .`},
		{"label with iri object", `<http://x/a> <http://x/hasLabel> <http://x/o> .`},
		{"unterminated literal", `<http://x/a> <http://x/hasLabel> "oops`},
		{"bad escape", `<http://x/a> <http://x/hasLabel> "a\q" .`},
		{"cycle", `<http://x/a> <http://x/subClassOf> <http://x/b> .
		           <http://x/b> <http://x/subClassOf> <http://x/a> .`},
	}
	for _, c := range cases {
		if _, _, err := Load(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: error expected", c.name)
		}
	}
}

func TestCommentsAndCommas(t *testing.T) {
	src := `
# leading comment
<http://x/a> <http://x/likes> <http://x/b> , <http://x/c> . # trailing
`
	v, o, err := Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := v.Lookup("a")
	likes, _ := v.Lookup("likes")
	b, _ := v.Lookup("b")
	c, _ := v.Lookup("c")
	if !o.Holds(a, likes, b) || !o.Holds(a, likes, c) {
		t.Error("comma-separated objects lost")
	}
}

func TestRoundTrip(t *testing.T) {
	s := ontology.NewSample()
	var buf bytes.Buffer
	if err := Write(&buf, s.Onto); err != nil {
		t.Fatal(err)
	}
	v2, o2, err := Load(&buf)
	if err != nil {
		t.Fatalf("reload: %v\ndocument:\n%s", err, buf.String())
	}
	if o2.Len() != s.Onto.Len() {
		t.Errorf("fact count: got %d, want %d", o2.Len(), s.Onto.Len())
	}
	// Spot-check semantics.
	cp, ok := v2.Lookup("Central Park")
	if !ok {
		t.Fatal("Central Park lost in round trip")
	}
	attraction, _ := v2.Lookup("Attraction")
	if !v2.Leq(attraction, cp) {
		t.Error("order lost in round trip")
	}
	if !o2.HasLabel(cp, "child-friendly") {
		t.Error("label lost in round trip")
	}
	nearBy, _ := v2.Lookup("nearBy")
	inside, _ := v2.Lookup("inside")
	if !v2.Leq(nearBy, inside) {
		t.Error("relation order lost in round trip")
	}
	// Every original fact must hold in the reloaded ontology.
	for _, f := range s.Onto.Facts() {
		s2, ok1 := v2.Lookup(s.Voc.Name(f.S))
		r2, ok2 := v2.Lookup(s.Voc.Name(f.R))
		ob2, ok3 := v2.Lookup(s.Voc.Name(f.O))
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("term of %s lost", f.Format(s.Voc))
		}
		if !o2.Holds(s2, r2, ob2) {
			t.Errorf("fact %s lost", f.Format(s.Voc))
		}
	}
}

func TestPercentCoding(t *testing.T) {
	cases := []string{"Central Park", "Maoz Veg", "a%b", "tab\tname", "plain"}
	for _, c := range cases {
		if got := percentDecode(percentEncode(c)); got != c {
			t.Errorf("round trip %q = %q", c, got)
		}
	}
	if percentEncode("Central Park") != "Central%20Park" {
		t.Errorf("encode: %q", percentEncode("Central Park"))
	}
	// Malformed escapes decode literally rather than failing.
	if got := percentDecode("a%zz"); got != "a%zz" {
		t.Errorf("malformed decode = %q", got)
	}
}

func TestWriteDeterministic(t *testing.T) {
	s := ontology.NewSample()
	var a, b bytes.Buffer
	if err := Write(&a, s.Onto); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, s.Onto); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("Write output not deterministic")
	}
}

func TestLoadEmptyDocument(t *testing.T) {
	v, o, err := Load(strings.NewReader("  \n# only a comment\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 0 || o.Len() != 0 {
		t.Error("empty document produced terms/facts")
	}
}

func TestKindConflict(t *testing.T) {
	// `p` used both as predicate and as element must error.
	src := `<http://x/a> <http://x/p> <http://x/b> .
	        <http://x/p> <http://x/q> <http://x/b> .`
	if _, _, err := Load(strings.NewReader(src)); err == nil {
		t.Error("kind conflict accepted")
	}
	_ = vocab.New() // keep import
}

func TestRoundTripKeepsVocabularyOnlyTerms(t *testing.T) {
	// Terms that occur in personal histories but never in ontology facts
	// (Boathouse, Rent Bikes, doAt, eatAt in the sample) must survive a
	// Write/Load round trip through kind declarations.
	s := ontology.NewSample()
	var buf bytes.Buffer
	if err := Write(&buf, s.Onto); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "kind:Element") || !strings.Contains(buf.String(), "kind:Relation") {
		t.Fatalf("no kind declarations emitted:\n%s", buf.String())
	}
	v2, o2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Boathouse", "Rent Bikes"} {
		term, ok := v2.Lookup(name)
		if !ok {
			t.Fatalf("element %q lost in round trip", name)
		}
		if v2.KindOf(term) != vocab.Element {
			t.Errorf("%q has wrong kind", name)
		}
	}
	for _, name := range []string{"doAt", "eatAt"} {
		term, ok := v2.Lookup(name)
		if !ok {
			t.Fatalf("relation %q lost in round trip", name)
		}
		if v2.KindOf(term) != vocab.Relation {
			t.Errorf("%q has wrong kind", name)
		}
	}
	if o2.Len() != s.Onto.Len() {
		t.Errorf("fact count changed: %d vs %d", o2.Len(), s.Onto.Len())
	}
	// The declarations must not have created spurious facts.
	boathouse, _ := v2.Lookup("Boathouse")
	if got := o2.Match(boathouse, vocab.None, vocab.None); len(got) != 0 {
		t.Errorf("declaration created facts: %v", got.Format(v2))
	}
}
