package ontology

import (
	"oassis/internal/fact"
	"oassis/internal/vocab"
)

// Sample holds the paper's running-example data: the Figure 1 ontology, its
// vocabulary, and a name→term map for convenience in tests and examples.
type Sample struct {
	Voc   *vocab.Vocabulary
	Onto  *Ontology
	Terms map[string]vocab.Term
}

// T returns the term with the given name, panicking if absent. It keeps
// example code short.
func (s *Sample) T(name string) vocab.Term {
	t, ok := s.Terms[name]
	if !ok {
		panic("sample: unknown term " + name)
	}
	return t
}

// Fact builds a fact from three term names.
func (s *Sample) Fact(subj, rel, obj string) fact.Fact {
	return fact.Fact{S: s.T(subj), R: s.T(rel), O: s.T(obj)}
}

// NewSample builds the Figure 1 ontology of the paper, including the
// "child-friendly" labels used by the Figure 2 query, the nearBy ≤ inside
// relation order, and the vocabulary-only terms (Boathouse, Rent Bikes) that
// appear in personal transactions but not in the ontology. The returned
// vocabulary is frozen.
func NewSample() *Sample {
	v := vocab.New()
	s := &Sample{Voc: v, Terms: make(map[string]vocab.Term)}

	elements := []string{
		"Thing", "Place", "Activity",
		"City", "Restaurant", "Attraction",
		"NYC", "Maoz Veg", "Pine",
		"Outdoor", "Indoor", "Zoo", "Park", "Swimming Pool",
		"Bronx Zoo", "Central Park", "Madison Square",
		"Sport", "Food", "Feed a Monkey",
		"Water Sport", "Biking", "Ball Game",
		"Basketball", "Baseball", "Swimming", "Water Polo",
		"Falafel", "Pasta",
		// Vocabulary-only terms (appear in transactions, not in the ontology).
		"Boathouse", "Rent Bikes",
	}
	for _, e := range elements {
		s.Terms[e] = v.MustAddElement(e)
	}
	relations := []string{"subClassOf", "instanceOf", "inside", "nearBy", "doAt", "eatAt", "hasLabel"}
	for _, r := range relations {
		s.Terms[r] = v.MustAddRelation(r)
	}
	// Relation order of Figure 1: nearBy ≤ inside.
	v.MustAddOrder(s.T("nearBy"), s.T("inside"))

	o := New(v)
	s.Onto = o

	sub := func(general, specific string) {
		if err := o.AddSubsumption(s.T(general), s.T(specific), s.T("subClassOf")); err != nil {
			panic(err)
		}
	}
	inst := func(class, instance string) {
		if err := o.AddSubsumption(s.T(class), s.T(instance), s.T("instanceOf")); err != nil {
			panic(err)
		}
	}

	// Class hierarchy (Figure 1).
	sub("Thing", "Place")
	sub("Thing", "Activity")
	sub("Place", "City")
	sub("Place", "Restaurant")
	sub("Place", "Attraction")
	sub("Attraction", "Outdoor")
	sub("Attraction", "Indoor")
	sub("Outdoor", "Zoo")
	sub("Outdoor", "Park")
	sub("Indoor", "Swimming Pool")
	sub("Activity", "Sport")
	sub("Activity", "Food")
	sub("Activity", "Feed a Monkey")
	sub("Sport", "Water Sport")
	sub("Sport", "Biking")
	sub("Sport", "Ball Game")
	sub("Ball Game", "Basketball")
	sub("Ball Game", "Baseball")
	sub("Ball Game", "Water Polo") // multi-parent: also a water sport
	sub("Water Sport", "Swimming")
	sub("Water Sport", "Water Polo")
	sub("Food", "Falafel")
	sub("Food", "Pasta")

	// Instances.
	inst("City", "NYC")
	inst("Restaurant", "Maoz Veg")
	inst("Restaurant", "Pine")
	inst("Zoo", "Bronx Zoo")
	inst("Park", "Central Park")
	inst("Park", "Madison Square")

	// Geographic facts.
	add := func(subj, rel, obj string) { o.MustAdd(s.Fact(subj, rel, obj)) }
	add("Central Park", "inside", "NYC")
	add("Bronx Zoo", "inside", "NYC")
	add("Madison Square", "inside", "NYC")
	add("Maoz Veg", "inside", "NYC")
	add("Pine", "inside", "NYC")
	add("Maoz Veg", "nearBy", "Central Park")
	add("Pine", "nearBy", "Bronx Zoo")

	// Labels for the Figure 2 query.
	for _, t := range []string{"Central Park", "Bronx Zoo"} {
		if err := o.AddLabel(s.T(t), "child-friendly"); err != nil {
			panic(err)
		}
	}

	if err := v.Freeze(); err != nil {
		panic(err)
	}
	return s
}
