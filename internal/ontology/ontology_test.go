package ontology

import (
	"testing"

	"oassis/internal/fact"
	"oassis/internal/vocab"
)

func TestAddAndIndexes(t *testing.T) {
	s := NewSample()
	o := s.Onto
	if o.Len() == 0 {
		t.Fatal("sample ontology empty")
	}
	f := s.Fact("Central Park", "inside", "NYC")
	if !o.Contains(f) {
		t.Fatal("Central Park inside NYC missing")
	}
	// Re-adding is a no-op.
	n := o.Len()
	o.MustAdd(f)
	if o.Len() != n {
		t.Fatal("duplicate add changed Len")
	}
	if o.Contains(s.Fact("NYC", "inside", "Central Park")) {
		t.Fatal("reversed fact present")
	}
}

func TestAddRejectsBadFacts(t *testing.T) {
	s := NewSample()
	o := s.Onto
	if err := o.Add(fact.Fact{S: vocab.Term(9999), R: s.T("inside"), O: s.T("NYC")}); err == nil {
		t.Error("unknown subject accepted")
	}
	if err := o.Add(fact.Fact{S: s.T("NYC"), R: s.T("NYC"), O: s.T("NYC")}); err == nil {
		t.Error("element in relation position accepted")
	}
	if err := o.Add(fact.Fact{S: s.T("inside"), R: s.T("inside"), O: s.T("NYC")}); err == nil {
		t.Error("relation in subject position accepted")
	}
}

func TestLabels(t *testing.T) {
	s := NewSample()
	o := s.Onto
	if !o.HasLabel(s.T("Central Park"), "child-friendly") {
		t.Error("Central Park should be child-friendly")
	}
	if o.HasLabel(s.T("Madison Square"), "child-friendly") {
		t.Error("Madison Square should not be child-friendly")
	}
	got := o.Labeled("child-friendly")
	if len(got) != 2 {
		t.Errorf("Labeled = %v", s.Voc.Names(got))
	}
	if o.HasLabel(s.T("Central Park"), "noisy") {
		t.Error("unknown label matched")
	}
}

func TestMatchRelationSubsumption(t *testing.T) {
	s := NewSample()
	o := s.Onto
	// nearBy ≤ inside: a nearBy pattern must also match inside facts.
	near := o.MatchRel(s.T("nearBy"))
	if len(near) != 7 {
		t.Errorf("MatchRel(nearBy) = %d facts, want 7 (2 nearBy + 5 inside): %v", len(near), near.Format(s.Voc))
	}
	ins := o.MatchRel(s.T("inside"))
	if len(ins) != 5 {
		t.Errorf("MatchRel(inside) = %d facts, want 5", len(ins))
	}

	// Pattern: ⟨Maoz Veg, nearBy, ?⟩ matches both the explicit nearBy fact
	// and the more specific inside fact.
	m := o.Match(s.T("Maoz Veg"), s.T("nearBy"), vocab.None)
	if len(m) != 2 {
		t.Errorf("Match(Maoz Veg, nearBy, ?) = %v", m.Format(s.Voc))
	}
	// Holds under subsumption.
	if !o.Holds(s.T("Maoz Veg"), s.T("nearBy"), s.T("NYC")) {
		t.Error("Maoz Veg nearBy NYC should hold via inside")
	}
	if o.Holds(s.T("Maoz Veg"), s.T("inside"), s.T("Central Park")) {
		t.Error("Maoz Veg inside Central Park should not hold")
	}
}

func TestMatchWildcards(t *testing.T) {
	s := NewSample()
	o := s.Onto
	all := o.Match(vocab.None, vocab.None, vocab.None)
	if len(all) != o.Len() {
		t.Errorf("full wildcard Match = %d, want %d", len(all), o.Len())
	}
	byObj := o.Match(vocab.None, s.T("instanceOf"), s.T("Restaurant"))
	if len(byObj) != 2 {
		t.Errorf("instances of Restaurant = %v", byObj.Format(s.Voc))
	}
	bySubj := o.Match(s.T("Central Park"), vocab.None, vocab.None)
	if len(bySubj) != 2 { // instanceOf Park, inside NYC
		t.Errorf("facts about Central Park = %v", bySubj.Format(s.Voc))
	}
}

func TestReachability(t *testing.T) {
	s := NewSample()
	o := s.Onto
	sc := s.T("subClassOf")
	if !o.Reachable(s.T("Park"), sc, s.T("Attraction")) {
		t.Error("Park subClassOf* Attraction expected")
	}
	if !o.Reachable(s.T("Attraction"), sc, s.T("Attraction")) {
		t.Error("zero-length path expected")
	}
	if o.Reachable(s.T("Sport"), sc, s.T("Attraction")) {
		t.Error("Sport should not reach Attraction")
	}
	// Central Park is an instance, not a subclass: instanceOf edges must not
	// count as subClassOf.
	if o.Reachable(s.T("Central Park"), sc, s.T("Attraction")) {
		t.Error("instanceOf edge treated as subClassOf")
	}

	set := o.ReachableSet(s.T("Park"), sc)
	want := map[string]bool{"Park": true, "Outdoor": true, "Attraction": true, "Place": true, "Thing": true}
	if len(set) != len(want) {
		t.Fatalf("ReachableSet(Park) = %v", s.Voc.Names(set))
	}
	for _, g := range set {
		if !want[s.Voc.Name(g)] {
			t.Errorf("unexpected reachable %s", s.Voc.Name(g))
		}
	}

	srcs := o.SourcesReaching(s.T("Attraction"), sc)
	// Attraction itself + Outdoor, Indoor, Zoo, Park, Swimming Pool.
	if len(srcs) != 6 {
		t.Fatalf("SourcesReaching(Attraction) = %v", s.Voc.Names(srcs))
	}
}

func TestEntails(t *testing.T) {
	s := NewSample()
	o := s.Onto
	// Directly stored.
	if !o.Entails(fact.Set{s.Fact("Central Park", "inside", "NYC")}) {
		t.Error("stored fact not entailed")
	}
	// Relation generalization: nearBy ≤ inside.
	if !o.Entails(fact.Set{s.Fact("Central Park", "nearBy", "NYC")}) {
		t.Error("nearBy generalization not entailed")
	}
	// Subject generalization: Park ≤ Central Park.
	if !o.Entails(fact.Set{s.Fact("Park", "inside", "NYC")}) {
		t.Error("subject generalization not entailed")
	}
	if o.Entails(fact.Set{s.Fact("NYC", "inside", "Central Park")}) {
		t.Error("reversed fact entailed")
	}
	if o.Entails(fact.Set{s.Fact("Biking", "doAt", "Central Park")}) {
		t.Error("personal fact entailed by ontology")
	}
}

func TestSampleVocabularyOrderMirrorsOntology(t *testing.T) {
	s := NewSample()
	v := s.Voc
	// subClassOf and instanceOf edges must appear in ≤E (Example 2.3).
	cases := [][2]string{
		{"Activity", "Sport"},
		{"Sport", "Basketball"},
		{"Attraction", "Central Park"},
		{"Restaurant", "Maoz Veg"},
		{"Thing", "Water Polo"},
	}
	for _, c := range cases {
		if !v.Leq(s.T(c[0]), s.T(c[1])) {
			t.Errorf("%s ≤ %s expected in vocabulary order", c[0], c[1])
		}
	}
	if v.Leq(s.T("Sport"), s.T("Central Park")) {
		t.Error("Sport ≤ Central Park unexpected")
	}
	// Boathouse is vocabulary-only: no order edges, no ontology facts.
	if len(s.Onto.Match(s.T("Boathouse"), vocab.None, vocab.None)) != 0 {
		t.Error("Boathouse should have no ontology facts")
	}
}

func TestSubsumptionErrorsPropagate(t *testing.T) {
	v := vocab.New()
	a := v.MustAddElement("a")
	r := v.MustAddRelation("subClassOf")
	o := New(v)
	if err := o.AddSubsumption(a, a, r); err == nil {
		t.Error("self subsumption accepted")
	}
}
