// Package ontology implements the ontology of Section 2 of the paper: a
// fact-set holding "universal truth" facts over a vocabulary, with indexes
// for pattern matching, semantic entailment, a label store for hasLabel
// selections, and path reachability used by SPARQL-style rel* patterns.
//
// Matching semantics: the WHERE clause of an OASSIS-QL query is evaluated as
// standard SPARQL graph-pattern matching over the stored triples (plus
// relation subsumption: a pattern relation r matches a stored fact with
// relation r' when r ≤R r', e.g. a nearBy pattern matches an inside fact).
// Element generalization does not occur during matching; generalized
// assignments enter the picture later through the expansion step of the
// mining algorithm (Algorithm 1, line 1). Full semantic entailment of
// arbitrary fact-sets (A ≤ O) is available via Entails.
package ontology

import (
	"fmt"
	"sort"

	"oassis/internal/fact"
	"oassis/internal/vocab"
)

// Ontology is an indexed store of universal facts over a vocabulary.
type Ontology struct {
	voc   *vocab.Vocabulary
	facts map[fact.Fact]struct{}
	byRel map[vocab.Term][]fact.Fact // exact relation -> facts
	byS   map[vocab.Term][]fact.Fact
	byO   map[vocab.Term][]fact.Fact

	labels map[vocab.Term]map[string]struct{}
}

// New returns an empty ontology over v.
func New(v *vocab.Vocabulary) *Ontology {
	return &Ontology{
		voc:    v,
		facts:  make(map[fact.Fact]struct{}),
		byRel:  make(map[vocab.Term][]fact.Fact),
		byS:    make(map[vocab.Term][]fact.Fact),
		byO:    make(map[vocab.Term][]fact.Fact),
		labels: make(map[vocab.Term]map[string]struct{}),
	}
}

// Vocabulary returns the vocabulary the ontology is defined over.
func (o *Ontology) Vocabulary() *vocab.Vocabulary { return o.voc }

// Len reports the number of stored facts.
func (o *Ontology) Len() int { return len(o.facts) }

// Add stores a universal fact. Adding an existing fact is a no-op. All three
// terms must belong to the vocabulary, with element/relation kinds in the
// right positions.
func (o *Ontology) Add(f fact.Fact) error {
	if !o.voc.Contains(f.S) || !o.voc.Contains(f.R) || !o.voc.Contains(f.O) {
		return fmt.Errorf("ontology: fact with unknown term")
	}
	if o.voc.KindOf(f.S) != vocab.Element || o.voc.KindOf(f.O) != vocab.Element {
		return fmt.Errorf("ontology: subject/object of %s must be elements", f.Format(o.voc))
	}
	if o.voc.KindOf(f.R) != vocab.Relation {
		return fmt.Errorf("ontology: relation of fact must be a relation term")
	}
	if _, ok := o.facts[f]; ok {
		return nil
	}
	o.facts[f] = struct{}{}
	o.byRel[f.R] = append(o.byRel[f.R], f)
	o.byS[f.S] = append(o.byS[f.S], f)
	o.byO[f.O] = append(o.byO[f.O], f)
	return nil
}

// MustAdd is Add that panics on error.
func (o *Ontology) MustAdd(f fact.Fact) {
	if err := o.Add(f); err != nil {
		panic(err)
	}
}

// AddSubsumption records that specific is subsumed by general through rel
// (typically subClassOf or instanceOf): it stores the fact
// ⟨specific, rel, general⟩ and mirrors it into the vocabulary order as
// general ≤ specific, keeping the ontology and the order relation in sync as
// in Example 2.3 of the paper.
func (o *Ontology) AddSubsumption(general, specific, rel vocab.Term) error {
	if err := o.Add(fact.Fact{S: specific, R: rel, O: general}); err != nil {
		return err
	}
	return o.voc.AddOrder(general, specific)
}

// AddLabel attaches a free-text label to an element (the hasLabel store).
func (o *Ontology) AddLabel(t vocab.Term, label string) error {
	if !o.voc.Contains(t) {
		return fmt.Errorf("ontology: label on unknown term")
	}
	set := o.labels[t]
	if set == nil {
		set = make(map[string]struct{})
		o.labels[t] = set
	}
	set[label] = struct{}{}
	return nil
}

// HasLabel reports whether t carries the given label.
func (o *Ontology) HasLabel(t vocab.Term, label string) bool {
	_, ok := o.labels[t][label]
	return ok
}

// Labeled returns all elements carrying the given label, in term order.
func (o *Ontology) Labeled(label string) []vocab.Term {
	var out []vocab.Term
	for t, set := range o.labels {
		if _, ok := set[label]; ok {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LabelsOf returns the labels attached to t, sorted.
func (o *Ontology) LabelsOf(t vocab.Term) []string {
	set := o.labels[t]
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Contains reports whether exactly f is stored.
func (o *Ontology) Contains(f fact.Fact) bool {
	_, ok := o.facts[f]
	return ok
}

// Facts returns all stored facts in canonical order.
func (o *Ontology) Facts() fact.Set {
	out := make(fact.Set, 0, len(o.facts))
	for f := range o.facts {
		out = append(out, f)
	}
	return out.Canon()
}

// MatchRel returns the stored facts whose relation r' is compatible with a
// pattern relation r, i.e. r ≤R r'. The result is in canonical order.
func (o *Ontology) MatchRel(r vocab.Term) fact.Set {
	var out fact.Set
	out = append(out, o.byRel[r]...)
	for _, r2 := range o.voc.Descendants(r) {
		out = append(out, o.byRel[r2]...)
	}
	return out.Canon()
}

// Match returns the stored facts matching a triple pattern in which any
// component may be vocab.None (wildcard). The relation matches with
// subsumption (r ≤R r'); subject and object match exactly.
func (o *Ontology) Match(s, r, obj vocab.Term) fact.Set {
	var candidates []fact.Fact
	switch {
	case s != vocab.None:
		candidates = o.byS[s]
	case obj != vocab.None:
		candidates = o.byO[obj]
	case r != vocab.None:
		candidates = o.MatchRel(r)
	default:
		candidates = o.Facts()
	}
	var out fact.Set
	for _, f := range candidates {
		if s != vocab.None && f.S != s {
			continue
		}
		if obj != vocab.None && f.O != obj {
			continue
		}
		if r != vocab.None && !o.voc.Leq(r, f.R) {
			continue
		}
		out = append(out, f)
	}
	return out.Canon()
}

// Holds reports whether the triple ⟨s, r, o⟩ holds in the ontology under
// relation subsumption (some stored ⟨s, r', o⟩ with r ≤R r').
func (o *Ontology) Holds(s, r, obj vocab.Term) bool {
	for _, f := range o.byS[s] {
		if f.O == obj && o.voc.Leq(r, f.R) {
			return true
		}
	}
	return false
}

// Reachable reports whether `to` can be reached from `from` by a path of
// zero or more rel-compatible edges (the SPARQL rel* pattern, e.g.
// $w subClassOf* Attraction walks subClassOf edges from w up to Attraction).
func (o *Ontology) Reachable(from, rel, to vocab.Term) bool {
	if from == to {
		return true
	}
	seen := map[vocab.Term]struct{}{from: {}}
	queue := []vocab.Term{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, f := range o.byS[cur] {
			if !o.voc.Leq(rel, f.R) {
				continue
			}
			if f.O == to {
				return true
			}
			if _, ok := seen[f.O]; ok {
				continue
			}
			seen[f.O] = struct{}{}
			queue = append(queue, f.O)
		}
	}
	return false
}

// ReachableSet returns every term reachable from `from` by zero or more
// rel-compatible edges, including `from` itself, in term order.
func (o *Ontology) ReachableSet(from, rel vocab.Term) []vocab.Term {
	seen := map[vocab.Term]struct{}{from: {}}
	queue := []vocab.Term{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, f := range o.byS[cur] {
			if !o.voc.Leq(rel, f.R) {
				continue
			}
			if _, ok := seen[f.O]; ok {
				continue
			}
			seen[f.O] = struct{}{}
			queue = append(queue, f.O)
		}
	}
	out := make([]vocab.Term, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SourcesReaching returns every term from which `to` is reachable by zero or
// more rel-compatible edges, including `to` itself (the inverse of
// ReachableSet), in term order.
func (o *Ontology) SourcesReaching(to, rel vocab.Term) []vocab.Term {
	seen := map[vocab.Term]struct{}{to: {}}
	queue := []vocab.Term{to}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, f := range o.byO[cur] {
			if !o.voc.Leq(rel, f.R) {
				continue
			}
			if _, ok := seen[f.S]; ok {
				continue
			}
			seen[f.S] = struct{}{}
			queue = append(queue, f.S)
		}
	}
	out := make([]vocab.Term, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Entails reports whether the ontology semantically implies the fact-set a,
// i.e. a ≤ O under Definition 2.5.
func (o *Ontology) Entails(a fact.Set) bool {
	return fact.SetLeq(o.voc, a, o.Facts())
}
