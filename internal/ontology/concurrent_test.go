package ontology_test

import (
	"sync"
	"testing"

	"oassis/internal/aggregate"
	"oassis/internal/core"
	"oassis/internal/synth"
	"oassis/internal/vocab"
)

// TestConcurrentReadersWhileSessionsRun guards the shared-domain
// invariant behind core.Domain: one frozen vocabulary + ontology is
// referenced read-only by many concurrent sessions, so 16 goroutines
// hammering every ontology query API while mining sessions execute over
// the same domain must be race-free (this test is run under -race by
// `make check`) and observe a never-changing ontology.
func TestConcurrentReadersWhileSessionsRun(t *testing.T) {
	d, err := synth.GenerateDomain(synth.DomainConfig{
		Name: "shared", YTerms: 20, XTerms: 8, YDepth: 3, XDepth: 2,
		Members: 6, Transactions: 10, Patterns: 4, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	onto := d.Onto
	facts := onto.Facts()
	if len(facts) == 0 {
		t.Fatal("generated ontology is empty")
	}
	wantLen := onto.Len()
	pl, err := d.Plan(0.2)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 32)

	// Mining sessions running over the shared domain.
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := core.Run(core.Config{
				Space:   pl.NewSpace(),
				Theta:   0.2,
				Members: d.NewCrowd(),
				Agg:     aggregate.NewFixedSample(2),
			})
			if res.Stats.TotalQuestions == 0 {
				errs <- "session asked no questions"
			}
		}()
	}

	// 16 concurrent readers over every query entry point.
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				f := facts[(g*31+i)%len(facts)]
				if !onto.Contains(f) {
					errs <- "Contains lost a fact"
					return
				}
				if !onto.Holds(f.S, f.R, f.O) {
					errs <- "Holds lost a fact"
					return
				}
				if len(onto.Match(f.S, f.R, vocab.Term(-1))) == 0 {
					errs <- "Match lost a fact"
					return
				}
				if len(onto.MatchRel(f.R)) == 0 {
					errs <- "MatchRel lost a fact"
					return
				}
				if !onto.Reachable(f.S, f.R, f.O) {
					errs <- "Reachable lost an edge"
					return
				}
				if len(onto.ReachableSet(f.S, f.R)) == 0 {
					errs <- "ReachableSet lost an edge"
					return
				}
				onto.SourcesReaching(f.O, f.R)
				onto.LabelsOf(f.S)
				onto.Labeled("no-such-label")
				onto.HasLabel(f.S, "no-such-label")
				if !onto.Entails(facts[:1]) {
					errs <- "Entails lost a fact"
					return
				}
				if onto.Len() != wantLen {
					errs <- "ontology length changed under readers"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}
