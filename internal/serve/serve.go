// Package serve is the multi-tenant serving tier: the layer between an
// HTTP frontend and core.Session that lets one process host many named
// tenants (domain + member roster + store directory), each running many
// concurrent mining sessions.
//
// The hierarchy is Registry → Tenant → shard → Session. Sessions are
// sharded by plan fingerprint (plan.ShardIndex over the content address),
// so every session of the same compiled plan lands on the same shard and
// shares the cached plan and the read-only core.Domain; each shard
// serializes its sessions behind one mutex, and shards run independently.
// A tenant's member roster is partitioned across its shards — the
// partition is the bookkeeping home of a member (waiter-queue bounds) —
// but any member may serve questions from any session in their tenant.
//
// Durability is per session: with TenantConfig.StoreDir set, every
// session owns a WAL store under <dir>/shard-<i>/<session-id>/, and
// opening the tenant again re-attaches every recorded session — primed
// with its recovered answers, bound to its journaled query and plan
// fingerprint — so a killed server resumes every live session without
// re-asking a single answered question.
//
// The long-poll path has admission control: a global in-flight budget
// across the whole registry and a bounded parked-waiter queue per shard.
// When either is exhausted, Poll fails fast with ErrOverloaded (the HTTP
// layer maps it to 429 + Retry-After) instead of queueing unboundedly.
// Everything is instrumented through internal/obs with per-tenant and
// per-shard labels: sessions live, waiters queued, sheds, and the
// question-dispatch latency histogram with its p99 gauge.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"oassis/internal/core"
	"oassis/internal/obs"
	"oassis/internal/plan"
	"oassis/internal/store"
)

// Typed serving-tier errors. The HTTP layer matches them with errors.Is
// and maps them to status codes: ErrOverloaded → 429 (with Retry-After),
// ErrUnknownTenant / ErrUnknownSession / ErrUnknownMember → 404.
var (
	// ErrOverloaded reports that the serving tier shed the request: the
	// global long-poll budget or the member's per-shard waiter queue is
	// full. The request was not queued; retry after a short backoff.
	ErrOverloaded = errors.New("serve: overloaded")
	// ErrUnknownTenant reports a tenant name the registry does not host.
	ErrUnknownTenant = errors.New("serve: unknown tenant")
	// ErrUnknownSession reports a session ID the tenant does not host.
	ErrUnknownSession = errors.New("serve: unknown session")
	// ErrUnknownMember reports a member that has not joined the tenant.
	ErrUnknownMember = errors.New("serve: unknown member")
	// ErrNoPending reports an answer for a question that is not the
	// member's pending one (already answered, retired, or never issued).
	ErrNoPending = errors.New("serve: no pending question")
	// ErrClosed is returned by mutating calls on a closed registry.
	ErrClosed = errors.New("serve: registry closed")
)

// Config parameterizes a Registry.
type Config struct {
	// MaxInFlight is the global admission budget, counted in question
	// items: a Poll charges one, a PollPanel charges its item capacity.
	// 0 means the default (1024); further polls are shed with
	// ErrOverloaded.
	MaxInFlight int

	// MaxWaitersPerShard bounds the parked long-poll waiters charged to
	// each shard (a member's waits are charged to their home shard in
	// the roster partition). 0 means the default (256).
	MaxWaitersPerShard int

	// RetryAfter is the backoff hint reported alongside ErrOverloaded
	// (the HTTP layer's Retry-After header). 0 means 1 second.
	RetryAfter time.Duration

	// Metrics, when non-nil, receives the serving-tier instruments and
	// is shared with every session engine and session store. Purely
	// observational; a nil registry records into a private throwaway one
	// so the hot path never branches on instrumentation.
	Metrics *obs.Registry
}

const (
	defaultMaxInFlight = 1024
	defaultMaxWaiters  = 256
	defaultRetryAfter  = time.Second
)

// Registry hosts many named tenants behind one admission-control budget.
// All methods are safe for concurrent use.
type Registry struct {
	cfg      Config
	obs      *obs.Registry
	coreMet  *core.Metrics
	storeMet *store.Metrics
	planMet  *plan.CacheMetrics

	inflight atomic.Int64
	draining chan struct{}
	drainOne sync.Once

	mu      sync.Mutex
	tenants map[string]*Tenant
	closed  bool
}

// NewRegistry returns an empty registry. Add tenants with AddTenant,
// then serve traffic through Tenant handles; Drain wakes every parked
// long-poller at shutdown and Close flushes and closes every store.
func NewRegistry(cfg Config) *Registry {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = defaultMaxInFlight
	}
	if cfg.MaxWaitersPerShard <= 0 {
		cfg.MaxWaitersPerShard = defaultMaxWaiters
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = defaultRetryAfter
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Registry{
		cfg:      cfg,
		obs:      reg,
		coreMet:  core.NewMetrics(reg),
		storeMet: store.NewMetrics(reg),
		planMet:  plan.NewCacheMetrics(reg),
		draining: make(chan struct{}),
		tenants:  make(map[string]*Tenant),
	}
}

// RetryAfter returns the backoff hint to report with ErrOverloaded.
func (r *Registry) RetryAfter() time.Duration { return r.cfg.RetryAfter }

// AddTenant creates (or, with a store directory, recovers) a tenant. A
// recovered tenant re-attaches every session recorded under its store
// directory: each one is recompiled from its journaled query text,
// checked against its journaled plan fingerprint (domain drift is
// refused, not replayed wrong), and primed with its recovered answers.
func (r *Registry) AddTenant(tc TenantConfig) (*Tenant, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := r.tenants[tc.Name]; dup {
		r.mu.Unlock()
		return nil, fmt.Errorf("serve: tenant %q already exists", tc.Name)
	}
	r.mu.Unlock()

	t, err := newTenant(r, tc)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		t.close()
		return nil, ErrClosed
	}
	if _, dup := r.tenants[tc.Name]; dup {
		t.close()
		return nil, fmt.Errorf("serve: tenant %q already exists", tc.Name)
	}
	r.tenants[tc.Name] = t
	return t, nil
}

// Tenant returns the named tenant, or ErrUnknownTenant.
func (r *Registry) Tenant(name string) (*Tenant, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[name]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownTenant, name)
	}
	return t, nil
}

// Tenants lists the hosted tenant names, sorted.
func (r *Registry) Tenants() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.tenants))
	for name := range r.tenants {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// InFlight returns the number of Poll calls currently in flight.
func (r *Registry) InFlight() int { return int(r.inflight.Load()) }

// Drain begins shutdown: every parked long-poll waiter wakes immediately
// with OutcomeShutdown (instead of riding out its timeout), and every
// later Poll returns OutcomeShutdown without parking. Stores stay open —
// in-flight answers still persist — until Close.
func (r *Registry) Drain() {
	r.drainOne.Do(func() { close(r.draining) })
}

// Draining reports whether Drain has been called.
func (r *Registry) Draining() bool {
	select {
	case <-r.draining:
		return true
	default:
		return false
	}
}

// Close drains the registry, stops every session engine, and flushes and
// closes every session store and tenant meta store. The first error is
// returned; closing twice is a no-op.
func (r *Registry) Close() error {
	r.Drain()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	tenants := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		tenants = append(tenants, t)
	}
	r.mu.Unlock()
	var first error
	for _, t := range tenants {
		if err := t.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// acquire claims n items of the global in-flight budget; false means the
// registry is saturated and the caller must shed. The unit is a panel
// item, not a request: a single-question poll charges 1, a k-item panel
// poll charges k, so batched clients compete for the same budget as the
// equivalent single-question traffic instead of around it.
func (r *Registry) acquire(n int) bool {
	if r.inflight.Add(int64(n)) > int64(r.cfg.MaxInFlight) {
		r.inflight.Add(-int64(n))
		return false
	}
	return true
}

func (r *Registry) release(n int) { r.inflight.Add(-int64(n)) }
