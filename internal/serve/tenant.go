package serve

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"oassis/internal/aggregate"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/fact"
	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/panel"
	"oassis/internal/plan"
	"oassis/internal/store"
	"oassis/internal/vocab"
)

// TenantConfig describes one hosted tenant: a frozen domain, a member
// roster, and (optionally) a store directory for durability.
type TenantConfig struct {
	// Name is the tenant's registry key and its label on every metric.
	Name string

	// Voc and Onto are the tenant's frozen domain.
	Voc  *vocab.Vocabulary
	Onto *ontology.Ontology

	// Members is the number of roster slots ("p00", "p01", …) members
	// claim by joining. 0 means 8.
	Members int

	// Shards is the number of session shards. Sessions route to shards
	// by plan fingerprint; the roster partitions across shards round-
	// robin for waiter bookkeeping. 0 means 4.
	Shards int

	// StoreDir, when non-empty, makes the tenant durable: joins journal
	// to <dir>/meta/ and each session owns <dir>/shard-<i>/<session>/.
	// Opening a tenant over an existing directory recovers everything.
	StoreDir string

	// AnswersPerQuestion is the fixed-sample aggregation width per
	// question (the server's -k). 0 means 1.
	AnswersPerQuestion int

	// PanelSpeculation widens each session's speculation to up to this
	// many round-node successors per member
	// (core.Config.PanelSpeculation), so panel polls have items to
	// batch. 0 keeps the engine's default mirror-only speculation;
	// mined results are identical either way.
	PanelSpeculation int

	// Policy names the question-ordering policy every session of this
	// tenant compiles its plans with (plan.OrderingByName; empty means
	// the planner's default, paper-order). The ordering is part of the
	// compiled plan — and so of its fingerprint — so shard routing,
	// session matching and the WAL's drift detection all see the
	// tenant's variant consistently.
	Policy string
}

// Tenant is one hosted domain with its roster, shards and sessions. All
// methods are safe for concurrent use.
type Tenant struct {
	name      string
	reg       *Registry
	domain    *core.Domain
	voc       *vocab.Vocabulary
	onto      *ontology.Ontology
	k         int
	panelSpec int
	policy    string
	storeDir  string
	shards    []*shard
	slots     []string       // roster member IDs, fixed at construction
	memberIdx map[string]int // member ID -> roster index
	obs       *tenantObs

	mu      sync.Mutex
	nextIdx int               // next unclaimed roster slot
	names   map[string]string // member ID -> display name (joined members)
	answers map[string]int    // live leaderboard (credited answers)
	meta    *store.Store      // join journal; nil without StoreDir
	notify  chan struct{}     // closed and replaced on any state change
	sessSeq int               // session ID allocator
	index   map[string]*Session
	live    int // sessions not yet finished
	opened  int // sessions ever attached (including recovered)
	closed  bool
}

// Outcome classifies what a Poll returned.
type Outcome int

const (
	// OutcomeQuestion means Question carries a question to answer.
	OutcomeQuestion Outcome = iota
	// OutcomeTimeout means the poll window elapsed with nothing to do.
	OutcomeTimeout
	// OutcomeDone means every session in the tenant has finished.
	OutcomeDone
	// OutcomeShutdown means the registry is draining; stop polling.
	OutcomeShutdown
)

// String names the outcome the way the metrics label it.
func (o Outcome) String() string {
	switch o {
	case OutcomeQuestion:
		return "question"
	case OutcomeTimeout:
		return "timeout"
	case OutcomeDone:
		return "done"
	default:
		return "shutdown"
	}
}

// Question is the serving-tier form of a pending question: the engine
// question plus the addressing a multi-session client needs to answer it.
type Question struct {
	Tenant      string
	Session     string
	ID          int // per-session wire serial, echoed back in Answer
	Member      string
	Kind        core.QuestionKind
	Facts       fact.Set
	Choices     []fact.Set
	Terms       []vocab.Term
	Speculative bool
}

// PanelItem is one question inside a served panel: the wire question,
// its prior guess, and whether the client should render it as a one-tap
// confirmation (high-confidence prior) instead of an open question.
type PanelItem struct {
	Question
	Prior   crowd.Prior
	Confirm bool
}

// Panel is a member's batch of pending questions from one session — what
// PollPanel hands out and AnswerPanel consumes. The engine's own blocked
// question leads; the rest are speculative, answered ahead of need.
type Panel struct {
	Tenant  string
	Session string
	Member  string
	Items   []PanelItem
}

func newTenant(r *Registry, tc TenantConfig) (*Tenant, error) {
	if tc.Name == "" {
		return nil, fmt.Errorf("serve: tenant name must not be empty")
	}
	if tc.Members <= 0 {
		tc.Members = 8
	}
	if tc.Shards <= 0 {
		tc.Shards = 4
	}
	if tc.AnswersPerQuestion <= 0 {
		tc.AnswersPerQuestion = 1
	}
	if tc.Policy != "" {
		// Validate at boot, not first query: a fleet file naming an
		// unknown ordering should fail the tenant, with the plan
		// registry's canonical message.
		if _, err := plan.OrderingByName(tc.Policy); err != nil {
			return nil, fmt.Errorf("serve: tenant %q: %w", tc.Name, err)
		}
	}
	dom, err := core.NewDomain(tc.Voc, tc.Onto)
	if err != nil {
		return nil, fmt.Errorf("serve: tenant %q: %w", tc.Name, err)
	}
	t := &Tenant{
		name:      tc.Name,
		reg:       r,
		domain:    dom,
		voc:       tc.Voc,
		onto:      tc.Onto,
		k:         tc.AnswersPerQuestion,
		panelSpec: tc.PanelSpeculation,
		policy:    tc.Policy,
		storeDir:  tc.StoreDir,
		memberIdx: make(map[string]int, tc.Members),
		obs:       newTenantObs(r.obs, tc.Name),
		names:     make(map[string]string),
		answers:   make(map[string]int),
		notify:    make(chan struct{}),
		index:     make(map[string]*Session),
	}
	for i := 0; i < tc.Members; i++ {
		id := fmt.Sprintf("p%02d", i)
		t.slots = append(t.slots, id)
		t.memberIdx[id] = i
	}
	for i := 0; i < tc.Shards; i++ {
		t.shards = append(t.shards, &shard{
			idx:      i,
			t:        t,
			sessions: make(map[string]*Session),
			ready:    make(map[string][]*Session),
			obs:      newShardObs(r.obs, tc.Name, i),
		})
	}
	if tc.StoreDir != "" {
		if err := t.recover(); err != nil {
			t.close()
			return nil, err
		}
	}
	return t, nil
}

// recover re-attaches everything recorded under the tenant's store
// directory: the join journal restores the roster, and every session
// directory found under shard-*/ is reopened, recompiled from its
// journaled query text, fingerprint-checked, and primed with its
// recovered answers.
func (t *Tenant) recover() error {
	meta, metaRec, err := store.Open(filepath.Join(t.storeDir, "meta"),
		store.Options{Metrics: t.reg.storeMet})
	if err != nil {
		return fmt.Errorf("serve: tenant %q meta store: %w", t.name, err)
	}
	t.meta = meta
	for _, j := range metaRec.Joins {
		if t.nextIdx < len(t.slots) && t.slots[t.nextIdx] == j.Member {
			t.names[j.Member] = j.Note
			t.nextIdx++
		}
	}
	// Scan shard-* rather than just the current shard count, so sessions
	// recorded under a previous (larger) shard layout are not stranded;
	// each session re-routes by fingerprint regardless of which shard
	// directory holds its WAL.
	shardDirs, err := filepath.Glob(filepath.Join(t.storeDir, "shard-*"))
	if err != nil {
		return err
	}
	sort.Strings(shardDirs)
	for _, sd := range shardDirs {
		ids, err := store.Scan(sd)
		if err != nil {
			return fmt.Errorf("serve: tenant %q: scanning %s: %w", t.name, sd, err)
		}
		for _, id := range ids {
			st, rec, err := store.Open(filepath.Join(sd, id),
				store.Options{Metrics: t.reg.storeMet})
			if err != nil {
				return fmt.Errorf("serve: tenant %q session %s: %w", t.name, id, err)
			}
			if rec.Session == "" {
				// A directory that never journaled its query carries no
				// replayable state; leave it for its owner.
				_ = st.Close()
				continue
			}
			q, err := oassisql.Parse(rec.Session)
			if err != nil {
				_ = st.Close()
				return fmt.Errorf("serve: tenant %q session %s: journaled query: %w", t.name, id, err)
			}
			if _, err := t.attach(id, q, st, rec); err != nil {
				_ = st.Close()
				return fmt.Errorf("serve: tenant %q session %s: %w", t.name, id, err)
			}
			t.bumpSeq(id)
		}
	}
	return nil
}

// bumpSeq advances the session-ID allocator past a recovered ID so new
// sessions never collide with recovered directories.
func (t *Tenant) bumpSeq(id string) {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "s"))
	if err != nil {
		return
	}
	t.mu.Lock()
	if n > t.sessSeq {
		t.sessSeq = n
	}
	t.mu.Unlock()
}

// compile resolves q through the tenant's plan cache, applying the
// tenant's configured ordering policy. Every compile site in the tenant
// goes through here — shard routing (Open), session matching
// (EnsureSession) and attachment — so all of them agree on the variant
// plan's fingerprint, and recovery re-routes consistently.
func (t *Tenant) compile(q *oassisql.Query) (*plan.Plan, error) {
	pl, _, err := t.domain.CompileVariant(q, "", t.policy, t.reg.planMet)
	return pl, err
}

// Name returns the tenant's registry key.
func (t *Tenant) Name() string { return t.name }

// Domain returns the tenant's shared read-only domain.
func (t *Tenant) Domain() *core.Domain { return t.domain }

// Voc returns the tenant's frozen vocabulary (for rendering questions).
func (t *Tenant) Voc() *vocab.Vocabulary { return t.voc }

// Shards returns the tenant's shard count.
func (t *Tenant) Shards() int { return len(t.shards) }

// Roster returns the tenant's member slots in roster order.
func (t *Tenant) Roster() []string { return append([]string(nil), t.slots...) }

// Join claims the next roster slot for a display name and returns the
// member ID. Joining a full roster fails.
func (t *Tenant) Join(name string) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return "", ErrClosed
	}
	if t.nextIdx >= len(t.slots) {
		return "", fmt.Errorf("serve: tenant %q crowd is full (%d members)", t.name, len(t.slots))
	}
	id := t.slots[t.nextIdx]
	t.nextIdx++
	t.names[id] = name
	if t.meta != nil {
		if err := t.meta.AppendJoin(id, name); err != nil {
			logf("serve: tenant %s join journal: %v", t.name, err)
		}
	}
	return id, nil
}

// MemberKnown reports whether the member has joined this tenant.
func (t *Tenant) MemberKnown(id string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.names[id]
	return ok
}

// MemberName returns the joined member's display name.
func (t *Tenant) MemberName(id string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.names[id]
}

// Open compiles the query through the tenant's per-domain plan cache and
// attaches a new session for it on the shard its fingerprint routes to.
// With a store directory, the session is durable from its first question.
func (t *Tenant) Open(q *oassisql.Query) (*Session, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	t.sessSeq++
	id := fmt.Sprintf("s%04d", t.sessSeq)
	t.mu.Unlock()

	var st *store.Store
	var rec *store.Recovered
	if t.storeDir != "" {
		// The directory lands under the routing shard purely for
		// operator legibility; recovery re-routes by fingerprint.
		pl, err := t.compile(q)
		if err != nil {
			return nil, err
		}
		shardIdx := plan.ShardIndex(pl.Fingerprint(), len(t.shards))
		dir := filepath.Join(t.storeDir, fmt.Sprintf("shard-%d", shardIdx), id)
		st, rec, err = store.Open(dir, store.Options{Metrics: t.reg.storeMet})
		if err != nil {
			return nil, err
		}
	}
	sess, err := t.attach(id, q, st, rec)
	if err != nil && st != nil {
		_ = st.Close()
	}
	return sess, err
}

// EnsureSession returns an existing live session whose plan fingerprint
// matches the query, or opens a new one. The bool reports whether the
// session already existed — how a restarted boot query resumes instead
// of forking a duplicate session.
func (t *Tenant) EnsureSession(q *oassisql.Query) (*Session, bool, error) {
	pl, err := t.compile(q)
	if err != nil {
		return nil, false, err
	}
	fp := pl.Fingerprint()
	t.mu.Lock()
	ids := make([]string, 0, len(t.index))
	for id := range t.index {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if s := t.index[id]; s.plan.Fingerprint() == fp {
			t.mu.Unlock()
			return s, true, nil
		}
	}
	t.mu.Unlock()
	s, err := t.Open(q)
	return s, false, err
}

// attach builds the hosted session around a compiled plan and registers
// it with its routing shard. st/rec may be nil (in-memory tenant).
func (t *Tenant) attach(id string, q *oassisql.Query, st *store.Store, rec *store.Recovered) (*Session, error) {
	pl, err := t.compile(q)
	if err != nil {
		return nil, err
	}
	ordering, err := pl.Ordering()
	if err != nil {
		return nil, err
	}
	sp := pl.NewSpace()
	sh := t.shards[plan.ShardIndex(pl.Fingerprint(), len(t.shards))]
	sess := &Session{
		id:      id,
		t:       t,
		sh:      sh,
		query:   q,
		plan:    pl,
		sp:      sp,
		pending: make(map[string][]*pendingQuestion),
	}
	cfg := core.Config{
		Space:            sp,
		Theta:            pl.Support,
		Ordering:         ordering,
		Agg:              aggregate.NewFixedSample(t.k),
		Metrics:          t.reg.coreMet,
		PanelSpeculation: t.panelSpec,
	}
	if st != nil {
		// Same binding discipline as a single-session server: a store
		// holds one query's answers, and the answers only replay into
		// the plan they were recorded under.
		if rec.Session != "" && rec.Session != q.String() {
			return nil, fmt.Errorf("store is bound to a different query; use a fresh store directory")
		}
		if err := st.BindSession(q.String()); err != nil {
			return nil, err
		}
		if rec.Plan != "" && rec.Plan != pl.Fingerprint() {
			return nil, fmt.Errorf("store was recorded under plan %s but the query now compiles to %s (domain drift); use a fresh store directory",
				rec.Plan, pl.Fingerprint())
		}
		if err := st.BindPlan(pl.Fingerprint()); err != nil {
			return nil, err
		}
		t.mu.Lock()
		for _, a := range rec.Answers {
			if a.Counted {
				t.answers[a.Member]++
			}
		}
		t.mu.Unlock()
		sess.st = st
		cfg.Store = st
		if len(rec.Answers) > 0 {
			cfg.Prime = rec.PrimeCache()
		}
	}
	sess.inner = core.NewSession(cfg, t.slots)
	sess.priors = panel.SessionPriors(sess.inner)

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		sess.inner.Close()
		return nil, ErrClosed
	}
	t.index[id] = sess
	t.opened++
	t.live++
	t.mu.Unlock()
	t.obs.opened.Inc()

	sh.mu.Lock()
	sh.sessions[id] = sess
	sh.obs.live.Inc()
	sess.refillLocked()
	sh.mu.Unlock()
	t.broadcast()
	return sess, nil
}

// Session returns the identified session, or ErrUnknownSession.
func (t *Tenant) Session(id string) (*Session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.index[id]
	if !ok {
		return nil, fmt.Errorf("%w %q in tenant %q", ErrUnknownSession, id, t.name)
	}
	return s, nil
}

// Sessions lists the tenant's sessions sorted by ID.
func (t *Tenant) Sessions() []*Session {
	t.mu.Lock()
	out := make([]*Session, 0, len(t.index))
	for _, s := range t.index {
		out = append(out, s)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Retire detaches a session from serving: its pending questions are
// withdrawn, its engine stops, and its store (if any) is flushed and
// closed. The store directory stays on disk, so a later tenant boot
// re-attaches the session where it left off.
func (t *Tenant) Retire(id string) error {
	t.mu.Lock()
	sess, ok := t.index[id]
	if ok {
		delete(t.index, id)
	}
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w %q in tenant %q", ErrUnknownSession, id, t.name)
	}
	sh := sess.sh
	sh.mu.Lock()
	delete(sh.sessions, id)
	wasFinished := sess.finished
	sess.finished = true
	sess.pending = make(map[string][]*pendingQuestion)
	sh.mu.Unlock()
	if !wasFinished {
		sh.obs.live.Dec()
		t.sessionFinished()
	}
	sess.inner.Close()
	t.obs.retired.Inc()
	if sess.st != nil {
		return sess.st.Close()
	}
	return nil
}

// Poll waits for a question this member can answer, from any session in
// the tenant. It scans shards starting at the member's home shard, then
// parks on the tenant's notify channel; admission control may shed the
// call with ErrOverloaded before it parks. ctx cancellation (the client
// disconnecting) returns the context error.
func (t *Tenant) Poll(ctx context.Context, member string, timeout time.Duration) (Question, Outcome, error) {
	idx, joined := t.joinedIndex(member)
	if !joined {
		return Question{}, OutcomeTimeout, fmt.Errorf("%w %q in tenant %q", ErrUnknownMember, member, t.name)
	}
	home := t.shards[idx%len(t.shards)]
	if !t.reg.acquire(1) {
		home.obs.shedGlobal.Inc()
		t.obs.poll("shed")
		return Question{}, OutcomeTimeout, fmt.Errorf("%w: global in-flight budget (%d) exhausted", ErrOverloaded, t.reg.cfg.MaxInFlight)
	}
	defer t.reg.release(1)
	start := time.Now()
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		if t.reg.Draining() {
			t.obs.poll("shutdown")
			return Question{}, OutcomeShutdown, nil
		}
		// Snapshot notify before scanning: a refill between the scan and
		// the park then wakes us instead of being lost.
		notify := t.notifyChan()
		for i := range t.shards {
			sh := t.shards[(home.idx+i)%len(t.shards)]
			if q, ok := sh.take(member); ok {
				t.obs.dispatched(start)
				return q, OutcomeQuestion, nil
			}
		}
		if t.allDone() {
			t.obs.poll("done")
			return Question{}, OutcomeDone, nil
		}
		if !home.park() {
			home.obs.shedShard.Inc()
			t.obs.poll("shed")
			return Question{}, OutcomeTimeout, fmt.Errorf("%w: shard %d waiter queue (%d) full", ErrOverloaded, home.idx, t.reg.cfg.MaxWaitersPerShard)
		}
		select {
		case <-notify:
			home.unpark()
		case <-deadline.C:
			home.unpark()
			t.obs.poll("timeout")
			return Question{}, OutcomeTimeout, nil
		case <-ctx.Done():
			home.unpark()
			t.obs.poll("disconnect")
			return Question{}, OutcomeTimeout, ctx.Err()
		case <-t.reg.draining:
			home.unpark()
			t.obs.poll("shutdown")
			return Question{}, OutcomeShutdown, nil
		}
	}
}

// PollPanel waits for a panel of questions this member can answer — up
// to max items cut from one session's pending pool, the engine's own
// blocked question first, every item primed with its prior. It parks and
// wakes exactly like Poll (the same notify snapshot guards against lost
// wakeups), but admission control charges the panel's item capacity
// rather than one slot per request: a k-item panel competes for the same
// global budget as k single-question polls. max <= 0 means
// panel.DefaultSize.
func (t *Tenant) PollPanel(ctx context.Context, member string, max int, timeout time.Duration) (Panel, Outcome, error) {
	if max <= 0 {
		max = panel.DefaultSize
	}
	if max > maxPendingPerMember {
		max = maxPendingPerMember
	}
	idx, joined := t.joinedIndex(member)
	if !joined {
		return Panel{}, OutcomeTimeout, fmt.Errorf("%w %q in tenant %q", ErrUnknownMember, member, t.name)
	}
	home := t.shards[idx%len(t.shards)]
	if !t.reg.acquire(max) {
		home.obs.shedGlobal.Inc()
		t.obs.poll("shed")
		return Panel{}, OutcomeTimeout, fmt.Errorf("%w: global in-flight budget (%d) exhausted", ErrOverloaded, t.reg.cfg.MaxInFlight)
	}
	defer t.reg.release(max)
	start := time.Now()
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		if t.reg.Draining() {
			t.obs.poll("shutdown")
			return Panel{}, OutcomeShutdown, nil
		}
		// Snapshot notify before scanning: a refill between the scan and
		// the park then wakes us instead of being lost.
		notify := t.notifyChan()
		for i := range t.shards {
			sh := t.shards[(home.idx+i)%len(t.shards)]
			if p, ok := sh.takePanel(member, max); ok {
				t.obs.dispatchedPanel(start, len(p.Items))
				return p, OutcomeQuestion, nil
			}
		}
		if t.allDone() {
			t.obs.poll("done")
			return Panel{}, OutcomeDone, nil
		}
		if !home.park() {
			home.obs.shedShard.Inc()
			t.obs.poll("shed")
			return Panel{}, OutcomeTimeout, fmt.Errorf("%w: shard %d waiter queue (%d) full", ErrOverloaded, home.idx, t.reg.cfg.MaxWaitersPerShard)
		}
		select {
		case <-notify:
			home.unpark()
		case <-deadline.C:
			home.unpark()
			t.obs.poll("timeout")
			return Panel{}, OutcomeTimeout, nil
		case <-ctx.Done():
			home.unpark()
			t.obs.poll("disconnect")
			return Panel{}, OutcomeTimeout, ctx.Err()
		case <-t.reg.draining:
			home.unpark()
			t.obs.poll("shutdown")
			return Panel{}, OutcomeShutdown, nil
		}
	}
}

// AnswerPanel submits a member's answers to a panel. With a session ID
// the batch goes straight to that session; with an empty ID the shards
// are scanned for the session holding the panel's wire IDs. Returns how
// many items were applied (already-consumed items are skipped).
func (t *Tenant) AnswerPanel(sessionID, member string, answers []PanelAnswer) (int, error) {
	if !t.MemberKnown(member) {
		return 0, fmt.Errorf("%w %q in tenant %q", ErrUnknownMember, member, t.name)
	}
	if len(answers) == 0 {
		return 0, fmt.Errorf("%w: empty panel for member %q in tenant %q", ErrNoPending, member, t.name)
	}
	if sessionID != "" {
		sess, err := t.Session(sessionID)
		if err != nil {
			return 0, err
		}
		return sess.SubmitPanel(member, answers)
	}
	for _, sh := range t.shards {
		if n, err, handled := sh.submitPanelAny(member, answers); handled {
			return n, err
		}
	}
	return 0, fmt.Errorf("%w: no panel item for member %q in tenant %q", ErrNoPending, member, t.name)
}

// Answer submits a member's answer. With a session ID it goes straight
// to that session; with an empty ID (legacy single-session clients) the
// shards are scanned for the pending (member, wire-ID) pair.
func (t *Tenant) Answer(sessionID, member string, wireID int, ans core.Answer) error {
	if !t.MemberKnown(member) {
		return fmt.Errorf("%w %q in tenant %q", ErrUnknownMember, member, t.name)
	}
	if sessionID != "" {
		sess, err := t.Session(sessionID)
		if err != nil {
			return err
		}
		return sess.submit(member, wireID, ans)
	}
	for _, sh := range t.shards {
		if err, handled := sh.submitAny(member, wireID, ans); handled {
			return err
		}
	}
	return fmt.Errorf("%w %d for member %q in tenant %q", ErrNoPending, wireID, member, t.name)
}

// Pending finds the member's pending question with the given wire ID
// across every session in the tenant — the legacy answer path for
// clients that don't echo session IDs, and how the HTTP layer learns a
// question's kind before converting the wire answer.
func (t *Tenant) Pending(member string, wireID int) (Question, bool) {
	for _, sh := range t.shards {
		sh.mu.Lock()
		for _, sess := range sh.sessions {
			for _, p := range sess.pending[member] {
				if p.id == wireID {
					q := sess.wireQuestion(p)
					sh.mu.Unlock()
					return q, true
				}
			}
		}
		sh.mu.Unlock()
	}
	return Question{}, false
}

// Leaderboard returns the credited-answer counts per joined member,
// sorted by answers (descending), then name.
func (t *Tenant) Leaderboard() []BoardRow {
	t.mu.Lock()
	rows := make([]BoardRow, 0, len(t.answers))
	for id, n := range t.answers {
		rows = append(rows, BoardRow{Member: id, Name: t.names[id], Answers: n})
	}
	t.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Answers != rows[j].Answers {
			return rows[i].Answers > rows[j].Answers
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}

// BoardRow is one leaderboard entry.
type BoardRow struct {
	Member  string
	Name    string
	Answers int
}

// joinedIndex returns the member's roster index if they have joined.
func (t *Tenant) joinedIndex(member string) (int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.names[member]; !ok {
		return 0, false
	}
	return t.memberIdx[member], true
}

// allDone reports whether the tenant has sessions and all have finished.
func (t *Tenant) allDone() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.opened > 0 && t.live == 0
}

// credit bumps the member's leaderboard count.
func (t *Tenant) credit(member string) {
	t.mu.Lock()
	t.answers[member]++
	t.mu.Unlock()
}

// sessionFinished is called (under the owning shard's lock) when a
// session stops being live.
func (t *Tenant) sessionFinished() {
	t.mu.Lock()
	t.live--
	t.broadcastLocked()
	t.mu.Unlock()
}

// broadcast wakes every parked long-poller in the tenant.
func (t *Tenant) broadcast() {
	t.mu.Lock()
	t.broadcastLocked()
	t.mu.Unlock()
}

func (t *Tenant) broadcastLocked() {
	close(t.notify)
	t.notify = make(chan struct{})
}

func (t *Tenant) notifyChan() chan struct{} {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.notify
}

// close stops every session engine and closes every store. Called from
// Registry.Close (or on a failed AddTenant).
func (t *Tenant) close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	sessions := make([]*Session, 0, len(t.index))
	for _, s := range t.index {
		sessions = append(sessions, s)
	}
	meta := t.meta
	t.mu.Unlock()
	var first error
	for _, s := range sessions {
		s.inner.Close()
		if s.st != nil {
			if err := s.st.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	if meta != nil {
		if err := meta.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
