package serve

import (
	"fmt"
	"log"
	"sort"

	"oassis/internal/assign"
	"oassis/internal/core"
	"oassis/internal/oassisql"
	"oassis/internal/panel"
	"oassis/internal/plan"
	"oassis/internal/store"
)

// maxPendingPerMember bounds each member's pending list per session —
// the pool panels are cut from. The engine's blocked question always
// fits; speculative questions beyond the bound simply wait for the next
// refill.
const maxPendingPerMember = 16

// logf reports a non-fatal serving-tier fault (journal write failures,
// late submits); the tier keeps serving, matching the single-session
// server's behavior.
func logf(format string, args ...interface{}) { log.Printf(format, args...) }

// Session is one hosted mining session: a core.Session plus its pending
// per-member questions, its compiled plan, and (optionally) its WAL
// store. Mutable state is guarded by the owning shard's mutex; the
// exported methods take it, the *Locked methods expect it held.
type Session struct {
	id    string
	t     *Tenant
	sh    *shard
	query *oassisql.Query
	plan  *plan.Plan
	sp    *assign.Space
	inner *core.Session
	st    *store.Store // nil for an in-memory tenant

	priors panel.PriorSource

	// Guarded by sh.mu.
	pending  map[string][]*pendingQuestion // per member, issue order
	serial   int
	finished bool
	result   *core.Result
}

type pendingQuestion struct {
	id int
	q  core.Question
}

// ID returns the session's tenant-unique identifier.
func (s *Session) ID() string { return s.id }

// Query returns the session's parsed query.
func (s *Session) Query() *oassisql.Query { return s.query }

// Plan returns the compiled (shared, content-addressed) plan.
func (s *Session) Plan() *plan.Plan { return s.plan }

// Space returns the session's assignment space (for formatting results).
func (s *Session) Space() *assign.Space { return s.sp }

// Shard returns the index of the shard the session routed to.
func (s *Session) Shard() int { return s.sh.idx }

// Done reports whether the session has finished mining.
func (s *Session) Done() bool {
	s.sh.mu.Lock()
	defer s.sh.mu.Unlock()
	s.refillLocked()
	return s.finished
}

// Result returns the mined result once the session has finished
// (nil, false before that).
func (s *Session) Result() (*core.Result, bool) {
	s.sh.mu.Lock()
	defer s.sh.mu.Unlock()
	s.refillLocked()
	if s.result == nil {
		return nil, false
	}
	return s.result, true
}

// primaryLocked picks the member's single-question view of their pending
// list: the engine's own (non-speculative) question when one is pending,
// else the longest-waiting speculative one. Caller holds sh.mu.
func (s *Session) primaryLocked(member string) *pendingQuestion {
	list := s.pending[member]
	if len(list) == 0 {
		return nil
	}
	for _, p := range list {
		if !p.q.Speculative {
			return p
		}
	}
	return list[0]
}

// Pending returns the member's pending question in this session, if any
// (for the session-addressed question route).
func (s *Session) Pending(member string) (Question, bool) {
	s.sh.mu.Lock()
	defer s.sh.mu.Unlock()
	s.refillLocked()
	p := s.primaryLocked(member)
	if p == nil {
		return Question{}, false
	}
	return s.wireQuestion(p), true
}

// PendingPanel returns the member's pending questions in this session as
// a panel of up to max items (for the session-addressed panel route).
func (s *Session) PendingPanel(member string, max int) (Panel, bool) {
	if max <= 0 {
		max = panel.DefaultSize
	}
	s.sh.mu.Lock()
	defer s.sh.mu.Unlock()
	s.refillLocked()
	return s.wirePanelLocked(member, max)
}

// Submit answers the member's pending question with the given wire ID.
func (s *Session) Submit(member string, wireID int, ans core.Answer) error {
	return s.submit(member, wireID, ans)
}

func (s *Session) submit(member string, wireID int, ans core.Answer) error {
	s.sh.mu.Lock()
	defer s.sh.mu.Unlock()
	for _, p := range s.pending[member] {
		if p.id == wireID {
			return s.submitLocked(member, p, ans)
		}
	}
	return fmt.Errorf("%w %d for member %q in session %s", ErrNoPending, wireID, member, s.id)
}

// removePendingLocked drops one entry from the member's pending list.
// Caller holds sh.mu.
func (s *Session) removePendingLocked(member string, p *pendingQuestion) {
	list := s.pending[member]
	for i, e := range list {
		if e == p {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(s.pending, member)
	} else {
		s.pending[member] = list
	}
}

// submitLocked consumes the pending question, credits the member, feeds
// the engine, and refills. Caller holds sh.mu and has matched p.
func (s *Session) submitLocked(member string, p *pendingQuestion, ans core.Answer) error {
	s.removePendingLocked(member, p)
	s.t.credit(member)
	// Answers to questions the engine already retired (the round moved
	// on) are buffered or dropped by the session; the member's credit
	// stands either way.
	if err := s.inner.Submit(p.q.ID, ans); err != nil {
		logf("serve: %s/%s submit: %v", s.t.name, s.id, err)
	}
	s.refillLocked()
	return nil
}

// PanelAnswer answers one panel item by its wire ID.
type PanelAnswer struct {
	ID     int
	Answer core.Answer
}

// SubmitPanel answers several of the member's pending questions at once:
// every matched item is consumed and credited, and the whole batch feeds
// the engine through one deterministic SubmitBatch — one lock
// acquisition, one refill, one waiter broadcast for the entire panel.
// Unmatched wire IDs (already answered, session moved on) are skipped;
// a panel matching nothing is ErrNoPending. Returns the applied count.
func (s *Session) SubmitPanel(member string, answers []PanelAnswer) (int, error) {
	s.sh.mu.Lock()
	defer s.sh.mu.Unlock()
	var subs []core.Submission
	for _, a := range answers {
		var p *pendingQuestion
		for _, e := range s.pending[member] {
			if e.id == a.ID {
				p = e
				break
			}
		}
		if p == nil {
			continue
		}
		s.removePendingLocked(member, p)
		s.t.credit(member)
		subs = append(subs, core.Submission{ID: p.q.ID, Answer: a.Answer})
	}
	if len(subs) == 0 {
		return 0, fmt.Errorf("%w: no panel item matched for member %q in session %s", ErrNoPending, member, s.id)
	}
	if err := s.inner.SubmitBatch(subs); err != nil {
		logf("serve: %s/%s panel submit: %v", s.t.name, s.id, err)
	}
	s.refillLocked()
	return len(subs), nil
}

// refillLocked pulls the engine's answerable questions into the pending
// slots, queues them on the shard's ready lists, journals the hand-outs,
// and wakes pollers on any change. Caller holds sh.mu.
func (s *Session) refillLocked() {
	if s.finished {
		return
	}
	if s.inner.Done() {
		s.finished = true
		s.result = s.inner.Result()
		// Pending entries die with the session; ready-queue entries are
		// invalidated by the cleared map and dropped lazily on take.
		s.pending = make(map[string][]*pendingQuestion)
		s.sh.obs.live.Dec()
		s.t.sessionFinished()
		return
	}
	changed := false
	for _, q := range s.inner.Next() {
		list := s.pending[q.Member]
		if len(list) >= maxPendingPerMember {
			continue
		}
		dup := false
		for _, e := range list {
			if e.q.ID == q.ID {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		s.serial++
		p := &pendingQuestion{id: s.serial, q: q}
		if len(list) == 0 {
			s.sh.ready[q.Member] = append(s.sh.ready[q.Member], s)
		}
		s.pending[q.Member] = append(list, p)
		changed = true
		if s.st != nil && q.Kind == core.KindConcrete {
			// Journal the hand-out before a client sees it: an issued
			// record without a matching answer marks a question in
			// flight at a crash, re-issued on recovery.
			if err := s.st.AppendIssued(q.Facts.Key(), q.Member); err != nil {
				logf("serve: %s/%s store issued: %v", s.t.name, s.id, err)
			}
		}
	}
	if changed {
		s.t.broadcast()
	}
}

// wireQuestion builds the serving-tier view of a pending question.
// Caller holds sh.mu.
func (s *Session) wireQuestion(p *pendingQuestion) Question {
	return Question{
		Tenant:      s.t.name,
		Session:     s.id,
		ID:          p.id,
		Member:      p.q.Member,
		Kind:        p.q.Kind,
		Facts:       p.q.Facts,
		Choices:     p.q.Choices,
		Terms:       p.q.Terms,
		Speculative: p.q.Speculative,
	}
}

// wirePanelLocked cuts the member's panel from their pending list: up to
// max items, the engine's own (non-speculative) questions first, then
// speculative ones in issue order, each carrying its prior. The items
// stay pending (a re-poll resends the panel); answering them is what
// consumes the list. Caller holds sh.mu.
func (s *Session) wirePanelLocked(member string, max int) (Panel, bool) {
	list := s.pending[member]
	if len(list) == 0 || s.finished {
		return Panel{}, false
	}
	items := append([]*pendingQuestion(nil), list...)
	sort.SliceStable(items, func(i, j int) bool {
		if items[i].q.Speculative != items[j].q.Speculative {
			return !items[i].q.Speculative
		}
		return items[i].id < items[j].id
	})
	if len(items) > max {
		items = items[:max]
	}
	p := Panel{Tenant: s.t.name, Session: s.id, Member: member}
	for _, e := range items {
		// Priors are computed at cut time, not surfacing time: answers
		// from other members collected since the question was issued
		// upgrade the guess a re-poll sees.
		pr := s.priors.Prior(e.q)
		p.Items = append(p.Items, PanelItem{
			Question: s.wireQuestion(e),
			Prior:    pr,
			Confirm:  pr.Confirmable(),
		})
	}
	return p, true
}
