package serve

import (
	"fmt"
	"log"

	"oassis/internal/assign"
	"oassis/internal/core"
	"oassis/internal/oassisql"
	"oassis/internal/plan"
	"oassis/internal/store"
)

// logf reports a non-fatal serving-tier fault (journal write failures,
// late submits); the tier keeps serving, matching the single-session
// server's behavior.
func logf(format string, args ...interface{}) { log.Printf(format, args...) }

// Session is one hosted mining session: a core.Session plus its pending
// per-member questions, its compiled plan, and (optionally) its WAL
// store. Mutable state is guarded by the owning shard's mutex; the
// exported methods take it, the *Locked methods expect it held.
type Session struct {
	id    string
	t     *Tenant
	sh    *shard
	query *oassisql.Query
	plan  *plan.Plan
	sp    *assign.Space
	inner *core.Session
	st    *store.Store // nil for an in-memory tenant

	// Guarded by sh.mu.
	pending  map[string]*pendingQuestion
	serial   int
	finished bool
	result   *core.Result
}

type pendingQuestion struct {
	id int
	q  core.Question
}

// ID returns the session's tenant-unique identifier.
func (s *Session) ID() string { return s.id }

// Query returns the session's parsed query.
func (s *Session) Query() *oassisql.Query { return s.query }

// Plan returns the compiled (shared, content-addressed) plan.
func (s *Session) Plan() *plan.Plan { return s.plan }

// Space returns the session's assignment space (for formatting results).
func (s *Session) Space() *assign.Space { return s.sp }

// Shard returns the index of the shard the session routed to.
func (s *Session) Shard() int { return s.sh.idx }

// Done reports whether the session has finished mining.
func (s *Session) Done() bool {
	s.sh.mu.Lock()
	defer s.sh.mu.Unlock()
	s.refillLocked()
	return s.finished
}

// Result returns the mined result once the session has finished
// (nil, false before that).
func (s *Session) Result() (*core.Result, bool) {
	s.sh.mu.Lock()
	defer s.sh.mu.Unlock()
	s.refillLocked()
	if s.result == nil {
		return nil, false
	}
	return s.result, true
}

// Pending returns the member's pending question in this session, if any
// (for the session-addressed question route).
func (s *Session) Pending(member string) (Question, bool) {
	s.sh.mu.Lock()
	defer s.sh.mu.Unlock()
	s.refillLocked()
	p := s.pending[member]
	if p == nil {
		return Question{}, false
	}
	return s.wireQuestion(p), true
}

// Submit answers the member's pending question with the given wire ID.
func (s *Session) Submit(member string, wireID int, ans core.Answer) error {
	return s.submit(member, wireID, ans)
}

func (s *Session) submit(member string, wireID int, ans core.Answer) error {
	s.sh.mu.Lock()
	defer s.sh.mu.Unlock()
	p := s.pending[member]
	if p == nil || p.id != wireID {
		return fmt.Errorf("%w %d for member %q in session %s", ErrNoPending, wireID, member, s.id)
	}
	return s.submitLocked(member, p, ans)
}

// submitLocked consumes the pending question, credits the member, feeds
// the engine, and refills. Caller holds sh.mu and has matched p.
func (s *Session) submitLocked(member string, p *pendingQuestion, ans core.Answer) error {
	delete(s.pending, member)
	s.t.credit(member)
	// Answers to questions the engine already retired (the round moved
	// on) are buffered or dropped by the session; the member's credit
	// stands either way.
	if err := s.inner.Submit(p.q.ID, ans); err != nil {
		logf("serve: %s/%s submit: %v", s.t.name, s.id, err)
	}
	s.refillLocked()
	return nil
}

// refillLocked pulls the engine's answerable questions into the pending
// slots, queues them on the shard's ready lists, journals the hand-outs,
// and wakes pollers on any change. Caller holds sh.mu.
func (s *Session) refillLocked() {
	if s.finished {
		return
	}
	if s.inner.Done() {
		s.finished = true
		s.result = s.inner.Result()
		// Pending entries die with the session; ready-queue entries are
		// invalidated by the cleared map and dropped lazily on take.
		s.pending = make(map[string]*pendingQuestion)
		s.sh.obs.live.Dec()
		s.t.sessionFinished()
		return
	}
	changed := false
	for _, q := range s.inner.Next() {
		if s.pending[q.Member] != nil {
			continue
		}
		s.serial++
		s.pending[q.Member] = &pendingQuestion{id: s.serial, q: q}
		s.sh.ready[q.Member] = append(s.sh.ready[q.Member], s)
		changed = true
		if s.st != nil && q.Kind == core.KindConcrete {
			// Journal the hand-out before a client sees it: an issued
			// record without a matching answer marks a question in
			// flight at a crash, re-issued on recovery.
			if err := s.st.AppendIssued(q.Facts.Key(), q.Member); err != nil {
				logf("serve: %s/%s store issued: %v", s.t.name, s.id, err)
			}
		}
	}
	if changed {
		s.t.broadcast()
	}
}

// wireQuestion builds the serving-tier view of a pending question.
// Caller holds sh.mu.
func (s *Session) wireQuestion(p *pendingQuestion) Question {
	return Question{
		Tenant:      s.t.name,
		Session:     s.id,
		ID:          p.id,
		Member:      p.q.Member,
		Kind:        p.q.Kind,
		Facts:       p.q.Facts,
		Choices:     p.q.Choices,
		Terms:       p.q.Terms,
		Speculative: p.q.Speculative,
	}
}
