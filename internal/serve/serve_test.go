package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"oassis/internal/aggregate"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/fact"
	"oassis/internal/oassisql"
	"oassis/internal/obs"
	"oassis/internal/ontology"
)

const testQuery = `
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity
SATISFYING
  $y doAt $x
WITH SUPPORT = 0.4
`

// testQueryB is the same shape at a different threshold: a distinct plan
// fingerprint, so two-tenant tests exercise distinct plans.
const testQueryB = `
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity
SATISFYING
  $y doAt $x
WITH SUPPORT = 0.5
`

// answerFor is the deterministic answering strategy shared by the serve
// drivers and the single-session reference path: support read from the
// member's personal DB, discretized to the five-level scale like the UI.
func answerFor(db *crowd.PersonalDB, kind core.QuestionKind, facts fact.Set, choices []fact.Set) core.Answer {
	if kind != core.KindSpecialization {
		return core.AnswerSupport(crowd.FiveLevel(db.Support(facts)))
	}
	for i, c := range choices {
		if s := db.Support(c); s >= 0.4 {
			return core.AnswerChoice(i, crowd.FiveLevel(s))
		}
	}
	return core.AnswerNoneOfThese()
}

// driveMember polls and answers for one member until the tenant reports
// done or shutdown. Answered concrete fact keys are recorded into seen
// (nil to skip recording).
func driveMember(t *Tenant, member string, db *crowd.PersonalDB, seen map[string]bool, mu *sync.Mutex) error {
	ctx := context.Background()
	for {
		q, out, err := t.Poll(ctx, member, 2*time.Second)
		if err != nil {
			return err
		}
		switch out {
		case OutcomeDone, OutcomeShutdown:
			return nil
		case OutcomeTimeout:
			continue
		}
		if seen != nil && q.Kind == core.KindConcrete {
			mu.Lock()
			seen[member+"|"+q.Facts.Key()] = true
			mu.Unlock()
		}
		if err := t.Answer(q.Session, q.Member, q.ID, answerFor(db, q.Kind, q.Facts, q.Choices)); err != nil {
			return err
		}
	}
}

// formatMSPs renders a result's valid MSPs sorted, for bit-identical
// comparison across serving paths.
func formatMSPs(s *Session, res *core.Result) []string {
	voc := s.t.voc
	out := make([]string, 0, len(res.ValidMSPs))
	for _, m := range res.ValidMSPs {
		out = append(out, s.Space().Instantiate(m).Format(voc))
	}
	sort.Strings(out)
	return out
}

// TestServeEquivalence proves the tentpole's correctness claim: a session
// hosted by the serving tier (sharded, long-polled, multi-member) mines a
// result bit-identical to the same query driven directly on core.Session.
func TestServeEquivalence(t *testing.T) {
	s := ontology.NewSample()
	u1, u2 := crowd.SampleDBs(s)
	dbs := map[string]*crowd.PersonalDB{"p00": u1, "p01": u2}
	q := oassisql.MustParse(testQuery)

	// Reference: the single-session path.
	dom, err := core.NewDomain(s.Voc, s.Onto)
	if err != nil {
		t.Fatal(err)
	}
	pl, _, err := dom.Compile(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	ordering, err := pl.Ordering()
	if err != nil {
		t.Fatal(err)
	}
	sp := pl.NewSpace()
	ref := core.NewSession(core.Config{
		Space:    sp,
		Theta:    pl.Support,
		Ordering: ordering,
		Agg:      aggregate.NewFixedSample(2),
	}, []string{"p00", "p01"})
	for qs := ref.Next(); len(qs) > 0; qs = ref.Next() {
		for _, rq := range qs {
			_ = ref.Submit(rq.ID, answerFor(dbs[rq.Member], rq.Kind, rq.Facts, rq.Choices))
		}
	}
	refRes := ref.Close()
	var refMSPs []string
	for _, m := range refRes.ValidMSPs {
		refMSPs = append(refMSPs, sp.Instantiate(m).Format(s.Voc))
	}
	sort.Strings(refMSPs)

	// Served: same query through Registry/Tenant/shard/Poll/Answer with
	// concurrent member drivers.
	reg := NewRegistry(Config{})
	defer reg.Close()
	tn, err := reg.AddTenant(TenantConfig{
		Name: "equiv", Voc: s.Voc, Onto: s.Onto,
		Members: 2, Shards: 4, AnswersPerQuestion: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for range []int{0, 1} {
		if _, err := tn.Join("member"); err != nil {
			t.Fatal(err)
		}
	}
	sess, err := tn.Open(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for member, db := range dbs {
		wg.Add(1)
		go func(member string, db *crowd.PersonalDB) {
			defer wg.Done()
			errs <- driveMember(tn, member, db, nil, nil)
		}(member, db)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	res, done := sess.Result()
	if !done {
		t.Fatal("served session not done after drivers finished")
	}
	got := formatMSPs(sess, res)
	if strings.Join(got, ";") != strings.Join(refMSPs, ";") {
		t.Errorf("served MSPs = %v, want %v", got, refMSPs)
	}
	if res.Stats.TotalQuestions == 0 {
		t.Error("served session recorded no questions")
	}
}

// TestServePlanSharing: sessions of the same query share the compiled
// plan (pointer-identical, via the per-domain cache) and land on the
// same shard; a different threshold compiles a different plan.
func TestServePlanSharing(t *testing.T) {
	s := ontology.NewSample()
	reg := NewRegistry(Config{})
	defer reg.Close()
	tn, err := reg.AddTenant(TenantConfig{Name: "a", Voc: s.Voc, Onto: s.Onto, Members: 2, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := tn.Open(oassisql.MustParse(testQuery))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := tn.Open(oassisql.MustParse(testQuery))
	if err != nil {
		t.Fatal(err)
	}
	if s1.Plan() != s2.Plan() {
		t.Error("same query compiled to distinct plan instances")
	}
	if s1.Shard() != s2.Shard() {
		t.Errorf("same plan routed to shards %d and %d", s1.Shard(), s2.Shard())
	}
	s3, err := tn.Open(oassisql.MustParse(testQueryB))
	if err != nil {
		t.Fatal(err)
	}
	if s3.Plan().Fingerprint() == s1.Plan().Fingerprint() {
		t.Error("different thresholds produced the same fingerprint")
	}
	// EnsureSession reuses instead of forking.
	s4, existed, err := tn.EnsureSession(oassisql.MustParse(testQuery))
	if err != nil || !existed {
		t.Fatalf("EnsureSession existed=%v err=%v", existed, err)
	}
	if s4 != s1 && s4 != s2 {
		t.Error("EnsureSession opened a fresh session despite a live match")
	}
}

// TestServeDrainWakesWaiters is the shutdown satellite at the serve
// layer: a parked long-poller wakes with OutcomeShutdown the moment the
// registry drains, instead of riding out its timeout.
func TestServeDrainWakesWaiters(t *testing.T) {
	s := ontology.NewSample()
	reg := NewRegistry(Config{})
	defer reg.Close()
	tn, err := reg.AddTenant(TenantConfig{Name: "a", Voc: s.Voc, Onto: s.Onto, Members: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Join("ann"); err != nil {
		t.Fatal(err)
	}
	type pollRes struct {
		out Outcome
		err error
	}
	got := make(chan pollRes, 1)
	go func() {
		// No sessions exist, so this parks for the full 30s unless
		// Drain wakes it.
		_, out, err := tn.Poll(context.Background(), "p00", 30*time.Second)
		got <- pollRes{out, err}
	}()
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	reg.Drain()
	select {
	case r := <-got:
		if r.err != nil || r.out != OutcomeShutdown {
			t.Fatalf("poll after drain: out=%v err=%v", r.out, r.err)
		}
		if waited := time.Since(start); waited > 2*time.Second {
			t.Fatalf("waiter rode out %v instead of waking on drain", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked waiter never woke on drain")
	}
	// Polls after drain return shutdown immediately.
	_, out, err := tn.Poll(context.Background(), "p00", time.Minute)
	if err != nil || out != OutcomeShutdown {
		t.Fatalf("post-drain poll: out=%v err=%v", out, err)
	}
}

// TestServeAdmissionControl covers both shed paths — the global
// in-flight budget and the per-shard waiter bound — and their typed
// error plus metrics.
func TestServeAdmissionControl(t *testing.T) {
	s := ontology.NewSample()
	met := obs.NewRegistry()
	reg := NewRegistry(Config{MaxInFlight: 1, MaxWaitersPerShard: 8, Metrics: met})
	defer reg.Close()
	tn, err := reg.AddTenant(TenantConfig{Name: "a", Voc: s.Voc, Onto: s.Onto, Members: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"ann", "bob"} {
		if _, err := tn.Join(n); err != nil {
			t.Fatal(err)
		}
	}
	release := make(chan struct{})
	go func() {
		ctx, cancel := context.WithCancel(context.Background())
		go func() { <-release; cancel() }()
		_, _, _ = tn.Poll(ctx, "p00", 30*time.Second)
	}()
	// Wait until the first poll occupies the only budget slot.
	deadline := time.Now().Add(2 * time.Second)
	for reg.InFlight() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first poll never acquired the budget")
		}
		time.Sleep(time.Millisecond)
	}
	_, _, err = tn.Poll(context.Background(), "p01", time.Second)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated poll error = %v, want ErrOverloaded", err)
	}
	const wantGlobal = "serve: overloaded: global in-flight budget (1) exhausted"
	if err.Error() != wantGlobal {
		t.Errorf("global shed message = %q, want %q", err.Error(), wantGlobal)
	}
	close(release)

	// Per-shard waiter bound: with budget restored but one waiter slot,
	// a second parked member sheds with the shard-scoped message.
	met2 := obs.NewRegistry()
	reg2 := NewRegistry(Config{MaxWaitersPerShard: 1, Metrics: met2})
	defer reg2.Close()
	tn2, err := reg2.AddTenant(TenantConfig{Name: "b", Voc: s.Voc, Onto: s.Onto, Members: 2, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"ann", "bob"} {
		if _, err := tn2.Join(n); err != nil {
			t.Fatal(err)
		}
	}
	parked := make(chan struct{})
	go func() {
		close(parked)
		_, _, _ = tn2.Poll(context.Background(), "p00", 3*time.Second)
	}()
	<-parked
	time.Sleep(100 * time.Millisecond) // let the first poll park
	_, _, err = tn2.Poll(context.Background(), "p01", time.Second)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("bounded-waiter poll error = %v, want ErrOverloaded", err)
	}
	const wantShard = "serve: overloaded: shard 0 waiter queue (1) full"
	if err.Error() != wantShard {
		t.Errorf("shard shed message = %q, want %q", err.Error(), wantShard)
	}
	var buf strings.Builder
	if err := met2.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `oassis_serve_sheds_total{reason="shard",shard="0",tenant="b"} 1`) {
		t.Errorf("shed not counted:\n%s", buf.String())
	}
}

// TestServeGoldenErrors pins the typed-error messages the HTTP layer
// serializes into 404/429/409 bodies.
func TestServeGoldenErrors(t *testing.T) {
	s := ontology.NewSample()
	reg := NewRegistry(Config{})
	defer reg.Close()
	tn, err := reg.AddTenant(TenantConfig{Name: "a", Voc: s.Voc, Onto: s.Onto, Members: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Join("ann"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		err  error
		is   error
		want string
	}{
		{"unknown tenant", func() error { _, err := reg.Tenant("nope"); return err }(),
			ErrUnknownTenant, `serve: unknown tenant "nope"`},
		{"unknown session", func() error { _, err := tn.Session("s9999"); return err }(),
			ErrUnknownSession, `serve: unknown session "s9999" in tenant "a"`},
		{"unknown member", func() error { return tn.Answer("", "ghost", 1, core.AnswerDecline()) }(),
			ErrUnknownMember, `serve: unknown member "ghost" in tenant "a"`},
		{"no pending", func() error { return tn.Answer("", "p00", 42, core.AnswerDecline()) }(),
			ErrNoPending, `serve: no pending question 42 for member "p00" in tenant "a"`},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.is) {
			t.Errorf("%s: not wrapped in its sentinel: %v", c.name, c.err)
		}
		if c.err.Error() != c.want {
			t.Errorf("%s message = %q, want %q", c.name, c.err.Error(), c.want)
		}
	}
}

// TestServeTenantIsolation is the per-tenant store satellite: two
// durable tenants stop mid-query and restart concurrently; each recovers
// exactly its own sessions and no answered question is re-asked — in its
// own tenant or across the boundary.
func TestServeTenantIsolation(t *testing.T) {
	s := ontology.NewSample()
	u1, _ := crowd.SampleDBs(s)
	dirA, dirB := t.TempDir(), t.TempDir()
	queries := map[string]string{"a": testQuery, "b": testQueryB}
	dirs := map[string]string{"a": dirA, "b": dirB}

	// Phase 1: answer a handful of questions per tenant, then stop.
	answered := map[string]map[string]bool{"a": {}, "b": {}}
	reg := NewRegistry(Config{})
	for name, qtext := range queries {
		tn, err := reg.AddTenant(TenantConfig{
			Name: name, Voc: s.Voc, Onto: s.Onto,
			Members: 1, Shards: 2, StoreDir: dirs[name],
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tn.Join("ann"); err != nil {
			t.Fatal(err)
		}
		if _, err := tn.Open(oassisql.MustParse(qtext)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			q, out, err := tn.Poll(context.Background(), "p00", time.Second)
			if err != nil || out != OutcomeQuestion {
				t.Fatalf("tenant %s seed poll %d: out=%v err=%v", name, i, out, err)
			}
			if q.Kind == core.KindConcrete {
				answered[name]["p00|"+q.Facts.Key()] = true
			}
			if err := tn.Answer(q.Session, q.Member, q.ID, answerFor(u1, q.Kind, q.Facts, q.Choices)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: restart both tenants concurrently on a fresh registry.
	reg2 := NewRegistry(Config{})
	defer reg2.Close()
	var wg sync.WaitGroup
	tenants := make(map[string]*Tenant, 2)
	var mu sync.Mutex
	errs := make(chan error, 2)
	for name := range queries {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			tn, err := reg2.AddTenant(TenantConfig{
				Name: name, Voc: s.Voc, Onto: s.Onto,
				Members: 1, Shards: 2, StoreDir: dirs[name],
			})
			if err != nil {
				errs <- fmt.Errorf("tenant %s: %w", name, err)
				return
			}
			mu.Lock()
			tenants[name] = tn
			mu.Unlock()
			errs <- nil
		}(name)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for name, qtext := range queries {
		tn := tenants[name]
		sessions := tn.Sessions()
		if len(sessions) != 1 {
			t.Fatalf("tenant %s recovered %d sessions, want 1", name, len(sessions))
		}
		// Isolation: the recovered session is this tenant's query, not
		// the neighbor's.
		if got, want := sessions[0].Query().String(), oassisql.MustParse(qtext).String(); got != want {
			t.Fatalf("tenant %s recovered query %q, want %q", name, got, want)
		}
		if !tn.MemberKnown("p00") {
			t.Fatalf("tenant %s roster not recovered", name)
		}
		if rows := tn.Leaderboard(); len(rows) == 0 || rows[0].Answers == 0 {
			t.Fatalf("tenant %s leaderboard not recovered: %v", name, rows)
		}
	}
	// Phase 3: drive both to completion; no answered question repeats.
	reasked := map[string]map[string]bool{"a": {}, "b": {}}
	var driveWG sync.WaitGroup
	driveErrs := make(chan error, 2)
	for name := range queries {
		driveWG.Add(1)
		go func(name string) {
			defer driveWG.Done()
			var seenMu sync.Mutex
			driveErrs <- driveMember(tenants[name], "p00", u1, reasked[name], &seenMu)
		}(name)
	}
	driveWG.Wait()
	close(driveErrs)
	for err := range driveErrs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for name := range queries {
		for key := range reasked[name] {
			if answered[name][key] {
				t.Errorf("tenant %s re-asked answered question %s", name, key)
			}
			other := "a"
			if name == "a" {
				other = "b"
			}
			_ = other // cross-tenant: a question answered in one tenant
			// must not satisfy (or suppress) the other's session — the
			// other tenant asks its own full set, checked implicitly by
			// both runs completing on disjoint stores.
		}
		res, done := tenants[name].Sessions()[0].Result()
		if !done || res == nil {
			t.Errorf("tenant %s did not finish after restart", name)
		}
	}
}

// TestServeRegistryRace hammers one registry from 32 goroutines doing
// join/poll/answer/open/retire concurrently; run under -race via the
// race matrix.
func TestServeRegistryRace(t *testing.T) {
	s := ontology.NewSample()
	u1, u2 := crowd.SampleDBs(s)
	reg := NewRegistry(Config{MaxInFlight: 64})
	defer reg.Close()
	tn, err := reg.AddTenant(TenantConfig{Name: "race", Voc: s.Voc, Onto: s.Onto, Members: 32, Shards: 4, AnswersPerQuestion: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Open(oassisql.MustParse(testQuery)); err != nil {
		t.Fatal(err)
	}
	stop := time.Now().Add(500 * time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			member, err := tn.Join(fmt.Sprintf("g%d", g))
			if err != nil {
				t.Error(err)
				return
			}
			db := u1
			if g%2 == 1 {
				db = u2
			}
			for i := 0; time.Now().Before(stop); i++ {
				switch {
				case g == 0 && i%5 == 4:
					// One goroutine churns sessions: open a second
					// session and retire it while others poll.
					if sess, err := tn.Open(oassisql.MustParse(testQueryB)); err == nil {
						_ = tn.Retire(sess.ID())
					}
				default:
					q, out, err := tn.Poll(context.Background(), member, 20*time.Millisecond)
					if err != nil || out != OutcomeQuestion {
						continue
					}
					_ = tn.Answer(q.Session, q.Member, q.ID, answerFor(db, q.Kind, q.Facts, q.Choices))
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestServeMetricsExposition: the serving instruments land on /metrics
// with per-tenant/per-shard labels and parse back strictly.
func TestServeMetricsExposition(t *testing.T) {
	s := ontology.NewSample()
	u1, _ := crowd.SampleDBs(s)
	met := obs.NewRegistry()
	reg := NewRegistry(Config{Metrics: met})
	defer reg.Close()
	tn, err := reg.AddTenant(TenantConfig{Name: "m", Voc: s.Voc, Onto: s.Onto, Members: 1, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Join("ann"); err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Open(oassisql.MustParse(testQuery)); err != nil {
		t.Fatal(err)
	}
	q, out, err := tn.Poll(context.Background(), "p00", time.Second)
	if err != nil || out != OutcomeQuestion {
		t.Fatalf("poll: out=%v err=%v", out, err)
	}
	if err := tn.Answer(q.Session, q.Member, q.ID, answerFor(u1, q.Kind, q.Facts, q.Choices)); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := met.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	samples, err := obs.ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, text)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	mustContain := []string{
		`oassis_serve_polls_total{outcome="question",tenant="m"} 1`,
		`oassis_serve_dispatch_p99_microseconds{tenant="m"}`,
		`oassis_serve_sessions_opened_total{tenant="m"} 1`,
		`oassis_serve_sessions_live{`,
		`oassis_serve_waiters{`,
		`oassis_serve_dispatch_seconds_count{tenant="m"} 1`,
	}
	for _, want := range mustContain {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
