package serve

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"testing"

	"oassis/internal/aggregate"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/plan"
)

// referenceMSPs drives the query on a bare core.Session under the given
// ordering and returns its sorted valid-MSP rendering — the yardstick the
// served tenants must reproduce.
func referenceMSPs(t *testing.T, s *ontology.Sample, q *oassisql.Query, policy string) []string {
	t.Helper()
	dom, err := core.NewDomain(s.Voc, s.Onto)
	if err != nil {
		t.Fatal(err)
	}
	pl, _, err := dom.CompileVariant(q, "", policy, nil)
	if err != nil {
		t.Fatal(err)
	}
	ordering, err := pl.Ordering()
	if err != nil {
		t.Fatal(err)
	}
	u1, u2 := crowd.SampleDBs(s)
	dbs := map[string]*crowd.PersonalDB{"p00": u1, "p01": u2}
	sp := pl.NewSpace()
	ref := core.NewSession(core.Config{
		Space:    sp,
		Theta:    pl.Support,
		Ordering: ordering,
		Agg:      aggregate.NewFixedSample(2),
	}, []string{"p00", "p01"})
	for qs := ref.Next(); len(qs) > 0; qs = ref.Next() {
		for _, rq := range qs {
			_ = ref.Submit(rq.ID, answerFor(dbs[rq.Member], rq.Kind, rq.Facts, rq.Choices))
		}
	}
	res := ref.Close()
	out := make([]string, 0, len(res.ValidMSPs))
	for _, m := range res.ValidMSPs {
		out = append(out, sp.Instantiate(m).Format(s.Voc))
	}
	sort.Strings(out)
	return out
}

// TestTenantOrderings is satellite 3's round trip: two tenants of the
// same registry run the same query under different ordering policies,
// concurrently. Each tenant's session must carry its own policy-variant
// plan (distinct fingerprints — the WAL and cache separation basis), and
// each must mine exactly what a bare session under that ordering mines.
func TestTenantOrderings(t *testing.T) {
	s := ontology.NewSample()
	q := oassisql.MustParse(testQuery)
	policies := map[string]string{
		"tenant-chain": plan.PolicyChainPrune,
		"tenant-max":   plan.PolicyMaxPrune,
	}
	want := map[string][]string{}
	for name, policy := range policies {
		want[name] = referenceMSPs(t, s, oassisql.MustParse(testQuery), policy)
	}

	reg := NewRegistry(Config{})
	defer reg.Close()
	type opened struct {
		tn   *Tenant
		sess *Session
	}
	tenants := map[string]opened{}
	for name, policy := range policies {
		tn, err := reg.AddTenant(TenantConfig{
			Name: name, Voc: s.Voc, Onto: s.Onto,
			Members: 2, Shards: 4, AnswersPerQuestion: 2, Policy: policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		for range []int{0, 1} {
			if _, err := tn.Join("member"); err != nil {
				t.Fatal(err)
			}
		}
		sess, err := tn.Open(q)
		if err != nil {
			t.Fatal(err)
		}
		if got := sess.Plan().PolicyName; got != policy {
			t.Fatalf("tenant %s session compiled policy %q, want %q", name, got, policy)
		}
		tenants[name] = opened{tn, sess}
	}
	fpA := tenants["tenant-chain"].sess.Plan().Fingerprint()
	fpB := tenants["tenant-max"].sess.Plan().Fingerprint()
	if fpA == fpB {
		t.Fatal("different ordering policies produced the same plan fingerprint")
	}

	// Drive both tenants' members concurrently in one pool.
	u1, u2 := crowd.SampleDBs(s)
	dbs := map[string]*crowd.PersonalDB{"p00": u1, "p01": u2}
	var wg sync.WaitGroup
	errs := make(chan error, 2*len(tenants))
	for _, o := range tenants {
		for member, db := range dbs {
			wg.Add(1)
			go func(tn *Tenant, member string, db *crowd.PersonalDB) {
				defer wg.Done()
				errs <- driveMember(tn, member, db, nil, nil)
			}(o.tn, member, db)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for name, o := range tenants {
		res, done := o.sess.Result()
		if !done {
			t.Fatalf("tenant %s session not done", name)
		}
		got := formatMSPs(o.sess, res)
		if strings.Join(got, ";") != strings.Join(want[name], ";") {
			t.Errorf("tenant %s MSPs = %v, want %v", name, got, want[name])
		}
	}
}

// TestTenantPolicyValidation: an unknown ordering policy is refused at
// tenant boot, naming the tenant, wrapping the plan sentinel.
func TestTenantPolicyValidation(t *testing.T) {
	s := ontology.NewSample()
	reg := NewRegistry(Config{})
	defer reg.Close()
	_, err := reg.AddTenant(TenantConfig{
		Name: "bad", Voc: s.Voc, Onto: s.Onto, Members: 2, Policy: "nope",
	})
	if err == nil {
		t.Fatal("unknown tenant policy accepted")
	}
	if !errors.Is(err, plan.ErrUnknownPolicy) {
		t.Errorf("boot error %v does not wrap plan.ErrUnknownPolicy", err)
	}
	if !strings.Contains(err.Error(), `tenant "bad"`) {
		t.Errorf("boot error %q does not name the tenant", err)
	}
}
