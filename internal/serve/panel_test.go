package serve

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"oassis/internal/aggregate"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/oassisql"
	"oassis/internal/ontology"
)

// drivePanelMember polls panels and answers every item in them until the
// tenant reports done or shutdown. It records the largest panel it saw.
func drivePanelMember(t *Tenant, member string, db *crowd.PersonalDB, maxSeen *int, mu *sync.Mutex) error {
	ctx := context.Background()
	for {
		p, out, err := t.PollPanel(ctx, member, 8, 2*time.Second)
		if err != nil {
			return err
		}
		switch out {
		case OutcomeDone, OutcomeShutdown:
			return nil
		case OutcomeTimeout:
			continue
		}
		mu.Lock()
		if len(p.Items) > *maxSeen {
			*maxSeen = len(p.Items)
		}
		mu.Unlock()
		answers := make([]PanelAnswer, 0, len(p.Items))
		for _, it := range p.Items {
			answers = append(answers, PanelAnswer{
				ID:     it.ID,
				Answer: answerFor(db, it.Kind, it.Facts, it.Choices),
			})
		}
		if _, err := t.AnswerPanel(p.Session, member, answers); err != nil {
			return err
		}
	}
}

// TestServePanelEquivalence: a session driven entirely through the panel
// route — batched polls, batched answers, successor speculation on —
// mines a result bit-identical to the sequential single-session path,
// and the panels actually batch (more than one item per round trip).
func TestServePanelEquivalence(t *testing.T) {
	s := ontology.NewSample()
	u1, u2 := crowd.SampleDBs(s)
	dbs := map[string]*crowd.PersonalDB{"p00": u1, "p01": u2}
	q := oassisql.MustParse(testQuery)

	// Reference: the single-session path.
	dom, err := core.NewDomain(s.Voc, s.Onto)
	if err != nil {
		t.Fatal(err)
	}
	pl, _, err := dom.Compile(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	ordering, err := pl.Ordering()
	if err != nil {
		t.Fatal(err)
	}
	sp := pl.NewSpace()
	ref := core.NewSession(core.Config{
		Space:    sp,
		Theta:    pl.Support,
		Ordering: ordering,
		Agg:      aggregate.NewFixedSample(2),
	}, []string{"p00", "p01"})
	for qs := ref.Next(); len(qs) > 0; qs = ref.Next() {
		for _, rq := range qs {
			_ = ref.Submit(rq.ID, answerFor(dbs[rq.Member], rq.Kind, rq.Facts, rq.Choices))
		}
	}
	refRes := ref.Close()
	var refMSPs []string
	for _, m := range refRes.ValidMSPs {
		refMSPs = append(refMSPs, sp.Instantiate(m).Format(s.Voc))
	}
	sort.Strings(refMSPs)

	reg := NewRegistry(Config{})
	defer reg.Close()
	tn, err := reg.AddTenant(TenantConfig{
		Name: "panels", Voc: s.Voc, Onto: s.Onto,
		Members: 2, Shards: 4, AnswersPerQuestion: 2, PanelSpeculation: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for range []int{0, 1} {
		if _, err := tn.Join("member"); err != nil {
			t.Fatal(err)
		}
	}
	sess, err := tn.Open(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	maxSeen := 0
	errs := make(chan error, 2)
	for member, db := range dbs {
		wg.Add(1)
		go func(member string, db *crowd.PersonalDB) {
			defer wg.Done()
			errs <- drivePanelMember(tn, member, db, &maxSeen, &mu)
		}(member, db)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	res, done := sess.Result()
	if !done {
		t.Fatal("panel-driven session not done after drivers finished")
	}
	got := formatMSPs(sess, res)
	if strings.Join(got, ";") != strings.Join(refMSPs, ";") {
		t.Errorf("panel-driven MSPs = %v, want %v", got, refMSPs)
	}
	if maxSeen < 2 {
		t.Errorf("largest panel carried %d item(s); batching never happened", maxSeen)
	}
}

// TestServePanelItemsCarryPriors: every concrete item handed out on the
// panel route is primed with a prior, and its Confirm flag agrees with
// the prior's confidence.
func TestServePanelItemsCarryPriors(t *testing.T) {
	s := ontology.NewSample()
	reg := NewRegistry(Config{})
	defer reg.Close()
	tn, err := reg.AddTenant(TenantConfig{
		Name: "priors", Voc: s.Voc, Onto: s.Onto,
		Members: 2, PanelSpeculation: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for range []int{0, 1} {
		if _, err := tn.Join("member"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tn.Open(oassisql.MustParse(testQuery)); err != nil {
		t.Fatal(err)
	}
	p, out, err := tn.PollPanel(context.Background(), "p00", 8, 2*time.Second)
	if err != nil || out != OutcomeQuestion {
		t.Fatalf("poll: out=%v err=%v", out, err)
	}
	if len(p.Items) == 0 {
		t.Fatal("empty panel")
	}
	if p.Items[0].Speculative {
		t.Error("panel does not lead with the engine's own question")
	}
	for i, it := range p.Items {
		if it.Kind != core.KindConcrete {
			continue
		}
		if it.Prior.Confidence == crowd.ConfidenceNone {
			t.Errorf("item %d has no prior", i)
		}
		if it.Confirm != it.Prior.Confirmable() {
			t.Errorf("item %d Confirm=%v disagrees with confidence %v", i, it.Confirm, it.Prior.Confidence)
		}
	}
}

// TestServePanelWakeup is the lost-wakeup regression for the panel
// route: a member parked in PollPanel before any session exists must
// wake as soon as a session opens and its refill publishes questions —
// not ride out its timeout. The park/notify path snapshots the tenant's
// notify channel before scanning; this test fails (by timeout) if panel
// availability is published without a broadcast or the snapshot is taken
// after the scan.
func TestServePanelWakeup(t *testing.T) {
	s := ontology.NewSample()
	reg := NewRegistry(Config{})
	defer reg.Close()
	tn, err := reg.AddTenant(TenantConfig{
		Name: "wake", Voc: s.Voc, Onto: s.Onto, Members: 1, PanelSpeculation: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Join("ann"); err != nil {
		t.Fatal(err)
	}
	type pollRes struct {
		p   Panel
		out Outcome
		err error
	}
	got := make(chan pollRes, 1)
	go func() {
		p, out, err := tn.PollPanel(context.Background(), "p00", 8, 30*time.Second)
		got <- pollRes{p, out, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the poller park
	start := time.Now()
	if _, err := tn.Open(oassisql.MustParse(testQuery)); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.err != nil || r.out != OutcomeQuestion {
			t.Fatalf("panel poll after open: out=%v err=%v", r.out, r.err)
		}
		if len(r.p.Items) == 0 {
			t.Fatal("woken poller got an empty panel")
		}
		if waited := time.Since(start); waited > 2*time.Second {
			t.Fatalf("parked panel poller woke after %v; the open's broadcast was lost", waited)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("parked panel poller never observed panel availability")
	}
}

// TestServePanelAdmission: the global budget counts panel items, not
// panels — a panel poll whose item capacity exceeds the budget sheds
// immediately, while an equivalent single-question poll would fit.
func TestServePanelAdmission(t *testing.T) {
	s := ontology.NewSample()
	reg := NewRegistry(Config{MaxInFlight: 4})
	defer reg.Close()
	tn, err := reg.AddTenant(TenantConfig{Name: "a", Voc: s.Voc, Onto: s.Onto, Members: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Join("ann"); err != nil {
		t.Fatal(err)
	}
	_, _, err = tn.PollPanel(context.Background(), "p00", 8, time.Second)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("8-item panel against a 4-item budget: err=%v, want ErrOverloaded", err)
	}
	if reg.InFlight() != 0 {
		t.Fatalf("shed panel poll leaked budget: in-flight=%d", reg.InFlight())
	}
}
