package serve

import (
	"sync"
	"sync/atomic"

	"oassis/internal/core"
)

// shard owns a disjoint subset of a tenant's sessions — the ones whose
// plan fingerprints route to it — and serializes them behind one mutex
// (core.Session is not safe for concurrent use). It also carries the
// per-shard admission bookkeeping: the ready queues that make Poll
// O(shards) instead of O(sessions), and the bounded parked-waiter count
// charged for the members whose roster partition homes here.
type shard struct {
	idx int
	t   *Tenant
	obs *shardObs

	waiters atomic.Int64

	mu       sync.Mutex
	sessions map[string]*Session
	// ready queues sessions with a pending question per member. Entries
	// are validated lazily on take: an entry whose session no longer has
	// a pending question for the member (answered, finished, retired) is
	// dropped in passing.
	ready map[string][]*Session
}

// take returns the member's longest-waiting pending question on this
// shard, if any. The question stays pending (a re-poll resends it);
// answering it is what clears the queue entry.
func (sh *shard) take(member string) (Question, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	q := sh.ready[member]
	for len(q) > 0 {
		sess := q[0]
		if p := sess.primaryLocked(member); p != nil && !sess.finished {
			sh.ready[member] = q
			return sess.wireQuestion(p), true
		}
		q = q[1:]
	}
	if len(q) == 0 {
		delete(sh.ready, member)
	} else {
		sh.ready[member] = q
	}
	return Question{}, false
}

// takePanel returns the member's longest-waiting panel on this shard —
// up to max pending items cut from one session — if any. Like take, the
// items stay pending until answered.
func (sh *shard) takePanel(member string, max int) (Panel, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	q := sh.ready[member]
	for len(q) > 0 {
		sess := q[0]
		if p, ok := sess.wirePanelLocked(member, max); ok {
			sh.ready[member] = q
			return p, true
		}
		q = q[1:]
	}
	if len(q) == 0 {
		delete(sh.ready, member)
	} else {
		sh.ready[member] = q
	}
	return Panel{}, false
}

// submitAny tries the member's wire ID against every session on the
// shard — the legacy path for clients that don't speak session IDs.
// handled reports whether a matching pending question was found.
func (sh *shard) submitAny(member string, wireID int, ans core.Answer) (err error, handled bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, sess := range sh.sessions {
		for _, p := range sess.pending[member] {
			if p.id == wireID {
				return sess.submitLocked(member, p, ans), true
			}
		}
	}
	return nil, false
}

// submitPanelAny locates the session holding any of the panel's wire IDs
// for the member — the path for clients that don't echo session IDs.
// handled reports whether a session claimed the batch.
func (sh *shard) submitPanelAny(member string, answers []PanelAnswer) (n int, err error, handled bool) {
	sh.mu.Lock()
	var target *Session
scan:
	for _, sess := range sh.sessions {
		for _, p := range sess.pending[member] {
			for _, a := range answers {
				if p.id == a.ID {
					target = sess
					break scan
				}
			}
		}
	}
	sh.mu.Unlock()
	if target == nil {
		return 0, nil, false
	}
	n, err = target.SubmitPanel(member, answers)
	return n, err, true
}

// park registers a long-poll waiter against the shard's bounded queue;
// false means the bound is hit and the caller must shed.
func (sh *shard) park() bool {
	if sh.waiters.Add(1) > int64(sh.t.reg.cfg.MaxWaitersPerShard) {
		sh.waiters.Add(-1)
		return false
	}
	sh.obs.waiters.Inc()
	return true
}

func (sh *shard) unpark() {
	sh.waiters.Add(-1)
	sh.obs.waiters.Dec()
}
