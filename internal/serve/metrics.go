package serve

import (
	"strconv"
	"time"

	"oassis/internal/obs"
)

// pollOutcomes are the label values of oassis_serve_polls_total.
var pollOutcomes = []string{"question", "timeout", "done", "shutdown", "shed", "disconnect"}

// tenantObs holds the per-tenant serving instruments.
type tenantObs struct {
	dispatch   *obs.Histogram // question-dispatch latency (poll start → question out)
	p99        *obs.Gauge     // live p99 estimate of dispatch, refreshed per dispatch
	polls      map[string]*obs.Counter
	opened     *obs.Counter
	retired    *obs.Counter
	panels     *obs.Counter
	panelItems *obs.Counter
}

func newTenantObs(r *obs.Registry, tenant string) *tenantObs {
	o := &tenantObs{
		dispatch: r.Histogram("oassis_serve_dispatch_seconds",
			"latency from poll arrival to a question handed out",
			obs.LatencyBuckets, obs.L("tenant", tenant)),
		p99: r.Gauge("oassis_serve_dispatch_p99_microseconds",
			"p99 question-dispatch latency estimated from the histogram (gauges are integral, hence microseconds)",
			obs.L("tenant", tenant)),
		polls:   make(map[string]*obs.Counter, len(pollOutcomes)),
		opened:  r.Counter("oassis_serve_sessions_opened_total", "sessions attached (new or recovered)", obs.L("tenant", tenant)),
		retired: r.Counter("oassis_serve_sessions_retired_total", "sessions retired from serving", obs.L("tenant", tenant)),
		panels: r.Counter("oassis_serve_panels_total",
			"panels dispatched to members", obs.L("tenant", tenant)),
		panelItems: r.Counter("oassis_serve_panel_items_total",
			"questions dispatched inside panels", obs.L("tenant", tenant)),
	}
	for _, out := range pollOutcomes {
		o.polls[out] = r.Counter("oassis_serve_polls_total",
			"poll calls by outcome", obs.L("tenant", tenant), obs.L("outcome", out))
	}
	return o
}

func (o *tenantObs) poll(outcome string) {
	if c := o.polls[outcome]; c != nil {
		c.Inc()
	}
}

// dispatched records a successful question hand-out: the latency sample
// and a refreshed p99 gauge, so the quantile is scrapeable without
// server-side PromQL.
func (o *tenantObs) dispatched(start time.Time) {
	o.poll("question")
	o.dispatch.Observe(time.Since(start).Seconds())
	o.p99.Set(int64(o.dispatch.Quantile(0.99) * 1e6))
}

// dispatchedPanel records a panel hand-out: one dispatch latency sample
// (a panel is one round trip) plus the panel and item counters.
func (o *tenantObs) dispatchedPanel(start time.Time, items int) {
	o.dispatched(start)
	o.panels.Inc()
	o.panelItems.Add(items)
}

// shardObs holds the per-shard serving instruments.
type shardObs struct {
	live       *obs.Gauge
	waiters    *obs.Gauge
	shedGlobal *obs.Counter
	shedShard  *obs.Counter
}

func newShardObs(r *obs.Registry, tenant string, idx int) *shardObs {
	shard := strconv.Itoa(idx)
	return &shardObs{
		live: r.Gauge("oassis_serve_sessions_live",
			"unfinished sessions hosted on the shard",
			obs.L("tenant", tenant), obs.L("shard", shard)),
		waiters: r.Gauge("oassis_serve_waiters",
			"long-poll waiters parked against the shard's bound",
			obs.L("tenant", tenant), obs.L("shard", shard)),
		shedGlobal: r.Counter("oassis_serve_sheds_total",
			"polls shed by admission control",
			obs.L("tenant", tenant), obs.L("shard", shard), obs.L("reason", "global")),
		shedShard: r.Counter("oassis_serve_sheds_total",
			"polls shed by admission control",
			obs.L("tenant", tenant), obs.L("shard", shard), obs.L("reason", "shard")),
	}
}
