package experiments

import (
	"fmt"

	"oassis/internal/aggregate"
	"oassis/internal/assign"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/synth"
)

// DomainScale shrinks the crowd of the domain experiments while keeping the
// paper's DAG sizes; 1.0 is the full 248-member crowd.
type DomainScale struct {
	Members  int
	Patterns int
	Sample   int // answers per assignment (the paper's black box uses 5)

	// Parallelism caps the worker pool fanning independent grid cells out
	// (0 = one worker per CPU, 1 = sequential). Output is identical at
	// every setting; see RunGrid.
	Parallelism int
}

// FullScale is the paper's crowd setting.
var FullScale = DomainScale{Members: 248, Patterns: 0, Sample: 5}

// QuickScale keeps runtimes short while preserving the figures' shape.
var QuickScale = DomainScale{Members: 40, Patterns: 14, Sample: 5}

func applyScale(cfg synth.DomainConfig, sc DomainScale) synth.DomainConfig {
	if sc.Members > 0 {
		cfg.Members = sc.Members
	}
	if sc.Patterns > 0 {
		cfg.Patterns = sc.Patterns
	}
	return cfg
}

// runCell mines one grid cell at the given threshold, optionally priming
// from a previous run's cache (the §6.3 threshold-replay methodology).
// Each cell gets a private space and crowd so that runs at different
// thresholds share neither lattice caches nor member RNG streams (the
// crowd answers are shared via the prime cache instead, as in the paper).
func runCell(sp *assign.Space, members []crowd.Member, theta float64, sample int,
	prime *core.Cache, timeline bool) *core.Result {

	return core.Run(core.Config{
		Space:         sp,
		Theta:         theta,
		Members:       members,
		Agg:           aggregate.NewFixedSample(sample),
		Prime:         prime,
		TrackTimeline: timeline,
		Metrics:       sharedMetrics(),
	})
}

// Fig4Domain regenerates one of Figures 4a–4c: per support threshold, the
// number of MSPs, valid MSPs, crowd questions, and the percentage of the
// baseline algorithm's questions (5 per valid assignment, no traversal
// order or inference).
func Fig4Domain(id string, base synth.DomainConfig, sc DomainScale) (*Report, error) {
	cfg := applyScale(base, sc)
	r := &Report{
		ID:     id,
		Title:  fmt.Sprintf("Crowd statistics — %s (DAG %s)", cfg.Name, dagSizeNote(cfg)),
		Header: []string{"theta", "#MSPs", "#valid", "#questions", "baseline%"},
	}
	r.Note("paper: Fig 4%s; %d members simulated (paper: 248 real), %d answers/assignment",
		id[len(id)-1:], cfg.Members, sc.Sample)
	r.Note("thresholds above 0.2 replay the 0.2 run's CrowdCache (§6.3)")

	// The domain is generated and its plan compiled exactly once; every
	// grid cell rebuilds a private lattice from the shared immutable plan
	// (pl.NewSpace) and a private crowd (NewCrowd) instead of regenerating
	// the whole domain — bit-identical output, none of the repeated
	// ontology/space construction. The theta-0.2 run feeds the replay
	// cache, so it runs first; the remaining thresholds are independent
	// given that (read-only) cache and fan out as grid cells.
	d0, err := synth.GenerateDomain(cfg)
	if err != nil {
		return nil, err
	}
	pl, err := d0.Plan(0.2)
	if err != nil {
		return nil, err
	}
	res0 := runCell(d0.Sp, d0.Members, 0.2, sc.Sample, nil, false)
	prime := res0.Cache
	addRow := func(sp *assign.Space, theta float64, res *core.Result) []interface{} {
		baseline := core.BaselineQuestions(sp, sc.Sample)
		return []interface{}{theta, len(res.MSPs), len(res.ValidMSPs),
			res.Stats.TotalQuestions, pct(res.Stats.TotalQuestions, baseline)}
	}
	rest := []float64{0.3, 0.4, 0.5}
	rows := make([][]interface{}, len(rest))
	err = RunGrid(sc.Parallelism, len(rest), func(i int) error {
		sp := pl.NewSpace()
		res := runCell(sp, d0.NewCrowd(), rest[i], sc.Sample, prime, false)
		rows[i] = addRow(sp, rest[i], res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	r.Add(addRow(d0.Sp, 0.2, res0)...)
	for _, row := range rows {
		r.Add(row...)
	}
	return r, nil
}

func dagSizeNote(cfg synth.DomainConfig) string {
	return fmt.Sprintf("%d nodes", cfg.YTerms*cfg.XTerms)
}

// Fig4Pace regenerates Figure 4d/4e: the number of questions as a function
// of the percentage of discovered MSPs, valid MSPs, and classified valid
// assignments, at threshold 0.2.
func Fig4Pace(id string, base synth.DomainConfig, sc DomainScale) (*Report, error) {
	cfg := applyScale(base, sc)
	r := &Report{
		ID:     id,
		Title:  fmt.Sprintf("Pace of data collection — %s (theta 0.2)", cfg.Name),
		Header: []string{"%discovered", "classified assign.", "valid MSPs", "all MSPs"},
	}
	r.Note("paper: Fig 4d/4e; questions needed to reach each discovery percentage")
	d, err := synth.GenerateDomain(cfg)
	if err != nil {
		return nil, err
	}
	res := runCell(d.Sp, d.Members, 0.2, sc.Sample, nil, true)

	classified := classifiedCurve(res)
	allMSPs := mspCurve(res, res.MSPs)
	validMSPs := mspCurve(res, res.ValidMSPs)
	for _, p := range []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		r.Add(fmt.Sprintf("%d%%", p),
			atPct(classified, p), atPct(validMSPs, p), atPct(allMSPs, p))
	}
	r.Note("total questions: %d; MSPs: %d (%d valid)",
		res.Stats.TotalQuestions, len(res.MSPs), len(res.ValidMSPs))
	return r, nil
}

// classifiedCurve extracts, from the timeline, the question counts at which
// the classified-valid-assignment count increased (sorted ascending).
func classifiedCurve(res *core.Result) []int {
	var out []int
	last := 0
	for _, p := range res.Stats.Timeline {
		for last < p.ClassifiedValid {
			out = append(out, p.Questions)
			last++
		}
	}
	return out
}

// mspCurve lists the discovery question of each given MSP, ascending.
func mspCurve(res *core.Result, msps []assign.Assignment) []int {
	var out []int
	for _, m := range msps {
		if q, ok := res.MSPQuestion[m.Key()]; ok {
			out = append(out, q)
		} else {
			out = append(out, res.Stats.TotalQuestions)
		}
	}
	sortInts(out)
	return out
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// atPct returns the value of the sorted curve at the given percentage of
// its length ("questions needed to reach p% of the discoveries").
func atPct(curve []int, p int) string {
	if len(curve) == 0 {
		return "n/a"
	}
	idx := (p*len(curve)+99)/100 - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(curve) {
		idx = len(curve) - 1
	}
	return fmt.Sprintf("%d", curve[idx])
}

// CrowdSummary regenerates the §6.3 run statistics across the three
// domains: questions to completion (paper: 340–1416), answers per member
// (paper: ~20 average), answer-type shares (paper: 12% specialization, half
// of them "none of these", 13% pruning), and multiplicity MSP counts
// (paper: up to 25 per query).
func CrowdSummary(sc DomainScale) (*Report, error) {
	r := &Report{
		ID:    "crowd-summary",
		Title: "Crowd-experiment summary across domains (theta 0.2)",
		Header: []string{"domain", "DAG", "#questions", "unique", "per-member",
			"special%", "none%", "prune%", "#MSPs", "mult-MSPs"},
	}
	r.Note("paper §6.3: 340–1416 questions to completion, 248 members × ~20 answers,")
	r.Note("12%% specialization (half none-of-these), 13%% pruning, ≤25 multiplicity MSPs")
	domains := []synth.DomainConfig{synth.Travel, synth.Culinary, synth.SelfTreatment}
	rows := make([][]interface{}, len(domains))
	err := RunGrid(sc.Parallelism, len(domains), func(i int) error {
		cfg := applyScale(domains[i], sc)
		d, err := synth.GenerateDomain(cfg)
		if err != nil {
			return err
		}
		res := core.Run(core.Config{
			Space:               d.Sp,
			Theta:               0.2,
			Members:             d.Members,
			Agg:                 aggregate.NewFixedSample(sc.Sample),
			SpecializationRatio: 0.35,
			EnablePruning:       true,
			Rng:                 newRng(cfg.Seed),
			Metrics:             sharedMetrics(),
		})
		mult := 0
		for _, m := range res.MSPs {
			for _, vs := range m.Vals {
				if len(vs) > 1 {
					mult++
					break
				}
			}
		}
		total := res.Stats.TotalQuestions
		perMember := float64(total) / float64(len(d.Members))
		rows[i] = []interface{}{cfg.Name, d.DAGSize(), total, res.Stats.UniqueQuestions,
			fmt.Sprintf("%.1f", perMember),
			pct(res.Stats.Specialization+res.Stats.NoneOfThese, total),
			pct(res.Stats.NoneOfThese, total),
			pct(res.Stats.Pruning, total),
			len(res.MSPs), mult}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		r.Add(row...)
	}
	return r, nil
}
