// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6). Each experiment returns a Report whose rows are
// the series the paper plots; the benchmark harness (bench_test.go) and the
// oassis-bench CLI render them as aligned text tables or CSV. See DESIGN.md
// for the experiment index (E1–E17) and the simulation substitutions.
package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"text/tabwriter"
)

// Report is one regenerated table or figure.
type Report struct {
	ID     string // experiment id, e.g. "fig4a"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string // methodology notes and paper-reference numbers
}

// Add appends a row, formatting each cell with %v.
func (r *Report) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	r.Rows = append(r.Rows, row)
}

// formatFloat renders a float64 cell. The display form %.3g is kept only
// when it round-trips to the same value; otherwise (e.g. the int-valued
// trial means of the sweeps, where %.3g turns 1416 into 1.42e+03) the exact
// shortest representation is used, so CSV output never loses precision.
func formatFloat(v float64) string {
	s := fmt.Sprintf("%.3g", v)
	if p, err := strconv.ParseFloat(s, 64); err == nil && p == v {
		return s
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Note records a methodology note.
func (r *Report) Note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Table renders the report as an aligned text table.
func (r *Report) Table() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	tw := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(r.Header, "\t"))
	for _, row := range r.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	tw.Flush()
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "# %s\n", n)
	}
	return sb.String()
}

// CSV renders the report as CSV (header first, notes as # comments).
func (r *Report) CSV() string {
	var sb strings.Builder
	esc := func(cells []string) string {
		out := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			out[i] = c
		}
		return strings.Join(out, ",")
	}
	sb.WriteString(esc(r.Header))
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		sb.WriteString(esc(row))
		sb.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "# %s\n", n)
	}
	return sb.String()
}

// pct formats a ratio as a percentage string.
func pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}
