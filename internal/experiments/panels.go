package experiments

import (
	"fmt"

	"oassis/internal/core"
	"oassis/internal/panel"
)

// panelPoint is one panel-batching measurement: the member round trips a
// full mining run cost at one panel size, against the same domain and
// crowd as the one-question baseline.
type panelPoint struct {
	// Size is the panel bound (1 = the one-question baseline).
	Size int
	// RoundTrips counts member round trips: answered questions for the
	// baseline, panels for the batched runs.
	RoundTrips int
	// Items counts the questions those round trips carried.
	Items int
	// Confirmable and ConfirmRate report how the priors fared.
	Confirmable int
	ConfirmRate float64
	// Wasted counts answers collected speculatively but never consumed.
	Wasted int
}

// runPanels measures a full mining run per panel size over the latency
// scenario's domain (12 members, 8 answers per question) and verifies the
// mined result never moves. Size 1 is the one-question baseline: every
// answer is its own member round trip. Larger sizes enable successor
// speculation to fill the panels, so one round trip carries several
// prior-primed questions. Everything runs at dispatch parallelism 1, so
// the counts are deterministic and the bench gate can diff them.
func runPanels(sizes []int) ([]panelPoint, error) {
	var points []panelPoint
	var want string
	for i, size := range sizes {
		cfg, err := latencyConfig(0, 12, 8)
		if err != nil {
			return nil, err
		}
		var pt panelPoint
		var res *core.Result
		if size <= 1 {
			res = core.Run(cfg)
			pt = panelPoint{Size: 1,
				RoundTrips: res.Stats.TotalQuestions,
				Items:      res.Stats.TotalQuestions,
			}
		} else {
			cfg.PanelSpeculation = size
			var st panel.Stats
			res, st = panel.Run(cfg, panel.Config{Size: size}, 1)
			pt = panelPoint{Size: size,
				RoundTrips:  st.RoundTrips,
				Items:       st.Items,
				Confirmable: st.Confirmable,
				ConfirmRate: st.ConfirmRate(),
				Wasted:      st.Wasted,
			}
		}
		got := latencySummary(res)
		if i == 0 {
			want = got
		} else if got != want {
			return nil, fmt.Errorf("panel size %d changed the result:\n got %s\nwant %s", size, got, want)
		}
		points = append(points, pt)
	}
	return points, nil
}

// Panels regenerates the panel-batching scenario: the same crowd-mining
// run one question at a time and panel-first at increasing panel sizes,
// reporting member round trips (the cost panels optimize), round trips
// per member, items per trip, and how the priors fared. The mined MSPs
// and statistics are identical at every size — batching buys round
// trips, never a different answer.
func Panels(sizes []int) (*Report, error) {
	points, err := runPanels(sizes)
	if err != nil {
		return nil, err
	}
	const members = 12
	r := &Report{
		ID:    "panels",
		Title: "panel batching: member round trips vs one-question dispatch",
		Header: []string{"panel size", "round trips", "trips/member", "items",
			"items/trip", "confirmable", "confirm rate", "wasted"},
	}
	base := points[0].RoundTrips
	for _, pt := range points {
		r.Add(pt.Size, pt.RoundTrips,
			fmt.Sprintf("%.1f", float64(pt.RoundTrips)/members),
			pt.Items, fmt.Sprintf("%.1f", float64(pt.Items)/float64(pt.RoundTrips)),
			pt.Confirmable, fmt.Sprintf("%.2f", pt.ConfirmRate), pt.Wasted)
	}
	if last := points[len(points)-1]; last.RoundTrips > 0 {
		r.Note("round-trip reduction at size %d: %.1fx over one-question dispatch",
			last.Size, float64(base)/float64(last.RoundTrips))
	}
	r.Note("latency scenario's domain, 12 members, 8 answers per question;")
	r.Note("results are bit-identical at every panel size")
	return r, nil
}
