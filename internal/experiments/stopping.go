package experiments

import (
	"fmt"

	"oassis/internal/aggregate"
	"oassis/internal/core"
	"oassis/internal/synth"
)

// stoppingDomain generates one open-world enumeration domain: a fixed
// taxonomy mined by 8 members whose histories share a pattern pool of the
// given depth, sampled at 5 answers per question so popular patterns are
// sighted by several members (the repeat sightings completeness
// estimation feeds on).
func stoppingDomain(patterns int) (*synth.Domain, error) {
	return synth.GenerateDomain(synth.DomainConfig{
		Name: "openworld", YTerms: 30, XTerms: 10, YDepth: 4, XDepth: 3,
		Members: 8, Transactions: 12, Patterns: patterns, Seed: 101,
	})
}

// stoppingCell compares run-to-exhaustion (ThresholdStop) against the
// species estimator on one domain, measuring questions asked and answer
// quality relative to the exhaustive run.
type stoppingCell struct {
	Patterns int
	// QFull / QSpecies are total crowd answers consumed by each policy.
	QFull, QSpecies int
	// MSPFull / MSPSpecies count mined maximal significant patterns.
	MSPFull, MSPSpecies int
	// Recall is the fraction of the exhaustive run's MSPs the early-
	// stopped run reproduced exactly.
	Recall float64
	// Precision is the fraction of the early-stop run's MSPs below (or
	// equal to) an exhaustive-run MSP — 1.0 means the answer set was
	// truncated, never corrupted.
	Precision float64
	// Sound reports Precision == 1.
	Sound bool
	// Estimate is the species policy's final completeness estimate.
	Estimate float64
	// Unclassified counts pool nodes the early stop left undecided (a
	// lower bound on the questions it saved).
	Unclassified int
}

func runStoppingCell(patterns int, target float64, minObs int) (stoppingCell, error) {
	c := stoppingCell{Patterns: patterns}
	d, err := stoppingDomain(patterns)
	if err != nil {
		return c, err
	}
	full := core.Run(core.Config{
		Space: d.Sp, Theta: 0.2, Members: d.Members,
		Agg: aggregate.NewFixedSample(5),
	})
	d2, err := stoppingDomain(patterns)
	if err != nil {
		return c, err
	}
	stop := aggregate.NewSpeciesStop(target, minObs)
	early := core.Run(core.Config{
		Space: d2.Sp, Theta: 0.2, Members: d2.Members,
		Agg:  aggregate.NewFixedSample(5),
		Stop: stop,
	})
	c.QFull = full.Stats.TotalQuestions
	c.QSpecies = early.Stats.TotalQuestions
	c.MSPFull = len(full.MSPs)
	c.MSPSpecies = len(early.MSPs)
	c.Estimate = early.Stats.StopEstimate
	c.Unclassified = early.Stats.StopUnclassified
	fullKeys := map[string]bool{}
	for _, m := range full.MSPs {
		fullKeys[d.Sp.Format(m)] = true
	}
	hit, below := 0, 0
	for _, m := range early.MSPs {
		if fullKeys[d2.Sp.Format(m)] {
			hit++
		}
		for _, fm := range full.MSPs {
			if d.Sp.Leq(m, fm) {
				below++
				break
			}
		}
	}
	if c.MSPFull > 0 {
		c.Recall = float64(hit) / float64(c.MSPFull)
	}
	c.Precision = 1
	if c.MSPSpecies > 0 {
		c.Precision = float64(below) / float64(c.MSPSpecies)
	}
	c.Sound = c.Precision == 1
	return c, nil
}

// Stopping regenerates the open-world enumeration scenario: domains whose
// members keep volunteering patterns from pools of increasing depth, mined
// to exhaustion (the paper's threshold behavior) and with the Chao92
// species estimator stopping at an estimated completeness target. The
// species column buys its question savings with an explicit completeness
// bet, so the table reports the quality it kept: exact-MSP recall against
// the exhaustive run and soundness (no early MSP outside the exhaustive
// answer set). Everything is seeded, so the rows are deterministic and the
// bench gate can diff them.
func Stopping(patternGrid []int) (*Report, error) {
	const (
		target = 0.75
		minObs = 30
	)
	r := &Report{
		ID:    "stopping",
		Title: "stop policies: questions asked vs answer quality, open-world enumeration",
		Header: []string{"patterns", "q threshold", "q species", "saved",
			"msp threshold", "msp species", "recall", "precision", "estimate", "unclassified"},
	}
	totalFull, totalSpecies := 0, 0
	for _, p := range patternGrid {
		c, err := runStoppingCell(p, target, minObs)
		if err != nil {
			return nil, err
		}
		if c.QSpecies > c.QFull {
			return nil, fmt.Errorf("stopping: species policy asked more questions (%d) than exhaustion (%d) at %d patterns",
				c.QSpecies, c.QFull, c.Patterns)
		}
		totalFull += c.QFull
		totalSpecies += c.QSpecies
		r.Add(c.Patterns, c.QFull, c.QSpecies,
			pct(c.QFull-c.QSpecies, c.QFull),
			c.MSPFull, c.MSPSpecies,
			fmt.Sprintf("%.2f", c.Recall), fmt.Sprintf("%.2f", c.Precision),
			fmt.Sprintf("%.3f", c.Estimate), c.Unclassified)
	}
	r.Note("species policy: Chao92 completeness target %.2f after %d chain-max observations,", target, minObs)
	r.Note("then the frontier settles from answers already in hand (no further questions)")
	r.Note("8 members, 5 answers per question, theta 0.2, seeded synthetic domains")
	if totalFull > 0 {
		r.Note("questions saved overall: %s (%d vs %d)",
			pct(totalFull-totalSpecies, totalFull), totalFull-totalSpecies, totalFull)
	}
	return r, nil
}
