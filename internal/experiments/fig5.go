package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"oassis/internal/assign"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/synth"
)

// Fig5Config parameterizes the algorithm-comparison experiment (Figure 5 of
// the paper: Vertical vs Horizontal vs Naive over a width-500, depth-7 DAG
// with 2/5/10% of the nodes planted as valid MSPs, 6 trials averaged).
type Fig5Config struct {
	Width, Depth int
	MSPPercents  []float64 // e.g. 2, 5, 10
	Trials       int
	Steps        []int // discovery percentages to report, e.g. 20,40,…,100
	Seed         int64

	// Parallelism caps the worker pool fanning the (msp%, trial) grid out
	// (0 = one worker per CPU, 1 = sequential); the report is identical at
	// every setting.
	Parallelism int
}

// DefaultFig5 is the paper's setting, scaled by the given factor (1 = full
// width 500 depth 7; smaller factors keep CI runtimes short).
func DefaultFig5(scale float64) Fig5Config {
	w := int(500 * scale)
	if w < 20 {
		w = 20
	}
	return Fig5Config{
		Width:       w,
		Depth:       7,
		MSPPercents: []float64{2, 5, 10},
		Trials:      6,
		Steps:       []int{20, 40, 60, 80, 100},
		Seed:        42,
	}
}

// discoveryCurve returns, for each step percentage, the number of questions
// after which that share of the planted MSPs had been discovered.
func discoveryCurve(res *core.Result, planted []assign.Assignment, steps []int) []int {
	var times []int
	for _, m := range planted {
		if q, ok := res.MSPQuestion[m.Key()]; ok {
			times = append(times, q)
		} else {
			times = append(times, res.Stats.TotalQuestions) // never discovered
		}
	}
	sort.Ints(times)
	out := make([]int, len(steps))
	for i, s := range steps {
		idx := (s*len(times)+99)/100 - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(times) {
			idx = len(times) - 1
		}
		out[i] = times[idx]
	}
	return out
}

// Fig5 regenerates Figure 5: questions to discover X% of the valid MSPs,
// per algorithm, per MSP percentage.
func Fig5(cfg Fig5Config) (*Report, error) {
	r := &Report{
		ID:     "fig5",
		Title:  "Vertical vs Horizontal vs Naive (questions to discover X% of valid MSPs)",
		Header: append([]string{"msp%", "algorithm"}, pctHeaders(cfg.Steps)...),
	}
	r.Note("paper: Fig 5a–5c; width %d, depth %d, %d trials averaged, single simulated user",
		cfg.Width, cfg.Depth, cfg.Trials)

	// Grid: one cell per (msp%, trial) pair; the three algorithms run inside
	// the cell so they compare on the same DAG, planted MSPs, and replayed
	// engine randomness. The per-cell seed is a function of the cell index
	// only, so any worker count produces the same curves.
	algs := []string{"vertical", "horizontal", "naive"}
	gridID := fmt.Sprintf("fig5/%d", cfg.Seed)
	n := len(cfg.MSPPercents) * cfg.Trials
	curves := make([]map[string][]int, n)
	err := RunGrid(cfg.Parallelism, n, func(cell int) error {
		mspPct := cfg.MSPPercents[cell/cfg.Trials]
		seed := CellSeed(gridID, cell)
		s, err := synth.GenerateSpace(synth.DAGConfig{
			Width: cfg.Width, Depth: cfg.Depth, Seed: seed,
		})
		if err != nil {
			return err
		}
		count := int(float64(s.NodeCount()) * mspPct / 100)
		if count < 1 {
			count = 1
		}
		planted, err := s.PlantMSPs(synth.MSPConfig{
			Count: count, ValidOnly: true, Seed: seed + 7,
		})
		if err != nil {
			return err
		}
		out := make(map[string][]int, len(algs))
		for _, alg := range algs {
			oracle := synth.NewOracle("u", s, planted)
			mk := core.Config{
				Space:   s.Sp,
				Theta:   0.5,
				Members: []crowd.Member{oracle},
				Rng:     rand.New(rand.NewSource(seed + 13)),
				Metrics: sharedMetrics(),
			}
			var res *core.Result
			switch alg {
			case "vertical":
				res = core.Run(mk)
			case "horizontal":
				res = core.RunHorizontal(mk)
			default:
				res = core.RunNaive(mk, nil)
			}
			out[alg] = discoveryCurve(res, planted, cfg.Steps)
		}
		curves[cell] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	for pi, mspPct := range cfg.MSPPercents {
		sums := map[string][]float64{}
		for _, a := range algs {
			sums[a] = make([]float64, len(cfg.Steps))
		}
		for trial := 0; trial < cfg.Trials; trial++ {
			for _, alg := range algs {
				for i, q := range curves[pi*cfg.Trials+trial][alg] {
					sums[alg][i] += float64(q)
				}
			}
		}
		for _, alg := range algs {
			cells := []interface{}{fmt.Sprintf("%g%%", mspPct), alg}
			for _, s := range sums[alg] {
				cells = append(cells, fmt.Sprintf("%.0f", s/float64(cfg.Trials)))
			}
			r.Add(cells...)
		}
	}
	return r, nil
}

func pctHeaders(steps []int) []string {
	out := make([]string, len(steps))
	for i, s := range steps {
		out[i] = fmt.Sprintf("q@%d%%", s)
	}
	return out
}

// Fig4fConfig parameterizes the answer-type experiment (Figure 4f):
// specialization-answer ratios and user-guided-pruning ratios over a
// two-variable DAG "similar to the one generated in our crowd experiments
// with the travel query" (§6.4).
type Fig4fConfig struct {
	Width, Depth   int
	XWidth, XDepth int
	MSPPercent     float64
	Trials         int
	Steps          []int
	Seed           int64

	// Parallelism caps the worker pool fanning the (variant, trial) grid
	// out (0 = one worker per CPU, 1 = sequential).
	Parallelism int
}

// DefaultFig4f mirrors the paper's setting at the given scale.
func DefaultFig4f(scale float64) Fig4fConfig {
	w := int(120 * scale)
	if w < 15 {
		w = 15
	}
	return Fig4fConfig{
		Width: w, Depth: 7, XWidth: 9, XDepth: 3, MSPPercent: 0.5, Trials: 6,
		Steps: []int{20, 40, 60, 80, 100}, Seed: 77,
	}
}

// Fig4f regenerates Figure 4f: the effect of specialization-question and
// pruning-click ratios on the questions-to-discovery curve.
func Fig4f(cfg Fig4fConfig) (*Report, error) {
	r := &Report{
		ID:     "fig4f",
		Title:  "Effect of answer types (questions to discover X% of valid MSPs)",
		Header: append([]string{"variant"}, pctHeaders(cfg.Steps)...),
	}
	r.Note("paper: Fig 4f; two-variable travel-like DAG %d×%d, %.2g%% MSPs, %d trials",
		cfg.Width, cfg.XWidth, cfg.MSPPercent, cfg.Trials)

	variants := []struct {
		name       string
		specialize float64
		prune      float64
	}{
		{"100% closed", 0, 0},
		{"10% special.", 0.10, 0},
		{"50% special.", 0.50, 0},
		{"100% special.", 1.0, 0},
		{"25% pruning", 0, 0.25},
		{"50% pruning", 0, 0.50},
	}
	// Grid: one cell per (variant, trial) pair. The seed is a function of
	// the trial alone — never the variant or the worker schedule — so every
	// variant replays the same DAG, planted MSPs, and randomness, exactly as
	// the sequential loop did.
	gridID := fmt.Sprintf("fig4f/%d", cfg.Seed)
	n := len(variants) * cfg.Trials
	curves := make([][]int, n)
	err := RunGrid(cfg.Parallelism, n, func(cell int) error {
		v := variants[cell/cfg.Trials]
		trial := cell % cfg.Trials
		seed := CellSeed(gridID, trial)
		s, err := synth.GenerateSpace(synth.DAGConfig{
			Width: cfg.Width, Depth: cfg.Depth,
			XWidth: cfg.XWidth, XDepth: cfg.XDepth, Seed: seed,
		})
		if err != nil {
			return err
		}
		count := int(float64(s.NodeCount()) * cfg.MSPPercent / 100)
		if count < 1 {
			count = 1
		}
		planted, err := s.PlantMSPs(synth.MSPConfig{Count: count, ValidOnly: true, Seed: seed + 7})
		if err != nil {
			return err
		}
		oracle := synth.NewOracle("u", s, planted)
		oracle.SpecializeProb = 1 // the engine's ratio decides the mix
		oracle.PruneProb = v.prune
		oracle.Rng = rand.New(rand.NewSource(seed + 5))
		res := core.Run(core.Config{
			Space:               s.Sp,
			Theta:               0.5,
			Members:             []crowd.Member{oracle},
			SpecializationRatio: v.specialize,
			EnablePruning:       v.prune > 0,
			Rng:                 rand.New(rand.NewSource(seed + 13)),
			Metrics:             sharedMetrics(),
		})
		curves[cell] = discoveryCurve(res, planted, cfg.Steps)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for vi, v := range variants {
		sums := make([]float64, len(cfg.Steps))
		for trial := 0; trial < cfg.Trials; trial++ {
			for i, q := range curves[vi*cfg.Trials+trial] {
				sums[i] += float64(q)
			}
		}
		cells := []interface{}{v.name}
		for _, s := range sums {
			cells = append(cells, fmt.Sprintf("%.0f", s/float64(cfg.Trials)))
		}
		r.Add(cells...)
	}
	return r, nil
}
