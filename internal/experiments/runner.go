// Parallel experiment harness. Every experiment of this package is a grid
// of independent engine runs — (trial, threshold, domain, share) cells whose
// only shared input is read-only (a frozen vocabulary, a primed CrowdCache).
// RunGrid fans those cells out across a worker pool while keeping the output
// bit-for-bit identical to a sequential run: each cell derives its random
// seed from the cell coordinates alone (never from scheduling), writes its
// result into a per-index slot, and all cross-cell aggregation happens after
// the pool drains, in index order. See DESIGN.md, "Concurrency model".
package experiments

import (
	"encoding/binary"
	"hash/fnv"
	"runtime"
	"sync"
)

// Parallelism returns the effective worker count for a configured value:
// zero or negative means one worker per available CPU.
func Parallelism(configured int) int {
	if configured <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return configured
}

// CellSeed derives the deterministic RNG seed of grid cell idx of the named
// experiment: FNV-1a over the experiment id and the cell index. The seed is
// a pure function of (id, idx) — never of worker scheduling — which is what
// makes parallel grid output identical to sequential output.
func CellSeed(id string, idx int) int64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(idx))
	h.Write(b[:])
	return int64(h.Sum64() >> 1) // keep seeds non-negative
}

// RunGrid runs n independent experiment cells on at most parallelism
// goroutines (0 = one per CPU). Cells must be independent: they may read
// shared frozen inputs but must write only into their own per-index result
// slot. When any cell fails, RunGrid reports the error of the lowest-index
// failing cell — the same error a sequential loop would surface first — so
// the observable outcome does not depend on the worker count.
func RunGrid(parallelism, n int, cell func(i int) error) error {
	workers := Parallelism(parallelism)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := cell(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next int64
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	errs := make([]error, n)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := int(next)
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				errs[i] = cell(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
