package experiments

import (
	"strings"
	"testing"

	"oassis/internal/synth"
)

// tinyDomain returns a small domain config for fast tests (structure like
// the paper's, scaled down).
func tinyDomain() synth.DomainConfig {
	return synth.DomainConfig{
		Name: "tiny", YTerms: 40, XTerms: 13, YDepth: 4, XDepth: 2,
		Members: 8, Transactions: 12, Patterns: 6, Seed: 9,
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{ID: "x", Title: "T", Header: []string{"a", "b"}}
	r.Add(1, "two,with comma")
	r.Add(0.5, "quote\"inside")
	r.Note("note %d", 7)
	table := r.Table()
	if !strings.Contains(table, "== x: T ==") || !strings.Contains(table, "note 7") {
		t.Errorf("table = %q", table)
	}
	csv := r.CSV()
	if !strings.Contains(csv, `"two,with comma"`) {
		t.Errorf("csv escaping: %q", csv)
	}
	if !strings.Contains(csv, `"quote""inside"`) {
		t.Errorf("csv quote escaping: %q", csv)
	}
	if pct(1, 0) != "n/a" || pct(1, 4) != "25.0%" {
		t.Error("pct helper wrong")
	}
}

func TestReportFloatPrecision(t *testing.T) {
	r := &Report{}
	r.Add(1416.0, 0.25, 1.0/3.0, 0.000123456)
	got := r.Rows[0]
	// %.3g is kept only when it round-trips; 1416 must not become 1.42e+03.
	want := []string{"1416", "0.25", "0.3333333333333333", "0.000123456"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("cell %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestFig4DomainTiny(t *testing.T) {
	r, err := Fig4Domain("fig4-tiny", tinyDomain(), DomainScale{Sample: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 thresholds", len(r.Rows))
	}
	// Questions at theta 0.5 must not exceed questions at theta 0.2 by much
	// (generally they drop, as in the paper).
	q02 := atoiRow(t, r.Rows[0][3])
	q05 := atoiRow(t, r.Rows[3][3])
	if q05 > q02 {
		t.Errorf("questions rose with threshold: %d -> %d", q02, q05)
	}
	// MSP counts must not grow with the threshold (footnote 8 allows small
	// exceptions, but not in this smooth synthetic crowd).
	m02 := atoiRow(t, r.Rows[0][1])
	m05 := atoiRow(t, r.Rows[3][1])
	if m05 > m02 {
		t.Errorf("MSPs rose with threshold: %d -> %d", m02, m05)
	}
}

func atoiRow(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("not a number: %q", s)
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func TestFig4PaceTiny(t *testing.T) {
	r, err := Fig4Pace("fig4d-tiny", tinyDomain(), DomainScale{Sample: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Curves must be monotone in questions.
	prev := 0
	for _, row := range r.Rows {
		q := atoiRow(t, row[1])
		if q < prev {
			t.Fatalf("classified curve not monotone: %v", r.Rows)
		}
		prev = q
	}
}

func TestFig5Tiny(t *testing.T) {
	cfg := DefaultFig5(0.1)
	cfg.Trials = 2
	cfg.MSPPercents = []float64{2, 10}
	r, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 { // 2 percentages × 3 algorithms
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The vertical algorithm should reach 20% of the MSPs with fewer
	// questions than the horizontal one (the paper's headline claim).
	byAlg := map[string][]string{}
	for _, row := range r.Rows {
		if row[0] == "2%" {
			byAlg[row[1]] = row
		}
	}
	v20 := atoiRow(t, byAlg["vertical"][2])
	h20 := atoiRow(t, byAlg["horizontal"][2])
	if v20 > h20 {
		t.Errorf("vertical q@20%% = %d > horizontal %d", v20, h20)
	}
}

func TestFig4fTiny(t *testing.T) {
	cfg := DefaultFig4f(0.1)
	cfg.Trials = 2
	r, err := Fig4f(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// 100% specialization should not need more questions than 100% closed
	// to reach the full MSP set (Fig 4f shows it helps, if not by much).
	closed := atoiRow(t, r.Rows[0][len(r.Rows[0])-1])
	special := atoiRow(t, r.Rows[3][len(r.Rows[3])-1])
	if special > closed+closed/2 {
		t.Errorf("specialization hurt badly: %d vs %d", special, closed)
	}
}

func TestSweepsTiny(t *testing.T) {
	if r, err := SweepDAGShape(0.06, 1, 1); err != nil || len(r.Rows) != 6 {
		t.Fatalf("dag shape: %v rows=%v", err, r)
	}
	if r, err := SweepMSPDistribution(0.06, 1, 1); err != nil || len(r.Rows) != 6 {
		t.Fatalf("msp dist: %v", err)
	}
	r, err := SweepMultiplicities(0.06, 1, 1)
	if err != nil || len(r.Rows) != 4 {
		t.Fatalf("multiplicities: %v", err)
	}
	// Lazy generation must touch well under 1% of the eager nodes.
	for _, row := range r.Rows {
		ratio := row[len(row)-1]
		if !strings.HasSuffix(ratio, "%") {
			t.Fatalf("ratio cell = %q", ratio)
		}
		if strings.HasPrefix(ratio, "1") && !strings.HasPrefix(ratio, "0.") {
			// crude check: must start with 0.
			t.Errorf("generated/eager ratio too high: %s", ratio)
		}
	}
}

func TestComplexityBoundsTiny(t *testing.T) {
	r, err := ComplexityBounds(0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("bound violated: %v", row)
		}
	}
}

func TestItemsetCapture(t *testing.T) {
	r, err := ItemsetCapture(10, 40, 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[1][2] != "true" {
		t.Fatalf("OASSIS and Apriori disagree: %v\n%s", r.Rows, r.Table())
	}
	if r.Rows[2][2] != "true" {
		t.Fatalf("assoc substrate and Apriori disagree: %v\n%s", r.Rows, r.Table())
	}
}

func TestAssocMinerReport(t *testing.T) {
	r, err := AssocMiner(20, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
}

func TestCrowdSummaryTiny(t *testing.T) {
	r, err := CrowdSummary(DomainScale{Members: 10, Patterns: 6, Sample: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Every domain must produce questions and MSPs.
	for _, row := range r.Rows {
		if atoiRow(t, row[2]) == 0 {
			t.Errorf("domain %s asked no questions", row[0])
		}
	}
}

func TestServingTiny(t *testing.T) {
	const sessions, tenants = 24, 2
	r, err := Serving(sessions, tenants)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != tenants+1 {
		t.Fatalf("rows = %d, want %d tenants + total\n%s", len(r.Rows), tenants, r.Table())
	}
	for _, row := range r.Rows[:tenants] {
		if row[2] != row[3] {
			t.Errorf("tenant %s: %s sessions but %s done", row[0], row[2], row[3])
		}
		if atoiRow(t, row[4]) == 0 {
			t.Errorf("tenant %s answered nothing", row[0])
		}
	}
	total := r.Rows[tenants]
	if got := atoiRow(t, total[3]); got != sessions {
		t.Fatalf("total done = %d, want %d", got, sessions)
	}
}
