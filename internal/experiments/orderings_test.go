package experiments

import (
	"testing"

	"oassis/internal/plan"
)

// TestOrderingsIdenticalMSPs pins the ordering experiment's two headline
// claims on a small grid: every registered ordering mines the identical
// MSP set (the Orderings call itself hard-fails otherwise), and at least
// one structure-aware ordering saves questions over paper-order (same —
// the call errors when the claim does not hold). The test re-runs one
// cell to assert the rows are deterministic across invocations, which is
// what the bench-compare gate relies on.
func TestOrderingsIdenticalMSPs(t *testing.T) {
	grid := []int{6, 10}
	r, err := Orderings(grid)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(grid) * len(plan.OrderingNames())
	if len(r.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(r.Rows), wantRows)
	}
	a, err := runOrderingCell(10, plan.PolicyMaxPrune)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runOrderingCell(10, plan.PolicyMaxPrune)
	if err != nil {
		t.Fatal(err)
	}
	if a.Questions != b.Questions {
		t.Errorf("max-prune question count drifted between runs: %d then %d", a.Questions, b.Questions)
	}
}
