package experiments

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oassis/internal/core"
	"oassis/internal/oassisql"
	"oassis/internal/obs"
	"oassis/internal/ontology"
	"oassis/internal/serve"
)

// servingMembers is the roster size of every bench tenant: 8 members ×
// the tenant count gives the driver goroutines.
const servingMembers = 8

// servingSupports are the four query variants each tenant serves; each
// support threshold compiles to a distinct plan fingerprint, so every
// tenant exercises plan sharing (sessions/4 sessions per compiled plan)
// and all four of its shards.
var servingSupports = []float64{0.3, 0.4, 0.5, 0.6}

func servingQuery(support float64) string {
	return fmt.Sprintf(`
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity
SATISFYING
  $y doAt $x
WITH SUPPORT = %.1f
`, support)
}

// servingAnswer answers a serving-tier question deterministically: the
// support level is a pure hash of the asked facts, so every run (and
// every session of the same plan) mines identical MSPs without any
// per-member state.
func servingAnswer(q serve.Question) core.Answer {
	h := fnv.New32a()
	h.Write([]byte(q.Facts.Key()))
	level := float64(h.Sum32()%5) * 0.25
	if q.Kind != core.KindSpecialization {
		return core.AnswerSupport(level)
	}
	if len(q.Choices) > 0 && level >= 0.5 {
		return core.AnswerChoice(0, level)
	}
	return core.AnswerNoneOfThese()
}

// Serving benchmarks the multi-tenant serving tier: `tenants` tenants on
// one registry, `sessions` concurrent sessions spread round-robin across
// them (four query variants each, so plans are shared), driven to
// completion by 8 member goroutines per tenant. The report is one row per
// tenant — sessions hosted, answers, polls, sheds, and the dispatch
// p50/p99 — plus a totals row; the p99 column is read back from the
// scrapeable oassis_serve_dispatch_p99_microseconds gauge, proving the
// quantile is available on /metrics without server-side PromQL.
func Serving(sessions, tenants int) (*Report, error) {
	if tenants <= 0 {
		tenants = 4
	}
	if sessions < tenants {
		sessions = tenants
	}
	met := obs.NewRegistry()
	reg := serve.NewRegistry(serve.Config{Metrics: met})
	defer reg.Close()

	sample := ontology.NewSample()
	queries := make([]*oassisql.Query, len(servingSupports))
	for i, s := range servingSupports {
		q, err := oassisql.Parse(servingQuery(s))
		if err != nil {
			return nil, err
		}
		queries[i] = q
	}

	hosts := make([]*serve.Tenant, tenants)
	for i := range hosts {
		t, err := reg.AddTenant(serve.TenantConfig{
			Name: fmt.Sprintf("t%d", i), Voc: sample.Voc, Onto: sample.Onto,
			Members: servingMembers, Shards: 4, AnswersPerQuestion: 1,
		})
		if err != nil {
			return nil, err
		}
		for m := 0; m < servingMembers; m++ {
			if _, err := t.Join(fmt.Sprintf("driver-%02d", m)); err != nil {
				return nil, err
			}
		}
		hosts[i] = t
	}

	openStart := time.Now()
	for j := 0; j < sessions; j++ {
		if _, err := hosts[j%tenants].Open(queries[j%len(queries)]); err != nil {
			return nil, err
		}
	}
	openWall := time.Since(openStart)

	// Drive every tenant's roster until its sessions have all finished.
	answered := make([]atomic.Int64, tenants)
	errs := make([]error, tenants*servingMembers)
	driveStart := time.Now()
	var wg sync.WaitGroup
	for ti, t := range hosts {
		for m := 0; m < servingMembers; m++ {
			wg.Add(1)
			go func(slot int, ti int, t *serve.Tenant, member string) {
				defer wg.Done()
				ctx := context.Background()
				for {
					q, out, err := t.Poll(ctx, member, 100*time.Millisecond)
					if err != nil {
						if errors.Is(err, serve.ErrOverloaded) {
							time.Sleep(time.Millisecond)
							continue
						}
						errs[slot] = err
						return
					}
					switch out {
					case serve.OutcomeQuestion:
						err := t.Answer(q.Session, member, q.ID, servingAnswer(q))
						if errors.Is(err, serve.ErrNoPending) {
							// The session finished off another member's answer
							// while this question was in flight; re-poll.
							continue
						}
						if err != nil {
							errs[slot] = err
							return
						}
						answered[ti].Add(1)
					case serve.OutcomeDone, serve.OutcomeShutdown:
						return
					}
				}
			}(ti*servingMembers+m, ti, t, fmt.Sprintf("p%02d", m))
		}
	}
	wg.Wait()
	driveWall := time.Since(driveStart)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	snap := met.Snapshot()
	// sumLabeled totals a counter family's snapshot entries for one tenant.
	sumLabeled := func(family, tenant string) float64 {
		total := 0.0
		needle := fmt.Sprintf(`tenant="%s"`, tenant)
		for key, v := range snap {
			if strings.HasPrefix(key, family+"{") && strings.Contains(key, needle) {
				total += v
			}
		}
		return total
	}

	r := &Report{
		ID: "serving",
		Title: fmt.Sprintf("multi-tenant serving tier (%d sessions, %d tenants, %d drivers)",
			sessions, tenants, tenants*servingMembers),
		Header: []string{"tenant", "shards", "sessions", "done", "answers",
			"polls", "sheds", "p50 µs", "p99 µs"},
	}
	var totalDone, totalAnswers int
	for i, t := range hosts {
		name := t.Name()
		done := 0
		for _, s := range t.Sessions() {
			if s.Done() {
				done++
			}
		}
		totalDone += done
		totalAnswers += int(answered[i].Load())
		dispatch := met.Histogram("oassis_serve_dispatch_seconds", "", obs.LatencyBuckets, obs.L("tenant", name))
		p99Gauge, ok := snap[fmt.Sprintf(`oassis_serve_dispatch_p99_microseconds{tenant="%s"}`, name)]
		if !ok {
			return nil, fmt.Errorf("serving: tenant %s p99 gauge missing from the metrics snapshot", name)
		}
		r.Add(name, t.Shards(), len(t.Sessions()), done, answered[i].Load(),
			int(sumLabeled("oassis_serve_polls_total", name)),
			int(sumLabeled("oassis_serve_sheds_total", name)),
			dispatch.Quantile(0.5)*1e6, p99Gauge)
	}
	if totalDone != sessions {
		return nil, fmt.Errorf("serving: %d of %d sessions finished", totalDone, sessions)
	}
	r.Add("total", "", sessions, totalDone, totalAnswers, "", "", "", "")
	r.Note("opened %d sessions in %s (%.0f/s), drove them dry in %s (%.0f answers/s)",
		sessions, openWall.Round(time.Millisecond), float64(sessions)/openWall.Seconds(),
		driveWall.Round(time.Millisecond), float64(totalAnswers)/driveWall.Seconds())
	r.Note("4 query variants per tenant share compiled plans across sessions; p99 column is the")
	r.Note("scrapeable oassis_serve_dispatch_p99_microseconds gauge, p50 from the histogram buckets")
	return r, nil
}
