package experiments

import "testing"

// TestStoppingSavesQuestions pins the stopping experiment's headline: on
// the open-world grid the species estimator asks fewer questions than
// run-to-exhaustion on every domain, and on at least one domain it does so
// at full quality (exact recall and precision 1.0).
func TestStoppingSavesQuestions(t *testing.T) {
	grid := []int{8, 10, 12}
	r, err := Stopping(grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(grid) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(grid))
	}
	equalQuality := false
	for _, p := range grid {
		c, err := runStoppingCell(p, 0.75, 30)
		if err != nil {
			t.Fatal(err)
		}
		if c.QSpecies >= c.QFull {
			t.Errorf("patterns=%d: species asked %d questions, exhaustion %d — no savings",
				p, c.QSpecies, c.QFull)
		}
		if !c.Sound {
			t.Errorf("patterns=%d: early-stop MSPs outside the exhaustive answer set (precision %.2f)",
				p, c.Precision)
		}
		if c.Recall == 1 && c.Precision == 1 {
			equalQuality = true
		}
	}
	if !equalQuality {
		t.Error("no grid cell reached equal quality (recall and precision 1.0)")
	}
}
