package experiments

import (
	"errors"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestRunGridCoversAllCells checks every cell runs exactly once at several
// worker counts, including counts above the cell count.
func TestRunGridCoversAllCells(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 100} {
		const n = 37
		var ran [n]int32
		err := RunGrid(workers, n, func(i int) error {
			atomic.AddInt32(&ran[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range ran {
			if c != 1 {
				t.Fatalf("workers=%d: cell %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestRunGridFirstError checks the parallel pool surfaces the error of the
// lowest-index failing cell — the same one a sequential loop hits first.
func TestRunGridFirstError(t *testing.T) {
	errA, errB := errors.New("cell 5"), errors.New("cell 20")
	for _, workers := range []int{1, 8} {
		err := RunGrid(workers, 30, func(i int) error {
			switch i {
			case 5:
				return errA
			case 20:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, errA)
		}
	}
}

// TestCellSeedStable pins the seed derivation: a pure function of
// (experiment id, cell index), distinct across both.
func TestCellSeedStable(t *testing.T) {
	if CellSeed("fig5/42", 3) != CellSeed("fig5/42", 3) {
		t.Fatal("CellSeed not deterministic")
	}
	if CellSeed("fig5/42", 3) == CellSeed("fig5/42", 4) {
		t.Fatal("CellSeed ignores the cell index")
	}
	if CellSeed("fig5/42", 3) == CellSeed("fig4f/42", 3) {
		t.Fatal("CellSeed ignores the experiment id")
	}
	if CellSeed("x", 0) < 0 {
		t.Fatal("CellSeed produced a negative seed")
	}
}

// TestFig5ParallelDeterminism is the per-cell seeding contract regression:
// the Fig5 report — rows and notes — must be deeply equal at Parallelism 1
// and 8, so a parallel run is bit-for-bit the sequential run.
func TestFig5ParallelDeterminism(t *testing.T) {
	cfg := DefaultFig5(0.08)
	cfg.Trials = 3
	cfg.MSPPercents = []float64{2, 10}

	cfg.Parallelism = 1
	seq, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallelism = 8
	par, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel Fig5 diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestSweepDAGShapeParallelDeterminism guards the same contract on a sweep
// with a three-dimensional (width, depth, trial) grid.
func TestSweepDAGShapeParallelDeterminism(t *testing.T) {
	seq, err := SweepDAGShape(0.06, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepDAGShape(0.06, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel SweepDAGShape diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestFig4DomainParallelDeterminism covers the threshold-replay experiment,
// whose later cells share the theta-0.2 run's cache read-only.
func TestFig4DomainParallelDeterminism(t *testing.T) {
	sc := DomainScale{Sample: 3, Parallelism: 1}
	seq, err := Fig4Domain("fig4-det", tinyDomain(), sc)
	if err != nil {
		t.Fatal(err)
	}
	sc.Parallelism = 8
	par, err := Fig4Domain("fig4-det", tinyDomain(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("parallel Fig4Domain diverged from sequential:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestRunGridCellRNGIndependence documents the intended cell-seeding idiom:
// RNGs built from CellSeed produce streams that do not depend on the
// interleaving of other cells.
func TestRunGridCellRNGIndependence(t *testing.T) {
	draw := func(workers int) []float64 {
		out := make([]float64, 16)
		if err := RunGrid(workers, len(out), func(i int) error {
			rng := rand.New(rand.NewSource(CellSeed("rng-idiom", i)))
			out[i] = rng.Float64()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	if !reflect.DeepEqual(draw(1), draw(8)) {
		t.Error("per-cell RNG streams depend on the worker count")
	}
}
