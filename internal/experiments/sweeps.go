package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/synth"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// sweepRun is the one-engine-run shape shared by the §6.4 sweeps: generate a
// space, plant MSPs, mine with a single oracle.
func sweepRun(dag synth.DAGConfig, mspCfg synth.MSPConfig) (*synth.Space, *core.Result, error) {
	s, err := synth.GenerateSpace(dag)
	if err != nil {
		return nil, nil, err
	}
	nodes := s.NodeCount()
	if mspCfg.Count <= 0 {
		mspCfg.Count = nodes / 50 // 2% MSPs
		if mspCfg.Count < 1 {
			mspCfg.Count = 1
		}
	}
	if mspCfg.MultCount > mspCfg.Count {
		mspCfg.MultCount = mspCfg.Count
	}
	planted, err := s.PlantMSPs(mspCfg)
	if err != nil {
		return nil, nil, err
	}
	res := core.Run(core.Config{
		Space:   s.Sp,
		Theta:   0.5,
		Members: []crowd.Member{synth.NewOracle("u", s, planted)},
		Metrics: sharedMetrics(),
	})
	return s, res, nil
}

// SweepDAGShape regenerates the §6.4 DAG-shape study: the vertical
// algorithm over widths 500–2000 and depths 4–7 (scaled), reporting that
// the trends do not change with the shape. The (width, depth, trial) grid
// fans out over parallelism workers (0 = one per CPU) with identical output
// at every setting.
func SweepDAGShape(scale float64, trials, parallelism int) (*Report, error) {
	r := &Report{
		ID:     "sweep-dag-shape",
		Title:  "Effect of DAG width and depth (vertical algorithm)",
		Header: []string{"width", "depth", "nodes", "questions", "unique", "MSPs found", "q/MSP"},
	}
	r.Note("paper §6.4: varying shape showed no significant effect on the trends")
	widths := []int{scaleInt(500, scale), scaleInt(1000, scale), scaleInt(2000, scale)}
	depths := []int{4, 7}

	type cellOut struct{ questions, unique, msps, nodes float64 }
	n := len(widths) * len(depths) * trials
	cells := make([]cellOut, n)
	err := RunGrid(parallelism, n, func(i int) error {
		w := widths[i/(len(depths)*trials)]
		depth := depths[i/trials%len(depths)]
		trial := i % trials
		seed := int64(w*100+depth*10) + int64(trial)
		s, res, err := sweepRun(
			synth.DAGConfig{Width: w, Depth: depth, Seed: seed},
			synth.MSPConfig{ValidOnly: true, Seed: seed + 3})
		if err != nil {
			return err
		}
		cells[i] = cellOut{
			questions: float64(res.Stats.TotalQuestions),
			unique:    float64(res.Stats.UniqueQuestions),
			msps:      float64(len(res.MSPs)),
			nodes:     float64(s.NodeCount()),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for wi, w := range widths {
		for di, depth := range depths {
			var qSum, uSum, mSum, nodeSum float64
			for trial := 0; trial < trials; trial++ {
				c := cells[(wi*len(depths)+di)*trials+trial]
				qSum += c.questions
				uSum += c.unique
				mSum += c.msps
				nodeSum += c.nodes
			}
			n := float64(trials)
			r.Add(w, depth, fmt.Sprintf("%.0f", nodeSum/n), fmt.Sprintf("%.0f", qSum/n),
				fmt.Sprintf("%.0f", uSum/n), fmt.Sprintf("%.1f", mSum/n),
				fmt.Sprintf("%.1f", qSum/math.Max(mSum, 1)))
		}
	}
	return r, nil
}

func scaleInt(v int, scale float64) int {
	out := int(float64(v) * scale)
	if out < 10 {
		out = 10
	}
	return out
}

// SweepMSPDistribution regenerates the §6.4 MSP-distribution study:
// uniform vs nearby vs far placement, in the whole DAG or among valid
// assignments only. Cells fan out over parallelism workers; the seed of a
// cell depends on (distribution, trial) but not on validOnly, so the
// valid-only and whole-DAG rows compare the same placements, as before.
func SweepMSPDistribution(scale float64, trials, parallelism int) (*Report, error) {
	r := &Report{
		ID:     "sweep-msp-dist",
		Title:  "Effect of MSP distribution in the DAG (vertical algorithm)",
		Header: []string{"distribution", "validOnly", "questions", "MSPs found"},
	}
	r.Note("paper §6.4: the distribution showed no significant effect")
	dists := []synth.MSPDist{synth.Uniform, synth.Nearby, synth.Far}
	valids := []bool{true, false}

	type cellOut struct{ questions, msps float64 }
	n := len(dists) * len(valids) * trials
	cells := make([]cellOut, n)
	err := RunGrid(parallelism, n, func(i int) error {
		dist := dists[i/(len(valids)*trials)]
		validOnly := valids[i/trials%len(valids)]
		trial := i % trials
		seed := int64(trial)*97 + int64(dist)*7
		_, res, err := sweepRun(
			synth.DAGConfig{
				Width: scaleInt(500, scale), Depth: 7,
				ValidLeavesOnly: validOnly, Seed: seed,
			},
			synth.MSPConfig{Dist: dist, ValidOnly: validOnly, Seed: seed + 3})
		if err != nil {
			return err
		}
		cells[i] = cellOut{
			questions: float64(res.Stats.TotalQuestions),
			msps:      float64(len(res.MSPs)),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for di, dist := range dists {
		for vi, validOnly := range valids {
			var qSum, mSum float64
			for trial := 0; trial < trials; trial++ {
				c := cells[(di*len(valids)+vi)*trials+trial]
				qSum += c.questions
				mSum += c.msps
			}
			n := float64(trials)
			r.Add(dist.String(), validOnly, fmt.Sprintf("%.0f", qSum/n), fmt.Sprintf("%.1f", mSum/n))
		}
	}
	return r, nil
}

// SweepMultiplicities regenerates the §6.4 multiplicity study: the share of
// MSPs with multiplicities (sizes up to 4) does not change the question
// count materially, and the lazy node generation touches well under 1% of
// the nodes an eager algorithm would materialize. The (share, trial) grid
// fans out over parallelism workers.
func SweepMultiplicities(scale float64, trials, parallelism int) (*Report, error) {
	r := &Report{
		ID:     "sweep-multiplicities",
		Title:  "Effect of MSPs with multiplicities; lazy vs eager node generation",
		Header: []string{"mult-MSP share", "questions", "MSPs found", "generated nodes", "eager nodes", "generated/eager"},
	}
	r.Note("paper §6.4: OASSIS generated <1%% of the nodes an eager algorithm would")
	shares := []float64{0, 0.01, 0.02, 0.05}

	type cellOut struct{ questions, msps, generated, eager float64 }
	n := len(shares) * trials
	cells := make([]cellOut, n)
	err := RunGrid(parallelism, n, func(i int) error {
		share := shares[i/trials]
		trial := i % trials
		seed := int64(share*1000) + int64(trial)*31
		s, err := synth.GenerateSpace(synth.DAGConfig{
			Width: scaleInt(500, scale), Depth: 7, Multiplicities: true, Seed: seed,
		})
		if err != nil {
			return err
		}
		nodes := s.NodeCount()
		count := nodes / 50
		if count < 1 {
			count = 1
		}
		multCount := int(float64(nodes) * share)
		if multCount > count {
			multCount = count
		}
		planted, err := s.PlantMSPs(synth.MSPConfig{
			Count: count, MultCount: multCount, MaxMultSize: 4, ValidOnly: true, Seed: seed + 3,
		})
		if err != nil {
			return err
		}
		res := core.Run(core.Config{
			Space:   s.Sp,
			Theta:   0.5,
			Members: []crowd.Member{synth.NewOracle("u", s, planted)},
			Metrics: sharedMetrics(),
		})
		cells[i] = cellOut{
			questions: float64(res.Stats.TotalQuestions),
			msps:      float64(len(res.MSPs)),
			generated: float64(res.Stats.GeneratedNodes),
			eager:     eagerNodeCount(nodes, 4),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for si, share := range shares {
		var qSum, mSum, gSum, eager float64
		for trial := 0; trial < trials; trial++ {
			c := cells[si*trials+trial]
			qSum += c.questions
			mSum += c.msps
			gSum += c.generated
			eager = c.eager // last trial's DAG, as the sequential loop kept
		}
		n := float64(trials)
		r.Add(fmt.Sprintf("%.0f%%", share*100),
			fmt.Sprintf("%.0f", qSum/n), fmt.Sprintf("%.1f", mSum/n),
			fmt.Sprintf("%.0f", gSum/n), fmt.Sprintf("%.3g", eager),
			fmt.Sprintf("%.4f%%", 100*(gSum/n)/eager))
	}
	return r, nil
}

// eagerNodeCount estimates the nodes an eager algorithm materializes: all
// value sets of size ≤ maxSize over n values (Σ C(n, k)).
func eagerNodeCount(n, maxSize int) float64 {
	total := 0.0
	term := 1.0
	for k := 1; k <= maxSize; k++ {
		term *= float64(n-k+1) / float64(k)
		total += term
	}
	return total
}

// ComplexityBounds empirically checks Propositions 4.7 and 4.8: the number
// of unique crowd questions against the upper bound
// (|E|+|R|)·|msp| + |msp⁻| and the lower bound |msp_valid| + |msp⁻_valid|.
func ComplexityBounds(scale float64, parallelism int) (*Report, error) {
	r := &Report{
		ID:     "complexity-bounds",
		Title:  "Crowd complexity vs Prop 4.7/4.8 bounds",
		Header: []string{"MSPs planted", "unique questions", "upper bound", "lower bound", "within"},
	}
	r.Note("upper: (|E|+|R|)·|msp| + |msp⁻| (Prop 4.7); lower: |msp|+|msp⁻| (Prop 4.8)")
	counts := []int{5, 10, 20}
	rows := make([][]interface{}, len(counts))
	err := RunGrid(parallelism, len(counts), func(i int) error {
		count := counts[i]
		s, err := synth.GenerateSpace(synth.DAGConfig{
			Width: scaleInt(300, scale), Depth: 6, Seed: int64(count),
		})
		if err != nil {
			return err
		}
		planted, err := s.PlantMSPs(synth.MSPConfig{Count: count, ValidOnly: true, Seed: int64(count) + 1})
		if err != nil {
			return err
		}
		res := core.Run(core.Config{
			Space:   s.Sp,
			Theta:   0.5,
			Members: []crowd.Member{synth.NewOracle("u", s, planted)},
			Metrics: sharedMetrics(),
		})
		terms := s.Voc.Len()
		upper := terms*len(res.MSPs) + res.InsigMinimal
		lower := len(res.MSPs) + res.InsigMinimal
		ok := res.Stats.UniqueQuestions <= upper && res.Stats.UniqueQuestions >= lower
		rows[i] = []interface{}{len(planted), res.Stats.UniqueQuestions, upper, lower, ok}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		r.Add(row...)
	}
	return r, nil
}
