package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/synth"
)

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// SweepDAGShape regenerates the §6.4 DAG-shape study: the vertical
// algorithm over widths 500–2000 and depths 4–7 (scaled), reporting that
// the trends do not change with the shape.
func SweepDAGShape(scale float64, trials int) (*Report, error) {
	r := &Report{
		ID:     "sweep-dag-shape",
		Title:  "Effect of DAG width and depth (vertical algorithm)",
		Header: []string{"width", "depth", "nodes", "questions", "unique", "MSPs found", "q/MSP"},
	}
	r.Note("paper §6.4: varying shape showed no significant effect on the trends")
	widths := []int{scaleInt(500, scale), scaleInt(1000, scale), scaleInt(2000, scale)}
	for _, w := range widths {
		for _, depth := range []int{4, 7} {
			var qSum, uSum, mSum, nodeSum float64
			for trial := 0; trial < trials; trial++ {
				seed := int64(w*100+depth*10) + int64(trial)
				s, err := synth.GenerateSpace(synth.DAGConfig{Width: w, Depth: depth, Seed: seed})
				if err != nil {
					return nil, err
				}
				count := s.NodeCount() / 50 // 2% MSPs
				if count < 1 {
					count = 1
				}
				planted, err := s.PlantMSPs(synth.MSPConfig{Count: count, ValidOnly: true, Seed: seed + 3})
				if err != nil {
					return nil, err
				}
				res := core.Run(core.Config{
					Space:   s.Sp,
					Theta:   0.5,
					Members: []crowd.Member{synth.NewOracle("u", s, planted)},
				})
				qSum += float64(res.Stats.TotalQuestions)
				uSum += float64(res.Stats.UniqueQuestions)
				mSum += float64(len(res.MSPs))
				nodeSum += float64(s.NodeCount())
			}
			n := float64(trials)
			r.Add(w, depth, fmt.Sprintf("%.0f", nodeSum/n), fmt.Sprintf("%.0f", qSum/n),
				fmt.Sprintf("%.0f", uSum/n), fmt.Sprintf("%.1f", mSum/n),
				fmt.Sprintf("%.1f", qSum/math.Max(mSum, 1)))
		}
	}
	return r, nil
}

func scaleInt(v int, scale float64) int {
	out := int(float64(v) * scale)
	if out < 10 {
		out = 10
	}
	return out
}

// SweepMSPDistribution regenerates the §6.4 MSP-distribution study:
// uniform vs nearby vs far placement, in the whole DAG or among valid
// assignments only.
func SweepMSPDistribution(scale float64, trials int) (*Report, error) {
	r := &Report{
		ID:     "sweep-msp-dist",
		Title:  "Effect of MSP distribution in the DAG (vertical algorithm)",
		Header: []string{"distribution", "validOnly", "questions", "MSPs found"},
	}
	r.Note("paper §6.4: the distribution showed no significant effect")
	for _, dist := range []synth.MSPDist{synth.Uniform, synth.Nearby, synth.Far} {
		for _, validOnly := range []bool{true, false} {
			var qSum, mSum float64
			for trial := 0; trial < trials; trial++ {
				seed := int64(trial)*97 + int64(dist)*7
				s, err := synth.GenerateSpace(synth.DAGConfig{
					Width: scaleInt(500, scale), Depth: 7,
					ValidLeavesOnly: validOnly, Seed: seed,
				})
				if err != nil {
					return nil, err
				}
				count := s.NodeCount() / 50
				if count < 1 {
					count = 1
				}
				planted, err := s.PlantMSPs(synth.MSPConfig{
					Count: count, Dist: dist, ValidOnly: validOnly, Seed: seed + 3,
				})
				if err != nil {
					return nil, err
				}
				res := core.Run(core.Config{
					Space:   s.Sp,
					Theta:   0.5,
					Members: []crowd.Member{synth.NewOracle("u", s, planted)},
				})
				qSum += float64(res.Stats.TotalQuestions)
				mSum += float64(len(res.MSPs))
			}
			n := float64(trials)
			r.Add(dist.String(), validOnly, fmt.Sprintf("%.0f", qSum/n), fmt.Sprintf("%.1f", mSum/n))
		}
	}
	return r, nil
}

// SweepMultiplicities regenerates the §6.4 multiplicity study: the share of
// MSPs with multiplicities (sizes up to 4) does not change the question
// count materially, and the lazy node generation touches well under 1% of
// the nodes an eager algorithm would materialize.
func SweepMultiplicities(scale float64, trials int) (*Report, error) {
	r := &Report{
		ID:     "sweep-multiplicities",
		Title:  "Effect of MSPs with multiplicities; lazy vs eager node generation",
		Header: []string{"mult-MSP share", "questions", "MSPs found", "generated nodes", "eager nodes", "generated/eager"},
	}
	r.Note("paper §6.4: OASSIS generated <1%% of the nodes an eager algorithm would")
	for _, share := range []float64{0, 0.01, 0.02, 0.05} {
		var qSum, mSum, gSum float64
		var eager float64
		for trial := 0; trial < trials; trial++ {
			seed := int64(share*1000) + int64(trial)*31
			s, err := synth.GenerateSpace(synth.DAGConfig{
				Width: scaleInt(500, scale), Depth: 7, Multiplicities: true, Seed: seed,
			})
			if err != nil {
				return nil, err
			}
			nodes := s.NodeCount()
			count := nodes / 50
			if count < 1 {
				count = 1
			}
			multCount := int(float64(nodes) * share)
			if multCount > count {
				multCount = count
			}
			planted, err := s.PlantMSPs(synth.MSPConfig{
				Count: count, MultCount: multCount, MaxMultSize: 4, ValidOnly: true, Seed: seed + 3,
			})
			if err != nil {
				return nil, err
			}
			res := core.Run(core.Config{
				Space:   s.Sp,
				Theta:   0.5,
				Members: []crowd.Member{synth.NewOracle("u", s, planted)},
			})
			qSum += float64(res.Stats.TotalQuestions)
			mSum += float64(len(res.MSPs))
			gSum += float64(res.Stats.GeneratedNodes)
			eager = eagerNodeCount(nodes, 4)
		}
		n := float64(trials)
		r.Add(fmt.Sprintf("%.0f%%", share*100),
			fmt.Sprintf("%.0f", qSum/n), fmt.Sprintf("%.1f", mSum/n),
			fmt.Sprintf("%.0f", gSum/n), fmt.Sprintf("%.3g", eager),
			fmt.Sprintf("%.4f%%", 100*(gSum/n)/eager))
	}
	return r, nil
}

// eagerNodeCount estimates the nodes an eager algorithm materializes: all
// value sets of size ≤ maxSize over n values (Σ C(n, k)).
func eagerNodeCount(n, maxSize int) float64 {
	total := 0.0
	term := 1.0
	for k := 1; k <= maxSize; k++ {
		term *= float64(n-k+1) / float64(k)
		total += term
	}
	return total
}

// ComplexityBounds empirically checks Propositions 4.7 and 4.8: the number
// of unique crowd questions against the upper bound
// (|E|+|R|)·|msp| + |msp⁻| and the lower bound |msp_valid| + |msp⁻_valid|.
func ComplexityBounds(scale float64) (*Report, error) {
	r := &Report{
		ID:     "complexity-bounds",
		Title:  "Crowd complexity vs Prop 4.7/4.8 bounds",
		Header: []string{"MSPs planted", "unique questions", "upper bound", "lower bound", "within"},
	}
	r.Note("upper: (|E|+|R|)·|msp| + |msp⁻| (Prop 4.7); lower: |msp|+|msp⁻| (Prop 4.8)")
	for _, count := range []int{5, 10, 20} {
		s, err := synth.GenerateSpace(synth.DAGConfig{
			Width: scaleInt(300, scale), Depth: 6, Seed: int64(count),
		})
		if err != nil {
			return nil, err
		}
		planted, err := s.PlantMSPs(synth.MSPConfig{Count: count, ValidOnly: true, Seed: int64(count) + 1})
		if err != nil {
			return nil, err
		}
		res := core.Run(core.Config{
			Space:   s.Sp,
			Theta:   0.5,
			Members: []crowd.Member{synth.NewOracle("u", s, planted)},
		})
		terms := s.Voc.Len()
		upper := terms*len(res.MSPs) + res.InsigMinimal
		lower := len(res.MSPs) + res.InsigMinimal
		ok := res.Stats.UniqueQuestions <= upper && res.Stats.UniqueQuestions >= lower
		r.Add(len(planted), res.Stats.UniqueQuestions, upper, lower, ok)
	}
	return r, nil
}
