package experiments

import "testing"

// TestPanelsRoundTripReduction is the acceptance floor under the bench's
// headline number: panel batching at size 16 must cost at least 3x fewer
// member round trips than one-question dispatch while mining the
// identical result (runPanels fails the run outright if any size's MSPs
// or statistics move).
func TestPanelsRoundTripReduction(t *testing.T) {
	points, err := runPanels([]int{1, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	base, batched := points[0], points[len(points)-1]
	if batched.RoundTrips*3 > base.RoundTrips {
		t.Fatalf("panel size 16 cost %d round trips, want <= 1/3 of baseline %d",
			batched.RoundTrips, base.RoundTrips)
	}
	for _, pt := range points[1:] {
		if pt.Items < pt.RoundTrips {
			t.Errorf("size %d: %d items over %d round trips; panels lost questions",
				pt.Size, pt.Items, pt.RoundTrips)
		}
		if pt.Confirmable == 0 {
			t.Errorf("size %d: no item was ever confirmable; aggregate priors never matured", pt.Size)
		}
	}
}
