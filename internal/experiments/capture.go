package experiments

import (
	"fmt"
	"math/rand"

	"oassis/internal/assoc"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/fact"
	"oassis/internal/itemset"
	"oassis/internal/oassisql"
	"oassis/internal/plan"
	"oassis/internal/vocab"

	"oassis/internal/assign"
)

// ItemsetCapture verifies the Section 4.1 claim that OASSIS-QL with
// multiplicities captures standard frequent-itemset mining: mining the
// query `SELECT FACT-SETS WHERE SATISFYING $x+ [] [] WITH SUPPORT = θ`
// over a flat vocabulary must return exactly the maximal frequent itemsets
// that Apriori computes on the same transactions.
func ItemsetCapture(items, transactions int, minSupport float64, seed int64) (*Report, error) {
	r := &Report{
		ID:     "itemset-capture",
		Title:  "OASSIS-QL captures frequent itemset mining (§4.1)",
		Header: []string{"miner", "maximal frequent itemsets", "agree"},
	}
	rng := rand.New(rand.NewSource(seed))

	// Flat vocabulary: items as elements without order; one relation.
	v := vocab.New()
	terms := make([]vocab.Term, items)
	for i := range terms {
		terms[i] = v.MustAddElement(fmt.Sprintf("item%02d", i))
	}
	rel := v.MustAddRelation("has")
	basket := v.MustAddElement("basket")
	if err := v.Freeze(); err != nil {
		return nil, err
	}

	// Random transactions, shared between both miners.
	db := make([]itemset.Itemset, transactions)
	pdb := crowd.NewPersonalDB(v)
	for t := range db {
		n := 1 + rng.Intn(4)
		var tx itemset.Itemset
		var fs fact.Set
		for j := 0; j < n; j++ {
			it := rng.Intn(items)
			tx = append(tx, it)
			fs = append(fs, fact.Fact{S: terms[it], R: rel, O: basket})
		}
		db[t] = tx
		pdb.Add(fs.Canon())
	}

	// Ground truth through the planner's pluggable mining substrate (the
	// classic Apriori + maximal-filter black box).
	itemsetSub, err := plan.SubstrateByName(plan.SubstrateItemset)
	if err != nil {
		return nil, err
	}
	truthKeys := substrateKeys(itemsetSub, db, minSupport)

	// OASSIS: the capture query over the same transactions.
	q := &oassisql.Query{
		Select:  oassisql.SelectFactSets,
		Support: minSupport,
		Satisfying: []oassisql.Pattern{{
			S:     oassisql.Var("x"),
			SMult: oassisql.MultPlus,
			R:     oassisql.Atom{Kind: oassisql.AtomAny},
			O:     oassisql.Atom{Kind: oassisql.AtomAny},
			OMult: oassisql.MultOne,
		}},
	}
	sp, err := assign.NewSpace(v, q, nil, nil)
	if err != nil {
		return nil, err
	}
	member := &crowd.SimMember{Name: "u", DB: pdb, Disc: crowd.Exact}
	res := core.Run(core.Config{Space: sp, Theta: minSupport, Members: []crowd.Member{member},
		Metrics: sharedMetrics()})

	// Compare: each mined MSP's value set as an itemset.
	mined := map[string]bool{}
	for _, m := range res.MSPs {
		key := ""
		for _, t := range m.Vals[0] {
			// item terms are interned first, so Term == item index.
			key += fmt.Sprintf("%02d,", int(t))
		}
		mined[key] = true
	}
	agree := sameKeys(mined, truthKeys)

	// The alternative substrate — the SIGMOD'13 association-rule framework
	// behind the same plan.Substrate interface — must agree bitwise too.
	assocSub, err := plan.SubstrateByName(plan.SubstrateAssoc)
	if err != nil {
		return nil, err
	}
	assocKeys := substrateKeys(assocSub, db, minSupport)
	r.Add("Apriori+maximal", len(truthKeys), "")
	r.Add("OASSIS $x+ [] []", len(mined), agree)
	r.Add("assoc substrate", len(assocKeys), sameKeys(assocKeys, truthKeys))
	r.Note("questions: %d (unique %d); %d transactions, %d items, θ=%.2f",
		res.Stats.TotalQuestions, res.Stats.UniqueQuestions, transactions, items, minSupport)
	if !agree {
		r.Note("MISMATCH between OASSIS MSPs and Apriori maximal itemsets")
	}
	return r, nil
}

// substrateKeys mines the maximal frequent itemsets through a pluggable
// substrate and renders them as canonical comparison keys.
func substrateKeys(sub plan.Substrate, db []itemset.Itemset, theta float64) map[string]bool {
	keys := map[string]bool{}
	for _, s := range sub.MineMaximal(db, theta) {
		key := ""
		for _, it := range s.Items {
			key += fmt.Sprintf("%02d,", it)
		}
		keys[key] = true
	}
	return keys
}

func sameKeys(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range b {
		if !a[k] {
			return false
		}
	}
	return true
}

// AssocMiner regenerates the bridge experiment for the SIGMOD'13 Crowd
// Mining framework (reference [3]): precision/recall of the significant
// association rules against ground truth, for different open/closed
// question mixes.
func AssocMiner(users, budget int, seed int64) (*Report, error) {
	r := &Report{
		ID:     "assoc-miner",
		Title:  "Crowd association-rule mining (SIGMOD'13 framework, ref [3])",
		Header: []string{"open ratio", "questions", "rules", "precision", "recall"},
	}
	rng := rand.New(rand.NewSource(seed))
	sim := make([]*assoc.SimUser, users)
	for i := range sim {
		var db []itemset.Itemset
		for t := 0; t < 24; t++ {
			r := rng.Float64()
			switch {
			case r < 0.45:
				db = append(db, itemset.Itemset{1, 2})
			case r < 0.70:
				db = append(db, itemset.Itemset{3, 4})
			case r < 0.85:
				db = append(db, itemset.Itemset{5, 6, 1})
			default:
				db = append(db, itemset.Itemset{rng.Intn(8) + 1})
			}
		}
		sim[i] = &assoc.SimUser{
			Name:           fmt.Sprintf("u%03d", i),
			DB:             db,
			MinOpenSupport: 0.3,
			Rng:            rand.New(rand.NewSource(seed + int64(i))),
		}
	}
	usersIface := make([]assoc.User, len(sim))
	for i, u := range sim {
		usersIface[i] = u
	}
	truth := assoc.GroundTruth(sim, 0.3, 0.5, 0.2)
	for _, ratio := range []float64{0.1, 0.3, 0.5, 1.0} {
		res := assoc.Mine(assoc.Config{
			Users:      usersIface,
			ThetaS:     0.3,
			ThetaC:     0.5,
			OpenRatio:  ratio,
			MinAnswers: 3,
			MaxAnswers: 10,
			Budget:     budget,
			Rng:        rand.New(rand.NewSource(seed + 999)),
		})
		p, rec := assoc.PrecisionRecall(res.Rules, truth)
		r.Add(fmt.Sprintf("%.0f%%", ratio*100), res.Questions, len(res.Rules),
			fmt.Sprintf("%.2f", p), fmt.Sprintf("%.2f", rec))
	}
	r.Note("ground truth: %d significant rules over %d users", len(truth), users)
	return r, nil
}
