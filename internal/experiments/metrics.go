package experiments

import (
	"sync/atomic"

	"oassis/internal/core"
)

// benchMetrics is the engine-metrics handle every experiment run attaches
// to its core.Config, so oassis-bench can dump a registry covering the
// whole bench invocation. Experiments run concurrently across the worker
// pool, hence the atomic pointer; a nil handle (the default) disables
// instrumentation entirely.
var benchMetrics atomic.Pointer[core.Metrics]

// SetMetrics attaches m to every engine run started by this package from
// now on (nil detaches). Instrumentation is purely observational: the
// experiment outputs are bit-identical with and without it.
func SetMetrics(m *core.Metrics) { benchMetrics.Store(m) }

// sharedMetrics is the handle experiment configs attach.
func sharedMetrics() *core.Metrics { return benchMetrics.Load() }
