package experiments

import (
	"fmt"
	"sort"
	"time"

	"oassis/internal/aggregate"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/plan"
	"oassis/internal/synth"
)

// orderingDomain generates one taxonomy domain for the ordering sweep and
// pins its members to order-insensitive behavior: no RNG (a member's
// answer stream must be a pure function of the question, not of the order
// questions arrive in), always-accepted specializations, no pruning
// clicks. With members held fixed this way, the mined MSP set is a pure
// property of the domain — so any difference between orderings is a
// correctness bug, and the question count is the only thing a policy can
// change.
func orderingDomain(patterns int) (*synth.Domain, error) {
	d, err := synth.GenerateDomain(synth.DomainConfig{
		Name: "orderings", YTerms: 30, XTerms: 10, YDepth: 4, XDepth: 3,
		Members: 8, Transactions: 12, Patterns: patterns, Seed: 101,
	})
	if err != nil {
		return nil, err
	}
	for _, m := range d.Members {
		sm := m.(*crowd.SimMember)
		sm.Rng = nil
		sm.SpecializeProb = 1
		sm.PruneProb = 0
	}
	return d, nil
}

// orderingCell is one (domain, policy) run of the sweep.
type orderingCell struct {
	Questions int
	MSPs      []string
	Elapsed   time.Duration
}

func runOrderingCell(patterns int, policy string) (orderingCell, error) {
	var c orderingCell
	d, err := orderingDomain(patterns)
	if err != nil {
		return c, err
	}
	ord, err := plan.OrderingByName(policy)
	if err != nil {
		return c, err
	}
	start := time.Now()
	res := core.Run(core.Config{
		Space: d.Sp, Theta: 0.2, Members: d.Members,
		Agg:      aggregate.NewFixedSample(3),
		Ordering: ord,
	})
	c.Elapsed = time.Since(start)
	c.Questions = res.Stats.TotalQuestions
	for _, m := range res.MSPs {
		c.MSPs = append(c.MSPs, d.Sp.Format(m))
	}
	sort.Strings(c.MSPs)
	return c, nil
}

// Orderings sweeps every registered question-ordering policy over a grid
// of seeded taxonomy domains, measuring the crowd questions each needs to
// mine the (identical) MSP set. The members are deterministic and
// order-insensitive, so the sweep hard-fails if any ordering mines a
// different MSP set than paper-order — determinism is the contract, the
// question count is the experiment. It also hard-fails if neither
// structure-aware ordering (chain-prune, max-prune) saves questions over
// paper-order anywhere on the grid. Rows are seeded-deterministic for the
// bench-compare gate; wall-clock lives in the notes, which the gate does
// not diff.
func Orderings(patternGrid []int) (*Report, error) {
	r := &Report{
		ID:     "orderings",
		Title:  "question-ordering policies: questions asked for the same MSP set",
		Header: []string{"patterns", "policy", "questions", "saved", "msps"},
	}
	elapsed := map[string]time.Duration{}
	structSaved := false
	for _, p := range patternGrid {
		base, err := runOrderingCell(p, plan.PolicyPaperOrder)
		if err != nil {
			return nil, err
		}
		elapsed[plan.PolicyPaperOrder] += base.Elapsed
		r.Add(p, plan.PolicyPaperOrder, base.Questions, pct(0, base.Questions), len(base.MSPs))
		for _, name := range plan.OrderingNames() {
			if name == plan.PolicyPaperOrder {
				continue
			}
			c, err := runOrderingCell(p, name)
			if err != nil {
				return nil, err
			}
			elapsed[name] += c.Elapsed
			if fmt.Sprint(c.MSPs) != fmt.Sprint(base.MSPs) {
				return nil, fmt.Errorf("orderings: %s mined a different MSP set than paper-order at %d patterns:\npaper-order: %v\n%s: %v",
					name, p, base.MSPs, name, c.MSPs)
			}
			if (name == plan.PolicyChainPrune || name == plan.PolicyMaxPrune) && c.Questions < base.Questions {
				structSaved = true
			}
			r.Add(p, name, c.Questions, pct(base.Questions-c.Questions, base.Questions), len(c.MSPs))
		}
	}
	if !structSaved {
		return nil, fmt.Errorf("orderings: no structure-aware policy saved questions over paper-order on any domain")
	}
	r.Note("every policy mines the identical MSP set (hard-checked); saved = questions vs paper-order")
	r.Note("8 deterministic members, 3 answers per question, theta 0.2, seeded synthetic domains")
	for _, name := range plan.OrderingNames() {
		r.Note("wall-clock %s: %.3fs over the grid", name, elapsed[name].Seconds())
	}
	return r, nil
}
