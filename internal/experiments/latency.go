package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"oassis/internal/aggregate"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/synth"
)

// latencyPoint is one dispatcher measurement: the wall clock of a full
// mining run at one parallelism level, plus what the dispatcher paid in
// speculative answers for it.
type latencyPoint struct {
	Parallelism int
	Elapsed     time.Duration
	Dispatch    core.DispatchStats
	Questions   int
}

// latencyConfig builds the latency workload: a small synthetic space mined
// by a crowd of pure oracles, each wrapped in crowd.Latent so every answer
// costs `delay` of wall clock — the regime the paper collects answers in
// (humans take seconds; §6.2 runs over days). Answer aggregation needs
// answersPerQuestion members per node, which is the parallelism the
// dispatcher can actually exploit.
func latencyConfig(delay time.Duration, members, answersPerQuestion int) (core.Config, error) {
	sp, err := synth.GenerateSpace(synth.DAGConfig{
		Width: 4, Depth: 2, XWidth: 2, XDepth: 1, Seed: 5,
	})
	if err != nil {
		return core.Config{}, err
	}
	planted, err := sp.PlantMSPs(synth.MSPConfig{Count: 3, Seed: 5})
	if err != nil {
		return core.Config{}, err
	}
	crowdMembers := make([]crowd.Member, members)
	for i := range crowdMembers {
		// Each latent member owns a deterministically seeded Rng for its
		// answer jitter: runs are reproducible, and concurrent members
		// never share a rand source.
		crowdMembers[i] = &crowd.Latent{
			M:      synth.NewOracle(fmt.Sprintf("m%02d", i), sp, planted),
			Delay:  delay,
			Jitter: delay / 4,
			Rng:    rand.New(rand.NewSource(42 + int64(i))),
		}
	}
	return core.Config{
		Space:   sp.Sp,
		Theta:   0.5,
		Members: crowdMembers,
		Agg:     aggregate.NewFixedSample(answersPerQuestion),
		Metrics: sharedMetrics(),
	}, nil
}

// latencySummary renders a run result for equality checks across
// parallelism levels.
func latencySummary(res *core.Result) string {
	keys := make([]string, 0, len(res.MSPs))
	for _, m := range res.MSPs {
		keys = append(keys, m.Key())
	}
	sort.Strings(keys)
	return fmt.Sprintf("msps=%v stats=%v", keys, res.Stats.String())
}

// runDispatchLatency measures one full mining run per parallelism level and
// verifies the mined result never moves. The workload holds 12 latent
// members with 8 answers required per question, so up to 8 questions are
// genuinely useful in flight at once.
func runDispatchLatency(delay time.Duration, parallelisms []int) ([]latencyPoint, error) {
	var points []latencyPoint
	var want string
	for i, p := range parallelisms {
		cfg, err := latencyConfig(delay, 12, 8)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, ds := core.RunConcurrent(cfg, p, 42)
		elapsed := time.Since(start)
		got := latencySummary(res)
		if i == 0 {
			want = got
		} else if got != want {
			return nil, fmt.Errorf("parallelism %d changed the result:\n got %s\nwant %s", p, got, want)
		}
		points = append(points, latencyPoint{
			Parallelism: p,
			Elapsed:     elapsed,
			Dispatch:    ds,
			Questions:   res.Stats.TotalQuestions,
		})
	}
	return points, nil
}

// DispatchLatency regenerates the concurrent-dispatch scenario: the same
// crowd-latency-bound query at increasing parallelism, reporting wall
// clock, speedup over sequential, and the speculation the dispatcher paid.
// The mined MSPs and statistics are identical at every level — parallelism
// buys wall clock, never a different answer.
func DispatchLatency(delay time.Duration, parallelisms []int) (*Report, error) {
	points, err := runDispatchLatency(delay, parallelisms)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:    "latency",
		Title: fmt.Sprintf("concurrent crowd dispatch (%v per answer)", delay),
		Header: []string{"parallelism", "wall clock", "speedup",
			"questions", "launched", "wasted", "max in flight"},
	}
	base := points[0].Elapsed
	for _, pt := range points {
		r.Add(pt.Parallelism, pt.Elapsed.Round(time.Millisecond).String(),
			float64(base)/float64(pt.Elapsed), pt.Questions,
			pt.Dispatch.Launched, pt.Dispatch.Wasted, pt.Dispatch.MaxInFlight)
	}
	r.Note("12 latent members (answer jitter up to delay/4, per-member seeds), 8 answers per question;")
	r.Note("results are bit-identical at every parallelism")
	return r, nil
}
