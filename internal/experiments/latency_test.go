package experiments

import (
	"testing"
	"time"
)

// TestDispatchLatencySpeedup is a conservative floor under the bench's
// headline number: with answers costing wall clock, dispatching at
// parallelism 8 must finish in well under half the sequential time while
// mining the identical result (runDispatchLatency fails the run outright
// if any level's MSPs or statistics move).
func TestDispatchLatencySpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	points, err := runDispatchLatency(10*time.Millisecond, []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	seq, par := points[0], points[1]
	if par.Elapsed >= seq.Elapsed/2 {
		t.Fatalf("parallelism 8 took %v, want < half of sequential %v",
			par.Elapsed, seq.Elapsed)
	}
	if par.Dispatch.MaxInFlight > 8 {
		t.Fatalf("MaxInFlight = %d, want <= 8", par.Dispatch.MaxInFlight)
	}
	if seq.Questions != par.Questions {
		t.Fatalf("question count moved: %d sequential vs %d parallel",
			seq.Questions, par.Questions)
	}
}
