package core

import (
	"testing"
)

// BenchmarkDrainExpansions measures batched DAG expansion over the full
// Figure 2 lattice: every generated node is queued and expanded to the
// fixpoint, the way a run whose nodes all turn significant would. It
// exercises successor generation, pool dedup and classifier registration
// together — the per-answer bookkeeping the engine pays on the hot path.
func BenchmarkDrainExpansions(b *testing.B) {
	_, _, sp := buildSpace(b, figure2Full)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := newEngine(Config{Space: sp, Theta: 0.4})
		e.seed()
		for {
			queued := 0
			for _, id := range e.poolIDs {
				if !e.expanded[id] {
					e.toExpand = append(e.toExpand, id)
					queued++
				}
			}
			if queued == 0 {
				break
			}
			e.drainExpansions()
		}
		if len(e.poolIDs) == 0 {
			b.Fatal("expansion generated no nodes")
		}
	}
}

// BenchmarkEngineRun measures a complete sequential mining run of the
// paper's running example against the Table 3 members — the end-to-end
// engine cost with zero crowd latency.
func BenchmarkEngineRun(b *testing.B) {
	s, _, sp := buildSpace(b, figure2Full)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Run(Config{Space: sp, Theta: 0.4, Members: sampleMembers(s)})
		if len(res.MSPs) == 0 {
			b.Fatal("run mined no MSPs")
		}
	}
}
