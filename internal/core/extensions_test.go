package core

import (
	"math/rand"
	"testing"

	"oassis/internal/aggregate"
	"oassis/internal/crowd"
	"oassis/internal/fact"
	"oassis/internal/vocab"
)

func TestTopKEarlyStop(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	full := Run(Config{
		Space:   sp,
		Theta:   q.Support,
		Members: sampleMembers(s),
		Agg:     aggregate.NewFixedSample(2),
	})
	if len(full.MSPs) < 2 {
		t.Skip("need at least 2 MSPs for the top-k test")
	}
	_, _, sp2 := buildSpace(t, figure3Restricted)
	topk := Run(Config{
		Space:   sp2,
		Theta:   q.Support,
		Members: sampleMembers(s),
		Agg:     aggregate.NewFixedSample(2),
		MaxMSPs: 1,
	})
	if topk.Stats.TotalQuestions >= full.Stats.TotalQuestions {
		t.Errorf("top-1 used %d questions, full run %d",
			topk.Stats.TotalQuestions, full.Stats.TotalQuestions)
	}
	// Every early answer must be one of the full run's MSPs... at least one
	// confirmed MSP must exist among the anchors and be a true MSP.
	fullKeys := map[string]bool{}
	for _, m := range full.MSPs {
		fullKeys[m.Key()] = true
	}
	confirmed := 0
	for _, m := range topk.MSPs {
		if fullKeys[m.Key()] {
			confirmed++
		}
	}
	if confirmed == 0 {
		t.Error("top-k run confirmed no true MSP")
	}
}

// spammer answers randomly, violating support monotonicity.
type spammer struct {
	name string
	rng  *rand.Rand
}

func (s *spammer) ID() string                { return s.name }
func (s *spammer) Concrete(fact.Set) float64 { return s.rng.Float64() }
func (s *spammer) ChooseSpecialization([]fact.Set) crowd.SpecializeResponse {
	return crowd.DeclineSpecialization()
}
func (s *spammer) Irrelevant([]vocab.Term) (vocab.Term, bool) { return vocab.None, false }

func TestSpamFilterBansInconsistentMember(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	// The spammer goes first and three answers are required per question,
	// so it participates in every aggregation until caught.
	members := append([]crowd.Member{&spammer{name: "spam", rng: rand.New(rand.NewSource(3))}},
		sampleMembers(s)...)
	res := Run(Config{
		Space:             sp,
		Theta:             q.Support,
		Members:           members,
		Agg:               aggregate.NewFixedSample(3),
		SpamMaxViolations: 2,
		SpamTolerance:     0.25,
	})
	if res.Stats.BannedMembers != 1 {
		t.Fatalf("banned %d members, want 1", res.Stats.BannedMembers)
	}
	// The honest members' MSPs must survive despite the spammer's noise
	// contaminating a few early aggregations: at minimum the run finishes
	// and the biking MSP is found (both honest members agree strongly).
	got := mspNames(sp, res.ValidMSPs)
	if !got["y↦{Biking}, x↦{Central Park}"] {
		t.Errorf("biking MSP lost to spam: %v", got)
	}
}

func TestSpamFilterOffByDefault(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	res := Run(Config{
		Space:   sp,
		Theta:   q.Support,
		Members: sampleMembers(s),
		Agg:     aggregate.NewFixedSample(2),
	})
	if res.Stats.BannedMembers != 0 {
		t.Error("members banned with filter disabled")
	}
}

func TestConfidenceAggregatorInEngine(t *testing.T) {
	// The CI-based aggregator (the SIGMOD'13-style black box) also drives
	// the engine; with unanimous members it needs no more than MinN
	// answers per question.
	s, q, sp := buildSpace(t, figure3Restricted)
	u1, u2 := crowd.SampleDBs(s)
	members := []crowd.Member{
		&crowd.SimMember{Name: "u1", DB: u1, Disc: crowd.Exact},
		&crowd.SimMember{Name: "u2", DB: u2, Disc: crowd.Exact},
		&crowd.SimMember{Name: "u3", DB: u1, Disc: crowd.Exact}, // u1's twin
		&crowd.SimMember{Name: "u4", DB: u2, Disc: crowd.Exact},
	}
	res := Run(Config{
		Space:   sp,
		Theta:   q.Support,
		Members: members,
		Agg:     aggregate.NewConfidence(1.96, 2, 4),
	})
	if len(res.ValidMSPs) == 0 {
		t.Fatal("no MSPs with the confidence aggregator")
	}
	got := mspNames(sp, res.ValidMSPs)
	if !got["y↦{Feed a Monkey}, x↦{Bronx Zoo}"] {
		t.Errorf("MSPs = %v", got)
	}
}

func TestMaxSpecializationCandidates(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	u1, u2 := crowd.SampleDBs(s)
	members := []crowd.Member{
		&crowd.SimMember{Name: "u1", DB: u1, Disc: crowd.Exact, SpecializeProb: 1, Theta: 0.3},
		&crowd.SimMember{Name: "u2", DB: u2, Disc: crowd.Exact, SpecializeProb: 1, Theta: 0.3},
	}
	res := Run(Config{
		Space:                       sp,
		Theta:                       q.Support,
		Members:                     members,
		Agg:                         aggregate.NewFixedSample(2),
		SpecializationRatio:         1,
		MaxSpecializationCandidates: 2,
		Rng:                         rand.New(rand.NewSource(5)),
	})
	got := mspNames(sp, res.ValidMSPs)
	// Limiting the choice list must not lose correctness.
	for _, w := range []string{
		"y↦{Biking}, x↦{Central Park}",
		"y↦{Feed a Monkey}, x↦{Bronx Zoo}",
	} {
		if !got[w] {
			t.Errorf("missing MSP %s with capped candidate list", w)
		}
	}
}

func TestMemberBudget(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	res := Run(Config{
		Space:                 sp,
		Theta:                 q.Support,
		Members:               sampleMembers(s),
		Agg:                   aggregate.NewFixedSample(2),
		MaxQuestionsPerMember: 3,
	})
	// 2 members × 3 questions plus free/forced classifications: the total
	// counted answers cannot exceed the members' combined budget.
	if res.Stats.TotalQuestions > 6 {
		t.Errorf("counted answers %d exceed member budgets", res.Stats.TotalQuestions)
	}
}

func TestBraceMultiplicityMining(t *testing.T) {
	// {2}: mine pairs of activities done together at the same place.
	src := `SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity
SATISFYING
  $y{2} doAt $x
WITH SUPPORT = 0.3`
	s, q, sp := buildSpace(t, src)
	res := Run(Config{
		Space:   sp,
		Theta:   q.Support,
		Members: sampleMembers(s),
		Agg:     aggregate.NewFixedSample(2),
	})
	// Supports: {Biking, Baseball} doAt CP is in T4 (1/6) and T7 (1/2):
	// mean 1/3 ≥ 0.3 — the only instance-level significant pair.
	got := mspNames(sp, res.ValidMSPs)
	if !got["y↦{Biking, Baseball}, x↦{Central Park}"] {
		t.Errorf("pair MSP missing: %v", got)
	}
	// Every reported node has exactly two activity values.
	for _, m := range res.MSPs {
		if len(m.Vals[0]) != 2 {
			t.Errorf("MSP with %d values under {2}: %s", len(m.Vals[0]), sp.Format(m))
		}
	}
}
