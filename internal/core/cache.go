package core

import (
	"oassis/internal/crowd"
	"oassis/internal/fact"
	"oassis/internal/vocab"
)

// Cache is the CrowdCache of the paper's architecture (§6.1): it records
// every answer collected from the crowd, keyed by question fact-set and
// member. Cached answers are independent of the support threshold, so a
// query can be re-evaluated for a different threshold by replaying the cache
// (§6.3) — CachedMember wraps the cache as a crowd member for that purpose.
type Cache struct {
	answers map[string]map[string]float64 // question key -> member -> support
	keys    map[string]string             // question key interning (one copy per key)
	order   []CachedAnswer                // insertion order, for inspection

	// memberHint sizes each per-question member map at creation: in a run
	// every member eventually answers most questions, so allocating for the
	// crowd size up front avoids rehash churn on the answer hot path.
	memberHint int
}

// CachedAnswer is one recorded answer.
type CachedAnswer struct {
	QuestionKey string
	Member      string
	Support     float64
	Kind        QuestionKind
}

// NewCache returns an empty cache.
func NewCache() *Cache { return NewCacheSized(0) }

// NewCacheSized returns an empty cache whose per-question member maps are
// preallocated for memberHint members (the crowd size of the run feeding it).
func NewCacheSized(memberHint int) *Cache {
	return &Cache{
		answers:    make(map[string]map[string]float64),
		keys:       make(map[string]string),
		memberHint: memberHint,
	}
}

// Record stores an answer; re-recording the same (question, member) pair is
// ignored. The question key is interned so the cache retains one copy of each
// key string instead of one per recorded answer.
func (c *Cache) Record(qKey, member string, support float64, kind QuestionKind) {
	if k, ok := c.keys[qKey]; ok {
		qKey = k
	} else {
		c.keys[qKey] = qKey
	}
	byMember := c.answers[qKey]
	if byMember == nil {
		byMember = make(map[string]float64, c.memberHint)
		c.answers[qKey] = byMember
	}
	if _, dup := byMember[member]; dup {
		return
	}
	byMember[member] = support
	c.order = append(c.order, CachedAnswer{QuestionKey: qKey, Member: member, Support: support, Kind: kind})
}

// Lookup returns the recorded answer of member for the question.
func (c *Cache) Lookup(qKey, member string) (float64, bool) {
	s, ok := c.answers[qKey][member]
	return s, ok
}

// Members returns the distinct member IDs appearing in the cache, in first-
// answer order.
func (c *Cache) Members() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range c.order {
		if !seen[a.Member] {
			seen[a.Member] = true
			out = append(out, a.Member)
		}
	}
	return out
}

// Len reports the number of recorded answers.
func (c *Cache) Len() int { return len(c.order) }

// Answers returns the recorded answers in insertion order.
func (c *Cache) Answers() []CachedAnswer { return c.order }

// CachedMember replays a member's cached answers: concrete questions are
// answered from the cache (with Misses counting questions the original run
// never asked this member), specialization questions are declined, and no
// pruning clicks are offered — matching the paper's replay methodology,
// which counts only the cached answers the algorithm actually uses (§6.3).
type CachedMember struct {
	Name   string
	Cache  *Cache
	Misses int
	Hits   int
}

// ID implements crowd.Member.
func (m *CachedMember) ID() string { return m.Name }

// Concrete implements crowd.Member.
func (m *CachedMember) Concrete(fs fact.Set) float64 {
	if s, ok := m.Cache.Lookup(fs.Key(), m.Name); ok {
		m.Hits++
		return s
	}
	m.Misses++
	return 0
}

// ChooseSpecialization implements crowd.Member by declining.
func (m *CachedMember) ChooseSpecialization([]fact.Set) crowd.SpecializeResponse {
	return crowd.DeclineSpecialization()
}

// Irrelevant implements crowd.Member by never pruning.
func (m *CachedMember) Irrelevant([]vocab.Term) (vocab.Term, bool) {
	return vocab.None, false
}
