package core

import (
	"strconv"
	"time"

	"oassis/internal/aggregate"
	"oassis/internal/obs"
)

// Metrics bundles the engine-layer instruments, registered on an
// obs.Registry. Attach one via Config.Metrics; a nil Metrics disables
// instrumentation with zero hot-path cost. Every instrument is write-only
// from the engine's point of view — recording never feeds back into what
// the engine asks or concludes, so results with metrics on are
// bit-identical to results with metrics off (regression-tested at the
// facade).
type Metrics struct {
	issued     [4]*obs.Counter // by QuestionKind
	answered   [4]*obs.Counter
	speculated *obs.Counter
	retired    *obs.Counter
	inFlight   *obs.Gauge
	latency    *obs.Histogram

	answers        [4]*obs.Counter // counted crowd answers, by kind
	freeAnswers    *obs.Counter
	primedAnswers  *obs.Counter
	rounds         *obs.Counter
	nodesGenerated *obs.Counter
	storeErrors    *obs.Counter

	dispatchLaunched *obs.Counter
	dispatchWasted   *obs.Counter

	stopEstimates map[string]*obs.Gauge   // by stop-policy name, basis points
	stopSaveds    map[string]*obs.Counter // questions saved by early stops
	spamFlaggeds  map[string]*obs.Counter // members flagged below the floor
}

// kindLabels maps QuestionKind to the exposition label value. Speculation
// and pruning questions both travel as their underlying kinds.
var kindLabels = [4]string{"concrete", "specialization", "none-of-these", "pruning"}

// NewMetrics registers the engine instruments on r and returns the handle
// to attach as Config.Metrics. Registering twice on the same registry
// returns handles on the same underlying series.
func NewMetrics(r *obs.Registry) *Metrics {
	m := &Metrics{}
	for k, kind := range kindLabels {
		m.issued[k] = r.Counter("oassis_session_questions_issued_total",
			"questions surfaced by the session, including speculative ones",
			obs.L("kind", kind))
		m.answered[k] = r.Counter("oassis_session_questions_answered_total",
			"answers submitted to the session", obs.L("kind", kind))
		m.answers[k] = r.Counter("oassis_engine_answers_total",
			"crowd answers counted by the engine", obs.L("kind", kind))
	}
	m.speculated = r.Counter("oassis_session_questions_speculated_total",
		"questions issued speculatively, ahead of the engine's own request")
	m.retired = r.Counter("oassis_session_questions_retired_total",
		"open questions retired unanswered (outrun by the round or the run's end)")
	m.inFlight = r.Gauge("oassis_session_questions_inflight",
		"questions currently issued and awaiting an answer")
	m.latency = r.Histogram("oassis_session_answer_latency_seconds",
		"seconds from question issue to answer submission", nil)
	m.freeAnswers = r.Counter("oassis_engine_free_answers_total",
		"answers derived without crowd effort (cache hits, pruning inference)")
	m.primedAnswers = r.Counter("oassis_engine_primed_answers_total",
		"answers replayed from a primed cache instead of asked live")
	m.rounds = r.Counter("oassis_engine_rounds_total",
		"main-loop rounds (one unclassified lattice node picked per round)")
	m.nodesGenerated = r.Counter("oassis_engine_nodes_generated_total",
		"lattice nodes generated into the pool")
	m.storeErrors = r.Counter("oassis_engine_store_errors_total",
		"failed appends to the durable store (the run keeps going)")
	m.dispatchLaunched = r.Counter("oassis_dispatch_launched_total",
		"questions launched by the concurrent dispatcher, including speculation")
	m.dispatchWasted = r.Counter("oassis_dispatch_wasted_total",
		"dispatcher answers collected but never consumed by the engine")
	m.stopEstimates = make(map[string]*obs.Gauge, len(stopPolicyLabels))
	m.stopSaveds = make(map[string]*obs.Counter, len(stopPolicyLabels))
	m.spamFlaggeds = make(map[string]*obs.Counter, len(stopPolicyLabels))
	for _, name := range stopPolicyLabels {
		m.stopEstimates[name] = r.Gauge("oassis_engine_stop_estimate_bp",
			"stop policy estimate (completeness or mean accuracy) in basis points of 1",
			obs.L("policy", name))
		m.stopSaveds[name] = r.Counter("oassis_engine_stop_saved_questions_total",
			"pool nodes left unclassified by early stops (lower bound on answers saved)",
			obs.L("policy", name))
		m.spamFlaggeds[name] = r.Counter("oassis_engine_stop_spam_flagged_total",
			"members flagged below a stop policy's spammer floor",
			obs.L("policy", name))
	}
	return m
}

// stopPolicyLabels are the per-policy label values of the stop-policy
// instruments, one series per registry name.
var stopPolicyLabels = [...]string{
	aggregate.StopThreshold, aggregate.StopSpecies, aggregate.StopAccuracy,
}

// kindIdx clamps a QuestionKind into the per-kind instrument arrays.
func kindIdx(k QuestionKind) int {
	if k < 0 || int(k) >= len(kindLabels) {
		return 0
	}
	return int(k)
}

// The nil-receiver guards below make every call site a plain
// `cfg.Metrics.x(...)` with no if-statement; a nil Metrics is a no-op.

func (m *Metrics) questionIssued(k QuestionKind, speculative bool) {
	if m == nil {
		return
	}
	m.issued[kindIdx(k)].Inc()
	if speculative {
		m.speculated.Inc()
	}
	m.inFlight.Inc()
}

func (m *Metrics) questionAnswered(k QuestionKind, issuedAt time.Time) {
	if m == nil {
		return
	}
	m.answered[kindIdx(k)].Inc()
	m.inFlight.Dec()
	if !issuedAt.IsZero() {
		m.latency.Observe(time.Since(issuedAt).Seconds())
	}
}

func (m *Metrics) questionRetired() {
	if m == nil {
		return
	}
	m.retired.Inc()
	m.inFlight.Dec()
}

func (m *Metrics) answerCounted(k QuestionKind) {
	if m == nil {
		return
	}
	m.answers[kindIdx(k)].Inc()
}

func (m *Metrics) freeAnswer() {
	if m == nil {
		return
	}
	m.freeAnswers.Inc()
}

func (m *Metrics) primedAnswer() {
	if m == nil {
		return
	}
	m.primedAnswers.Inc()
}

func (m *Metrics) roundStarted() {
	if m == nil {
		return
	}
	m.rounds.Inc()
}

func (m *Metrics) nodeGenerated() {
	if m == nil {
		return
	}
	m.nodesGenerated.Inc()
}

func (m *Metrics) storeError() {
	if m == nil {
		return
	}
	m.storeErrors.Inc()
}

func (m *Metrics) launched() {
	if m == nil {
		return
	}
	m.dispatchLaunched.Inc()
}

func (m *Metrics) wasted(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.dispatchWasted.Add(n)
}

func (m *Metrics) stopEstimate(policy string, est float64) {
	if m == nil {
		return
	}
	if g := m.stopEstimates[policy]; g != nil {
		g.Set(int64(est * 10000))
	}
}

func (m *Metrics) stopSaved(policy string, n int) {
	if m == nil || n <= 0 {
		return
	}
	if c := m.stopSaveds[policy]; c != nil {
		c.Add(n)
	}
}

func (m *Metrics) spamFlagged(policy string) {
	if m == nil {
		return
	}
	if c := m.spamFlaggeds[policy]; c != nil {
		c.Inc()
	}
}

// strID renders a QuestionID for span attributes.
func strID(id QuestionID) string { return strconv.FormatInt(int64(id), 10) }
