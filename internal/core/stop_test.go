package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"oassis/internal/aggregate"
	"oassis/internal/crowd"
	"oassis/internal/fact"
	"oassis/internal/synth"
	"oassis/internal/vocab"
)

// randomSpammer answers every concrete question with a uniformly random
// five-level support, ignoring the question entirely.
type randomSpammer struct {
	name string
	rng  *rand.Rand
}

func (m *randomSpammer) ID() string { return m.name }
func (m *randomSpammer) Concrete(fact.Set) float64 {
	return float64(m.rng.Intn(5)) * 0.25
}
func (m *randomSpammer) ChooseSpecialization([]fact.Set) crowd.SpecializeResponse {
	return crowd.DeclineSpecialization()
}
func (m *randomSpammer) Irrelevant([]vocab.Term) (vocab.Term, bool) { return vocab.None, false }

// yesSpammer claims full support for everything — the lazy worker who
// clicks through every question affirmatively.
type yesSpammer struct{ name string }

func (m *yesSpammer) ID() string                { return m.name }
func (m *yesSpammer) Concrete(fact.Set) float64 { return 1 }
func (m *yesSpammer) ChooseSpecialization([]fact.Set) crowd.SpecializeResponse {
	return crowd.DeclineSpecialization()
}
func (m *yesSpammer) Irrelevant([]vocab.Term) (vocab.Term, bool) { return vocab.None, false }

// flipSpammer adversarially inverts the answers an honest member would
// give, so it is anti-correlated with the crowd consensus.
type flipSpammer struct {
	name   string
	honest crowd.Member
}

func (m *flipSpammer) ID() string { return m.name }
func (m *flipSpammer) Concrete(fs fact.Set) float64 {
	return 1 - m.honest.Concrete(fs)
}
func (m *flipSpammer) ChooseSpecialization([]fact.Set) crowd.SpecializeResponse {
	return crowd.DeclineSpecialization()
}
func (m *flipSpammer) Irrelevant([]vocab.Term) (vocab.Term, bool) { return vocab.None, false }

// stopTravelDomain is the travel synthetic domain the equivalence tests
// use, regenerated fresh per call.
func stopTravelDomain(t testing.TB) *synth.Domain {
	t.Helper()
	d, err := synth.GenerateDomain(synth.DomainConfig{
		Name: "travel", YTerms: 30, XTerms: 10, YDepth: 4, XDepth: 3,
		Members: 8, Transactions: 12, Patterns: 6, Seed: 101,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestAccuracyStopFlagsSpammers injects one spammer of each kind into a
// latency-wrapped synthetic crowd and checks the accuracy policy flags the
// spammer while leaving every honest member unflagged. The spammer sits
// right after two honest consensus anchors in member order, so its answers
// are graded against an honest consensus.
func TestAccuracyStopFlagsSpammers(t *testing.T) {
	cases := []struct {
		kind string
		mk   func(honest crowd.Member) crowd.Member
	}{
		{"random", func(crowd.Member) crowd.Member {
			return &randomSpammer{name: "spammer", rng: rand.New(rand.NewSource(7))}
		}},
		{"always-yes", func(crowd.Member) crowd.Member {
			return &yesSpammer{name: "spammer"}
		}},
		{"adversarial-flip", func(honest crowd.Member) crowd.Member {
			return &flipSpammer{name: "spammer", honest: honest}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			d := stopTravelDomain(t)
			honest := d.Members
			spam := tc.mk(honest[len(honest)-1])
			members := []crowd.Member{honest[0], honest[1], spam}
			members = append(members, honest[2:]...)
			// Latency-wrapped crowd, zero delay: the wrapper's code path
			// without wall-clock cost.
			for i, m := range members {
				members[i] = &crowd.Latent{M: m}
			}
			// Floor 0.6: graded honest members rate >= 0.84 on this
			// domain while the random spammer hovers near 0.5 (mid-range
			// consensus answers give uniform noise a 3-in-5 accidental
			// agreement); the margin separates cleanly on both sides.
			stop := aggregate.NewAccuracyWeightedStop(0.6, 5, 0.25)
			res := Run(Config{
				Space:   d.Sp,
				Theta:   0.2,
				Members: members,
				Agg:     aggregate.NewWeighted(3, stop),
				Stop:    stop,
			})
			if !stop.Flagged("spammer") {
				t.Errorf("%s spammer not flagged (rate %.3f)", tc.kind, stop.Rate("spammer"))
			}
			for _, m := range honest {
				if stop.Flagged(m.ID()) {
					t.Errorf("honest member %s flagged (rate %.3f)", m.ID(), stop.Rate(m.ID()))
				}
			}
			if res.Stats.SpamFlagged != 1 {
				t.Errorf("stats.SpamFlagged = %d, want 1", res.Stats.SpamFlagged)
			}
			if len(res.MSPs) == 0 {
				t.Error("run with flagged spammer mined no MSPs")
			}
		})
	}
}

// calibrateStop grades members on synthetic calibration questions before a
// run: honest members answer 0 (alternating who anchors the consensus so
// both accumulate trials), spammers answer 1.
func calibrateStop(stop *aggregate.AccuracyWeightedStop, honest, spammers []string, rounds int) {
	for i := 0; i < rounds; i++ {
		qk := fmt.Sprintf("calibration-%02d", i)
		first, second := honest[i%len(honest)], honest[(i+1)%len(honest)]
		stop.ObserveAnswer(qk, first, 0)
		stop.ObserveAnswer(qk, second, 0)
		for _, s := range spammers {
			stop.ObserveAnswer(qk, s, 1)
		}
	}
}

// TestWeightedMSPsMatchHonestBaseline is satellite 2's correctness claim
// on the Figure-1 domain: with two always-yes spammers alongside u1 and
// u2, plain mean aggregation corrupts the mined MSPs (every insignificant
// set averages to 0.5 >= 0.4), while accuracy-weighted aggregation with a
// calibrated policy drops the flagged spammers and reproduces exactly the
// MSPs of the honest two-member baseline.
func TestWeightedMSPsMatchHonestBaseline(t *testing.T) {
	baseline := func() map[string]bool {
		s, q, sp := buildSpace(t, figure3Restricted)
		res := Run(Config{
			Space:   sp,
			Theta:   q.Support,
			Members: sampleMembers(s),
			Agg:     aggregate.NewFixedSample(2),
		})
		return mspNames(sp, res.MSPs)
	}()

	// Unweighted control: the spammers corrupt the result.
	{
		s, q, sp := buildSpace(t, figure3Restricted)
		members := append(sampleMembers(s),
			&yesSpammer{name: "s1"}, &yesSpammer{name: "s2"})
		res := Run(Config{
			Space:   sp,
			Theta:   q.Support,
			Members: members,
			Agg:     aggregate.NewFixedSample(4),
		})
		if got := mspNames(sp, res.MSPs); fmt.Sprint(got) == fmt.Sprint(baseline) {
			t.Log("control: plain mean with spammers happened to match baseline")
		} else {
			t.Logf("control: plain mean with spammers drifted (%d vs %d MSPs)", len(got), len(baseline))
		}
	}

	// Weighted run: calibrated policy, spammers flagged and dropped.
	s, q, sp := buildSpace(t, figure3Restricted)
	stop := aggregate.NewAccuracyWeightedStop(0.4, 6, 0.25)
	calibrateStop(stop, []string{"u1", "u2"}, []string{"s1", "s2"}, 8)
	if !stop.Flagged("s1") || !stop.Flagged("s2") {
		t.Fatalf("calibration did not flag the spammers: %v", stop.FlaggedMembers())
	}
	members := append(sampleMembers(s),
		&yesSpammer{name: "s1"}, &yesSpammer{name: "s2"})
	res := Run(Config{
		Space:   sp,
		Theta:   q.Support,
		Members: members,
		Agg:     aggregate.NewWeighted(4, stop),
		Stop:    stop,
	})
	got := mspNames(sp, res.MSPs)
	if len(got) != len(baseline) {
		t.Fatalf("weighted MSPs = %v, want honest baseline %v", got, baseline)
	}
	for k := range baseline {
		if !got[k] {
			t.Errorf("weighted run missing honest MSP %s", k)
		}
	}
	if res.Stats.SpamFlagged != 2 {
		t.Errorf("stats.SpamFlagged = %d, want 2 (both spammers banned in-run)", res.Stats.SpamFlagged)
	}
}

// TestStopPolicyConcurrentDispatch drives one session with 16 questions in
// flight through the concurrent dispatcher while an accuracy-weighted
// policy grades the answer stream — the race detector's view of the
// policy's locking on the engine hot path.
func TestStopPolicyConcurrentDispatch(t *testing.T) {
	d := stopTravelDomain(t)
	stop := aggregate.NewAccuracyWeightedStop(0, 0, 0)
	res, _ := RunConcurrent(Config{
		Space:   d.Sp,
		Theta:   0.2,
		Members: d.Members,
		Agg:     aggregate.NewWeighted(3, stop),
		Stop:    stop,
	}, 16, 42)
	if len(res.MSPs) == 0 {
		t.Error("concurrent run mined no MSPs")
	}
	if est := stop.Estimate(); est < 0 || est > 1 {
		t.Errorf("estimate %v outside [0, 1]", est)
	}
}

// TestStopPolicySharedAcrossSessions shares one accuracy-weighted policy
// (cross-run member reputation) between 16 concurrent runs: the policy's
// internal locking must hold up when many engines grade the same members
// at once.
func TestStopPolicySharedAcrossSessions(t *testing.T) {
	stop := aggregate.NewAccuracyWeightedStop(0, 0, 0)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d := stopTravelDomain(t)
			Run(Config{
				Space:   d.Sp,
				Theta:   0.2,
				Members: d.Members,
				Agg:     aggregate.NewWeighted(3, stop),
				Stop:    stop,
			})
		}()
	}
	wg.Wait()
	if est := stop.Estimate(); est < 0 || est > 1 {
		t.Errorf("estimate %v outside [0, 1]", est)
	}
}

// TestSpeciesStopEndsRunEarly pins the tentpole's payoff at engine level:
// on an open-world synthetic domain a tuned species estimator ends the run
// with fewer questions than the run-to-exhaustion default, and the result
// reports the early stop.
func TestSpeciesStopEndsRunEarly(t *testing.T) {
	// A wider sample (K=5) and a deeper pattern pool give the estimator
	// the repeat sightings coverage estimation feeds on.
	mk := func() *synth.Domain {
		d, err := synth.GenerateDomain(synth.DomainConfig{
			Name: "travel", YTerms: 30, XTerms: 10, YDepth: 4, XDepth: 3,
			Members: 8, Transactions: 12, Patterns: 10, Seed: 101,
		})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	d := mk()
	full := Run(Config{
		Space:   d.Sp,
		Theta:   0.2,
		Members: d.Members,
		Agg:     aggregate.NewFixedSample(5),
	})
	stop := aggregate.NewSpeciesStop(0.7, 20)
	d2 := mk()
	early := Run(Config{
		Space:   d2.Sp,
		Theta:   0.2,
		Members: d2.Members,
		Agg:     aggregate.NewFixedSample(5),
		Stop:    stop,
	})
	if !early.Stats.StoppedEarly {
		t.Fatalf("species policy never stopped the run (estimate %.3f after %d questions)",
			stop.Estimate(), early.Stats.TotalQuestions)
	}
	if early.Stats.TotalQuestions >= full.Stats.TotalQuestions {
		t.Errorf("early stop asked %d questions, full run %d — no savings",
			early.Stats.TotalQuestions, full.Stats.TotalQuestions)
	}
	if early.Stats.StopEstimate < 0.7 {
		t.Errorf("final estimate %.3f below the 0.7 target", early.Stats.StopEstimate)
	}
	if early.Stats.StopUnclassified == 0 {
		t.Error("early stop reported no unclassified pool nodes")
	}
	// Stopping early may truncate exploration, so an early MSP can sit
	// below a deeper pattern the full run went on to find — but it must
	// never be spurious: each one is generalized by (or equal to) some
	// MSP of the full run.
	for _, m := range early.MSPs {
		covered := false
		for _, fm := range full.MSPs {
			if d.Sp.Leq(m, fm) {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("early-stop MSP %s is not below any full-run MSP", d2.Sp.Format(m))
		}
	}
}
