package core

import "oassis/internal/assign"

// Sink receives every recorded crowd answer and explicit classification
// event, in engine order, for durable storage (implemented by
// internal/store.Store). Appends happen on the engine's hot path and must
// be cheap; an append error does not stop the run — crowd answers are too
// expensive to discard over a disk hiccup — but is counted in
// Stats.StoreErrors so callers can surface it.
type Sink interface {
	// AppendAnswer records one crowd answer exactly as the CrowdCache
	// sees it: the question key, the member, the reported support, the
	// question kind, and whether the answer was counted toward the run's
	// question statistics.
	AppendAnswer(question, member string, support float64, kind QuestionKind, counted bool) error
	// AppendClassification records that a lattice node (by key) was
	// explicitly classified significant or insignificant.
	AppendClassification(node string, significant bool) error
}

// sinkAnswer forwards an answer to the configured store, if any.
func (e *engine) sinkAnswer(qKey, member string, sup float64, kind QuestionKind, counted bool) {
	if e.cfg.Store == nil {
		return
	}
	if err := e.cfg.Store.AppendAnswer(qKey, member, sup, kind, counted); err != nil {
		e.stats.StoreErrors++
		e.cfg.Metrics.storeError()
	}
}

// sinkClassified forwards a classification event to the configured store.
func (e *engine) sinkClassified(node assign.Assignment, significant bool) {
	if e.cfg.Store == nil {
		return
	}
	if err := e.cfg.Store.AppendClassification(node.Key(), significant); err != nil {
		e.stats.StoreErrors++
		e.cfg.Metrics.storeError()
	}
}
