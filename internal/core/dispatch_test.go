package core

import (
	"fmt"
	"testing"

	"oassis/internal/aggregate"
	"oassis/internal/assign"
	"oassis/internal/crowd"
	"oassis/internal/synth"
)

// equivalenceCase is one workload of the sequential-vs-session-vs-dispatch
// matrix. mkConfig builds a fresh Config per run (the engine mutates its
// space), and every member must be a pure function of (member, question) so
// that bit-identical results are even possible.
type equivalenceCase struct {
	name     string
	mkConfig func(t *testing.T) (Config, *assign.Space)
}

// figure1Case is the paper's running example: Table 3's two members over
// the Figure 3 restricted query.
func figure1Case() equivalenceCase {
	return equivalenceCase{
		name: "figure1",
		mkConfig: func(t *testing.T) (Config, *assign.Space) {
			s, q, sp := buildSpace(t, figure3Restricted)
			return Config{
				Space:   sp,
				Theta:   q.Support,
				Members: sampleMembers(s),
				Agg:     aggregate.NewFixedSample(2),
			}, sp
		},
	}
}

// synthCase is a generated domain with planted MSPs answered by pure
// oracles (SpecializeProb 1 specializes deterministically, PruneProb 0
// never prunes, no Rng).
func synthCase(name string, dag synth.DAGConfig, mspCount, members int) equivalenceCase {
	return equivalenceCase{
		name: name,
		mkConfig: func(t *testing.T) (Config, *assign.Space) {
			sp, err := synth.GenerateSpace(dag)
			if err != nil {
				t.Fatal(err)
			}
			planted, err := sp.PlantMSPs(synth.MSPConfig{Count: mspCount, Seed: dag.Seed})
			if err != nil {
				t.Fatal(err)
			}
			crowd := make([]crowd.Member, members)
			for i := range crowd {
				o := synth.NewOracle(fmt.Sprintf("m%d", i), sp, planted)
				o.SpecializeProb = 1
				crowd[i] = o
			}
			return Config{
				Space:               sp.Sp,
				Theta:               0.5,
				Members:             crowd,
				Agg:                 aggregate.NewFixedSample(members),
				SpecializationRatio: 0.3,
			}, sp.Sp
		},
	}
}

func equivalenceCases() []equivalenceCase {
	return []equivalenceCase{
		figure1Case(),
		synthCase("synth-wide", synth.DAGConfig{
			Width: 12, Depth: 3, XWidth: 6, XDepth: 2, Seed: 7,
		}, 5, 3),
		synthCase("synth-deep", synth.DAGConfig{
			Width: 6, Depth: 5, XWidth: 4, XDepth: 3, Seed: 11,
		}, 4, 2),
	}
}

// summarize renders a result for equality comparison: the exact MSP set,
// the valid MSP set, and the full statistics.
func summarize(sp *assign.Space, res *Result) string {
	return fmt.Sprintf("msps=%v valid=%v stats=%+v answers=%v",
		sortedNames(sp, res.MSPs), sortedNames(sp, res.ValidMSPs),
		res.Stats, res.AnswersByMember)
}

func sortedNames(sp *assign.Space, msps []assign.Assignment) []string {
	names := make(map[string]bool, len(msps))
	for _, m := range msps {
		names[sp.Format(m)] = true
	}
	out := make([]string, 0, len(names))
	for k := range names {
		out = append(out, k)
	}
	// Insertion sort keeps the helper dependency-free.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestEquivalenceMatrix verifies the PR's core promise: the batch engine,
// the step-driven session, and the concurrent dispatcher at parallelism 1,
// 4 and 16 produce identical MSPs and statistics on the Figure 1 sample and
// two synthetic domains.
func TestEquivalenceMatrix(t *testing.T) {
	for _, tc := range equivalenceCases() {
		t.Run(tc.name, func(t *testing.T) {
			cfg, sp := tc.mkConfig(t)
			want := summarize(sp, Run(cfg))

			// Session driven strictly sequentially (blocked question only).
			cfg2, sp2 := tc.mkConfig(t)
			byID := make(map[string]crowd.Member)
			var ids []string
			for _, m := range cfg2.Members {
				byID[m.ID()] = m
				ids = append(ids, m.ID())
			}
			sess := NewSession(cfg2, ids)
			for qs := sess.Next(); qs != nil; qs = sess.Next() {
				q := qs[0]
				m := byID[q.Member]
				var a Answer
				switch q.Kind {
				case KindSpecialization:
					r := m.ChooseSpecialization(q.Choices)
					a = Answer{Support: r.Support, Choice: r.Choice, Chosen: r.Chosen, Declined: r.Declined}
				case KindPruning:
					if term, ok := m.Irrelevant(q.Terms); ok {
						for i, cand := range q.Terms {
							if cand == term {
								a = AnswerIrrelevant(i)
								break
							}
						}
					}
				default:
					a = AnswerSupport(m.Concrete(q.Facts))
				}
				if err := sess.Submit(q.ID, a); err != nil {
					t.Fatalf("submit: %v", err)
				}
			}
			if got := summarize(sp2, sess.Close()); got != want {
				t.Errorf("session loop diverged:\n got %s\nwant %s", got, want)
			}
			for _, p := range []int{1, 4, 16} {
				cfg3, sp3 := tc.mkConfig(t)
				res, ds := RunConcurrent(cfg3, p, 42)
				if got := summarize(sp3, res); got != want {
					t.Errorf("dispatch P=%d diverged:\n got %s\nwant %s", p, got, want)
				}
				if p == 1 && ds.Wasted != 0 {
					t.Errorf("dispatch P=1 wasted %d answers; sequential driving must not speculate", ds.Wasted)
				}
				if ds.MaxInFlight > p {
					t.Errorf("dispatch P=%d peaked at %d in flight", p, ds.MaxInFlight)
				}
			}
		})
	}
}

// TestDispatchSeedOnlyAffectsWaste reruns the dispatcher under different
// launch-order seeds: the mined result must not move.
func TestDispatchSeedOnlyAffectsWaste(t *testing.T) {
	tc := figure1Case()
	var want string
	for i, seed := range []int64{1, 99, 12345} {
		cfg, sp := tc.mkConfig(t)
		res, _ := RunConcurrent(cfg, 4, seed)
		got := summarize(sp, res)
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Errorf("seed %d changed the result:\n got %s\nwant %s", seed, got, want)
		}
	}
}
