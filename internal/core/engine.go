package core

import (
	"math/rand"
	"sort"

	"oassis/internal/aggregate"
	"oassis/internal/assign"
	"oassis/internal/crowd"
	"oassis/internal/fact"
	"oassis/internal/obs"
	"oassis/internal/plan"
	"oassis/internal/vocab"
)

// Config parameterizes a mining run.
type Config struct {
	Space *assign.Space
	Theta float64

	// Members is the crowd. A single member with a FixedSample(1)
	// aggregator reproduces the single-user vertical algorithm of §4.1.
	Members []crowd.Member

	// Agg decides overall significance; nil means aggregate.NewFixedSample(1).
	Agg aggregate.Aggregator

	// SpecializationRatio is the probability of posing a specialization
	// question instead of concrete questions while descending (§4.1, §6.4).
	SpecializationRatio float64
	// MaxSpecializationCandidates bounds the choices offered per
	// specialization question (the UI's auto-completion list).
	MaxSpecializationCandidates int

	// EnablePruning offers user-guided pruning clicks to members (§6.2).
	EnablePruning bool

	// MaxQuestions is a safety budget on counted answers (0 = unlimited).
	MaxQuestions int
	// MaxQuestionsPerMember ends a member's participation after this many
	// counted answers (0 = unlimited); members may leave at any point
	// (§4.2, item 1).
	MaxQuestionsPerMember int

	// TrackTimeline records a Stats.Timeline point after every counted
	// answer (needed for the pace-of-collection figures).
	TrackTimeline bool

	// Prime is a CrowdCache from an earlier run of the same query: answers
	// found there are reused instead of re-asking the member, enabling the
	// threshold-replay methodology of §6.3 (crowd answers are independent
	// of the threshold, so a query can be re-evaluated for a different
	// threshold mostly from cache). Used primed answers are counted, as in
	// the paper's statistics; questions the original run never asked fall
	// through to the live member.
	Prime *Cache

	// Store, when non-nil, durably records every answer and explicit
	// classification event as the run produces them (see internal/store).
	// Together with Prime it makes runs crash-recoverable: a restarted
	// engine primed from the store's recovered answers replays them
	// instead of re-asking the crowd, and the store's idempotent appends
	// absorb the replay.
	Store Sink

	// MaxMSPs, when positive, stops the run as soon as that many MSPs are
	// confirmed (significant with every successor classified
	// insignificant) — the top-k extension sketched in §8 of the paper.
	// Incremental evaluation returns the first-discovered answers early.
	MaxMSPs int

	// Stop, when non-nil, is the streaming stop-condition estimator the
	// run consults between questions (see aggregate.StopPolicy): it
	// observes every recorded answer and every member's maximal affirmed
	// pattern, may end the run once its estimate crosses its target
	// (SpeciesStop), and may grade members online (AccuracyWeightedStop,
	// whose spammer flags exclude members like the consistency filter
	// does). nil — and the inert aggregate.ThresholdStop{} — reproduce
	// the paper's ask-until-settled behavior bit-identically.
	Stop aggregate.StopPolicy

	// SpamMaxViolations, when positive, enables the §4.2 crowd-member
	// selection: a member whose answers violate support monotonicity (a
	// more specific fact-set reported more frequent than a more general
	// one, beyond SpamTolerance) more than this many times is excluded
	// from further questions and their answers are ignored by the
	// aggregator.
	SpamMaxViolations int
	// SpamTolerance is the slack allowed before an answer pair counts as a
	// violation (one answer-scale step, 0.25, is a good default).
	SpamTolerance float64

	// PanelSpeculation, when positive, widens the step-driven Session's
	// speculation: beyond the current round's node question and the mirror
	// of the blocked question, Next also surfaces up to this many of the
	// round node's immediate successors per member — the questions the
	// engine asks next when the member descends. Batching layers
	// (internal/panel, the serving tier's panel route) use it to fill
	// per-member panels, so one round trip serves a whole descent chain.
	// Like all speculation, it affects wall clock and waste, never the
	// mined result; Run and sequential sessions ignore it.
	PanelSpeculation int

	// Ordering orders the crowd's questions: among the unclassified
	// generated lattice nodes, the one the ordering ranks best is asked
	// about next. A tier-one plan.Policy (comparator) keeps the engine's
	// original allocation-free scan; a tier-two plan.SelectorOrdering
	// picks through a read-only candidate view over the interned node
	// store. nil means plan.PaperOrder{}, the paper's §4 smallest-first
	// order, which is bit-identical to the engine's original hard-coded
	// selection.
	Ordering plan.Ordering

	// Rng drives the specialization-ratio coin flips; nil disables
	// specialization questions unless the ratio is 1.
	Rng *rand.Rand

	// Canceled, when non-nil, is polled on the question hot path; once it
	// reports true the run stops asking questions, discards any answer
	// still in flight, and returns the partial result. It is how
	// Session.Close and ExecContext implement deadline/cancel.
	Canceled func() bool

	// Metrics, when non-nil, receives engine and session instrumentation
	// (questions issued/answered/retired, in-flight gauge, answer latency,
	// rounds, generated nodes). Purely observational: the mined result is
	// bit-identical with or without it.
	Metrics *Metrics

	// Tracer, when non-nil, receives span start/end events: one span per
	// main-loop round and one per issued question, annotated with question
	// IDs, members, and phases. Implementations must be concurrency-safe
	// and non-blocking; like Metrics, tracing never perturbs the run.
	Tracer obs.Tracer
}

// Result is the outcome of a mining run.
type Result struct {
	// MSPs is the set M of Algorithm 1: the maximal significant patterns,
	// possibly including assignments that are not valid w.r.t. the query.
	MSPs []assign.Assignment
	// ValidMSPs is M ∩ 𝒜valid — the query output (SELECT without ALL).
	ValidMSPs []assign.Assignment
	Stats     Stats
	Cache     *Cache

	// MSPQuestion maps each MSP (by key) to the number of counted answers
	// at the moment it was first classified significant — the basis of the
	// pace-of-collection curves.
	MSPQuestion map[string]int

	// InsigMinimal is the number of minimal insignificant anchors (the
	// |msp⁻| quantity of Propositions 4.7/4.8).
	InsigMinimal int

	// AnswersByMember counts each member's counted answers — the data
	// behind the paper's top-20 contributors statistics page (§6.2).
	AnswersByMember map[string]int
}

// engineHooks are observation points the step-driven Session uses to
// mirror the engine's scheduling state (which lattice node the current
// round classifies, and whose turn it is) without the engine knowing about
// sessions. Both are invoked on the engine's own goroutine; Run leaves
// them unset.
type engineHooks struct {
	// onRound fires when the main loop picks the next unclassified node,
	// with the node's instantiated question.
	onRound func(node assign.Assignment, fs fact.Set, qKey string)
	// onTurn fires when the member at index i gets their turn at the
	// current round's node.
	onTurn func(i int)
}

// engine carries the run state of the vertical multi-user algorithm. All
// per-node state is flat, indexed by the nodeStore's dense ids, which the
// classifier shares: one key-string map probe interns a node, everything
// after that is slice indexing.
type engine struct {
	cfg   Config
	hooks engineHooks
	sp    *assign.Space
	agg   aggregate.Aggregator
	ns    *nodeStore
	cls   *classifier

	// ordering is the resolved question ordering; exactly one of policy
	// (tier one, pairwise comparator on the allocation-free scan) and
	// selector (tier two, stateful pick over a candidate view) is set.
	ordering plan.Ordering
	policy   plan.Policy
	selector plan.Selector
	view     candidateView // reusable tier-two view buffers

	inPool  []bool   // by id: node belongs to the generated pool
	poolIDs []uint32 // pool nodes in generation order

	memberAns  map[string]map[string]float64 // member -> question key -> answer
	pruned     map[string][]vocab.Term       // member -> pruned terms
	stats      Stats
	cache      *Cache
	uniqueQ    map[string]struct{}
	mspLog     map[string]int // chain maxima -> question count at discovery
	newAnswers int            // answers recorded in the current round

	classifiedRows []bool // per ValidBase row, for the timeline
	classifiedN    int

	expanded []bool   // by id: successors were generated
	toExpand []uint32 // significant nodes awaiting expansion

	succs [][]assign.Assignment // by id: successor memo (noSuccs when empty)
	preds [][]assign.Assignment // by id: predecessor memo, tier-two only

	inst   []instEntry // by id: instantiation + question key memo
	instOK []bool

	answersBy map[string]int // counted answers per member (§6.2 stats page)
	budgets   []int          // per-member remaining answers (-1 = unlimited)

	consistency *aggregate.ConsistencyTracker // §4.2 spammer filter (optional)
	banned      map[string]bool               // members excluded as inconsistent

	stop  aggregate.StopPolicy     // optional stop-condition estimator
	stopW aggregate.MemberWeighter // stop's member-grading view, if any
}

type instEntry struct {
	fs   fact.Set
	qKey string
}

// growNode extends the engine's flat per-node state to cover id.
func (e *engine) growNode(id uint32) {
	for uint32(len(e.inPool)) <= id {
		e.inPool = append(e.inPool, false)
		e.expanded = append(e.expanded, false)
		e.succs = append(e.succs, nil)
		e.preds = append(e.preds, nil)
		e.inst = append(e.inst, instEntry{})
		e.instOK = append(e.instOK, false)
	}
}

// instantiate memoizes the node's fact-set question.
func (e *engine) instantiate(node assign.Assignment) (fact.Set, string) {
	id := e.ns.intern(node)
	e.growNode(id)
	if e.instOK[id] {
		ent := &e.inst[id]
		return ent.fs, ent.qKey
	}
	fs := e.sp.Instantiate(node)
	ent := instEntry{fs: fs, qKey: fs.Key()}
	e.inst[id] = ent
	e.instOK[id] = true
	return ent.fs, ent.qKey
}

// noSuccs is the memo sentinel distinguishing "no successors" from "not yet
// generated".
var noSuccs = []assign.Assignment{}

// succsOf memoizes successor generation per node. Memoization is sound
// because the successor relation is fixed for the whole run: the space, its
// tables and MoreCandidates are all set before the engine starts.
func (e *engine) succsOf(id uint32) []assign.Assignment {
	e.growNode(id)
	if s := e.succs[id]; s != nil {
		return s
	}
	s := e.sp.Successors(e.ns.node(id))
	if s == nil {
		s = noSuccs
	}
	e.succs[id] = s
	return s
}

// predsOf memoizes predecessor generation per node (sound for the same
// reason as succsOf: the lattice is fixed for the whole run). Only the
// tier-two candidate view walks predecessors, so tier-one runs never pay
// for the memo.
func (e *engine) predsOf(id uint32) []assign.Assignment {
	e.growNode(id)
	if p := e.preds[id]; p != nil {
		return p
	}
	p := e.sp.Predecessors(e.ns.node(id))
	if p == nil {
		p = noSuccs
	}
	e.preds[id] = p
	return p
}

// Run executes the vertical algorithm (Algorithm 1 with the multi-user
// modifications of §4.2) and returns the mined MSPs.
func Run(cfg Config) *Result {
	e := newEngine(cfg)
	e.seed()
	e.mainLoop()
	return e.result()
}

func newEngine(cfg Config) *engine {
	agg := cfg.Agg
	if agg == nil {
		agg = aggregate.NewFixedSample(1)
	}
	ordering := cfg.Ordering
	if ordering == nil {
		ordering = plan.PaperOrder{}
	}
	ns := newNodeStore()
	e := &engine{
		cfg:            cfg,
		sp:             cfg.Space,
		agg:            agg,
		ns:             ns,
		cls:            newClassifierOn(cfg.Space, ns),
		ordering:       ordering,
		memberAns:      make(map[string]map[string]float64),
		pruned:         make(map[string][]vocab.Term),
		cache:          NewCacheSized(len(cfg.Members)),
		uniqueQ:        make(map[string]struct{}),
		mspLog:         make(map[string]int),
		classifiedRows: make([]bool, len(cfg.Space.ValidBase)),
		answersBy:      make(map[string]int),
	}
	// Route the ordering to its tier. The comparator check comes first:
	// the built-in tier-one policies keep the original selection loop,
	// proven bit-identical and allocation-free.
	switch o := ordering.(type) {
	case plan.Policy:
		e.policy = o
	case plan.SelectorOrdering:
		e.selector = o.NewSelector()
	default:
		e.policy = plan.PaperOrder{}
	}
	// Every node that turns significant — explicitly or by inference — is
	// scheduled for lattice expansion (Algorithm 1 iterates over all of 𝒜,
	// so successors of inferred-significant nodes must be generated too).
	e.cls.onSignificant = func(id uint32) {
		e.toExpand = append(e.toExpand, id)
	}
	if cfg.SpamMaxViolations > 0 {
		e.consistency = aggregate.NewConsistencyTracker(cfg.Space.Voc, cfg.SpamTolerance)
		e.banned = make(map[string]bool)
	}
	if cfg.Stop != nil {
		e.stop = cfg.Stop
		if w, ok := cfg.Stop.(aggregate.MemberWeighter); ok {
			e.stopW = w
			if e.banned == nil {
				e.banned = make(map[string]bool)
			}
		}
	}
	return e
}

// drainExpansions expands every scheduled significant node in one batched
// pass: the queue is walked front to back, each node's successors come from
// the per-node memo (generated into the Space's shared scratch and arenas on
// first need), and each generated candidate costs a single intern probe in
// addNode. Expansion can schedule more nodes (newly registered significant
// successors), so the walk naturally drains the queue to a fixpoint.
func (e *engine) drainExpansions() {
	for i := 0; i < len(e.toExpand); i++ {
		e.expandID(e.toExpand[i])
	}
	e.toExpand = e.toExpand[:0]
}

func (e *engine) seed() {
	for _, m := range e.sp.Minimal() {
		e.addNode(m)
	}
}

func (e *engine) addNode(a assign.Assignment) uint32 {
	id := e.ns.intern(a)
	e.growNode(id)
	if e.inPool[id] {
		return id
	}
	e.inPool[id] = true
	e.poolIDs = append(e.poolIDs, id)
	e.stats.GeneratedNodes++
	e.cfg.Metrics.nodeGenerated()
	e.cls.registerID(id) // track its status incrementally from now on
	return id
}

// expand generates the successors of a significant node into the pool.
func (e *engine) expand(a assign.Assignment) {
	e.expandID(e.ns.intern(a))
}

func (e *engine) expandID(id uint32) {
	e.growNode(id)
	if e.expanded[id] {
		return
	}
	e.expanded[id] = true
	for _, s := range e.succsOf(id) {
		e.addNode(s)
	}
}

// pickMinimalUnclassified returns the unclassified generated node the
// ordering ranks first, or ok=false when every generated node is
// classified. Tier-two selector orderings pick through a candidate view
// (see pickSelected); tier-one policies scan the classifier's
// incrementally-maintained unclassified set and keep the best pool node
// under the policy's comparison — the original allocation-free loop.
// Under the default plan.PaperOrder this is the (size, key)-least node —
// a node of minimal size is minimal in the order up to rare multi-cover
// DAG absorptions, which cost at most a few extra questions, never
// correctness.
func (e *engine) pickMinimalUnclassified() (assign.Assignment, bool) {
	if e.selector != nil {
		return e.pickSelected(false)
	}
	best := -1
	bestKey := ""
	bestSize := -1
	for id := range e.cls.unclassified {
		if int(id) >= len(e.inPool) || !e.inPool[id] {
			continue
		}
		n := e.ns.node(id)
		size := n.Size()
		key := n.Key()
		if bestSize < 0 || e.policy.Better(key, size, bestKey, bestSize) {
			best, bestKey, bestSize = int(id), key, size
		}
	}
	if best < 0 {
		return assign.Assignment{}, false
	}
	return e.ns.node(uint32(best)), true
}

func (e *engine) budgetLeft() bool {
	if e.canceled() {
		return false
	}
	if e.stop != nil && e.stop.ShouldStop() {
		e.stats.StoppedEarly = true
		return false
	}
	return e.cfg.MaxQuestions == 0 || e.stats.TotalQuestions < e.cfg.MaxQuestions
}

// canceled reports whether the run was canceled from outside.
func (e *engine) canceled() bool {
	return e.cfg.Canceled != nil && e.cfg.Canceled()
}

// countAnswer books one counted crowd answer.
func (e *engine) countAnswer(kind QuestionKind) {
	e.stats.TotalQuestions++
	e.newAnswers++
	e.cfg.Metrics.answerCounted(kind)
	switch kind {
	case KindConcrete:
		e.stats.Concrete++
	case KindSpecialization:
		e.stats.Specialization++
	case KindNoneOfThese:
		e.stats.NoneOfThese++
	case KindPruning:
		e.stats.Pruning++
	}
	if e.cfg.TrackTimeline {
		e.stats.Timeline = append(e.stats.Timeline, Point{
			Questions:       e.stats.TotalQuestions,
			ClassifiedValid: e.classifiedN,
			MSPsFound:       len(e.mspLog),
		})
	}
}

// pruneHit reports whether the member has marked a term generalizing (or
// equal to) one of fs's terms as irrelevant.
func (e *engine) pruneHit(member string, fs fact.Set) bool {
	for _, t := range e.pruned[member] {
		for _, f := range fs {
			if e.sp.Voc.Leq(t, f.S) || e.sp.Voc.Leq(t, f.R) || e.sp.Voc.Leq(t, f.O) {
				return true
			}
		}
	}
	return false
}

// recordAnswer stores an answer in the member cache, the CrowdCache and the
// aggregator, then updates the node classification from the verdict.
func (e *engine) recordAnswer(node assign.Assignment, qKey string, member string,
	sup float64, kind QuestionKind, counted bool) {
	ma := e.memberAns[member]
	if ma == nil {
		ma = make(map[string]float64)
		e.memberAns[member] = ma
	}
	if _, dup := ma[qKey]; !dup {
		ma[qKey] = sup
		e.cache.Record(qKey, member, sup, kind)
		e.sinkAnswer(qKey, member, sup, kind, counted)
		e.agg.Record(qKey, member, sup)
		e.observeStopAnswer(qKey, member, sup)
		if counted {
			e.uniqueQ[qKey] = struct{}{}
			e.countAnswer(kind)
			e.answersBy[member]++
		} else {
			e.stats.FreeAnswers++
			e.cfg.Metrics.freeAnswer()
		}
		if e.consistency != nil && !e.banned[member] {
			fs, _ := e.instantiate(node)
			e.consistency.Record(member, fs, sup)
			if e.consistency.Violations(member) > e.cfg.SpamMaxViolations {
				e.banned[member] = true
				e.stats.BannedMembers++
			}
		}
	}
	e.applyVerdict(node, qKey)
}

// observeStopAnswer feeds a recorded answer to the stop policy and applies
// any fresh spammer flag: a flagged member joins the banned set, so
// memberActive and session eligibility exclude them exactly like the
// consistency filter's bans.
func (e *engine) observeStopAnswer(qKey, member string, sup float64) {
	if e.stop == nil {
		return
	}
	e.stop.ObserveAnswer(qKey, member, sup)
	e.cfg.Metrics.stopEstimate(e.stop.Name(), e.stop.Estimate())
	if e.stopW != nil && !e.banned[member] && e.stopW.Flagged(member) {
		e.banned[member] = true
		e.stats.SpamFlagged++
		e.cfg.Metrics.spamFlagged(e.stop.Name())
	}
}

// observeStopDiscovery feeds the end of a member's descent chain — their
// maximal affirmed pattern — to the stop policy's species stream.
func (e *engine) observeStopDiscovery(node assign.Assignment, member string) {
	if e.stop == nil {
		return
	}
	e.stop.ObserveDiscovery(node.Key(), member)
	e.cfg.Metrics.stopEstimate(e.stop.Name(), e.stop.Estimate())
}

// leaver is implemented by members that can end their participation
// mid-run (interactive sessions, §4.2 item 1).
type leaver interface{ Left() bool }

// memberActive reports whether a member may still be asked questions.
func (e *engine) memberActive(m crowd.Member) bool {
	if l, ok := m.(leaver); ok && l.Left() {
		return false
	}
	return e.banned == nil || !e.banned[m.ID()]
}

// confirmedMSPs counts the significant anchors whose successors are all
// classified (hence confirmed maximal) — the top-k early-stop condition.
func (e *engine) confirmedMSPs() int {
	n := 0
	for _, a := range e.cls.maximalSignificant() {
		confirmed := true
		for _, s := range e.succsOf(e.ns.intern(a)) {
			if e.cls.status(s) == Unclassified {
				confirmed = false
				break
			}
		}
		if confirmed {
			n++
		}
	}
	return n
}

func (e *engine) applyVerdict(node assign.Assignment, qKey string) {
	switch e.agg.Verdict(qKey, e.cfg.Theta) {
	case aggregate.Significant:
		if e.cls.status(node) != Significant {
			e.cls.markSignificant(node)
			e.sinkClassified(node, true)
			e.recordChainMax(node) // discovery time for the pace curves
			e.onClassified(node, true)
			e.expand(node)
		}
	case aggregate.Insignificant:
		if e.cls.status(node) != Insignificant {
			e.cls.markInsignificant(node)
			e.sinkClassified(node, false)
			e.onClassified(node, false)
		}
	}
}

// onClassified updates the classified-valid-rows counter for the timeline.
func (e *engine) onClassified(a assign.Assignment, significant bool) {
	for i, row := range e.sp.ValidBase {
		if e.classifiedRows[i] {
			continue
		}
		r := e.sp.Singleton(row...)
		if significant && e.sp.Leq(r, a) || !significant && e.sp.Leq(a, r) {
			e.classifiedRows[i] = true
			e.classifiedN++
		}
	}
}

// memberSupport obtains the member's answer for node's question, via the
// member answer cache, pruning inference, a fresh pruning click, or a
// concrete question. It reports the support and whether the member is done
// (budget exhausted).
func (e *engine) memberSupport(m crowd.Member, node assign.Assignment) float64 {
	fs, qKey := e.instantiate(node)
	if s, ok := e.memberAns[m.ID()][qKey]; ok {
		e.stats.FreeAnswers++
		e.cfg.Metrics.freeAnswer()
		e.applyVerdict(node, qKey)
		return s
	}
	if e.pruneHit(m.ID(), fs) {
		e.recordAnswer(node, qKey, m.ID(), 0, KindConcrete, false)
		return 0
	}
	if e.cfg.Prime != nil {
		if s, ok := e.cfg.Prime.Lookup(qKey, m.ID()); ok {
			e.stats.PrimedAnswers++
			e.cfg.Metrics.primedAnswer()
			e.recordAnswer(node, qKey, m.ID(), s, KindConcrete, true)
			return s
		}
	}
	if e.cfg.EnablePruning {
		if t, ok := m.Irrelevant(termsOf(fs)); ok {
			if e.canceled() {
				return 0
			}
			e.pruned[m.ID()] = append(e.pruned[m.ID()], t)
			e.recordAnswer(node, qKey, m.ID(), 0, KindPruning, true)
			return 0
		}
	}
	s := m.Concrete(fs)
	if e.canceled() {
		// Canceled while the question was in flight: discard the answer so
		// the recorded state is a prefix of the uncanceled run's.
		return 0
	}
	e.recordAnswer(node, qKey, m.ID(), s, KindConcrete, true)
	return s
}

func termsOf(fs fact.Set) []vocab.Term {
	seen := map[vocab.Term]struct{}{}
	var out []vocab.Term
	for _, f := range fs {
		for _, t := range []vocab.Term{f.S, f.R, f.O} {
			if t == vocab.Any {
				continue
			}
			if _, ok := seen[t]; !ok {
				seen[t] = struct{}{}
				out = append(out, t)
			}
		}
	}
	return out
}

// ask implements the ask(·) function of Algorithm 1 with the §4.2
// modification: it returns true iff the member's own support reaches the
// threshold AND the node is not overall insignificant, so that members are
// not sent down branches that are already globally dead.
func (e *engine) ask(m crowd.Member, node assign.Assignment) bool {
	s := e.memberSupport(m, node)
	return s >= e.cfg.Theta-aggregate.Eps && e.cls.status(node) != Insignificant
}

// unclassifiedSuccessors lists node's immediate successors that are still
// unclassified, generating them into the pool.
func (e *engine) unclassifiedSuccessors(node assign.Assignment) []assign.Assignment {
	var out []assign.Assignment
	for _, s := range e.succsOf(e.ns.intern(node)) {
		if e.cls.status(s) == Unclassified {
			e.addNode(s)
			out = append(out, s)
		}
	}
	return out
}

// recordChainMax records node as the maximum of a member's descent chain
// (line 8 of Algorithm 1).
func (e *engine) recordChainMax(node assign.Assignment) {
	k := node.Key()
	if _, ok := e.mspLog[k]; !ok {
		e.mspLog[k] = e.stats.TotalQuestions
	}
}

// specializeCoin decides whether to pose a specialization question.
func (e *engine) specializeCoin() bool {
	r := e.cfg.SpecializationRatio
	if r >= 1 {
		return true
	}
	if r <= 0 || e.cfg.Rng == nil {
		return false
	}
	return e.cfg.Rng.Float64() < r
}

// descend runs the inner loop of Algorithm 1 for one member from a node the
// member answered positively.
func (e *engine) descend(m crowd.Member, node assign.Assignment, budget *int) {
	for e.budgetLeft() && *budget != 0 {
		succs := e.unclassifiedSuccessors(node)
		if len(succs) == 0 {
			break
		}
		if e.specializeCoin() {
			next, done := e.askSpecialization(m, node, succs, budget)
			if done {
				node = next
				continue
			}
			break
		}
		advanced := false
		for _, s := range succs {
			if *budget == 0 || !e.budgetLeft() {
				break
			}
			if e.ask(m, s) {
				e.decBudget(budget)
				node = s
				advanced = true
				break
			}
			e.decBudget(budget)
		}
		if !advanced {
			break
		}
	}
	e.recordChainMax(node)
	e.observeStopDiscovery(node, m.ID())
}

// decBudget decrements a member's per-question budget if bounded.
func (e *engine) decBudget(budget *int) {
	if *budget > 0 {
		*budget--
	}
}

// askSpecialization poses one specialization question over the candidate
// successors. It returns the chosen successor and true when the member named
// a significant specialization to continue from.
func (e *engine) askSpecialization(m crowd.Member, node assign.Assignment,
	succs []assign.Assignment, budget *int) (assign.Assignment, bool) {
	max := e.cfg.MaxSpecializationCandidates
	if max <= 0 {
		max = 10
	}
	if len(succs) > max {
		succs = succs[:max]
	}
	sets := make([]fact.Set, len(succs))
	for i, s := range succs {
		sets[i], _ = e.instantiate(s)
	}
	r := m.ChooseSpecialization(sets)
	if e.canceled() {
		// The run was canceled while the question was in flight: discard
		// the answer so cancellation points never perturb recorded state.
		return node, false
	}
	if r.Declined {
		// Fall back to concrete questions on the first candidate.
		if e.ask(m, succs[0]) {
			e.decBudget(budget)
			return succs[0], true
		}
		e.decBudget(budget)
		return node, false
	}
	if !r.Chosen {
		// "None of these": support 0 for every offered candidate at once,
		// one counted answer (§6.2).
		e.countAnswer(KindNoneOfThese)
		e.answersBy[m.ID()]++
		e.decBudget(budget)
		for _, s := range succs {
			_, qk := e.instantiate(s)
			e.recordAnswer(s, qk, m.ID(), 0, KindNoneOfThese, false)
		}
		return node, false
	}
	chosen := succs[r.Choice]
	qKey := sets[r.Choice].Key()
	e.uniqueQ[qKey] = struct{}{}
	e.countAnswer(KindSpecialization)
	e.answersBy[m.ID()]++
	e.decBudget(budget)
	e.recordAnswer(chosen, qKey, m.ID(), r.Support, KindSpecialization, false)
	if r.Support >= e.cfg.Theta-aggregate.Eps && e.cls.status(chosen) != Insignificant {
		return chosen, true
	}
	return node, false
}

// mainLoop drives the per-member outer loops until every generated node is
// classified or the crowd/budget is exhausted.
func (e *engine) mainLoop() {
	e.budgets = make([]int, len(e.cfg.Members))
	budgets := e.budgets
	for i := range budgets {
		if e.cfg.MaxQuestionsPerMember > 0 {
			budgets[i] = e.cfg.MaxQuestionsPerMember
		} else {
			budgets[i] = -1
		}
	}
	endRound := func() {}
	defer func() { endRound() }()
	for e.budgetLeft() {
		e.drainExpansions()
		node, ok := e.pickMinimalUnclassified()
		if !ok {
			return // every generated node classified
		}
		if e.cfg.MaxMSPs > 0 && e.confirmedMSPs() >= e.cfg.MaxMSPs {
			return // top-k extension: enough answers confirmed
		}
		e.cfg.Metrics.roundStarted()
		endRound()
		endRound = obs.Begin(e.cfg.Tracer, "round", obs.A("node", node.Key()))
		if e.hooks.onRound != nil {
			fs, qKey := e.instantiate(node)
			e.hooks.onRound(node, fs, qKey)
		}
		e.newAnswers = 0
		for i, m := range e.cfg.Members {
			if e.hooks.onTurn != nil {
				e.hooks.onTurn(i)
			}
			if budgets[i] == 0 || !e.budgetLeft() || !e.memberActive(m) {
				continue
			}
			if e.cls.status(node) != Unclassified {
				break
			}
			if e.ask(m, node) {
				e.decBudget(&budgets[i])
				e.descend(m, node, &budgets[i])
			} else {
				e.decBudget(&budgets[i])
			}
		}
		if e.cls.status(node) == Unclassified {
			if e.newAnswers == 0 {
				// The remaining crowd cannot decide this node: force a
				// verdict from the current mean (crowd exhausted).
				e.forceClassify(node)
			}
		}
	}
}

// forceClassify decides a node from the aggregator's current mean.
func (e *engine) forceClassify(node assign.Assignment) {
	_, qKey := e.instantiate(node)
	e.stats.ForcedClassifications++
	if e.agg.Mean(qKey) >= e.cfg.Theta-aggregate.Eps && e.agg.Answers(qKey) > 0 {
		e.cls.markSignificant(node)
		e.sinkClassified(node, true)
		e.recordChainMax(node)
		e.onClassified(node, true)
		e.expand(node)
	} else {
		e.cls.markInsignificant(node)
		e.sinkClassified(node, false)
		e.onClassified(node, false)
	}
}

// settleFrontier force-classifies, in policy order and without asking a
// single further question, every unclassified pool node that already
// holds recorded answers: an early stop keeps the evidence it paid for
// instead of discarding partially-sampled nodes. Nodes with no answers at
// all stay unclassified — there is no evidence to settle them with.
func (e *engine) settleFrontier() {
	for {
		e.drainExpansions()
		if e.selector != nil {
			node, ok := e.pickSelected(true)
			if !ok {
				return
			}
			e.stats.StopSettled++
			e.forceClassify(node)
			continue
		}
		best := -1
		bestKey := ""
		bestSize := -1
		for id := range e.cls.unclassified {
			if int(id) >= len(e.inPool) || !e.inPool[id] {
				continue
			}
			n := e.ns.node(id)
			_, qKey := e.instantiate(n)
			if e.agg.Answers(qKey) == 0 {
				continue
			}
			size := n.Size()
			key := n.Key()
			if bestSize < 0 || e.policy.Better(key, size, bestKey, bestSize) {
				best, bestKey, bestSize = int(id), key, size
			}
		}
		if best < 0 {
			return
		}
		e.stats.StopSettled++
		e.forceClassify(e.ns.node(uint32(best)))
	}
}

// result finalizes the run.
func (e *engine) result() *Result {
	e.stats.UniqueQuestions = len(e.uniqueQ)
	if e.stop != nil {
		e.stats.StopEstimate = e.stop.Estimate()
		if e.stats.StoppedEarly {
			e.settleFrontier()
			// Pool nodes still unclassified after settling never received
			// an answer: each would have cost at least one more crowd
			// answer, so the count is a lower bound on the questions saved.
			saved := 0
			for id := range e.cls.unclassified {
				if int(id) < len(e.inPool) && e.inPool[id] {
					saved++
				}
			}
			e.stats.StopUnclassified = saved
			e.cfg.Metrics.stopSaved(e.stop.Name(), saved)
		}
	}
	msps := e.cls.maximalSignificant()
	sort.Slice(msps, func(i, j int) bool { return msps[i].Key() < msps[j].Key() })
	var valid []assign.Assignment
	for _, m := range msps {
		if e.sp.IsValid(m) {
			valid = append(valid, m)
		}
	}
	mspQ := make(map[string]int, len(msps))
	for _, m := range msps {
		if q, ok := e.mspLog[m.Key()]; ok {
			mspQ[m.Key()] = q
		} else {
			mspQ[m.Key()] = e.stats.TotalQuestions
		}
	}
	answersBy := make(map[string]int, len(e.answersBy))
	for m, n := range e.answersBy {
		answersBy[m] = n
	}
	return &Result{
		MSPs:            msps,
		ValidMSPs:       valid,
		Stats:           e.stats,
		Cache:           e.cache,
		MSPQuestion:     mspQ,
		InsigMinimal:    len(e.cls.insig),
		AnswersByMember: answersBy,
	}
}

// AllSignificant enumerates the significant valid assignments implied by a
// result (the SELECT ... ALL form): the valid base assignments below some
// MSP, plus the valid multiplicity nodes among the MSPs themselves and their
// recorded predecessors. It is computed from the MSP set by downward
// closure over the valid base rows.
func AllSignificant(sp *assign.Space, msps []assign.Assignment) []assign.Assignment {
	var out []assign.Assignment
	seen := map[string]struct{}{}
	add := func(a assign.Assignment) {
		k := a.Key()
		if _, dup := seen[k]; dup {
			return
		}
		seen[k] = struct{}{}
		out = append(out, a)
	}
	for _, row := range sp.ValidBase {
		r := sp.Singleton(row...)
		for _, m := range msps {
			if sp.Leq(r, m) {
				add(r)
				break
			}
		}
	}
	for _, m := range msps {
		if sp.IsValid(m) {
			add(m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}
