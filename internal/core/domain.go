package core

import (
	"fmt"

	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/plan"
	"oassis/internal/vocab"
)

// Domain is the shared read-only context many concurrent sessions
// execute against: a frozen vocabulary, its ontology, the domain
// fingerprint (hashed once, at construction) and a per-domain plan
// cache. Sessions reference a Domain instead of owning vocabulary and
// ontology copies; everything reachable from it is immutable or
// internally synchronized, so no external locking is needed.
type Domain struct {
	Voc  *vocab.Vocabulary
	Onto *ontology.Ontology

	fp    string
	plans *plan.Cache
}

// NewDomain wraps a frozen vocabulary and its ontology as a shared
// domain. The vocabulary must be frozen — an unfrozen one could drift
// under running sessions and invalidate every cached plan.
func NewDomain(voc *vocab.Vocabulary, onto *ontology.Ontology) (*Domain, error) {
	if !voc.Frozen() {
		return nil, fmt.Errorf("core: domain requires a frozen vocabulary")
	}
	return &Domain{
		Voc:   voc,
		Onto:  onto,
		fp:    plan.DomainFingerprint(voc, onto),
		plans: plan.NewCache(),
	}, nil
}

// Fingerprint returns the content address of the domain
// (plan.DomainFingerprint, computed once at construction).
func (d *Domain) Fingerprint() string { return d.fp }

// Plans returns the domain's shared plan cache.
func (d *Domain) Plans() *plan.Cache { return d.plans }

// Compile returns the compiled plan for q over this domain, consulting
// the plan cache. The boolean reports a cache hit; metrics m may be nil.
func (d *Domain) Compile(q *oassisql.Query, m *plan.CacheMetrics) (*plan.Plan, bool, error) {
	return d.plans.GetOrCompile(q.String(), d.fp, m, func() (*plan.Plan, error) {
		return plan.Compile(d.Voc, d.Onto, q, d.fp)
	})
}

// CompileStop returns the stop-policy variant of the compiled plan for q
// over this domain: the base plan compiles (or hits) as usual, then the
// variant derives through the same cache. The empty stop name is the
// planner's default, making CompileStop("") equivalent to Compile.
func (d *Domain) CompileStop(q *oassisql.Query, stop string, m *plan.CacheMetrics) (*plan.Plan, bool, error) {
	pl, hit, err := d.Compile(q, m)
	if err != nil {
		return nil, false, err
	}
	if stop == "" || stop == pl.StopName {
		return pl, hit, nil
	}
	return d.plans.GetOrDerive(pl, stop, m)
}

// CompileVariant returns the (stop, policy) variant of the compiled plan
// for q over this domain: the base plan compiles (or hits) as usual, then
// each non-default dimension derives through the same cache, composing.
// Empty names are the planner's defaults, making CompileVariant("", "")
// equivalent to Compile.
func (d *Domain) CompileVariant(q *oassisql.Query, stop, policy string, m *plan.CacheMetrics) (*plan.Plan, bool, error) {
	pl, hit, err := d.CompileStop(q, stop, m)
	if err != nil {
		return nil, false, err
	}
	if policy == "" || policy == pl.PolicyName {
		return pl, hit, nil
	}
	return d.plans.GetOrDerivePolicy(pl, policy, m)
}
