package core

import (
	"errors"
	"fmt"
	"testing"

	"oassis/internal/aggregate"
	"oassis/internal/crowd"
)

// driveSession answers every surfaced question (blocked and speculative)
// from the members' personal DBs, like the crowd with those histories
// would, until the run finishes.
func driveSession(t *testing.T, s *Session, dbs map[string]*crowd.PersonalDB) {
	t.Helper()
	for qs := s.Next(); qs != nil; qs = s.Next() {
		if len(qs) == 0 {
			t.Fatal("Next returned an empty, non-nil slice")
		}
		for _, q := range qs {
			db := dbs[q.Member]
			if db == nil {
				t.Fatalf("question for unknown member %q", q.Member)
			}
			if err := s.Submit(q.ID, answerFromDB(db, q)); err != nil {
				t.Fatalf("submit %d: %v", q.ID, err)
			}
			if s.Done() {
				break
			}
		}
	}
}

// answerFromDB answers one question the way a member with that personal
// history would.
func answerFromDB(db *crowd.PersonalDB, q Question) Answer {
	if q.Specialization() {
		for i, c := range q.Choices {
			if db.Support(c) >= 0.3 {
				return AnswerChoice(i, db.Support(c))
			}
		}
		return AnswerNoneOfThese()
	}
	return AnswerSupport(db.Support(q.Facts))
}

func TestSessionMatchesBatchRun(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	batch := Run(Config{
		Space:   sp,
		Theta:   q.Support,
		Members: sampleMembers(s),
		Agg:     aggregate.NewFixedSample(2),
	})

	_, _, sp2 := buildSpace(t, figure3Restricted)
	sess := NewSession(Config{
		Space: sp2,
		Theta: q.Support,
		Agg:   aggregate.NewFixedSample(2),
	}, []string{"u1", "u2"})
	u1, u2 := crowd.SampleDBs(s)
	driveSession(t, sess, map[string]*crowd.PersonalDB{"u1": u1, "u2": u2})

	res := sess.Close()
	want := mspNames(sp, batch.ValidMSPs)
	got := mspNames(sp2, res.ValidMSPs)
	if len(got) != len(want) {
		t.Fatalf("session %v vs batch %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Errorf("session run missing MSP %s", k)
		}
	}
	if fmt.Sprintf("%+v", res.Stats) != fmt.Sprintf("%+v", batch.Stats) {
		t.Errorf("stats diverged:\nsession %+v\nbatch   %+v", res.Stats, batch.Stats)
	}
}

// TestSessionSpeculativeOrder answers the speculative questions before the
// engine's blocked one on every step: the merge order must not change the
// outcome, and speculation must actually surface extra questions.
func TestSessionSpeculativeOrder(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	batch := Run(Config{
		Space:   sp,
		Theta:   q.Support,
		Members: sampleMembers(s),
		Agg:     aggregate.NewFixedSample(2),
	})

	_, _, sp2 := buildSpace(t, figure3Restricted)
	sess := NewSession(Config{
		Space: sp2,
		Theta: q.Support,
		Agg:   aggregate.NewFixedSample(2),
	}, []string{"u1", "u2"})
	u1, u2 := crowd.SampleDBs(s)
	dbs := map[string]*crowd.PersonalDB{"u1": u1, "u2": u2}

	sawSpeculative := false
	for qs := sess.Next(); qs != nil; qs = sess.Next() {
		// Reverse order: speculative answers land first, the blocked
		// question last.
		for i := len(qs) - 1; i >= 0 && !sess.Done(); i-- {
			q := qs[i]
			if q.Speculative {
				sawSpeculative = true
			}
			if err := sess.Submit(q.ID, answerFromDB(dbs[q.Member], q)); err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
	}
	if !sawSpeculative {
		t.Error("no speculative question surfaced for a two-member crowd")
	}
	res := sess.Close()
	want := mspNames(sp, batch.ValidMSPs)
	got := mspNames(sp2, res.ValidMSPs)
	if len(got) != len(want) {
		t.Fatalf("session %v vs batch %v", got, want)
	}
	if fmt.Sprintf("%+v", res.Stats) != fmt.Sprintf("%+v", batch.Stats) {
		t.Errorf("stats diverged:\nsession %+v\nbatch   %+v", res.Stats, batch.Stats)
	}
}

func TestSessionSpecializationFlow(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	sess := NewSession(Config{
		Space:               sp,
		Theta:               q.Support,
		Agg:                 aggregate.NewFixedSample(1),
		SpecializationRatio: 1,
	}, []string{"u1"})
	u1, _ := crowd.SampleDBs(s)
	sawSpecialization := false
	for qs := sess.Next(); qs != nil; qs = sess.Next() {
		q := qs[0]
		if q.Specialization() {
			sawSpecialization = true
			if err := sess.Submit(q.ID, AnswerDecline()); err != nil {
				t.Fatalf("submit: %v", err)
			}
			continue
		}
		if err := sess.Submit(q.ID, AnswerSupport(u1.Support(q.Facts))); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	res := sess.Close()
	if !sawSpecialization {
		t.Error("no specialization question delivered at ratio 1")
	}
	if len(res.MSPs) == 0 {
		t.Error("no MSPs from session specialization flow")
	}
}

func TestSessionLeave(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	sess := NewSession(Config{
		Space: sp,
		Theta: q.Support,
		Agg:   aggregate.NewFixedSample(2),
	}, []string{"u1", "quitter"})
	u1, _ := crowd.SampleDBs(s)
	quitterAnswers := 0
	for qs := sess.Next(); qs != nil; qs = sess.Next() {
		q := qs[0]
		switch q.Member {
		case "quitter":
			quitterAnswers++
			if err := sess.Submit(q.ID, AnswerSupport(0.5)); err != nil {
				t.Fatalf("submit: %v", err)
			}
			if quitterAnswers == 2 {
				sess.Leave("quitter")
			}
		default:
			if err := sess.Submit(q.ID, answerFromDB(u1, q)); err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
	}
	res := sess.Close()
	if res == nil {
		t.Fatal("no result after a member left")
	}
	// Leaving twice is harmless; leaving an unknown member too.
	sess.Leave("quitter")
	sess.Leave("nobody")
}

// TestSessionLeaveBlockedMember leaves the member the engine is currently
// parked on; the session must catch the engine up to its next question
// rather than deadlock.
func TestSessionLeaveBlockedMember(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	sess := NewSession(Config{
		Space: sp,
		Theta: q.Support,
		Agg:   aggregate.NewFixedSample(2),
	}, []string{"quitter", "u1"})
	u1, _ := crowd.SampleDBs(s)
	qs := sess.Next()
	if qs[0].Member != "quitter" {
		t.Fatalf("first question for %s, want quitter", qs[0].Member)
	}
	leftID := qs[0].ID
	sess.Leave("quitter")
	for qs := sess.Next(); qs != nil; qs = sess.Next() {
		q := qs[0]
		if q.Member == "quitter" {
			t.Fatal("question for a member who left")
		}
		if err := sess.Submit(q.ID, answerFromDB(u1, q)); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	if sess.Close() == nil {
		t.Fatal("no result")
	}
	// A late answer to the abandoned question is accepted and dropped.
	if err := sess.Submit(leftID, AnswerSupport(1)); err != nil {
		t.Errorf("late submit to retired question: %v", err)
	}
}

func TestSessionSubmitErrors(t *testing.T) {
	_, q, sp := buildSpace(t, figure3Restricted)
	sess := NewSession(Config{
		Space:        sp,
		Theta:        q.Support,
		Agg:          aggregate.NewFixedSample(1),
		MaxQuestions: 1,
	}, []string{"u1"})
	qs := sess.Next()
	if len(qs) == 0 {
		t.Fatal("no first question")
	}
	if err := sess.Submit(QuestionID(999), AnswerSupport(1)); !errors.Is(err, ErrUnknownQuestion) {
		t.Errorf("unknown id: got %v, want ErrUnknownQuestion", err)
	}
	if err := sess.Submit(qs[0].ID, AnswerSupport(1)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	// The one-question budget ends the run.
	for qs := sess.Next(); qs != nil; qs = sess.Next() {
		if err := sess.Submit(qs[0].ID, AnswerSupport(1)); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	if !sess.Done() {
		t.Fatal("session not done after budget")
	}
	if err := sess.Submit(QuestionID(998), AnswerSupport(1)); !errors.Is(err, ErrSessionDone) {
		t.Errorf("submit after done: got %v, want ErrSessionDone", err)
	}
	if sess.Result() == nil {
		t.Error("no result after done")
	}
	if sess.Close() == nil {
		t.Error("Close lost the result")
	}
}

// TestSessionCloseMidRun abandons the run with a question outstanding; the
// engine must wind down and report the partial result.
func TestSessionCloseMidRun(t *testing.T) {
	_, q, sp := buildSpace(t, figure3Restricted)
	sess := NewSession(Config{
		Space: sp,
		Theta: q.Support,
		Agg:   aggregate.NewFixedSample(1),
	}, []string{"u1"})
	if qs := sess.Next(); len(qs) == 0 {
		t.Fatal("no first question")
	}
	res := sess.Close()
	if res == nil {
		t.Fatal("no partial result from Close")
	}
	if sess.Next() != nil {
		t.Error("Next after Close surfaced a question")
	}
}

// TestSessionCanceled wires Config.Canceled the way ExecContext does and
// cancels after the first answer: the run must stop early with a partial
// result.
func TestSessionCanceled(t *testing.T) {
	_, q, sp := buildSpace(t, figure3Restricted)
	canceled := false
	sess := NewSession(Config{
		Space:    sp,
		Theta:    q.Support,
		Agg:      aggregate.NewFixedSample(1),
		Canceled: func() bool { return canceled },
	}, []string{"u1"})
	qs := sess.Next()
	if len(qs) == 0 {
		t.Fatal("no first question")
	}
	canceled = true
	if err := sess.Submit(qs[0].ID, AnswerSupport(1)); err != nil {
		t.Fatalf("submit: %v", err)
	}
	for qs := sess.Next(); qs != nil; qs = sess.Next() {
		if err := sess.Submit(qs[0].ID, AnswerSupport(1)); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	res := sess.Close()
	if res == nil {
		t.Fatal("no result after cancellation")
	}
	// The discarded in-flight answer must not have been recorded.
	if res.Stats.TotalQuestions != 0 {
		t.Errorf("answers recorded after cancel: %d", res.Stats.TotalQuestions)
	}
}

// TestSessionPruningFlow routes a user-guided pruning click through the
// session protocol.
func TestSessionPruningFlow(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	sess := NewSession(Config{
		Space:         sp,
		Theta:         q.Support,
		Agg:           aggregate.NewFixedSample(1),
		EnablePruning: true,
	}, []string{"u1"})
	u1, _ := crowd.SampleDBs(s)
	sawPruning := false
	for qs := sess.Next(); qs != nil; qs = sess.Next() {
		q := qs[0]
		if q.Kind == KindPruning {
			sawPruning = true
			// Click the first term that never occurs in the history.
			ans := AnswerNoClick()
			for i, term := range q.Terms {
				if !u1.ContainsTerm(term) {
					ans = AnswerIrrelevant(i)
					break
				}
			}
			if err := sess.Submit(q.ID, ans); err != nil {
				t.Fatalf("submit: %v", err)
			}
			continue
		}
		if err := sess.Submit(q.ID, answerFromDB(u1, q)); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	res := sess.Close()
	if !sawPruning {
		t.Error("no pruning question surfaced with EnablePruning")
	}
	if res.Stats.Pruning == 0 {
		t.Error("pruning click not recorded")
	}
}
