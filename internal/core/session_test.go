package core

import (
	"sync"
	"testing"
	"time"

	"oassis/internal/aggregate"
	"oassis/internal/crowd"
	"oassis/internal/fact"
	"oassis/internal/ontology"
)

// driveSession answers every question for one member from a personal DB,
// like a human with that history would.
func driveSession(t *testing.T, it *Interactive, id string, db *crowd.PersonalDB, wg *sync.WaitGroup) {
	t.Helper()
	defer wg.Done()
	for {
		q, ok := it.NextQuestion(id)
		if !ok {
			return
		}
		if q.Member != id {
			t.Errorf("question for %s delivered to %s", q.Member, id)
		}
		if q.Specialization() {
			picked := false
			for i, c := range q.Choices {
				if db.Support(c) >= 0.3 {
					it.AnswerChoice(q, i, db.Support(c))
					picked = true
					break
				}
			}
			if !picked {
				it.AnswerNoneOfThese(q)
			}
			continue
		}
		it.Answer(q, db.Support(q.Facts))
	}
}

func TestInteractiveSessionMatchesBatchRun(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	batch := Run(Config{
		Space:   sp,
		Theta:   q.Support,
		Members: sampleMembers(s),
		Agg:     aggregate.NewFixedSample(2),
	})

	_, _, sp2 := buildSpace(t, figure3Restricted)
	it := NewInteractive(Config{
		Space: sp2,
		Theta: q.Support,
		Agg:   aggregate.NewFixedSample(2),
	}, []string{"u1", "u2"})

	u1, u2 := crowd.SampleDBs(s)
	var wg sync.WaitGroup
	wg.Add(2)
	go driveSession(t, it, "u1", u1, &wg)
	go driveSession(t, it, "u2", u2, &wg)
	res := it.Wait()
	wg.Wait()

	want := mspNames(sp, batch.ValidMSPs)
	got := mspNames(sp2, res.ValidMSPs)
	if len(got) != len(want) {
		t.Fatalf("interactive %v vs batch %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Errorf("interactive run missing MSP %s", k)
		}
	}
}

func TestInteractiveSpecializationFlow(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	it := NewInteractive(Config{
		Space:               sp,
		Theta:               q.Support,
		Agg:                 aggregate.NewFixedSample(1),
		SpecializationRatio: 1,
	}, []string{"u1"})
	u1, _ := crowd.SampleDBs(s)
	var wg sync.WaitGroup
	wg.Add(1)
	sawSpecialization := false
	go func() {
		defer wg.Done()
		for {
			qq, ok := it.NextQuestion("u1")
			if !ok {
				return
			}
			if qq.Specialization() {
				sawSpecialization = true
				it.Decline(qq) // always prefer concrete questions
				continue
			}
			it.Answer(qq, u1.Support(qq.Facts))
		}
	}()
	res := it.Wait()
	wg.Wait()
	if !sawSpecialization {
		t.Error("no specialization question delivered at ratio 1")
	}
	if len(res.MSPs) == 0 {
		t.Error("no MSPs from interactive specialization flow")
	}
}

func TestInteractiveLeave(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	it := NewInteractive(Config{
		Space: sp,
		Theta: q.Support,
		Agg:   aggregate.NewFixedSample(2),
	}, []string{"u1", "quitter"})
	u1, _ := crowd.SampleDBs(s)
	var wg sync.WaitGroup
	wg.Add(2)
	answered := 0
	go func() {
		defer wg.Done()
		for {
			qq, ok := it.NextQuestion("quitter")
			if !ok {
				return
			}
			answered++
			it.Answer(qq, 0.5)
			if answered >= 2 {
				it.Leave("quitter")
				return
			}
		}
	}()
	go driveSession(t, it, "u1", u1, &wg)
	res := it.Wait()
	wg.Wait()
	if res == nil {
		t.Fatal("no result after a member left")
	}
	// Leaving twice is harmless; leaving an unknown member too.
	it.Leave("quitter")
	it.Leave("nobody")
	if _, ok := it.NextQuestion("nobody"); ok {
		t.Error("question delivered to unknown member")
	}
}

func TestInteractiveDoneUnblocksWaiters(t *testing.T) {
	s := ontology.NewSample()
	_ = s
	_, q, sp := buildSpace(t, figure3Restricted)
	it := NewInteractive(Config{
		Space:        sp,
		Theta:        q.Support,
		Agg:          aggregate.NewFixedSample(1),
		MaxQuestions: 1,
	}, []string{"u1"})
	// Answer one question, then the budget ends the run; NextQuestion must
	// return ok=false rather than hang.
	qq, ok := it.NextQuestion("u1")
	if !ok {
		t.Fatal("no first question")
	}
	it.Answer(qq, 1)
	done := make(chan struct{})
	go func() {
		if _, ok := it.NextQuestion("u1"); ok {
			// A second question may arrive before the budget check; answer
			// it so the run can end.
			t.Error("question beyond budget")
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("NextQuestion hung after run end")
	}
	_ = it.Wait()
	select {
	case <-it.Done():
	default:
		t.Error("Done not closed after Wait")
	}
	_ = fact.Set{}
}
