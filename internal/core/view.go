package core

import (
	"sort"

	"oassis/internal/assign"
)

// candidateView is the engine's concrete plan.CandidateView: a snapshot
// of the unclassified pool candidates in canonical key order, with their
// lattice fringe counts and live aggregates, built fresh before every
// tier-two selection. The backing slices live on the engine and are
// reused across rounds, so a selector run allocates only what the
// candidate set grows to.
//
// Candidate enumeration MUST be deterministic across execution modes:
// the unclassified set is a Go map (iteration order random), and interned
// node ids can differ between sequential and speculative (session/panel)
// execution, so the view sorts by canonical node key — the one order
// every mode agrees on. The equivalence matrix in internal/panel rests
// on this.
type candidateView struct {
	e     *engine
	ids   []uint32
	keys  []string
	sizes []int
	ups   []int
	downs []int
	ans   []int
	means []float64
}

func (v *candidateView) reset() {
	v.ids = v.ids[:0]
	v.keys = v.keys[:0]
	v.sizes = v.sizes[:0]
	v.ups = v.ups[:0]
	v.downs = v.downs[:0]
	v.ans = v.ans[:0]
	v.means = v.means[:0]
}

// Len implements plan.CandidateView.
func (v *candidateView) Len() int { return len(v.ids) }

// Key implements plan.CandidateView.
func (v *candidateView) Key(i int) string { return v.keys[i] }

// Size implements plan.CandidateView.
func (v *candidateView) Size(i int) int { return v.sizes[i] }

// UnclassifiedSuccessors implements plan.CandidateView.
func (v *candidateView) UnclassifiedSuccessors(i int) int { return v.ups[i] }

// UnclassifiedPredecessors implements plan.CandidateView.
func (v *candidateView) UnclassifiedPredecessors(i int) int { return v.downs[i] }

// Answers implements plan.CandidateView.
func (v *candidateView) Answers(i int) int { return v.ans[i] }

// Mean implements plan.CandidateView.
func (v *candidateView) Mean(i int) float64 { return v.means[i] }

// Theta implements plan.CandidateView.
func (v *candidateView) Theta() float64 { return v.e.cfg.Theta }

// countUnclassified counts the still-unclassified nodes among ns. The
// status probe registers unseen neighbors with the classifier — exactly
// what unclassifiedSuccessors does on the descent path — which is
// deterministic here because candidates (and their neighbor lists) are
// walked in canonical order.
func (e *engine) countUnclassified(ns []assign.Assignment) int {
	n := 0
	for _, s := range ns {
		if e.cls.status(s) == Unclassified {
			n++
		}
	}
	return n
}

// buildView snapshots the current candidate set into the engine's
// reusable view. With answeredOnly, candidates whose questions hold no
// recorded answers are excluded (the frontier-settlement filter).
func (e *engine) buildView(answeredOnly bool) *candidateView {
	v := &e.view
	v.e = e
	v.reset()
	for id := range e.cls.unclassified {
		if int(id) >= len(e.inPool) || !e.inPool[id] {
			continue
		}
		if answeredOnly {
			_, qKey := e.instantiate(e.ns.node(id))
			if e.agg.Answers(qKey) == 0 {
				continue
			}
		}
		v.ids = append(v.ids, id)
		v.keys = append(v.keys, e.ns.node(id).Key())
	}
	sort.Sort(byKey{v})
	for _, id := range v.ids {
		n := e.ns.node(id)
		v.sizes = append(v.sizes, n.Size())
		v.ups = append(v.ups, e.countUnclassified(e.succsOf(id)))
		v.downs = append(v.downs, e.countUnclassified(e.predsOf(id)))
		_, qKey := e.instantiate(n)
		v.ans = append(v.ans, e.agg.Answers(qKey))
		v.means = append(v.means, e.agg.Mean(qKey))
	}
	return v
}

// byKey sorts the view's (ids, keys) pair by canonical key.
type byKey struct{ v *candidateView }

func (s byKey) Len() int           { return len(s.v.ids) }
func (s byKey) Less(i, j int) bool { return s.v.keys[i] < s.v.keys[j] }
func (s byKey) Swap(i, j int) {
	s.v.ids[i], s.v.ids[j] = s.v.ids[j], s.v.ids[i]
	s.v.keys[i], s.v.keys[j] = s.v.keys[j], s.v.keys[i]
}

// pickSelected runs the tier-two selector over a fresh candidate view and
// maps the chosen index back to its node. An out-of-range pick (a
// malformed selector) falls back to the first candidate — deterministic,
// never a panic mid-run.
func (e *engine) pickSelected(answeredOnly bool) (assign.Assignment, bool) {
	v := e.buildView(answeredOnly)
	if v.Len() == 0 {
		return assign.Assignment{}, false
	}
	i := e.selector.Select(v)
	if i < 0 || i >= v.Len() {
		i = 0
	}
	return e.ns.node(v.ids[i]), true
}
