package core

import (
	"sort"

	"oassis/internal/aggregate"
	"oassis/internal/assign"
)

// RunHorizontal executes the Horizontal baseline of §6.4, inspired by the
// classic Apriori algorithm: it proceeds level by level from the most
// general assignments and asks about an assignment only after all of its
// predecessors have been found significant. It shares the engine's inference
// scheme and never re-asks classified assignments.
func RunHorizontal(cfg Config) *Result {
	e := newEngine(cfg)
	e.seed()

	frontier := append([]uint32(nil), e.poolIDs...)
	for len(frontier) > 0 && e.budgetLeft() {
		// Ask every unclassified node of the current level.
		level := make([]assign.Assignment, 0, len(frontier))
		for _, id := range frontier {
			level = append(level, e.ns.node(id))
		}
		sort.Slice(level, func(i, j int) bool { return level[i].Key() < level[j].Key() })
		next := map[uint32]struct{}{}
		for _, node := range level {
			if !e.budgetLeft() {
				break
			}
			e.classify(node)
			if e.cls.status(node) != Significant {
				continue
			}
			for _, s := range e.succsOf(e.ns.intern(node)) {
				// Apriori candidate condition: all predecessors significant.
				if e.cls.status(s) != Unclassified {
					continue
				}
				allSig := true
				for _, p := range e.sp.Predecessors(s) {
					if e.cls.status(p) != Significant {
						allSig = false
						break
					}
				}
				if allSig {
					next[e.addNode(s)] = struct{}{}
				}
			}
		}
		frontier = frontier[:0]
		for id := range next {
			frontier = append(frontier, id)
		}
		sort.Slice(frontier, func(i, j int) bool {
			return e.ns.node(frontier[i]).Key() < e.ns.node(frontier[j]).Key()
		})
	}
	return e.result()
}

// RunNaive executes the Naive baseline of §6.4: it asks about assignments in
// random order among the valid ones (plus, for fairness, any multiplicity
// nodes already generated — the paper feeds the naive algorithm the
// assignments the vertical algorithm generated). It uses the same inference
// scheme and skips classified assignments.
func RunNaive(cfg Config, extra []assign.Assignment) *Result {
	e := newEngine(cfg)
	nodes := make([]assign.Assignment, 0, len(cfg.Space.ValidBase)+len(extra))
	seen := map[string]struct{}{}
	for _, row := range cfg.Space.ValidBase {
		n := cfg.Space.Singleton(row...)
		if _, dup := seen[n.Key()]; dup {
			continue
		}
		seen[n.Key()] = struct{}{}
		nodes = append(nodes, n)
	}
	for _, n := range extra {
		if _, dup := seen[n.Key()]; dup {
			continue
		}
		seen[n.Key()] = struct{}{}
		nodes = append(nodes, n)
	}
	if cfg.Rng != nil {
		cfg.Rng.Shuffle(len(nodes), func(i, j int) { nodes[i], nodes[j] = nodes[j], nodes[i] })
	}
	for _, n := range nodes {
		if !e.budgetLeft() {
			break
		}
		e.addNode(n)
		if e.cls.status(n) != Unclassified {
			continue
		}
		e.classify(n)
	}
	return e.result()
}

// classify collects answers for one node from the crowd until the aggregator
// decides (or the crowd is exhausted, forcing a verdict).
func (e *engine) classify(node assign.Assignment) {
	if e.cls.status(node) != Unclassified {
		return
	}
	for _, m := range e.cfg.Members {
		if !e.budgetLeft() {
			return
		}
		if !e.memberActive(m) {
			continue
		}
		e.memberSupport(m, node)
		if e.cls.status(node) != Unclassified {
			return
		}
	}
	if e.cls.status(node) == Unclassified {
		e.forceClassify(node)
	}
}

// BaselineQuestions computes the question count of the paper's baseline%
// comparator (Fig. 4a–4c): an algorithm that asks K questions for every
// valid assignment, without any traversal order or inference.
func BaselineQuestions(sp *assign.Space, k int) int {
	return len(sp.ValidBase) * k
}

// RunSingleUser is a convenience wrapper running Algorithm 1 with a single
// crowd member and a one-answer aggregator (the §4.1 setting).
func RunSingleUser(cfg Config) *Result {
	cfg.Agg = aggregate.NewFixedSample(1)
	return Run(cfg)
}
