package core

import (
	"sync"
	"time"

	"oassis/internal/crowd"
	"oassis/internal/fact"
	"oassis/internal/vocab"
)

// Interactive runs the mining engine with inverted control, playing the
// role of the paper's QueueManager (§6.1): instead of the engine calling
// into crowd members, external sessions pull the next question for their
// member and push answers back. This is the shape a crowdsourcing UI (web
// or TTY) needs.
//
//	it := core.NewInteractive(cfg, []string{"ann", "bob"})
//	for q, ok := it.NextQuestion("ann"); ok; q, ok = it.NextQuestion("ann") {
//	    it.Answer(q, askHuman(q))
//	}
//	res := it.Wait()
//
// Each member's questions are delivered in the engine's order; NextQuestion
// blocks until a question for that member is ready or the run ends. Answer
// unblocks the engine. The engine goroutine finishes when the lattice is
// classified, every member stops (Leave), or the question budget runs out;
// Wait returns the result.
type Interactive struct {
	res  *Result
	done chan struct{}

	mu      sync.Mutex
	members map[string]*sessionMember
}

// Question is one crowd question delivered to a session.
type Question struct {
	// Member is the member the question is addressed to.
	Member string
	// Facts is the fact-set whose frequency is asked (concrete question),
	// or nil for a specialization question.
	Facts fact.Set
	// Choices holds the candidate fact-sets of a specialization question.
	Choices []fact.Set

	reply chan answerMsg
}

// Specialization reports whether the question asks to pick a choice.
func (q *Question) Specialization() bool { return len(q.Choices) > 0 }

type answerMsg struct {
	support  float64
	choice   int
	ok       bool // specialization: a choice was made
	declined bool // specialization: member prefers concrete questions
}

// sessionMember adapts the pull API to the engine's crowd.Member interface.
type sessionMember struct {
	id        string
	questions chan *Question
	left      chan struct{}
	leaveOnce sync.Once
}

func (m *sessionMember) ID() string { return m.id }

// deliver sends q to the session and waits for the answer; if the member
// left, it reports false.
func (m *sessionMember) deliver(q *Question) (answerMsg, bool) {
	q.Member = m.id
	q.reply = make(chan answerMsg, 1)
	select {
	case m.questions <- q:
	case <-m.left:
		return answerMsg{}, false
	}
	select {
	case a := <-q.reply:
		return a, true
	case <-m.left:
		return answerMsg{}, false
	}
}

func (m *sessionMember) Concrete(fs fact.Set) float64 {
	a, ok := m.deliver(&Question{Facts: fs})
	if !ok {
		return 0
	}
	return a.support
}

func (m *sessionMember) ChooseSpecialization(candidates []fact.Set) (int, float64, bool, bool) {
	a, ok := m.deliver(&Question{Choices: candidates})
	if !ok {
		return 0, 0, false, true
	}
	return a.choice, a.support, a.ok, a.declined
}

func (m *sessionMember) Irrelevant([]vocab.Term) (vocab.Term, bool) {
	// User-guided pruning is not exposed through the pull protocol; the
	// five-answer UI flow covers the paper's question types.
	return vocab.None, false
}

// Left implements the engine's leaver interface.
func (m *sessionMember) Left() bool {
	select {
	case <-m.left:
		return true
	default:
		return false
	}
}

// NewInteractive starts the engine over the given member IDs. cfg.Members
// is ignored; sessions are created per ID.
func NewInteractive(cfg Config, memberIDs []string) *Interactive {
	it := &Interactive{
		done:    make(chan struct{}),
		members: make(map[string]*sessionMember, len(memberIDs)),
	}
	var members []crowd.Member
	for _, id := range memberIDs {
		sm := &sessionMember{
			id:        id,
			questions: make(chan *Question),
			left:      make(chan struct{}),
		}
		it.members[id] = sm
		members = append(members, sm)
	}
	cfg.Members = members
	go func() {
		res := Run(cfg)
		it.mu.Lock()
		it.res = res
		it.mu.Unlock()
		close(it.done)
	}()
	return it
}

// NextQuestion blocks until the engine has a question for the member or the
// run ends (ok == false).
func (it *Interactive) NextQuestion(memberID string) (*Question, bool) {
	q, ok, _ := it.nextQuestion(memberID, nil)
	return q, ok
}

// NextQuestionTimeout is NextQuestion with a deadline, for long-polling
// servers: it returns (nil, false, true) when no question arrived in time
// but the run is still going, and running == false when the run has ended.
// A question is never lost to a timeout — the engine's send blocks until
// some call receives it.
func (it *Interactive) NextQuestionTimeout(memberID string, d time.Duration) (q *Question, ok, running bool) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	return it.nextQuestion(memberID, timer.C)
}

func (it *Interactive) nextQuestion(memberID string, timeout <-chan time.Time) (*Question, bool, bool) {
	it.mu.Lock()
	m := it.members[memberID]
	it.mu.Unlock()
	if m == nil {
		return nil, false, false
	}
	select {
	case q := <-m.questions:
		return q, true, true
	case <-it.done:
		return nil, false, false
	case <-timeout:
		return nil, false, true
	}
}

// Answer replies to a concrete question.
func (it *Interactive) Answer(q *Question, support float64) {
	q.reply <- answerMsg{support: support}
}

// AnswerChoice replies to a specialization question with the chosen
// candidate and its frequency.
func (it *Interactive) AnswerChoice(q *Question, choice int, support float64) {
	q.reply <- answerMsg{choice: choice, support: support, ok: true}
}

// AnswerNoneOfThese replies to a specialization question with "none of
// these" (all candidates get frequency 0).
func (it *Interactive) AnswerNoneOfThese(q *Question) {
	q.reply <- answerMsg{}
}

// Decline replies to a specialization question by asking for concrete
// questions instead.
func (it *Interactive) Decline(q *Question) {
	q.reply <- answerMsg{declined: true}
}

// Leave ends a member's participation: the engine stops asking them (a
// single question already in flight is recorded as support 0, a harmless
// one-answer bias the aggregator absorbs).
func (it *Interactive) Leave(memberID string) {
	it.mu.Lock()
	m := it.members[memberID]
	it.mu.Unlock()
	if m != nil {
		m.leaveOnce.Do(func() { close(m.left) })
	}
}

// Wait blocks until the run finishes and returns the result.
func (it *Interactive) Wait() *Result {
	<-it.done
	return it.res
}

// Done reports a channel closed when the run finishes.
func (it *Interactive) Done() <-chan struct{} { return it.done }
