package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"oassis/internal/assign"
	"oassis/internal/crowd"
	"oassis/internal/fact"
	"oassis/internal/obs"
	"oassis/internal/plan"
	"oassis/internal/vocab"
)

// Session errors.
var (
	// ErrSessionDone is returned by Submit after the run has finished.
	ErrSessionDone = errors.New("core: session finished")
	// ErrUnknownQuestion is returned by Submit for an ID the session never
	// issued or has already consumed an answer for.
	ErrUnknownQuestion = errors.New("core: unknown or already answered question")
)

// QuestionID identifies one issued question within a session.
type QuestionID int64

// Question is one independently answerable crowd question surfaced by a
// Session. A concrete question carries Facts; a specialization question
// carries Choices.
type Question struct {
	ID     QuestionID
	Member string
	Kind   QuestionKind
	// Facts is the fact-set whose frequency is asked (concrete question).
	Facts fact.Set
	// Choices holds the candidate fact-sets of a specialization question.
	Choices []fact.Set
	// Terms holds the candidate terms of a user-guided pruning question
	// (the member may mark one as irrelevant to them).
	Terms []vocab.Term
	// Speculative marks a question surfaced ahead of the engine's own
	// request — the current round's node question, or a mirror of the
	// question the engine is blocked on, for a member whose turn has not
	// come yet. Its answer is buffered until the engine asks for it, and
	// is silently discarded if the engine never does.
	Speculative bool
}

// Specialization reports whether the question asks to pick a choice.
func (q Question) Specialization() bool { return q.Kind == KindSpecialization }

// Answer is the reply to a Question. For a concrete question only Support
// is read. For a specialization question the fields mirror
// crowd.SpecializeResponse: Chosen+Choice+Support picks a candidate,
// Declined asks for concrete questions instead, and the zero value is
// "none of these". For a pruning question Chosen+Choice marks the term at
// Choice irrelevant and the zero value is "no click".
type Answer struct {
	Support  float64
	Choice   int
	Chosen   bool
	Declined bool
}

// AnswerSupport replies to a concrete question.
func AnswerSupport(s float64) Answer { return Answer{Support: s} }

// AnswerChoice replies to a specialization question by picking candidate
// idx with the given support.
func AnswerChoice(idx int, s float64) Answer {
	return Answer{Choice: idx, Support: s, Chosen: true}
}

// AnswerNoneOfThese rejects every candidate of a specialization question.
func AnswerNoneOfThese() Answer { return Answer{} }

// AnswerDecline asks for concrete questions instead of a specialization.
func AnswerDecline() Answer { return Answer{Declined: true} }

// AnswerIrrelevant replies to a pruning question by marking the term at
// idx irrelevant.
func AnswerIrrelevant(idx int) Answer { return Answer{Choice: idx, Chosen: true} }

// AnswerNoClick replies to a pruning question without marking anything.
func AnswerNoClick() Answer { return Answer{} }

// payload is an answer in the engine's native shape.
type payload struct {
	support float64
	spec    crowd.SpecializeResponse
}

// askKey identifies a question independently of when it is asked, so an
// answer collected early (speculatively) can be merged in when the engine
// reaches the same question.
type askKey struct {
	member string
	kind   QuestionKind
	key    string
}

// ask is one parked engine request: a proxy member blocked waiting for the
// answer to its question.
type ask struct {
	key     askKey
	facts   fact.Set
	choices []fact.Set
	terms   []vocab.Term
	reply   chan payload
}

// instance is one issued Question awaiting its answer.
type instance struct {
	id          QuestionID
	q           Question
	key         askKey
	gen         int // round generation at issue time (speculative retirement)
	speculative bool
	ask         *ask // non-nil when the engine is parked on this question
}

// roundState mirrors the engine's current scheduling position: the lattice
// node the main loop is classifying and its instantiated question.
type roundState struct {
	node assign.Assignment
	fs   fact.Set
	qKey string
	gen  int
}

// Session runs the mining engine with inverted, step-driven control: Next
// surfaces every question that is currently independently answerable, and
// Submit merges an answer back in, in any order. The engine itself is the
// unmodified sequential algorithm running on its own goroutine; proxy
// members park its question requests, and answers submitted ahead of the
// engine's own order are buffered and merged in when the engine reaches
// them. Results are therefore bit-identical to Run for members whose
// answers depend only on (member, question) — which holds for answers
// ultimately produced by humans or the pure simulated members.
//
//	s := core.NewSession(cfg, []string{"ann", "bob"})
//	for qs := s.Next(); len(qs) > 0; qs = s.Next() {
//	    for _, q := range qs {
//	        s.Submit(q.ID, core.AnswerSupport(askHuman(q)))
//	    }
//	}
//	res := s.Close()
//
// Beyond the one question the engine is blocked on (always first in Next's
// slice), Next speculates: for every member whose turn has not come yet it
// surfaces the current round's node question (the engine is known to ask
// it unless the node classifies first) and a mirror of the engine's
// blocked concrete question (members who share habits descend the same
// specialization chains, so the buffered mirrors serve their chains
// without a round trip). Speculative answers the round outruns are retired
// without ever entering the run's statistics.
//
// A Session is not safe for concurrent use; callers serialize access (the
// concurrent dispatcher RunConcurrent drives one session from one
// goroutine and fans questions out from there).
type Session struct {
	eng     *engine
	order   []string // member IDs in engine order
	proxies map[string]*proxyMember

	askCh chan *ask
	done  chan struct{}
	abort chan struct{}
	res   *Result // written by the engine goroutine before done closes

	insts    map[QuestionID]*instance
	byKey    map[askKey]*instance
	buffered map[askKey]payload
	retired  map[QuestionID]askKey // late answers are still buffered once
	blocked  *instance
	nextID   QuestionID

	// Engine scheduling state, written by hooks on the engine goroutine
	// and read here only while the engine is parked.
	round    roundState
	roundGen int
	curTurn  int

	// Observability (nil/empty when neither metrics nor tracer is
	// attached). issuedAt and spanEnd are keyed by question ID; recording
	// is write-only w.r.t. the engine, so instrumented runs stay
	// bit-identical to uninstrumented ones.
	metrics  *Metrics
	tracer   obs.Tracer
	issuedAt map[QuestionID]time.Time
	spanEnd  map[QuestionID]func()

	closed   bool
	finished bool
}

// NewSession starts the engine over the given member IDs and parks it on
// its first question. cfg.Members is ignored; proxy members are created
// per ID.
func NewSession(cfg Config, memberIDs []string) *Session {
	s := &Session{
		askCh:    make(chan *ask),
		done:     make(chan struct{}),
		abort:    make(chan struct{}),
		insts:    make(map[QuestionID]*instance),
		byKey:    make(map[askKey]*instance),
		buffered: make(map[askKey]payload),
		retired:  make(map[QuestionID]askKey),
		proxies:  make(map[string]*proxyMember, len(memberIDs)),
		metrics:  cfg.Metrics,
		tracer:   cfg.Tracer,
	}
	if s.metrics != nil || s.tracer != nil {
		s.issuedAt = make(map[QuestionID]time.Time)
		s.spanEnd = make(map[QuestionID]func())
	}
	members := make([]crowd.Member, 0, len(memberIDs))
	for _, id := range memberIDs {
		p := &proxyMember{s: s, id: id, left: make(chan struct{})}
		s.proxies[id] = p
		s.order = append(s.order, id)
		members = append(members, p)
	}
	cfg.Members = members
	userCanceled := cfg.Canceled
	cfg.Canceled = func() bool {
		select {
		case <-s.abort:
			return true
		default:
		}
		return userCanceled != nil && userCanceled()
	}
	e := newEngine(cfg)
	e.hooks = engineHooks{
		onRound: func(node assign.Assignment, fs fact.Set, qKey string) {
			s.roundGen++
			s.round = roundState{node: node, fs: fs, qKey: qKey, gen: s.roundGen}
			s.curTurn = -1
		},
		onTurn: func(i int) { s.curTurn = i },
	}
	s.eng = e
	go func() {
		e.seed()
		e.mainLoop()
		s.res = e.result()
		close(s.done)
	}()
	s.advance()
	return s
}

// advance waits for the engine to park on its next question (or finish),
// serving buffered answers along the way. On return either s.blocked is
// the engine's parked question or s.finished is set.
func (s *Session) advance() {
	for {
		select {
		case a := <-s.askCh:
			// The engine is parked on a; it touches no shared state until
			// the reply, so the session may read engine fields freely.
			if s.proxies[a.key.member].Left() {
				// The member left while the engine was already committing
				// to this ask; answer for them as Leave would.
				a.reply <- leavePayload(a.key.kind)
				continue
			}
			if pay, ok := s.buffered[a.key]; ok {
				// An answer collected earlier merges in at the engine's
				// own position in the question order.
				delete(s.buffered, a.key)
				a.reply <- pay
				continue
			}
			if inst, ok := s.byKey[a.key]; ok {
				// A speculative question already issued for exactly this
				// ask: adopt it, keeping its ID.
				inst.ask = a
				s.blocked = inst
				return
			}
			inst := &instance{
				id:  s.nextID,
				key: a.key,
				gen: s.roundGen,
				ask: a,
			}
			s.nextID++
			inst.q = Question{
				ID:      inst.id,
				Member:  a.key.member,
				Kind:    a.key.kind,
				Facts:   a.facts,
				Choices: a.choices,
				Terms:   a.terms,
			}
			s.insts[inst.id] = inst
			s.byKey[inst.key] = inst
			s.blocked = inst
			s.noteIssued(inst)
			return
		case <-s.done:
			s.finished = true
			s.blocked = nil
			// Whatever is still open can never be consumed.
			for id, inst := range s.insts {
				s.retired[id] = inst.key
				s.noteRetired(id)
			}
			s.insts = make(map[QuestionID]*instance)
			s.byKey = make(map[askKey]*instance)
			return
		}
	}
}

// noteIssued books a freshly issued question instance with the attached
// metrics and tracer. With neither attached it does nothing at all (not
// even a clock read).
func (s *Session) noteIssued(inst *instance) {
	if s.metrics == nil && s.tracer == nil {
		return
	}
	s.metrics.questionIssued(inst.key.kind, inst.speculative)
	if s.metrics != nil {
		s.issuedAt[inst.id] = time.Now()
	}
	if s.tracer != nil {
		phase := "blocked"
		if inst.speculative {
			phase = "speculative"
		}
		s.spanEnd[inst.id] = s.tracer.Begin("question",
			obs.A("id", strID(inst.id)), obs.A("member", inst.key.member),
			obs.A("kind", inst.key.kind.String()), obs.A("phase", phase))
	}
}

// noteAnswered books an answered question: latency observation and span
// end.
func (s *Session) noteAnswered(inst *instance) {
	if s.metrics == nil && s.tracer == nil {
		return
	}
	s.metrics.questionAnswered(inst.key.kind, s.issuedAt[inst.id])
	delete(s.issuedAt, inst.id)
	if end, ok := s.spanEnd[inst.id]; ok {
		end()
		delete(s.spanEnd, inst.id)
	}
}

// noteRetired books a question retired without an answer.
func (s *Session) noteRetired(id QuestionID) {
	if s.metrics == nil && s.tracer == nil {
		return
	}
	s.metrics.questionRetired()
	delete(s.issuedAt, id)
	if end, ok := s.spanEnd[id]; ok {
		end()
		delete(s.spanEnd, id)
	}
}

// retireStale drops speculative questions from rounds the engine has moved
// past. Their IDs stay known so a late answer is still buffered (never
// re-ask a human), but they are no longer surfaced by Next.
func (s *Session) retireStale() {
	for id, inst := range s.insts {
		if inst.speculative && inst != s.blocked && inst.gen != s.roundGen {
			s.retired[id] = inst.key
			delete(s.insts, id)
			delete(s.byKey, inst.key)
			s.noteRetired(id)
		}
	}
}

// eligible reports whether the engine could still ask member idx the
// concrete question (key, fs): active, with budget, and without a cached,
// primed, or pruning-implied answer — and the question is not already open
// or buffered for them.
func (s *Session) eligible(idx int, key string, fs fact.Set) bool {
	id := s.order[idx]
	if s.proxies[id].Left() {
		return false
	}
	e := s.eng
	if e.banned != nil && e.banned[id] {
		return false
	}
	if idx < len(e.budgets) && e.budgets[idx] == 0 {
		return false
	}
	if _, ok := e.memberAns[id][key]; ok {
		return false
	}
	if e.pruneHit(id, fs) {
		return false
	}
	if e.cfg.Prime != nil {
		if _, ok := e.cfg.Prime.Lookup(key, id); ok {
			return false
		}
	}
	k := askKey{member: id, kind: KindConcrete, key: key}
	if _, open := s.byKey[k]; open {
		return false
	}
	if _, buf := s.buffered[k]; buf {
		return false
	}
	return true
}

// issueSpeculative opens a speculative concrete-question instance.
func (s *Session) issueSpeculative(memberIdx int, key string, fs fact.Set) {
	k := askKey{member: s.order[memberIdx], kind: KindConcrete, key: key}
	inst := &instance{
		id:          s.nextID,
		key:         k,
		gen:         s.roundGen,
		speculative: true,
	}
	s.nextID++
	inst.q = Question{
		ID:          inst.id,
		Member:      k.member,
		Kind:        KindConcrete,
		Facts:       fs,
		Speculative: true,
	}
	s.insts[inst.id] = inst
	s.byKey[k] = inst
	s.noteIssued(inst)
}

// speculate issues questions the engine has not asked yet but is likely
// to, for members whose turn has not come in the current round:
//
//   - the round's node question — the engine asks it of every member in
//     turn unless the node classifies first; and
//   - a mirror of the question the engine is currently blocked on (when it
//     is a deeper, concrete descend question): members with similar habits
//     descend the same chains, so their buffered answers serve whole
//     chains without a round trip when their turns come.
//
// Only members the engine would actually ask are considered, and answers
// the engine never consumes are discarded without entering the statistics
// — so speculation affects wall clock and waste, never the result.
func (s *Session) speculate() {
	if s.round.gen != s.roundGen {
		return
	}
	mirror := ""
	var mirrorFS fact.Set
	if s.blocked != nil && s.blocked.key.kind == KindConcrete {
		mirror = s.blocked.key.key
		mirrorFS = s.blocked.q.Facts
	}
	for i := s.curTurn + 1; i < len(s.order); i++ {
		if s.round.qKey != "" && s.eligible(i, s.round.qKey, s.round.fs) {
			s.issueSpeculative(i, s.round.qKey, s.round.fs)
		}
		if mirror != "" && mirror != s.round.qKey && s.eligible(i, mirror, mirrorFS) {
			s.issueSpeculative(i, mirror, mirrorFS)
		}
	}
	s.speculateSuccessors()
}

// speculateSuccessors widens speculation for panel batching (see
// Config.PanelSpeculation): it surfaces up to PanelSpeculation immediate
// successors of the round's node — the questions descend asks next when a
// member's answer reaches the threshold — for the blocked member and
// every member after them in the round. A panel then carries a whole
// descent chain's first level in one round trip; answers the engine never
// asks for are retired by the usual machinery without touching the
// result.
func (s *Session) speculateSuccessors() {
	n := s.eng.cfg.PanelSpeculation
	if n <= 0 || s.round.gen != s.roundGen {
		return
	}
	succs := s.eng.succsOf(s.eng.ns.intern(s.round.node))
	if len(succs) > n {
		succs = succs[:n]
	}
	from := s.curTurn
	if from < 0 {
		from = 0
	}
	for _, succ := range succs {
		fs, qKey := s.eng.instantiate(succ)
		for i := from; i < len(s.order); i++ {
			if s.eligible(i, qKey, fs) {
				s.issueSpeculative(i, qKey, fs)
			}
		}
	}
}

// Next returns every question that can be answered right now: the one the
// engine is blocked on (always first), followed by the open speculative
// questions in issue order. It returns nil exactly when the run has
// finished and Close/Result hold the outcome.
func (s *Session) Next() []Question {
	if s.finished || s.closed {
		return nil
	}
	s.retireStale()
	s.speculate()
	out := []Question{s.blocked.q}
	ids := make([]QuestionID, 0, len(s.insts))
	for id, inst := range s.insts {
		if inst != s.blocked {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		out = append(out, s.insts[id].q)
	}
	return out
}

// Submit merges the answer to a previously issued question. Answering the
// engine's blocked question unparks it and advances the run to its next
// question; answering a speculative question buffers the answer until the
// engine reaches it. Answers to retired questions are buffered too —
// a collected human answer is never thrown away while the question could
// still be asked — and are discarded only if the run never needs them.
func (s *Session) Submit(id QuestionID, a Answer) error {
	if key, ok := s.retired[id]; ok {
		delete(s.retired, id)
		if !s.finished {
			s.buffered[key] = payloadFor(key.kind, a)
		}
		return nil
	}
	if s.finished || s.closed {
		return ErrSessionDone
	}
	inst, ok := s.insts[id]
	if !ok {
		return fmt.Errorf("%w: id %d", ErrUnknownQuestion, id)
	}
	pay := payloadFor(inst.key.kind, a)
	delete(s.insts, id)
	delete(s.byKey, inst.key)
	s.noteAnswered(inst)
	if inst == s.blocked {
		s.blocked = nil
		inst.ask.reply <- pay
		s.advance()
		return nil
	}
	s.buffered[inst.key] = pay
	return nil
}

// Submission pairs a question ID with its answer for SubmitBatch.
type Submission struct {
	ID     QuestionID
	Answer Answer
}

// SubmitBatch merges a whole panel of answers in one call, applying them
// in ascending question-ID order regardless of the order given — the
// deterministic order that makes batched submission bit-identical to
// per-question submission: answers ahead of the engine's own position are
// buffered by ask key exactly as individual Submits would buffer them,
// and merged in when the engine reaches the same question. The first
// submission error is returned after every submission was attempted.
func (s *Session) SubmitBatch(subs []Submission) error {
	ordered := append([]Submission(nil), subs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	var first error
	for _, sub := range ordered {
		if err := s.Submit(sub.ID, sub.Answer); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// AggregateHint exposes the running aggregate for a concrete question's
// fact-set: the mean of the answers collected so far and how many there
// are. It is how prior sources derive best guesses from the crowd state
// without reaching into the engine. Safe to call whenever the caller may
// call Next/Submit (the engine is parked between those calls).
func (s *Session) AggregateHint(fs fact.Set) (mean float64, answers int) {
	key := fs.Key()
	return s.eng.agg.Mean(key), s.eng.agg.Answers(key)
}

// Ordering returns the session's resolved question ordering (the
// config's, or plan.PaperOrder by default). Batching layers use it to
// score panel positions consistently with the engine's own selection.
func (s *Session) Ordering() plan.Ordering { return s.eng.ordering }

func payloadFor(kind QuestionKind, a Answer) payload {
	if kind == KindConcrete {
		return payload{support: a.Support}
	}
	// Specialization and pruning answers both travel as a
	// SpecializeResponse; for pruning, Chosen+Choice is the clicked term.
	return payload{spec: crowd.SpecializeResponse{
		Choice:   a.Choice,
		Support:  a.Support,
		Chosen:   a.Chosen,
		Declined: a.Declined,
	}}
}

// leavePayload is the answer the session gives on a leaving member's
// behalf: support 0 for a concrete question (a harmless one-answer bias
// the aggregator absorbs), decline for a specialization, no click for a
// pruning offer.
func leavePayload(kind QuestionKind) payload {
	if kind == KindConcrete {
		return payload{}
	}
	return payload{spec: crowd.DeclineSpecialization()}
}

// Leave ends a member's participation: the engine stops asking them, and a
// question of theirs still in flight is answered with leavePayload.
func (s *Session) Leave(memberID string) {
	if p := s.proxies[memberID]; p != nil {
		p.leave()
		if s.blocked != nil && s.blocked.key.member == memberID && !s.finished {
			// Answer the parked ask on the member's behalf and catch the
			// engine up to its next question.
			a := s.blocked.ask
			id := s.blocked.id
			s.retired[id] = s.blocked.key
			delete(s.insts, id)
			delete(s.byKey, s.blocked.key)
			s.noteRetired(id)
			s.blocked = nil
			a.reply <- leavePayload(a.key.kind)
			s.advance()
		}
	}
}

// Done reports whether the run has finished and Result is available.
func (s *Session) Done() bool { return s.finished }

// BufferedWaste reports the answers collected speculatively that are
// still buffered without the engine ever consuming them — the waste
// accounting dispatchers read after Close.
func (s *Session) BufferedWaste() int { return len(s.buffered) }

// Result returns the outcome, or nil while the run is still going.
func (s *Session) Result() *Result {
	if !s.finished {
		return nil
	}
	return s.res
}

// Close cancels the run if it is still going, waits for the engine to wind
// down, and returns the (possibly partial) result. Closing an already
// finished session just returns the result.
func (s *Session) Close() *Result {
	if !s.closed {
		s.closed = true
		close(s.abort)
	}
	if !s.finished {
		<-s.done
		s.finished = true
		// The engine goroutine has exited (done is closed), so the open
		// instances can never be consumed; retire them for the in-flight
		// gauge and the open spans. On the normal-finish path advance()
		// already did this and the map is empty.
		for id := range s.insts {
			s.noteRetired(id)
		}
		s.insts = make(map[QuestionID]*instance)
		s.byKey = make(map[askKey]*instance)
	}
	return s.res
}

// proxyMember adapts the engine's pull on crowd.Member to the session's
// parked-question handshake.
type proxyMember struct {
	s    *Session
	id   string
	left chan struct{}
}

func (p *proxyMember) ID() string { return p.id }

// rendezvous parks the engine on a question and waits for the session to
// deliver the answer; ok is false when the session aborts or the member
// leaves while parked.
func (p *proxyMember) rendezvous(kind QuestionKind, key string, fs fact.Set, choices []fact.Set, terms []vocab.Term) (payload, bool) {
	a := &ask{
		key:     askKey{member: p.id, kind: kind, key: key},
		facts:   fs,
		choices: choices,
		terms:   terms,
		reply:   make(chan payload, 1),
	}
	select {
	case p.s.askCh <- a:
	case <-p.s.abort:
		return payload{}, false
	case <-p.left:
		return payload{}, false
	}
	// Once the ask is sent the session owns it and always replies (Leave
	// answers with leavePayload), so the engine provably touches no state
	// while the session runs: no left case here.
	select {
	case pay := <-a.reply:
		return pay, true
	case <-p.s.abort:
		return payload{}, false
	}
}

// Concrete implements crowd.Member.
func (p *proxyMember) Concrete(fs fact.Set) float64 {
	pay, ok := p.rendezvous(KindConcrete, fs.Key(), fs, nil, nil)
	if !ok {
		return 0
	}
	return pay.support
}

// ChooseSpecialization implements crowd.Member.
func (p *proxyMember) ChooseSpecialization(candidates []fact.Set) crowd.SpecializeResponse {
	pay, ok := p.rendezvous(KindSpecialization, specKey(candidates), nil, candidates, nil)
	if !ok {
		return crowd.DeclineSpecialization()
	}
	return pay.spec
}

// Irrelevant implements crowd.Member: the pruning click travels through
// the session protocol as a KindPruning question whose answer names the
// clicked term by index (or clicks nothing).
func (p *proxyMember) Irrelevant(terms []vocab.Term) (vocab.Term, bool) {
	if len(terms) == 0 {
		return vocab.None, false
	}
	pay, ok := p.rendezvous(KindPruning, pruneKey(terms), nil, nil, terms)
	if !ok {
		return vocab.None, false
	}
	if pay.spec.Chosen && pay.spec.Choice >= 0 && pay.spec.Choice < len(terms) {
		return terms[pay.spec.Choice], true
	}
	return vocab.None, false
}

// Left implements the engine's leaver interface.
func (p *proxyMember) Left() bool {
	select {
	case <-p.left:
		return true
	default:
		return false
	}
}

func (p *proxyMember) leave() {
	select {
	case <-p.left:
	default:
		close(p.left)
	}
}

// specKey builds the ask key of a specialization question from its
// candidate list.
func specKey(candidates []fact.Set) string {
	keys := make([]string, len(candidates))
	for i, c := range candidates {
		keys[i] = c.Key()
	}
	return strings.Join(keys, "||")
}

// pruneKey builds the ask key of a pruning question from its term list.
func pruneKey(terms []vocab.Term) string {
	var b strings.Builder
	for i, t := range terms {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", int(t))
	}
	return b.String()
}
