// Package core implements the paper's primary contribution: the query
// evaluation algorithm of Sections 4–5. It contains the vertical algorithm
// (Algorithm 1) with its inference scheme (Observation 4.4), the multi-user
// engine with per-member question queues (§4.2, §6.1 QueueManager), the
// specialization-question and user-guided-pruning optimizations (§4.1,
// §6.2), the CrowdCache answer store enabling threshold replay (§6.3), and
// the Horizontal and Naive baseline algorithms of §6.4.
package core

import (
	"oassis/internal/assign"
)

// Status is the classification state of an assignment.
type Status int

// Classification states.
const (
	Unclassified Status = iota
	Significant
	Insignificant
)

func (s Status) String() string {
	switch s {
	case Significant:
		return "significant"
	case Insignificant:
		return "insignificant"
	default:
		return "unclassified"
	}
}

// classifier tracks the classification of the whole (lazily explored)
// assignment lattice without materializing closures: it keeps the maximal
// known-significant nodes and the minimal known-insignificant nodes as
// anchors (Observation 4.4: significance is downward closed, insignificance
// upward closed). Nodes seen once are registered and their status is
// maintained incrementally — each new anchor performs a single order test
// per still-unclassified registered node — so repeated status queries over
// the engine's node pool are O(1).
type classifier struct {
	sp    *assign.Space
	sig   []assign.Assignment // maximal significant anchors
	insig []assign.Assignment // minimal insignificant anchors

	watched      map[string]assign.Assignment // registered nodes by key
	status_      map[string]Status
	unclassified map[string]struct{} // registered nodes still unclassified

	// onSignificant, when set, is invoked once for every registered node
	// that becomes significant (explicitly or by inference); the engine
	// uses it to schedule lattice expansion incrementally.
	onSignificant func(a assign.Assignment)
}

func newClassifier(sp *assign.Space) *classifier {
	return &classifier{
		sp:           sp,
		watched:      make(map[string]assign.Assignment),
		status_:      make(map[string]Status),
		unclassified: make(map[string]struct{}),
	}
}

// register adds a to the watch list, computing its status against the
// current anchors once.
func (c *classifier) register(a assign.Assignment) Status {
	key := a.Key()
	if st, ok := c.status_[key]; ok {
		return st
	}
	st := Unclassified
	for _, s := range c.sig {
		if c.sp.Leq(a, s) {
			st = Significant
			break
		}
	}
	if st == Unclassified {
		for _, i := range c.insig {
			if c.sp.Leq(i, a) {
				st = Insignificant
				break
			}
		}
	}
	c.watched[key] = a
	c.status_[key] = st
	if st == Unclassified {
		c.unclassified[key] = struct{}{}
	} else if st == Significant && c.onSignificant != nil {
		c.onSignificant(a)
	}
	return st
}

// status returns the classification of a, registering it if new.
func (c *classifier) status(a assign.Assignment) Status {
	if st, ok := c.status_[a.Key()]; ok {
		return st
	}
	return c.register(a)
}

// markSignificant records that a (and hence every predecessor of a) is
// significant. The anchor list keeps only maximal elements, and registered
// unclassified nodes are re-tested against the new anchor only.
func (c *classifier) markSignificant(a assign.Assignment) {
	for _, s := range c.sig {
		if c.sp.Leq(a, s) {
			c.setStatus(a, Significant)
			return // already implied
		}
	}
	kept := c.sig[:0]
	for _, s := range c.sig {
		if !c.sp.Leq(s, a) {
			kept = append(kept, s)
		}
	}
	c.sig = append(kept, a)
	c.setStatus(a, Significant)
	for key := range c.unclassified {
		w := c.watched[key]
		if c.sp.Leq(w, a) {
			c.status_[key] = Significant
			delete(c.unclassified, key)
			if c.onSignificant != nil {
				c.onSignificant(w)
			}
		}
	}
}

// markInsignificant records that a (and hence every successor of a) is
// insignificant.
func (c *classifier) markInsignificant(a assign.Assignment) {
	for _, i := range c.insig {
		if c.sp.Leq(i, a) {
			c.setStatus(a, Insignificant)
			return
		}
	}
	kept := c.insig[:0]
	for _, i := range c.insig {
		if !c.sp.Leq(a, i) {
			kept = append(kept, i)
		}
	}
	c.insig = append(kept, a)
	c.setStatus(a, Insignificant)
	for key := range c.unclassified {
		if c.sp.Leq(a, c.watched[key]) {
			c.status_[key] = Insignificant
			delete(c.unclassified, key)
		}
	}
}

func (c *classifier) setStatus(a assign.Assignment, st Status) {
	key := a.Key()
	if _, ok := c.status_[key]; !ok {
		c.watched[key] = a
	}
	prev := c.status_[key]
	c.status_[key] = st
	delete(c.unclassified, key)
	if st == Significant && prev != Significant && c.onSignificant != nil {
		c.onSignificant(a)
	}
}

// maximalSignificant returns the maximal significant nodes discovered — the
// set M of Algorithm 1 (which may include invalid assignments; the valid
// ones are the query's MSP output).
func (c *classifier) maximalSignificant() []assign.Assignment {
	out := make([]assign.Assignment, len(c.sig))
	copy(out, c.sig)
	return out
}
