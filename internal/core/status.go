// Package core implements the paper's primary contribution: the query
// evaluation algorithm of Sections 4–5. It contains the vertical algorithm
// (Algorithm 1) with its inference scheme (Observation 4.4), the multi-user
// engine with per-member question queues (§4.2, §6.1 QueueManager), the
// specialization-question and user-guided-pruning optimizations (§4.1,
// §6.2), the CrowdCache answer store enabling threshold replay (§6.3), and
// the Horizontal and Naive baseline algorithms of §6.4.
package core

import (
	"oassis/internal/assign"
)

// Status is the classification state of an assignment.
type Status int

// Classification states.
const (
	Unclassified Status = iota
	Significant
	Insignificant
)

func (s Status) String() string {
	switch s {
	case Significant:
		return "significant"
	case Insignificant:
		return "insignificant"
	default:
		return "unclassified"
	}
}

// classifier tracks the classification of the whole (lazily explored)
// assignment lattice without materializing closures: it keeps the maximal
// known-significant nodes and the minimal known-insignificant nodes as
// anchors (Observation 4.4: significance is downward closed, insignificance
// upward closed). Nodes seen once are registered and their status is
// maintained incrementally — each new anchor performs a single order test
// per still-unclassified registered node — so repeated status queries over
// the engine's node pool are O(1). Per-node state is flat, indexed by the
// shared nodeStore's dense ids; the zero value of a status slot is
// Unclassified, matching the old map's missing-key semantics.
type classifier struct {
	sp    *assign.Space
	ns    *nodeStore
	sig   []assign.Assignment // maximal significant anchors
	insig []assign.Assignment // minimal insignificant anchors

	tracked      []bool              // by id: status slot is authoritative
	status_      []Status            // by id; zero value Unclassified
	unclassified map[uint32]struct{} // tracked nodes still unclassified

	// onSignificant, when set, is invoked once for every tracked node that
	// becomes significant (explicitly or by inference); the engine uses it
	// to schedule lattice expansion incrementally.
	onSignificant func(id uint32)
}

func newClassifier(sp *assign.Space) *classifier {
	return newClassifierOn(sp, newNodeStore())
}

// newClassifierOn builds a classifier sharing the caller's node store, so
// the engine and the classifier agree on node ids.
func newClassifierOn(sp *assign.Space, ns *nodeStore) *classifier {
	return &classifier{sp: sp, ns: ns, unclassified: make(map[uint32]struct{})}
}

// grow extends the flat per-node state to cover id.
func (c *classifier) grow(id uint32) {
	for uint32(len(c.status_)) <= id {
		c.status_ = append(c.status_, Unclassified)
		c.tracked = append(c.tracked, false)
	}
}

// register adds a to the watch list, computing its status against the
// current anchors once.
func (c *classifier) register(a assign.Assignment) Status {
	return c.registerID(c.ns.intern(a))
}

// registerID is register for an already-interned node.
func (c *classifier) registerID(id uint32) Status {
	c.grow(id)
	if c.tracked[id] {
		return c.status_[id]
	}
	a := c.ns.node(id)
	st := Unclassified
	for _, s := range c.sig {
		if c.sp.Leq(a, s) {
			st = Significant
			break
		}
	}
	if st == Unclassified {
		for _, i := range c.insig {
			if c.sp.Leq(i, a) {
				st = Insignificant
				break
			}
		}
	}
	c.tracked[id] = true
	c.status_[id] = st
	if st == Unclassified {
		c.unclassified[id] = struct{}{}
	} else if st == Significant && c.onSignificant != nil {
		c.onSignificant(id)
	}
	return st
}

// status returns the classification of a, registering it if new.
func (c *classifier) status(a assign.Assignment) Status {
	if id, ok := c.ns.byKey(a.Key()); ok {
		return c.statusID(id)
	}
	return c.register(a)
}

// statusID returns the classification of an interned node, registering it
// if new.
func (c *classifier) statusID(id uint32) Status {
	if int(id) < len(c.tracked) && c.tracked[id] {
		return c.status_[id]
	}
	return c.registerID(id)
}

// markSignificant records that a (and hence every predecessor of a) is
// significant. The anchor list keeps only maximal elements, and tracked
// unclassified nodes are re-tested against the new anchor only.
func (c *classifier) markSignificant(a assign.Assignment) {
	for _, s := range c.sig {
		if c.sp.Leq(a, s) {
			c.setStatus(a, Significant)
			return // already implied
		}
	}
	kept := c.sig[:0]
	for _, s := range c.sig {
		if !c.sp.Leq(s, a) {
			kept = append(kept, s)
		}
	}
	c.sig = append(kept, a)
	c.setStatus(a, Significant)
	for id := range c.unclassified {
		w := c.ns.node(id)
		if c.sp.Leq(w, a) {
			c.status_[id] = Significant
			delete(c.unclassified, id)
			if c.onSignificant != nil {
				c.onSignificant(id)
			}
		}
	}
}

// markInsignificant records that a (and hence every successor of a) is
// insignificant.
func (c *classifier) markInsignificant(a assign.Assignment) {
	for _, i := range c.insig {
		if c.sp.Leq(i, a) {
			c.setStatus(a, Insignificant)
			return
		}
	}
	kept := c.insig[:0]
	for _, i := range c.insig {
		if !c.sp.Leq(a, i) {
			kept = append(kept, i)
		}
	}
	c.insig = append(kept, a)
	c.setStatus(a, Insignificant)
	for id := range c.unclassified {
		if c.sp.Leq(a, c.ns.node(id)) {
			c.status_[id] = Insignificant
			delete(c.unclassified, id)
		}
	}
}

func (c *classifier) setStatus(a assign.Assignment, st Status) {
	id := c.ns.intern(a)
	c.grow(id)
	prev := c.status_[id]
	c.tracked[id] = true
	c.status_[id] = st
	delete(c.unclassified, id)
	if st == Significant && prev != Significant && c.onSignificant != nil {
		c.onSignificant(id)
	}
}

// maximalSignificant returns the maximal significant nodes discovered — the
// set M of Algorithm 1 (which may include invalid assignments; the valid
// ones are the query's MSP output).
func (c *classifier) maximalSignificant() []assign.Assignment {
	out := make([]assign.Assignment, len(c.sig))
	copy(out, c.sig)
	return out
}
