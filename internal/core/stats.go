package core

import "fmt"

// QuestionKind classifies crowd answers, matching the breakdown the paper
// reports in §6.3 (concrete, specialization, "none of these", user-guided
// pruning clicks).
type QuestionKind int

// Answer kinds.
const (
	KindConcrete QuestionKind = iota
	KindSpecialization
	KindNoneOfThese
	KindPruning
)

func (k QuestionKind) String() string {
	switch k {
	case KindConcrete:
		return "concrete"
	case KindSpecialization:
		return "specialization"
	case KindNoneOfThese:
		return "none-of-these"
	case KindPruning:
		return "pruning"
	default:
		return fmt.Sprintf("QuestionKind(%d)", int(k))
	}
}

// Point is one timeline sample, taken after each counted crowd answer.
type Point struct {
	Questions       int // cumulative counted answers
	ClassifiedValid int // valid base assignments classified so far
	MSPsFound       int // chain maxima recorded so far (MSP candidates)
}

// Stats aggregates the measurements the paper's figures are built from.
type Stats struct {
	TotalQuestions  int // all counted crowd answers, including repetitions
	UniqueQuestions int // distinct fact-set questions (crowd complexity, §4.1)

	Concrete       int
	Specialization int
	NoneOfThese    int
	Pruning        int

	// FreeAnswers are answers derived without user effort (member answer
	// cache hits and pruning inferences); they are not counted above.
	FreeAnswers int

	// PrimedAnswers counts answers served from a prior run's CrowdCache
	// (threshold replay, §6.3); they are included in TotalQuestions.
	PrimedAnswers int

	// ForcedClassifications counts nodes classified by mean because the
	// crowd was exhausted before the aggregator could decide.
	ForcedClassifications int

	// BannedMembers counts members excluded by the consistency spam filter
	// (§4.2 crowd-member selection).
	BannedMembers int

	// SpamFlagged counts members flagged by an accuracy-weighted stop
	// policy's spammer floor (Config.Stop); like consistency bans, a
	// flagged member stops receiving questions, and the weighted
	// aggregator drops their answers.
	SpamFlagged int

	// StoppedEarly reports that the stop policy ended the run before
	// every generated node was classified (the species estimator's
	// coverage target was reached).
	StoppedEarly bool

	// StopEstimate is the stop policy's final estimate in [0, 1]:
	// answer-set completeness for the species estimator, mean member
	// accuracy for the accuracy policy, 0 otherwise.
	StopEstimate float64

	// StopSettled counts pool nodes an early stop force-classified from
	// the answers already in hand (the frontier settlement pass) instead
	// of asking further questions.
	StopSettled int

	// StopUnclassified counts pool nodes an early stop left
	// unclassified — nodes that never received an answer, a lower bound
	// on the crowd answers saved.
	StopUnclassified int

	// StoreErrors counts failed appends to Config.Store; the run keeps
	// going (answers are too expensive to discard over a disk error), but
	// a non-zero count means the store is missing records.
	StoreErrors int

	GeneratedNodes int // lattice nodes generated lazily

	Timeline []Point // present when Config.TrackTimeline
}

func (s *Stats) String() string {
	return fmt.Sprintf("questions=%d unique=%d (concrete=%d special=%d none=%d prune=%d free=%d) nodes=%d",
		s.TotalQuestions, s.UniqueQuestions, s.Concrete, s.Specialization,
		s.NoneOfThese, s.Pruning, s.FreeAnswers, s.GeneratedNodes)
}
