package core

import (
	"math/rand"

	"oassis/internal/crowd"
)

// DispatchStats reports what the concurrent dispatcher did beyond the
// run's own statistics: how much speculation it paid for the wall-clock
// win. The numbers never influence the mined result.
type DispatchStats struct {
	// Launched counts questions sent to members, including speculative
	// ones the engine never consumed.
	Launched int
	// Wasted counts answers collected but discarded (their question was
	// outrun by the round or the run ended first).
	Wasted int
	// MaxInFlight is the peak number of questions concurrently in flight.
	MaxInFlight int
}

// RunConcurrent executes the same mining run as Run, but keeps up to
// parallelism questions in flight at once: it drives a Session from a
// single event loop, fanning questions out to the configured members on
// worker goroutines and merging answers back in the engine's own order.
// The result is bit-identical to Run(cfg) at any parallelism for members
// whose answers depend only on (member, question) — speculative answers
// the engine never asks for are discarded without entering the
// statistics. With parallelism 1 only the engine's own next question is
// ever asked, so the question sequence is exactly sequential even for
// randomized members.
//
// seed drives only the launch order among speculative questions when
// capacity is scarce; it affects wall-clock and waste, never the result.
func RunConcurrent(cfg Config, parallelism int, seed int64) (*Result, DispatchStats) {
	if parallelism < 1 {
		parallelism = 1
	}
	byID := make(map[string]crowd.Member, len(cfg.Members))
	ids := make([]string, 0, len(cfg.Members))
	for _, m := range cfg.Members {
		ids = append(ids, m.ID())
		byID[m.ID()] = m
	}
	s := NewSession(cfg, ids)
	rng := rand.New(rand.NewSource(seed))

	type outcome struct {
		id  QuestionID
		ans Answer
	}
	results := make(chan outcome, parallelism)
	inFlight := make(map[QuestionID]bool, parallelism)
	var ds DispatchStats

	launch := func(q Question) {
		inFlight[q.ID] = true
		ds.Launched++
		cfg.Metrics.launched()
		if len(inFlight) > ds.MaxInFlight {
			ds.MaxInFlight = len(inFlight)
		}
		m := byID[q.Member]
		go func() {
			var a Answer
			switch q.Kind {
			case KindSpecialization:
				r := m.ChooseSpecialization(q.Choices)
				a = Answer{Support: r.Support, Choice: r.Choice, Chosen: r.Chosen, Declined: r.Declined}
			case KindPruning:
				if t, ok := m.Irrelevant(q.Terms); ok {
					for i, cand := range q.Terms {
						if cand == t {
							a = AnswerIrrelevant(i)
							break
						}
					}
				}
			default:
				a = AnswerSupport(m.Concrete(q.Facts))
			}
			results <- outcome{id: q.ID, ans: a}
		}()
	}

	for {
		qs := s.Next()
		if qs == nil && len(inFlight) == 0 {
			break
		}
		// Top up the in-flight set: the engine's blocked question first
		// (it is the only one guaranteed to advance the run), then
		// speculative questions in seeded random order.
		var fresh []Question
		for _, q := range qs {
			if !inFlight[q.ID] {
				fresh = append(fresh, q)
			}
		}
		if len(fresh) > 0 {
			rest := fresh
			if fresh[0].ID == qs[0].ID {
				rest = fresh[1:] // keep the blocked question first
			}
			rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
		}
		for _, q := range fresh {
			if len(inFlight) >= parallelism {
				break
			}
			launch(q)
		}
		o := <-results
		delete(inFlight, o.id)
		if s.Done() {
			ds.Wasted++ // landed after the run ended
			cfg.Metrics.wasted(1)
			continue
		}
		if err := s.Submit(o.id, o.ans); err != nil {
			ds.Wasted++ // the question was consumed another way
			cfg.Metrics.wasted(1)
		}
	}
	res := s.Close()
	// Submit silently buffers answers to retired questions; count the
	// buffered leftovers the engine never consumed as waste too.
	ds.Wasted += len(s.buffered)
	cfg.Metrics.wasted(len(s.buffered))
	return res, ds
}
