package core

import (
	"errors"
	"fmt"
	"testing"

	"oassis/internal/aggregate"
	"oassis/internal/crowd"
)

// TestSessionSubmitBatch drives a session with successor speculation on,
// merging every round's questions through one SubmitBatch in reverse
// surfacing order: the batch must apply in deterministic (ID) order and
// the run must match the plain batch Run bit for bit, with the successor
// speculation actually surfacing extra concrete questions.
func TestSessionSubmitBatch(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	batch := Run(Config{
		Space:   sp,
		Theta:   q.Support,
		Members: sampleMembers(s),
		Agg:     aggregate.NewFixedSample(2),
	})

	_, _, sp2 := buildSpace(t, figure3Restricted)
	sess := NewSession(Config{
		Space:            sp2,
		Theta:            q.Support,
		Agg:              aggregate.NewFixedSample(2),
		PanelSpeculation: 8,
	}, []string{"u1", "u2"})
	u1, u2 := crowd.SampleDBs(s)
	dbs := map[string]*crowd.PersonalDB{"u1": u1, "u2": u2}

	speculated := 0
	for qs := sess.Next(); qs != nil; qs = sess.Next() {
		subs := make([]Submission, 0, len(qs))
		for i := len(qs) - 1; i >= 0; i-- {
			if qs[i].Speculative {
				speculated++
			}
			subs = append(subs, Submission{ID: qs[i].ID, Answer: answerFromDB(dbs[qs[i].Member], qs[i])})
		}
		if err := sess.SubmitBatch(subs); err != nil && !errors.Is(err, ErrSessionDone) {
			t.Fatalf("SubmitBatch: %v", err)
		}
	}
	res := sess.Close()
	if sess.BufferedWaste() < 0 {
		t.Errorf("BufferedWaste = %d, want >= 0", sess.BufferedWaste())
	}
	want := mspNames(sp, batch.ValidMSPs)
	got := mspNames(sp2, res.ValidMSPs)
	if len(got) != len(want) {
		t.Fatalf("batched session %v vs batch run %v", got, want)
	}
	for k := range want {
		if !got[k] {
			t.Errorf("batched session missing MSP %s", k)
		}
	}
	if fmt.Sprintf("%+v", res.Stats) != fmt.Sprintf("%+v", batch.Stats) {
		t.Errorf("stats diverged:\nsession %+v\nbatch   %+v", res.Stats, batch.Stats)
	}
	// Two members with PanelSpeculation 8 on this space must surface more
	// than the blocked question's mirror.
	if speculated < 2 {
		t.Errorf("successor speculation surfaced %d question(s)", speculated)
	}
}

// TestSessionAggregateHint: the running aggregate a prior source reads
// is empty before any answer and reflects the collected mean after.
func TestSessionAggregateHint(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	sess := NewSession(Config{
		Space: sp,
		Theta: q.Support,
		Agg:   aggregate.NewFixedSample(2),
	}, []string{"u1", "u2"})
	defer sess.Close()
	u1, _ := crowd.SampleDBs(s)

	qs := sess.Next()
	if len(qs) == 0 || qs[0].Kind != KindConcrete {
		t.Fatalf("first question = %+v, want concrete", qs)
	}
	first := qs[0]
	if mean, n := sess.AggregateHint(first.Facts); n != 0 || mean != 0 {
		t.Fatalf("hint before any answer = (%v, %d), want (0, 0)", mean, n)
	}
	support := u1.Support(first.Facts)
	if err := sess.Submit(first.ID, AnswerSupport(support)); err != nil {
		t.Fatal(err)
	}
	if mean, n := sess.AggregateHint(first.Facts); n != 1 || mean != support {
		t.Errorf("hint after one answer = (%v, %d), want (%v, 1)", mean, n, support)
	}
}
