package core

import (
	"oassis/internal/assign"
)

// nodeStore interns lattice nodes into dense uint32 ids. The engine and the
// classifier index all their per-node state — pool membership, expansion
// flags, successor memos, instantiation memos, classification — by these
// ids in flat slices instead of string-keyed maps, so the per-answer hot
// path pays one map probe (the intern) per node instead of one per table.
type nodeStore struct {
	ids   map[string]uint32 // canonical key -> id
	nodes []assign.Assignment
}

func newNodeStore() *nodeStore {
	return &nodeStore{ids: make(map[string]uint32)}
}

// intern returns the dense id of a, assigning the next id on first sight.
func (ns *nodeStore) intern(a assign.Assignment) uint32 {
	k := a.Key()
	if id, ok := ns.ids[k]; ok {
		return id
	}
	id := uint32(len(ns.nodes))
	ns.ids[k] = id
	ns.nodes = append(ns.nodes, a)
	return id
}

// byKey returns the id of the node with canonical key k, if interned.
func (ns *nodeStore) byKey(k string) (uint32, bool) {
	id, ok := ns.ids[k]
	return id, ok
}

// node returns the assignment with the given id.
func (ns *nodeStore) node(id uint32) assign.Assignment { return ns.nodes[id] }
