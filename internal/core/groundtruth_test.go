package core

import (
	"fmt"
	"math/rand"
	"testing"

	"oassis/internal/aggregate"
	"oassis/internal/assign"
	"oassis/internal/crowd"
	"oassis/internal/fact"
	"oassis/internal/oassisql"
	"oassis/internal/vocab"
)

// randomSetup builds a small random two-variable mining space and a crowd
// of members with random personal histories, plus everything needed to
// compute ground truth by brute force.
type randomSetup struct {
	voc     *vocab.Vocabulary
	sp      *assign.Space
	members []crowd.Member
	dbs     []*crowd.PersonalDB
	yTerms  []vocab.Term
	xTerms  []vocab.Term
	rel     vocab.Term
	theta   float64
	mult    bool
}

func newRandomSetup(rng *rand.Rand, mult bool) *randomSetup {
	v := vocab.New()
	rel := v.MustAddRelation("does")
	yRoot := v.MustAddElement("yroot")
	xRoot := v.MustAddElement("xroot")
	grow := func(root vocab.Term, prefix string, n int) []vocab.Term {
		terms := []vocab.Term{root}
		for i := 0; i < n; i++ {
			t := v.MustAddElement(fmt.Sprintf("%s%d", prefix, i))
			v.MustAddOrder(terms[rng.Intn(len(terms))], t)
			terms = append(terms, t)
		}
		return terms
	}
	yTerms := grow(yRoot, "y", 6+rng.Intn(4))
	xTerms := grow(xRoot, "x", 3+rng.Intn(3))
	if err := v.Freeze(); err != nil {
		panic(err)
	}

	m := oassisql.MultOne
	if mult {
		m = oassisql.MultPlus
	}
	q := &oassisql.Query{
		Select:  oassisql.SelectFactSets,
		Support: 0.5,
		Satisfying: []oassisql.Pattern{{
			S:     oassisql.Var("y"),
			SMult: m,
			R:     oassisql.TermAtom("does"),
			O:     oassisql.Var("x"),
			OMult: oassisql.MultOne,
		}},
	}
	var bindings []map[string]vocab.Term
	for _, y := range yTerms[1:] {
		for _, x := range xTerms[1:] {
			bindings = append(bindings, map[string]vocab.Term{"y": y, "x": x})
		}
	}
	anchors := map[string][]vocab.Term{"y": {yRoot}, "x": {xRoot}}
	sp, err := assign.NewSpace(v, q, bindings, anchors)
	if err != nil {
		panic(err)
	}

	s := &randomSetup{voc: v, sp: sp, yTerms: yTerms, xTerms: xTerms, rel: rel,
		theta: 0.34, mult: mult}
	nMembers := 2 + rng.Intn(3)
	for i := 0; i < nMembers; i++ {
		db := crowd.NewPersonalDB(v)
		txns := 3 + rng.Intn(4)
		for t := 0; t < txns; t++ {
			var tx fact.Set
			for f := 0; f < 1+rng.Intn(3); f++ {
				tx = append(tx, fact.Fact{
					S: yTerms[1+rng.Intn(len(yTerms)-1)],
					R: rel,
					O: xTerms[1+rng.Intn(len(xTerms)-1)],
				})
			}
			db.Add(tx.Canon())
		}
		s.dbs = append(s.dbs, db)
		s.members = append(s.members, &crowd.SimMember{
			Name: fmt.Sprintf("m%d", i), DB: db, Disc: crowd.Exact,
		})
	}
	return s
}

// meanSupport computes the exact crowd mean support of a fact-set.
func (s *randomSetup) meanSupport(fs fact.Set) float64 {
	sum := 0.0
	for _, db := range s.dbs {
		sum += db.Support(fs)
	}
	return sum / float64(len(s.dbs))
}

// significant tests an assignment against the ground truth.
func (s *randomSetup) significant(a assign.Assignment) bool {
	return s.meanSupport(s.sp.Instantiate(a)) >= s.theta-aggregate.Eps
}

// enumerate lists every assignment of 𝒜 with y-multiplicity ≤ maxMult,
// independently of the engine's lattice moves: all (ySet, x) combinations
// over the full domains, filtered by InA.
func (s *randomSetup) enumerate(maxMult int) []assign.Assignment {
	var out []assign.Assignment
	ys := s.yTerms
	xs := s.xTerms
	var ySets [][]vocab.Term
	for _, y := range ys {
		ySets = append(ySets, []vocab.Term{y})
	}
	if maxMult >= 2 {
		for i := range ys {
			for j := i + 1; j < len(ys); j++ {
				if !s.voc.Comparable(ys[i], ys[j]) {
					ySets = append(ySets, []vocab.Term{ys[i], ys[j]})
				}
			}
		}
	}
	for _, ySet := range ySets {
		for _, x := range xs {
			vals := [][]vocab.Term{ySet, {x}}
			a := s.sp.NewAssignment(vals, nil)
			if s.sp.InA(a) {
				out = append(out, a)
			}
		}
	}
	return out
}

// trueMSPs computes the maximal significant assignments by brute force over
// the enumerated lattice.
func (s *randomSetup) trueMSPs(maxMult int) []assign.Assignment {
	nodes := s.enumerate(maxMult)
	var sig []assign.Assignment
	for _, a := range nodes {
		if s.significant(a) {
			sig = append(sig, a)
		}
	}
	var out []assign.Assignment
	for i, a := range sig {
		maximal := true
		for j, b := range sig {
			if i != j && s.sp.Lt(a, b) {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, a)
		}
	}
	return out
}

// TestEngineMatchesBruteForce cross-checks the engine's MSPs against an
// exhaustive ground-truth computation on many random crowds, for the
// multiplicity-free case where the enumeration is complete.
func TestEngineMatchesBruteForce(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 100))
		s := newRandomSetup(rng, false)
		res := Run(Config{
			Space:   s.sp,
			Theta:   s.theta,
			Members: s.members,
			Agg:     aggregate.NewFixedSample(len(s.members)),
		})
		want := s.trueMSPs(1)
		wantKeys := map[string]bool{}
		for _, m := range want {
			wantKeys[m.Key()] = true
		}
		gotKeys := map[string]bool{}
		for _, m := range res.MSPs {
			gotKeys[m.Key()] = true
		}
		for k := range wantKeys {
			if !gotKeys[k] {
				t.Errorf("trial %d: true MSP missing from engine output", trial)
			}
		}
		for _, m := range res.MSPs {
			if !wantKeys[m.Key()] {
				t.Errorf("trial %d: engine reported non-MSP %s (significant=%v)",
					trial, s.sp.Format(m), s.significant(m))
			}
		}
	}
}

// TestEngineMatchesBruteForceWithMultiplicities does the same with the +
// multiplicity, comparing only MSPs of size ≤ 2 from both sides (the
// brute-force enumeration is bounded).
func TestEngineMatchesBruteForceWithMultiplicities(t *testing.T) {
	for trial := 0; trial < 15; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 500))
		s := newRandomSetup(rng, true)
		res := Run(Config{
			Space:   s.sp,
			Theta:   s.theta,
			Members: s.members,
			Agg:     aggregate.NewFixedSample(len(s.members)),
		})
		want := s.trueMSPs(2)
		wantKeys := map[string]bool{}
		for _, m := range want {
			wantKeys[m.Key()] = true
		}
		gotSmall := map[string]bool{}
		maxGotSize := 0
		for _, m := range res.MSPs {
			if n := len(m.Vals[0]); n > maxGotSize {
				maxGotSize = n
			}
			if len(m.Vals[0]) <= 2 {
				gotSmall[m.Key()] = true
			}
		}
		// Every size-≤2 true MSP must be reported unless it is dominated by
		// a larger engine MSP (size ≥ 3), which the bounded enumeration
		// cannot see.
		for k := range wantKeys {
			if gotSmall[k] {
				continue
			}
			covered := false
			for _, m := range res.MSPs {
				if len(m.Vals[0]) > 2 {
					for _, w := range want {
						if w.Key() == k && s.sp.Leq(w, m) {
							covered = true
						}
					}
				}
			}
			if !covered {
				t.Errorf("trial %d: true ≤2-MSP neither reported nor dominated", trial)
			}
		}
		// Engine MSPs of size ≤ 2 must be true MSPs of the bounded lattice
		// or dominated... they must at least be significant and maximal
		// among size-≤2 significant nodes.
		for _, m := range res.MSPs {
			if !s.significant(m) {
				t.Errorf("trial %d: engine MSP not significant: %s", trial, s.sp.Format(m))
			}
		}
	}
}

// TestEngineClassifiesEverything checks the termination invariant: at the
// end of a run, every valid base assignment has a definite classification
// consistent with the ground truth significance.
func TestEngineClassifiesEverything(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 900))
		s := newRandomSetup(rng, false)
		e := newEngine(Config{
			Space:   s.sp,
			Theta:   s.theta,
			Members: s.members,
			Agg:     aggregate.NewFixedSample(len(s.members)),
		})
		e.seed()
		e.mainLoop()
		for _, row := range s.sp.ValidBase {
			a := s.sp.Singleton(row...)
			st := e.cls.status(a)
			if st == Unclassified {
				t.Fatalf("trial %d: valid assignment left unclassified: %s",
					trial, s.sp.Format(a))
			}
			if want := s.significant(a); (st == Significant) != want {
				t.Errorf("trial %d: %s classified %v, truth %v",
					trial, s.sp.Format(a), st, want)
			}
		}
	}
}
