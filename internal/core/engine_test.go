package core

import (
	"math/rand"
	"testing"

	"oassis/internal/aggregate"
	"oassis/internal/assign"
	"oassis/internal/crowd"
	"oassis/internal/fact"
	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/sparql"
	"oassis/internal/vocab"
)

// figure2Full is the complete Figure 2 query of the paper (without MORE,
// which individual tests enable through the MoreCandidates pool).
const figure2Full = `
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity .
  $z instanceOf Restaurant.
  $z nearBy $x
SATISFYING
  $y+ doAt $x .
  [] eatAt $z
WITH SUPPORT = 0.4
`

// figure3Restricted is the grey-highlighted restriction used in Figure 3.
const figure3Restricted = `
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity
SATISFYING
  $y+ doAt $x
WITH SUPPORT = 0.4
`

func buildSpace(t testing.TB, src string) (*ontology.Sample, *oassisql.Query, *assign.Space) {
	t.Helper()
	s := ontology.NewSample()
	q := oassisql.MustParse(src)
	bs, err := sparql.Evaluate(s.Onto, q.Where)
	if err != nil {
		t.Fatal(err)
	}
	maps := make([]map[string]vocab.Term, len(bs))
	for i, b := range bs {
		maps[i] = b
	}
	sp, err := assign.NewSpace(s.Voc, q, maps, sparql.Anchors(s.Voc, q.Where))
	if err != nil {
		t.Fatal(err)
	}
	return s, q, sp
}

// sampleMembers returns u1 and u2 of Table 3 as exact-answer members.
func sampleMembers(s *ontology.Sample) []crowd.Member {
	u1, u2 := crowd.SampleDBs(s)
	return []crowd.Member{
		&crowd.SimMember{Name: "u1", DB: u1, Disc: crowd.Exact},
		&crowd.SimMember{Name: "u2", DB: u2, Disc: crowd.Exact},
	}
}

// mspNames formats MSPs for comparison.
func mspNames(sp *assign.Space, msps []assign.Assignment) map[string]bool {
	out := map[string]bool{}
	for _, m := range msps {
		out[sp.Format(m)] = true
	}
	return out
}

func TestClassifierAnchors(t *testing.T) {
	s, _, sp := buildSpace(t, figure3Restricted)
	c := newClassifier(sp)
	mk := func(y, x string) assign.Assignment {
		return sp.Singleton(s.T(y), s.T(x))
	}
	sport := mk("Sport", "Central Park")
	biking := mk("Biking", "Central Park")
	ballGame := mk("Ball Game", "Central Park")
	basketball := mk("Basketball", "Central Park")
	if c.status(sport) != Unclassified {
		t.Fatal("fresh node should be unclassified")
	}
	c.markSignificant(biking)
	if c.status(sport) != Significant {
		t.Error("predecessor of significant not significant")
	}
	if c.status(ballGame) != Unclassified {
		t.Error("incomparable node classified")
	}
	c.markInsignificant(ballGame)
	if c.status(basketball) != Insignificant {
		t.Error("successor of insignificant not insignificant")
	}
	if c.status(biking) != Significant {
		t.Error("explicit significant lost")
	}
	// Anchor minimality/maximality maintenance.
	c.markSignificant(mk("Sport", "Central Park")) // implied, no-op
	if len(c.sig) != 1 {
		t.Errorf("sig anchors = %d, want 1", len(c.sig))
	}
	c.markInsignificant(basketball) // implied, no-op
	if len(c.insig) != 1 {
		t.Errorf("insig anchors = %d, want 1", len(c.insig))
	}
}

func TestRunningExampleRestricted(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	res := Run(Config{
		Space:   sp,
		Theta:   q.Support,
		Members: sampleMembers(s),
		Agg:     aggregate.NewFixedSample(2),
	})
	got := mspNames(sp, res.ValidMSPs)
	want := []string{
		"y↦{Biking}, x↦{Central Park}",
		"y↦{Ball Game}, x↦{Central Park}",
		"y↦{Feed a Monkey}, x↦{Bronx Zoo}",
	}
	if len(got) != len(want) {
		t.Fatalf("ValidMSPs = %v, want %v", got, want)
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing MSP %s (got %v)", w, got)
		}
	}
	if res.Stats.TotalQuestions == 0 || res.Stats.UniqueQuestions == 0 {
		t.Error("no questions counted")
	}
	if res.Stats.UniqueQuestions > res.Stats.TotalQuestions {
		t.Error("unique > total")
	}
}

func TestRunningExampleFullQuery(t *testing.T) {
	// The paper's final answers: biking in Central Park + eat at Maoz Veg,
	// ball games in Central Park + eat at Maoz Veg, feed a monkey at the
	// Bronx Zoo + eat at Pine.
	s, q, sp := buildSpace(t, figure2Full)
	res := Run(Config{
		Space:   sp,
		Theta:   q.Support,
		Members: sampleMembers(s),
		Agg:     aggregate.NewFixedSample(2),
	})
	got := mspNames(sp, res.ValidMSPs)
	want := []string{
		"y↦{Biking}, x↦{Central Park}, z↦{Maoz Veg}",
		"y↦{Ball Game}, x↦{Central Park}, z↦{Maoz Veg}",
		"y↦{Feed a Monkey}, x↦{Bronx Zoo}, z↦{Pine}",
	}
	if len(got) != len(want) {
		t.Fatalf("ValidMSPs = %v, want %v", got, want)
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing MSP %s", w)
		}
	}
}

func TestMoreExtensionExample32(t *testing.T) {
	// Example 3.2: with the MORE keyword, biking in Central Park extends
	// with "Rent Bikes doAt Boathouse" (support 5/12 ≥ 0.4), while the
	// ball-game MSP does not extend.
	s, q, sp := buildSpace(t, figure2Full)
	sp.More = true
	sp.MoreCandidates = fact.Set{s.Fact("Rent Bikes", "doAt", "Boathouse")}
	res := Run(Config{
		Space:   sp,
		Theta:   q.Support,
		Members: sampleMembers(s),
		Agg:     aggregate.NewFixedSample(2),
	})
	got := mspNames(sp, res.ValidMSPs)
	if !got["y↦{Biking}, x↦{Central Park}, z↦{Maoz Veg} +more{Rent Bikes doAt Boathouse}"] {
		t.Errorf("biking MSP did not extend with the boathouse tip: %v", got)
	}
	if got["y↦{Biking}, x↦{Central Park}, z↦{Maoz Veg}"] {
		t.Error("non-maximal biking node reported as MSP")
	}
	if !got["y↦{Ball Game}, x↦{Central Park}, z↦{Maoz Veg}"] {
		t.Error("ball-game MSP lost")
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	for _, src := range []string{figure3Restricted, figure2Full} {
		s, q, sp := buildSpace(t, src)
		mk := func() Config {
			return Config{
				Space:   sp,
				Theta:   q.Support,
				Members: sampleMembers(s),
				Agg:     aggregate.NewFixedSample(2),
			}
		}
		v := Run(mk())
		h := RunHorizontal(mk())
		n := RunNaive(mk(), v.MSPs)
		vm, hm, nm := mspNames(sp, v.ValidMSPs), mspNames(sp, h.ValidMSPs), mspNames(sp, n.ValidMSPs)
		if len(vm) != len(hm) {
			t.Fatalf("vertical %v vs horizontal %v", vm, hm)
		}
		for k := range vm {
			if !hm[k] {
				t.Errorf("horizontal missing %s", k)
			}
			if !nm[k] {
				t.Errorf("naive missing %s", k)
			}
		}
	}
}

func TestThresholdReplay(t *testing.T) {
	s, _, sp := buildSpace(t, figure3Restricted)
	// Mine at a low threshold, recording the cache.
	low := Run(Config{
		Space:   sp,
		Theta:   0.2,
		Members: sampleMembers(s),
		Agg:     aggregate.NewFixedSample(2),
	})
	if low.Cache.Len() == 0 {
		t.Fatal("empty cache")
	}
	// Replay at a higher threshold: cached answers are reused, questions
	// the original run never asked fall through to the live members (§6.3).
	_, _, sp2 := buildSpace(t, figure3Restricted)
	replay := Run(Config{
		Space:   sp2,
		Theta:   0.4,
		Members: sampleMembers(s),
		Agg:     aggregate.NewFixedSample(2),
		Prime:   low.Cache,
	})
	// Direct mining at 0.4 must agree.
	_, _, sp3 := buildSpace(t, figure3Restricted)
	direct := Run(Config{
		Space:   sp3,
		Theta:   0.4,
		Members: sampleMembers(s),
		Agg:     aggregate.NewFixedSample(2),
	})
	rm, dm := mspNames(sp2, replay.ValidMSPs), mspNames(sp3, direct.ValidMSPs)
	if len(rm) != len(dm) {
		t.Fatalf("replay %v vs direct %v", rm, dm)
	}
	for k := range dm {
		if !rm[k] {
			t.Errorf("replay missing %s", k)
		}
	}
	// Most replay answers must come from the primed cache; a handful of
	// fresh questions are allowed for nodes the low-threshold run
	// classified purely by inference and never asked.
	if replay.Stats.PrimedAnswers == 0 {
		t.Error("replay used no cached answers")
	}
	fresh := replay.Stats.TotalQuestions - replay.Stats.PrimedAnswers
	if fresh > replay.Stats.PrimedAnswers/2 {
		t.Errorf("replay mostly missed the cache: %d fresh vs %d primed",
			fresh, replay.Stats.PrimedAnswers)
	}
}

func TestCachedMemberFallback(t *testing.T) {
	s, _, sp := buildSpace(t, figure3Restricted)
	low := Run(Config{Space: sp, Theta: 0.2, Members: sampleMembers(s),
		Agg: aggregate.NewFixedSample(2)})
	cm := &CachedMember{Name: "u1", Cache: low.Cache}
	// A question asked at theta 0.2 hits; a made-up one misses with 0.
	asked := sp.Instantiate(sp.Singleton(s.T("Activity"), s.T("Attraction")))
	if cm.Concrete(asked) <= 0 || cm.Hits != 1 {
		t.Error("cached answer not served")
	}
	never := fact.Set{s.Fact("Swimming", "doAt", "Madison Square")}
	if cm.Concrete(never) != 0 || cm.Misses != 1 {
		t.Error("miss not recorded")
	}
	if r := cm.ChooseSpecialization(nil); r.Chosen || !r.Declined {
		t.Error("cached member should decline specializations")
	}
	if _, ok := cm.Irrelevant(nil); ok {
		t.Error("cached member should not prune")
	}
	if cm.ID() != "u1" {
		t.Error("ID wrong")
	}
}

func TestQuestionsDecreaseWithThreshold(t *testing.T) {
	// The paper observes that the number of questions generally decreases
	// as the threshold rises (fewer MSPs, more pruning); the trend is not
	// strictly monotone step to step (different traversals), so we compare
	// the extremes and allow small local up-ticks.
	s, _, _ := buildSpace(t, figure3Restricted)
	counts := map[float64]int{}
	for _, theta := range []float64{0.2, 0.3, 0.4, 0.5} {
		_, _, sp := buildSpace(t, figure3Restricted)
		res := Run(Config{
			Space:   sp,
			Theta:   theta,
			Members: sampleMembers(s),
			Agg:     aggregate.NewFixedSample(2),
		})
		counts[theta] = res.Stats.TotalQuestions
	}
	if counts[0.5] >= counts[0.2] {
		t.Errorf("questions did not drop from theta 0.2 (%d) to 0.5 (%d)",
			counts[0.2], counts[0.5])
	}
	for _, pair := range [][2]float64{{0.2, 0.3}, {0.3, 0.4}, {0.4, 0.5}} {
		lo, hi := counts[pair[0]], counts[pair[1]]
		if hi > lo+lo/5 {
			t.Errorf("questions at theta %v (%d) far exceed theta %v (%d)",
				pair[1], hi, pair[0], lo)
		}
	}
}

func TestMaxQuestionsBudget(t *testing.T) {
	s, q, sp := buildSpace(t, figure2Full)
	res := Run(Config{
		Space:        sp,
		Theta:        q.Support,
		Members:      sampleMembers(s),
		Agg:          aggregate.NewFixedSample(2),
		MaxQuestions: 5,
	})
	if res.Stats.TotalQuestions > 5 {
		t.Errorf("budget exceeded: %d", res.Stats.TotalQuestions)
	}
}

func TestCrowdComplexityBound(t *testing.T) {
	// Proposition 4.7: unique questions ∈ O((|E|+|R|)·|msp| + |msp⁻|),
	// where msp⁻ is the set of minimal insignificant assignments. We check
	// the concrete bound with constant 1 against the run.
	s, q, sp := buildSpace(t, figure3Restricted)
	res := Run(Config{
		Space:   sp,
		Theta:   q.Support,
		Members: sampleMembers(s),
		Agg:     aggregate.NewFixedSample(2),
	})
	e := newEngine(Config{Space: sp}) // just for the classifier type
	_ = e
	terms := s.Voc.Len()
	bound := terms*len(res.MSPs) + res.Stats.UniqueQuestions // msp⁻ ≤ unique
	if res.Stats.UniqueQuestions > bound {
		t.Errorf("unique questions %d exceed Prop 4.7 bound %d",
			res.Stats.UniqueQuestions, bound)
	}
	if len(res.MSPs) == 0 {
		t.Fatal("no MSPs")
	}
}

func TestSpecializationQuestions(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	u1, u2 := crowd.SampleDBs(s)
	members := []crowd.Member{
		&crowd.SimMember{Name: "u1", DB: u1, Disc: crowd.Exact, SpecializeProb: 1, Theta: 0.3},
		&crowd.SimMember{Name: "u2", DB: u2, Disc: crowd.Exact, SpecializeProb: 1, Theta: 0.3},
	}
	res := Run(Config{
		Space:               sp,
		Theta:               q.Support,
		Members:             members,
		Agg:                 aggregate.NewFixedSample(2),
		SpecializationRatio: 1,
		Rng:                 rand.New(rand.NewSource(7)),
	})
	if res.Stats.Specialization+res.Stats.NoneOfThese == 0 {
		t.Error("no specialization questions asked at ratio 1")
	}
	got := mspNames(sp, res.ValidMSPs)
	for _, w := range []string{
		"y↦{Biking}, x↦{Central Park}",
		"y↦{Ball Game}, x↦{Central Park}",
		"y↦{Feed a Monkey}, x↦{Bronx Zoo}",
	} {
		if !got[w] {
			t.Errorf("missing MSP %s with specialization questions (got %v)", w, got)
		}
	}
}

func TestUserGuidedPruning(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	u1, u2 := crowd.SampleDBs(s)
	members := []crowd.Member{
		&crowd.SimMember{Name: "u1", DB: u1, Disc: crowd.Exact, PruneProb: 1,
			Rng: rand.New(rand.NewSource(3))},
		&crowd.SimMember{Name: "u2", DB: u2, Disc: crowd.Exact, PruneProb: 1,
			Rng: rand.New(rand.NewSource(4))},
	}
	res := Run(Config{
		Space:         sp,
		Theta:         q.Support,
		Members:       members,
		Agg:           aggregate.NewFixedSample(2),
		EnablePruning: true,
	})
	if res.Stats.Pruning == 0 {
		t.Error("no pruning clicks recorded")
	}
	// Pruning must not change the result: the pruned subtrees all had
	// support 0 anyway.
	got := mspNames(sp, res.ValidMSPs)
	for _, w := range []string{
		"y↦{Biking}, x↦{Central Park}",
		"y↦{Ball Game}, x↦{Central Park}",
		"y↦{Feed a Monkey}, x↦{Bronx Zoo}",
	} {
		if !got[w] {
			t.Errorf("missing MSP %s with pruning (got %v)", w, got)
		}
	}
}

func TestSelectAllEnumeration(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	res := Run(Config{
		Space:   sp,
		Theta:   q.Support,
		Members: sampleMembers(s),
		Agg:     aggregate.NewFixedSample(2),
	})
	all := AllSignificant(sp, res.MSPs)
	names := mspNames(sp, all)
	// Generalizations of the MSPs that are valid must be included.
	for _, w := range []string{
		"y↦{Sport}, x↦{Central Park}",
		"y↦{Activity}, x↦{Central Park}",
		"y↦{Biking}, x↦{Central Park}",
		"y↦{Activity}, x↦{Bronx Zoo}",
	} {
		if !names[w] {
			t.Errorf("AllSignificant missing %s (have %d entries)", w, len(all))
		}
	}
	// Insignificant valid assignments must not appear.
	if names["y↦{Basketball}, x↦{Central Park}"] {
		t.Error("insignificant assignment in ALL output")
	}
}

func TestEmptyValidSet(t *testing.T) {
	s, q, sp := buildSpace(t, `SELECT FACT-SETS
WHERE $x instanceOf Park . $x hasLabel "no such label"
SATISFYING $x doAt $x WITH SUPPORT = 0.2`)
	res := Run(Config{Space: sp, Theta: q.Support, Members: sampleMembers(s)})
	if len(res.MSPs) != 0 || res.Stats.TotalQuestions != 0 {
		t.Errorf("MSPs=%d questions=%d on empty valid set",
			len(res.MSPs), res.Stats.TotalQuestions)
	}
}

func TestTimelineMonotone(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	res := Run(Config{
		Space:         sp,
		Theta:         q.Support,
		Members:       sampleMembers(s),
		Agg:           aggregate.NewFixedSample(2),
		TrackTimeline: true,
	})
	if len(res.Stats.Timeline) != res.Stats.TotalQuestions {
		t.Fatalf("timeline %d points, %d questions",
			len(res.Stats.Timeline), res.Stats.TotalQuestions)
	}
	prev := Point{}
	for _, p := range res.Stats.Timeline {
		if p.Questions < prev.Questions || p.ClassifiedValid < prev.ClassifiedValid {
			t.Fatal("timeline not monotone")
		}
		prev = p
	}
	last := res.Stats.Timeline[len(res.Stats.Timeline)-1]
	if last.ClassifiedValid == 0 {
		t.Error("no valid assignments classified in timeline")
	}
}

func TestBaselineQuestions(t *testing.T) {
	_, _, sp := buildSpace(t, figure3Restricted)
	if got := BaselineQuestions(sp, 5); got != 5*len(sp.ValidBase) {
		t.Errorf("BaselineQuestions = %d", got)
	}
}

func TestMSPQuestionRecorded(t *testing.T) {
	s, q, sp := buildSpace(t, figure3Restricted)
	res := Run(Config{
		Space:   sp,
		Theta:   q.Support,
		Members: sampleMembers(s),
		Agg:     aggregate.NewFixedSample(2),
	})
	for _, m := range res.MSPs {
		qn, ok := res.MSPQuestion[m.Key()]
		if !ok {
			t.Errorf("MSP %s has no discovery question", sp.Format(m))
		}
		if qn < 0 || qn > res.Stats.TotalQuestions {
			t.Errorf("discovery question %d out of range", qn)
		}
	}
}
