package core

import (
	"testing"

	"oassis/internal/plan"
)

// TestAllocsTierOnePick gates the ordering seam's tier-one promise: under
// a stateless comparator policy the engine's candidate scan is the
// original allocation-free loop — interned node reads, sealed keys, a
// pairwise Better per candidate, nothing heap-bound. The tier-two branch
// (which legitimately builds a candidate view) must never leak into this
// path.
func TestAllocsTierOnePick(t *testing.T) {
	_, _, sp := buildSpace(t, figure3Restricted)
	for _, policy := range []plan.Policy{plan.PaperOrder{}, plan.LargestFirst{}} {
		e := newEngine(Config{Space: sp, Theta: 0.4, Ordering: policy})
		e.seed()
		e.drainExpansions()
		// Warm: the first pick seals every candidate's memoized key.
		if _, ok := e.pickMinimalUnclassified(); !ok {
			t.Fatalf("%s: seeded engine has no unclassified candidates", policy.Name())
		}
		allocs := testing.AllocsPerRun(100, func() {
			e.pickMinimalUnclassified()
		})
		if allocs != 0 {
			t.Errorf("%s: tier-one pick allocates %.1f times per call, want 0",
				policy.Name(), allocs)
		}
	}
}
