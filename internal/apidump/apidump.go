// Package apidump renders the exported surface of a Go package as a
// deterministic textual listing, parsed from source with go/ast — no
// subprocess, no build cache. The root package's listing is committed as
// api.txt and guarded by a test, so any change to the public API shows up
// as a reviewable diff instead of slipping through.
package apidump

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"sort"
	"strings"
)

// entry is one rendered declaration plus the key it sorts under.
type entry struct {
	section int // consts, vars, types, funcs+methods
	key     string
	text    string
}

const (
	secConst = iota
	secVar
	secType
	secFunc
)

// Surface parses the Go package in dir (tests excluded) and returns its
// exported declarations — constants, variables, types with their exported
// fields and methods, and functions — one block per declaration, sorted
// within the conventional const/var/type/func sections. The output depends
// only on the declarations themselves, never on file names or order.
func Surface(dir string) (string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return "", err
	}
	var pkg *ast.Package
	for name, p := range pkgs {
		if strings.HasSuffix(name, "_test") {
			continue
		}
		if pkg != nil {
			return "", fmt.Errorf("apidump: multiple packages in %s", dir)
		}
		pkg = p
	}
	if pkg == nil {
		return "", fmt.Errorf("apidump: no package found in %s", dir)
	}

	var entries []entry
	fileNames := make([]string, 0, len(pkg.Files))
	for name := range pkg.Files {
		fileNames = append(fileNames, name)
	}
	sort.Strings(fileNames)
	for _, name := range fileNames {
		for _, decl := range pkg.Files[name].Decls {
			entries = append(entries, declEntries(fset, decl)...)
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].section != entries[j].section {
			return entries[i].section < entries[j].section
		}
		return entries[i].key < entries[j].key
	})

	var b strings.Builder
	fmt.Fprintf(&b, "package %s\n", pkg.Name)
	last := -1
	for _, e := range entries {
		if e.section != last {
			b.WriteByte('\n')
			last = e.section
		}
		b.WriteString(e.text)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// declEntries renders one top-level declaration into zero or more entries,
// dropping everything unexported.
func declEntries(fset *token.FileSet, decl ast.Decl) []entry {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		key := d.Name.Name
		if d.Recv != nil {
			recv := receiverType(d.Recv)
			if recv == "" || !ast.IsExported(recv) {
				return nil
			}
			key = recv + "." + d.Name.Name
		}
		fn := *d
		fn.Body = nil
		fn.Doc = nil
		return []entry{{secFunc, key, render(fset, &fn)}}
	case *ast.GenDecl:
		var out []entry
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				ts := *s
				ts.Doc = nil
				ts.Comment = nil
				ts.Type = exportedOnly(s.Type)
				one := &ast.GenDecl{Tok: token.TYPE, Specs: []ast.Spec{&ts}}
				out = append(out, entry{secType, s.Name.Name, render(fset, one)})
			case *ast.ValueSpec:
				sec := secConst
				if d.Tok == token.VAR {
					sec = secVar
				}
				for i, name := range s.Names {
					if !name.IsExported() {
						continue
					}
					one := &ast.ValueSpec{Names: []*ast.Ident{name}, Type: s.Type}
					if s.Type == nil && i < len(s.Values) {
						one.Values = []ast.Expr{s.Values[i]}
					}
					g := &ast.GenDecl{Tok: d.Tok, Specs: []ast.Spec{one}}
					out = append(out, entry{sec, name.Name, render(fset, g)})
				}
			}
		}
		return out
	}
	return nil
}

// receiverType names the receiver's base type ("" when unnamed).
func receiverType(recv *ast.FieldList) string {
	if len(recv.List) != 1 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// exportedOnly strips unexported fields from structs and unexported
// methods from interfaces; other types pass through unchanged.
func exportedOnly(t ast.Expr) ast.Expr {
	switch tt := t.(type) {
	case *ast.StructType:
		return &ast.StructType{Fields: exportedFields(tt.Fields, true)}
	case *ast.InterfaceType:
		return &ast.InterfaceType{Methods: exportedFields(tt.Methods, false)}
	}
	return t
}

// exportedFields keeps the exported entries of a field list. A struct with
// unexported fields keeps a marker so opaque and transparent structs
// render differently.
func exportedFields(fl *ast.FieldList, markHidden bool) *ast.FieldList {
	out := &ast.FieldList{}
	hidden := false
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			// Embedded field or interface method set: keep when exported.
			if name := embeddedName(f.Type); name == "" || ast.IsExported(name) {
				out.List = append(out.List, &ast.Field{Type: f.Type})
			} else {
				hidden = true
			}
			continue
		}
		var names []*ast.Ident
		for _, n := range f.Names {
			if n.IsExported() {
				names = append(names, ast.NewIdent(n.Name))
			} else {
				hidden = true
			}
		}
		if len(names) > 0 {
			out.List = append(out.List, &ast.Field{Names: names, Type: f.Type})
		}
	}
	if hidden && markHidden {
		out.List = append(out.List, &ast.Field{
			Names: []*ast.Ident{ast.NewIdent("_")},
			Type:  ast.NewIdent("unexported"),
		})
	}
	return out
}

// embeddedName names an embedded field's base type.
func embeddedName(t ast.Expr) string {
	switch tt := t.(type) {
	case *ast.Ident:
		return tt.Name
	case *ast.StarExpr:
		return embeddedName(tt.X)
	case *ast.SelectorExpr:
		return tt.Sel.Name
	}
	return ""
}

// render prints a node with the standard gofmt configuration.
func render(fset *token.FileSet, node interface{}) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces | printer.TabIndent, Tabwidth: 8}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("/* render error: %v */", err)
	}
	return buf.String()
}
