package oassisql

import (
	"fmt"
	"strings"
)

// SelectForm is the requested answer format.
type SelectForm int

// The two SELECT forms of OASSIS-QL.
const (
	SelectFactSets  SelectForm = iota // SELECT FACT-SETS
	SelectVariables                   // SELECT VARIABLES
)

func (s SelectForm) String() string {
	if s == SelectVariables {
		return "VARIABLES"
	}
	return "FACT-SETS"
}

// AtomKind classifies pattern components.
type AtomKind int

// Atom kinds.
const (
	AtomVar     AtomKind = iota // $x
	AtomTerm                    // vocabulary term name
	AtomLiteral                 // quoted label literal (hasLabel objects)
	AtomAny                     // []
)

// Atom is one component of a triple pattern.
type Atom struct {
	Kind AtomKind
	Name string // variable name, term name, or literal text
}

// Var returns a variable atom.
func Var(name string) Atom { return Atom{Kind: AtomVar, Name: name} }

// TermAtom returns a term-name atom.
func TermAtom(name string) Atom { return Atom{Kind: AtomTerm, Name: name} }

func (a Atom) String() string {
	switch a.Kind {
	case AtomVar:
		return "$" + a.Name
	case AtomLiteral:
		return fmt.Sprintf("%q", a.Name)
	case AtomAny:
		return "[]"
	default:
		if strings.ContainsAny(a.Name, " \t") {
			return fmt.Sprintf("%q", a.Name)
		}
		return a.Name
	}
}

// Mult is a variable multiplicity range; Max < 0 means unbounded.
type Mult struct {
	Min, Max int
}

// The standard multiplicities of Section 3.
var (
	MultOne      = Mult{1, 1}  // default: exactly one
	MultPlus     = Mult{1, -1} // + : at least one
	MultStar     = Mult{0, -1} // * : any number
	MultOptional = Mult{0, 1}  // ? : optional
)

// Marker returns the concrete-syntax marker for m ("" for exactly-one).
func (m Mult) Marker() string {
	switch m {
	case MultOne:
		return ""
	case MultPlus:
		return "+"
	case MultStar:
		return "*"
	case MultOptional:
		return "?"
	}
	if m.Max < 0 {
		return fmt.Sprintf("{%d,}", m.Min)
	}
	return fmt.Sprintf("{%d,%d}", m.Min, m.Max)
}

// Allows reports whether a set of n values satisfies the multiplicity.
func (m Mult) Allows(n int) bool {
	return n >= m.Min && (m.Max < 0 || n <= m.Max)
}

// Pattern is one triple pattern. SMult/OMult carry multiplicity markers
// attached to variable occurrences in the SATISFYING clause; Path marks the
// zero-or-more path operator on the relation (rel*).
type Pattern struct {
	S     Atom
	SMult Mult
	R     Atom
	Path  bool
	O     Atom
	OMult Mult
	Pos   Pos
}

func (p Pattern) String() string {
	var sb strings.Builder
	sb.WriteString(p.S.String())
	if p.S.Kind == AtomVar {
		sb.WriteString(p.SMult.Marker())
	}
	sb.WriteByte(' ')
	sb.WriteString(p.R.String())
	if p.Path {
		sb.WriteByte('*')
	}
	sb.WriteByte(' ')
	sb.WriteString(p.O.String())
	if p.O.Kind == AtomVar {
		sb.WriteString(p.OMult.Marker())
	}
	return sb.String()
}

// Query is a parsed OASSIS-QL query.
type Query struct {
	Select     SelectForm
	All        bool // SELECT ... ALL: return all significant patterns, not only MSPs
	Where      []Pattern
	Satisfying []Pattern
	More       bool // the MORE keyword appeared in the SATISFYING clause
	Support    float64

	// SatisfyingPos and SupportPos locate the SATISFYING keyword and the
	// support number in the source text, so every validation error carries
	// a line/column position (both zero for programmatically built queries).
	SatisfyingPos Pos
	SupportPos    Pos
}

// Vars returns the variable names occurring in the given patterns, in first-
// occurrence order.
func Vars(patterns []Pattern) []string {
	var out []string
	seen := map[string]bool{}
	add := func(a Atom) {
		if a.Kind == AtomVar && !seen[a.Name] {
			seen[a.Name] = true
			out = append(out, a.Name)
		}
	}
	for _, p := range patterns {
		add(p.S)
		add(p.R)
		add(p.O)
	}
	return out
}

// String renders the query in canonical OASSIS-QL concrete syntax; the
// result parses back to an equivalent query.
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	sb.WriteString(q.Select.String())
	if q.All {
		sb.WriteString(" ALL")
	}
	sb.WriteString("\nWHERE\n")
	for _, p := range q.Where {
		fmt.Fprintf(&sb, "  %s .\n", p)
	}
	sb.WriteString("SATISFYING\n")
	for _, p := range q.Satisfying {
		fmt.Fprintf(&sb, "  %s .\n", p)
	}
	if q.More {
		sb.WriteString("  MORE\n")
	}
	fmt.Fprintf(&sb, "WITH SUPPORT = %g", q.Support)
	return sb.String()
}
