// Package oassisql implements the OASSIS-QL query language of Section 3 of
// the paper: a SPARQL-derived declarative language in which the WHERE clause
// selects variable assignments from the ontology and the SATISFYING clause
// states the data patterns whose support is to be mined from the crowd.
//
// The concrete syntax follows Figure 2 of the paper:
//
//	SELECT FACT-SETS            -- or VARIABLES; optional ALL
//	WHERE
//	  $w subClassOf* Attraction .
//	  $x instanceOf $w .
//	  $x hasLabel "child-friendly" .
//	  ...
//	SATISFYING
//	  $y+ doAt $x .
//	  [] eatAt $z .
//	  MORE
//	WITH SUPPORT = 0.4
//
// Keywords are case-insensitive. Vocabulary term names are bare identifiers
// (letters, digits, '_', '-'); names containing spaces are written as quoted
// strings. A quoted string in the object position of a hasLabel pattern is a
// label literal rather than a term name. `rel*` is the zero-or-more path
// operator; `$y+`, `$y*`, `$y?` attach multiplicities to variables in the
// SATISFYING clause; `[]` is the anything wildcard; the MORE keyword asks
// for additional frequently co-occurring facts.
package oassisql

import "fmt"

// TokenKind enumerates lexical token kinds.
type TokenKind int

// Token kinds.
const (
	EOF TokenKind = iota
	IDENT
	VAR    // $name
	STRING // "..."
	NUMBER
	DOT
	STAR     // *
	PLUS     // +
	QUESTION // ?
	EQUALS
	LBRACKET // [
	RBRACKET // ]
	LBRACE   // {
	RBRACE   // }
	COMMA    // ,
	// Keywords.
	SELECT
	FACTSETS // FACT-SETS
	VARIABLES
	ALL
	WHERE
	SATISFYING
	MORE
	WITH
	SUPPORT
)

var kindNames = map[TokenKind]string{
	EOF: "end of query", IDENT: "identifier", VAR: "variable", STRING: "string",
	NUMBER: "number", DOT: ".", STAR: "*", PLUS: "+", QUESTION: "?",
	EQUALS: "=", LBRACKET: "[", RBRACKET: "]",
	LBRACE: "{", RBRACE: "}", COMMA: ",",
	SELECT: "SELECT", FACTSETS: "FACT-SETS", VARIABLES: "VARIABLES", ALL: "ALL",
	WHERE: "WHERE", SATISFYING: "SATISFYING", MORE: "MORE", WITH: "WITH",
	SUPPORT: "SUPPORT",
}

func (k TokenKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Pos is a position in the query source.
type Pos struct {
	Line, Col int
	Offset    int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its source position and end offset (used to
// detect postfix adjacency, e.g. subClassOf* vs subClassOf *).
type Token struct {
	Kind TokenKind
	Text string // identifier/variable/string/number text
	Pos  Pos
	End  int // byte offset just past the token
}

// ParseError is a parse or lex error with its source position; it is
// retrievable from ParseQuery errors via errors.As.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("oassisql: %d:%d: %s", e.Line, e.Col, e.Msg)
}

// errAt builds a ParseError at a position.
func errAt(p Pos, format string, args ...interface{}) *ParseError {
	return &ParseError{Line: p.Line, Col: p.Col, Msg: fmt.Sprintf(format, args...)}
}
