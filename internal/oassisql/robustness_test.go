package oassisql

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// TestParseNeverPanics feeds the parser random mutations of a valid query
// and pure noise; it must return an error or a query, never panic.
func TestParseNeverPanics(t *testing.T) {
	base := `SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction .
  $x instanceOf $w .
  $x hasLabel "child-friendly"
SATISFYING
  $y+ doAt $x .
  [] eatAt $z .
  MORE
WITH SUPPORT = 0.4`
	rng := rand.New(rand.NewSource(1))
	alphabet := `abcXYZ $.*+?[]"=0123456789\n\t#`
	for i := 0; i < 3000; i++ {
		b := []byte(base)
		for mutations := rng.Intn(6) + 1; mutations > 0; mutations-- {
			switch rng.Intn(3) {
			case 0: // flip a byte
				b[rng.Intn(len(b))] = alphabet[rng.Intn(len(alphabet))]
			case 1: // delete a span
				start := rng.Intn(len(b))
				end := start + rng.Intn(10)
				if end > len(b) {
					end = len(b)
				}
				b = append(b[:start], b[end:]...)
				if len(b) == 0 {
					b = []byte("x")
				}
			case 2: // duplicate a span
				start := rng.Intn(len(b))
				end := start + rng.Intn(10)
				if end > len(b) {
					end = len(b)
				}
				b = append(b[:end], b[start:]...)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %q: %v", string(b), r)
				}
			}()
			_, _ = Parse(string(b))
		}()
	}
	// Pure noise.
	for i := 0; i < 1000; i++ {
		n := rng.Intn(60)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on noise %q: %v", sb.String(), r)
				}
			}()
			_, _ = Parse(sb.String())
		}()
	}
}

// TestPrintParseFixpoint: for every mutated query that still parses, the
// printed form must reparse to the same printed form.
func TestPrintParseFixpoint(t *testing.T) {
	base := `SELECT VARIABLES ALL
WHERE $a subClassOf* B . $a hasLabel "x" . [] r $a
SATISFYING $a? r "Multi Word" . $a r [] . MORE
WITH SUPPORT = 0.123`
	q1, err := Parse(base)
	if err != nil {
		t.Fatal(err)
	}
	text := q1.String()
	q2, err := Parse(text)
	if err != nil {
		t.Fatalf("printed form does not parse: %v\n%s", err, text)
	}
	if q2.String() != text {
		t.Fatalf("print/parse not a fixpoint:\n%s\nvs\n%s", text, q2.String())
	}
}

// TestErrorMessages pins the exact message — including the line:column
// position — of every reachable lexer, parser, and validation error path.
func TestErrorMessages(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT NOTHING",
			"oassisql: 1:8: expected FACT-SETS or VARIABLES after SELECT"},
		{"SELECT FACT-SETS\nWHERE $ doAt B\nSATISFYING $x doAt B\nWITH SUPPORT = 0.4",
			"oassisql: 2:7: empty variable name after $"},
		{"SELECT FACT-SETS\nWHERE $x hasLabel \"oops\nSATISFYING $x doAt B\nWITH SUPPORT = 0.4",
			"oassisql: 2:19: newline in string"},
		{"SELECT FACT-SETS\nWHERE $x doAt B\nSATISFYING $x doAt B\nWITH SUPPORT = 0.4 %",
			"oassisql: 4:20: unexpected character '%'"},
		{"SELECT FACT-SETS\nWHERE $x+ doAt B\nSATISFYING $x doAt B\nWITH SUPPORT = 0.4",
			"oassisql: 2:7: multiplicity markers are only allowed in the SATISFYING clause"},
		{"SELECT FACT-SETS\nWHERE $x doAt B\nSATISFYING $x subClassOf* B\nWITH SUPPORT = 0.4",
			"oassisql: 3:25: path patterns are not allowed in the SATISFYING clause"},
		{"SELECT FACT-SETS\nWHERE $x doAt B\nSATISFYING $x{0} doAt B\nWITH SUPPORT = 0.4",
			"oassisql: 3:14: multiplicity {0} would delete the variable; use {0,m} or *"},
		{"SELECT FACT-SETS\nWHERE $x doAt B\nSATISFYING $x doAt B\nWITH SUPPORT = 1.5",
			"oassisql: 4:16: support threshold 1.5 outside (0, 1]"},
		{"SELECT FACT-SETS\nWHERE $x doAt B\nSATISFYING\nWITH SUPPORT = 0.4",
			"oassisql: 3:1: SATISFYING clause is empty"},
		{"SELECT FACT-SETS\nWHERE $x doAt B\nSATISFYING $y doAt B\nWITH SUPPORT = 0.4",
			"oassisql: 3:1: SATISFYING uses variables not bound in WHERE"},
	}
	for _, c := range cases {
		_, err := Parse(c.in)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error %q", c.in, c.want)
			continue
		}
		if err.Error() != c.want {
			t.Errorf("Parse(%q)\n  error = %q\n  want    %q", c.in, err.Error(), c.want)
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("Parse(%q) error is not a *ParseError: %T", c.in, err)
		} else if pe.Line == 0 || pe.Col == 0 {
			t.Errorf("Parse(%q) error lacks a position: %+v", c.in, pe)
		}
	}
}

// TestValidateErrorsArePositioned covers the Validate paths only reachable
// with programmatically built queries (the parser resolves WHERE strings
// to terms before validation sees them): every one returns a *ParseError,
// positioned at the offending pattern.
func TestValidateErrorsArePositioned(t *testing.T) {
	atomVar := func(n string) Atom { return Atom{Kind: AtomVar, Name: n} }
	lit := Atom{Kind: AtomLiteral, Name: "x"}
	rel := Atom{Kind: AtomTerm, Name: "doAt"}
	pos := Pos{Line: 7, Col: 3}
	sat := []Pattern{{S: atomVar("x"), R: rel, O: atomVar("y")}}
	cases := []struct {
		q    *Query
		want string
	}{
		{&Query{Support: 0.4, Satisfying: sat,
			Where: []Pattern{{Pos: pos, S: atomVar("x"), SMult: MultPlus, R: rel, O: atomVar("y")}}},
			"oassisql: 7:3: multiplicity in WHERE clause"},
		{&Query{Support: 0.4, Satisfying: sat,
			Where: []Pattern{{Pos: pos, S: lit, SMult: MultOne, R: rel, O: atomVar("y"), OMult: MultOne}}},
			"oassisql: 7:3: literal in subject position"},
		{&Query{Support: 0.4, Satisfying: sat,
			Where: []Pattern{{Pos: pos, S: atomVar("x"), SMult: MultOne, R: rel, O: lit, OMult: MultOne}}},
			"oassisql: 7:3: label literal with non-label relation"},
		{&Query{Support: 0.4,
			Satisfying: []Pattern{{Pos: pos, S: atomVar("x"), R: rel, O: lit}}},
			"oassisql: 7:3: label literal in SATISFYING clause"},
		{&Query{Support: 0.4,
			Satisfying: []Pattern{{Pos: pos, Path: true, S: atomVar("x"), R: rel, O: atomVar("y")}}},
			"oassisql: 7:3: path pattern in SATISFYING clause"},
	}
	for i, c := range cases {
		err := Validate(c.q)
		if err == nil {
			t.Errorf("case %d: Validate succeeded, want %q", i, c.want)
			continue
		}
		if err.Error() != c.want {
			t.Errorf("case %d: error = %q, want %q", i, err.Error(), c.want)
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("case %d: error is not a *ParseError: %T", i, err)
		}
	}
}
