package oassisql

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParseNeverPanics feeds the parser random mutations of a valid query
// and pure noise; it must return an error or a query, never panic.
func TestParseNeverPanics(t *testing.T) {
	base := `SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction .
  $x instanceOf $w .
  $x hasLabel "child-friendly"
SATISFYING
  $y+ doAt $x .
  [] eatAt $z .
  MORE
WITH SUPPORT = 0.4`
	rng := rand.New(rand.NewSource(1))
	alphabet := `abcXYZ $.*+?[]"=0123456789\n\t#`
	for i := 0; i < 3000; i++ {
		b := []byte(base)
		for mutations := rng.Intn(6) + 1; mutations > 0; mutations-- {
			switch rng.Intn(3) {
			case 0: // flip a byte
				b[rng.Intn(len(b))] = alphabet[rng.Intn(len(alphabet))]
			case 1: // delete a span
				start := rng.Intn(len(b))
				end := start + rng.Intn(10)
				if end > len(b) {
					end = len(b)
				}
				b = append(b[:start], b[end:]...)
				if len(b) == 0 {
					b = []byte("x")
				}
			case 2: // duplicate a span
				start := rng.Intn(len(b))
				end := start + rng.Intn(10)
				if end > len(b) {
					end = len(b)
				}
				b = append(b[:end], b[start:]...)
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %q: %v", string(b), r)
				}
			}()
			_, _ = Parse(string(b))
		}()
	}
	// Pure noise.
	for i := 0; i < 1000; i++ {
		n := rng.Intn(60)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on noise %q: %v", sb.String(), r)
				}
			}()
			_, _ = Parse(sb.String())
		}()
	}
}

// TestPrintParseFixpoint: for every mutated query that still parses, the
// printed form must reparse to the same printed form.
func TestPrintParseFixpoint(t *testing.T) {
	base := `SELECT VARIABLES ALL
WHERE $a subClassOf* B . $a hasLabel "x" . [] r $a
SATISFYING $a? r "Multi Word" . $a r [] . MORE
WITH SUPPORT = 0.123`
	q1, err := Parse(base)
	if err != nil {
		t.Fatal(err)
	}
	text := q1.String()
	q2, err := Parse(text)
	if err != nil {
		t.Fatalf("printed form does not parse: %v\n%s", err, text)
	}
	if q2.String() != text {
		t.Fatalf("print/parse not a fixpoint:\n%s\nvs\n%s", text, q2.String())
	}
}
