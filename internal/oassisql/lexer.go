package oassisql

import "strings"

// keywords maps upper-cased identifier text to keyword kinds.
var keywords = map[string]TokenKind{
	"SELECT":     SELECT,
	"FACT-SETS":  FACTSETS,
	"VARIABLES":  VARIABLES,
	"ALL":        ALL,
	"WHERE":      WHERE,
	"SATISFYING": SATISFYING,
	"MORE":       MORE,
	"WITH":       WITH,
	"SUPPORT":    SUPPORT,
}

type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col, Offset: l.off} }

func (l *lexer) errf(p Pos, format string, args ...interface{}) error {
	return errAt(p, format, args...)
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpace() {
	for l.off < len(l.src) {
		c := l.src[l.off]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			l.advance()
			continue
		}
		if c == '#' { // comment to end of line
			for l.off < len(l.src) && l.src[l.off] != '\n' {
				l.advance()
			}
			continue
		}
		return
	}
}

func isIdentByte(c byte) bool {
	return c == '_' || c == '-' ||
		'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' || '0' <= c && c <= '9'
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// next scans the next token.
func (l *lexer) next() (Token, error) {
	l.skipSpace()
	start := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: start, End: l.off}, nil
	}
	c := l.src[l.off]
	switch {
	case c == '.':
		// Distinguish the pattern separator '.' from a leading-dot number
		// like .4 (not supported; numbers need a leading digit).
		l.advance()
		return Token{Kind: DOT, Pos: start, End: l.off}, nil
	case c == '*':
		l.advance()
		return Token{Kind: STAR, Pos: start, End: l.off}, nil
	case c == '+':
		l.advance()
		return Token{Kind: PLUS, Pos: start, End: l.off}, nil
	case c == '?':
		l.advance()
		return Token{Kind: QUESTION, Pos: start, End: l.off}, nil
	case c == '=':
		l.advance()
		return Token{Kind: EQUALS, Pos: start, End: l.off}, nil
	case c == '[':
		l.advance()
		return Token{Kind: LBRACKET, Pos: start, End: l.off}, nil
	case c == ']':
		l.advance()
		return Token{Kind: RBRACKET, Pos: start, End: l.off}, nil
	case c == '{':
		l.advance()
		return Token{Kind: LBRACE, Pos: start, End: l.off}, nil
	case c == '}':
		l.advance()
		return Token{Kind: RBRACE, Pos: start, End: l.off}, nil
	case c == ',':
		l.advance()
		return Token{Kind: COMMA, Pos: start, End: l.off}, nil
	case c == '$':
		l.advance()
		s := l.off
		for l.off < len(l.src) && isIdentByte(l.src[l.off]) {
			l.advance()
		}
		if l.off == s {
			return Token{}, l.errf(start, "empty variable name after $")
		}
		return Token{Kind: VAR, Text: l.src[s:l.off], Pos: start, End: l.off}, nil
	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.off >= len(l.src) {
				return Token{}, l.errf(start, "unterminated string")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if l.off >= len(l.src) {
					return Token{}, l.errf(start, "unterminated escape")
				}
				e := l.advance()
				switch e {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '"', '\\':
					sb.WriteByte(e)
				default:
					return Token{}, l.errf(start, "unknown escape \\%c", e)
				}
				continue
			}
			if ch == '\n' {
				return Token{}, l.errf(start, "newline in string")
			}
			sb.WriteByte(ch)
		}
		return Token{Kind: STRING, Text: sb.String(), Pos: start, End: l.off}, nil
	case isDigit(c):
		s := l.off
		for l.off < len(l.src) && (isDigit(l.src[l.off]) || l.src[l.off] == '.') {
			// A '.' is part of the number only if followed by a digit;
			// otherwise it is the pattern separator.
			if l.src[l.off] == '.' && (l.off+1 >= len(l.src) || !isDigit(l.src[l.off+1])) {
				break
			}
			l.advance()
		}
		return Token{Kind: NUMBER, Text: l.src[s:l.off], Pos: start, End: l.off}, nil
	case isIdentByte(c):
		s := l.off
		for l.off < len(l.src) && isIdentByte(l.src[l.off]) {
			l.advance()
		}
		text := l.src[s:l.off]
		if k, ok := keywords[strings.ToUpper(text)]; ok {
			return Token{Kind: k, Text: text, Pos: start, End: l.off}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: start, End: l.off}, nil
	default:
		return Token{}, l.errf(start, "unexpected character %q", c)
	}
}

// lexAll scans the whole source.
func lexAll(src string) ([]Token, error) {
	l := newLexer(src)
	var out []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == EOF {
			return out, nil
		}
	}
}
