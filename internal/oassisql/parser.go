package oassisql

import (
	"strconv"
)

// labelRelations are relation names whose quoted objects are label literals
// rather than term names (the hasLabel feature of Figure 2).
var labelRelations = map[string]bool{
	"hasLabel": true,
	"label":    true,
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) peek() Token { return p.toks[p.i] }

func (p *parser) take() Token {
	t := p.toks[p.i]
	if t.Kind != EOF {
		p.i++
	}
	return t
}

func (p *parser) errf(t Token, msg string) error {
	return errAt(t.Pos, "%s", msg)
}

func (p *parser) expect(k TokenKind) (Token, error) {
	t := p.take()
	if t.Kind != k {
		return t, p.errf(t, "expected "+k.String()+", found "+describe(t))
	}
	return t, nil
}

func describe(t Token) string {
	switch t.Kind {
	case IDENT, NUMBER:
		return "'" + t.Text + "'"
	case VAR:
		return "'$" + t.Text + "'"
	case STRING:
		return "string " + strconv.Quote(t.Text)
	default:
		return "'" + t.Kind.String() + "'"
	}
}

// Parse parses an OASSIS-QL query.
func Parse(src string) (*Query, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := Validate(q); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error, for tests and examples.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	if _, err := p.expect(SELECT); err != nil {
		return nil, err
	}
	switch t := p.take(); t.Kind {
	case FACTSETS:
		q.Select = SelectFactSets
	case VARIABLES:
		q.Select = SelectVariables
	default:
		return nil, p.errf(t, "expected FACT-SETS or VARIABLES after SELECT")
	}
	if p.peek().Kind == ALL {
		p.take()
		q.All = true
	}
	if _, err := p.expect(WHERE); err != nil {
		return nil, err
	}
	where, _, err := p.parsePatterns(false, SATISFYING)
	if err != nil {
		return nil, err
	}
	q.Where = where
	satTok, err := p.expect(SATISFYING)
	if err != nil {
		return nil, err
	}
	q.SatisfyingPos = satTok.Pos
	sat, more, err := p.parsePatterns(true, WITH)
	if err != nil {
		return nil, err
	}
	q.Satisfying = sat
	q.More = more
	if _, err := p.expect(WITH); err != nil {
		return nil, err
	}
	if _, err := p.expect(SUPPORT); err != nil {
		return nil, err
	}
	if _, err := p.expect(EQUALS); err != nil {
		return nil, err
	}
	num, err := p.expect(NUMBER)
	if err != nil {
		return nil, err
	}
	val, err := strconv.ParseFloat(num.Text, 64)
	if err != nil {
		return nil, p.errf(num, "invalid support value '"+num.Text+"'")
	}
	q.Support = val
	q.SupportPos = num.Pos
	if t := p.take(); t.Kind != EOF {
		return nil, p.errf(t, "unexpected "+describe(t)+" after query")
	}
	return q, nil
}

// parsePatterns parses a dot-separated pattern list up to (not including)
// the terminator keyword. inSatisfying enables multiplicity markers and the
// MORE keyword.
func (p *parser) parsePatterns(inSatisfying bool, term TokenKind) ([]Pattern, bool, error) {
	var out []Pattern
	more := false
	for {
		t := p.peek()
		if t.Kind == term || t.Kind == EOF {
			return out, more, nil
		}
		if inSatisfying && t.Kind == MORE {
			p.take()
			more = true
			if p.peek().Kind == DOT {
				p.take()
			}
			continue
		}
		pat, err := p.parsePattern(inSatisfying)
		if err != nil {
			return nil, false, err
		}
		out = append(out, pat)
		if p.peek().Kind == DOT {
			p.take()
			continue
		}
		// Without a separating dot the next token must end the list.
		if k := p.peek().Kind; k != term && k != EOF && !(inSatisfying && k == MORE) {
			return nil, false, p.errf(p.peek(), "expected '.' or "+term.String()+", found "+describe(p.peek()))
		}
	}
}

func (p *parser) parsePattern(inSatisfying bool) (Pattern, error) {
	pos := p.peek().Pos
	s, sMult, err := p.parseSubjectOrObject(inSatisfying, false)
	if err != nil {
		return Pattern{}, err
	}
	r, path, err := p.parseRelation(inSatisfying)
	if err != nil {
		return Pattern{}, err
	}
	isLabelRel := r.Kind == AtomTerm && labelRelations[r.Name]
	o, oMult, err := p.parseSubjectOrObject(inSatisfying, isLabelRel)
	if err != nil {
		return Pattern{}, err
	}
	return Pattern{S: s, SMult: sMult, R: r, Path: path, O: o, OMult: oMult, Pos: pos}, nil
}

// parseSubjectOrObject parses a subject or object atom with an optional
// multiplicity marker. If labelPos is true, a quoted string is a label
// literal; otherwise a quoted string is a (multi-word) term name.
func (p *parser) parseSubjectOrObject(inSatisfying, labelPos bool) (Atom, Mult, error) {
	t := p.take()
	var a Atom
	switch t.Kind {
	case VAR:
		a = Atom{Kind: AtomVar, Name: t.Text}
	case IDENT:
		a = Atom{Kind: AtomTerm, Name: t.Text}
	case STRING:
		if labelPos {
			a = Atom{Kind: AtomLiteral, Name: t.Text}
		} else {
			a = Atom{Kind: AtomTerm, Name: t.Text}
		}
	case LBRACKET:
		if _, err := p.expect(RBRACKET); err != nil {
			return Atom{}, MultOne, err
		}
		a = Atom{Kind: AtomAny}
	default:
		return Atom{}, MultOne, p.errf(t, "expected term, variable, string or [], found "+describe(t))
	}
	mult := MultOne
	if a.Kind == AtomVar {
		m, ok, err := p.postfixMult(t.End)
		if err != nil {
			return Atom{}, MultOne, err
		}
		if ok {
			if !inSatisfying {
				return Atom{}, MultOne, p.errf(t, "multiplicity markers are only allowed in the SATISFYING clause")
			}
			mult = m
		}
	}
	return a, mult, nil
}

// postfixMult consumes an adjacent +, *, ? or {n[,m]} marker (adjacent
// means no whitespace: the marker's offset equals the previous token's
// end). The brace form is this implementation's extension: {2} means
// exactly two values, {1,3} one to three, {2,} at least two.
func (p *parser) postfixMult(end int) (Mult, bool, error) {
	t := p.peek()
	if t.Pos.Offset != end {
		return MultOne, false, nil
	}
	switch t.Kind {
	case PLUS:
		p.take()
		return MultPlus, true, nil
	case STAR:
		p.take()
		return MultStar, true, nil
	case QUESTION:
		p.take()
		return MultOptional, true, nil
	case LBRACE:
		p.take()
		m, err := p.braceMult(t)
		return m, true, err
	}
	return MultOne, false, nil
}

// braceMult parses the remainder of a {n[,m]} marker.
func (p *parser) braceMult(open Token) (Mult, error) {
	num, err := p.expect(NUMBER)
	if err != nil {
		return MultOne, err
	}
	min, err := strconv.Atoi(num.Text)
	if err != nil || min < 0 {
		return MultOne, p.errf(num, "invalid multiplicity bound '"+num.Text+"'")
	}
	m := Mult{Min: min, Max: min}
	if p.peek().Kind == COMMA {
		p.take()
		if p.peek().Kind == NUMBER {
			num2 := p.take()
			max, err := strconv.Atoi(num2.Text)
			if err != nil || max < min {
				return MultOne, p.errf(num2, "invalid multiplicity upper bound '"+num2.Text+"'")
			}
			m.Max = max
		} else {
			m.Max = -1 // {n,} — unbounded
		}
	}
	if _, err := p.expect(RBRACE); err != nil {
		return MultOne, err
	}
	if m.Min == 0 && m.Max == 0 {
		return MultOne, p.errf(open, "multiplicity {0} would delete the variable; use {0,m} or *")
	}
	return m, nil
}

func (p *parser) parseRelation(inSatisfying bool) (Atom, bool, error) {
	t := p.take()
	var a Atom
	switch t.Kind {
	case VAR:
		a = Atom{Kind: AtomVar, Name: t.Text}
	case IDENT:
		a = Atom{Kind: AtomTerm, Name: t.Text}
	case STRING:
		a = Atom{Kind: AtomTerm, Name: t.Text}
	case LBRACKET:
		if _, err := p.expect(RBRACKET); err != nil {
			return Atom{}, false, err
		}
		a = Atom{Kind: AtomAny}
	default:
		return Atom{}, false, p.errf(t, "expected relation, found "+describe(t))
	}
	// Adjacent * is the zero-or-more path operator.
	if nt := p.peek(); nt.Kind == STAR && nt.Pos.Offset == t.End {
		if a.Kind != AtomTerm {
			return Atom{}, false, p.errf(nt, "path '*' requires a named relation (SPARQL does not allow path quantification over variables)")
		}
		if inSatisfying {
			return Atom{}, false, p.errf(nt, "path patterns are not allowed in the SATISFYING clause")
		}
		p.take()
		return a, true, nil
	}
	return a, false, nil
}
