package oassisql

// Validate performs the structural checks that do not require a vocabulary:
// support range, clause shapes, and variable usage. Name resolution against
// a concrete vocabulary happens later, in the WHERE evaluation engine.
// Every error is a *ParseError carrying the offending source position
// (line/column are zero for programmatically built queries).
func Validate(q *Query) error {
	if !(q.Support > 0 && q.Support <= 1) {
		return errAt(q.SupportPos, "support threshold %g outside (0, 1]", q.Support)
	}
	if len(q.Satisfying) == 0 && !q.More {
		return errAt(q.SatisfyingPos, "SATISFYING clause is empty")
	}
	for _, p := range q.Where {
		if p.SMult != MultOne || p.OMult != MultOne {
			return errAt(p.Pos, "multiplicity in WHERE clause")
		}
		if p.S.Kind == AtomLiteral {
			return errAt(p.Pos, "literal in subject position")
		}
		if p.O.Kind == AtomLiteral && !(p.R.Kind == AtomTerm && labelRelations[p.R.Name]) {
			return errAt(p.Pos, "label literal with non-label relation")
		}
	}
	whereVars := map[string]bool{}
	for _, v := range Vars(q.Where) {
		whereVars[v] = true
	}
	satHasUnbound := false
	for _, p := range q.Satisfying {
		if p.Path {
			return errAt(p.Pos, "path pattern in SATISFYING clause")
		}
		if p.S.Kind == AtomLiteral || p.O.Kind == AtomLiteral || p.R.Kind == AtomLiteral {
			return errAt(p.Pos, "label literal in SATISFYING clause")
		}
		for _, a := range []Atom{p.S, p.R, p.O} {
			if a.Kind == AtomVar && !whereVars[a.Name] {
				satHasUnbound = true
			}
		}
	}
	// Unbound SATISFYING variables are only meaningful in the pure-mining
	// form with an empty WHERE clause (the frequent-itemset capture of
	// Section 4.1); with a non-empty WHERE clause they are almost certainly
	// typos, so reject them.
	if satHasUnbound && len(q.Where) > 0 {
		return errAt(q.SatisfyingPos, "SATISFYING uses variables not bound in WHERE")
	}
	return nil
}
