package oassisql

import (
	"fmt"
)

// Validate performs the structural checks that do not require a vocabulary:
// support range, clause shapes, and variable usage. Name resolution against
// a concrete vocabulary happens later, in the WHERE evaluation engine.
func Validate(q *Query) error {
	if !(q.Support > 0 && q.Support <= 1) {
		return fmt.Errorf("oassisql: support threshold %g outside (0, 1]", q.Support)
	}
	if len(q.Satisfying) == 0 && !q.More {
		return fmt.Errorf("oassisql: SATISFYING clause is empty")
	}
	for _, p := range q.Where {
		if p.SMult != MultOne || p.OMult != MultOne {
			return fmt.Errorf("oassisql: %s: multiplicity in WHERE clause", p.Pos)
		}
		if p.S.Kind == AtomLiteral {
			return fmt.Errorf("oassisql: %s: literal in subject position", p.Pos)
		}
		if p.O.Kind == AtomLiteral && !(p.R.Kind == AtomTerm && labelRelations[p.R.Name]) {
			return fmt.Errorf("oassisql: %s: label literal with non-label relation", p.Pos)
		}
	}
	whereVars := map[string]bool{}
	for _, v := range Vars(q.Where) {
		whereVars[v] = true
	}
	satHasUnbound := false
	for _, p := range q.Satisfying {
		if p.Path {
			return fmt.Errorf("oassisql: %s: path pattern in SATISFYING clause", p.Pos)
		}
		if p.S.Kind == AtomLiteral || p.O.Kind == AtomLiteral || p.R.Kind == AtomLiteral {
			return fmt.Errorf("oassisql: %s: label literal in SATISFYING clause", p.Pos)
		}
		for _, a := range []Atom{p.S, p.R, p.O} {
			if a.Kind == AtomVar && !whereVars[a.Name] {
				satHasUnbound = true
			}
		}
	}
	// Unbound SATISFYING variables are only meaningful in the pure-mining
	// form with an empty WHERE clause (the frequent-itemset capture of
	// Section 4.1); with a non-empty WHERE clause they are almost certainly
	// typos, so reject them.
	if satHasUnbound && len(q.Where) > 0 {
		return fmt.Errorf("oassisql: SATISFYING uses variables not bound in WHERE")
	}
	return nil
}
