package oassisql

import (
	"errors"
	"strings"
	"testing"
)

// figure2 is the paper's example query, verbatim (Figure 2).
const figure2 = `
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity .
  $z instanceOf Restaurant.
  $z nearBy $x
SATISFYING
  $y+ doAt $x .
  [] eatAt $z.
  MORE
WITH SUPPORT = 0.4
`

func TestParseFigure2(t *testing.T) {
	q, err := Parse(figure2)
	if err != nil {
		t.Fatal(err)
	}
	if q.Select != SelectFactSets || q.All {
		t.Errorf("Select = %v All=%v", q.Select, q.All)
	}
	if len(q.Where) != 7 {
		t.Fatalf("len(Where) = %d, want 7", len(q.Where))
	}
	if len(q.Satisfying) != 2 {
		t.Fatalf("len(Satisfying) = %d, want 2", len(q.Satisfying))
	}
	if !q.More {
		t.Error("More not detected")
	}
	if q.Support != 0.4 {
		t.Errorf("Support = %g", q.Support)
	}
	// Pattern 0: $w subClassOf* Attraction
	p := q.Where[0]
	if p.S != Var("w") || p.R != TermAtom("subClassOf") || !p.Path || p.O != TermAtom("Attraction") {
		t.Errorf("where[0] = %+v", p)
	}
	// Pattern 3: $x hasLabel "child-friendly" — literal object.
	p = q.Where[3]
	if p.O.Kind != AtomLiteral || p.O.Name != "child-friendly" {
		t.Errorf("where[3].O = %+v", p.O)
	}
	// Satisfying 0: $y+ doAt $x — plus multiplicity on subject.
	p = q.Satisfying[0]
	if p.S != Var("y") || p.SMult != MultPlus || p.R != TermAtom("doAt") || p.O != Var("x") {
		t.Errorf("satisfying[0] = %+v", p)
	}
	if p.OMult != MultOne {
		t.Errorf("satisfying[0].OMult = %v", p.OMult)
	}
	// Satisfying 1: [] eatAt $z.
	p = q.Satisfying[1]
	if p.S.Kind != AtomAny || p.O != Var("z") {
		t.Errorf("satisfying[1] = %+v", p)
	}
	vars := Vars(q.Where)
	if strings.Join(vars, ",") != "w,x,y,z" {
		t.Errorf("Vars = %v", vars)
	}
}

func TestRoundTripPrint(t *testing.T) {
	q1 := MustParse(figure2)
	text := q1.String()
	q2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if q2.String() != text {
		t.Errorf("print not stable:\n%s\nvs\n%s", text, q2.String())
	}
	if len(q2.Where) != len(q1.Where) || len(q2.Satisfying) != len(q1.Satisfying) ||
		q2.More != q1.More || q2.Support != q1.Support || q2.Select != q1.Select {
		t.Error("round trip changed query structure")
	}
}

func TestItemsetCaptureForm(t *testing.T) {
	// Section 4.1: "to capture mining for frequent itemsets, use an empty
	// WHERE clause and $x+ [] [] as the SATISFYING clause".
	q, err := Parse(`SELECT FACT-SETS WHERE SATISFYING $x+ [] [] WITH SUPPORT = 0.1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 0 || len(q.Satisfying) != 1 {
		t.Fatalf("clauses: %d/%d", len(q.Where), len(q.Satisfying))
	}
	p := q.Satisfying[0]
	if p.SMult != MultPlus || p.R.Kind != AtomAny || p.O.Kind != AtomAny {
		t.Errorf("pattern = %+v", p)
	}
}

func TestSelectVariants(t *testing.T) {
	q := MustParse(`SELECT VARIABLES ALL WHERE $x instanceOf Park SATISFYING $x doAt $x WITH SUPPORT = 0.5`)
	if q.Select != SelectVariables || !q.All {
		t.Errorf("Select=%v All=%v", q.Select, q.All)
	}
}

func TestQuotedTermNames(t *testing.T) {
	q := MustParse(`SELECT FACT-SETS WHERE $x instanceOf Park
		SATISFYING "Rent Bikes" doAt $x WITH SUPPORT = 0.2`)
	p := q.Satisfying[0]
	if p.S.Kind != AtomTerm || p.S.Name != "Rent Bikes" {
		t.Errorf("quoted subject = %+v", p.S)
	}
	// Round trip keeps the quoting.
	if !strings.Contains(q.String(), `"Rent Bikes"`) {
		t.Errorf("print lost quoting: %s", q)
	}
}

func TestMultiplicityMarkers(t *testing.T) {
	q := MustParse(`SELECT FACT-SETS WHERE $x instanceOf Park . $y subClassOf* Activity
		SATISFYING $y* doAt $x . $x? inside $x WITH SUPPORT = 0.3`)
	if q.Satisfying[0].SMult != MultStar {
		t.Errorf("star mult = %v", q.Satisfying[0].SMult)
	}
	if q.Satisfying[1].SMult != MultOptional {
		t.Errorf("question mult = %v", q.Satisfying[1].SMult)
	}
}

func TestMarkerAdjacencyRequired(t *testing.T) {
	// `$y +` (with a space) is not a multiplicity marker; the stray + is a
	// syntax error at the relation position... it actually parses + as the
	// relation? No: + is not a valid relation token, so this must fail.
	_, err := Parse(`SELECT FACT-SETS WHERE $x instanceOf Park
		SATISFYING $y + doAt $x WITH SUPPORT = 0.3`)
	if err == nil {
		t.Fatal("spaced + accepted")
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	q, err := Parse(`select fact-sets where $x instanceOf Park satisfying $x doAt $x with support = 0.25`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Support != 0.25 {
		t.Error("support lost")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", ``},
		{"missing select form", `SELECT WHERE SATISFYING $x [] [] WITH SUPPORT = 0.1`},
		{"missing where", `SELECT FACT-SETS SATISFYING $x [] [] WITH SUPPORT = 0.1`},
		{"missing support value", `SELECT FACT-SETS WHERE SATISFYING $x+ [] [] WITH SUPPORT =`},
		{"support zero", `SELECT FACT-SETS WHERE SATISFYING $x+ [] [] WITH SUPPORT = 0`},
		{"support above one", `SELECT FACT-SETS WHERE SATISFYING $x+ [] [] WITH SUPPORT = 1.5`},
		{"empty satisfying", `SELECT FACT-SETS WHERE $x instanceOf Park SATISFYING WITH SUPPORT = 0.2`},
		{"mult in where", `SELECT FACT-SETS WHERE $x+ instanceOf Park SATISFYING $x [] [] WITH SUPPORT = 0.2`},
		{"path in satisfying", `SELECT FACT-SETS WHERE $x instanceOf Park SATISFYING $x subClassOf* Park WITH SUPPORT = 0.2`},
		{"path on variable", `SELECT FACT-SETS WHERE $x $p* Park SATISFYING $x doAt $x WITH SUPPORT = 0.2`},
		{"unbound satisfying var", `SELECT FACT-SETS WHERE $x instanceOf Park SATISFYING $q doAt $x WITH SUPPORT = 0.2`},
		{"unterminated string", `SELECT FACT-SETS WHERE $x hasLabel "oops SATISFYING $x [] [] WITH SUPPORT = 0.2`},
		{"empty var", `SELECT FACT-SETS WHERE $ instanceOf Park SATISFYING $x [] [] WITH SUPPORT = 0.2`},
		{"junk char", `SELECT FACT-SETS WHERE $x @ Park SATISFYING $x [] [] WITH SUPPORT = 0.2`},
		{"trailing garbage", `SELECT FACT-SETS WHERE SATISFYING $x+ [] [] WITH SUPPORT = 0.1 extra`},
		{"literal subject", `SELECT FACT-SETS WHERE "x" hasLabel "y" SATISFYING $x [] [] WITH SUPPORT = 0.1`},
		{"bracket unclosed", `SELECT FACT-SETS WHERE SATISFYING $x+ [ [] WITH SUPPORT = 0.1`},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil {
			t.Errorf("%s: error expected", c.name)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("SELECT FACT-SETS\nWHERE\n  $x @ Park\nSATISFYING $x [] [] WITH SUPPORT = 0.1")
	if err == nil {
		t.Fatal("expected error")
	}
	var se *ParseError
	if !errors.As(err, &se) {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 3 {
		t.Errorf("error line = %d, want 3 (%v)", se.Line, err)
	}
}

func TestCommentsInQuery(t *testing.T) {
	q, err := Parse(`SELECT FACT-SETS # answer format
WHERE
  $x instanceOf Park # bind x
SATISFYING
  $x doAt $x
WITH SUPPORT = 0.2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 1 {
		t.Error("comment broke parsing")
	}
}

func TestMultAllows(t *testing.T) {
	cases := []struct {
		m    Mult
		n    int
		want bool
	}{
		{MultOne, 1, true}, {MultOne, 0, false}, {MultOne, 2, false},
		{MultPlus, 1, true}, {MultPlus, 5, true}, {MultPlus, 0, false},
		{MultStar, 0, true}, {MultStar, 9, true},
		{MultOptional, 0, true}, {MultOptional, 1, true}, {MultOptional, 2, false},
	}
	for _, c := range cases {
		if got := c.m.Allows(c.n); got != c.want {
			t.Errorf("%v.Allows(%d) = %v", c.m, c.n, got)
		}
	}
}

func TestMoreOnlyQuery(t *testing.T) {
	// A query whose SATISFYING clause is just MORE is accepted (mine any
	// frequently co-occurring facts in context).
	q, err := Parse(`SELECT FACT-SETS WHERE $x instanceOf Park SATISFYING MORE WITH SUPPORT = 0.2`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.More || len(q.Satisfying) != 0 {
		t.Errorf("More=%v len=%d", q.More, len(q.Satisfying))
	}
}

func TestBraceMultiplicities(t *testing.T) {
	q := MustParse(`SELECT FACT-SETS WHERE $y subClassOf* Activity . $x instanceOf Park
		SATISFYING $y{2} doAt $x WITH SUPPORT = 0.3`)
	if got := q.Satisfying[0].SMult; got != (Mult{2, 2}) {
		t.Errorf("SMult = %v", got)
	}
	q = MustParse(`SELECT FACT-SETS WHERE $y subClassOf* Activity . $x instanceOf Park
		SATISFYING $y{1,3} doAt $x WITH SUPPORT = 0.3`)
	if got := q.Satisfying[0].SMult; got != (Mult{1, 3}) {
		t.Errorf("SMult = %v", got)
	}
	q = MustParse(`SELECT FACT-SETS WHERE $y subClassOf* Activity . $x instanceOf Park
		SATISFYING $y{2,} doAt $x WITH SUPPORT = 0.3`)
	if got := q.Satisfying[0].SMult; got != (Mult{2, -1}) {
		t.Errorf("SMult = %v", got)
	}
	// Round trip through the printer.
	text := q.String()
	q2, err := Parse(text)
	if err != nil || q2.Satisfying[0].SMult != (Mult{2, -1}) {
		t.Errorf("brace round trip failed: %v\n%s", err, text)
	}
}

func TestBraceMultiplicityErrors(t *testing.T) {
	cases := []string{
		`SELECT FACT-SETS WHERE SATISFYING $y{} [] [] WITH SUPPORT = 0.3`,
		`SELECT FACT-SETS WHERE SATISFYING $y{3,1} [] [] WITH SUPPORT = 0.3`,
		`SELECT FACT-SETS WHERE SATISFYING $y{0} [] [] WITH SUPPORT = 0.3`,
		`SELECT FACT-SETS WHERE SATISFYING $y{2 [] [] WITH SUPPORT = 0.3`,
		`SELECT FACT-SETS WHERE $y{2} instanceOf Park SATISFYING $y [] [] WITH SUPPORT = 0.3`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
	// Spaced braces are not markers: `$y {2}` must fail differently but fail.
	if _, err := Parse(`SELECT FACT-SETS WHERE SATISFYING $y {2} [] WITH SUPPORT = 0.3`); err == nil {
		t.Error("spaced brace accepted")
	}
}
