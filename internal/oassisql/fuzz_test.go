package oassisql

import "testing"

// FuzzParse exercises the parser with arbitrary inputs; it must never panic,
// and any query that parses must print to a form that reparses.
// Run `go test -fuzz=FuzzParse ./internal/oassisql` for continuous fuzzing;
// plain `go test` runs the seed corpus.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"SELECT FACT-SETS WHERE SATISFYING $x+ [] [] WITH SUPPORT = 0.1",
		`SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction .
  $x instanceOf $w .
  $x hasLabel "child-friendly"
SATISFYING
  $y+ doAt $x .
  [] eatAt $z .
  MORE
WITH SUPPORT = 0.4`,
		`SELECT VARIABLES ALL WHERE $a subClassOf* B SATISFYING $a{1,3} r "Multi Word" WITH SUPPORT = 0.9`,
		"select fact-sets where satisfying $x? [] [] with support = 1",
		"SELECT FACT-SETS WHERE $x $p* y SATISFYING $x [] [] WITH SUPPORT = 0.5",
		"# comment only",
		"$ $$ {,} [ ] \"unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil || q == nil {
			return
		}
		text := q.String()
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\ninput: %q\nprinted: %q", err, src, text)
		}
		if q2.String() != text {
			t.Fatalf("print/parse not a fixpoint:\n%q\nvs\n%q", text, q2.String())
		}
	})
}
