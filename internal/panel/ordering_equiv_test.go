package panel_test

import (
	"fmt"
	"testing"

	"oassis/internal/aggregate"
	"oassis/internal/core"
	"oassis/internal/panel"
	"oassis/internal/plan"
	"oassis/internal/synth"
)

// TestOrderingEquivalenceMatrix is the ordering seam's determinism claim:
// for every registered ordering — tier-one comparators and tier-two
// selectors alike — the sequential run is the reference, and concurrent
// dispatch (parallelism 1 and 8) and panel batching (sizes 1 and 4, both
// parallelisms) reproduce it bit-identically: same MSPs, same valid MSPs,
// same statistics. This is the guarantee that caches, WALs and the
// serving tier may treat an ordering variant as one deterministic plan
// regardless of how its session is driven.
func TestOrderingEquivalenceMatrix(t *testing.T) {
	travel := synth.DomainConfig{
		Name: "travel", YTerms: 30, XTerms: 10, YDepth: 4, XDepth: 3,
		Members: 8, Transactions: 12, Patterns: 6, Seed: 101,
	}
	culinary := synth.DomainConfig{
		Name: "culinary", YTerms: 24, XTerms: 12, YDepth: 4, XDepth: 3,
		Members: 8, Transactions: 12, Patterns: 8, Seed: 202,
	}
	type workload struct {
		name string
		cfg  func(t *testing.T) core.Config
	}
	workloads := []workload{
		{"figure1", figure1Config},
	}
	for _, dc := range []synth.DomainConfig{travel, culinary} {
		dc := dc
		workloads = append(workloads, workload{dc.Name, func(t *testing.T) core.Config {
			t.Helper()
			d, err := synth.GenerateDomain(dc)
			if err != nil {
				t.Fatal(err)
			}
			return core.Config{
				Space:   d.Sp,
				Theta:   0.2,
				Members: d.Members,
				Agg:     aggregate.NewFixedSample(3),
			}
		}})
	}
	for _, policy := range plan.OrderingNames() {
		ord, err := plan.OrderingByName(policy)
		if err != nil {
			t.Fatal(err)
		}
		withOrd := func(cfg core.Config) core.Config {
			cfg.Ordering = ord
			return cfg
		}
		for _, wl := range workloads {
			want := renderRun(core.Run(withOrd(wl.cfg(t))))
			for _, par := range []int{1, 8} {
				res, _ := core.RunConcurrent(withOrd(wl.cfg(t)), par, 42)
				if got := renderRun(res); got != want {
					t.Errorf("%s/%s/concurrent/p%d drifted from sequential:\n--- sequential\n%s--- concurrent\n%s",
						policy, wl.name, par, want, got)
				}
			}
			for _, size := range []int{1, 4} {
				for _, par := range []int{1, 8} {
					name := fmt.Sprintf("%s/%s/panels/size%d/p%d", policy, wl.name, size, par)
					res, _ := panel.Run(withOrd(wl.cfg(t)), panel.Config{Size: size}, par)
					if got := renderRun(res); got != want {
						t.Errorf("%s drifted from sequential:\n--- sequential\n%s--- panels\n%s",
							name, want, got)
					}
				}
			}
		}
	}
}
