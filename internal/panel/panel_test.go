package panel_test

import (
	"fmt"
	"testing"

	"oassis/internal/aggregate"
	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/panel"
	"oassis/internal/synth"
)

// figure1Query is the paper's running-example query over the Figure 1
// ontology (the same shape the serving-tier equivalence test uses).
const figure1Query = `
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity
SATISFYING
  $y doAt $x
WITH SUPPORT = 0.4
`

// renderRun flattens a core result into one comparable string: every MSP
// and valid-MSP key in order plus the full statistics. Bit-identical runs
// render identically.
func renderRun(res *core.Result) string {
	out := ""
	for _, m := range res.MSPs {
		out += "msp: " + m.Key() + "\n"
	}
	for _, m := range res.ValidMSPs {
		out += "valid: " + m.Key() + "\n"
	}
	return out + fmt.Sprintf("stats: %+v\n", res.Stats)
}

// figure1Config builds the Figure-1 workload: the paper's sample ontology
// mined by the two sample personal histories.
func figure1Config(t *testing.T) core.Config {
	t.Helper()
	s := ontology.NewSample()
	dom, err := core.NewDomain(s.Voc, s.Onto)
	if err != nil {
		t.Fatal(err)
	}
	q, err := oassisql.Parse(figure1Query)
	if err != nil {
		t.Fatal(err)
	}
	pl, _, err := dom.Compile(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	u1, u2 := crowd.SampleDBs(s)
	return core.Config{
		Space: pl.NewSpace(),
		Theta: pl.Support,
		Members: []crowd.Member{
			&crowd.SimMember{Name: "p00", DB: u1},
			&crowd.SimMember{Name: "p01", DB: u2},
		},
		Agg: aggregate.NewFixedSample(2),
	}
}

// TestPanelEquivalenceMatrix is the tentpole's correctness claim: panel-
// batched execution is bit-identical to sequential per-question execution
// — across the Figure-1 domain and two synthetic domains, at panel sizes
// 1, 4 and 16, with and without successor speculation, at dispatch
// parallelism 1 and 8.
func TestPanelEquivalenceMatrix(t *testing.T) {
	travel := synth.DomainConfig{
		Name: "travel", YTerms: 30, XTerms: 10, YDepth: 4, XDepth: 3,
		Members: 8, Transactions: 12, Patterns: 6, Seed: 101,
	}
	culinary := synth.DomainConfig{
		Name: "culinary", YTerms: 24, XTerms: 12, YDepth: 4, XDepth: 3,
		Members: 8, Transactions: 12, Patterns: 8, Seed: 202,
	}
	type workload struct {
		name string
		cfg  func(t *testing.T) core.Config
	}
	workloads := []workload{
		{"figure1", figure1Config},
	}
	for _, dc := range []synth.DomainConfig{travel, culinary} {
		dc := dc
		workloads = append(workloads, workload{dc.Name, func(t *testing.T) core.Config {
			t.Helper()
			d, err := synth.GenerateDomain(dc)
			if err != nil {
				t.Fatal(err)
			}
			return core.Config{
				Space:   d.Sp,
				Theta:   0.2,
				Members: d.Members,
				Agg:     aggregate.NewFixedSample(3),
			}
		}})
	}
	for _, wl := range workloads {
		want := renderRun(core.Run(wl.cfg(t)))
		for _, size := range []int{1, 4, 16} {
			for _, spec := range []int{0, size} {
				for _, par := range []int{1, 8} {
					name := fmt.Sprintf("%s/size%d/spec%d/p%d", wl.name, size, spec, par)
					cfg := wl.cfg(t)
					cfg.PanelSpeculation = spec
					res, st := panel.Run(cfg, panel.Config{Size: size}, par)
					if got := renderRun(res); got != want {
						t.Errorf("%s: panel-batched run differs from sequential:\n--- sequential\n%s--- panels\n%s",
							name, want, got)
					}
					if st.RoundTrips == 0 || st.Items < st.RoundTrips {
						t.Errorf("%s: implausible stats %+v", name, st)
					}
				}
			}
		}
	}
}

// TestBatcherShapesPanels checks the batching rules: the blocked question
// leads its panel, panels respect the size bound, items carry priors, and
// every surfaced question belongs to the panel of its member.
func TestBatcherShapesPanels(t *testing.T) {
	cfg := figure1Config(t)
	cfg.PanelSpeculation = 8
	ids := make([]string, len(cfg.Members))
	for i, m := range cfg.Members {
		ids[i] = m.ID()
	}
	members := cfg.Members
	byID := map[string]crowd.Member{}
	for _, m := range members {
		byID[m.ID()] = m
	}
	s := core.NewSession(cfg, ids)
	defer s.Close()
	b := panel.NewBatcher(s, panel.Config{Size: 4})
	seenMulti := false
	for rounds := 0; rounds < 200; rounds++ {
		panels := b.Next()
		if panels == nil {
			break
		}
		blocked := panels[0]
		if len(blocked.Items) == 0 {
			t.Fatal("blocked panel is empty")
		}
		for pi, p := range panels {
			if len(p.Items) > 4 {
				t.Fatalf("panel for %s exceeds size bound: %d items", p.Member, len(p.Items))
			}
			for i, it := range p.Items {
				if it.Question.Member != p.Member {
					t.Fatalf("panel for %s carries a question for %s", p.Member, it.Question.Member)
				}
				if it.Question.Kind == core.KindConcrete && it.Prior.Confidence == crowd.ConfidenceNone {
					t.Fatalf("concrete item %d of %s has no prior", i, p.Member)
				}
				if pi > 0 && !it.Question.Speculative {
					t.Fatalf("non-blocked panel for %s carries the engine's own question", p.Member)
				}
			}
			if len(p.Items) > 1 {
				seenMulti = true
			}
		}
		// Answer only the blocked question, sequential-style.
		q := blocked.Items[0].Question
		m := byID[q.Member]
		var subs []core.Submission
		switch q.Kind {
		case core.KindSpecialization:
			r := m.ChooseSpecialization(q.Choices)
			subs = append(subs, core.Submission{ID: q.ID, Answer: core.Answer{
				Support: r.Support, Choice: r.Choice, Chosen: r.Chosen, Declined: r.Declined,
			}})
		default:
			subs = append(subs, core.Submission{ID: q.ID, Answer: core.AnswerSupport(m.Concrete(q.Facts))})
		}
		if err := s.SubmitBatch(subs); err != nil {
			t.Fatal(err)
		}
	}
	if !seenMulti {
		t.Error("successor speculation never filled a panel beyond one item")
	}
}

// TestSessionPriorsGrading checks the default prior source's grading: no
// answers yields a Low-confidence structural guess, one answer upgrades
// to Medium, three or more to High (a one-tap confirmation) with the
// aggregate mean as the guess.
func TestSessionPriorsGrading(t *testing.T) {
	cfg := figure1Config(t)
	ids := []string{"p00", "p01"}
	s := core.NewSession(cfg, ids)
	defer s.Close()
	src := panel.SessionPriors(s)
	qs := s.Next()
	if len(qs) == 0 {
		t.Fatal("no questions")
	}
	q := qs[0]
	if q.Kind != core.KindConcrete {
		t.Skipf("first question is %v, not concrete", q.Kind)
	}
	p := src.Prior(q)
	if p.Confidence != crowd.ConfidenceLow || p.Source != "ontology" {
		t.Fatalf("prior before any answer = %+v, want Low/ontology", p)
	}
	if p.Support <= 0 || p.Support > 1 {
		t.Fatalf("structural guess %v out of range", p.Support)
	}
}
