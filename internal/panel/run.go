package panel

import (
	"math"

	"oassis/internal/core"
	"oassis/internal/crowd"
)

// Stats reports what panel batching did beyond the run's own statistics:
// how many member round trips the panels cost, how many questions they
// carried, and how the priors fared. The numbers never influence the
// mined result.
type Stats struct {
	// RoundTrips counts panels sent to members — the unit the batching
	// layer optimizes (one panel is one screen, one member round trip).
	RoundTrips int
	// Items counts the questions those panels carried.
	Items int
	// Confirmable counts items carried with a high-confidence prior
	// (rendered as one-tap confirmations).
	Confirmable int
	// Confirms counts confirmable items the member's answer agreed with
	// (within half an answer-scale step of the prior's guess).
	Confirms int
	// Wasted counts answers collected but never consumed by the engine.
	Wasted int
}

// ConfirmRate is the fraction of one-tap confirmations the member agreed
// with (0 when no item was confirmable).
func (st Stats) ConfirmRate() float64 {
	if st.Confirmable == 0 {
		return 0
	}
	return float64(st.Confirms) / float64(st.Confirmable)
}

// outcome is one answered panel coming back from a member.
type outcome struct {
	member string
	items  []Item
	subs   []core.Submission
}

// answerPanel obtains one member's answers to a whole panel: concrete
// items go through crowd.AnswerPanel in one batch (one round-trip latency
// for a Panelist), the blocked question's other kinds through the
// member's usual methods.
func answerPanel(m crowd.Member, p Panel) []core.Submission {
	subs := make([]core.Submission, len(p.Items))
	var pqs []crowd.PanelQuestion
	var concrete []int
	for i, it := range p.Items {
		q := it.Question
		switch q.Kind {
		case core.KindSpecialization:
			r := m.ChooseSpecialization(q.Choices)
			subs[i] = core.Submission{ID: q.ID, Answer: core.Answer{
				Support: r.Support, Choice: r.Choice, Chosen: r.Chosen, Declined: r.Declined,
			}}
		case core.KindPruning:
			ans := core.AnswerNoClick()
			if t, ok := m.Irrelevant(q.Terms); ok {
				for idx, cand := range q.Terms {
					if cand == t {
						ans = core.AnswerIrrelevant(idx)
						break
					}
				}
			}
			subs[i] = core.Submission{ID: q.ID, Answer: ans}
		default:
			pqs = append(pqs, crowd.PanelQuestion{Facts: q.Facts, Prior: it.Prior})
			concrete = append(concrete, i)
		}
	}
	if len(pqs) > 0 {
		sups := crowd.AnswerPanel(m, pqs)
		for j, i := range concrete {
			subs[i] = core.Submission{ID: p.Items[i].Question.ID, Answer: core.AnswerSupport(sups[j])}
		}
	}
	return subs
}

// Run executes the same mining run as core.Run, but panel-first: it
// drives a core.Session through a Batcher, keeps at most one panel in
// flight per member and at most parallelism panels in flight overall,
// answers each panel through the member (crowd.Panelist members answer
// the whole panel in one round trip), and merges every panel back with
// one SubmitBatch. The result is bit-identical to core.Run(cfg) for
// members whose answers depend only on (member, question) — exactly the
// guarantee core.RunConcurrent gives, proven by the equivalence tests in
// this package.
//
// Set cfg.PanelSpeculation (typically to pcfg.Size) to fill panels with
// the round node's successor questions; without it panels carry at most
// the round question and the blocked question's mirror.
func Run(cfg core.Config, pcfg Config, parallelism int) (*core.Result, Stats) {
	if parallelism < 1 {
		parallelism = 1
	}
	byID := make(map[string]crowd.Member, len(cfg.Members))
	ids := make([]string, 0, len(cfg.Members))
	for _, m := range cfg.Members {
		ids = append(ids, m.ID())
		byID[m.ID()] = m
	}
	s := core.NewSession(cfg, ids)
	b := NewBatcher(s, pcfg)

	var st Stats
	results := make(chan outcome, len(ids))
	busy := make(map[string]bool, len(ids))
	inFlight := 0

	launch := func(p Panel) {
		busy[p.Member] = true
		inFlight++
		st.RoundTrips++
		st.Items += len(p.Items)
		for _, it := range p.Items {
			if it.Confirm() {
				st.Confirmable++
			}
		}
		m := byID[p.Member]
		go func() {
			results <- outcome{member: p.Member, items: p.Items, subs: answerPanel(m, p)}
		}()
	}

	for {
		panels := b.Next()
		if panels == nil && inFlight == 0 {
			break
		}
		for _, p := range panels {
			if inFlight >= parallelism {
				break
			}
			if busy[p.Member] || len(p.Items) == 0 {
				continue
			}
			launch(p)
		}
		o := <-results
		busy[o.member] = false
		inFlight--
		for i, it := range o.items {
			if it.Confirm() && math.Abs(o.subs[i].Answer.Support-it.Prior.Support) < 0.125 {
				st.Confirms++
			}
		}
		if s.Done() {
			st.Wasted += len(o.subs)
			continue
		}
		if err := s.SubmitBatch(o.subs); err != nil {
			st.Wasted++ // a question was consumed another way
		}
	}
	res := s.Close()
	st.Wasted += s.BufferedWaste()
	return res, st
}
