// Package panel is the batching layer between the step-driven session
// engine and the crowd: it drains every concurrently-askable question
// from core.Session.Next, groups them into per-member panels of bounded
// size, orders the items by a priority score (the plan ordering's
// position score plus expected information gain), and primes each
// concrete question with a
// Prior — a best-guess frequency derived from the running aggregate, the
// ontology's shape, or a pluggable PriorSource — so members confirm cheap
// guesses instead of answering from scratch, one screen per round trip.
//
// Batching never changes the mined result: panel answers are submitted
// through core.Session.SubmitBatch, which applies them in deterministic
// (question-ID) order, and answers ahead of the engine's own position are
// buffered by ask key exactly as individual submits would be. The
// equivalence tests in this package prove bit-identical results against
// sequential per-question execution across domains, panel sizes, and
// dispatch parallelism.
package panel

import (
	"sort"

	"oassis/internal/core"
	"oassis/internal/crowd"
	"oassis/internal/plan"
)

// DefaultSize is the panel size bound when Config.Size is zero: one
// phone screen of confirmations.
const DefaultSize = 8

// Config parameterizes a Batcher.
type Config struct {
	// Size bounds the items per panel. 0 means DefaultSize.
	Size int
	// Source supplies the prior guess attached to each question. nil
	// means SessionPriors over the batcher's own session.
	Source PriorSource
}

// PriorSource derives the best-guess prior for a question. Implementations
// must be deterministic for a given session state; they are consulted
// between Next and Submit, while the engine is parked.
type PriorSource interface {
	Prior(q core.Question) crowd.Prior
}

// Item is one question inside a panel: the engine question, the priority
// that ranked it into the panel, and its prior guess.
type Item struct {
	Question core.Question
	// Priority ranked the item within the member's panel (higher is
	// earlier). The engine's blocked question always ranks first.
	Priority float64
	Prior    crowd.Prior
}

// Confirm reports whether the item renders as a one-tap confirmation
// (high-confidence prior) rather than an open question.
func (it Item) Confirm() bool { return it.Prior.Confirmable() }

// Panel is one member's batch of currently answerable questions,
// priority-ordered, at most Config.Size of them.
type Panel struct {
	Member string
	Items  []Item
}

// Batcher groups a session's answerable questions into per-member panels.
// Like the session it wraps, a Batcher is not safe for concurrent use.
type Batcher struct {
	s    *core.Session
	size int
	src  PriorSource
	ord  plan.Ordering
}

// NewBatcher returns a batcher over the session.
func NewBatcher(s *core.Session, cfg Config) *Batcher {
	size := cfg.Size
	if size <= 0 {
		size = DefaultSize
	}
	src := cfg.Source
	if src == nil {
		src = SessionPriors(s)
	}
	return &Batcher{s: s, size: size, src: src, ord: s.Ordering()}
}

// Session returns the wrapped session (for Close and result access).
func (b *Batcher) Session() *core.Session { return b.s }

// priority scores a speculative question: the active ordering's position
// score plus expected information gain (a question with fewer collected
// answers moves the aggregate more).
func (b *Batcher) priority(q core.Question) float64 {
	p := positionScore(b.ord, len(q.Facts))
	if q.Kind == core.KindConcrete {
		_, n := b.s.AggregateHint(q.Facts)
		p += 1.0 / float64(1+n)
	}
	return p
}

// positionScore asks the session's ordering to grade a candidate of the
// given pattern size. Orderings that cannot score in isolation (the
// tier-two selectors, which rank against the whole candidate view) fall
// back to the paper's smallest-first position — the default the batcher
// always used. plan.PaperOrder's Scorer is exactly that fallback, so the
// default path is bit-identical either way.
func positionScore(o plan.Ordering, size int) float64 {
	if sc, ok := o.(plan.Scorer); ok {
		return sc.Score(size)
	}
	return 1.0 / float64(1+size)
}

// Next drains the session's currently answerable questions and returns
// them as per-member panels: the panel holding the engine's blocked
// question first (it is the only one guaranteed to advance the run, and
// leads its panel regardless of score), the rest in first-surfaced order.
// Within a panel, items are priority-ordered with question IDs breaking
// ties, then truncated to the size bound. Next returns nil exactly when
// the run has finished.
func (b *Batcher) Next() []Panel {
	qs := b.s.Next()
	if len(qs) == 0 {
		return nil
	}
	blocked := qs[0]
	order := []string{blocked.Member}
	byMember := map[string][]Item{}
	for _, q := range qs {
		if _, seen := byMember[q.Member]; !seen && q.Member != blocked.Member {
			order = append(order, q.Member)
		}
		byMember[q.Member] = append(byMember[q.Member], Item{
			Question: q,
			Priority: b.priority(q),
			Prior:    b.src.Prior(q),
		})
	}
	panels := make([]Panel, 0, len(order))
	for _, member := range order {
		items := byMember[member]
		sort.SliceStable(items, func(i, j int) bool {
			qi, qj := items[i].Question, items[j].Question
			if qi.ID == blocked.ID {
				return true
			}
			if qj.ID == blocked.ID {
				return false
			}
			if items[i].Priority != items[j].Priority {
				return items[i].Priority > items[j].Priority
			}
			return qi.ID < qj.ID
		})
		if len(items) > b.size {
			items = items[:b.size]
		}
		panels = append(panels, Panel{Member: member, Items: items})
	}
	return panels
}

// sessionPriors derives priors from the session's own state: the running
// aggregate when it has answers for the question, the ontology's shape
// (pattern size) when it does not.
type sessionPriors struct{ s *core.Session }

// SessionPriors returns the default prior source over a session. Guesses
// come from the running aggregate — the mean of the answers collected so
// far for the same fact-set, in the spirit of worker-weighted
// aggregation — graded Medium with any answer and High with three or
// more (a one-tap confirmation). Without answers the guess falls back to
// the ontology's structure: general patterns (small fact-sets) are
// likelier frequent than specific ones, at Low confidence, so the
// question renders open with the guess merely pre-selected.
func SessionPriors(s *core.Session) PriorSource { return sessionPriors{s: s} }

func (sp sessionPriors) Prior(q core.Question) crowd.Prior {
	if q.Kind != core.KindConcrete {
		return crowd.Prior{}
	}
	mean, n := sp.s.AggregateHint(q.Facts)
	switch {
	case n >= 3:
		return crowd.Prior{Support: mean, Confidence: crowd.ConfidenceHigh, Source: "aggregate"}
	case n >= 1:
		return crowd.Prior{Support: mean, Confidence: crowd.ConfidenceMedium, Source: "aggregate"}
	}
	return crowd.Prior{
		Support:    1.0 / float64(1+len(q.Facts)),
		Confidence: crowd.ConfidenceLow,
		Source:     "ontology",
	}
}
