package panel_test

import (
	"fmt"
	"testing"

	"oassis/internal/aggregate"
	"oassis/internal/core"
	"oassis/internal/panel"
	"oassis/internal/synth"
)

// TestThresholdStopEquivalenceMatrix is the stop-policy PR's correctness
// claim: attaching the default ThresholdStop is bit-identical to attaching
// no policy at all — over the same matrix the panel equivalence test pins
// (Figure-1 plus the travel and culinary synthetic domains, sequential and
// concurrent dispatch at parallelism 1 and 8, panel batching on and off).
func TestThresholdStopEquivalenceMatrix(t *testing.T) {
	travel := synth.DomainConfig{
		Name: "travel", YTerms: 30, XTerms: 10, YDepth: 4, XDepth: 3,
		Members: 8, Transactions: 12, Patterns: 6, Seed: 101,
	}
	culinary := synth.DomainConfig{
		Name: "culinary", YTerms: 24, XTerms: 12, YDepth: 4, XDepth: 3,
		Members: 8, Transactions: 12, Patterns: 8, Seed: 202,
	}
	type workload struct {
		name string
		cfg  func(t *testing.T) core.Config
	}
	workloads := []workload{
		{"figure1", figure1Config},
	}
	for _, dc := range []synth.DomainConfig{travel, culinary} {
		dc := dc
		workloads = append(workloads, workload{dc.Name, func(t *testing.T) core.Config {
			t.Helper()
			d, err := synth.GenerateDomain(dc)
			if err != nil {
				t.Fatal(err)
			}
			return core.Config{
				Space:   d.Sp,
				Theta:   0.2,
				Members: d.Members,
				Agg:     aggregate.NewFixedSample(3),
			}
		}})
	}
	withStop := func(cfg core.Config) core.Config {
		cfg.Stop = aggregate.ThresholdStop{}
		return cfg
	}
	for _, wl := range workloads {
		// Sequential engine, no policy attached: the pre-PR behavior.
		want := renderRun(core.Run(wl.cfg(t)))

		if got := renderRun(core.Run(withStop(wl.cfg(t)))); got != want {
			t.Errorf("%s/sequential: ThresholdStop drifted from no-policy:\n--- none\n%s--- threshold\n%s",
				wl.name, want, got)
		}
		for _, par := range []int{1, 8} {
			res, _ := core.RunConcurrent(withStop(wl.cfg(t)), par, 42)
			if got := renderRun(res); got != want {
				t.Errorf("%s/concurrent/p%d: ThresholdStop drifted from no-policy:\n--- none\n%s--- threshold\n%s",
					wl.name, par, want, got)
			}
		}
		for _, size := range []int{1, 4} {
			for _, par := range []int{1, 8} {
				name := fmt.Sprintf("%s/panels/size%d/p%d", wl.name, size, par)
				res, _ := panel.Run(withStop(wl.cfg(t)), panel.Config{Size: size}, par)
				if got := renderRun(res); got != want {
					t.Errorf("%s: ThresholdStop drifted from no-policy:\n--- none\n%s--- threshold\n%s",
						name, want, got)
				}
			}
		}
	}
}
