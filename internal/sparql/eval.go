// Package sparql evaluates the WHERE clause of an OASSIS-QL query against an
// ontology, producing the set of valid variable bindings (the SPARQL-engine
// role that the paper's prototype delegates to RDFLIB, §6.1).
//
// Matching follows standard SPARQL graph-pattern semantics over the stored
// triples: triple patterns join on shared variables, `rel*` patterns are
// zero-or-more path reachability, and hasLabel patterns select elements by
// label literal. Relations match with subsumption (a nearBy pattern matches
// an inside fact when nearBy ≤R inside).
package sparql

import (
	"fmt"
	"sort"
	"strings"

	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/vocab"
)

// Binding maps variable names to vocabulary terms.
type Binding map[string]vocab.Term

// clone copies b.
func (b Binding) clone() Binding {
	out := make(Binding, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// key returns a canonical key of b over the given variable order.
func (b Binding) key(vars []string) string {
	var sb strings.Builder
	for _, v := range vars {
		fmt.Fprintf(&sb, "%d;", b[v])
	}
	return sb.String()
}

// Evaluate computes all bindings of the pattern variables that satisfy the
// patterns on o. Term names are resolved against o's vocabulary; unknown
// names are an error. The result is deterministic (sorted by binding key)
// and duplicate-free.
func Evaluate(o *ontology.Ontology, patterns []oassisql.Pattern) ([]Binding, error) {
	v := o.Vocabulary()
	resolved := make([]pattern, len(patterns))
	for i, p := range patterns {
		rp, err := resolve(v, p)
		if err != nil {
			return nil, err
		}
		resolved[i] = rp
	}

	bindings := []Binding{{}}
	remaining := append([]pattern(nil), resolved...)
	for len(remaining) > 0 {
		// Greedy join order: prefer the pattern with the fewest unbound
		// variables (w.r.t. the first current binding; all bindings share a
		// domain) to keep intermediate results small.
		best, bestUnbound := 0, 4
		for i, p := range remaining {
			u := p.unbound(bindings[0])
			if u < bestUnbound {
				best, bestUnbound = i, u
			}
		}
		p := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		var next []Binding
		for _, b := range bindings {
			next = p.extend(o, b, next)
		}
		bindings = next
		if len(bindings) == 0 {
			return nil, nil
		}
	}

	vars := oassisql.Vars(patterns)
	seen := map[string]bool{}
	var out []Binding
	for _, b := range bindings {
		k := b.key(vars)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key(vars) < out[j].key(vars) })
	return out, nil
}

// atom is a resolved pattern component.
type atom struct {
	varName string     // non-empty for variables
	term    vocab.Term // vocab.Any for [], otherwise a concrete term unless varName != ""
	literal string     // label literal (object of hasLabel patterns)
	isLit   bool
}

// pattern is a resolved triple pattern.
type pattern struct {
	s, r, o atom
	path    bool
	isLabel bool // hasLabel with literal object
}

func resolve(v *vocab.Vocabulary, p oassisql.Pattern) (pattern, error) {
	conv := func(a oassisql.Atom, kind vocab.Kind) (atom, error) {
		switch a.Kind {
		case oassisql.AtomVar:
			return atom{varName: a.Name}, nil
		case oassisql.AtomAny:
			return atom{term: vocab.Any}, nil
		case oassisql.AtomLiteral:
			return atom{literal: a.Name, isLit: true}, nil
		default:
			t, ok := v.Lookup(a.Name)
			if !ok {
				return atom{}, fmt.Errorf("sparql: %s: unknown term %q", p.Pos, a.Name)
			}
			if v.KindOf(t) != kind {
				return atom{}, fmt.Errorf("sparql: %s: %q is a %v, used as %v",
					p.Pos, a.Name, v.KindOf(t), kind)
			}
			return atom{term: t}, nil
		}
	}
	var rp pattern
	var err error
	if rp.s, err = conv(p.S, vocab.Element); err != nil {
		return pattern{}, err
	}
	if p.O.Kind == oassisql.AtomLiteral {
		// Label pattern: labels live in the label store, not the fact
		// store, so the label relation (hasLabel) need not be a vocabulary
		// term at all.
		rp.o = atom{literal: p.O.Name, isLit: true}
		rp.isLabel = true
		return rp, nil
	}
	if rp.r, err = conv(p.R, vocab.Relation); err != nil {
		return pattern{}, err
	}
	rp.path = p.Path
	if rp.o, err = conv(p.O, vocab.Element); err != nil {
		return pattern{}, err
	}
	return rp, nil
}

// unbound counts the pattern's variables not bound in b.
func (p pattern) unbound(b Binding) int {
	n := 0
	for _, a := range []atom{p.s, p.r, p.o} {
		if a.varName != "" {
			if _, ok := b[a.varName]; !ok {
				n++
			}
		}
	}
	return n
}

// value returns the concrete term of a under binding b, or vocab.None when a
// is an unbound variable or the Any wildcard.
func (a atom) value(b Binding) vocab.Term {
	if a.varName != "" {
		if t, ok := b[a.varName]; ok {
			return t
		}
		return vocab.None
	}
	if a.term == vocab.Any {
		return vocab.None
	}
	return a.term
}

// bind extends b with a := t if a is a variable; it reports whether the
// extension is consistent.
func (a atom) bind(b Binding, t vocab.Term) (Binding, bool) {
	if a.varName == "" {
		return b, true
	}
	if prev, ok := b[a.varName]; ok {
		return b, prev == t
	}
	nb := b.clone()
	nb[a.varName] = t
	return nb, true
}

// extend appends to out every extension of b satisfying p on o.
func (p pattern) extend(o *ontology.Ontology, b Binding, out []Binding) []Binding {
	v := o.Vocabulary()
	switch {
	case p.isLabel:
		if s := p.s.value(b); s != vocab.None {
			if o.HasLabel(s, p.o.literal) {
				out = append(out, b)
			}
			return out
		}
		for _, t := range o.Labeled(p.o.literal) {
			if nb, ok := p.s.bind(b, t); ok {
				out = append(out, nb)
			}
		}
		return out

	case p.path:
		rel := p.r.term // validated: paths require a named relation
		s, obj := p.s.value(b), p.o.value(b)
		switch {
		case s != vocab.None && obj != vocab.None:
			if o.Reachable(s, rel, obj) {
				out = append(out, b)
			}
		case s != vocab.None:
			for _, t := range o.ReachableSet(s, rel) {
				if nb, ok := p.o.bind(b, t); ok {
					out = append(out, nb)
				}
			}
		case obj != vocab.None:
			for _, t := range o.SourcesReaching(obj, rel) {
				if nb, ok := p.s.bind(b, t); ok {
					out = append(out, nb)
				}
			}
		default:
			// Both ends unbound: enumerate all elements as sources.
			for t := 0; t < v.Len(); t++ {
				src := vocab.Term(t)
				if v.KindOf(src) != vocab.Element {
					continue
				}
				nb, ok := p.s.bind(b, src)
				if !ok {
					continue
				}
				for _, dst := range o.ReachableSet(src, rel) {
					if nb2, ok := p.o.bind(nb, dst); ok {
						out = append(out, nb2)
					}
				}
			}
		}
		return out

	default:
		s, r, obj := p.s.value(b), p.r.value(b), p.o.value(b)
		for _, f := range o.Match(s, r, obj) {
			nb, ok := p.s.bind(b, f.S)
			if !ok {
				continue
			}
			nb, ok = p.r.bind(nb, f.R)
			if !ok {
				continue
			}
			nb, ok = p.o.bind(nb, f.O)
			if !ok {
				continue
			}
			out = append(out, nb)
		}
		return out
	}
}
