package sparql

import (
	"sort"
	"strings"
	"testing"

	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/vocab"
)

const figure2 = `
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity .
  $z instanceOf Restaurant.
  $z nearBy $x
SATISFYING
  $y+ doAt $x .
  [] eatAt $z.
  MORE
WITH SUPPORT = 0.4
`

func evalFigure2(t *testing.T) (*ontology.Sample, []Binding) {
	t.Helper()
	s := ontology.NewSample()
	q := oassisql.MustParse(figure2)
	bs, err := Evaluate(s.Onto, q.Where)
	if err != nil {
		t.Fatal(err)
	}
	return s, bs
}

func TestEvaluateFigure2(t *testing.T) {
	s, bs := evalFigure2(t)
	if len(bs) == 0 {
		t.Fatal("no bindings")
	}
	// Valid x values: child-friendly attractions inside NYC with a nearby
	// restaurant — Central Park (Maoz Veg) and Bronx Zoo (Pine).
	xs := map[string]bool{}
	ys := map[string]bool{}
	pairs := map[string]bool{}
	for _, b := range bs {
		xs[s.Voc.Name(b["x"])] = true
		ys[s.Voc.Name(b["y"])] = true
		pairs[s.Voc.Name(b["x"])+"/"+s.Voc.Name(b["z"])] = true
	}
	if !xs["Central Park"] || !xs["Bronx Zoo"] || len(xs) != 2 {
		t.Errorf("x values = %v", xs)
	}
	if !pairs["Central Park/Maoz Veg"] || !pairs["Bronx Zoo/Pine"] {
		t.Errorf("x/z pairs = %v", pairs)
	}
	if pairs["Central Park/Pine"] || pairs["Bronx Zoo/Maoz Veg"] {
		t.Errorf("cross pairs leaked: %v", pairs)
	}
	// y ranges over Activity and all its subclasses (subClassOf* includes
	// the zero-length path).
	for _, want := range []string{"Activity", "Sport", "Biking", "Basketball", "Falafel", "Feed a Monkey"} {
		if !ys[want] {
			t.Errorf("missing y value %s (have %v)", want, ys)
		}
	}
	if ys["Central Park"] || ys["Restaurant"] {
		t.Errorf("y leaked non-activities: %v", ys)
	}
	// Assignment count: 2 x-values × |Activity closure| y-values × 1 z each.
	yCount := len(ys)
	if len(bs) != 2*yCount {
		t.Errorf("len(bindings) = %d, want %d", len(bs), 2*yCount)
	}
}

func TestEvaluateDeterministic(t *testing.T) {
	s := ontology.NewSample()
	q := oassisql.MustParse(figure2)
	a, err := Evaluate(s.Onto, q.Where)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(s.Onto, q.Where)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("nondeterministic result size")
	}
	for i := range a {
		for _, v := range []string{"w", "x", "y", "z"} {
			if a[i][v] != b[i][v] {
				t.Fatalf("binding %d differs on %s", i, v)
			}
		}
	}
}

func TestEmptyWhere(t *testing.T) {
	s := ontology.NewSample()
	bs, err := Evaluate(s.Onto, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 || len(bs[0]) != 0 {
		t.Fatalf("empty WHERE = %v, want single empty binding", bs)
	}
}

func TestUnknownTerm(t *testing.T) {
	s := ontology.NewSample()
	q := oassisql.MustParse(`SELECT FACT-SETS WHERE $x instanceOf Nonexistent
		SATISFYING $x doAt $x WITH SUPPORT = 0.2`)
	if _, err := Evaluate(s.Onto, q.Where); err == nil {
		t.Fatal("unknown term accepted")
	}
	q2 := oassisql.MustParse(`SELECT FACT-SETS WHERE $x doAt Park
		SATISFYING $x doAt $x WITH SUPPORT = 0.2`)
	// doAt exists but Park used with an element kind is fine; use a relation
	// name in element position instead to trigger the kind error.
	q2.Where[0].O = oassisql.TermAtom("inside")
	if _, err := Evaluate(s.Onto, q2.Where); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

func TestRelationSubsumptionInWhere(t *testing.T) {
	s := ontology.NewSample()
	// nearBy should match inside facts: everything inside NYC is near NYC.
	q := oassisql.MustParse(`SELECT FACT-SETS WHERE $p nearBy NYC
		SATISFYING $p nearBy $p WITH SUPPORT = 0.2`)
	bs, err := Evaluate(s.Onto, q.Where)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, b := range bs {
		got[s.Voc.Name(b["p"])] = true
	}
	for _, want := range []string{"Central Park", "Bronx Zoo", "Madison Square", "Maoz Veg", "Pine"} {
		if !got[want] {
			t.Errorf("missing %s in nearBy NYC: %v", want, got)
		}
	}
}

func TestVariableRelation(t *testing.T) {
	s := ontology.NewSample()
	q := oassisql.MustParse(`SELECT FACT-SETS WHERE "Maoz Veg" $r $o
		SATISFYING $o doAt $o WITH SUPPORT = 0.2`)
	bs, err := Evaluate(s.Onto, q.Where)
	if err != nil {
		t.Fatal(err)
	}
	// Maoz Veg: instanceOf Restaurant, inside NYC, nearBy Central Park.
	if len(bs) != 3 {
		t.Fatalf("got %d bindings: %v", len(bs), names(s, bs, "r"))
	}
}

func TestAnyWildcardInWhere(t *testing.T) {
	s := ontology.NewSample()
	q := oassisql.MustParse(`SELECT FACT-SETS WHERE $x nearBy [] . $x instanceOf Restaurant
		SATISFYING $x doAt $x WITH SUPPORT = 0.2`)
	bs, err := Evaluate(s.Onto, q.Where)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, b := range bs {
		got[s.Voc.Name(b["x"])] = true
	}
	if !got["Maoz Veg"] || !got["Pine"] || len(got) != 2 {
		t.Errorf("restaurants near anything = %v", got)
	}
}

func TestSharedVariableJoin(t *testing.T) {
	s := ontology.NewSample()
	// Same variable in both positions: $x nearBy $x never holds.
	q := oassisql.MustParse(`SELECT FACT-SETS WHERE $x nearBy $x
		SATISFYING $x doAt $x WITH SUPPORT = 0.2`)
	bs, err := Evaluate(s.Onto, q.Where)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 0 {
		t.Errorf("self-nearBy bindings: %v", names(s, bs, "x"))
	}
}

func TestPathBothUnbound(t *testing.T) {
	s := ontology.NewSample()
	q := oassisql.MustParse(`SELECT FACT-SETS WHERE $a subClassOf* $b . $b subClassOf* Attraction
		SATISFYING $a doAt $a WITH SUPPORT = 0.2`)
	bs, err := Evaluate(s.Onto, q.Where)
	if err != nil {
		t.Fatal(err)
	}
	// All (a, b) pairs with a ⊑* b ⊑* Attraction; a,b among class terms.
	seen := map[string]bool{}
	for _, b := range bs {
		seen[s.Voc.Name(b["a"])+"<"+s.Voc.Name(b["b"])] = true
	}
	for _, want := range []string{"Park<Outdoor", "Park<Attraction", "Attraction<Attraction", "Zoo<Zoo"} {
		if !seen[want] {
			t.Errorf("missing pair %s (have %d pairs)", want, len(seen))
		}
	}
	if seen["Central Park<Park"] {
		t.Error("instanceOf edge treated as subClassOf in path")
	}
}

func TestAnchorsFigure2(t *testing.T) {
	s := ontology.NewSample()
	q := oassisql.MustParse(figure2)
	a := Anchors(s.Voc, q.Where)
	want := map[string]string{
		"w": "Attraction",
		"x": "Attraction",
		"y": "Activity",
		"z": "Restaurant",
	}
	for v, name := range want {
		ts := a[v]
		if len(ts) != 1 || ts[0] != s.T(name) {
			t.Errorf("anchor(%s) = %v, want [%s]", v, s.Voc.Names(ts), name)
		}
	}
}

func TestAnchorsKeepMaximal(t *testing.T) {
	s := ontology.NewSample()
	// x is anchored at both Attraction and Park; Park is more specific and
	// must win.
	q := oassisql.MustParse(`SELECT FACT-SETS WHERE
		$x instanceOf Park . $w subClassOf* Attraction . $x instanceOf $w
		SATISFYING $x doAt $x WITH SUPPORT = 0.2`)
	a := Anchors(s.Voc, q.Where)
	if len(a["x"]) != 1 || a["x"][0] != s.T("Park") {
		t.Errorf("anchor(x) = %v, want [Park]", s.Voc.Names(a["x"]))
	}
}

func TestAnchorsNoSubsumptionPattern(t *testing.T) {
	s := ontology.NewSample()
	q := oassisql.MustParse(`SELECT FACT-SETS WHERE $p nearBy NYC
		SATISFYING $p doAt $p WITH SUPPORT = 0.2`)
	a := Anchors(s.Voc, q.Where)
	if len(a["p"]) != 0 {
		t.Errorf("anchor(p) = %v, want none", s.Voc.Names(a["p"]))
	}
}

func names(s *ontology.Sample, bs []Binding, v string) []string {
	var out []string
	for _, b := range bs {
		out = append(out, s.Voc.Name(b[v]))
	}
	sort.Strings(out)
	return out
}

func TestBindingKeyStable(t *testing.T) {
	b := Binding{"x": 3, "y": 5}
	if b.key([]string{"x", "y"}) == b.key([]string{"y", "x"}) {
		t.Skip("keys may coincide only if values equal; sanity only")
	}
	if !strings.Contains(b.key([]string{"x", "y"}), "3;") {
		t.Error("key missing component")
	}
	_ = vocab.None
}
