package sparql

import (
	"sort"

	"oassis/internal/oassisql"
	"oassis/internal/vocab"
)

// SubsumptionRelations are the relation names whose ontology edges mirror
// the vocabulary order ≤E (Example 2.3 of the paper). They are the relations
// from which generalization anchors are derived.
var SubsumptionRelations = map[string]bool{
	"subClassOf": true,
	"instanceOf": true,
}

// Anchors derives, for each WHERE variable, the set of anchor terms that cap
// its generalization during the expansion step of the mining algorithm
// (Algorithm 1, line 1). A pattern `$w subClassOf* C` or `$x instanceOf C`
// anchors the variable at C; `$x instanceOf $w` propagates w's anchors to x.
// Variables without anchors may generalize up to the vocabulary roots.
//
// For the Figure 2 query this yields w,x ↦ {Attraction}, y ↦ {Activity},
// z ↦ {Restaurant}, reproducing the top node "(Attraction, Activity)" of the
// Figure 3 lattice.
func Anchors(v *vocab.Vocabulary, patterns []oassisql.Pattern) map[string][]vocab.Term {
	anchors := make(map[string]map[vocab.Term]struct{})
	addTerm := func(name string, t vocab.Term) bool {
		set := anchors[name]
		if set == nil {
			set = make(map[vocab.Term]struct{})
			anchors[name] = set
		}
		if _, ok := set[t]; ok {
			return false
		}
		set[t] = struct{}{}
		return true
	}

	type propagation struct{ from, to string } // anchors of `from` flow to `to`
	var props []propagation

	for _, p := range patterns {
		if p.R.Kind != oassisql.AtomTerm || !SubsumptionRelations[p.R.Name] {
			continue
		}
		if p.S.Kind != oassisql.AtomVar {
			continue
		}
		switch p.O.Kind {
		case oassisql.AtomTerm:
			if t, ok := v.Lookup(p.O.Name); ok {
				addTerm(p.S.Name, t)
			}
		case oassisql.AtomVar:
			props = append(props, propagation{from: p.O.Name, to: p.S.Name})
		}
	}

	// Propagate to fixpoint (handles chains like $x instanceOf $w,
	// $w subClassOf* Attraction regardless of pattern order).
	for changed := true; changed; {
		changed = false
		for _, pr := range props {
			for t := range anchors[pr.from] {
				if addTerm(pr.to, t) {
					changed = true
				}
			}
		}
	}

	out := make(map[string][]vocab.Term, len(anchors))
	for name, set := range anchors {
		ts := make([]vocab.Term, 0, len(set))
		for t := range set {
			ts = append(ts, t)
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		// Keep only the most specific anchors: if a ≤ b for anchors a and b,
		// the tighter cap b subsumes a.
		out[name] = keepMaximal(v, ts)
	}
	return out
}

// keepMaximal drops anchors that are proper generalizations of other anchors.
func keepMaximal(v *vocab.Vocabulary, ts []vocab.Term) []vocab.Term {
	var out []vocab.Term
	for i, a := range ts {
		dominated := false
		for j, b := range ts {
			if i != j && v.Lt(a, b) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	return out
}
