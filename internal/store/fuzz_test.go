package store

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord proves the WAL record decoder never panics or
// over-reads on arbitrary bytes — the exact property recovery relies on
// when it replays a log whose tail a crash may have left in any state.
func FuzzDecodeRecord(f *testing.F) {
	for _, r := range sampleRecords() {
		b := EncodeRecord(r)
		f.Add(b)
		f.Add(b[:len(b)/2]) // torn
		mut := append([]byte(nil), b...)
		mut[len(mut)-1] ^= 0xFF
		f.Add(mut) // corrupt
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, n, err := DecodeRecord(b)
		if err != nil {
			if n != 0 {
				t.Fatalf("error %v consumed %d bytes", err, n)
			}
			return
		}
		if len(b) == 0 {
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d bytes", n, len(b))
		}
		// A successfully decoded record must re-encode to the exact bytes
		// consumed: the format has one canonical encoding, so recovery
		// offsets are unambiguous.
		if got := EncodeRecord(rec); !bytes.Equal(got, b[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nread %x", got, b[:n])
		}
	})
}
