package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"oassis/internal/core"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Store, *Recovered) {
	t.Helper()
	st, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st, rec
}

// appendAnswers appends n distinct answers with deterministic content and
// returns their question keys in order.
func appendAnswers(t *testing.T, st *Store, n int) []string {
	t.Helper()
	var qs []string
	for i := 0; i < n; i++ {
		q := fmt.Sprintf("question-%02d with some padding", i)
		kind := core.QuestionKind(i % 4)
		if err := st.AppendAnswer(q, fmt.Sprintf("m%d", i%3), float64(i%5)*0.25, kind, i%2 == 0); err != nil {
			t.Fatal(err)
		}
		qs = append(qs, q)
	}
	return qs
}

func TestStoreRoundtrip(t *testing.T) {
	dir := t.TempDir()
	st, rec := mustOpen(t, dir, Options{})
	if len(rec.Answers) != 0 || rec.Session != "" {
		t.Fatalf("fresh store not empty: %+v", rec)
	}
	if err := st.BindSession("query-A"); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendJoin("p00", "ann"); err != nil {
		t.Fatal(err)
	}
	qs := appendAnswers(t, st, 7)
	if err := st.AppendClassification("some-node", true); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Appends after close fail without mutating state.
	if err := st.AppendAnswer("late", "m", 0, core.KindConcrete, true); !errors.Is(err, ErrClosed) {
		t.Errorf("append after close: %v", err)
	}

	st2, rec2 := mustOpen(t, dir, Options{})
	defer st2.Close()
	if rec2.Session != "query-A" {
		t.Errorf("session = %q", rec2.Session)
	}
	if len(rec2.Joins) != 1 || rec2.Joins[0].Member != "p00" || rec2.Joins[0].Note != "ann" {
		t.Errorf("joins = %+v", rec2.Joins)
	}
	if len(rec2.Answers) != len(qs) {
		t.Fatalf("recovered %d answers, want %d", len(rec2.Answers), len(qs))
	}
	for i, a := range rec2.Answers {
		if a.Question != qs[i] {
			t.Errorf("answer %d = %q, want %q", i, a.Question, qs[i])
		}
	}
	if len(rec2.Events) != 1 || rec2.Events[0].Node != "some-node" || !rec2.Events[0].Significant {
		t.Errorf("events = %+v", rec2.Events)
	}
	if rec2.TruncatedBytes != 0 {
		t.Errorf("clean log reported %d truncated bytes", rec2.TruncatedBytes)
	}
	c := rec2.PrimeCache()
	if c.Len() != len(qs) {
		t.Errorf("prime cache has %d answers", c.Len())
	}
	if s, ok := c.Lookup(qs[1], "m1"); !ok || s != 0.25 {
		t.Errorf("prime lookup = %v, %v", s, ok)
	}
}

func TestStoreDedup(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		if err := st.AppendAnswer("q", "m", 0.5, core.KindConcrete, true); err != nil {
			t.Fatal(err)
		}
		if err := st.AppendJoin("p00", "ann"); err != nil {
			t.Fatal(err)
		}
	}
	// Same question, different member, is a distinct answer.
	if err := st.AppendAnswer("q", "m2", 0.25, core.KindConcrete, true); err != nil {
		t.Fatal(err)
	}
	st.Close()
	st2, rec := mustOpen(t, dir, Options{})
	defer st2.Close()
	if len(rec.Answers) != 2 || len(rec.Joins) != 1 {
		t.Errorf("recovered %d answers, %d joins; want 2, 1", len(rec.Answers), len(rec.Joins))
	}
	// Replaying a recovered answer into the reopened store stays a no-op.
	if err := st2.AppendAnswer("q", "m", 0.5, core.KindConcrete, true); err != nil {
		t.Fatal(err)
	}
	if st2.Answers() != 2 {
		t.Errorf("answers after replay = %d", st2.Answers())
	}
}

func TestBindSessionMismatch(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	if err := st.BindSession("query-A"); err != nil {
		t.Fatal(err)
	}
	if err := st.BindSession("query-A"); err != nil {
		t.Errorf("rebind same: %v", err)
	}
	if err := st.BindSession("query-B"); err == nil {
		t.Error("rebind to a different query accepted")
	}
	st.Close()
	_, rec := mustOpen(t, dir, Options{})
	if rec.Session != "query-A" {
		t.Errorf("session = %q", rec.Session)
	}
}

// TestRecoveryTruncationMatrix is the crash matrix of the issue: the WAL
// is cut at every byte boundary and recovery must yield exactly the
// answers whose records fit before the cut, truncating the tail.
func TestRecoveryTruncationMatrix(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	qs := appendAnswers(t, st, 8)
	st.Close()
	full, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	// Record boundaries: offset just past each record.
	var bounds []int
	off := len(walMagic)
	for off < len(full) {
		_, n, err := DecodeRecord(full[off:])
		if err != nil || n == 0 {
			t.Fatalf("reference log does not replay at %d: %v", off, err)
		}
		off += n
		bounds = append(bounds, off)
	}
	if len(bounds) != len(qs) {
		t.Fatalf("%d records in log, want %d", len(bounds), len(qs))
	}
	for cut := 0; cut <= len(full); cut++ {
		want := 0
		for _, b := range bounds {
			if b <= cut {
				want++
			}
		}
		d := t.TempDir()
		if err := os.WriteFile(filepath.Join(d, walName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st2, rec := mustOpen(t, d, Options{})
		if len(rec.Answers) != want {
			t.Fatalf("cut %d: recovered %d answers, want %d", cut, len(rec.Answers), want)
		}
		for i, a := range rec.Answers {
			if a.Question != qs[i] {
				t.Fatalf("cut %d: answer %d = %q, want prefix %q", cut, i, a.Question, qs[i])
			}
		}
		// The torn tail must be physically truncated so the next append
		// lands on a record boundary.
		if err := st2.AppendAnswer("post-crash", "m", 1, core.KindConcrete, true); err != nil {
			t.Fatal(err)
		}
		st2.Close()
		_, rec3 := mustOpen(t, d, Options{})
		if len(rec3.Answers) != want+1 || rec3.Answers[want].Question != "post-crash" {
			t.Fatalf("cut %d: append after recovery not replayable (%d answers)", cut, len(rec3.Answers))
		}
	}
}

// TestRecoveryBitFlipFinalRecord flips every byte of the final record and
// checks recovery always falls back to the intact prefix.
func TestRecoveryBitFlipFinalRecord(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	qs := appendAnswers(t, st, 5)
	st.Close()
	full, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	// Find the final record's start offset.
	off, last := len(walMagic), 0
	for off < len(full) {
		last = off
		_, n, _ := DecodeRecord(full[off:])
		off += n
	}
	for i := last; i < len(full); i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0xFF
		d := t.TempDir()
		if err := os.WriteFile(filepath.Join(d, walName), mut, 0o644); err != nil {
			t.Fatal(err)
		}
		st2, rec := mustOpen(t, d, Options{})
		st2.Close()
		if len(rec.Answers) != len(qs)-1 {
			t.Fatalf("flip at %d: recovered %d answers, want %d", i, len(rec.Answers), len(qs)-1)
		}
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{CompactEvery: 10})
	st.BindSession("query-A")
	st.AppendJoin("p00", "ann")
	qs := appendAnswers(t, st, 25)
	for i := 0; i < 25; i++ { // audit events are dropped by compaction
		st.AppendClassification(fmt.Sprintf("n%d", i), i%2 == 0)
	}
	st.Close()
	if _, err := os.Stat(filepath.Join(dir, snapName)); err != nil {
		t.Fatalf("no snapshot after %d appends: %v", 50, err)
	}
	wal, _ := os.ReadFile(filepath.Join(dir, walName))
	if len(wal) >= 50*20 {
		t.Errorf("WAL not reset by compaction: %d bytes", len(wal))
	}
	st2, rec := mustOpen(t, dir, Options{})
	defer st2.Close()
	if rec.Session != "query-A" || len(rec.Joins) != 1 {
		t.Errorf("compacted state lost session/joins: %q, %d", rec.Session, len(rec.Joins))
	}
	if len(rec.Answers) != len(qs) {
		t.Fatalf("recovered %d answers after compaction, want %d", len(rec.Answers), len(qs))
	}
	for i, a := range rec.Answers {
		if a.Question != qs[i] {
			t.Errorf("answer %d = %q, want %q (order lost)", i, a.Question, qs[i])
		}
	}
}

func TestExplicitCompactAndSyncPolicies(t *testing.T) {
	for _, opts := range []Options{{SyncEvery: 3}, {SyncEvery: -1}, {CompactEvery: -1}} {
		dir := t.TempDir()
		st, _ := mustOpen(t, dir, opts)
		appendAnswers(t, st, 12)
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := st.Compact(); err != nil {
			t.Fatal(err)
		}
		appendAnswers(t, st, 12) // dedup: all no-ops
		st.Close()
		_, rec := mustOpen(t, dir, opts)
		if len(rec.Answers) != 12 {
			t.Errorf("opts %+v: recovered %d answers, want 12", opts, len(rec.Answers))
		}
	}
}

func TestCorruptSnapshotIsAnError(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	appendAnswers(t, st, 5)
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	path := filepath.Join(dir, snapName)
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 0xFF
	os.WriteFile(path, b, 0o644)
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Error("corrupt snapshot opened without error")
	}
}

// TestBindPlan: the plan fingerprint is journaled once, survives reopen
// (and compaction) as Recovered.Plan, and rebinding to a different
// fingerprint — domain drift — is refused.
func TestBindPlan(t *testing.T) {
	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	if err := st.BindSession("query-A"); err != nil {
		t.Fatal(err)
	}
	if err := st.BindPlan("sha256:aaaa"); err != nil {
		t.Fatal(err)
	}
	if err := st.BindPlan("sha256:aaaa"); err != nil {
		t.Errorf("rebind same plan: %v", err)
	}
	if err := st.BindPlan("sha256:bbbb"); err == nil {
		t.Error("rebind to a different plan fingerprint accepted")
	}
	if err := st.AppendAnswer("q", "m", 0.5, core.KindConcrete, true); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, rec := mustOpen(t, dir, Options{})
	if rec.Plan != "sha256:aaaa" {
		t.Errorf("recovered plan = %q, want sha256:aaaa", rec.Plan)
	}
	// Compaction must carry the plan binding into the snapshot.
	if err := st2.Compact(); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	_, rec2 := mustOpen(t, dir, Options{})
	if rec2.Plan != "sha256:aaaa" {
		t.Errorf("plan lost at compaction: %q", rec2.Plan)
	}
	if rec2.Session != "query-A" {
		t.Errorf("session lost at compaction: %q", rec2.Session)
	}
}
