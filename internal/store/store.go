package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"oassis/internal/core"
)

// Options configures a store.
type Options struct {
	// SyncEvery is the fsync policy: 0 or 1 fsyncs the WAL after every
	// appended record (full durability, the default); n > 1 fsyncs every
	// n records (bounded loss of the last < n answers on power failure);
	// -1 never fsyncs on append (Flush, Compact and Close still do).
	SyncEvery int

	// CompactEvery triggers snapshot compaction once the WAL holds this
	// many records (default 4096; -1 disables automatic compaction —
	// Compact can still be called explicitly).
	CompactEvery int

	// Metrics, when non-nil, receives store instrumentation (records and
	// bytes appended, fsyncs, compactions, recovery counts). Purely
	// observational: it never changes what the store persists or recovers.
	Metrics *Metrics
}

const defaultCompactEvery = 4096

// ErrClosed is returned by appends to a closed store.
var ErrClosed = errors.New("store: closed")

// Store is a durable answer store rooted at a directory. It implements
// core.Sink, so a *Store can be set directly as core.Config.Store. All
// methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options

	mu         sync.Mutex
	wal        *os.File
	walRecords int // records in the WAL since the last compaction
	sinceSync  int // records appended since the last fsync
	closed     bool

	// Durable state, mirrored in memory so appends dedupe and snapshots
	// compact without re-reading the log.
	session string
	plan    string
	joined  map[string]bool
	joins   []Record
	seen    map[string]map[string]bool // question -> member -> answered
	answers []Record                   // unique answers, first-write order
	issued  map[string]map[string]bool // question -> member -> handed out
	issues  []Record                   // unique issued records, first-write order
}

// Recovered is the state replayed from a store directory at Open.
type Recovered struct {
	// Answers are the unique crowd answers, in first-write order.
	Answers []Record
	// Events are the classification events still present in the WAL
	// (audit trail; dropped by compaction).
	Events []Record
	// Joins are the member slot claims, in join order.
	Joins []Record
	// Session is the query text the store is bound to ("" if unbound).
	Session string
	// Plan is the plan fingerprint the store is bound to ("" if unbound).
	// A restarted server compares it to the freshly compiled plan's
	// fingerprint to detect domain drift before replaying answers.
	Plan string
	// InFlight are the questions that were issued to members but whose
	// answers never arrived — what a crashed server must re-issue rather
	// than lose.
	InFlight []Record
	// TruncatedBytes counts WAL tail bytes dropped because the final
	// record was torn or corrupt.
	TruncatedBytes int64
}

// PrimeCache loads the recovered answers into a core.Cache suitable for
// core.Config.Prime: a restarted engine replays them instead of re-asking
// the crowd.
func (r *Recovered) PrimeCache() *core.Cache {
	c := core.NewCache()
	for _, a := range r.Answers {
		c.Record(a.Question, a.Member, a.Support, a.Kind)
	}
	return c
}

// Open opens (creating if needed) the store directory, recovers its state
// — snapshot first, then the WAL, truncating a torn tail — and leaves the
// WAL open for appending. The returned Recovered reflects everything
// durable; appending an answer already recovered is a silent no-op, which
// makes resumed runs (whose engine replays primed answers through the
// same record path) idempotent.
func Open(dir string, opts Options) (*Store, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	snapRecs, err := readSnapshot(dir)
	if err != nil {
		return nil, nil, err
	}
	f, walRecs, dropped, err := openWAL(dir)
	if err != nil {
		return nil, nil, err
	}
	s := &Store{
		dir:        dir,
		opts:       opts,
		wal:        f,
		walRecords: len(walRecs),
		joined:     make(map[string]bool),
		seen:       make(map[string]map[string]bool),
		issued:     make(map[string]map[string]bool),
	}
	rec := &Recovered{TruncatedBytes: dropped}
	for _, lists := range [][]Record{snapRecs, walRecs} {
		for _, r := range lists {
			s.absorb(r, rec)
		}
	}
	rec.Session = s.session
	rec.Plan = s.plan
	// An issued question whose answer never landed was in flight at the
	// crash; surface it so the caller re-issues it.
	for _, r := range s.issues {
		if !s.seen[r.Question][r.Member] {
			rec.InFlight = append(rec.InFlight, r)
		}
	}
	opts.Metrics.recovered(rec)
	return s, rec, nil
}

// absorb folds one replayed record into the in-memory state and the
// Recovered view, deduplicating answers and joins.
func (s *Store) absorb(r Record, out *Recovered) {
	switch r.Type {
	case RecAnswer:
		if s.markSeen(r.Question, r.Member) {
			s.answers = append(s.answers, r)
			out.Answers = append(out.Answers, r)
		}
	case RecClassified:
		out.Events = append(out.Events, r)
	case RecSession:
		s.session = r.Note
	case RecPlan:
		s.plan = r.Note
	case RecJoin:
		if !s.joined[r.Member] {
			s.joined[r.Member] = true
			s.joins = append(s.joins, r)
			out.Joins = append(out.Joins, r)
		}
	case RecIssued:
		if s.markIssued(r.Question, r.Member) {
			s.issues = append(s.issues, r)
		}
	}
}

// markSeen records (question, member) and reports whether it was new.
func (s *Store) markSeen(question, member string) bool {
	byMember := s.seen[question]
	if byMember == nil {
		byMember = make(map[string]bool)
		s.seen[question] = byMember
	}
	if byMember[member] {
		return false
	}
	byMember[member] = true
	return true
}

// markIssued records that (question, member) was handed out and reports
// whether it was new.
func (s *Store) markIssued(question, member string) bool {
	byMember := s.issued[question]
	if byMember == nil {
		byMember = make(map[string]bool)
		s.issued[question] = byMember
	}
	if byMember[member] {
		return false
	}
	byMember[member] = true
	return true
}

// append writes one framed record to the WAL and applies the fsync policy.
// The caller holds s.mu and has already updated the in-memory mirrors.
func (s *Store) append(r Record) error {
	if s.closed {
		return ErrClosed
	}
	buf := EncodeRecord(r)
	if _, err := s.wal.Write(buf); err != nil {
		return err
	}
	s.opts.Metrics.recordAppended(r.Type, len(buf))
	s.walRecords++
	s.sinceSync++
	every := s.opts.SyncEvery
	if every == 0 {
		every = 1
	}
	if every > 0 && s.sinceSync >= every {
		if err := s.wal.Sync(); err != nil {
			return err
		}
		s.opts.Metrics.fsynced()
		s.sinceSync = 0
	}
	return s.maybeCompact()
}

// AppendAnswer durably records one crowd answer; re-appending a (question,
// member) pair already stored is a no-op. It implements core.Sink.
func (s *Store) AppendAnswer(question, member string, support float64, kind core.QuestionKind, counted bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !s.markSeen(question, member) {
		return nil
	}
	r := Record{Type: RecAnswer, Question: question, Member: member,
		Support: support, Kind: kind, Counted: counted}
	s.answers = append(s.answers, r)
	return s.append(r)
}

// AppendIssued durably records that a question was handed to a member,
// before the (possibly never arriving) answer. Re-appending a pair already
// issued or already answered is a no-op.
func (s *Store) AppendIssued(question, member string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.seen[question][member] {
		return nil // the answer is already durable; nothing is in flight
	}
	if !s.markIssued(question, member) {
		return nil
	}
	r := Record{Type: RecIssued, Question: question, Member: member}
	s.issues = append(s.issues, r)
	return s.append(r)
}

// AppendClassification records a node classification event (audit trail).
// It implements core.Sink.
func (s *Store) AppendClassification(node string, significant bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.append(Record{Type: RecClassified, Node: node, Significant: significant})
}

// AppendJoin records a member claiming a slot; duplicate member IDs are
// no-ops.
func (s *Store) AppendJoin(member, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.joined[member] {
		return nil
	}
	s.joined[member] = true
	r := Record{Type: RecJoin, Member: member, Note: name}
	s.joins = append(s.joins, r)
	return s.append(r)
}

// BindSession binds the store to a query's canonical text. Rebinding to
// the same text is a no-op; a different text is refused — a store
// directory holds answers for exactly one query, and replaying them into
// another would corrupt its results.
func (s *Store) BindSession(note string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.session {
	case note:
		return nil
	case "":
		s.session = note
		return s.append(Record{Type: RecSession, Note: note})
	default:
		return fmt.Errorf("store: directory already bound to a different query")
	}
}

// BindPlan binds the store to a plan fingerprint. Rebinding to the same
// fingerprint is a no-op; a different fingerprint is refused — it means
// the same query now compiles differently (the domain drifted), and the
// recorded answers belong to the old plan's assignment space.
func (s *Store) BindPlan(fingerprint string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.plan {
	case fingerprint:
		return nil
	case "":
		s.plan = fingerprint
		return s.append(Record{Type: RecPlan, Note: fingerprint})
	default:
		return fmt.Errorf("store: directory already bound to a different plan (domain drift?)")
	}
}

// maybeCompact compacts when the WAL has outgrown the policy. Caller
// holds s.mu.
func (s *Store) maybeCompact() error {
	every := s.opts.CompactEvery
	if every == 0 {
		every = defaultCompactEvery
	}
	if every < 0 || s.walRecords < every {
		return nil
	}
	return s.compactLocked()
}

// Compact writes a snapshot of the deduplicated durable state and resets
// the WAL. Crash-safe: the snapshot is installed atomically before the
// WAL is truncated, and recovery deduplicates, so a crash between the two
// steps merely replays the old WAL into the same state.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	// Flush the WAL first so the snapshot never leads the log.
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.opts.Metrics.fsynced()
	s.sinceSync = 0
	recs := make([]Record, 0, 2+len(s.joins)+len(s.answers)+len(s.issues))
	if s.session != "" {
		recs = append(recs, Record{Type: RecSession, Note: s.session})
	}
	if s.plan != "" {
		recs = append(recs, Record{Type: RecPlan, Note: s.plan})
	}
	recs = append(recs, s.joins...)
	recs = append(recs, s.answers...)
	// Issued questions still awaiting answers stay in the snapshot (they
	// are exactly the crash-recovery state); answered ones are dropped.
	for _, r := range s.issues {
		if !s.seen[r.Question][r.Member] {
			recs = append(recs, r)
		}
	}
	if err := writeSnapshot(s.dir, recs); err != nil {
		return err
	}
	if err := s.resetWAL(); err != nil {
		return err
	}
	s.walRecords = 0
	s.opts.Metrics.compacted()
	return nil
}

// resetWAL truncates the WAL to a fresh header after a snapshot has been
// installed. Caller holds s.mu.
func (s *Store) resetWAL() error {
	if err := s.wal.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(s.dir, walName), os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(walMagic); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	s.opts.Metrics.fsynced()
	s.wal = f
	return nil
}

// Flush fsyncs the WAL regardless of the fsync policy.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.sinceSync = 0
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.opts.Metrics.fsynced()
	return nil
}

// Close flushes and closes the WAL. Further appends return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	syncErr := s.wal.Sync()
	if syncErr == nil {
		s.opts.Metrics.fsynced()
	}
	closeErr := s.wal.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Scan lists the names of the immediate subdirectories of root that are
// store directories (they hold a WAL file), sorted. It is how a serving
// tier re-discovers the per-session stores under a tenant's shard
// directory at boot; a missing root is an empty result, not an error —
// a tenant that has never persisted anything recovers nothing.
func Scan(root string) ([]string, error) {
	entries, err := os.ReadDir(root)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if _, err := os.Stat(filepath.Join(root, e.Name(), walName)); err == nil {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Answers returns how many unique answers are durable.
func (s *Store) Answers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.answers)
}
