package store

import "oassis/internal/obs"

// Metrics bundles the store-layer instruments. Attach one via
// Options.Metrics; a nil Metrics disables instrumentation with zero cost.
// Like the engine's instruments, these are write-only: recording never
// changes what the store persists or recovers.
type Metrics struct {
	appended          [6]*obs.Counter // by RecordType (index 0 unused)
	fsyncs            *obs.Counter
	walBytes          *obs.Counter
	compactions       *obs.Counter
	recoveredAnswers  *obs.Gauge
	recoveredInFlight *obs.Gauge
	truncatedBytes    *obs.Gauge
}

// NewMetrics registers the store instruments on r and returns the handle
// to attach as Options.Metrics. Registering twice on the same registry
// returns handles on the same underlying series.
func NewMetrics(r *obs.Registry) *Metrics {
	m := &Metrics{}
	for t := RecAnswer; t <= RecIssued; t++ {
		m.appended[t] = r.Counter("oassis_store_records_appended_total",
			"records appended to the WAL", obs.L("type", t.String()))
	}
	m.fsyncs = r.Counter("oassis_store_fsyncs_total",
		"fsync calls on the WAL (append policy, flush, compaction, close)")
	m.walBytes = r.Counter("oassis_store_wal_bytes_total",
		"bytes of framed records written to the WAL")
	m.compactions = r.Counter("oassis_store_compactions_total",
		"snapshot compactions performed")
	m.recoveredAnswers = r.Gauge("oassis_store_recovered_answers",
		"unique answers replayed from disk at the last Open")
	m.recoveredInFlight = r.Gauge("oassis_store_recovered_inflight",
		"issued-but-unanswered questions surfaced at the last Open")
	m.truncatedBytes = r.Gauge("oassis_store_recovery_truncated_bytes",
		"torn WAL tail bytes dropped at the last Open")
	return m
}

func (m *Metrics) recordAppended(t RecordType, bytes int) {
	if m == nil {
		return
	}
	i := int(t)
	if i < 1 || i >= len(m.appended) {
		return
	}
	m.appended[i].Inc()
	m.walBytes.Add(bytes)
}

func (m *Metrics) fsynced() {
	if m == nil {
		return
	}
	m.fsyncs.Inc()
}

func (m *Metrics) compacted() {
	if m == nil {
		return
	}
	m.compactions.Inc()
}

func (m *Metrics) recovered(rec *Recovered) {
	if m == nil {
		return
	}
	m.recoveredAnswers.Set(int64(len(rec.Answers)))
	m.recoveredInFlight.Set(int64(len(rec.InFlight)))
	m.truncatedBytes.Set(rec.TruncatedBytes)
}
