package store

import (
	"testing"

	"oassis/internal/oassisql"
	"oassis/internal/ontology"
	"oassis/internal/plan"
)

// TestPolicyVariantWALSeparation: two plans differing only in their
// ordering policy are different plans to the store — the fingerprint the
// journal binds to changes with the policy, so a WAL written under
// paper-order can never be replayed into a chain-prune session (answers
// collected under one question order priming a run that asks in another).
func TestPolicyVariantWALSeparation(t *testing.T) {
	s := ontology.NewSample()
	q := oassisql.MustParse(`
SELECT FACT-SETS
WHERE
  $x instanceOf Park.
  $y subClassOf* Activity
SATISFYING
  $y doAt $x
WITH SUPPORT = 0.4
`)
	base, err := plan.Compile(s.Voc, s.Onto, q, plan.DomainFingerprint(s.Voc, s.Onto))
	if err != nil {
		t.Fatal(err)
	}
	variant, err := base.WithPolicy(plan.PolicyChainPrune)
	if err != nil {
		t.Fatal(err)
	}
	if variant.Fingerprint() == base.Fingerprint() {
		t.Fatal("policy variant shares the base fingerprint; WAL separation impossible")
	}

	dir := t.TempDir()
	st, _ := mustOpen(t, dir, Options{})
	if err := st.BindSession(q.String()); err != nil {
		t.Fatal(err)
	}
	if err := st.BindPlan(base.Fingerprint()); err != nil {
		t.Fatal(err)
	}
	if err := st.BindPlan(variant.Fingerprint()); err == nil {
		t.Error("journal bound to paper-order accepted the chain-prune variant")
	}
	st.Close()

	// Reopen: the recovered journal still refuses the variant.
	st2, rec := mustOpen(t, dir, Options{})
	if rec.Plan != base.Fingerprint() {
		t.Errorf("recovered plan fingerprint %q, want %q", rec.Plan, base.Fingerprint())
	}
	if err := st2.BindPlan(variant.Fingerprint()); err == nil {
		t.Error("recovered journal accepted the variant fingerprint")
	}
	st2.Close()
}
